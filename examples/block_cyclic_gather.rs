//! Assembling a ScaLAPACK-style block-cyclic matrix with `darray`.
//!
//! A 64 x 60 double matrix lives distributed 2D block-cyclically over a
//! 2 x 3 process grid (4 x 4 blocks). Each rank stores its share as a
//! packed local buffer; rank 0 gathers the full matrix by posting one
//! receive per rank with that rank's **darray datatype** — the datatype
//! engine scatters each packed contribution straight into the right
//! global positions, no application-side index arithmetic at all.
//!
//! ```text
//! cargo run --release --example block_cyclic_gather
//! ```

use ibdt::datatype::typ::Distribution;
use ibdt::datatype::Datatype;
use ibdt::mpicore::{AppOp, Cluster, ClusterSpec, Program, Scheme};

const GR: u64 = 64;
const GC: u64 = 60;
const EL: u64 = 8;
const PR: u32 = 2;
const PC: u32 = 3;
const P: u32 = PR * PC;

fn main() {
    let distribs = [Distribution::Cyclic(4), Distribution::Cyclic(4)];
    let psizes = [PR, PC];
    let gsizes = [GR, GC];

    let mut spec = ClusterSpec {
        nprocs: P,
        ..Default::default()
    };
    spec.mpi.scheme = Scheme::Adaptive;
    let mut cluster = Cluster::new(spec);

    // Per-rank darray types and packed local contributions.
    let elem = Datatype::double();
    let mut local_bufs = Vec::new();
    let mut darrays = Vec::new();
    for r in 0..P {
        let ty =
            Datatype::darray(P, r, &gsizes, &distribs, &psizes, &elem).expect("valid distribution");
        // Local data, packed in darray (local-array) order: value =
        // global element index, so assembly is trivially checkable.
        let mut local: Vec<u8> = Vec::with_capacity(ty.size() as usize);
        for (off, len) in ty.flat().blocks.iter() {
            for k in 0..(len / EL) {
                let gidx = (*off as u64 + k * EL) / EL;
                local.extend_from_slice(&(gidx as f64).to_le_bytes());
            }
        }
        let buf = cluster.alloc(r, ty.size() + 64, 4096);
        cluster.write_mem(r, buf, &local);
        local_bufs.push(buf);
        darrays.push(ty);
    }
    let global = cluster.alloc(0, GR * GC * EL + 64, 4096);

    let progs: Vec<Program> = (0..P)
        .map(|r| {
            let mut p: Program = Vec::new();
            if r == 0 {
                for src in 0..P {
                    // Receive src's packed bytes, scattered by its
                    // darray type into the global matrix.
                    p.push(AppOp::Irecv {
                        peer: src,
                        buf: global,
                        count: 1,
                        ty: darrays[src as usize].clone(),
                        tag: 1,
                    });
                }
            }
            let contig = Datatype::contiguous(darrays[r as usize].size(), &Datatype::byte())
                .expect("contig");
            p.push(AppOp::Isend {
                peer: 0,
                buf: local_bufs[r as usize],
                count: 1,
                ty: contig,
                tag: 1,
            });
            p.push(AppOp::WaitAll);
            p
        })
        .collect();
    let stats = cluster.run(progs);

    // Verify: element g holds the value g.
    let bytes = cluster.read_mem(0, global, GR * GC * EL);
    for g in 0..GR * GC {
        let v = f64::from_le_bytes(
            bytes[(g * EL) as usize..(g * EL + EL) as usize]
                .try_into()
                .unwrap(),
        );
        assert_eq!(v, g as f64, "global element {g}");
    }
    println!(
        "assembled {}x{} block-cyclic matrix from {} ranks in {:.1} us (virtual)",
        GR,
        GC,
        P,
        stats.finish_ns as f64 / 1e3
    );
    println!("every element landed in its global position — verified");
}
