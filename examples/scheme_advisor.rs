//! Scheme advisor: describe a datatype shape, see what each scheme
//! would cost and what the §6 adaptive rule picks.
//!
//! ```text
//! cargo run --release --example scheme_advisor -- [blocks] [block_bytes] [stride_bytes]
//! cargo run --release --example scheme_advisor -- 128 256 16384
//! ```

use ibdt::datatype::Datatype;
use ibdt::mpicore::progress::adaptive_choose;
use ibdt::mpicore::{ClusterSpec, MpiConfig, Scheme, TransportClass};
use ibdt::workloads::drivers::pingpong;

fn main() {
    let args: Vec<u64> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("numeric argument"))
        .collect();
    let (blocks, block_bytes, stride) = match args.as_slice() {
        [] => (128, 256, 16384),
        [b, bb, s] => (*b, *bb, *s),
        _ => {
            eprintln!("usage: scheme_advisor [blocks block_bytes stride_bytes]");
            std::process::exit(2);
        }
    };
    assert!(stride >= block_bytes, "stride must cover the block");

    let ty = Datatype::hvector(blocks, block_bytes, stride as i64, &Datatype::byte())
        .expect("valid type");
    let stats = ty.flat().stats(1);
    println!(
        "type: {blocks} blocks x {block_bytes} B, stride {stride} B \
         ({} KiB data in {} KiB span, density {:.1}%)",
        ty.size() / 1024,
        ty.true_extent() / 1024,
        100.0 * ty.size() as f64 / ty.true_extent().max(1) as f64,
    );
    println!(
        "block stats: min {} B, median {} B, mean {:.1} B\n",
        stats.min, stats.median, stats.mean
    );

    let cfg = MpiConfig::default();
    let advice = adaptive_choose(
        &cfg,
        TransportClass::Ib,
        ty.size(),
        stats.min,
        stats.median,
        stats.min,
        stats.median,
    );

    println!("{:>10}  {:>12}", "scheme", "latency");
    let mut best = (Scheme::Generic, u64::MAX);
    for scheme in [
        Scheme::Generic,
        Scheme::BcSpup,
        Scheme::RwgUp,
        Scheme::PRrs,
        Scheme::MultiW,
    ] {
        let mut spec = ClusterSpec::default();
        spec.mpi.scheme = scheme;
        let r = pingpong(&spec, &ty, 1, 2, 4);
        if r.one_way_ns < best.1 {
            best = (scheme, r.one_way_ns);
        }
        println!(
            "{:>10}  {:>9.1} us",
            format!("{scheme:?}"),
            r.one_way_ns as f64 / 1e3
        );
    }
    println!("\nmeasured best : {:?}", best.0);
    println!("adaptive picks: {advice:?} (receiver-side rule, §6)");
    if advice == best.0 {
        println!("the adaptive rule matches the measurement");
    } else {
        println!(
            "note: the adaptive rule is a heuristic on block statistics; \
                  the measured optimum can differ near crossovers"
        );
    }
}
