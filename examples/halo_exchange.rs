//! Halo exchange on a 2 x 2 process grid — the (de)composition of
//! multi-dimensional data volumes the paper's introduction cites as a
//! natural home for derived datatypes.
//!
//! Each rank owns an (N+2) x (N+2) tile of doubles (interior N x N plus
//! a one-cell halo). Row halos are contiguous; **column halos are the
//! textbook vector datatype** — one double every row, which is exactly
//! the access pattern that murders naive pack/unpack implementations.
//!
//! ```text
//! cargo run --release --example halo_exchange
//! ```

use ibdt::datatype::Datatype;
use ibdt::mpicore::{AppOp, Cluster, ClusterSpec, Program, Scheme};

const N: u64 = 256; // interior cells per side
const W: u64 = N + 2; // tile width including halo
const EL: u64 = 8; // sizeof(double)

/// Process grid: 2 x 2 torus.
const PX: u32 = 2;
const PY: u32 = 2;

fn rank_of(x: u32, y: u32) -> u32 {
    (y % PY) * PX + (x % PX)
}

/// Flat offset of cell (row, col) in a tile.
fn at(row: u64, col: u64) -> u64 {
    (row * W + col) * EL
}

fn main() {
    let row_ty = Datatype::contiguous(N * EL, &Datatype::byte()).expect("row type");
    let col_ty = Datatype::vector(N, 1, W as i64, &Datatype::double()).expect("column type");
    println!(
        "tile {}x{} doubles; column halo = vector({}, 1, {}) -> {} blocks of 8 B",
        N,
        N,
        N,
        W,
        col_ty.num_blocks()
    );
    println!("{:>10}  {:>14}", "scheme", "per-iteration");

    for scheme in [
        Scheme::Generic,
        Scheme::BcSpup,
        Scheme::MultiW,
        Scheme::Adaptive,
    ] {
        let mut spec = ClusterSpec {
            nprocs: PX * PY,
            ..Default::default()
        };
        spec.mpi.scheme = scheme;
        let mut cluster = Cluster::new(spec);

        // Allocate tiles and fill interiors with rank-distinct values.
        let tile_bytes = W * W * EL;
        let mut tiles = Vec::new();
        for r in 0..PX * PY {
            let t = cluster.alloc(r, tile_bytes, 4096);
            let mut data = vec![0u8; tile_bytes as usize];
            for row in 1..=N {
                for col in 1..=N {
                    let v = (r as u64 * 1_000_000 + row * 1000 + col) as f64;
                    let off = at(row, col) as usize;
                    data[off..off + 8].copy_from_slice(&v.to_le_bytes());
                }
            }
            cluster.write_mem(r, t, &data);
            tiles.push(t);
        }

        // Two iterations of a 4-neighbour exchange (torus).
        let iters = 2u32;
        let progs: Vec<Program> = (0..PX * PY)
            .map(|r| {
                let (x, y) = (r % PX, r / PX);
                let tile = tiles[r as usize];
                let left = rank_of(x + PX - 1, y);
                let right = rank_of(x + 1, y);
                let up = rank_of(x, y + PY - 1);
                let down = rank_of(x, y + 1);
                let mut p: Program = Vec::new();
                for it in 0..iters {
                    if r == 0 && it == 1 {
                        p.push(AppOp::MarkTime { slot: 0 });
                    }
                    // Receive into halo cells.
                    p.push(AppOp::Irecv {
                        peer: left,
                        buf: tile + at(1, 0),
                        count: 1,
                        ty: col_ty.clone(),
                        tag: 1,
                    });
                    p.push(AppOp::Irecv {
                        peer: right,
                        buf: tile + at(1, W - 1),
                        count: 1,
                        ty: col_ty.clone(),
                        tag: 2,
                    });
                    p.push(AppOp::Irecv {
                        peer: up,
                        buf: tile + at(0, 1),
                        count: 1,
                        ty: row_ty.clone(),
                        tag: 3,
                    });
                    p.push(AppOp::Irecv {
                        peer: down,
                        buf: tile + at(W - 1, 1),
                        count: 1,
                        ty: row_ty.clone(),
                        tag: 4,
                    });
                    // Send edges: my right edge is my right neighbour's
                    // left halo, and so on (torus symmetry).
                    p.push(AppOp::Isend {
                        peer: right,
                        buf: tile + at(1, N),
                        count: 1,
                        ty: col_ty.clone(),
                        tag: 1,
                    });
                    p.push(AppOp::Isend {
                        peer: left,
                        buf: tile + at(1, 1),
                        count: 1,
                        ty: col_ty.clone(),
                        tag: 2,
                    });
                    p.push(AppOp::Isend {
                        peer: down,
                        buf: tile + at(N, 1),
                        count: 1,
                        ty: row_ty.clone(),
                        tag: 3,
                    });
                    p.push(AppOp::Isend {
                        peer: up,
                        buf: tile + at(1, 1),
                        count: 1,
                        ty: row_ty.clone(),
                        tag: 4,
                    });
                    p.push(AppOp::WaitAll);
                    // A little local compute between iterations.
                    p.push(AppOp::Compute { ns: 20_000 });
                    if r == 0 && it == 1 {
                        p.push(AppOp::MarkTime { slot: 1 });
                    }
                }
                p
            })
            .collect();
        let stats = cluster.run(progs);

        // Verify: rank 0's right halo column equals rank 1's leftmost
        // interior column.
        let r0 = cluster.read_mem(0, tiles[0], tile_bytes);
        let r1 = cluster.read_mem(1, tiles[1], tile_bytes);
        for row in 1..=N {
            let halo = &r0[at(row, W - 1) as usize..at(row, W - 1) as usize + 8];
            let edge = &r1[at(row, 1) as usize..at(row, 1) as usize + 8];
            assert_eq!(halo, edge, "halo mismatch at row {row}");
        }
        // And rank 0's bottom halo row equals rank 2's top interior row.
        let r2 = cluster.read_mem(2, tiles[2], tile_bytes);
        let bottom = &r0[at(W - 1, 1) as usize..at(W - 1, 1 + N) as usize];
        let top = &r2[at(1, 1) as usize..at(1, 1 + N) as usize];
        assert_eq!(bottom, top, "row halo mismatch");

        println!(
            "{:>10}  {:>11.1} us",
            format!("{scheme:?}"),
            stats.mark_interval(0, 0, 1) as f64 / 1e3
        );
    }
    println!("\nhalos verified on all ranks");
}
