//! Distributed matrix transpose via `MPI_Alltoall` with a resized
//! vector datatype — the FFT communication motif the paper's
//! introduction cites.
//!
//! A `GR x GC` double matrix is distributed by row blocks over `P`
//! ranks. Each rank sends rank `j` its column block `j` using
//! `resized(vector(rows_pp, cols_pp, GC))` so that consecutive
//! alltoall blocks address consecutive column blocks — the classic
//! trick that makes the whole transpose one collective call with zero
//! user-side packing.
//!
//! ```text
//! cargo run --release --example transpose
//! ```

use ibdt::datatype::Datatype;
use ibdt::mpicore::{AppOp, Cluster, ClusterSpec, Program, Scheme};

const P: u32 = 4; // ranks
const GR: u64 = 256; // global rows
const GC: u64 = 256; // global cols
const EL: u64 = 8; // sizeof(double)

fn main() {
    let rows_pp = GR / P as u64;
    let cols_pp = GC / P as u64;

    // Send type: a rows_pp x cols_pp sub-block of the local row slab,
    // resized so instance i starts at column block i.
    let block = Datatype::vector(rows_pp, cols_pp * EL, (GC * EL) as i64, &Datatype::byte())
        .expect("block type");
    let sty = Datatype::resized(&block, 0, (cols_pp * EL) as i64).expect("resized");
    // Receive type: contiguous rows_pp x cols_pp block (re-blocked on
    // the receive side).
    let rty = Datatype::contiguous(rows_pp * cols_pp * EL, &Datatype::byte()).expect("contig");
    println!(
        "{GR}x{GC} doubles over {P} ranks; send block = {} x {} B strided rows",
        rows_pp,
        cols_pp * EL
    );
    println!("{:>10}  {:>14}", "scheme", "alltoall time");

    for scheme in [
        Scheme::Generic,
        Scheme::BcSpup,
        Scheme::RwgUp,
        Scheme::MultiW,
    ] {
        let mut spec = ClusterSpec {
            nprocs: P,
            ..Default::default()
        };
        spec.mpi.scheme = scheme;
        let mut cluster = Cluster::new(spec);

        let slab = GC * rows_pp * EL;
        let mut sbufs = Vec::new();
        let mut rbufs = Vec::new();
        for r in 0..P {
            let sb = cluster.alloc(r, slab + 64, 4096);
            let rb = cluster.alloc(r, slab + 64, 4096);
            // Element (gr, gc) = gr * 100_000 + gc, as doubles.
            let mut data = vec![0u8; slab as usize];
            for lr in 0..rows_pp {
                for gc in 0..GC {
                    let gr = r as u64 * rows_pp + lr;
                    let v = (gr * 100_000 + gc) as f64;
                    let off = ((lr * GC + gc) * EL) as usize;
                    data[off..off + 8].copy_from_slice(&v.to_le_bytes());
                }
            }
            cluster.write_mem(r, sb, &data);
            sbufs.push(sb);
            rbufs.push(rb);
        }

        let progs: Vec<Program> = (0..P)
            .map(|r| {
                let mut p: Program = Vec::new();
                if r == 0 {
                    p.push(AppOp::MarkTime { slot: 0 });
                }
                p.push(AppOp::Alltoall {
                    sbuf: sbufs[r as usize],
                    rbuf: rbufs[r as usize],
                    count: 1,
                    sty: sty.clone(),
                    rty: rty.clone(),
                });
                p.push(AppOp::Barrier);
                if r == 0 {
                    p.push(AppOp::MarkTime { slot: 1 });
                }
                p
            })
            .collect();
        let stats = cluster.run(progs);

        // Verify: rank j's block i holds rows of rank i's column block
        // j, i.e. element (lr, lc) == (i*rows_pp + lr) * 100000 +
        // (j*cols_pp + lc).
        for j in 0..P {
            let rb = cluster.read_mem(j, rbufs[j as usize], slab);
            for i in 0..P {
                let base = (i as u64 * rows_pp * cols_pp * EL) as usize;
                for lr in 0..rows_pp {
                    for lc in 0..cols_pp {
                        let off = base + ((lr * cols_pp + lc) * EL) as usize;
                        let got = f64::from_le_bytes(rb[off..off + 8].try_into().unwrap());
                        let want =
                            ((i as u64 * rows_pp + lr) * 100_000 + j as u64 * cols_pp + lc) as f64;
                        assert_eq!(got, want, "rank {j} block {i} cell ({lr},{lc})");
                    }
                }
            }
        }
        println!(
            "{:>10}  {:>11.1} us",
            format!("{scheme:?}"),
            stats.mark_interval(0, 0, 1) as f64 / 1e3
        );
    }
    println!("\ntranspose verified element-exact on all ranks");
}
