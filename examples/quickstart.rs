//! Quickstart: send a noncontiguous datatype between two simulated
//! ranks and compare the paper's schemes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ibdt::datatype::Datatype;
use ibdt::mpicore::{AppOp, Cluster, ClusterSpec, Scheme};

fn main() {
    // The paper's motivating datatype: 64 columns of a 128 x 4096
    // integer array — MPI_Type_vector(128, 64, 4096, MPI_INT).
    let ty = Datatype::vector(128, 64, 4096, &Datatype::int()).expect("valid type");
    println!(
        "datatype: {} blocks x {} B = {} KiB of data in a {} KiB span\n",
        ty.num_blocks(),
        ty.size() / ty.num_blocks() as u64,
        ty.size() / 1024,
        ty.true_extent() / 1024,
    );

    println!("{:>10}  {:>12}  {:>10}", "scheme", "latency", "vs Generic");
    let mut generic_ns = 0u64;
    for scheme in [
        Scheme::Generic,
        Scheme::BcSpup,
        Scheme::RwgUp,
        Scheme::PRrs,
        Scheme::MultiW,
        Scheme::Adaptive,
    ] {
        let mut spec = ClusterSpec::default(); // 2 ranks
        spec.mpi.scheme = scheme;
        let mut cluster = Cluster::new(spec);

        // Allocate and fill the source array on rank 0.
        let span = ty.true_ub() as u64 + 64;
        let sbuf = cluster.alloc(0, span, 4096);
        let rbuf = cluster.alloc(1, span, 4096);
        cluster.fill_pattern(0, sbuf, span, 1);

        // One warmup transfer, then a timed one.
        let p0 = vec![
            AppOp::Isend {
                peer: 1,
                buf: sbuf,
                count: 1,
                ty: ty.clone(),
                tag: 0,
            },
            AppOp::WaitAll,
            AppOp::MarkTime { slot: 0 },
            AppOp::Isend {
                peer: 1,
                buf: sbuf,
                count: 1,
                ty: ty.clone(),
                tag: 0,
            },
            AppOp::WaitAll,
            AppOp::Irecv {
                peer: 1,
                buf: sbuf,
                count: 1,
                ty: ty.clone(),
                tag: 1,
            },
            AppOp::WaitAll,
            AppOp::MarkTime { slot: 1 },
        ];
        let p1 = vec![
            AppOp::Irecv {
                peer: 0,
                buf: rbuf,
                count: 1,
                ty: ty.clone(),
                tag: 0,
            },
            AppOp::WaitAll,
            AppOp::Irecv {
                peer: 0,
                buf: rbuf,
                count: 1,
                ty: ty.clone(),
                tag: 0,
            },
            AppOp::WaitAll,
            AppOp::Isend {
                peer: 0,
                buf: rbuf,
                count: 1,
                ty: ty.clone(),
                tag: 1,
            },
            AppOp::WaitAll,
        ];
        let stats = cluster.run(vec![p0, p1]);

        // The data really moved: every datatype byte matches.
        let src = cluster.read_mem(0, sbuf, span);
        let dst = cluster.read_mem(1, rbuf, span);
        for (off, len) in ty.flat().repeat(1) {
            let o = off as usize;
            assert_eq!(&dst[o..o + len as usize], &src[o..o + len as usize]);
        }

        let one_way = stats.mark_interval(0, 0, 1) / 2;
        if scheme == Scheme::Generic {
            generic_ns = one_way;
        }
        println!(
            "{:>10}  {:>9.1} us  {:>9.2}x",
            format!("{scheme:?}"),
            one_way as f64 / 1e3,
            generic_ns as f64 / one_way as f64,
        );
    }
    println!("\nall transfers verified byte-exact");
}
