//! One-sided ghost-cell update (MPI-2 RMA): each rank Puts its edge
//! columns straight into its neighbours' halo columns — no receives, no
//! tag matching, no receiver CPU. The column datatype makes each Put a
//! single call despite the 1-double-per-row layout.
//!
//! ```text
//! cargo run --release --example one_sided
//! ```

use ibdt::datatype::Datatype;
use ibdt::mpicore::{AppOp, Cluster, ClusterSpec, Program, Scheme};

const N: u64 = 128; // interior cells per side
const W: u64 = N + 2; // tile width including halo
const EL: u64 = 8;
const P: u32 = 4; // ranks in a ring

fn at(row: u64, col: u64) -> u64 {
    (row * W + col) * EL
}

fn main() {
    let col_ty = Datatype::vector(N, 1, W as i64, &Datatype::double()).expect("column type");
    println!(
        "{P}-rank ring, {N}x{N} tiles; halo columns moved by one-sided Put \
         (vector of {} blocks x 8 B)\n",
        col_ty.num_blocks()
    );

    let mut spec = ClusterSpec {
        nprocs: P,
        ..Default::default()
    };
    spec.mpi.scheme = Scheme::Adaptive;
    let mut cluster = Cluster::new(spec);

    let tile_bytes = W * W * EL;
    let mut tiles = Vec::new();
    for r in 0..P {
        let t = cluster.alloc(r, tile_bytes, 4096);
        let mut data = vec![0u8; tile_bytes as usize];
        for row in 1..=N {
            for col in 1..=N {
                let v = (r as u64 * 1_000_000 + row * 1000 + col) as f64;
                let off = at(row, col) as usize;
                data[off..off + 8].copy_from_slice(&v.to_le_bytes());
            }
        }
        cluster.write_mem(r, t, &data);
        tiles.push(t);
    }

    let iters = 3u32;
    let progs: Vec<Program> = (0..P)
        .map(|r| {
            let right = (r + 1) % P;
            let left = (r + P - 1) % P;
            let tile = tiles[r as usize];
            let mut p: Program = vec![AppOp::WinCreate {
                win: 0,
                addr: tile,
                len: tile_bytes,
            }];
            for it in 0..iters {
                if r == 0 && it == iters - 1 {
                    p.push(AppOp::MarkTime { slot: 0 });
                }
                // My right edge column -> right neighbour's left halo.
                p.push(AppOp::Put {
                    win: 0,
                    target: right,
                    obuf: tile + at(1, N),
                    ocount: 1,
                    oty: col_ty.clone(),
                    toff: at(1, 0),
                    tcount: 1,
                    tty: col_ty.clone(),
                });
                // My left edge column -> left neighbour's right halo.
                p.push(AppOp::Put {
                    win: 0,
                    target: left,
                    obuf: tile + at(1, 1),
                    ocount: 1,
                    oty: col_ty.clone(),
                    toff: at(1, W - 1),
                    tcount: 1,
                    tty: col_ty.clone(),
                });
                p.push(AppOp::Fence);
                p.push(AppOp::Compute { ns: 15_000 }); // stencil step
                if r == 0 && it == iters - 1 {
                    p.push(AppOp::MarkTime { slot: 1 });
                }
            }
            p
        })
        .collect();
    let stats = cluster.run(progs);

    // Verify every rank's halos against its neighbours' edges.
    for r in 0..P {
        let right = (r + 1) % P;
        let me = cluster.read_mem(r, tiles[r as usize], tile_bytes);
        let rn = cluster.read_mem(right, tiles[right as usize], tile_bytes);
        for row in 1..=N {
            let o = at(row, W - 1) as usize; // my right halo
            let e = at(row, 1) as usize; // right neighbour's left edge
            assert_eq!(&me[o..o + 8], &rn[e..e + 8], "rank {r} row {row}");
        }
    }
    println!(
        "last iteration (Put + Put + Fence + compute): {:.1} us",
        stats.mark_interval(0, 0, 1) as f64 / 1e3
    );
    println!("halos verified; receiver CPUs moved zero data bytes");
}
