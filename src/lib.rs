#![warn(missing_docs)]
//! # ibdt — MPI derived datatype communication over (simulated) InfiniBand
//!
//! Umbrella crate for the reproduction of Wu, Wyckoff & Panda,
//! *High Performance Implementation of MPI Derived Datatype Communication
//! over InfiniBand* (IPDPS 2004). It re-exports the workspace crates under
//! stable module names:
//!
//! * [`simcore`] — deterministic discrete-event simulation engine,
//! * [`memreg`] — simulated host memory, registration costs, pin-down
//!   cache and Optimistic Group Registration,
//! * [`datatype`] — the MPI derived datatype engine (dataloops, partial
//!   pack/unpack, flattening, serialization, datatype cache),
//! * [`ibsim`] — the InfiniBand Verbs simulator (QP/CQ/MR, RDMA
//!   write/read, gather/scatter, immediate data, list post),
//! * [`mpicore`] — the MPI runtime with the paper's datatype
//!   communication schemes (Generic, BC-SPUP, RWG-UP, P-RRS, Multi-W),
//! * [`workloads`] — benchmark workload generators and drivers.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system
//! inventory and experiment index.

pub use ibdt_datatype as datatype;
pub use ibdt_ibsim as ibsim;
pub use ibdt_memreg as memreg;
pub use ibdt_mpicore as mpicore;
pub use ibdt_simcore as simcore;
pub use ibdt_workloads as workloads;
