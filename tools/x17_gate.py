#!/usr/bin/env python3
"""Enforce the x17 DDT-vs-manual-pack guideline bounds.

Usage: x17_gate.py <x17.csv>

Each column of x17 is a DDT/pack+send latency ratio for one
(datatype class, transport) cell; <= 1.0 means the datatype path
wins. The guideline (arXiv:1607.00178): a datatype implementation
must never lose to manual pack+send once messages amortize the
protocol setup — enforced here from 32 KiB up on every transport
(IB, shm double-copy, shm single-copy), with the small-message
penalty capped at 1.2x below that (see EXPERIMENTS.md X17).
"""

import csv
import sys


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    rows = list(csv.DictReader(open(sys.argv[1])))
    if not rows:
        print("x17 gate: CSV is empty", file=sys.stderr)
        return 1
    bad = []
    for row in rows:
        size = int(row["size_bytes"])
        cap = 1.0 if size >= 32768 else 1.2
        for col, v in row.items():
            if col == "size_bytes":
                continue
            if float(v) > cap:
                bad.append(f"{col}@{size}: ratio {v} > {cap}")
    if bad:
        print("DDT-vs-pack guideline violated:", file=sys.stderr)
        for b in bad:
            print(f"  {b}", file=sys.stderr)
        return 1
    ncells = sum(len(r) - 1 for r in rows)
    print(
        f"x17 guideline OK ({len(rows)} sizes x {len(rows[0]) - 1} "
        f"transport/type cells, {ncells} ratios within bounds)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
