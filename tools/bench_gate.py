#!/usr/bin/env python3
"""Bench regression gate: compare a fresh BENCH_hotpath.json against the
committed baseline and fail on a >15% regression of any gated metric.

Usage: bench_gate.py <baseline.json> <fresh.json>

Two kinds of gate:

* **Time** — the end-to-end metrics (plan-level pack/unpack, the
  simulated sweeps, and the repeated-send speedup) must stay within
  TOLERANCE of the baseline. Raw microbench entries (kernel/*,
  queue/*, plan_compile/*) stay informational: single-digit-ns loops
  swing past 15% on a shared host without any code change.
* **Allocations** — `allocs_per_op` is deterministic (no host noise),
  so it gates strictly: the steady-state entries under
  ZERO_ALLOC_PREFIXES must report exactly 0, and every other gated
  entry must not allocate more than its baseline (+ half an alloc of
  float slack).
"""

import json
import sys

GATED_PREFIXES = (
    "pack/plan/",
    "unpack/plan/",
    "pack/segment/",
    "sweep_x1/",
    "shm/",
    "incast/",
    "scale/",
    "device/",
    "canon/",
)
ZERO_ALLOC_PREFIXES = (
    "repeated_send/persistent_eager/",
    "repeated_send/pack_eager/new/",
    # A canonical-hit lookup is an OnceLock read + LRU hit: no heap.
    "canon/respelled_lookup/",
)
# Absolute allocation ceilings, independent of the baseline: a
# cache-on sweep iteration is a full cluster build + 4-message
# ping-pong + teardown, measured at 17 allocs/op now that whole
# `Cluster` instances are recycled across sweep points (on top of the
# earlier thread-local spares for scratch, control buffers, segment
# free-lists, receive rings, first-touch table pages, trace span
# buffers, and the event-wheel engine). What remains is per-run
# program/interp setup and stats collection. The ceiling holds the
# line well under the pre-pooling 66 while leaving headroom for
# incidental first-touch variation.
ABS_ALLOC_CAPS = {
    "sweep_x1/pingpong_cols/4/cache_on": 24,
    "sweep_x1/pingpong_cols/64/cache_on": 24,
    "sweep_x1/pingpong_cols/512/cache_on": 24,
    # The shm transport rides the same recycled-cluster lifecycle, so
    # it gates at the same level.
    "shm/pingpong_cols/64/double": 24,
    "shm/pingpong_cols/64/single": 24,
}
TOLERANCE = 1.15
ALLOC_SLACK = 0.5


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    base = json.load(open(sys.argv[1]))
    new = json.load(open(sys.argv[2]))

    failures = []
    gated = 0
    for name, v in base.items():
        if name == "repeated_send/speedup":
            # Stored as a ratio; higher is better.
            gated += 1
            got = new.get(name, {}).get("ns_per_op")
            if got is None or got < v["ns_per_op"] / TOLERANCE:
                failures.append(
                    f"{name}: speedup {got} < {v['ns_per_op']:.2f}/{TOLERANCE}"
                )
            continue
        if name.startswith(ZERO_ALLOC_PREFIXES):
            gated += 1
            allocs = new.get(name, {}).get("allocs_per_op")
            if allocs is None:
                failures.append(f"{name}: missing from fresh run")
            elif allocs != 0:
                failures.append(
                    f"{name}: {allocs} allocs/op, steady state must be 0"
                )
        if not name.startswith(GATED_PREFIXES):
            continue
        gated += 1
        got = new.get(name, {}).get("ns_per_op")
        if got is None:
            failures.append(f"{name}: missing from fresh run")
            continue
        if got > v["ns_per_op"] * TOLERANCE:
            failures.append(
                f"{name}: {got:.1f} ns vs baseline {v['ns_per_op']:.1f} ns "
                f"(+{(got / v['ns_per_op'] - 1) * 100:.0f}%)"
            )
        base_allocs = v.get("allocs_per_op")
        new_allocs = new.get(name, {}).get("allocs_per_op")
        if base_allocs is not None and new_allocs is not None:
            if new_allocs > base_allocs + ALLOC_SLACK:
                failures.append(
                    f"{name}: {new_allocs} allocs/op vs baseline {base_allocs}"
                )
    # Absolute ceilings bind on the fresh run alone, so they hold even
    # for entries absent from (or regressed into) the baseline.
    for name, cap in ABS_ALLOC_CAPS.items():
        gated += 1
        allocs = new.get(name, {}).get("allocs_per_op")
        if allocs is None:
            failures.append(f"{name}: missing from fresh run")
        elif allocs > cap:
            failures.append(
                f"{name}: {allocs} allocs/op exceeds absolute cap {cap}"
            )

    if failures:
        print("bench gate FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"bench gate OK ({gated} metrics within {TOLERANCE}x of baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
