#!/usr/bin/env python3
"""Bench regression gate: compare a fresh BENCH_hotpath.json against the
committed baseline and fail on a >15% regression of any gated metric.

Usage: bench_gate.py <baseline.json> <fresh.json>

Gated metrics are the end-to-end ones (plan-level pack/unpack, the
simulated sweeps, and the repeated-send speedup). Raw microbench
entries (kernel/*, queue/*, plan_compile/*) stay informational:
single-digit-ns loops swing past 15% on a shared host without any code
change.
"""

import json
import sys

GATED_PREFIXES = ("pack/plan/", "unpack/plan/", "pack/segment/", "sweep_x1/")
TOLERANCE = 1.15


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    base = json.load(open(sys.argv[1]))
    new = json.load(open(sys.argv[2]))

    failures = []
    gated = 0
    for name, v in base.items():
        if name == "repeated_send/speedup":
            # Stored as a ratio; higher is better.
            gated += 1
            got = new.get(name, {}).get("ns_per_op")
            if got is None or got < v["ns_per_op"] / TOLERANCE:
                failures.append(
                    f"{name}: speedup {got} < {v['ns_per_op']:.2f}/{TOLERANCE}"
                )
            continue
        if not name.startswith(GATED_PREFIXES):
            continue
        gated += 1
        got = new.get(name, {}).get("ns_per_op")
        if got is None:
            failures.append(f"{name}: missing from fresh run")
        elif got > v["ns_per_op"] * TOLERANCE:
            failures.append(
                f"{name}: {got:.1f} ns vs baseline {v['ns_per_op']:.1f} ns "
                f"(+{(got / v['ns_per_op'] - 1) * 100:.0f}%)"
            )

    if failures:
        print("bench gate FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"bench gate OK ({gated} metrics within {TOLERANCE}x of baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
