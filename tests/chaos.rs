//! Chaos tests: random derived datatypes × schemes × seeded fault
//! plans pushed through the full stack. The contract under injected
//! faults is strict — every message is either delivered byte-exact
//! (transport recovered transparently) or fails with a typed
//! [`MpiError`]; panics and silent corruption are both bugs. The same
//! seed must reproduce the same virtual clock and counters.

use ibdt::datatype::Datatype;
use ibdt::mpicore::{
    AppOp, Cluster, ClusterSpec, FaultPlan, LinkFault, MpiError, RunStats, Scheme,
};
use ibdt_testkit::{cases, chaos_seed, Rng};

fn random_type(rng: &mut Rng) -> Datatype {
    let byte = Datatype::byte();
    match rng.range_u64(0, 3) {
        0 => {
            let blocklen = rng.range_u64(1, 500);
            let stride = blocklen + rng.range_u64(0, 500);
            Datatype::hvector(rng.range_u64(1, 120), blocklen, stride as i64, &byte).unwrap()
        }
        1 => {
            let n = rng.range_usize(1, 20);
            let mut displ = 0i64;
            let mut entries = Vec::new();
            for _ in 0..n {
                let len = rng.range_u64(1, 400);
                entries.push((len, displ));
                displ += (len + rng.range_u64(0, 600)) as i64;
            }
            Datatype::hindexed(&entries, &byte).unwrap()
        }
        _ => Datatype::contiguous(rng.range_u64(1, 60_000), &byte).unwrap(),
    }
}

fn scheme_of(i: u8) -> Scheme {
    match i % 7 {
        0 => Scheme::Generic,
        1 => Scheme::BcSpup,
        2 => Scheme::RwgUp,
        3 => Scheme::PRrs,
        4 => Scheme::MultiW,
        5 => Scheme::Hybrid,
        _ => Scheme::Adaptive,
    }
}

/// One send/recv pair under `spec`; returns the run stats plus the
/// source and destination windows for byte comparison.
fn run_pair(
    spec: ClusterSpec,
    ty: &Datatype,
    count: u64,
    seed: u64,
) -> (RunStats, Vec<u8>, Vec<u8>) {
    let mut cluster = Cluster::new(spec);
    let span = ((count - 1) as i64 * ty.extent() + ty.true_ub()).max(8) as u64 + 64;
    let sbuf = cluster.alloc(0, span, 4096);
    let rbuf = cluster.alloc(1, span, 4096);
    cluster.fill_pattern(0, sbuf, span, seed);
    cluster.fill_pattern(1, rbuf, span, seed ^ 0xFFFF);
    let p0 = vec![
        AppOp::Isend {
            peer: 1,
            buf: sbuf,
            count,
            ty: ty.clone(),
            tag: 1,
        },
        AppOp::WaitAll,
    ];
    let p1 = vec![
        AppOp::Irecv {
            peer: 0,
            buf: rbuf,
            count,
            ty: ty.clone(),
            tag: 1,
        },
        AppOp::WaitAll,
    ];
    let stats = cluster.run(vec![p0, p1]);
    let src = cluster.read_mem(0, sbuf, span);
    let dst = cluster.read_mem(1, rbuf, span);
    (stats, src, dst)
}

fn assert_delivered(ty: &Datatype, count: u64, src: &[u8], dst: &[u8], what: &str) {
    for (off, len) in ty.flat().repeat(count) {
        let o = off as usize;
        assert_eq!(
            &dst[o..o + len as usize],
            &src[o..o + len as usize],
            "{what}: corrupted block at offset {off}"
        );
    }
}

/// Moderate fault rates stay inside the transport's retry budget: the
/// run must end with zero protocol-visible errors and byte-exact
/// delivery, and the identical seed must reproduce the identical
/// virtual clock and counters.
#[test]
fn recoverable_chaos_delivers_exactly_and_deterministically() {
    cases(chaos_seed(0xC4A0_0001), 24, |rng| {
        let ty = random_type(rng);
        let scheme = scheme_of(rng.next_u64() as u8);
        let count = rng.range_u64(1, 3);
        if ty.size() == 0 || ty.size() * count >= 4 << 20 {
            return;
        }
        let pattern_seed = rng.next_u64();
        let faults = FaultPlan {
            seed: rng.next_u64(),
            drop_rate: rng.range_u64(0, 16) as f64 / 100.0,
            corrupt_rate: rng.range_u64(0, 16) as f64 / 100.0,
            delay_rate: rng.range_u64(0, 30) as f64 / 100.0,
            max_delay_ns: 30_000,
            stall_rate: rng.range_u64(0, 10) as f64 / 100.0,
            stall_ns: 5_000,
            ..FaultPlan::none()
        };
        let spec = || {
            let mut s = ClusterSpec::default();
            s.mpi.audit = true;
            s.mpi.scheme = scheme;
            s.faults = faults.clone();
            s
        };
        let (stats, src, dst) = run_pair(spec(), &ty, count, pattern_seed);
        assert_eq!(
            stats.total_errors(),
            0,
            "recoverable fault rates must not surface errors (scheme {scheme:?}): {:?}",
            stats.errors
        );
        assert_delivered(&ty, count, &src, &dst, "chaos delivery");

        // Determinism: replay with the identical seed.
        let (replay, _, _) = run_pair(spec(), &ty, count, pattern_seed);
        assert_eq!(stats.finish_ns, replay.finish_ns, "virtual clock diverged");
        assert_eq!(
            stats.counters, replay.counters,
            "protocol counters diverged"
        );
        assert_eq!(stats.retransmits, replay.retransmits);
        assert_eq!(stats.drops_injected, replay.drops_injected);
        assert_eq!(stats.corruptions_injected, replay.corruptions_injected);
    });
}

/// Total loss with a tiny retry budget: the run must terminate without
/// panicking and report typed transport errors on both sides.
#[test]
fn unrecoverable_loss_fails_with_typed_errors() {
    cases(chaos_seed(0xC4A0_0002), 10, |rng| {
        let ty = random_type(rng);
        let scheme = scheme_of(rng.next_u64() as u8);
        if ty.size() == 0 || ty.size() >= 2 << 20 {
            return;
        }
        let mut spec = ClusterSpec::default();
        spec.mpi.audit = true;
        spec.mpi.scheme = scheme;
        spec.net.retry_cnt = 1;
        spec.faults = FaultPlan {
            seed: rng.next_u64(),
            drop_rate: 1.0,
            ..FaultPlan::none()
        };
        let (stats, _, _) = run_pair(spec, &ty, 1, 42);
        assert!(
            stats.total_errors() > 0,
            "total loss must surface typed errors (scheme {scheme:?})"
        );
        assert!(stats.qp_errors >= 1);
        let typed = stats.errors.iter().flatten().any(|e| {
            matches!(
                e,
                MpiError::RetryExceeded { .. }
                    | MpiError::Flushed { .. }
                    | MpiError::Post { .. }
                    | MpiError::Incomplete
            )
        });
        assert!(
            typed,
            "expected transport-shaped errors, got {:?}",
            stats.errors
        );
    });
}

/// A registration budget too small for zero-copy pinning must degrade
/// RWG-UP / P-RRS / Multi-W to a copy-based scheme per message —
/// recorded in the counters — and still deliver byte-exact.
#[test]
fn registration_budget_forces_copy_fallback() {
    for scheme in [Scheme::RwgUp, Scheme::PRrs, Scheme::MultiW] {
        let ty = Datatype::hvector(64, 1024, 2048, &Datatype::byte()).unwrap();
        let mut spec = ClusterSpec::default();
        spec.mpi.audit = true;
        spec.mpi.scheme = scheme;
        spec.mpi.reg_budget_bytes = 4096; // far below the 64 KiB payload
        let (stats, src, dst) = run_pair(spec, &ty, 1, 7);
        assert_eq!(
            stats.total_errors(),
            0,
            "budget pressure must degrade, not fail ({scheme:?}): {:?}",
            stats.errors
        );
        let fallbacks: u64 = stats.counters.iter().map(|c| c.scheme_fallbacks).sum();
        assert!(
            fallbacks > 0,
            "{scheme:?} should have recorded a scheme fallback"
        );
        assert_delivered(&ty, 1, &src, &dst, "budget fallback");
    }
}

/// With an ample budget the same messages must NOT fall back (guards
/// against the budget check being over-eager).
#[test]
fn ample_budget_never_falls_back() {
    for scheme in [Scheme::RwgUp, Scheme::PRrs, Scheme::MultiW] {
        let ty = Datatype::hvector(64, 1024, 2048, &Datatype::byte()).unwrap();
        let mut spec = ClusterSpec::default();
        spec.mpi.audit = true;
        spec.mpi.scheme = scheme;
        let (stats, src, dst) = run_pair(spec, &ty, 1, 7);
        let fallbacks: u64 = stats.counters.iter().map(|c| c.scheme_fallbacks).sum();
        assert_eq!(
            fallbacks, 0,
            "{scheme:?} fell back despite unlimited budget"
        );
        assert_delivered(&ty, 1, &src, &dst, "no-fallback delivery");
    }
}

/// A receiver that is slow to post its receive triggers the
/// rendezvous-reply timeout: the sender must probe (bounded), the
/// late reply must still complete the message, and the duplicate-reply
/// guard must keep the data byte-exact.
#[test]
fn slow_receiver_triggers_reply_probe_and_still_delivers() {
    let ty = Datatype::contiguous(256 * 1024, &Datatype::byte()).unwrap();
    let mut spec = ClusterSpec::default();
    spec.mpi.audit = true;
    spec.mpi.scheme = Scheme::BcSpup;
    spec.mpi.rndv_reply_timeout_ns = 20_000;
    spec.mpi.rndv_max_rerequests = 100; // don't abort before the 300µs wake-up
    let mut cluster = Cluster::new(spec);
    let span = ty.size() + 64;
    let sbuf = cluster.alloc(0, span, 4096);
    let rbuf = cluster.alloc(1, span, 4096);
    cluster.fill_pattern(0, sbuf, span, 19);
    let p0 = vec![
        AppOp::Isend {
            peer: 1,
            buf: sbuf,
            count: 1,
            ty: ty.clone(),
            tag: 0,
        },
        AppOp::WaitAll,
    ];
    let p1 = vec![
        // The unexpected RndvStart sits unanswered well past the
        // sender's reply timeout.
        AppOp::Compute { ns: 300_000 },
        AppOp::Irecv {
            peer: 0,
            buf: rbuf,
            count: 1,
            ty: ty.clone(),
            tag: 0,
        },
        AppOp::WaitAll,
    ];
    let stats = cluster.run(vec![p0, p1]);
    assert_eq!(
        stats.total_errors(),
        0,
        "probe path must not fail: {:?}",
        stats.errors
    );
    let probes: u64 = stats.counters.iter().map(|c| c.rndv_rerequests).sum();
    assert!(
        probes > 0,
        "sender never probed despite 300µs receive delay"
    );
    let src = cluster.read_mem(0, sbuf, span);
    let dst = cluster.read_mem(1, rbuf, span);
    assert_delivered(&ty, 1, &src, &dst, "reply-timeout delivery");
}

/// A mid-transfer port failure with Automatic Path Migration enabled
/// (the default) must be invisible to the MPI layer: the HCA fails
/// over to the alternate path, the transfer finishes byte-exact with
/// zero protocol errors, and the run delivers the same bytes a
/// fault-free run does — for every rendezvous scheme.
#[test]
fn link_failover_is_transparent_across_schemes() {
    let ty = Datatype::hvector(64, 4096, 8192, &Datatype::byte()).unwrap();
    for scheme in [
        Scheme::BcSpup,
        Scheme::RwgUp,
        Scheme::PRrs,
        Scheme::MultiW,
        Scheme::Hybrid,
    ] {
        let spec = |faults: FaultPlan| {
            let mut s = ClusterSpec::default();
            s.mpi.audit = true;
            s.mpi.scheme = scheme;
            s.faults = faults;
            s
        };
        // Take the sender's primary port down in the middle of the
        // 256 KiB transfer, long enough that waiting it out is not an
        // option — only migration or reconnection can finish the run.
        let faults = FaultPlan {
            seed: 0xAB1E,
            link_faults: vec![LinkFault {
                at_ns: 30_000,
                node: 0,
                port: 0,
                down_ns: 3_000_000,
            }],
            ..FaultPlan::none()
        };
        let (clean, src_clean, dst_clean) = run_pair(spec(FaultPlan::none()), &ty, 1, 5);
        let (stats, src, dst) = run_pair(spec(faults), &ty, 1, 5);
        assert_eq!(clean.total_errors(), 0);
        assert_eq!(
            stats.total_errors(),
            0,
            "APM failover must be transparent ({scheme:?}): {:?}",
            stats.errors
        );
        assert!(
            stats.migrations >= 1,
            "{scheme:?}: port-down during transfer should have migrated"
        );
        assert_delivered(&ty, 1, &src, &dst, "failover delivery");
        assert_eq!(src, src_clean, "source window must be untouched");
        assert_eq!(dst, dst_clean, "failover changed the delivered bytes");
        // The fabric attributes the failover to the affected node.
        let per_rank: u64 = stats.fabric_per_rank.iter().map(|f| f.migrations).sum();
        assert_eq!(per_rank, stats.migrations, "per-rank migration attribution");
    }
}

/// The same mid-transfer port failure with APM disabled forces the QP
/// into the error state; the MPI connection manager must tear it down,
/// re-establish it once the port returns, and re-drive the in-flight
/// rendezvous from the last acknowledged chunk — still byte-exact,
/// still zero errors, with the recovery visible in the counters.
#[test]
fn link_down_without_apm_recovers_via_reconnect() {
    let ty = Datatype::hvector(64, 4096, 8192, &Datatype::byte()).unwrap();
    for scheme in [
        Scheme::BcSpup,
        Scheme::RwgUp,
        Scheme::PRrs,
        Scheme::MultiW,
        Scheme::Hybrid,
    ] {
        let mut spec = ClusterSpec::default();
        spec.mpi.audit = true;
        spec.mpi.scheme = scheme;
        spec.net.apm_enabled = false;
        spec.faults = FaultPlan {
            seed: 0xAB2E,
            link_faults: vec![LinkFault {
                at_ns: 30_000,
                node: 0,
                port: 0,
                down_ns: 80_000,
            }],
            ..FaultPlan::none()
        };
        let (stats, src, dst) = run_pair(spec, &ty, 1, 5);
        assert_eq!(
            stats.total_errors(),
            0,
            "reconnect must recover the transfer ({scheme:?}): {:?}",
            stats.errors
        );
        assert!(
            stats.qp_errors >= 1,
            "{scheme:?}: port-down should have errored the QP"
        );
        let reestablished: u64 = stats.counters.iter().map(|c| c.qp_reestablished).sum();
        assert!(
            reestablished >= 1,
            "{scheme:?}: recovery must re-establish the dead connection"
        );
        assert_delivered(&ty, 1, &src, &dst, "reconnect delivery");
    }
}

/// A node whose *both* ports die (and stay dead) cannot migrate or
/// re-path: reconnect attempts exhaust `max_reconnects` and the run
/// must terminate (watchdog, not hang) with `ConnectionLost` or
/// `Incomplete` — typed errors, never a panic.
#[test]
fn reconnect_budget_exhaustion_fails_typed() {
    let ty = Datatype::hvector(64, 4096, 8192, &Datatype::byte()).unwrap();
    let mut spec = ClusterSpec::default();
    spec.mpi.audit = true;
    spec.mpi.scheme = Scheme::BcSpup;
    spec.mpi.max_reconnects = 2;
    spec.net.apm_enabled = false;
    spec.faults = FaultPlan {
        seed: 0xAB3E,
        link_faults: vec![
            LinkFault {
                at_ns: 30_000,
                node: 0,
                port: 0,
                down_ns: 50_000_000,
            },
            LinkFault {
                at_ns: 30_000,
                node: 0,
                port: 1,
                down_ns: 50_000_000,
            },
        ],
        ..FaultPlan::none()
    };
    let (stats, _, _) = run_pair(spec, &ty, 1, 5);
    assert!(
        stats.total_errors() > 0,
        "a dead node must surface typed errors"
    );
    assert!(
        stats
            .errors
            .iter()
            .flatten()
            .any(|e| matches!(e, MpiError::ConnectionLost { .. } | MpiError::Incomplete)),
        "expected ConnectionLost/Incomplete, got {:?}",
        stats.errors
    );
}

/// §5.4.2: a pin-down cache eviction racing a zero-copy scheme makes
/// the receiver's exposed region vanish mid-transfer. The remote
/// write faults (protection error), and the sender must renegotiate
/// the message down to copy-based BC-SPUP — counted, byte-exact, no
/// protocol-visible error.
#[test]
fn protection_fault_renegotiates_to_copy_and_delivers() {
    let ty = Datatype::hvector(64, 4096, 8192, &Datatype::byte()).unwrap();
    for scheme in [Scheme::MultiW, Scheme::Hybrid] {
        let mut spec = ClusterSpec::default();
        spec.mpi.audit = true;
        spec.mpi.scheme = scheme;
        spec.faults = FaultPlan {
            seed: 0xAB4E,
            evict_rate: 1.0,
            ..FaultPlan::none()
        };
        let (stats, src, dst) = run_pair(spec, &ty, 1, 5);
        assert_eq!(
            stats.total_errors(),
            0,
            "protection fault must degrade, not fail ({scheme:?}): {:?}",
            stats.errors
        );
        let fallbacks: u64 = stats.counters.iter().map(|c| c.protection_fallbacks).sum();
        assert!(
            fallbacks >= 1,
            "{scheme:?}: forced eviction should have triggered the §5.4.2 fallback"
        );
        assert_delivered(&ty, 1, &src, &dst, "renegotiated delivery");
    }
}

/// Exhausting the probe budget (receiver never posts) must abort the
/// send with `ReplyTimeout`, not hang or panic.
#[test]
fn exhausted_probe_budget_aborts_with_reply_timeout() {
    let ty = Datatype::contiguous(64 * 1024, &Datatype::byte()).unwrap();
    let mut spec = ClusterSpec::default();
    spec.mpi.audit = true;
    spec.mpi.scheme = Scheme::BcSpup;
    spec.mpi.rndv_reply_timeout_ns = 10_000;
    spec.mpi.rndv_max_rerequests = 2;
    let mut cluster = Cluster::new(spec);
    let sbuf = cluster.alloc(0, ty.size(), 4096);
    let p0 = vec![
        AppOp::Isend {
            peer: 1,
            buf: sbuf,
            count: 1,
            ty: ty.clone(),
            tag: 0,
        },
        AppOp::WaitAll,
    ];
    // Rank 1 never posts the receive.
    let stats = cluster.run(vec![p0, vec![]]);
    assert!(stats
        .errors
        .iter()
        .flatten()
        .any(|e| matches!(e, MpiError::ReplyTimeout { peer: 1, .. })));
    let probes: u64 = stats.counters.iter().map(|c| c.rndv_rerequests).sum();
    assert_eq!(probes, 2, "probe count must respect rndv_max_rerequests");
}
