//! Chaos at scale: crash-stop node failures under the sharded scale
//! driver and the full protocol cluster.
//!
//! Three contracts are asserted here:
//!
//! 1. **Determinism under chaos** — a seeded crash/stall plan on the
//!    sharded scale driver fingerprints bit-identically across shard
//!    and thread counts, with the per-rank failure observations
//!    (messages received, stuck window slots, crashed-or-not) folded
//!    into the digest.
//! 2. **Drain, never hang** — when a member crash-stops mid-Alltoall
//!    on the full cluster, survivors finish or fail *typed*
//!    ([`MpiError::PeerFailed`] / [`MpiError::Incomplete`]); the
//!    bounded-event watchdog guarantees the run terminates either way,
//!    and the invariant auditor stays on the whole time. If the crashed
//!    node has a restart window inside the connection-manager budget,
//!    the run instead **recovers** with zero typed errors.
//! 3. **Shrinkability** — a failing chaos plan delta-minimizes to the
//!    smallest event list that still reproduces, and the minimal plan
//!    plus its seed is printed for a one-line replay.

use ibdt::datatype::Datatype;
use ibdt::mpicore::{
    AppOp, Cluster, ClusterSpec, FaultPlan, MpiError, NodeFault, Program, Scheme,
};
use ibdt::workloads::{run_scale, ScaleConfig, ScaleFault, ScaleFaultPlan};
use ibdt_testkit::{chaos_seed, shrink_report};

/// Seed matrix mirrored by `ci.sh --chaos-scale`; `IBDT_CHAOS_SEED`
/// prepends an override seed for replaying a CI failure locally.
fn seed_matrix() -> Vec<u64> {
    let mut seeds = vec![0x1, 0xBEEF, 0xC4A0, 0xFEED];
    let over = chaos_seed(0x1);
    if !seeds.contains(&over) {
        seeds.insert(0, over);
    }
    seeds
}

/// A seeded crash+stall plan over 256 ranks placed inside the busy
/// part of the run (the default-cost 256-rank alltoall finishes in a
/// few milliseconds of virtual time).
fn plan_for(seed: u64) -> ScaleFaultPlan {
    ScaleFaultPlan::seeded(seed, 256, 5, 8, 1_000_000)
}

#[test]
fn chaotic_scale_runs_fingerprint_identically_across_shards() {
    for seed in seed_matrix() {
        let cfg = ScaleConfig {
            ranks: 256,
            faults: plan_for(seed),
            ..ScaleConfig::default()
        };
        let reference = run_scale(&ScaleConfig {
            shards: 1,
            threads: 1,
            ..cfg.clone()
        });
        assert_eq!(reference.crashed, 5, "seed {seed:#x}");
        assert!(
            reference.msgs < 256 * 255,
            "seed {seed:#x}: crashes must strand traffic"
        );
        for (shards, threads) in [(2, 2), (8, 4), (8, 8)] {
            let r = run_scale(&ScaleConfig {
                shards,
                threads,
                ..cfg.clone()
            });
            assert_eq!(
                (r.fingerprint, r.finish_ns, r.msgs, r.crashed, r.lost),
                (
                    reference.fingerprint,
                    reference.finish_ns,
                    reference.msgs,
                    reference.crashed,
                    reference.lost
                ),
                "seed {seed:#x} shards={shards} threads={threads}"
            );
        }
    }
}

#[test]
fn chaotic_run_replays_bit_identically_on_same_seed() {
    let cfg = ScaleConfig {
        ranks: 256,
        shards: 8,
        threads: 8,
        faults: plan_for(0xBEEF),
        ..ScaleConfig::default()
    };
    assert_eq!(run_scale(&cfg), run_scale(&cfg), "same seed must replay");
}

fn spec(nprocs: u32, faults: FaultPlan) -> ClusterSpec {
    let mut s = ClusterSpec {
        nprocs,
        ..Default::default()
    };
    s.mpi.scheme = Scheme::BcSpup;
    // The invariant auditor runs through the whole chaotic run: the
    // conservation laws must hold even while a member is dead (the
    // quiescent-matching law is gated internally on clean runs).
    s.mpi.audit = true;
    s.faults = faults;
    s
}

/// 4-rank Alltoall with per-pair payload large enough that the crash
/// at `at_ns` lands mid-transfer.
fn run_alltoall(faults: FaultPlan) -> (ibdt::mpicore::RunStats, Vec<Vec<u8>>) {
    let n = 4u32;
    let count = 8192u64;
    let ty = Datatype::byte();
    let mut cluster = Cluster::new(spec(n, faults));
    let mut progs: Vec<Program> = Vec::new();
    let mut rbufs = Vec::new();
    for r in 0..n {
        let sbuf = cluster.alloc(r, count * n as u64, 4096);
        let rbuf = cluster.alloc(r, count * n as u64, 4096);
        cluster.fill_pattern(r, sbuf, count * n as u64, 0x3C + r as u64);
        rbufs.push(rbuf);
        progs.push(vec![AppOp::Alltoall {
            sbuf,
            rbuf,
            count,
            sty: ty.clone(),
            rty: ty.clone(),
        }]);
    }
    let stats = cluster.run(progs);
    let out = (0..n)
        .map(|r| cluster.read_mem(r, rbufs[r as usize], count * n as u64))
        .collect();
    (stats, out)
}

#[test]
fn member_death_mid_alltoall_drains_typed_and_terminates() {
    // Rank 2 crash-stops mid-collective with no restart. The run must
    // terminate (bounded watchdog; quiescence), never panic, and the
    // failure must surface typed: survivors see PeerFailed once the
    // membership view confirms the peer is never coming back, and
    // unfinishable programs report Incomplete.
    let faults = FaultPlan {
        seed: 0xDEAD,
        node_faults: vec![NodeFault {
            at_ns: 40_000,
            node: 2,
            restart_after_ns: None,
        }],
        ..FaultPlan::none()
    };
    let (stats, _) = run_alltoall(faults.clone());
    assert_eq!(stats.node_crashes, 1);
    assert!(
        stats.total_errors() > 0,
        "a permanent member death cannot be error-free"
    );
    let all: Vec<MpiError> = stats.errors.iter().flatten().copied().collect();
    assert!(
        all.iter()
            .any(|e| matches!(e, MpiError::PeerFailed { peer: 2 })),
        "survivors must classify the dead peer as failed, got {all:?}"
    );
    assert!(
        all.iter().any(|e| matches!(e, MpiError::Incomplete)),
        "stranded programs must report Incomplete, got {all:?}"
    );
    // No survivor may sit on an untyped hang: every rank either
    // finished its program or holds at least one typed error.
    for r in 0..4usize {
        let finished = stats.rank_finish_ns[r] > 0;
        assert!(
            finished || !stats.errors[r].is_empty(),
            "rank {r} neither finished nor errored"
        );
    }
    // Deterministic replay of the whole failure picture.
    let (again, _) = run_alltoall(faults);
    assert_eq!(again.finish_ns, stats.finish_ns, "crash replay diverged");
    assert_eq!(again.errors, stats.errors, "typed errors diverged");
}

#[test]
fn member_restart_within_budget_recovers_cleanly() {
    // Same crash point, but the node restarts well inside the
    // connection manager's reconnect budget (3 × 100 µs): the QPs are
    // re-established and the collective completes with zero typed
    // errors and the exact fault-free bytes.
    let (_, want) = run_alltoall(FaultPlan::none());
    let faults = FaultPlan {
        seed: 0xD00D,
        node_faults: vec![NodeFault {
            at_ns: 40_000,
            node: 2,
            restart_after_ns: Some(80_000),
        }],
        ..FaultPlan::none()
    };
    let (stats, got) = run_alltoall(faults);
    assert_eq!(stats.node_crashes, 1);
    assert_eq!(
        stats.total_errors(),
        0,
        "restart inside the reconnect budget must recover: {:?}",
        stats.errors
    );
    assert_eq!(got, want, "recovered alltoall changed the result");
}

#[test]
fn shrinker_minimizes_a_failing_chaos_plan() {
    // A deliberately noisy plan: several crashes and stalls, of which
    // a single crash suffices to reproduce "the run loses messages".
    // The shrinker must strip the noise down to one crash event and
    // the minimal plan must still reproduce.
    let seed = 0xFA11;
    let plan = ScaleFaultPlan::seeded(seed, 64, 3, 6, 500_000);
    let reproduces = |events: &[ScaleFault]| {
        let r = run_scale(&ScaleConfig {
            ranks: 64,
            faults: ScaleFaultPlan {
                seed,
                events: events.to_vec(),
            },
            ..ScaleConfig::default()
        });
        r.lost > 0
    };
    assert!(reproduces(&plan.events), "the full plan must fail first");
    let report = shrink_report(&plan.events, reproduces);
    // The failure report a harness would print: seed + minimal plan.
    eprintln!(
        "chaos-shrink: seed {seed:#x}: {} — minimal plan {:?}",
        report.summary(),
        report.minimal
    );
    assert!(
        report.minimal.len() < plan.events.len(),
        "stalls and extra crashes are noise; the shrinker must drop them"
    );
    assert_eq!(report.minimal.len(), 1, "one crash suffices to lose mail");
    assert!(
        matches!(report.minimal[0], ScaleFault::Crash { .. }),
        "stalls never lose messages; the culprit must be a crash"
    );
    assert!(reproduces(&report.minimal), "minimal plan must reproduce");
}
