//! Transfer-plan cache equivalence: the compiled-plan cache and the
//! scratch pools are host-side optimizations only. Toggling the cache
//! (or shrinking it until it thrashes) must change NOTHING observable
//! in the simulation — byte-exact delivery, identical virtual clock,
//! identical protocol counters and wire traffic — with and without
//! injected transport faults.

use ibdt::datatype::Datatype;
use ibdt::mpicore::{AppOp, Cluster, ClusterSpec, FaultPlan, RunStats, Scheme};
use ibdt_testkit::{cases, Rng};

fn random_type(rng: &mut Rng) -> Datatype {
    let byte = Datatype::byte();
    match rng.range_u64(0, 4) {
        0 => {
            let blocklen = rng.range_u64(1, 500);
            let stride = blocklen + rng.range_u64(0, 500);
            Datatype::hvector(rng.range_u64(1, 120), blocklen, stride as i64, &byte).unwrap()
        }
        1 => {
            let n = rng.range_usize(1, 20);
            let mut displ = 0i64;
            let mut entries = Vec::new();
            for _ in 0..n {
                let len = rng.range_u64(1, 400);
                entries.push((len, displ));
                displ += (len + rng.range_u64(0, 600)) as i64;
            }
            Datatype::hindexed(&entries, &byte).unwrap()
        }
        2 => {
            // Nested: vector of vectors, the paper's matrix-column shape.
            let inner =
                Datatype::hvector(rng.range_u64(1, 8), rng.range_u64(1, 64), 96, &byte).unwrap();
            Datatype::contiguous(rng.range_u64(1, 16), &inner).unwrap()
        }
        _ => Datatype::contiguous(rng.range_u64(1, 60_000), &byte).unwrap(),
    }
}

fn scheme_of(i: u8) -> Scheme {
    match i % 7 {
        0 => Scheme::Generic,
        1 => Scheme::BcSpup,
        2 => Scheme::RwgUp,
        3 => Scheme::PRrs,
        4 => Scheme::MultiW,
        5 => Scheme::Hybrid,
        _ => Scheme::Adaptive,
    }
}

/// `nmsgs` back-to-back send/recv pairs of the same datatype under
/// `spec`; returns stats plus both memory windows.
fn run_pairs(
    spec: ClusterSpec,
    ty: &Datatype,
    count: u64,
    nmsgs: u32,
    seed: u64,
) -> (RunStats, Vec<u8>, Vec<u8>) {
    let mut cluster = Cluster::new(spec);
    let span = ((count - 1) as i64 * ty.extent() + ty.true_ub()).max(8) as u64 + 64;
    let sbuf = cluster.alloc(0, span, 4096);
    let rbuf = cluster.alloc(1, span, 4096);
    cluster.fill_pattern(0, sbuf, span, seed);
    cluster.fill_pattern(1, rbuf, span, seed ^ 0xFFFF);
    let mut p0 = Vec::new();
    let mut p1 = Vec::new();
    for tag in 0..nmsgs {
        p0.push(AppOp::Isend {
            peer: 1,
            buf: sbuf,
            count,
            ty: ty.clone(),
            tag,
        });
        p0.push(AppOp::WaitAll);
        p1.push(AppOp::Irecv {
            peer: 0,
            buf: rbuf,
            count,
            ty: ty.clone(),
            tag,
        });
        p1.push(AppOp::WaitAll);
    }
    let stats = cluster.run(vec![p0, p1]);
    let src = cluster.read_mem(0, sbuf, span);
    let dst = cluster.read_mem(1, rbuf, span);
    (stats, src, dst)
}

fn assert_delivered(ty: &Datatype, count: u64, src: &[u8], dst: &[u8], what: &str) {
    for (off, len) in ty.flat().repeat(count) {
        let o = off as usize;
        assert_eq!(
            &dst[o..o + len as usize],
            &src[o..o + len as usize],
            "{what}: corrupted block at offset {off}"
        );
    }
}

fn assert_same_observables(a: &RunStats, b: &RunStats, what: &str) {
    assert_eq!(a.finish_ns, b.finish_ns, "{what}: virtual clock diverged");
    assert_eq!(
        a.rank_finish_ns, b.rank_finish_ns,
        "{what}: per-rank clocks diverged"
    );
    assert_eq!(a.counters, b.counters, "{what}: protocol counters diverged");
    assert_eq!(
        a.cpu_busy_ns, b.cpu_busy_ns,
        "{what}: CPU busy time diverged"
    );
    assert_eq!(a.wqes, b.wqes, "{what}: WQE count diverged");
    assert_eq!(
        a.bytes_on_wire, b.bytes_on_wire,
        "{what}: wire bytes diverged"
    );
    assert_eq!(a.reg_ops, b.reg_ops, "{what}: registration ops diverged");
    assert_eq!(
        a.pindown, b.pindown,
        "{what}: pin-down cache behavior diverged"
    );
    assert_eq!(a.retransmits, b.retransmits, "{what}: retransmits diverged");
    assert_eq!(
        a.drops_injected, b.drops_injected,
        "{what}: fault injection diverged"
    );
    assert_eq!(
        a.corruptions_injected, b.corruptions_injected,
        "{what}: corruption diverged"
    );
    assert_eq!(
        a.errors.iter().map(Vec::len).collect::<Vec<_>>(),
        b.errors.iter().map(Vec::len).collect::<Vec<_>>(),
        "{what}: error counts diverged"
    );
}

/// Random datatype × scheme × message schedule: byte delivery and every
/// virtual-clock observable must be identical with the plan cache on,
/// off, and thrashing (capacity 1).
#[test]
fn plan_cache_toggle_is_observationally_equivalent() {
    cases(0x914A_0001, 18, |rng| {
        let ty = random_type(rng);
        let scheme = scheme_of(rng.next_u64() as u8);
        let count = rng.range_u64(1, 3);
        if ty.size() == 0 || ty.size() * count >= 2 << 20 {
            return;
        }
        let nmsgs = rng.range_u64(1, 4) as u32;
        let pattern_seed = rng.next_u64();
        let spec = |cache: bool, entries: usize| {
            let mut s = ClusterSpec::default();
            s.mpi.scheme = scheme;
            s.mpi.plan_cache = cache;
            s.mpi.plan_cache_entries = entries;
            s
        };
        let (on, src_on, dst_on) = run_pairs(spec(true, 64), &ty, count, nmsgs, pattern_seed);
        let (off, _, dst_off) = run_pairs(spec(false, 64), &ty, count, nmsgs, pattern_seed);
        let (tiny, _, dst_tiny) = run_pairs(spec(true, 1), &ty, count, nmsgs, pattern_seed);
        assert_eq!(
            on.total_errors(),
            0,
            "clean run must not error: {:?}",
            on.errors
        );
        assert_delivered(&ty, count, &src_on, &dst_on, "cache-on delivery");
        assert_eq!(dst_on, dst_off, "cache off changed delivered bytes");
        assert_eq!(dst_on, dst_tiny, "thrashing cache changed delivered bytes");
        assert_same_observables(&on, &off, "on vs off");
        assert_same_observables(&on, &tiny, "on vs capacity-1");
        // Only the host-side cache statistics may differ: disabled
        // lookups are all misses and never hit.
        let (hits_off, misses_off): (u64, u64) = off
            .plan_cache
            .iter()
            .fold((0, 0), |(h, m), &(a, b, _)| (h + a, m + b));
        assert_eq!(hits_off, 0, "disabled cache cannot hit");
        assert!(misses_off > 0, "sends must have consulted the plan path");
    });
}

/// The same equivalence must hold while the transport is dropping,
/// corrupting, and delaying packets: retransmission schedules are
/// derived from the virtual clock, so a host-only cache cannot move
/// them.
#[test]
fn plan_cache_equivalence_under_fault_injection() {
    cases(0x914A_0002, 12, |rng| {
        let ty = random_type(rng);
        let scheme = scheme_of(rng.next_u64() as u8);
        let count = rng.range_u64(1, 3);
        if ty.size() == 0 || ty.size() * count >= 2 << 20 {
            return;
        }
        let pattern_seed = rng.next_u64();
        let faults = FaultPlan {
            seed: rng.next_u64(),
            drop_rate: rng.range_u64(0, 16) as f64 / 100.0,
            corrupt_rate: rng.range_u64(0, 16) as f64 / 100.0,
            delay_rate: rng.range_u64(0, 30) as f64 / 100.0,
            max_delay_ns: 30_000,
            stall_rate: rng.range_u64(0, 10) as f64 / 100.0,
            stall_ns: 5_000,
            ..FaultPlan::none()
        };
        let spec = |cache: bool| {
            let mut s = ClusterSpec::default();
            s.mpi.scheme = scheme;
            s.mpi.plan_cache = cache;
            s.faults = faults.clone();
            s
        };
        let (on, src_on, dst_on) = run_pairs(spec(true), &ty, count, 2, pattern_seed);
        let (off, _, dst_off) = run_pairs(spec(false), &ty, count, 2, pattern_seed);
        assert_eq!(
            on.total_errors(),
            0,
            "recoverable rates must not error: {:?}",
            on.errors
        );
        assert_delivered(&ty, count, &src_on, &dst_on, "faulty cache-on delivery");
        assert_eq!(dst_on, dst_off, "cache toggle changed bytes under faults");
        assert_same_observables(&on, &off, "faulty on vs off");
        assert!(
            on.retransmits == off.retransmits && on.delays_injected == off.delays_injected,
            "fault schedule must be untouched by a host-side cache"
        );
    });
}

/// Repeated sends of one datatype hit the plan cache and reuse scratch
/// buffers; the counters must show it (this pins the optimization ON,
/// not just its equivalence).
#[test]
fn repeated_sends_hit_plan_cache_and_scratch_pool() {
    let ty = Datatype::hvector(64, 256, 512, &Datatype::byte()).unwrap();
    for scheme in [
        Scheme::Generic,
        Scheme::BcSpup,
        Scheme::RwgUp,
        Scheme::PRrs,
        Scheme::MultiW,
        Scheme::Hybrid,
    ] {
        let mut spec = ClusterSpec::default();
        spec.mpi.scheme = scheme;
        let (stats, src, dst) = run_pairs(spec, &ty, 4, 6, 11);
        assert_eq!(stats.total_errors(), 0, "{scheme:?}: {:?}", stats.errors);
        assert_delivered(&ty, 4, &src, &dst, "repeated-send delivery");
        let hits: u64 = stats.plan_cache.iter().map(|&(h, _, _)| h).sum();
        let misses: u64 = stats.plan_cache.iter().map(|&(_, m, _)| m).sum();
        assert!(
            hits > 0,
            "{scheme:?}: repeated sends never hit the plan cache"
        );
        assert!(misses >= 1, "{scheme:?}: first lookup must miss");
        assert!(
            hits > misses,
            "{scheme:?}: steady state should be hit-dominated (hits {hits}, misses {misses})"
        );
        let reuses: u64 = stats.scratch_pool.iter().map(|&(r, _)| r).sum();
        if matches!(scheme, Scheme::Generic | Scheme::BcSpup | Scheme::PRrs) {
            assert!(
                reuses > 0,
                "{scheme:?}: pack staging never reused scratch buffers"
            );
        }
    }
}
