//! Transfer-plan cache equivalence: the compiled-plan cache and the
//! scratch pools are host-side optimizations only. Toggling the cache
//! (or shrinking it until it thrashes) must change NOTHING observable
//! in the simulation — byte-exact delivery, identical virtual clock,
//! identical protocol counters and wire traffic — with and without
//! injected transport faults.

use ibdt::datatype::Datatype;
use ibdt::mpicore::{AppOp, Cluster, ClusterSpec, FaultPlan, RunStats, Scheme};
use ibdt_testkit::{cases, Rng};

fn random_type(rng: &mut Rng) -> Datatype {
    let byte = Datatype::byte();
    match rng.range_u64(0, 4) {
        0 => {
            let blocklen = rng.range_u64(1, 500);
            let stride = blocklen + rng.range_u64(0, 500);
            Datatype::hvector(rng.range_u64(1, 120), blocklen, stride as i64, &byte).unwrap()
        }
        1 => {
            let n = rng.range_usize(1, 20);
            let mut displ = 0i64;
            let mut entries = Vec::new();
            for _ in 0..n {
                let len = rng.range_u64(1, 400);
                entries.push((len, displ));
                displ += (len + rng.range_u64(0, 600)) as i64;
            }
            Datatype::hindexed(&entries, &byte).unwrap()
        }
        2 => {
            // Nested: vector of vectors, the paper's matrix-column shape.
            let inner =
                Datatype::hvector(rng.range_u64(1, 8), rng.range_u64(1, 64), 96, &byte).unwrap();
            Datatype::contiguous(rng.range_u64(1, 16), &inner).unwrap()
        }
        _ => Datatype::contiguous(rng.range_u64(1, 60_000), &byte).unwrap(),
    }
}

/// Richer randomized constructor trees for the canonicalization tests:
/// on top of the [`random_type`] shapes, these include the spellings
/// the canonicalizer rewrites — nested contiguous, multi-field structs,
/// and `resized` wrappers that pad the extent. Displacements stay
/// non-negative so `run_pairs`' span arithmetic holds.
fn random_spelled_type(rng: &mut Rng) -> Datatype {
    let byte = Datatype::byte();
    let base = match rng.range_u64(0, 5) {
        0 => {
            // Nested contiguous-of-hvector (collapses toward hvector).
            let inner =
                Datatype::hvector(rng.range_u64(1, 6), rng.range_u64(1, 48), 64, &byte).unwrap();
            Datatype::contiguous(rng.range_u64(1, 8), &inner).unwrap()
        }
        1 => {
            let n = rng.range_usize(1, 12);
            let mut displ = 0i64;
            let mut entries = Vec::new();
            for _ in 0..n {
                let len = rng.range_u64(1, 300);
                entries.push((len, displ));
                displ += (len + rng.range_u64(0, 400)) as i64;
            }
            Datatype::hindexed(&entries, &byte).unwrap()
        }
        2 => {
            let blocklen = rng.range_u64(1, 256);
            let stride = (blocklen + rng.range_u64(0, 256)) as i64;
            Datatype::hvector(rng.range_u64(1, 40), blocklen, stride, &byte).unwrap()
        }
        3 => {
            // Two-field struct with a gap; fields never overlap.
            let a = Datatype::hvector(rng.range_u64(1, 4), rng.range_u64(1, 32), 48, &byte)
                .unwrap();
            let b = Datatype::contiguous(rng.range_u64(1, 64), &byte).unwrap();
            let gap = a.ub() + rng.range_u64(0, 64) as i64;
            Datatype::struct_(&[(1, 0, a), (rng.range_u64(1, 3), gap, b)]).unwrap()
        }
        _ => Datatype::contiguous(rng.range_u64(1, 4_000), &byte).unwrap(),
    };
    if rng.range_u64(0, 2) == 0 {
        // Pad the extent so count > 1 strides past the data.
        let pad = rng.range_u64(0, 128) as i64;
        Datatype::resized(&base, base.lb().min(0), base.ub() - base.lb().min(0) + pad).unwrap()
    } else {
        base
    }
}

fn scheme_of(i: u8) -> Scheme {
    match i % 7 {
        0 => Scheme::Generic,
        1 => Scheme::BcSpup,
        2 => Scheme::RwgUp,
        3 => Scheme::PRrs,
        4 => Scheme::MultiW,
        5 => Scheme::Hybrid,
        _ => Scheme::Adaptive,
    }
}

/// `nmsgs` back-to-back send/recv pairs of the same datatype under
/// `spec`; returns stats plus both memory windows.
fn run_pairs(
    spec: ClusterSpec,
    ty: &Datatype,
    count: u64,
    nmsgs: u32,
    seed: u64,
) -> (RunStats, Vec<u8>, Vec<u8>) {
    run_pairs_impl(spec, ty, count, nmsgs, seed, false)
}

/// [`run_pairs`] with both user buffers device-resident, so pack and
/// unpack route through the host↔device staging pipeline.
fn run_pairs_device(
    spec: ClusterSpec,
    ty: &Datatype,
    count: u64,
    nmsgs: u32,
    seed: u64,
) -> (RunStats, Vec<u8>, Vec<u8>) {
    run_pairs_impl(spec, ty, count, nmsgs, seed, true)
}

fn run_pairs_impl(
    spec: ClusterSpec,
    ty: &Datatype,
    count: u64,
    nmsgs: u32,
    seed: u64,
    device: bool,
) -> (RunStats, Vec<u8>, Vec<u8>) {
    let mut cluster = Cluster::new(spec);
    let span = ((count - 1) as i64 * ty.extent() + ty.true_ub()).max(8) as u64 + 64;
    let (sbuf, rbuf) = if device {
        (
            cluster.alloc_device(0, span, 4096),
            cluster.alloc_device(1, span, 4096),
        )
    } else {
        (cluster.alloc(0, span, 4096), cluster.alloc(1, span, 4096))
    };
    cluster.fill_pattern(0, sbuf, span, seed);
    cluster.fill_pattern(1, rbuf, span, seed ^ 0xFFFF);
    let mut p0 = Vec::new();
    let mut p1 = Vec::new();
    for tag in 0..nmsgs {
        p0.push(AppOp::Isend {
            peer: 1,
            buf: sbuf,
            count,
            ty: ty.clone(),
            tag,
        });
        p0.push(AppOp::WaitAll);
        p1.push(AppOp::Irecv {
            peer: 0,
            buf: rbuf,
            count,
            ty: ty.clone(),
            tag,
        });
        p1.push(AppOp::WaitAll);
    }
    let stats = cluster.run(vec![p0, p1]);
    let src = cluster.read_mem(0, sbuf, span);
    let dst = cluster.read_mem(1, rbuf, span);
    (stats, src, dst)
}

fn assert_delivered(ty: &Datatype, count: u64, src: &[u8], dst: &[u8], what: &str) {
    for (off, len) in ty.flat().repeat(count) {
        let o = off as usize;
        assert_eq!(
            &dst[o..o + len as usize],
            &src[o..o + len as usize],
            "{what}: corrupted block at offset {off}"
        );
    }
}

fn assert_same_observables(a: &RunStats, b: &RunStats, what: &str) {
    assert_eq!(a.finish_ns, b.finish_ns, "{what}: virtual clock diverged");
    assert_eq!(
        a.rank_finish_ns, b.rank_finish_ns,
        "{what}: per-rank clocks diverged"
    );
    assert_eq!(a.counters, b.counters, "{what}: protocol counters diverged");
    assert_eq!(
        a.cpu_busy_ns, b.cpu_busy_ns,
        "{what}: CPU busy time diverged"
    );
    assert_eq!(a.wqes, b.wqes, "{what}: WQE count diverged");
    assert_eq!(
        a.bytes_on_wire, b.bytes_on_wire,
        "{what}: wire bytes diverged"
    );
    assert_eq!(a.reg_ops, b.reg_ops, "{what}: registration ops diverged");
    assert_eq!(
        a.pindown, b.pindown,
        "{what}: pin-down cache behavior diverged"
    );
    assert_eq!(a.retransmits, b.retransmits, "{what}: retransmits diverged");
    assert_eq!(
        a.drops_injected, b.drops_injected,
        "{what}: fault injection diverged"
    );
    assert_eq!(
        a.corruptions_injected, b.corruptions_injected,
        "{what}: corruption diverged"
    );
    assert_eq!(
        a.errors.iter().map(Vec::len).collect::<Vec<_>>(),
        b.errors.iter().map(Vec::len).collect::<Vec<_>>(),
        "{what}: error counts diverged"
    );
}

/// Random datatype × scheme × message schedule: byte delivery and every
/// virtual-clock observable must be identical with the plan cache on,
/// off, and thrashing (capacity 1).
#[test]
fn plan_cache_toggle_is_observationally_equivalent() {
    cases(0x914A_0001, 18, |rng| {
        let ty = random_type(rng);
        let scheme = scheme_of(rng.next_u64() as u8);
        let count = rng.range_u64(1, 3);
        if ty.size() == 0 || ty.size() * count >= 2 << 20 {
            return;
        }
        let nmsgs = rng.range_u64(1, 4) as u32;
        let pattern_seed = rng.next_u64();
        let spec = |cache: bool, entries: usize| {
            let mut s = ClusterSpec::default();
            s.mpi.scheme = scheme;
            s.mpi.plan_cache = cache;
            s.mpi.plan_cache_entries = entries;
            s
        };
        let (on, src_on, dst_on) = run_pairs(spec(true, 64), &ty, count, nmsgs, pattern_seed);
        let (off, _, dst_off) = run_pairs(spec(false, 64), &ty, count, nmsgs, pattern_seed);
        let (tiny, _, dst_tiny) = run_pairs(spec(true, 1), &ty, count, nmsgs, pattern_seed);
        assert_eq!(
            on.total_errors(),
            0,
            "clean run must not error: {:?}",
            on.errors
        );
        assert_delivered(&ty, count, &src_on, &dst_on, "cache-on delivery");
        assert_eq!(dst_on, dst_off, "cache off changed delivered bytes");
        assert_eq!(dst_on, dst_tiny, "thrashing cache changed delivered bytes");
        assert_same_observables(&on, &off, "on vs off");
        assert_same_observables(&on, &tiny, "on vs capacity-1");
        // Only the host-side cache statistics may differ: disabled
        // lookups are all misses and never hit.
        let (hits_off, misses_off): (u64, u64) = off
            .plan_cache
            .iter()
            .fold((0, 0), |(h, m), &(a, b, _)| (h + a, m + b));
        assert_eq!(hits_off, 0, "disabled cache cannot hit");
        assert!(misses_off > 0, "sends must have consulted the plan path");
    });
}

/// The same equivalence must hold while the transport is dropping,
/// corrupting, and delaying packets: retransmission schedules are
/// derived from the virtual clock, so a host-only cache cannot move
/// them.
#[test]
fn plan_cache_equivalence_under_fault_injection() {
    cases(0x914A_0002, 12, |rng| {
        let ty = random_type(rng);
        let scheme = scheme_of(rng.next_u64() as u8);
        let count = rng.range_u64(1, 3);
        if ty.size() == 0 || ty.size() * count >= 2 << 20 {
            return;
        }
        let pattern_seed = rng.next_u64();
        let faults = FaultPlan {
            seed: rng.next_u64(),
            drop_rate: rng.range_u64(0, 16) as f64 / 100.0,
            corrupt_rate: rng.range_u64(0, 16) as f64 / 100.0,
            delay_rate: rng.range_u64(0, 30) as f64 / 100.0,
            max_delay_ns: 30_000,
            stall_rate: rng.range_u64(0, 10) as f64 / 100.0,
            stall_ns: 5_000,
            ..FaultPlan::none()
        };
        let spec = |cache: bool| {
            let mut s = ClusterSpec::default();
            s.mpi.scheme = scheme;
            s.mpi.plan_cache = cache;
            s.faults = faults.clone();
            s
        };
        let (on, src_on, dst_on) = run_pairs(spec(true), &ty, count, 2, pattern_seed);
        let (off, _, dst_off) = run_pairs(spec(false), &ty, count, 2, pattern_seed);
        assert_eq!(
            on.total_errors(),
            0,
            "recoverable rates must not error: {:?}",
            on.errors
        );
        assert_delivered(&ty, count, &src_on, &dst_on, "faulty cache-on delivery");
        assert_eq!(dst_on, dst_off, "cache toggle changed bytes under faults");
        assert_same_observables(&on, &off, "faulty on vs off");
        assert!(
            on.retransmits == off.retransmits && on.delays_injected == off.delays_injected,
            "fault schedule must be untouched by a host-side cache"
        );
    });
}

/// Repeated sends of one datatype hit the plan cache and reuse scratch
/// buffers; the counters must show it (this pins the optimization ON,
/// not just its equivalence).
#[test]
fn repeated_sends_hit_plan_cache_and_scratch_pool() {
    let ty = Datatype::hvector(64, 256, 512, &Datatype::byte()).unwrap();
    for scheme in [
        Scheme::Generic,
        Scheme::BcSpup,
        Scheme::RwgUp,
        Scheme::PRrs,
        Scheme::MultiW,
        Scheme::Hybrid,
    ] {
        let mut spec = ClusterSpec::default();
        spec.mpi.scheme = scheme;
        let (stats, src, dst) = run_pairs(spec, &ty, 4, 6, 11);
        assert_eq!(stats.total_errors(), 0, "{scheme:?}: {:?}", stats.errors);
        assert_delivered(&ty, 4, &src, &dst, "repeated-send delivery");
        let hits: u64 = stats.plan_cache.iter().map(|&(h, _, _)| h).sum();
        let misses: u64 = stats.plan_cache.iter().map(|&(_, m, _)| m).sum();
        assert!(
            hits > 0,
            "{scheme:?}: repeated sends never hit the plan cache"
        );
        assert!(misses >= 1, "{scheme:?}: first lookup must miss");
        assert!(
            hits > misses,
            "{scheme:?}: steady state should be hit-dominated (hits {hits}, misses {misses})"
        );
        let reuses: u64 = stats.scratch_pool.iter().map(|&(r, _)| r).sum();
        if matches!(scheme, Scheme::Generic | Scheme::BcSpup | Scheme::PRrs) {
            assert!(
                reuses > 0,
                "{scheme:?}: pack staging never reused scratch buffers"
            );
        }
    }
}

/// A canonicalized type is observationally equivalent to its original
/// spelling: identical size and bounds, an identical merged block
/// stream at every count, and — through a full simulated transfer —
/// byte-identical delivery. (Virtual *timing* may legitimately differ:
/// the canonical tree can regroup blocks, which is exactly why
/// `canonicalize` is an opt-in config knob.)
#[test]
fn canonical_form_is_pack_unpack_equivalent() {
    cases(0x914A_0003, 16, |rng| {
        let ty = random_spelled_type(rng);
        let count = rng.range_u64(1, 3);
        if ty.size() == 0 || ty.size() * count >= 2 << 20 {
            return;
        }
        let canon = ty.canonical();
        assert_eq!(canon.size(), ty.size(), "canonicalization changed size");
        assert_eq!(canon.lb(), ty.lb(), "canonicalization changed lb");
        assert_eq!(canon.ub(), ty.ub(), "canonicalization changed ub");
        assert_eq!(
            canon.canonical().id(),
            canon.id(),
            "canonical form must be a fixed point"
        );
        for c in [1, 2, count] {
            assert_eq!(
                ty.flat().repeat(c),
                canon.flat().repeat(c),
                "merged block stream diverged at count {c}"
            );
        }
        let scheme = scheme_of(rng.next_u64() as u8);
        let pattern_seed = rng.next_u64();
        let spec = || {
            let mut s = ClusterSpec::default();
            s.mpi.scheme = scheme;
            s
        };
        let (orig, src_o, dst_o) = run_pairs(spec(), &ty, count, 2, pattern_seed);
        let (can, _, dst_c) = run_pairs(spec(), &canon, count, 2, pattern_seed);
        assert_eq!(orig.total_errors(), 0, "original: {:?}", orig.errors);
        assert_eq!(can.total_errors(), 0, "canonical: {:?}", can.errors);
        assert_delivered(&ty, count, &src_o, &dst_o, "original spelling delivery");
        assert_eq!(
            dst_o, dst_c,
            "canonical spelling changed the delivered bytes"
        );
    });
}

/// The cache-toggle equivalence must also hold with canonicalization
/// enabled: the canonical rewrite happens at plan-lookup time whether
/// or not the cache stores the result, so cache on, off, and thrashing
/// still agree on every virtual-clock observable.
#[test]
fn cache_toggle_equivalent_with_canonicalization_enabled() {
    cases(0x914A_0004, 14, |rng| {
        let ty = random_spelled_type(rng);
        let scheme = scheme_of(rng.next_u64() as u8);
        let count = rng.range_u64(1, 3);
        if ty.size() == 0 || ty.size() * count >= 2 << 20 {
            return;
        }
        let nmsgs = rng.range_u64(1, 4) as u32;
        let pattern_seed = rng.next_u64();
        let spec = |cache: bool, entries: usize| {
            let mut s = ClusterSpec::default();
            s.mpi.scheme = scheme;
            s.mpi.plan_cache = cache;
            s.mpi.plan_cache_entries = entries;
            s.mpi.canonicalize = true;
            s
        };
        let (on, src_on, dst_on) = run_pairs(spec(true, 64), &ty, count, nmsgs, pattern_seed);
        let (off, _, dst_off) = run_pairs(spec(false, 64), &ty, count, nmsgs, pattern_seed);
        let (tiny, _, dst_tiny) = run_pairs(spec(true, 1), &ty, count, nmsgs, pattern_seed);
        assert_eq!(on.total_errors(), 0, "{:?}", on.errors);
        assert_delivered(&ty, count, &src_on, &dst_on, "canonicalized cache-on delivery");
        assert_eq!(dst_on, dst_off, "cache off changed bytes under canonicalization");
        assert_eq!(
            dst_on, dst_tiny,
            "thrashing cache changed bytes under canonicalization"
        );
        assert_same_observables(&on, &off, "canonicalized on vs off");
        assert_same_observables(&on, &tiny, "canonicalized on vs capacity-1");
    });
}

/// Three spellings of one layout — `hvector`, `hindexed`, and a
/// two-field `struct` — must compile exactly ONE plan per rank with
/// canonicalization on, and the canonical-hit counters must prove that
/// every subsequent lookup was a respelling served from the cache.
#[test]
fn three_spellings_compile_one_plan_with_hit_counter() {
    let byte = Datatype::byte();
    // The same 4×(256 B @ stride 512) layout under three spellings.
    let spellings = [
        Datatype::hvector(4, 256, 512, &byte).unwrap(),
        Datatype::hindexed(&[(256, 0), (256, 512), (256, 1024), (256, 1536)], &byte).unwrap(),
        Datatype::struct_(&[
            (1, 0, Datatype::hvector(2, 256, 512, &byte).unwrap()),
            (1, 1024, Datatype::hvector(2, 256, 512, &byte).unwrap()),
        ])
        .unwrap(),
    ];
    let mut spec = ClusterSpec::default();
    spec.mpi.scheme = Scheme::BcSpup;
    spec.mpi.canonicalize = true;
    let mut cluster = Cluster::new(spec);
    let span = spellings[0].ub() as u64 + 64;
    let sbuf = cluster.alloc(0, span, 4096);
    let rbuf = cluster.alloc(1, span, 4096);
    cluster.fill_pattern(0, sbuf, span, 77);
    let mut p0 = Vec::new();
    let mut p1 = Vec::new();
    for (tag, ty) in spellings.iter().enumerate() {
        p0.push(AppOp::Isend {
            peer: 1,
            buf: sbuf,
            count: 1,
            ty: ty.clone(),
            tag: tag as u32,
        });
        p0.push(AppOp::WaitAll);
        p1.push(AppOp::Irecv {
            peer: 0,
            buf: rbuf,
            count: 1,
            ty: ty.clone(),
            tag: tag as u32,
        });
        p1.push(AppOp::WaitAll);
    }
    let stats = cluster.run(vec![p0, p1]);
    assert_eq!(stats.total_errors(), 0, "{:?}", stats.errors);
    let src = cluster.read_mem(0, sbuf, span);
    let dst = cluster.read_mem(1, rbuf, span);
    assert_delivered(&spellings[0], 1, &src, &dst, "respelled delivery");
    // One compile per rank: every spelling resolves to the same
    // canonical handle, so only the first lookup misses.
    for (r, &(hits, misses, _)) in stats.plan_cache.iter().enumerate() {
        assert_eq!(
            misses, 1,
            "rank {r}: three spellings must compile one plan (hits {hits}, misses {misses})"
        );
        assert!(hits >= 2, "rank {r}: respelled lookups must hit (hits {hits})");
    }
    // The hit-rate counters attribute the hits to canonicalization:
    // every hit was a *respelled* type served by the canonical plan.
    let hits: u64 = stats.plan_cache.iter().map(|&(h, _, _)| h).sum();
    assert_eq!(
        stats.plan_cache_canonical_hits, hits,
        "every cache hit should have come from a respelled lookup"
    );
    assert!(
        stats.plan_cache_canonical_hits >= 4,
        "2 respelled spellings x 2 ranks must hit the canonical plan (got {})",
        stats.plan_cache_canonical_hits
    );
    assert!(
        stats.canonicalized_types >= 4,
        "respelled lookups should have been rewritten (got {})",
        stats.canonicalized_types
    );
}

/// Device-resident user buffers route pack/unpack through the staged
/// bounce pipeline; the plan cache must stay invisible there too, and
/// the `staging_chunks` counter must show the pipeline actually ran.
#[test]
fn plan_cache_equivalence_on_device_buffers() {
    let ty = Datatype::hvector(128, 512, 1024, &Datatype::byte()).unwrap();
    for (staging_chunk, staging_bufs) in [(0u64, 2usize), (4096, 2), (16384, 1)] {
        let spec = |cache: bool| {
            let mut s = ClusterSpec::default();
            s.mpi.scheme = Scheme::BcSpup;
            s.mpi.plan_cache = cache;
            s.mpi.staging_chunk = staging_chunk;
            s.mpi.staging_bufs = staging_bufs;
            s
        };
        let (on, src_on, dst_on) = run_pairs_device(spec(true), &ty, 2, 2, 31);
        let (off, _, dst_off) = run_pairs_device(spec(false), &ty, 2, 2, 31);
        assert_eq!(
            on.total_errors(),
            0,
            "chunk {staging_chunk}: {:?}",
            on.errors
        );
        assert_delivered(&ty, 2, &src_on, &dst_on, "device-staged delivery");
        assert_eq!(
            dst_on, dst_off,
            "chunk {staging_chunk}: cache toggle changed device-staged bytes"
        );
        assert_same_observables(&on, &off, "device-staged on vs off");
        assert!(
            on.staging_chunks > 0,
            "chunk {staging_chunk}: staged pipeline never ran"
        );
    }
}
