//! Cross-crate integration tests asserting the paper's headline claims
//! on the reproduced system (compact versions of the figure harness).

use ibdt::datatype::Datatype;
use ibdt::mpicore::{ClusterSpec, Scheme};
use ibdt::workloads::drivers::{alltoall_time, bandwidth, pingpong, pingpong_contig};
use ibdt::workloads::structdt::struct_datatype;
use ibdt::workloads::vector::VectorWorkload;

fn spec(scheme: Scheme) -> ClusterSpec {
    let mut s = ClusterSpec::default();
    s.mpi.scheme = scheme;
    s
}

fn latency(scheme: Scheme, cols: u64) -> u64 {
    let w = VectorWorkload::new(cols);
    pingpong(&spec(scheme), &w.ty, 1, 2, 4).one_way_ns
}

fn bw(scheme: Scheme, cols: u64) -> f64 {
    let w = VectorWorkload::new(cols);
    bandwidth(&spec(scheme), &w.ty, 1, 30).bytes_per_sec
}

#[test]
fn abstract_claim_latency_improvement() {
    // "latency is improved by a factor of up to 3.4" — we require the
    // reproduction to show at least 2.5x for Multi-W at 2048 columns.
    let g = latency(Scheme::Generic, 2048);
    let m = latency(Scheme::MultiW, 2048);
    let factor = g as f64 / m as f64;
    assert!(factor > 2.5, "Multi-W latency factor {factor:.2} < 2.5");
}

#[test]
fn abstract_claim_bandwidth_improvement() {
    // "bandwidth by a factor of up to 3.6" — factors compress in our
    // calibration; require at least 1.6x for Multi-W at 2048 columns
    // and monotone improvement ordering.
    let g = bw(Scheme::Generic, 2048);
    let b = bw(Scheme::BcSpup, 2048);
    let r = bw(Scheme::RwgUp, 2048);
    let m = bw(Scheme::MultiW, 2048);
    assert!(m / g > 1.6, "Multi-W bandwidth factor {:.2} < 1.6", m / g);
    assert!(
        b > g && r > b && m > r,
        "ordering violated: {g:.0} {b:.0} {r:.0} {m:.0}"
    );
}

#[test]
fn fig2_no_scheme_reaches_quarter_of_contig() {
    // At mid sizes the Generic datatype path is far from contiguous
    // performance (paper: "no more than one quarter"; we require < 40%).
    for cols in [16u64, 64, 256] {
        let w = VectorWorkload::new(cols);
        let contig = pingpong_contig(&spec(Scheme::Generic), w.size, 2, 4).one_way_ns;
        let dt = latency(Scheme::Generic, cols);
        assert!(
            (contig as f64) < 0.4 * dt as f64,
            "cols {cols}: contig {contig} not well below datatype {dt}"
        );
    }
}

#[test]
fn fig8_multiw_collapses_on_small_blocks() {
    // Multi-W must lose to BC-SPUP when blocks are tiny and win when
    // they are large (the Fig. 8 crossover).
    assert!(latency(Scheme::MultiW, 8) > latency(Scheme::BcSpup, 8));
    assert!(latency(Scheme::MultiW, 1024) < latency(Scheme::BcSpup, 1024));
}

#[test]
fn fig9_bandwidth_window_bands() {
    // BC-SPUP in the paper's 1.2-2.0x band at the top of the sweep.
    let f = bw(Scheme::BcSpup, 2048) / bw(Scheme::Generic, 2048);
    assert!((1.2..2.6).contains(&f), "BC-SPUP bandwidth factor {f:.2}");
}

#[test]
fn fig11_alltoall_all_schemes_beat_generic() {
    let ty = struct_datatype(8192);
    let mut base = spec(Scheme::Generic);
    base.nprocs = 8;
    let (g, _) = alltoall_time(&base, &ty, 1, 2);
    for s in [Scheme::BcSpup, Scheme::RwgUp, Scheme::MultiW] {
        let mut sp = spec(s);
        sp.nprocs = 8;
        let (t, _) = alltoall_time(&sp, &ty, 1, 2);
        assert!(t < g, "{s:?} alltoall {t} !< generic {g}");
    }
    // Multi-W approaches the paper's ~2x on this datatype.
    let mut sp = spec(Scheme::MultiW);
    sp.nprocs = 8;
    let (m, _) = alltoall_time(&sp, &ty, 1, 2);
    assert!(
        g as f64 / m as f64 > 1.5,
        "Multi-W alltoall factor {:.2} < 1.5",
        g as f64 / m as f64
    );
}

#[test]
fn fig12_segment_unpack_helps() {
    let w = VectorWorkload::new(2048);
    let with = bandwidth(&spec(Scheme::RwgUp), &w.ty, 1, 30).bytes_per_sec;
    let mut off = spec(Scheme::RwgUp);
    off.mpi.segment_unpack = false;
    let without = bandwidth(&off, &w.ty, 1, 30).bytes_per_sec;
    let f = with / without;
    assert!((1.15..2.2).contains(&f), "segment unpack factor {f:.2}");
}

#[test]
fn fig13_list_post_helps() {
    let w = VectorWorkload::new(128);
    let list = bandwidth(&spec(Scheme::MultiW), &w.ty, 1, 30).bytes_per_sec;
    let mut single = spec(Scheme::MultiW);
    single.mpi.list_post = false;
    let sp = bandwidth(&single, &w.ty, 1, 30).bytes_per_sec;
    let f = list / sp;
    assert!((1.2..3.0).contains(&f), "list post factor {f:.2}");
}

#[test]
fn fig14_worst_case_crossover() {
    // With registration on the fly everywhere, copy-reduced schemes
    // lose at small columns and still win at large ones.
    let worst = |scheme, cols| {
        let mut s = spec(scheme);
        s.mpi.pindown_cache = false;
        s.mpi.reuse_internal_bufs = false;
        let w = VectorWorkload::new(cols);
        pingpong(&s, &w.ty, 1, 2, 4).one_way_ns
    };
    assert!(worst(Scheme::MultiW, 16) > worst(Scheme::BcSpup, 16));
    assert!(worst(Scheme::MultiW, 2048) < worst(Scheme::Generic, 2048));
    for cols in [16u64, 256, 2048] {
        assert!(worst(Scheme::BcSpup, cols) <= worst(Scheme::Generic, cols));
    }
}

#[test]
fn adaptive_never_far_from_best() {
    for cols in [4u64, 32, 128, 512, 2048] {
        let best = [
            Scheme::Generic,
            Scheme::BcSpup,
            Scheme::RwgUp,
            Scheme::MultiW,
        ]
        .into_iter()
        .map(|s| latency(s, cols))
        .min()
        .expect("non-empty");
        let a = latency(Scheme::Adaptive, cols);
        assert!(
            a as f64 <= best as f64 * 1.10,
            "cols {cols}: adaptive {a} vs best {best}"
        );
    }
}

#[test]
fn prrs_wins_asymmetric_contiguous_sender() {
    // §5.2: P-RRS targets the contiguous-sender / noncontiguous-receiver
    // case; with the zero-copy announcement it must beat BC-SPUP there.
    use ibdt::workloads::drivers::pingpong_asym;
    let w = VectorWorkload::new(1024);
    let contig = Datatype::contiguous(w.size, &Datatype::byte()).unwrap();
    let p = pingpong_asym(&spec(Scheme::PRrs), &contig, 1, &w.ty, 1, 2, 4).one_way_ns;
    let b = pingpong_asym(&spec(Scheme::BcSpup), &contig, 1, &w.ty, 1, 2, 4).one_way_ns;
    assert!(p < b, "P-RRS {p} !< BC-SPUP {b} in its target case");
}

#[test]
fn eager_direct_pack_beats_original() {
    // §7.1: two copies saved on the eager path.
    let old = latency(Scheme::Generic, 1);
    let new = latency(Scheme::BcSpup, 1);
    assert!(new < old, "direct eager pack {new} !< original {old}");
}
