//! Chaos tests for the collective operations and one-sided RMA: the
//! recovery machinery must hold up when many rank pairs and overlapping
//! handshakes share one faulty fabric — not only in a two-rank
//! point-to-point world. The contract matches `chaos.rs`: under
//! recoverable fault rates every collective finishes with zero typed
//! errors and exactly the fault-free result, deterministically per
//! seed; link failures with APM enabled migrate transparently.

use ibdt::datatype::Datatype;
use ibdt::mpicore::{AppOp, Cluster, ClusterSpec, FaultPlan, LinkFault, Program, ReduceOp, Scheme};
use ibdt_testkit::{cases, chaos_seed};

fn spec(scheme: Scheme, nprocs: u32, faults: FaultPlan) -> ClusterSpec {
    let mut s = ClusterSpec {
        nprocs,
        ..Default::default()
    };
    s.mpi.scheme = scheme;
    s.mpi.audit = true;
    s.faults = faults;
    s
}

fn ints_to_bytes(v: &[i32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn bytes_to_ints(b: &[u8]) -> Vec<i32> {
    b.chunks_exact(4)
        .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Allgather across 4 ranks; returns `(finish_ns, per-rank gathered
/// ints)` so callers can compare against a fault-free reference and
/// assert determinism.
fn run_allgather(faults: FaultPlan, scheme: Scheme) -> (u64, Vec<Vec<i32>>) {
    let n = 4u32;
    let count = 2048u64; // 8 KiB per contribution -> rendezvous
    let ty = Datatype::int();
    let mut cluster = Cluster::new(spec(scheme, n, faults));
    let bytes = count * 4;
    let mut sbufs = Vec::new();
    let mut rbufs = Vec::new();
    for r in 0..n {
        let sb = cluster.alloc(r, bytes, 4096);
        let vals: Vec<i32> = (0..count as i32).map(|i| i ^ (r as i32) << 20).collect();
        cluster.write_mem(r, sb, &ints_to_bytes(&vals));
        sbufs.push(sb);
        rbufs.push(cluster.alloc(r, bytes * n as u64, 4096));
    }
    let progs: Vec<Program> = (0..n)
        .map(|r| {
            vec![AppOp::Allgather {
                sbuf: sbufs[r as usize],
                rbuf: rbufs[r as usize],
                count,
                ty: ty.clone(),
            }]
        })
        .collect();
    let stats = cluster.run(progs);
    assert_eq!(
        stats.total_errors(),
        0,
        "allgather under {scheme:?} must not surface errors: {:?}",
        stats.errors
    );
    let out = (0..n)
        .map(|r| bytes_to_ints(&cluster.read_mem(r, rbufs[r as usize], bytes * n as u64)))
        .collect();
    (stats.finish_ns, out)
}

/// Seeded drop/corrupt/delay rates inside the retry budget: every rank
/// must end up with the exact fault-free allgather result, and the
/// identical seed must reproduce the identical virtual clock.
#[test]
fn allgather_delivers_under_recoverable_chaos() {
    let (_, want) = run_allgather(FaultPlan::none(), Scheme::BcSpup);
    cases(chaos_seed(0xC0_1101), 6, |rng| {
        let scheme = *rng.choose(&[Scheme::BcSpup, Scheme::MultiW, Scheme::Adaptive]);
        let faults = FaultPlan {
            seed: rng.next_u64(),
            drop_rate: rng.range_u64(0, 12) as f64 / 100.0,
            corrupt_rate: rng.range_u64(0, 12) as f64 / 100.0,
            delay_rate: rng.range_u64(0, 25) as f64 / 100.0,
            max_delay_ns: 25_000,
            ..FaultPlan::none()
        };
        let (t1, got) = run_allgather(faults.clone(), scheme);
        assert_eq!(
            got, want,
            "faulty allgather diverged from fault-free result"
        );
        let (t2, got2) = run_allgather(faults, scheme);
        assert_eq!(t1, t2, "virtual clock diverged on replay");
        assert_eq!(got, got2, "replay diverged");
    });
}

/// Allreduce (binomial reduce + bcast) under chaos: the reduction
/// pipeline forwards partial results between ranks, so a silently
/// corrupted or half-recovered message would poison every rank's sum.
#[test]
fn allreduce_sums_correctly_under_chaos() {
    let n = 4u32;
    let count = 1024u64;
    let ty = Datatype::int();
    cases(chaos_seed(0xC0_1102), 4, |rng| {
        let faults = FaultPlan {
            seed: rng.next_u64(),
            drop_rate: rng.range_u64(0, 10) as f64 / 100.0,
            delay_rate: rng.range_u64(0, 20) as f64 / 100.0,
            max_delay_ns: 20_000,
            ..FaultPlan::none()
        };
        let mut cluster = Cluster::new(spec(Scheme::BcSpup, n, faults));
        let bytes = count * 4;
        let mut progs = Vec::new();
        let mut rbufs = Vec::new();
        for r in 0..n {
            let sbuf = cluster.alloc(r, bytes, 4096);
            let rbuf = cluster.alloc(r, bytes, 4096);
            let scratch = cluster.alloc(r, bytes, 4096);
            let vals: Vec<i32> = (0..count as i32).map(|i| i * (r as i32 + 1)).collect();
            cluster.write_mem(r, sbuf, &ints_to_bytes(&vals));
            rbufs.push(rbuf);
            progs.push(vec![AppOp::Allreduce {
                sbuf,
                rbuf,
                scratch,
                count,
                ty: ty.clone(),
                op: ReduceOp::Sum,
            }]);
        }
        let stats = cluster.run(progs);
        assert_eq!(
            stats.total_errors(),
            0,
            "allreduce errored: {:?}",
            stats.errors
        );
        // sum over ranks of i*(r+1) = i * (1+2+..+n)
        let factor: i32 = (1..=n as i32).sum();
        for r in 0..n {
            let got = bytes_to_ints(&cluster.read_mem(r, rbufs[r as usize], bytes));
            for (i, &v) in got.iter().enumerate() {
                assert_eq!(v, i as i32 * factor, "rank {r} element {i}");
            }
        }
    });
}

/// A port failure in the middle of a 4-rank alltoall with APM enabled:
/// the affected connections migrate, nothing errors, and every rank
/// holds the same bytes a fault-free run produces.
#[test]
fn alltoall_survives_link_failover() {
    let n = 4u32;
    let count = 8192u64; // 32 KiB per pair -> long enough to span the fault
    let ty = Datatype::byte();
    let run = |faults: FaultPlan| {
        let mut cluster = Cluster::new(spec(Scheme::BcSpup, n, faults));
        let bytes = count;
        let mut progs = Vec::new();
        let mut rbufs = Vec::new();
        for r in 0..n {
            let sbuf = cluster.alloc(r, bytes * n as u64, 4096);
            let rbuf = cluster.alloc(r, bytes * n as u64, 4096);
            cluster.fill_pattern(r, sbuf, bytes * n as u64, 0x7A + r as u64);
            rbufs.push(rbuf);
            progs.push(vec![AppOp::Alltoall {
                sbuf,
                rbuf,
                count,
                sty: ty.clone(),
                rty: ty.clone(),
            }]);
        }
        let stats = cluster.run(progs);
        assert_eq!(
            stats.total_errors(),
            0,
            "alltoall errored: {:?}",
            stats.errors
        );
        let out: Vec<Vec<u8>> = (0..n)
            .map(|r| cluster.read_mem(r, rbufs[r as usize], bytes * n as u64))
            .collect();
        (stats, out)
    };
    let (_, want) = run(FaultPlan::none());
    let faults = FaultPlan {
        seed: 0xA110,
        link_faults: vec![LinkFault {
            at_ns: 40_000,
            node: 1,
            port: 0,
            down_ns: 2_000_000,
        }],
        ..FaultPlan::none()
    };
    let (stats, got) = run(faults);
    assert!(
        stats.migrations >= 1,
        "mid-alltoall port loss should have migrated"
    );
    assert_eq!(got, want, "failover changed the alltoall result");
}

/// One-sided Put/Get under recoverable wire chaos: RMA WRs ride the
/// same RC transport, so drops and delays must be absorbed by
/// retransmission without corrupting the window or leaking errors.
#[test]
fn rma_put_get_deliver_under_chaos() {
    let ty = Datatype::vector(64, 32, 1024, &Datatype::int()).unwrap();
    let span = ty.true_ub() as u64 + 64;
    cases(chaos_seed(0xC0_1103), 6, |rng| {
        let faults = FaultPlan {
            seed: rng.next_u64(),
            drop_rate: rng.range_u64(0, 10) as f64 / 100.0,
            delay_rate: rng.range_u64(0, 20) as f64 / 100.0,
            max_delay_ns: 20_000,
            ..FaultPlan::none()
        };
        let mut cluster = Cluster::new(spec(Scheme::MultiW, 2, faults));
        let obuf = cluster.alloc(0, span, 4096);
        let gbuf = cluster.alloc(0, span, 4096);
        let wbuf = cluster.alloc(1, span, 4096);
        cluster.fill_pattern(0, obuf, span, 91);
        let p0: Program = vec![
            AppOp::WinCreate {
                win: 1,
                addr: 0,
                len: 0,
            },
            AppOp::Put {
                win: 1,
                target: 1,
                obuf,
                ocount: 1,
                oty: ty.clone(),
                toff: 0,
                tcount: 1,
                tty: ty.clone(),
            },
            AppOp::Fence,
            // Read the window straight back: the Get must observe
            // exactly what the Put placed.
            AppOp::Get {
                win: 1,
                target: 1,
                obuf: gbuf,
                ocount: 1,
                oty: ty.clone(),
                toff: 0,
                tcount: 1,
                tty: ty.clone(),
            },
            AppOp::Fence,
        ];
        let p1: Program = vec![
            AppOp::WinCreate {
                win: 1,
                addr: wbuf,
                len: span,
            },
            AppOp::Fence,
            AppOp::Fence,
        ];
        let stats = cluster.run(vec![p0, p1]);
        assert_eq!(
            stats.total_errors(),
            0,
            "RMA under chaos errored: {:?}",
            stats.errors
        );
        let src = cluster.read_mem(0, obuf, span);
        let win = cluster.read_mem(1, wbuf, span);
        let got = cluster.read_mem(0, gbuf, span);
        for (off, len) in ty.flat().repeat(1) {
            let o = off as usize;
            assert_eq!(
                &win[o..o + len as usize],
                &src[o..o + len as usize],
                "Put corrupted"
            );
            assert_eq!(
                &got[o..o + len as usize],
                &src[o..o + len as usize],
                "Get corrupted"
            );
        }
    });
}

/// A Put in flight when the origin's primary port dies: APM migrates
/// the connection and the one-sided transfer still lands byte-exact.
#[test]
fn rma_put_survives_link_failover() {
    let ty = Datatype::vector(128, 256, 2048, &Datatype::int()).unwrap(); // 128 KiB
    let span = ty.true_ub() as u64 + 64;
    let faults = FaultPlan {
        seed: 0xA111,
        link_faults: vec![LinkFault {
            at_ns: 30_000,
            node: 0,
            port: 0,
            down_ns: 2_000_000,
        }],
        ..FaultPlan::none()
    };
    let mut cluster = Cluster::new(spec(Scheme::MultiW, 2, faults));
    let obuf = cluster.alloc(0, span, 4096);
    let wbuf = cluster.alloc(1, span, 4096);
    cluster.fill_pattern(0, obuf, span, 17);
    let p0: Program = vec![
        AppOp::WinCreate {
            win: 2,
            addr: 0,
            len: 0,
        },
        AppOp::Put {
            win: 2,
            target: 1,
            obuf,
            ocount: 1,
            oty: ty.clone(),
            toff: 0,
            tcount: 1,
            tty: ty.clone(),
        },
        AppOp::Fence,
    ];
    let p1: Program = vec![
        AppOp::WinCreate {
            win: 2,
            addr: wbuf,
            len: span,
        },
        AppOp::Fence,
    ];
    let stats = cluster.run(vec![p0, p1]);
    assert_eq!(
        stats.total_errors(),
        0,
        "failover Put errored: {:?}",
        stats.errors
    );
    assert!(
        stats.migrations >= 1,
        "mid-Put port loss should have migrated"
    );
    let src = cluster.read_mem(0, obuf, span);
    let dst = cluster.read_mem(1, wbuf, span);
    for (off, len) in ty.flat().repeat(1) {
        let o = off as usize;
        assert_eq!(
            &dst[o..o + len as usize],
            &src[o..o + len as usize],
            "Put corrupted"
        );
    }
}
