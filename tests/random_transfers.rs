//! Randomized end-to-end tests: random derived datatypes pushed
//! through the full stack (datatype engine → MPI protocols → simulated
//! verbs → remote memory) under every scheme, asserting byte-exact
//! delivery and protocol hygiene. Seeded via [`ibdt_testkit`].

use ibdt::datatype::Datatype;
use ibdt::mpicore::{AppOp, Cluster, ClusterSpec, Scheme};
use ibdt_testkit::{cases, Rng};

/// Random non-overlapping datatype builder. Kept shallow — the deep
/// structural fuzzing lives in the datatype crate; here we fuzz the
/// *protocols* with realistic shapes.
#[derive(Debug, Clone)]
enum Shape {
    Vector {
        count: u64,
        blocklen: u64,
        stride: u64,
    },
    Indexed {
        blocks: Vec<(u64, u64)>,
    },
    Struct {
        sizes: Vec<u64>,
    },
    Contig {
        len: u64,
    },
}

fn random_shape(rng: &mut Rng) -> Shape {
    match rng.range_u64(0, 4) {
        0 => {
            let blocklen = rng.range_u64(1, 600);
            Shape::Vector {
                count: rng.range_u64(1, 200),
                blocklen,
                stride: blocklen + rng.range_u64(0, 600),
            }
        }
        1 => {
            let n = rng.range_usize(1, 30);
            Shape::Indexed {
                blocks: (0..n)
                    .map(|_| (rng.range_u64(1, 400), rng.range_u64(0, 800)))
                    .collect(),
            }
        }
        2 => {
            let n = rng.range_usize(1, 10);
            Shape::Struct {
                sizes: (0..n).map(|_| rng.range_u64(1, 2000)).collect(),
            }
        }
        _ => Shape::Contig {
            len: rng.range_u64(1, 100_000),
        },
    }
}

fn build(shape: &Shape) -> Datatype {
    let byte = Datatype::byte();
    match shape {
        Shape::Vector {
            count,
            blocklen,
            stride,
        } => Datatype::hvector(*count, *blocklen, *stride as i64, &byte).unwrap(),
        Shape::Indexed { blocks } => {
            let mut displ = 0i64;
            let mut entries = Vec::new();
            for &(len, gap) in blocks {
                entries.push((len, displ));
                displ += (len + gap) as i64;
            }
            Datatype::hindexed(&entries, &byte).unwrap()
        }
        Shape::Struct { sizes } => {
            let mut displ = 0i64;
            let mut fields = Vec::new();
            for (i, &s) in sizes.iter().enumerate() {
                fields.push((s, displ, byte.clone()));
                displ += s as i64 + (i as i64 * 37) % 211 + 1;
            }
            Datatype::struct_(&fields).unwrap()
        }
        Shape::Contig { len } => Datatype::contiguous(*len, &byte).unwrap(),
    }
}

fn scheme_of(i: u8) -> Scheme {
    match i % 7 {
        0 => Scheme::Generic,
        1 => Scheme::BcSpup,
        2 => Scheme::RwgUp,
        3 => Scheme::PRrs,
        4 => Scheme::MultiW,
        5 => Scheme::Hybrid,
        _ => Scheme::Adaptive,
    }
}

#[test]
fn any_shape_any_scheme_delivers_exactly() {
    cases(0xE2E0_0001, 48, |rng| {
        let shape = random_shape(rng);
        let scheme = scheme_of(rng.next_u64() as u8);
        let count = rng.range_u64(1, 3);
        let seed = rng.next_u64();
        let ty = build(&shape);
        if ty.size() == 0 || ty.size() * count >= 8 << 20 {
            return; // keep sims quick
        }

        let mut spec = ClusterSpec::default();
        spec.mpi.scheme = scheme;
        let mut cluster = Cluster::new(spec);
        let span = ((count - 1) as i64 * ty.extent() + ty.true_ub()).max(8) as u64 + 64;
        let sbuf = cluster.alloc(0, span, 4096);
        let rbuf = cluster.alloc(1, span, 4096);
        cluster.fill_pattern(0, sbuf, span, seed);
        cluster.fill_pattern(1, rbuf, span, seed ^ 0xFFFF);

        let p0 = vec![
            AppOp::Isend {
                peer: 1,
                buf: sbuf,
                count,
                ty: ty.clone(),
                tag: 3,
            },
            AppOp::WaitAll,
        ];
        let p1 = vec![
            AppOp::Irecv {
                peer: 0,
                buf: rbuf,
                count,
                ty: ty.clone(),
                tag: 3,
            },
            AppOp::WaitAll,
        ];
        let stats = cluster.run(vec![p0, p1]);
        assert_eq!(stats.rnr_events, 0);

        let src = cluster.read_mem(0, sbuf, span);
        let dst = cluster.read_mem(1, rbuf, span);
        let mut touched = vec![false; span as usize];
        for (off, len) in ty.flat().repeat(count) {
            let o = off as usize;
            assert_eq!(
                &dst[o..o + len as usize],
                &src[o..o + len as usize],
                "scheme {scheme:?} corrupted a block"
            );
            for t in touched.iter_mut().skip(o).take(len as usize) {
                *t = true;
            }
        }
        // Gap bytes untouched: compare against a regenerated garbage
        // pattern.
        let mut witness = Cluster::new(ClusterSpec::default());
        let wbuf = witness.alloc(1, span, 4096);
        witness.fill_pattern(1, wbuf, span, seed ^ 0xFFFF);
        let orig = witness.read_mem(1, wbuf, span);
        for (i, &t) in touched.iter().enumerate() {
            if !t {
                assert_eq!(dst[i], orig[i], "gap byte {i} clobbered");
            }
        }
    });
}

#[test]
fn repeated_messages_stay_correct() {
    cases(0xE2E0_0002, 48, |rng| {
        // Multiple messages through the same cluster exercise pool
        // recycling, the layout cache, and pin-down reuse.
        let shape = random_shape(rng);
        let scheme = scheme_of(rng.next_u64() as u8);
        let ty = build(&shape);
        if ty.size() == 0 || ty.size() >= 2 << 20 {
            return;
        }
        let mut spec = ClusterSpec::default();
        spec.mpi.scheme = scheme;
        let mut cluster = Cluster::new(spec);
        let span = ty.true_ub().max(8) as u64 + 64;
        let sbuf = cluster.alloc(0, span, 4096);
        let rbuf = cluster.alloc(1, span, 4096);
        cluster.fill_pattern(0, sbuf, span, 77);
        let mut p0 = Vec::new();
        let mut p1 = Vec::new();
        for _ in 0..4 {
            p0.push(AppOp::Isend {
                peer: 1,
                buf: sbuf,
                count: 1,
                ty: ty.clone(),
                tag: 0,
            });
            p0.push(AppOp::WaitAll);
            p1.push(AppOp::Irecv {
                peer: 0,
                buf: rbuf,
                count: 1,
                ty: ty.clone(),
                tag: 0,
            });
            p1.push(AppOp::WaitAll);
        }
        cluster.run(vec![p0, p1]);
        let src = cluster.read_mem(0, sbuf, span);
        let dst = cluster.read_mem(1, rbuf, span);
        for (off, len) in ty.flat().repeat(1) {
            let o = off as usize;
            assert_eq!(&dst[o..o + len as usize], &src[o..o + len as usize]);
        }
    });
}
