//! Property-based end-to-end tests: random derived datatypes pushed
//! through the full stack (datatype engine → MPI protocols → simulated
//! verbs → remote memory) under every scheme, asserting byte-exact
//! delivery and protocol hygiene.

use ibdt::datatype::Datatype;
use ibdt::mpicore::{AppOp, Cluster, ClusterSpec, Scheme};
use proptest::prelude::*;

/// Random non-overlapping datatype builder. Kept shallow — the deep
/// structural fuzzing lives in the datatype crate; here we fuzz the
/// *protocols* with realistic shapes.
#[derive(Debug, Clone)]
enum Shape {
    Vector { count: u64, blocklen: u64, stride: u64 },
    Indexed { blocks: Vec<(u64, u64)> },
    Struct { sizes: Vec<u64> },
    Contig { len: u64 },
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    prop_oneof![
        (1u64..200, 1u64..600, 0u64..600).prop_map(|(count, blocklen, extra)| Shape::Vector {
            count,
            blocklen,
            stride: blocklen + extra,
        }),
        proptest::collection::vec((1u64..400, 0u64..800), 1..30).prop_map(|raw| {
            // Convert (len, gap) pairs into non-overlapping blocks.
            Shape::Indexed { blocks: raw }
        }),
        proptest::collection::vec(1u64..2000, 1..10).prop_map(|sizes| Shape::Struct { sizes }),
        (1u64..100_000).prop_map(|len| Shape::Contig { len }),
    ]
}

fn build(shape: &Shape) -> Datatype {
    let byte = Datatype::byte();
    match shape {
        Shape::Vector { count, blocklen, stride } => {
            Datatype::hvector(*count, *blocklen, *stride as i64, &byte).unwrap()
        }
        Shape::Indexed { blocks } => {
            let mut displ = 0i64;
            let mut entries = Vec::new();
            for &(len, gap) in blocks {
                entries.push((len, displ));
                displ += (len + gap) as i64;
            }
            Datatype::hindexed(&entries, &byte).unwrap()
        }
        Shape::Struct { sizes } => {
            let mut displ = 0i64;
            let mut fields = Vec::new();
            for (i, &s) in sizes.iter().enumerate() {
                fields.push((s, displ, byte.clone()));
                displ += s as i64 + (i as i64 * 37) % 211 + 1;
            }
            Datatype::struct_(&fields).unwrap()
        }
        Shape::Contig { len } => Datatype::contiguous(*len, &byte).unwrap(),
    }
}

fn scheme_of(i: u8) -> Scheme {
    match i % 7 {
        0 => Scheme::Generic,
        1 => Scheme::BcSpup,
        2 => Scheme::RwgUp,
        3 => Scheme::PRrs,
        4 => Scheme::MultiW,
        5 => Scheme::Hybrid,
        _ => Scheme::Adaptive,
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    #[test]
    fn any_shape_any_scheme_delivers_exactly(
        shape in shape_strategy(),
        scheme_sel in any::<u8>(),
        count in 1u64..3,
        seed in any::<u64>(),
    ) {
        let ty = build(&shape);
        prop_assume!(ty.size() > 0);
        prop_assume!(ty.size() * count < 8 << 20); // keep sims quick
        let scheme = scheme_of(scheme_sel);

        let mut spec = ClusterSpec::default();
        spec.mpi.scheme = scheme;
        let mut cluster = Cluster::new(spec);
        let span = ((count - 1) as i64 * ty.extent() + ty.true_ub()).max(8) as u64 + 64;
        let sbuf = cluster.alloc(0, span, 4096);
        let rbuf = cluster.alloc(1, span, 4096);
        cluster.fill_pattern(0, sbuf, span, seed);
        cluster.fill_pattern(1, rbuf, span, seed ^ 0xFFFF);

        let p0 = vec![
            AppOp::Isend { peer: 1, buf: sbuf, count, ty: ty.clone(), tag: 3 },
            AppOp::WaitAll,
        ];
        let p1 = vec![
            AppOp::Irecv { peer: 0, buf: rbuf, count, ty: ty.clone(), tag: 3 },
            AppOp::WaitAll,
        ];
        let stats = cluster.run(vec![p0, p1]);
        prop_assert_eq!(stats.rnr_events, 0);

        let src = cluster.read_mem(0, sbuf, span);
        let dst = cluster.read_mem(1, rbuf, span);
        let mut touched = vec![false; span as usize];
        for (off, len) in ty.flat().repeat(count) {
            let o = off as usize;
            prop_assert_eq!(
                &dst[o..o + len as usize],
                &src[o..o + len as usize],
                "scheme {:?} corrupted a block", scheme
            );
            for i in o..o + len as usize {
                touched[i] = true;
            }
        }
        // Gap bytes untouched: compare against a regenerated garbage
        // pattern.
        let mut witness = Cluster::new(ClusterSpec::default());
        let wbuf = witness.alloc(1, span, 4096);
        witness.fill_pattern(1, wbuf, span, seed ^ 0xFFFF);
        let orig = witness.read_mem(1, wbuf, span);
        for (i, &t) in touched.iter().enumerate() {
            if !t {
                prop_assert_eq!(dst[i], orig[i], "gap byte {} clobbered", i);
            }
        }
    }

    #[test]
    fn repeated_messages_stay_correct(
        shape in shape_strategy(),
        scheme_sel in any::<u8>(),
    ) {
        // Multiple messages through the same cluster exercise pool
        // recycling, the layout cache, and pin-down reuse.
        let ty = build(&shape);
        prop_assume!(ty.size() > 0 && ty.size() < 2 << 20);
        let scheme = scheme_of(scheme_sel);
        let mut spec = ClusterSpec::default();
        spec.mpi.scheme = scheme;
        let mut cluster = Cluster::new(spec);
        let span = ty.true_ub().max(8) as u64 + 64;
        let sbuf = cluster.alloc(0, span, 4096);
        let rbuf = cluster.alloc(1, span, 4096);
        cluster.fill_pattern(0, sbuf, span, 77);
        let mut p0 = Vec::new();
        let mut p1 = Vec::new();
        for _ in 0..4 {
            p0.push(AppOp::Isend { peer: 1, buf: sbuf, count: 1, ty: ty.clone(), tag: 0 });
            p0.push(AppOp::WaitAll);
            p1.push(AppOp::Irecv { peer: 0, buf: rbuf, count: 1, ty: ty.clone(), tag: 0 });
            p1.push(AppOp::WaitAll);
        }
        cluster.run(vec![p0, p1]);
        let src = cluster.read_mem(0, sbuf, span);
        let dst = cluster.read_mem(1, rbuf, span);
        for (off, len) in ty.flat().repeat(1) {
            let o = off as usize;
            prop_assert_eq!(&dst[o..o + len as usize], &src[o..o + len as usize]);
        }
    }
}
