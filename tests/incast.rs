//! Incast soak: the overload-robustness contract under oversubscribed
//! eager traffic. A 64→1 fan-in and an 8×8 all-to-all blast eager
//! messages at slow consumers with credit-based flow control, bounded
//! completion queues, and the flow-control invariant auditor all on.
//! The contract is strict — every payload arrives byte-exact exactly
//! once (the drivers verify per-(sender, message) patterns), the peak
//! unexpected-queue occupancy stays within the configured cap, no typed
//! error surfaces, and the same seed reproduces the same virtual clock
//! and counters.
//!
//! Override the seed matrix with `IBDT_CHAOS_SEED=<n>` to replay one
//! failing case.

use ibdt::mpicore::FaultPlan;
use ibdt::workloads::{alltoall_oversub, incast, incast_spec, IncastResult};
use ibdt_testkit::{cases, chaos_seed};

/// Deterministic digest of a run: virtual finish time plus the protocol
/// and flow-control counter totals. Two runs of the same spec must
/// produce identical fingerprints.
fn fingerprint(r: &IncastResult) -> (u64, u64, u64, u64, u64, u64) {
    let sum = |f: fn(&ibdt::mpicore::rank::RankCounters) -> u64| -> u64 {
        r.stats.counters.iter().map(f).sum()
    };
    (
        r.stats.finish_ns,
        sum(|c| c.eager_sends),
        sum(|c| c.rndv_sends),
        sum(|c| c.credit_msgs + c.credits_piggybacked),
        sum(|c| c.credit_spills + c.pending_spills),
        r.peak_unexpected,
    )
}

#[test]
fn incast_64_to_1_soak() {
    cases(chaos_seed(0x16CA_5764), 4, |rng| {
        let credits = [8u32, 32, 128][rng.range_usize(0, 3)];
        let msg_bytes = rng.range_u64(256, 1025);
        let work_ns = rng.range_u64(500, 3_000);
        let fault_seed = rng.next_u64();
        let run = || {
            let mut s = incast_spec(65, credits);
            s.mpi.audit = true;
            s.net.cq_depth = 4096;
            s.net.recv_low_watermark = 2;
            // Queueing jitter shuffles arrival timing between seeds
            // without consuming the retry budget.
            s.faults = FaultPlan {
                seed: fault_seed,
                delay_rate: 0.02,
                max_delay_ns: 5_000,
                ..FaultPlan::none()
            };
            (incast(&s, 16, msg_bytes, work_ns), s.mpi.unexpected_cap)
        };
        let (r, cap) = run();
        assert_eq!(
            r.stats.total_errors(),
            0,
            "credits={credits} msg_bytes={msg_bytes}: {:?}",
            r.stats.errors
        );
        assert!(
            r.peak_unexpected <= cap as u64,
            "peak unexpected {} exceeds cap {cap} (credits={credits})",
            r.peak_unexpected
        );
        // Every message the senders degraded must show up as a
        // rendezvous send, and eager+rndv must account for all traffic.
        let sent: u64 = r
            .stats
            .counters
            .iter()
            .map(|c| c.eager_sends + c.rndv_sends)
            .sum();
        assert_eq!(sent, 64 * 16, "message conservation across degradation");

        // Determinism: the same seed replays to the identical virtual
        // outcome, counters included.
        let (r2, _) = run();
        assert_eq!(
            fingerprint(&r),
            fingerprint(&r2),
            "seed must reproduce bit-identically (credits={credits})"
        );
    });
}

#[test]
fn alltoall_oversub_8x8_soak() {
    cases(chaos_seed(0x0A11_70A1), 4, |rng| {
        let credits = [8u32, 32][rng.range_usize(0, 2)];
        let msg_bytes = rng.range_u64(128, 1025);
        let fault_seed = rng.next_u64();
        let mut s = incast_spec(8, credits);
        s.mpi.audit = true;
        s.net.cq_depth = 1024;
        s.net.recv_low_watermark = 2;
        s.faults = FaultPlan {
            seed: fault_seed,
            delay_rate: 0.02,
            max_delay_ns: 5_000,
            ..FaultPlan::none()
        };
        let r = alltoall_oversub(&s, 16, msg_bytes);
        assert_eq!(
            r.stats.total_errors(),
            0,
            "credits={credits} msg_bytes={msg_bytes}: {:?}",
            r.stats.errors
        );
        assert!(
            r.peak_unexpected <= s.mpi.unexpected_cap as u64,
            "peak unexpected {} exceeds cap {}",
            r.peak_unexpected,
            s.mpi.unexpected_cap
        );
        let sent: u64 = r
            .stats
            .counters
            .iter()
            .map(|c| c.eager_sends + c.rndv_sends)
            .sum();
        assert_eq!(sent, 8 * 7 * 16, "message conservation across degradation");
    });
}

/// Flow control off must still survive the same incast (the classic
/// unthrottled path stays correct — the queue just grows unbounded),
/// and none of the new spill counters may fire.
#[test]
fn incast_unthrottled_baseline_stays_clean() {
    let mut s = incast_spec(17, 0);
    s.mpi.audit = true;
    let r = incast(&s, 16, 512, 2_000);
    assert_eq!(r.stats.total_errors(), 0);
    for c in &r.stats.counters {
        assert_eq!(c.credit_spills, 0);
        assert_eq!(c.pending_spills, 0);
        assert_eq!(c.credit_msgs, 0);
        assert_eq!(c.credits_piggybacked, 0);
    }
}

/// Tight credit budgets force the degradation ladder's bottom rung:
/// with 1 credit per peer nearly all traffic must degrade to
/// rendezvous, and the run still delivers everything byte-exact.
#[test]
fn rendezvous_only_rung_under_starvation() {
    let mut s = incast_spec(9, 1);
    s.mpi.audit = true;
    let r = incast(&s, 12, 512, 2_000);
    assert_eq!(r.stats.total_errors(), 0);
    let spills: u64 = r.stats.counters.iter().map(|c| c.credit_spills).sum();
    assert!(spills > 0, "1-credit incast must spill to rendezvous");
    let rndv: u64 = r.stats.counters.iter().map(|c| c.rndv_sends).sum();
    assert!(
        rndv >= 8 * 8,
        "most messages should ride the rendezvous rung, got {rndv}"
    );
}
