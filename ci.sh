#!/usr/bin/env bash
# Local CI: exactly the checks .github/workflows/ci.yml runs.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
