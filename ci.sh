#!/usr/bin/env bash
# Local CI: exactly the checks .github/workflows/ci.yml runs.
#
# `./ci.sh --chaos` additionally replays the chaos suites under a
# fixed seed matrix (the `chaos` job in CI); a failure prints the
# IBDT_CHAOS_SEED value that reproduces it.
#
# `./ci.sh --bench-gate` compares a fresh hotpath run against the
# committed BENCH_hotpath.json and fails on a >15% regression of any
# gated metric (the `bench-gate` job in CI).
#
# `./ci.sh --soak` replays the incast/oversubscription soak suite
# (64→1 fan-in and 8×8 all-to-all, flow-control invariant auditor on)
# under the same fixed seed matrix (the `soak` job in CI).
#
# `./ci.sh --scale` runs the sharded scale-driver smoke: a 1024-rank
# vector Alltoall must finish inside its wall-clock and per-rank
# state budgets, and the 8-shard run must be bit-identical to the
# sequential reference (DESIGN.md §14, EXPERIMENTS.md X14).
#
# `./ci.sh --chaos-scale` runs the crash-stop chaos matrix (the
# `chaos-scale` job in CI): the chaos_scale suite under the fixed seed
# matrix, plus the 4096-rank chaos smoke — a seeded crash-stop run
# must fingerprint bit-identically across 1/2/8 shards (DESIGN.md §15,
# EXPERIMENTS.md X15).
#
# `./ci.sh --shm` runs the shared-memory transport smoke: regenerates
# figure x17 (DDT vs manual pack across transports) and enforces the
# arXiv:1607.00178 guideline bounds — the datatype path must not lose
# to pack+send from 32 KiB up on any transport, and must stay within
# 1.2x below that (DESIGN.md §17, EXPERIMENTS.md X17).
set -euo pipefail
cd "$(dirname "$0")"

CHAOS=0
BENCH_GATE=0
SOAK=0
SCALE=0
CHAOS_SCALE=0
SHM=0
for arg in "$@"; do
  case "$arg" in
    --chaos) CHAOS=1 ;;
    --bench-gate) BENCH_GATE=1 ;;
    --soak) SOAK=1 ;;
    --scale) SCALE=1 ;;
    --chaos-scale) CHAOS_SCALE=1 ;;
    --shm) SHM=1 ;;
    *) echo "unknown argument: $arg (supported: --chaos, --bench-gate, --soak, --scale, --chaos-scale, --shm)" >&2; exit 2 ;;
  esac
done

echo "==> lint: no HashMap on the hot path"
# The steady-state request path is dense-table/slab only (see DESIGN.md
# §12); a HashMap reintroduces per-message hashing and rehash
# allocation. Escape hatch for a justified exception: put the token
# allow-hashmap in a comment on the same line.
if grep -n "HashMap" crates/mpicore/src/progress.rs crates/ibsim/src/fabric.rs \
    | grep -v "allow-hashmap"; then
  echo "error: HashMap used in a hot-path module; use the dense tables" \
       "in mpicore::table / a simcore::Slab, or annotate the line with" \
       "an allow-hashmap comment explaining why." >&2
  exit 1
fi

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> bench smoke (hotpath -> BENCH_hotpath.json)"
./target/release/hotpath > /dev/null
python3 - <<'EOF'
import json
d = json.load(open("BENCH_hotpath.json"))
assert d, "BENCH_hotpath.json is empty"
for name, v in d.items():
    assert "ns_per_op" in v and "bytes_per_sec" in v and "allocs_per_op" in v, \
        f"bad entry {name}"
steady = next(v for k, v in d.items()
              if k.startswith("repeated_send/persistent_eager/"))
assert steady["allocs_per_op"] == 0, \
    f"steady-state sends allocate: {steady['allocs_per_op']}/op"
# The hotpath binary itself asserts 3 spellings -> 1 plan compile;
# here we hold the canonical-hit lookup to its zero-alloc contract.
canon = next(v for k, v in d.items()
             if k.startswith("canon/respelled_lookup/"))
assert canon["allocs_per_op"] == 0, \
    f"canonical-hit lookup allocates: {canon['allocs_per_op']}/op"
print(f"BENCH_hotpath.json OK ({len(d)} entries, "
      f"repeated-send speedup {d['repeated_send/speedup']['ns_per_op']:.2f}x, "
      f"steady-state allocs/op 0, canonical-hit allocs/op 0)")
EOF

if [[ "$BENCH_GATE" == 1 ]]; then
  echo "==> bench gate (>15% regression vs committed BENCH_hotpath.json fails)"
  # The smoke run above overwrote the working-tree JSON; gate against
  # the committed baseline, which is what every refresh was measured
  # into.
  git show HEAD:BENCH_hotpath.json > target/bench_baseline.json
  python3 tools/bench_gate.py target/bench_baseline.json BENCH_hotpath.json
fi

if [[ "$CHAOS" == 1 ]]; then
  # Same matrix as the `chaos` CI job: each seed re-derives every
  # fault plan in the chaos suites, so four seeds exercise four
  # disjoint fault schedules per test.
  for seed in 0x1 0xBEEF 0xC4A0 0xFEED; do
    echo "==> chaos matrix: IBDT_CHAOS_SEED=$seed"
    IBDT_CHAOS_SEED=$seed cargo test -q --test chaos --test chaos_coll
  done
fi

if [[ "$SOAK" == 1 ]]; then
  # Incast soak matrix (the `soak` CI job): 64→1 eager incast and 8×8
  # all-to-all oversubscription with credits, bounded CQs, and the
  # flow-control invariant auditor enabled. Each seed re-derives the
  # per-case credit budgets, message sizes, and jitter plans.
  for seed in 0x1 0xBEEF 0xC4A0 0xFEED; do
    echo "==> incast soak matrix: IBDT_CHAOS_SEED=$seed"
    IBDT_CHAOS_SEED=$seed cargo test -q --test incast
  done
fi

if [[ "$SCALE" == 1 ]]; then
  echo "==> scale smoke (1024-rank Alltoall within budget, bit-identical shards)"
  ./target/release/scale --smoke
fi

if [[ "$CHAOS_SCALE" == 1 ]]; then
  # Crash-stop chaos matrix (the `chaos-scale` CI job): each seed
  # re-derives the node-failure plans in the chaos_scale suite
  # (membership, drain/recover, shrinker) and the seeded plan of the
  # 4096-rank chaos smoke.
  for seed in 0x1 0xBEEF 0xC4A0 0xFEED; do
    echo "==> chaos-scale matrix: IBDT_CHAOS_SEED=$seed"
    IBDT_CHAOS_SEED=$seed cargo test -q --test chaos_scale
  done
  echo "==> chaos smoke (4096-rank crash-stop run bit-identical across shards)"
  ./target/release/scale --chaos-smoke
fi

if [[ "$SHM" == 1 ]]; then
  echo "==> shm transport smoke (x17 guideline bounds)"
  mkdir -p target/shm_smoke
  ./target/release/figures x17 --csv target/shm_smoke > /dev/null
  python3 tools/x17_gate.py target/shm_smoke/x17.csv
fi

echo "CI OK"
