#!/usr/bin/env bash
# Local CI: exactly the checks .github/workflows/ci.yml runs.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> bench smoke (hotpath -> BENCH_hotpath.json)"
./target/release/hotpath > /dev/null
python3 - <<'EOF'
import json
d = json.load(open("BENCH_hotpath.json"))
assert d, "BENCH_hotpath.json is empty"
for name, v in d.items():
    assert "ns_per_op" in v and "bytes_per_sec" in v, f"bad entry {name}"
print(f"BENCH_hotpath.json OK ({len(d)} entries, "
      f"repeated-send speedup {d['repeated_send/speedup']['ns_per_op']:.2f}x)")
EOF

echo "CI OK"
