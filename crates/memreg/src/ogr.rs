//! Optimistic Group Registration (OGR, ref [33], §5.4.1).
//!
//! Registering a datatype message buffer poses a trade-off: registering
//! each contiguous block separately pays the per-call base cost many
//! times; registering the whole covering extent pays per-page cost for
//! the gaps. OGR sorts the blocks and greedily merges neighbours whenever
//! the extra pages pinned for the gap cost less than a fresh
//! register+deregister round trip — "large gaps which null any benefit
//! over individual registration are filtered out".

use crate::addr::Va;
use crate::cost::RegCostModel;
use ibdt_simcore::time::Time;

/// A registration plan: the regions to register and the modelled cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OgrPlan {
    /// Regions to register, sorted by address, non-overlapping.
    pub regions: Vec<(Va, u64)>,
    /// Modelled cost of registering all regions, ns.
    pub reg_cost_ns: Time,
    /// Modelled cost of later deregistering all regions, ns.
    pub dereg_cost_ns: Time,
}

impl OgrPlan {
    /// Total register + deregister cost.
    pub fn round_trip_ns(&self) -> Time {
        self.reg_cost_ns + self.dereg_cost_ns
    }

    /// Total bytes the plan pins (including gap bytes inside regions).
    pub fn pinned_bytes(&self) -> u64 {
        self.regions.iter().map(|(_, l)| *l).sum()
    }
}

/// Normalizes blocks: drops empties, sorts by address, merges blocks that
/// touch or overlap into maximal extents.
fn normalize(blocks: &[(Va, u64)]) -> Vec<(Va, u64)> {
    let mut v: Vec<(Va, u64)> = blocks.iter().copied().filter(|&(_, l)| l > 0).collect();
    v.sort_unstable();
    let mut out: Vec<(Va, u64)> = Vec::with_capacity(v.len());
    for (a, l) in v {
        match out.last_mut() {
            Some((oa, ol)) if a <= *oa + *ol => {
                let end = (a + l).max(*oa + *ol);
                *ol = end - *oa;
            }
            _ => out.push((a, l)),
        }
    }
    out
}

fn plan_from_regions(regions: Vec<(Va, u64)>, model: &RegCostModel) -> OgrPlan {
    let reg_cost_ns = regions.iter().map(|&(a, l)| model.reg_cost(a, l)).sum();
    let dereg_cost_ns = regions.iter().map(|&(a, l)| model.dereg_cost(a, l)).sum();
    OgrPlan {
        regions,
        reg_cost_ns,
        dereg_cost_ns,
    }
}

/// Builds the OGR plan for `blocks` under `model`.
///
/// Greedy left-to-right merge: a gap is absorbed into the current region
/// when the round-trip cost of the extra gap pages is no more than the
/// round-trip base cost of a separate region. This is the cost model of
/// ref [33] specialized to already-allocated MPI datatype buffers.
///
/// ```
/// use ibdt_memreg::{ogr, RegCostModel};
/// let model = RegCostModel::default();
/// // 4 KiB blocks with 12 KiB gaps: cheaper as one region.
/// let blocks: Vec<(u64, u64)> = (0..16).map(|i| (i * 16384, 4096)).collect();
/// let plan = ogr::plan(&blocks, &model);
/// assert_eq!(plan.regions.len(), 1);
/// assert!(plan.round_trip_ns() <= ogr::plan_per_block(&blocks, &model).round_trip_ns());
/// ```
pub fn plan(blocks: &[(Va, u64)], model: &RegCostModel) -> OgrPlan {
    let extents = normalize(blocks);
    if extents.is_empty() {
        return OgrPlan {
            regions: Vec::new(),
            reg_cost_ns: 0,
            dereg_cost_ns: 0,
        };
    }
    let new_region_cost = model.reg_base_ns + model.dereg_base_ns;
    let per_gap_page = model.reg_per_page_ns + model.dereg_per_page_ns;

    let mut regions: Vec<(Va, u64)> = Vec::with_capacity(extents.len());
    let (mut cur_a, mut cur_l) = extents[0];
    for &(a, l) in &extents[1..] {
        let cur_end = cur_a + cur_l;
        debug_assert!(a > cur_end, "normalize() must leave positive gaps");
        // Extra pages pinned if the gap is absorbed: pages of the merged
        // region minus pages of the two separate regions (page sharing at
        // the seams makes this precise rather than gap/page_size).
        let merged_pages = model.pages(cur_a, a + l - cur_a);
        let split_pages = model.pages(cur_a, cur_l) + model.pages(a, l);
        let extra_pages = merged_pages.saturating_sub(split_pages);
        if per_gap_page * extra_pages <= new_region_cost {
            cur_l = a + l - cur_a;
        } else {
            regions.push((cur_a, cur_l));
            (cur_a, cur_l) = (a, l);
        }
    }
    regions.push((cur_a, cur_l));
    plan_from_regions(regions, model)
}

/// Baseline: register every contiguous block separately.
pub fn plan_per_block(blocks: &[(Va, u64)], model: &RegCostModel) -> OgrPlan {
    plan_from_regions(normalize(blocks), model)
}

/// Baseline: register the single extent covering all blocks (gaps
/// included).
pub fn plan_whole_extent(blocks: &[(Va, u64)], model: &RegCostModel) -> OgrPlan {
    let extents = normalize(blocks);
    let regions = match (extents.first(), extents.last()) {
        (Some(&(first, _)), Some(&(last_a, last_l))) => vec![(first, last_a + last_l - first)],
        _ => Vec::new(),
    };
    plan_from_regions(regions, model)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> RegCostModel {
        RegCostModel {
            page_size: 4096,
            reg_base_ns: 20_000,
            reg_per_page_ns: 250,
            dereg_base_ns: 10_000,
            dereg_per_page_ns: 50,
        }
    }

    #[test]
    fn empty_input_empty_plan() {
        let p = plan(&[], &model());
        assert!(p.regions.is_empty());
        assert_eq!(p.round_trip_ns(), 0);
    }

    #[test]
    fn single_block() {
        let p = plan(&[(0x1000, 512)], &model());
        assert_eq!(p.regions, vec![(0x1000, 512)]);
    }

    #[test]
    fn small_gaps_are_merged() {
        // Vector-like layout: 4 KiB blocks with 12 KiB gaps. Extra gap
        // pages per merge = 3 → 3*300 = 900 ns <= 30_000 ns base: merge.
        let m = model();
        let blocks: Vec<(Va, u64)> = (0..16u64).map(|i| (i * 16384, 4096)).collect();
        let p = plan(&blocks, &m);
        assert_eq!(p.regions.len(), 1);
        assert_eq!(p.regions[0], (0, 15 * 16384 + 4096));
        assert!(p.round_trip_ns() < plan_per_block(&blocks, &m).round_trip_ns());
    }

    #[test]
    fn huge_gaps_are_not_merged() {
        // 1 MiB gaps: 256 extra pages * 300 ns = 76_800 > 30_000: split.
        let m = model();
        let blocks = vec![(0u64, 4096u64), (1 << 20, 4096), (2 << 20, 4096)];
        let p = plan(&blocks, &m);
        assert_eq!(p.regions.len(), 3);
        assert_eq!(
            p.round_trip_ns(),
            plan_per_block(&blocks, &m).round_trip_ns()
        );
    }

    #[test]
    fn adjacent_blocks_coalesce_in_normalize() {
        let m = model();
        let p = plan(&[(0, 100), (100, 100), (200, 100)], &m);
        assert_eq!(p.regions, vec![(0, 300)]);
    }

    #[test]
    fn overlapping_and_unsorted_input() {
        let m = model();
        let p = plan(&[(500, 100), (0, 600), (550, 200)], &m);
        assert_eq!(p.regions, vec![(0, 750)]);
    }

    #[test]
    fn zero_length_blocks_ignored() {
        let m = model();
        let p = plan(&[(0, 0), (100, 50), (999, 0)], &m);
        assert_eq!(p.regions, vec![(100, 50)]);
    }

    #[test]
    fn ogr_never_worse_than_both_baselines() {
        let m = model();
        let cases: Vec<Vec<(Va, u64)>> = vec![
            (0..32).map(|i| (i * 8192, 256)).collect(),
            (0..8).map(|i| (i * (1 << 22), 65536)).collect(),
            vec![(0, 16), (1 << 30, 16)],
        ];
        for blocks in cases {
            let ogr = plan(&blocks, &m).round_trip_ns();
            let per = plan_per_block(&blocks, &m).round_trip_ns();
            let whole = plan_whole_extent(&blocks, &m).round_trip_ns();
            assert!(ogr <= per, "ogr {ogr} > per-block {per}");
            assert!(ogr <= whole, "ogr {ogr} > whole {whole}");
        }
    }

    #[test]
    fn plan_regions_cover_all_blocks() {
        let m = model();
        let blocks: Vec<(Va, u64)> = (0..20).map(|i| (i * 10_000, 123)).collect();
        let p = plan(&blocks, &m);
        for &(a, l) in &blocks {
            assert!(
                p.regions
                    .iter()
                    .any(|&(ra, rl)| a >= ra && a + l <= ra + rl),
                "block ({a},{l}) not covered"
            );
        }
        // Regions sorted and disjoint.
        for w in p.regions.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0);
        }
    }

    #[test]
    fn whole_extent_single_region() {
        let m = model();
        let p = plan_whole_extent(&[(100, 10), (5000, 10)], &m);
        assert_eq!(p.regions, vec![(100, 4910)]);
        assert_eq!(p.pinned_bytes(), 4910);
    }
}
