#![warn(missing_docs)]
//! Simulated host memory and memory registration.
//!
//! InfiniBand requires every buffer touched by the HCA to be *registered*
//! (pinned and translated) beforehand; registration is expensive and its
//! cost model is central to the paper's analysis (§3.2, §5.4.1, §8.6).
//! This crate provides:
//!
//! * [`addr::AddressSpace`] — a per-rank flat memory backed by a real
//!   `Vec<u8>`; RDMA operations in the simulator genuinely move bytes
//!   between address spaces, so data correctness is testable,
//! * [`table::RegTable`] — registered memory regions with lkey/rkey
//!   protection checks, mirroring verbs memory-region semantics,
//! * [`cost::RegCostModel`] — base + per-page registration and
//!   deregistration costs,
//! * [`cache::PindownCache`] — the pin-down cache of Tezuka et al.
//!   (ref [12]) used to amortize registration across reused buffers,
//! * [`ogr`] — Optimistic Group Registration (ref [33]): grouping a list
//!   of noncontiguous blocks into few registered regions using a cost
//!   model that trades per-region base cost against registering gap
//!   pages.

pub mod addr;
pub mod cache;
pub mod cost;
pub mod error;
pub mod ogr;
pub mod table;
pub mod tier;

pub use addr::{AddressSpace, Va};
pub use cache::PindownCache;
pub use cost::RegCostModel;
pub use error::MemError;
pub use table::{MrHandle, RegTable, Registration};
pub use tier::{MemTier, TierMap};
