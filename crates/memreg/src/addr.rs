//! Per-rank flat address spaces.
//!
//! Each simulated process owns an [`AddressSpace`]: a flat byte array
//! addressed by [`Va`] (virtual address). Every copy the schemes perform
//! — packing, RDMA placement, unpacking — really moves bytes here, so an
//! incorrect protocol produces observably wrong data, not just wrong
//! timings.
//!
//! Allocation is a bump allocator with alignment; benchmarks that model
//! "a fresh buffer every iteration" (Fig. 14) simply keep allocating.
//!
//! # Backing-store recycling
//!
//! Spaces are hundreds of megabytes of *virtual* memory but touch only
//! a sliver of it. A fresh `vec![0; cap]` is a lazy `mmap`, so every
//! byte the simulation writes pays a first-touch page fault — and a
//! short-lived space (one per rank per benchmark iteration) pays the
//! whole fault bill again each time, dwarfing the simulated work.
//! Dropped spaces therefore park their backing buffer in a
//! thread-local pool together with a **dirty page bitmap** (one bit
//! per 4 KiB page, maintained by every mutable access); `new` with a
//! matching capacity re-zeros exactly the dirty pages and hands the
//! warm, already faulted-in buffer back. Observable behaviour is
//! identical to a fresh zeroed allocation — the bitmap is exactly the
//! set of pages that can differ from zero.

use crate::error::MemError;
use std::cell::{Cell, RefCell};

/// A virtual address inside one rank's [`AddressSpace`].
pub type Va = u64;

/// Dirty-tracking granularity (one page).
const PAGE: u64 = 4096;
/// Maximum retired backing buffers kept per thread.
const MAX_POOLED_SPACES: usize = 8;
/// Retired buffers dirtier than this are not pooled: re-zeroing that
/// much memory costs more than a fresh lazily-mapped `calloc`.
const MAX_RECYCLE_DIRTY: u64 = 32 << 20;

/// A retired backing buffer: the bytes plus the bitmap of pages that
/// may be non-zero.
struct Retired {
    mem: Vec<u8>,
    dirty: Vec<u64>,
}

thread_local! {
    static SPACE_POOL: RefCell<Vec<Retired>> = const { RefCell::new(Vec::new()) };
    static SP_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static SP_REUSES: Cell<u64> = const { Cell::new(0) };
    static SP_ZEROED: Cell<u64> = const { Cell::new(0) };
}

/// Flat byte memory for one simulated rank.
#[derive(Debug)]
pub struct AddressSpace {
    mem: Vec<u8>,
    brk: u64,
    allocs: u64,
    /// One bit per page; set when a mutable access may have written
    /// the page. Exact (no over-approximation), so recycling re-zeros
    /// only bytes that were really reachable by a write.
    dirty: Vec<u64>,
}

/// Bitmap words needed for `capacity` bytes of pages.
fn bitmap_words(capacity: u64) -> usize {
    (capacity.div_ceil(PAGE) as usize).div_ceil(64)
}

impl AddressSpace {
    /// Creates an address space of `capacity` bytes, zero-initialized.
    ///
    /// Address 0 is reserved (never returned by [`Self::alloc`]) so that
    /// 0 can be used as a null address in protocol messages.
    ///
    /// Reuses a recycled backing buffer of the same capacity when one
    /// is pooled (see the module docs); the observable contents are
    /// all-zero either way.
    pub fn new(capacity: u64) -> Self {
        let recycled = SPACE_POOL
            .try_with(|p| {
                let mut p = p.borrow_mut();
                p.iter()
                    .position(|r| r.mem.len() as u64 == capacity)
                    .map(|i| p.swap_remove(i))
            })
            .ok()
            .flatten();
        let (mem, dirty) = match recycled {
            Some(Retired { mut mem, mut dirty }) => {
                let mut zeroed = 0u64;
                for (w, slot) in dirty.iter_mut().enumerate() {
                    let mut word = std::mem::take(slot);
                    while word != 0 {
                        let page = (w as u64) * 64 + word.trailing_zeros() as u64;
                        let lo = page * PAGE;
                        let hi = (lo + PAGE).min(capacity);
                        mem[lo as usize..hi as usize].fill(0);
                        zeroed += hi - lo;
                        word &= word - 1;
                    }
                }
                SP_REUSES.with(|c| c.set(c.get() + 1));
                SP_ZEROED.with(|c| c.set(c.get() + zeroed));
                (mem, dirty)
            }
            None => {
                SP_ALLOCS.with(|c| c.set(c.get() + 1));
                (
                    vec![0u8; capacity as usize],
                    vec![0u64; bitmap_words(capacity)],
                )
            }
        };
        Self {
            mem,
            brk: 64, // reserve a null guard region
            allocs: 0,
            dirty,
        }
    }

    /// Returns the space to its just-constructed state in place:
    /// dirty pages re-zeroed, bump pointer back at the null guard,
    /// allocation count cleared. Semantically this is the drop→pool→
    /// `new` round trip without the pool detour — the same buffer is
    /// reused and exactly the dirty pages are re-zeroed — so it is
    /// accounted identically in [`AddressSpace::pool_stats`] (one
    /// reuse, the zeroed bytes). Observable contents afterwards are
    /// all-zero, as from a fresh space.
    pub fn reset(&mut self) {
        let capacity = self.mem.len() as u64;
        let mut zeroed = 0u64;
        for (w, slot) in self.dirty.iter_mut().enumerate() {
            let mut word = std::mem::take(slot);
            while word != 0 {
                let page = (w as u64) * 64 + word.trailing_zeros() as u64;
                let lo = page * PAGE;
                let hi = (lo + PAGE).min(capacity);
                self.mem[lo as usize..hi as usize].fill(0);
                zeroed += hi - lo;
                word &= word - 1;
            }
        }
        SP_REUSES.with(|c| c.set(c.get() + 1));
        SP_ZEROED.with(|c| c.set(c.get() + zeroed));
        self.brk = 64;
        self.allocs = 0;
    }

    /// `(fresh allocations, pool reuses, bytes re-zeroed)` by this
    /// thread's backing-store pool since the last
    /// [`AddressSpace::reset_pool_stats`].
    pub fn pool_stats() -> (u64, u64, u64) {
        (
            SP_ALLOCS.with(Cell::get),
            SP_REUSES.with(Cell::get),
            SP_ZEROED.with(Cell::get),
        )
    }

    /// Zeroes this thread's backing-store pool counters.
    pub fn reset_pool_stats() {
        SP_ALLOCS.with(|c| c.set(0));
        SP_REUSES.with(|c| c.set(0));
        SP_ZEROED.with(|c| c.set(0));
    }

    /// Records that `[addr, addr+len)` may have been written by
    /// setting the covered pages' bits. Bounds were validated by the
    /// caller.
    fn mark_dirty(&mut self, addr: Va, len: u64) {
        if len == 0 {
            return;
        }
        let first = addr / PAGE;
        let last = (addr + len - 1) / PAGE;
        let (fw, fb) = ((first / 64) as usize, first % 64);
        let (lw, lb) = ((last / 64) as usize, last % 64);
        if fw == lw {
            self.dirty[fw] |= (!0u64 << fb) & (!0u64 >> (63 - lb));
        } else {
            self.dirty[fw] |= !0u64 << fb;
            for w in &mut self.dirty[fw + 1..lw] {
                *w = !0;
            }
            self.dirty[lw] |= !0u64 >> (63 - lb);
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.mem.len() as u64
    }

    /// Bytes still available to the allocator.
    pub fn remaining(&self) -> u64 {
        self.capacity() - self.brk
    }

    /// Number of allocations performed.
    pub fn alloc_count(&self) -> u64 {
        self.allocs
    }

    /// Allocates `len` bytes aligned to `align` (a power of two).
    pub fn alloc(&mut self, len: u64, align: u64) -> Result<Va, MemError> {
        debug_assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.brk + align - 1) & !(align - 1);
        let end = base.checked_add(len).ok_or(MemError::OutOfMemory {
            requested: len,
            remaining: self.remaining(),
        })?;
        if end > self.capacity() {
            return Err(MemError::OutOfMemory {
                requested: len,
                remaining: self.remaining(),
            });
        }
        self.brk = end;
        self.allocs += 1;
        Ok(base)
    }

    /// Allocates `len` bytes page-aligned (4 KiB).
    pub fn alloc_page_aligned(&mut self, len: u64) -> Result<Va, MemError> {
        self.alloc(len, 4096)
    }

    fn check(&self, addr: Va, len: u64) -> Result<(), MemError> {
        let end = addr.checked_add(len).ok_or(MemError::OutOfBounds {
            addr,
            len,
            capacity: self.capacity(),
        })?;
        if end > self.capacity() {
            return Err(MemError::OutOfBounds {
                addr,
                len,
                capacity: self.capacity(),
            });
        }
        Ok(())
    }

    /// Immutable view of `[addr, addr+len)`.
    pub fn slice(&self, addr: Va, len: u64) -> Result<&[u8], MemError> {
        self.check(addr, len)?;
        Ok(&self.mem[addr as usize..(addr + len) as usize])
    }

    /// Mutable view of `[addr, addr+len)`.
    ///
    /// Conservatively marks the whole range dirty — keep views as
    /// narrow as the write actually needs, or recycled spaces pay to
    /// re-zero bytes that were never touched.
    pub fn slice_mut(&mut self, addr: Va, len: u64) -> Result<&mut [u8], MemError> {
        self.check(addr, len)?;
        self.mark_dirty(addr, len);
        Ok(&mut self.mem[addr as usize..(addr + len) as usize])
    }

    /// Copies `data` into memory at `addr`.
    pub fn write(&mut self, addr: Va, data: &[u8]) -> Result<(), MemError> {
        self.slice_mut(addr, data.len() as u64)?
            .copy_from_slice(data);
        Ok(())
    }

    /// Reads `len` bytes starting at `addr` into a fresh vector.
    pub fn read(&self, addr: Va, len: u64) -> Result<Vec<u8>, MemError> {
        Ok(self.slice(addr, len)?.to_vec())
    }

    /// Copies `len` bytes within this address space (non-overlapping
    /// regions; overlapping copies are a protocol bug and panic in debug
    /// builds).
    pub fn copy_within(&mut self, src: Va, dst: Va, len: u64) -> Result<(), MemError> {
        self.check(src, len)?;
        self.check(dst, len)?;
        debug_assert!(
            src + len <= dst || dst + len <= src || src == dst,
            "overlapping copy_within"
        );
        self.mark_dirty(dst, len);
        self.mem
            .copy_within(src as usize..(src + len) as usize, dst as usize);
        Ok(())
    }

    /// Fills `[addr, addr+len)` with `byte`.
    pub fn fill(&mut self, addr: Va, len: u64, byte: u8) -> Result<(), MemError> {
        self.slice_mut(addr, len)?.fill(byte);
        Ok(())
    }
}

impl Drop for AddressSpace {
    /// Retires the backing buffer (with its dirty list) to the
    /// thread-local pool so the next same-capacity space can reuse the
    /// already faulted-in pages.
    fn drop(&mut self) {
        if self.mem.is_empty() {
            return;
        }
        let dirty_total: u64 = self
            .dirty
            .iter()
            .map(|w| u64::from(w.count_ones()))
            .sum::<u64>()
            * PAGE;
        if dirty_total > MAX_RECYCLE_DIRTY {
            return;
        }
        let mem = std::mem::take(&mut self.mem);
        let dirty = std::mem::take(&mut self.dirty);
        // try_with: thread teardown may have destroyed the pool.
        let _ = SPACE_POOL.try_with(|p| {
            let mut p = p.borrow_mut();
            if p.len() < MAX_POOLED_SPACES {
                p.push(Retired { mem, dirty });
            }
        });
    }
}

/// Copies bytes between two address spaces — the functional half of an
/// RDMA operation. `src` and `dst` may belong to different ranks.
pub fn copy_between(
    src: &AddressSpace,
    src_addr: Va,
    dst: &mut AddressSpace,
    dst_addr: Va,
    len: u64,
) -> Result<(), MemError> {
    let data = src.slice(src_addr, len)?;
    dst.slice_mut(dst_addr, len)?.copy_from_slice(data);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_respects_alignment() {
        let mut a = AddressSpace::new(1 << 20);
        let p = a.alloc(10, 1).unwrap();
        assert!(p >= 64, "null guard respected");
        let q = a.alloc(10, 4096).unwrap();
        assert_eq!(q % 4096, 0);
        assert!(q > p);
    }

    #[test]
    fn alloc_exhaustion_errors() {
        let mut a = AddressSpace::new(1024);
        assert!(a.alloc(512, 1).is_ok());
        let err = a.alloc(1024, 1).unwrap_err();
        assert!(matches!(err, MemError::OutOfMemory { .. }));
    }

    #[test]
    fn read_write_roundtrip() {
        let mut a = AddressSpace::new(4096);
        let p = a.alloc(16, 8).unwrap();
        a.write(p, &[1, 2, 3, 4]).unwrap();
        assert_eq!(a.read(p, 4).unwrap(), vec![1, 2, 3, 4]);
        // untouched memory is zero
        assert_eq!(a.read(p + 4, 4).unwrap(), vec![0; 4]);
    }

    #[test]
    fn out_of_bounds_access_rejected() {
        let a = AddressSpace::new(128);
        assert!(matches!(
            a.slice(120, 16).unwrap_err(),
            MemError::OutOfBounds { .. }
        ));
        // overflow-proof
        assert!(a.slice(u64::MAX - 4, 8).is_err());
    }

    #[test]
    fn copy_within_moves_bytes() {
        let mut a = AddressSpace::new(4096);
        let p = a.alloc(64, 8).unwrap();
        a.write(p, b"hello").unwrap();
        a.copy_within(p, p + 32, 5).unwrap();
        assert_eq!(a.read(p + 32, 5).unwrap(), b"hello");
    }

    #[test]
    fn copy_between_spaces() {
        let mut a = AddressSpace::new(4096);
        let mut b = AddressSpace::new(4096);
        let pa = a.alloc(8, 8).unwrap();
        let pb = b.alloc(8, 8).unwrap();
        a.write(pa, &[9; 8]).unwrap();
        copy_between(&a, pa, &mut b, pb, 8).unwrap();
        assert_eq!(b.read(pb, 8).unwrap(), vec![9; 8]);
    }

    #[test]
    fn fill_sets_bytes() {
        let mut a = AddressSpace::new(4096);
        let p = a.alloc(32, 8).unwrap();
        a.fill(p, 32, 0xAB).unwrap();
        assert_eq!(a.read(p, 32).unwrap(), vec![0xAB; 32]);
    }

    /// A recycled backing store must be indistinguishable from a fresh
    /// zeroed allocation, whatever the previous tenant wrote through
    /// (write, fill, copy_within, raw slice_mut).
    #[test]
    fn recycled_space_reads_all_zero() {
        let cap = 1u64 << 20;
        {
            let mut a = AddressSpace::new(cap);
            a.write(100, &[0xFF; 64]).unwrap();
            a.fill(8192, 4096, 0xEE).unwrap();
            a.copy_within(100, cap - 200, 64).unwrap();
            a.slice_mut(500_000, 10).unwrap().fill(0xDD);
        }
        let b = AddressSpace::new(cap);
        assert!(
            b.slice(0, cap).unwrap().iter().all(|&x| x == 0),
            "recycled space leaked previous contents"
        );
    }

    #[test]
    fn recycling_reuses_buffers_and_zeroes_only_dirty_pages() {
        // Distinctive capacity so parallel tests' pools don't interfere
        // with the counters we assert on.
        let cap = (1u64 << 20) + 12_288;
        AddressSpace::reset_pool_stats();
        for i in 0..5u64 {
            let mut a = AddressSpace::new(cap);
            a.write(4096 * i, &[1; 100]).unwrap();
        }
        let (allocs, reuses, zeroed) = AddressSpace::pool_stats();
        assert_eq!(allocs, 1, "same-capacity spaces should share a buffer");
        assert_eq!(reuses, 4);
        // Each reuse re-zeroed one dirty page, not the whole megabyte.
        assert_eq!(zeroed, 4 * PAGE);
    }

    #[test]
    fn scattered_writes_recycle_to_all_zero() {
        let cap = 64u64 * 1024 * 1024;
        {
            let mut a = AddressSpace::new(cap);
            // Scattered writes, including page- and word-boundary
            // straddles, across the whole space.
            for i in 0..500u64 {
                let addr = (i * 97_003) % (cap - 8);
                a.write(addr, &[0xA5; 8]).unwrap();
            }
        }
        let b = AddressSpace::new(cap);
        assert!(
            b.slice(0, cap).unwrap().iter().all(|&x| x == 0),
            "dirty bitmap missed a written page"
        );
    }
}
