//! Per-rank flat address spaces.
//!
//! Each simulated process owns an [`AddressSpace`]: a flat byte array
//! addressed by [`Va`] (virtual address). Every copy the schemes perform
//! — packing, RDMA placement, unpacking — really moves bytes here, so an
//! incorrect protocol produces observably wrong data, not just wrong
//! timings.
//!
//! Allocation is a bump allocator with alignment; benchmarks that model
//! "a fresh buffer every iteration" (Fig. 14) simply keep allocating.

use crate::error::MemError;

/// A virtual address inside one rank's [`AddressSpace`].
pub type Va = u64;

/// Flat byte memory for one simulated rank.
#[derive(Debug)]
pub struct AddressSpace {
    mem: Vec<u8>,
    brk: u64,
    allocs: u64,
}

impl AddressSpace {
    /// Creates an address space of `capacity` bytes, zero-initialized.
    ///
    /// Address 0 is reserved (never returned by [`Self::alloc`]) so that
    /// 0 can be used as a null address in protocol messages.
    pub fn new(capacity: u64) -> Self {
        Self {
            mem: vec![0u8; capacity as usize],
            brk: 64, // reserve a null guard region
            allocs: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.mem.len() as u64
    }

    /// Bytes still available to the allocator.
    pub fn remaining(&self) -> u64 {
        self.capacity() - self.brk
    }

    /// Number of allocations performed.
    pub fn alloc_count(&self) -> u64 {
        self.allocs
    }

    /// Allocates `len` bytes aligned to `align` (a power of two).
    pub fn alloc(&mut self, len: u64, align: u64) -> Result<Va, MemError> {
        debug_assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.brk + align - 1) & !(align - 1);
        let end = base.checked_add(len).ok_or(MemError::OutOfMemory {
            requested: len,
            remaining: self.remaining(),
        })?;
        if end > self.capacity() {
            return Err(MemError::OutOfMemory {
                requested: len,
                remaining: self.remaining(),
            });
        }
        self.brk = end;
        self.allocs += 1;
        Ok(base)
    }

    /// Allocates `len` bytes page-aligned (4 KiB).
    pub fn alloc_page_aligned(&mut self, len: u64) -> Result<Va, MemError> {
        self.alloc(len, 4096)
    }

    fn check(&self, addr: Va, len: u64) -> Result<(), MemError> {
        let end = addr.checked_add(len).ok_or(MemError::OutOfBounds {
            addr,
            len,
            capacity: self.capacity(),
        })?;
        if end > self.capacity() {
            return Err(MemError::OutOfBounds {
                addr,
                len,
                capacity: self.capacity(),
            });
        }
        Ok(())
    }

    /// Immutable view of `[addr, addr+len)`.
    pub fn slice(&self, addr: Va, len: u64) -> Result<&[u8], MemError> {
        self.check(addr, len)?;
        Ok(&self.mem[addr as usize..(addr + len) as usize])
    }

    /// Mutable view of `[addr, addr+len)`.
    pub fn slice_mut(&mut self, addr: Va, len: u64) -> Result<&mut [u8], MemError> {
        self.check(addr, len)?;
        Ok(&mut self.mem[addr as usize..(addr + len) as usize])
    }

    /// Copies `data` into memory at `addr`.
    pub fn write(&mut self, addr: Va, data: &[u8]) -> Result<(), MemError> {
        self.slice_mut(addr, data.len() as u64)?
            .copy_from_slice(data);
        Ok(())
    }

    /// Reads `len` bytes starting at `addr` into a fresh vector.
    pub fn read(&self, addr: Va, len: u64) -> Result<Vec<u8>, MemError> {
        Ok(self.slice(addr, len)?.to_vec())
    }

    /// Copies `len` bytes within this address space (non-overlapping
    /// regions; overlapping copies are a protocol bug and panic in debug
    /// builds).
    pub fn copy_within(&mut self, src: Va, dst: Va, len: u64) -> Result<(), MemError> {
        self.check(src, len)?;
        self.check(dst, len)?;
        debug_assert!(
            src + len <= dst || dst + len <= src || src == dst,
            "overlapping copy_within"
        );
        self.mem
            .copy_within(src as usize..(src + len) as usize, dst as usize);
        Ok(())
    }

    /// Fills `[addr, addr+len)` with `byte`.
    pub fn fill(&mut self, addr: Va, len: u64, byte: u8) -> Result<(), MemError> {
        self.slice_mut(addr, len)?.fill(byte);
        Ok(())
    }
}

/// Copies bytes between two address spaces — the functional half of an
/// RDMA operation. `src` and `dst` may belong to different ranks.
pub fn copy_between(
    src: &AddressSpace,
    src_addr: Va,
    dst: &mut AddressSpace,
    dst_addr: Va,
    len: u64,
) -> Result<(), MemError> {
    let data = src.slice(src_addr, len)?;
    dst.slice_mut(dst_addr, len)?.copy_from_slice(data);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_respects_alignment() {
        let mut a = AddressSpace::new(1 << 20);
        let p = a.alloc(10, 1).unwrap();
        assert!(p >= 64, "null guard respected");
        let q = a.alloc(10, 4096).unwrap();
        assert_eq!(q % 4096, 0);
        assert!(q > p);
    }

    #[test]
    fn alloc_exhaustion_errors() {
        let mut a = AddressSpace::new(1024);
        assert!(a.alloc(512, 1).is_ok());
        let err = a.alloc(1024, 1).unwrap_err();
        assert!(matches!(err, MemError::OutOfMemory { .. }));
    }

    #[test]
    fn read_write_roundtrip() {
        let mut a = AddressSpace::new(4096);
        let p = a.alloc(16, 8).unwrap();
        a.write(p, &[1, 2, 3, 4]).unwrap();
        assert_eq!(a.read(p, 4).unwrap(), vec![1, 2, 3, 4]);
        // untouched memory is zero
        assert_eq!(a.read(p + 4, 4).unwrap(), vec![0; 4]);
    }

    #[test]
    fn out_of_bounds_access_rejected() {
        let a = AddressSpace::new(128);
        assert!(matches!(
            a.slice(120, 16).unwrap_err(),
            MemError::OutOfBounds { .. }
        ));
        // overflow-proof
        assert!(a.slice(u64::MAX - 4, 8).is_err());
    }

    #[test]
    fn copy_within_moves_bytes() {
        let mut a = AddressSpace::new(4096);
        let p = a.alloc(64, 8).unwrap();
        a.write(p, b"hello").unwrap();
        a.copy_within(p, p + 32, 5).unwrap();
        assert_eq!(a.read(p + 32, 5).unwrap(), b"hello");
    }

    #[test]
    fn copy_between_spaces() {
        let mut a = AddressSpace::new(4096);
        let mut b = AddressSpace::new(4096);
        let pa = a.alloc(8, 8).unwrap();
        let pb = b.alloc(8, 8).unwrap();
        a.write(pa, &[9; 8]).unwrap();
        copy_between(&a, pa, &mut b, pb, 8).unwrap();
        assert_eq!(b.read(pb, 8).unwrap(), vec![9; 8]);
    }

    #[test]
    fn fill_sets_bytes() {
        let mut a = AddressSpace::new(4096);
        let p = a.alloc(32, 8).unwrap();
        a.fill(p, 32, 0xAB).unwrap();
        assert_eq!(a.read(p, 32).unwrap(), vec![0xAB; 32]);
    }
}
