//! Address-space tiers: which memory a virtual address lives in.
//!
//! The simulator's per-rank [`crate::AddressSpace`] is one flat byte
//! range; the device tier (TEMPI's GPU memory, arXiv:2012.14363) is
//! modelled as *ranges of that space marked device-resident* rather
//! than a second backing store — bytes still move for correctness
//! checking, but the cost model routes transfers touching a marked
//! range through DMA bandwidths and staging pipelines instead of the
//! host's element-wise copy.

use crate::addr::Va;

/// The memory tier a virtual address belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemTier {
    /// Ordinary host memory (the default for every address).
    Host,
    /// Device-resident memory: CPU pack/unpack cannot touch it
    /// directly; data crosses through DMA.
    Device,
}

/// Sorted, non-overlapping set of device-resident ranges in one
/// rank's address space. Lookup is a binary search; the set is tiny
/// (one entry per device allocation), so no paging is needed.
#[derive(Debug, Clone, Default)]
pub struct TierMap {
    /// `(start, len)` ranges, sorted by start, coalesced on insert.
    device: Vec<(Va, u64)>,
}

impl TierMap {
    /// An empty map: everything is host memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks `[addr, addr+len)` device-resident. Overlapping or
    /// adjacent ranges coalesce.
    pub fn mark_device(&mut self, addr: Va, len: u64) {
        if len == 0 {
            return;
        }
        let (mut start, mut end) = (addr, addr + len);
        // Absorb every existing range touching [start, end).
        let i = self.device.partition_point(|&(s, l)| s + l < start);
        while i < self.device.len() && self.device[i].0 <= end {
            let (s, l) = self.device.remove(i);
            start = start.min(s);
            end = end.max(s + l);
        }
        self.device.insert(i, (start, end - start));
    }

    /// The tier of a single address.
    pub fn tier_of(&self, addr: Va) -> MemTier {
        if self.is_device(addr) {
            MemTier::Device
        } else {
            MemTier::Host
        }
    }

    /// True when `addr` falls inside a device range.
    pub fn is_device(&self, addr: Va) -> bool {
        let i = self.device.partition_point(|&(s, _)| s <= addr);
        i > 0 && {
            let (s, l) = self.device[i - 1];
            addr < s + l
        }
    }

    /// Total bytes currently marked device-resident.
    pub fn device_bytes(&self) -> u64 {
        self.device.iter().map(|&(_, l)| l).sum()
    }

    /// True when no range is marked (the overwhelmingly common case —
    /// checked first on every hot-path cost decision).
    pub fn is_empty(&self) -> bool {
        self.device.is_empty()
    }

    /// Unmarks everything.
    pub fn clear(&mut self) {
        self.device.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_map_is_all_host() {
        let m = TierMap::new();
        assert!(m.is_empty());
        assert_eq!(m.tier_of(0), MemTier::Host);
        assert_eq!(m.tier_of(u64::MAX - 1), MemTier::Host);
        assert_eq!(m.device_bytes(), 0);
    }

    #[test]
    fn marked_range_is_device_with_exclusive_end() {
        let mut m = TierMap::new();
        m.mark_device(4096, 8192);
        assert!(!m.is_device(4095));
        assert!(m.is_device(4096));
        assert!(m.is_device(12287));
        assert!(!m.is_device(12288));
        assert_eq!(m.tier_of(8000), MemTier::Device);
        assert_eq!(m.device_bytes(), 8192);
    }

    #[test]
    fn ranges_coalesce_and_clear() {
        let mut m = TierMap::new();
        m.mark_device(0, 100);
        m.mark_device(100, 100); // adjacent
        m.mark_device(50, 200); // overlapping
        m.mark_device(1000, 10);
        assert_eq!(m.device_bytes(), 250 + 10);
        assert!(m.is_device(249));
        assert!(!m.is_device(250));
        assert!(m.is_device(1005));
        m.clear();
        assert!(m.is_empty());
        assert!(!m.is_device(0));
    }

    #[test]
    fn disjoint_marks_stay_sorted() {
        let mut m = TierMap::new();
        m.mark_device(5000, 10);
        m.mark_device(100, 10);
        m.mark_device(3000, 10);
        for a in [100, 3000, 5000] {
            assert!(m.is_device(a));
            assert!(m.is_device(a + 9));
            assert!(!m.is_device(a + 10));
        }
        assert!(!m.is_device(2000));
        assert_eq!(m.device_bytes(), 30);
    }

    #[test]
    fn zero_length_mark_is_a_no_op() {
        let mut m = TierMap::new();
        m.mark_device(64, 0);
        assert!(m.is_empty());
    }
}
