//! Error types for the memory subsystem.

use crate::addr::Va;
use std::fmt;

/// Errors raised by address-space and registration operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// An access `[addr, addr+len)` fell outside the address space.
    OutOfBounds {
        /// Start of the faulting access.
        addr: Va,
        /// Length of the faulting access.
        len: u64,
        /// Size of the address space.
        capacity: u64,
    },
    /// The bump allocator ran out of space.
    OutOfMemory {
        /// Requested allocation size.
        requested: u64,
        /// Bytes remaining in the address space.
        remaining: u64,
    },
    /// A key did not name a live registration.
    BadKey {
        /// The offending key value.
        key: u32,
    },
    /// The key was live but the access was outside its region — the
    /// simulated analogue of a protection fault on the HCA.
    ProtectionFault {
        /// Key used for the access.
        key: u32,
        /// Faulting address.
        addr: Va,
        /// Faulting length.
        len: u64,
    },
    /// Attempted to deregister a region that still has users.
    RegionInUse {
        /// Key of the busy region.
        key: u32,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfBounds {
                addr,
                len,
                capacity,
            } => write!(
                f,
                "access [{addr:#x}, +{len}) out of bounds (capacity {capacity:#x})"
            ),
            MemError::OutOfMemory {
                requested,
                remaining,
            } => {
                write!(
                    f,
                    "out of memory: requested {requested}, remaining {remaining}"
                )
            }
            MemError::BadKey { key } => write!(f, "stale or invalid memory key {key:#x}"),
            MemError::ProtectionFault { key, addr, len } => write!(
                f,
                "protection fault: key {key:#x} does not cover [{addr:#x}, +{len})"
            ),
            MemError::RegionInUse { key } => write!(f, "region {key:#x} still in use"),
        }
    }
}

impl std::error::Error for MemError {}
