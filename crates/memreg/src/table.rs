//! Registered memory regions and protection keys.
//!
//! Mirrors verbs memory-region (MR) semantics: registering `[addr, len)`
//! yields a local key and a remote key; every HCA access is validated
//! against a live key covering the accessed range. Keys are never reused,
//! so a stale key is always detected ([`MemError::BadKey`]) — the
//! simulated analogue of a remote access error completion.

use crate::addr::Va;
use crate::error::MemError;
use std::collections::HashMap;

/// Handle to a live memory region (its local key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MrHandle(pub u32);

/// A registered memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Registration {
    /// Start of the registered range.
    pub addr: Va,
    /// Length of the registered range.
    pub len: u64,
    /// Local protection key.
    pub lkey: u32,
    /// Remote protection key (what a peer must present for RDMA).
    pub rkey: u32,
}

impl Registration {
    /// True when `[addr, addr+len)` lies inside this region.
    pub fn covers(&self, addr: Va, len: u64) -> bool {
        addr >= self.addr
            && addr
                .checked_add(len)
                .is_some_and(|end| end <= self.addr + self.len)
    }
}

/// Per-rank table of live registrations.
#[derive(Debug, Default)]
pub struct RegTable {
    live: HashMap<u32, Registration>,
    next_key: u32,
    /// Lifetime counters, reported by the benchmarks.
    reg_ops: u64,
    dereg_ops: u64,
    bytes_registered: u64,
}

impl RegTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self {
            next_key: 1, // key 0 reserved as "no key"
            ..Self::default()
        }
    }

    /// Returns the table to its just-constructed state, keeping map
    /// capacity: no live registrations, key counter back at 1, lifetime
    /// counters zeroed. Used by world recycling; key assignment after a
    /// reset is bit-identical to a fresh table's.
    pub fn reset(&mut self) {
        self.live.clear();
        self.next_key = 1;
        self.reg_ops = 0;
        self.dereg_ops = 0;
        self.bytes_registered = 0;
    }

    /// Registers `[addr, addr+len)` and returns the region descriptor.
    /// Overlapping registrations are permitted, as in verbs.
    pub fn register(&mut self, addr: Va, len: u64) -> Registration {
        let key = self.next_key;
        self.next_key += 1;
        let reg = Registration {
            addr,
            len,
            lkey: key,
            rkey: key,
        };
        self.live.insert(key, reg);
        self.reg_ops += 1;
        self.bytes_registered += len;
        reg
    }

    /// Deregisters the region named by `handle`.
    pub fn deregister(&mut self, handle: MrHandle) -> Result<Registration, MemError> {
        self.live
            .remove(&handle.0)
            .ok_or(MemError::BadKey { key: handle.0 })
            .inspect(|_| self.dereg_ops += 1)
    }

    /// Looks up a live registration by key.
    pub fn get(&self, key: u32) -> Option<&Registration> {
        self.live.get(&key)
    }

    /// Validates an access of `[addr, addr+len)` under `key`.
    pub fn check(&self, key: u32, addr: Va, len: u64) -> Result<(), MemError> {
        let reg = self.live.get(&key).ok_or(MemError::BadKey { key })?;
        if reg.covers(addr, len) {
            Ok(())
        } else {
            Err(MemError::ProtectionFault { key, addr, len })
        }
    }

    /// Finds any live registration fully covering `[addr, addr+len)`.
    pub fn covering(&self, addr: Va, len: u64) -> Option<&Registration> {
        // Deterministic choice: smallest key wins.
        self.live
            .iter()
            .filter(|(_, r)| r.covers(addr, len))
            .min_by_key(|(k, _)| **k)
            .map(|(_, r)| r)
    }

    /// Number of live registrations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Total bytes currently pinned.
    pub fn live_bytes(&self) -> u64 {
        self.live.values().map(|r| r.len).sum()
    }

    /// Lifetime (register, deregister) operation counts.
    pub fn op_counts(&self) -> (u64, u64) {
        (self.reg_ops, self.dereg_ops)
    }

    /// Lifetime bytes passed to register calls.
    pub fn bytes_registered(&self) -> u64 {
        self.bytes_registered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_check() {
        let mut t = RegTable::new();
        let r = t.register(0x1000, 0x100);
        assert!(t.check(r.rkey, 0x1000, 0x100).is_ok());
        assert!(t.check(r.rkey, 0x10ff, 1).is_ok());
        assert!(matches!(
            t.check(r.rkey, 0x10ff, 2).unwrap_err(),
            MemError::ProtectionFault { .. }
        ));
    }

    #[test]
    fn stale_key_detected() {
        let mut t = RegTable::new();
        let r = t.register(0, 64);
        t.deregister(MrHandle(r.lkey)).unwrap();
        assert!(matches!(
            t.check(r.rkey, 0, 1).unwrap_err(),
            MemError::BadKey { .. }
        ));
        // double free also detected
        assert!(t.deregister(MrHandle(r.lkey)).is_err());
    }

    #[test]
    fn keys_never_reused() {
        let mut t = RegTable::new();
        let a = t.register(0, 16);
        t.deregister(MrHandle(a.lkey)).unwrap();
        let b = t.register(0, 16);
        assert_ne!(a.lkey, b.lkey);
    }

    #[test]
    fn covering_finds_enclosing_region() {
        let mut t = RegTable::new();
        t.register(0x1000, 0x1000);
        let big = t.register(0, 0x10000);
        let found = t.covering(0x5000, 0x100).unwrap();
        assert_eq!(found.lkey, big.lkey);
        assert!(t.covering(0x20000, 1).is_none());
    }

    #[test]
    fn accounting_counters() {
        let mut t = RegTable::new();
        let a = t.register(0, 100);
        t.register(200, 50);
        assert_eq!(t.live_count(), 2);
        assert_eq!(t.live_bytes(), 150);
        assert_eq!(t.bytes_registered(), 150);
        t.deregister(MrHandle(a.lkey)).unwrap();
        assert_eq!(t.live_count(), 1);
        assert_eq!(t.op_counts(), (2, 1));
    }

    #[test]
    fn covers_handles_overflow() {
        let r = Registration {
            addr: 0,
            len: 10,
            lkey: 1,
            rkey: 1,
        };
        assert!(!r.covers(u64::MAX - 1, 5));
    }

    #[test]
    fn zero_length_check_inside_region() {
        let mut t = RegTable::new();
        let r = t.register(0x1000, 0x100);
        assert!(t.check(r.rkey, 0x1000, 0).is_ok());
    }
}
