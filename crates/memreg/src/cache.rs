//! Pin-down cache (Tezuka et al., ref [12]).
//!
//! Registrations are cached after use instead of being torn down, so an
//! application that reuses communication buffers pays the registration
//! cost once. The paper's §6 argues this is the common case ("many
//! applications use only several buffers for all communication"), while
//! §8.6 measures the worst case with the cache defeated — both modes are
//! supported here.
//!
//! The cache holds *whole-region* entries; an acquire hits when a cached
//! live region fully covers the requested range. Eviction is LRU over
//! entries with no active users, bounded by a pinned-bytes capacity.

use crate::addr::Va;
use crate::cost::RegCostModel;
use crate::error::MemError;
use crate::table::{MrHandle, RegTable, Registration};
use ibdt_simcore::time::Time;

/// Result of [`PindownCache::acquire`].
#[derive(Debug, Clone, Copy)]
pub struct Acquire {
    /// The registration to use for the access.
    pub reg: Registration,
    /// Host time charged for registration work (0 on a hit).
    pub cost_ns: Time,
    /// True when served from cache.
    pub hit: bool,
}

#[derive(Debug)]
struct Entry {
    reg: Registration,
    refs: u32,
    last_use: u64,
}

/// An LRU pin-down cache over a [`RegTable`].
#[derive(Debug)]
pub struct PindownCache {
    entries: Vec<Entry>,
    capacity_bytes: u64,
    enabled: bool,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PindownCache {
    /// Creates a cache bounded to `capacity_bytes` of idle pinned memory.
    pub fn new(capacity_bytes: u64) -> Self {
        Self {
            entries: Vec::new(),
            capacity_bytes,
            enabled: true,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Creates a disabled cache: every acquire registers on the fly and
    /// every release deregisters immediately. Used by the worst-case
    /// buffer-usage experiment (Fig. 14).
    pub fn disabled() -> Self {
        let mut c = Self::new(0);
        c.enabled = false;
        c
    }

    /// True when caching is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Empties the cache and zeroes its counters, keeping the entry
    /// list's capacity and the configured byte bound. The caller is
    /// responsible for the underlying [`RegTable`] — a recycled world
    /// resets that table wholesale, so entries are not deregistered
    /// one by one here.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.tick = 0;
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
    }

    /// Acquires a registration covering `[addr, addr+len)`, registering
    /// through `table` on a miss. The returned cost is the host time to
    /// charge (registration on a miss plus any eviction deregistrations).
    pub fn acquire(
        &mut self,
        table: &mut RegTable,
        model: &RegCostModel,
        addr: Va,
        len: u64,
    ) -> Acquire {
        self.tick += 1;
        if self.enabled {
            if let Some(e) = self
                .entries
                .iter_mut()
                .filter(|e| e.reg.covers(addr, len))
                .min_by_key(|e| e.reg.lkey)
            {
                e.refs += 1;
                e.last_use = self.tick;
                self.hits += 1;
                return Acquire {
                    reg: e.reg,
                    cost_ns: 0,
                    hit: true,
                };
            }
        }
        self.misses += 1;
        let reg = table.register(addr, len);
        let mut cost = model.reg_cost(addr, len);
        if self.enabled {
            self.entries.push(Entry {
                reg,
                refs: 1,
                last_use: self.tick,
            });
            cost += self.evict_excess(table, model);
        }
        Acquire {
            reg,
            cost_ns: cost,
            hit: false,
        }
    }

    /// Releases a previously acquired registration. Returns the host time
    /// to charge (non-zero only when the cache is disabled, which
    /// deregisters immediately).
    pub fn release(
        &mut self,
        table: &mut RegTable,
        model: &RegCostModel,
        lkey: u32,
    ) -> Result<Time, MemError> {
        if !self.enabled {
            let reg = table.deregister(MrHandle(lkey))?;
            return Ok(model.dereg_cost(reg.addr, reg.len));
        }
        let e = self
            .entries
            .iter_mut()
            .find(|e| e.reg.lkey == lkey)
            .ok_or(MemError::BadKey { key: lkey })?;
        if e.refs == 0 {
            return Err(MemError::BadKey { key: lkey });
        }
        e.refs -= 1;
        Ok(0)
    }

    /// Forcibly evicts the cached entry holding `lkey`, deregistering
    /// it even while in use. This models the §5.4.2 race where the
    /// pin-down cache reclaims a region an in-flight zero-copy scheme
    /// still references: the key dies in the table, so a remote access
    /// against it fails its rkey check, and a later [`release`] of the
    /// key reports [`MemError::BadKey`] (which the holder must treat as
    /// "already evicted"). Returns true when an entry was evicted.
    ///
    /// [`release`]: PindownCache::release
    pub fn force_evict(&mut self, table: &mut RegTable, lkey: u32) -> bool {
        let Some(pos) = self.entries.iter().position(|e| e.reg.lkey == lkey) else {
            return false;
        };
        let victim = self.entries.swap_remove(pos);
        let _ = table.deregister(MrHandle(victim.reg.lkey));
        self.evictions += 1;
        true
    }

    /// Evicts idle LRU entries until idle pinned bytes fit the capacity.
    fn evict_excess(&mut self, table: &mut RegTable, model: &RegCostModel) -> Time {
        let mut cost = 0;
        loop {
            let idle_bytes: u64 = self
                .entries
                .iter()
                .filter(|e| e.refs == 0)
                .map(|e| e.reg.len)
                .sum();
            if idle_bytes <= self.capacity_bytes {
                return cost;
            }
            let victim_idx = self
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.refs == 0)
                .min_by_key(|(_, e)| e.last_use)
                .map(|(i, _)| i)
                .expect("idle_bytes > 0 implies an idle entry exists");
            let victim = self.entries.swap_remove(victim_idx);
            // The table entry must be live; a missing key here is a cache
            // invariant violation.
            table
                .deregister(MrHandle(victim.reg.lkey))
                .expect("cached registration vanished from table");
            cost += model.dereg_cost(victim.reg.addr, victim.reg.len);
            self.evictions += 1;
        }
    }

    /// Flushes all idle entries (deregistering them); returns total cost.
    pub fn flush(&mut self, table: &mut RegTable, model: &RegCostModel) -> Time {
        let mut cost = 0;
        let mut i = 0;
        while i < self.entries.len() {
            if self.entries[i].refs == 0 {
                let victim = self.entries.swap_remove(i);
                table
                    .deregister(MrHandle(victim.reg.lkey))
                    .expect("cached registration vanished from table");
                cost += model.dereg_cost(victim.reg.addr, victim.reg.len);
            } else {
                i += 1;
            }
        }
        cost
    }

    /// (hits, misses, evictions) counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    /// Number of cached entries (idle or in use).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (RegTable, RegCostModel, PindownCache) {
        (
            RegTable::new(),
            RegCostModel::default(),
            PindownCache::new(1 << 20),
        )
    }

    #[test]
    fn first_acquire_misses_then_hits() {
        let (mut t, m, mut c) = fixture();
        let a1 = c.acquire(&mut t, &m, 0x1000, 256);
        assert!(!a1.hit);
        assert!(a1.cost_ns > 0);
        c.release(&mut t, &m, a1.reg.lkey).unwrap();
        let a2 = c.acquire(&mut t, &m, 0x1000, 256);
        assert!(a2.hit);
        assert_eq!(a2.cost_ns, 0);
        assert_eq!(a2.reg.lkey, a1.reg.lkey);
        assert_eq!(c.stats(), (1, 1, 0));
    }

    #[test]
    fn sub_range_hits_covering_entry() {
        let (mut t, m, mut c) = fixture();
        let a = c.acquire(&mut t, &m, 0, 4096);
        c.release(&mut t, &m, a.reg.lkey).unwrap();
        let b = c.acquire(&mut t, &m, 128, 64);
        assert!(b.hit);
    }

    #[test]
    fn capacity_evicts_lru() {
        let mut t = RegTable::new();
        let m = RegCostModel::default();
        let mut c = PindownCache::new(1000);
        let a = c.acquire(&mut t, &m, 0, 600);
        c.release(&mut t, &m, a.reg.lkey).unwrap();
        let b = c.acquire(&mut t, &m, 10_000, 600);
        c.release(&mut t, &m, b.reg.lkey).unwrap();
        // idle = 1200 > 1000: entry `a` (older) must have been evicted
        // when b was released? No — eviction happens on insert; at b's
        // insert, a was idle (600) + b in use (not idle) = fits. Trigger
        // another insert to force eviction of the idle pair.
        let d = c.acquire(&mut t, &m, 20_000, 600);
        assert!(!d.hit);
        let (_, _, ev) = c.stats();
        assert!(ev >= 1, "expected at least one eviction");
        // Evicted entry is no longer live in the table.
        assert!(t.get(a.reg.lkey).is_none());
        // b still cached (more recently used than a).
        assert!(t.get(b.reg.lkey).is_some());
    }

    #[test]
    fn in_use_entries_are_never_evicted() {
        let mut t = RegTable::new();
        let m = RegCostModel::default();
        let mut c = PindownCache::new(10);
        let a = c.acquire(&mut t, &m, 0, 1000); // in use, over capacity
        let b = c.acquire(&mut t, &m, 5000, 1000);
        assert!(t.get(a.reg.lkey).is_some());
        assert!(t.get(b.reg.lkey).is_some());
        c.release(&mut t, &m, a.reg.lkey).unwrap();
        c.release(&mut t, &m, b.reg.lkey).unwrap();
        // Entries linger until the next insert triggers eviction.
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn disabled_cache_registers_every_time() {
        let mut t = RegTable::new();
        let m = RegCostModel::default();
        let mut c = PindownCache::disabled();
        let a = c.acquire(&mut t, &m, 0, 4096);
        assert!(!a.hit);
        let rel = c.release(&mut t, &m, a.reg.lkey).unwrap();
        assert!(rel > 0, "disabled cache pays dereg immediately");
        assert!(t.get(a.reg.lkey).is_none());
        let b = c.acquire(&mut t, &m, 0, 4096);
        assert!(!b.hit);
        c.release(&mut t, &m, b.reg.lkey).unwrap();
        assert_eq!(t.op_counts(), (2, 2));
    }

    #[test]
    fn release_unknown_key_errors() {
        let (mut t, m, mut c) = fixture();
        assert!(c.release(&mut t, &m, 42).is_err());
    }

    #[test]
    fn flush_drops_idle_keeps_busy() {
        let (mut t, m, mut c) = fixture();
        let a = c.acquire(&mut t, &m, 0, 100);
        let b = c.acquire(&mut t, &m, 1000, 100);
        c.release(&mut t, &m, a.reg.lkey).unwrap();
        let cost = c.flush(&mut t, &m);
        assert!(cost > 0);
        assert_eq!(c.len(), 1);
        assert!(t.get(a.reg.lkey).is_none());
        assert!(t.get(b.reg.lkey).is_some());
    }
}
