//! Registration cost model.
//!
//! Registration pins pages and installs translations on the HCA; its cost
//! is well modelled as `base + per_page * pages` (ref [12], [32]). The
//! page count is computed from the *page span* of the region — a 4-byte
//! buffer straddling a page boundary pins two pages.

use crate::addr::Va;
use ibdt_simcore::time::Time;

/// Cost model for memory registration and deregistration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegCostModel {
    /// Page size in bytes (power of two).
    pub page_size: u64,
    /// Fixed cost of one registration call, ns.
    pub reg_base_ns: Time,
    /// Additional cost per pinned page, ns.
    pub reg_per_page_ns: Time,
    /// Fixed cost of one deregistration call, ns.
    pub dereg_base_ns: Time,
    /// Additional deregistration cost per page, ns.
    pub dereg_per_page_ns: Time,
}

impl Default for RegCostModel {
    /// Defaults calibrated to the paper's testbed (§8.1): registration of
    /// a small buffer ≈ 22 µs, growing by ≈ 250 ns per page;
    /// deregistration is cheaper (≈ 15 µs base).
    fn default() -> Self {
        Self {
            page_size: 4096,
            reg_base_ns: 22_000,
            reg_per_page_ns: 250,
            dereg_base_ns: 15_000,
            dereg_per_page_ns: 50,
        }
    }
}

impl RegCostModel {
    /// Number of pages spanned by `[addr, addr+len)`. Zero-length regions
    /// span zero pages.
    pub fn pages(&self, addr: Va, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        let first = addr / self.page_size;
        let last = (addr + len - 1) / self.page_size;
        last - first + 1
    }

    /// Cost of registering `[addr, addr+len)`.
    pub fn reg_cost(&self, addr: Va, len: u64) -> Time {
        self.reg_base_ns + self.reg_per_page_ns * self.pages(addr, len)
    }

    /// Cost of deregistering `[addr, addr+len)`.
    pub fn dereg_cost(&self, addr: Va, len: u64) -> Time {
        self.dereg_base_ns + self.dereg_per_page_ns * self.pages(addr, len)
    }

    /// Combined register + later deregister cost; the quantity OGR's
    /// grouping decision minimizes.
    pub fn round_trip_cost(&self, addr: Va, len: u64) -> Time {
        self.reg_cost(addr, len) + self.dereg_cost(addr, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> RegCostModel {
        RegCostModel {
            page_size: 4096,
            reg_base_ns: 1000,
            reg_per_page_ns: 10,
            dereg_base_ns: 500,
            dereg_per_page_ns: 5,
        }
    }

    #[test]
    fn page_count_aligned() {
        let m = model();
        assert_eq!(m.pages(0, 4096), 1);
        assert_eq!(m.pages(0, 4097), 2);
        assert_eq!(m.pages(0, 8192), 2);
    }

    #[test]
    fn page_count_straddles_boundary() {
        let m = model();
        // 4 bytes across a page boundary pin 2 pages.
        assert_eq!(m.pages(4094, 4), 2);
        assert_eq!(m.pages(4095, 1), 1);
        assert_eq!(m.pages(4096, 1), 1);
    }

    #[test]
    fn zero_length_spans_no_pages() {
        let m = model();
        assert_eq!(m.pages(123, 0), 0);
        assert_eq!(m.reg_cost(123, 0), 1000);
    }

    #[test]
    fn costs_are_affine_in_pages() {
        let m = model();
        assert_eq!(m.reg_cost(0, 3 * 4096), 1000 + 30);
        assert_eq!(m.dereg_cost(0, 3 * 4096), 500 + 15);
        assert_eq!(m.round_trip_cost(0, 3 * 4096), 1545);
    }

    #[test]
    fn default_model_sane() {
        let d = RegCostModel::default();
        assert!(d.reg_base_ns > d.dereg_base_ns);
        assert!(d.page_size.is_power_of_two());
    }
}
