//! Randomized tests of the memory subsystem: OGR planning invariants
//! and pin-down cache consistency, seeded via [`ibdt_testkit`].

use ibdt_memreg::{ogr, PindownCache, RegCostModel, RegTable};
use ibdt_testkit::{cases, Rng};

fn random_blocks(rng: &mut Rng) -> Vec<(u64, u64)> {
    let n = rng.range_usize(0, 40);
    (0..n)
        .map(|_| (rng.range_u64(0, 1 << 24), rng.range_u64(0, 1 << 16)))
        .collect()
}

fn random_model(rng: &mut Rng) -> RegCostModel {
    RegCostModel {
        page_size: 1 << (10 + rng.range_u64(1, 4)),
        reg_base_ns: rng.range_u64(1, 50_000),
        reg_per_page_ns: rng.range_u64(0, 2_000),
        dereg_base_ns: rng.range_u64(1, 30_000),
        dereg_per_page_ns: rng.range_u64(0, 500),
    }
}

#[test]
fn ogr_covers_every_block() {
    cases(0x3E60_0001, 512, |rng| {
        let blocks = random_blocks(rng);
        let model = random_model(rng);
        let plan = ogr::plan(&blocks, &model);
        for &(a, l) in &blocks {
            if l == 0 {
                continue;
            }
            assert!(
                plan.regions
                    .iter()
                    .any(|&(ra, rl)| a >= ra && a + l <= ra + rl),
                "block ({a}, {l}) uncovered by {:?}",
                plan.regions
            );
        }
    });
}

#[test]
fn ogr_regions_sorted_disjoint() {
    cases(0x3E60_0002, 512, |rng| {
        let blocks = random_blocks(rng);
        let model = random_model(rng);
        let plan = ogr::plan(&blocks, &model);
        for w in plan.regions.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "regions overlap or unsorted");
        }
        for &(_, l) in &plan.regions {
            assert!(l > 0, "empty region in plan");
        }
    });
}

#[test]
fn ogr_never_loses_to_baselines() {
    cases(0x3E60_0003, 512, |rng| {
        let blocks = random_blocks(rng);
        let model = random_model(rng);
        let o = ogr::plan(&blocks, &model).round_trip_ns();
        let per = ogr::plan_per_block(&blocks, &model).round_trip_ns();
        let whole = ogr::plan_whole_extent(&blocks, &model).round_trip_ns();
        assert!(o <= per, "OGR {o} worse than per-block {per}");
        assert!(o <= whole, "OGR {o} worse than whole-extent {whole}");
    });
}

#[test]
fn ogr_cost_fields_consistent() {
    cases(0x3E60_0004, 512, |rng| {
        let blocks = random_blocks(rng);
        let model = random_model(rng);
        let plan = ogr::plan(&blocks, &model);
        let reg: u64 = plan
            .regions
            .iter()
            .map(|&(a, l)| model.reg_cost(a, l))
            .sum();
        let dereg: u64 = plan
            .regions
            .iter()
            .map(|&(a, l)| model.dereg_cost(a, l))
            .sum();
        assert_eq!(plan.reg_cost_ns, reg);
        assert_eq!(plan.dereg_cost_ns, dereg);
        assert_eq!(plan.round_trip_ns(), reg + dereg);
    });
}

#[test]
fn pindown_cache_acquire_release_sequences() {
    cases(0x3E60_0005, 512, |rng| {
        // Random acquire/release traffic over 8 buffer slots must keep
        // the table and cache consistent, with hits only after misses.
        let model = RegCostModel::default();
        let mut table = RegTable::new();
        let mut cache = PindownCache::new(16 * 4096);
        let mut held: Vec<u32> = Vec::new();
        let nops = rng.range_usize(1, 60);
        for _ in 0..nops {
            let slot = rng.range_u64(0, 8);
            let len = rng.range_u64(1, 5000);
            if rng.chance(0.5) {
                if let Some(lkey) = held.pop() {
                    assert!(cache.release(&mut table, &model, lkey).is_ok());
                }
            }
            let a = cache.acquire(&mut table, &model, slot * 100_000, len);
            // The registration handed out must be live and covering.
            assert!(table.check(a.reg.lkey, slot * 100_000, len).is_ok());
            held.push(a.reg.lkey);
        }
        // Everything still held must be live.
        for lkey in held {
            assert!(table.get(lkey).is_some());
            assert!(cache.release(&mut table, &model, lkey).is_ok());
        }
    });
}
