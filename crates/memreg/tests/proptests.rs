//! Property-based tests for the memory subsystem: OGR planning
//! invariants and pin-down cache consistency.

use ibdt_memreg::{ogr, PindownCache, RegCostModel, RegTable};
use proptest::prelude::*;

fn blocks_strategy() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..1 << 24, 0u64..1 << 16), 0..40)
}

fn model_strategy() -> impl Strategy<Value = RegCostModel> {
    (1u32..4, 1u64..50_000, 0u64..2_000, 1u64..30_000, 0u64..500).prop_map(
        |(pshift, rb, rp, db, dp)| RegCostModel {
            page_size: 1 << (10 + pshift),
            reg_base_ns: rb,
            reg_per_page_ns: rp,
            dereg_base_ns: db,
            dereg_per_page_ns: dp,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn ogr_covers_every_block(blocks in blocks_strategy(), model in model_strategy()) {
        let plan = ogr::plan(&blocks, &model);
        for &(a, l) in &blocks {
            if l == 0 {
                continue;
            }
            prop_assert!(
                plan.regions.iter().any(|&(ra, rl)| a >= ra && a + l <= ra + rl),
                "block ({a}, {l}) uncovered by {:?}", plan.regions
            );
        }
    }

    #[test]
    fn ogr_regions_sorted_disjoint(blocks in blocks_strategy(), model in model_strategy()) {
        let plan = ogr::plan(&blocks, &model);
        for w in plan.regions.windows(2) {
            prop_assert!(w[0].0 + w[0].1 <= w[1].0, "regions overlap or unsorted");
        }
        for &(_, l) in &plan.regions {
            prop_assert!(l > 0, "empty region in plan");
        }
    }

    #[test]
    fn ogr_never_loses_to_baselines(blocks in blocks_strategy(), model in model_strategy()) {
        let o = ogr::plan(&blocks, &model).round_trip_ns();
        let per = ogr::plan_per_block(&blocks, &model).round_trip_ns();
        let whole = ogr::plan_whole_extent(&blocks, &model).round_trip_ns();
        prop_assert!(o <= per, "OGR {o} worse than per-block {per}");
        prop_assert!(o <= whole, "OGR {o} worse than whole-extent {whole}");
    }

    #[test]
    fn ogr_cost_fields_consistent(blocks in blocks_strategy(), model in model_strategy()) {
        let plan = ogr::plan(&blocks, &model);
        let reg: u64 = plan.regions.iter().map(|&(a, l)| model.reg_cost(a, l)).sum();
        let dereg: u64 = plan.regions.iter().map(|&(a, l)| model.dereg_cost(a, l)).sum();
        prop_assert_eq!(plan.reg_cost_ns, reg);
        prop_assert_eq!(plan.dereg_cost_ns, dereg);
        prop_assert_eq!(plan.round_trip_ns(), reg + dereg);
    }

    #[test]
    fn pindown_cache_acquire_release_sequences(
        ops in proptest::collection::vec((0u64..8, 1u64..5000, any::<bool>()), 1..60),
    ) {
        // Random acquire/release traffic over 8 buffer slots must keep
        // the table and cache consistent, with hits only after misses.
        let model = RegCostModel::default();
        let mut table = RegTable::new();
        let mut cache = PindownCache::new(16 * 4096);
        let mut held: Vec<u32> = Vec::new();
        for (slot, len, release_first) in ops {
            if release_first {
                if let Some(lkey) = held.pop() {
                    prop_assert!(cache.release(&mut table, &model, lkey).is_ok());
                }
            }
            let a = cache.acquire(&mut table, &model, slot * 100_000, len);
            // The registration handed out must be live and covering.
            prop_assert!(table.check(a.reg.lkey, slot * 100_000, len).is_ok());
            held.push(a.reg.lkey);
        }
        // Everything still held must be live.
        for lkey in held {
            prop_assert!(table.get(lkey).is_some());
            prop_assert!(cache.release(&mut table, &model, lkey).is_ok());
        }
    }
}
