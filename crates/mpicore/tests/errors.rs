//! Error-path tests: misuse that a real MPI library would flag is a
//! loud panic in the simulator (silent corruption would invalidate the
//! benchmarks).

use ibdt_datatype::Datatype;
use ibdt_mpicore::{AppOp, Cluster, ClusterSpec, Program, ReduceOp, Scheme};

fn two_rank(scheme: Scheme) -> Cluster {
    let mut spec = ClusterSpec::default();
    spec.mpi.scheme = scheme;
    Cluster::new(spec)
}

#[test]
#[should_panic(expected = "type signature mismatch")]
fn mismatched_signatures_panic() {
    let sty = Datatype::contiguous(4000, &Datatype::int()).unwrap();
    let rty = Datatype::contiguous(3000, &Datatype::int()).unwrap();
    let mut cluster = two_rank(Scheme::BcSpup);
    let sbuf = cluster.alloc(0, 20_000, 4096);
    let rbuf = cluster.alloc(1, 20_000, 4096);
    let p0: Program = vec![
        AppOp::Isend {
            peer: 1,
            buf: sbuf,
            count: 1,
            ty: sty,
            tag: 0,
        },
        AppOp::WaitAll,
    ];
    let p1: Program = vec![
        AppOp::Irecv {
            peer: 0,
            buf: rbuf,
            count: 1,
            ty: rty,
            tag: 0,
        },
        AppOp::WaitAll,
    ];
    cluster.run(vec![p0, p1]);
}

#[test]
#[should_panic(expected = "outside the target window")]
fn put_outside_window_panics() {
    let ty = Datatype::contiguous(8192, &Datatype::byte()).unwrap();
    let mut cluster = two_rank(Scheme::Adaptive);
    let obuf = cluster.alloc(0, 8192, 4096);
    let wbuf = cluster.alloc(1, 4096, 4096); // window smaller than put
    let p0: Program = vec![
        AppOp::WinCreate {
            win: 0,
            addr: 0,
            len: 0,
        },
        AppOp::Put {
            win: 0,
            target: 1,
            obuf,
            ocount: 1,
            oty: ty.clone(),
            toff: 0,
            tcount: 1,
            tty: ty.clone(),
        },
        AppOp::Fence,
    ];
    let p1: Program = vec![
        AppOp::WinCreate {
            win: 0,
            addr: wbuf,
            len: 4096,
        },
        AppOp::Fence,
    ];
    cluster.run(vec![p0, p1]);
}

#[test]
#[should_panic(expected = "uniform-primitive")]
fn reduction_on_mixed_struct_panics() {
    let mixed = Datatype::struct_(&[(1, 0, Datatype::int()), (1, 8, Datatype::double())]).unwrap();
    let mut cluster = two_rank(Scheme::BcSpup);
    let a = cluster.alloc(0, 4096, 4096);
    let b = cluster.alloc(0, 4096, 4096);
    let p0: Program = vec![AppOp::CombineBuffers {
        dst: a,
        src: b,
        count: 1,
        ty: mixed,
        op: ReduceOp::Sum,
    }];
    cluster.run(vec![p0, vec![]]);
}

#[test]
#[should_panic(expected = "wildcards are receive-side only")]
fn sending_to_wildcard_panics() {
    use ibdt_mpicore::rank::ANY_SOURCE;
    let ty = Datatype::int();
    let mut cluster = two_rank(Scheme::BcSpup);
    let sbuf = cluster.alloc(0, 64, 8);
    let p0: Program = vec![AppOp::Isend {
        peer: ANY_SOURCE,
        buf: sbuf,
        count: 1,
        ty,
        tag: 0,
    }];
    cluster.run(vec![p0, vec![]]);
}

#[test]
#[should_panic(expected = "single-shot")]
fn cluster_cannot_run_twice() {
    let mut cluster = two_rank(Scheme::BcSpup);
    cluster.run(vec![vec![], vec![]]);
    cluster.run(vec![vec![], vec![]]);
}

#[test]
#[should_panic(expected = "deadlocked")]
fn unmatched_receive_deadlocks_loudly() {
    let ty = Datatype::int();
    let mut cluster = two_rank(Scheme::BcSpup);
    let rbuf = cluster.alloc(1, 64, 8);
    // Receiver waits for a message nobody sends.
    let p1: Program = vec![
        AppOp::Irecv {
            peer: 0,
            buf: rbuf,
            count: 1,
            ty,
            tag: 0,
        },
        AppOp::WaitAll,
    ];
    cluster.run(vec![vec![], p1]);
}
