//! Feature and resilience tests: buffer-reuse hints (§6), pool
//! exhaustion fallback (§4.3.3), eager ring exhaustion, self messages,
//! and multi-peer stress.

use ibdt_datatype::Datatype;
use ibdt_mpicore::{AppOp, Cluster, ClusterSpec, Program, Scheme};

fn spec_with(scheme: Scheme) -> ClusterSpec {
    let mut spec = ClusterSpec::default();
    spec.mpi.scheme = scheme;
    spec
}

fn vector_cols(cols: u64) -> Datatype {
    Datatype::vector(128, cols, 4096, &Datatype::int()).unwrap()
}

fn one_transfer(spec: ClusterSpec, ty: &Datatype, hint: bool) -> u64 {
    let mut cluster = Cluster::new(spec);
    let span = ty.true_ub() as u64 + 64;
    let sbuf = cluster.alloc(0, span, 4096);
    let rbuf = cluster.alloc(1, span, 4096);
    cluster.fill_pattern(0, sbuf, span, 1);
    let mut p0: Program = Vec::new();
    let mut p1: Program = Vec::new();
    if hint {
        p0.push(AppOp::HintReusedBuffer {
            addr: sbuf,
            len: span,
        });
        p1.push(AppOp::HintReusedBuffer {
            addr: rbuf,
            len: span,
        });
        // Give the hint time to complete before the timed send.
        p0.push(AppOp::Compute { ns: 300_000 });
        p1.push(AppOp::Compute { ns: 300_000 });
    }
    p0.push(AppOp::MarkTime { slot: 0 });
    p0.push(AppOp::Isend {
        peer: 1,
        buf: sbuf,
        count: 1,
        ty: ty.clone(),
        tag: 0,
    });
    p0.push(AppOp::WaitAll);
    p0.push(AppOp::Irecv {
        peer: 1,
        buf: sbuf,
        count: 1,
        ty: ty.clone(),
        tag: 1,
    });
    p0.push(AppOp::WaitAll);
    p0.push(AppOp::MarkTime { slot: 1 });
    p1.push(AppOp::Irecv {
        peer: 0,
        buf: rbuf,
        count: 1,
        ty: ty.clone(),
        tag: 0,
    });
    p1.push(AppOp::WaitAll);
    p1.push(AppOp::Isend {
        peer: 0,
        buf: rbuf,
        count: 1,
        ty: ty.clone(),
        tag: 1,
    });
    p1.push(AppOp::WaitAll);
    let stats = cluster.run(vec![p0, p1]);
    stats.mark_interval(0, 0, 1)
}

#[test]
fn buffer_hint_speeds_up_cold_copy_reduced_send() {
    // §6: pre-registering a known-reused buffer moves the registration
    // off the first message's critical path.
    let ty = vector_cols(1024);
    for scheme in [Scheme::MultiW, Scheme::RwgUp, Scheme::Hybrid] {
        let cold = one_transfer(spec_with(scheme), &ty, false);
        let hinted = one_transfer(spec_with(scheme), &ty, true);
        assert!(hinted < cold, "{scheme:?}: hinted {hinted} !< cold {cold}");
    }
}

#[test]
fn pack_pool_exhaustion_falls_back_dynamically() {
    // Shrink the pools so a multi-segment BC-SPUP message overflows
    // them; the dynamic fallback (§4.3.3 second solution) must keep the
    // transfer correct.
    let mut spec = spec_with(Scheme::BcSpup);
    spec.mpi.pack_pool_size = 2 * spec.mpi.max_seg_size; // 2 segments only
    spec.mpi.unpack_pool_size = 2 * spec.mpi.max_seg_size;
    let ty = vector_cols(2048); // 1 MiB -> 8 segments
    let mut cluster = Cluster::new(spec);
    let span = ty.true_ub() as u64 + 64;
    let sbuf = cluster.alloc(0, span, 4096);
    let rbuf = cluster.alloc(1, span, 4096);
    cluster.fill_pattern(0, sbuf, span, 1);
    let p0 = vec![
        AppOp::Isend {
            peer: 1,
            buf: sbuf,
            count: 1,
            ty: ty.clone(),
            tag: 0,
        },
        AppOp::WaitAll,
    ];
    let p1 = vec![
        AppOp::Irecv {
            peer: 0,
            buf: rbuf,
            count: 1,
            ty: ty.clone(),
            tag: 0,
        },
        AppOp::WaitAll,
    ];
    let stats = cluster.run(vec![p0, p1]);
    // Fallback really happened on both sides.
    assert!(
        stats.counters[0].pool_fallbacks > 0,
        "sender never fell back"
    );
    assert!(
        stats.counters[1].pool_fallbacks > 0,
        "receiver never fell back"
    );
    let src = cluster.read_mem(0, sbuf, span);
    let dst = cluster.read_mem(1, rbuf, span);
    for (off, len) in ty.flat().repeat(1) {
        let o = off as usize;
        assert_eq!(&dst[o..o + len as usize], &src[o..o + len as usize]);
    }
}

#[test]
fn eager_send_ring_exhaustion_queues() {
    // A burst of eager messages larger than the send ring must queue
    // and drain without loss or reordering.
    let mut spec = spec_with(Scheme::BcSpup);
    spec.mpi.eager_send_bufs = 4;
    let ty = Datatype::contiguous(256, &Datatype::byte()).unwrap();
    let n_msgs = 32u64;
    let mut cluster = Cluster::new(spec);
    let sbuf = cluster.alloc(0, 256 * n_msgs, 4096);
    let rbuf = cluster.alloc(1, 256 * n_msgs, 4096);
    cluster.fill_pattern(0, sbuf, 256 * n_msgs, 5);
    let mut p0: Program = Vec::new();
    let mut p1: Program = Vec::new();
    for i in 0..n_msgs {
        p0.push(AppOp::Isend {
            peer: 1,
            buf: sbuf + i * 256,
            count: 1,
            ty: ty.clone(),
            tag: 7,
        });
        p1.push(AppOp::Irecv {
            peer: 0,
            buf: rbuf + i * 256,
            count: 1,
            ty: ty.clone(),
            tag: 7,
        });
    }
    p0.push(AppOp::WaitAll);
    p1.push(AppOp::WaitAll);
    cluster.run(vec![p0, p1]);
    assert_eq!(
        cluster.read_mem(1, rbuf, 256 * n_msgs),
        cluster.read_mem(0, sbuf, 256 * n_msgs),
        "burst messages lost or reordered"
    );
}

#[test]
fn self_messages_any_size() {
    // Sends to self bypass the network entirely (local copy), for both
    // eager- and rendezvous-sized payloads.
    for cols in [1u64, 64, 1024] {
        let ty = vector_cols(cols);
        let mut cluster = Cluster::new(spec_with(Scheme::MultiW));
        let span = ty.true_ub() as u64 + 64;
        let sbuf = cluster.alloc(0, span, 4096);
        let rbuf = cluster.alloc(0, span, 4096);
        cluster.fill_pattern(0, sbuf, span, 9);
        let p0 = vec![
            AppOp::Irecv {
                peer: 0,
                buf: rbuf,
                count: 1,
                ty: ty.clone(),
                tag: 0,
            },
            AppOp::Isend {
                peer: 0,
                buf: sbuf,
                count: 1,
                ty: ty.clone(),
                tag: 0,
            },
            AppOp::WaitAll,
        ];
        let p1 = vec![];
        let stats = cluster.run(vec![p0, p1]);
        assert_eq!(
            stats.bytes_on_wire, 0,
            "self messages must not hit the wire"
        );
        let src = cluster.read_mem(0, sbuf, span);
        let dst = cluster.read_mem(0, rbuf, span);
        for (off, len) in ty.flat().repeat(1) {
            let o = off as usize;
            assert_eq!(&dst[o..o + len as usize], &src[o..o + len as usize]);
        }
    }
}

#[test]
fn many_peers_concurrent_rendezvous() {
    // Rank 0 receives large datatype messages from 5 peers at once;
    // unpack pools and imm demultiplexing must keep them separate.
    let n = 6u32;
    let ty = vector_cols(256);
    let mut spec = spec_with(Scheme::BcSpup);
    spec.nprocs = n;
    let mut cluster = Cluster::new(spec);
    let span = ty.true_ub() as u64 + 64;
    let mut sbufs = Vec::new();
    let mut rbufs = Vec::new();
    for r in 1..n {
        let sb = cluster.alloc(r, span, 4096);
        cluster.fill_pattern(r, sb, span, 100 + r as u64);
        sbufs.push(sb);
    }
    for _ in 1..n {
        rbufs.push(cluster.alloc(0, span, 4096));
    }
    let mut progs: Vec<Program> = Vec::new();
    let mut p0: Program = Vec::new();
    for r in 1..n {
        p0.push(AppOp::Irecv {
            peer: r,
            buf: rbufs[(r - 1) as usize],
            count: 1,
            ty: ty.clone(),
            tag: 0,
        });
    }
    p0.push(AppOp::WaitAll);
    progs.push(p0);
    for r in 1..n {
        progs.push(vec![
            AppOp::Isend {
                peer: 0,
                buf: sbufs[(r - 1) as usize],
                count: 1,
                ty: ty.clone(),
                tag: 0,
            },
            AppOp::WaitAll,
        ]);
    }
    let stats = cluster.run(progs);
    assert_eq!(stats.rnr_events, 0);
    for r in 1..n {
        let src = cluster.read_mem(r, sbufs[(r - 1) as usize], span);
        let dst = cluster.read_mem(0, rbufs[(r - 1) as usize], span);
        for (off, len) in ty.flat().repeat(1) {
            let o = off as usize;
            assert_eq!(
                &dst[o..o + len as usize],
                &src[o..o + len as usize],
                "stream from rank {r} corrupted"
            );
        }
    }
}

#[test]
fn same_tag_messages_match_in_order() {
    // MPI non-overtaking: two same-tag messages must match posted
    // receives in order.
    let ty = vector_cols(64);
    let mut cluster = Cluster::new(spec_with(Scheme::RwgUp));
    let span = ty.true_ub() as u64 + 64;
    let s1 = cluster.alloc(0, span, 4096);
    let s2 = cluster.alloc(0, span, 4096);
    let r1 = cluster.alloc(1, span, 4096);
    let r2 = cluster.alloc(1, span, 4096);
    cluster.fill_pattern(0, s1, span, 1);
    cluster.fill_pattern(0, s2, span, 2);
    let p0 = vec![
        AppOp::Isend {
            peer: 1,
            buf: s1,
            count: 1,
            ty: ty.clone(),
            tag: 5,
        },
        AppOp::Isend {
            peer: 1,
            buf: s2,
            count: 1,
            ty: ty.clone(),
            tag: 5,
        },
        AppOp::WaitAll,
    ];
    let p1 = vec![
        AppOp::Irecv {
            peer: 0,
            buf: r1,
            count: 1,
            ty: ty.clone(),
            tag: 5,
        },
        AppOp::Irecv {
            peer: 0,
            buf: r2,
            count: 1,
            ty: ty.clone(),
            tag: 5,
        },
        AppOp::WaitAll,
    ];
    cluster.run(vec![p0, p1]);
    let src1 = cluster.read_mem(0, s1, span);
    let src2 = cluster.read_mem(0, s2, span);
    let dst1 = cluster.read_mem(1, r1, span);
    let dst2 = cluster.read_mem(1, r2, span);
    for (off, len) in ty.flat().repeat(1) {
        let o = off as usize..;
        let o = o.start..o.start + len as usize;
        assert_eq!(
            &dst1[o.clone()],
            &src1[o.clone()],
            "first recv got second message"
        );
        assert_eq!(&dst2[o.clone()], &src2[o], "second recv got first message");
    }
}

#[test]
fn layout_cache_survives_many_types() {
    // Alternate between several datatypes so the receiver registry
    // assigns multiple indices; the sender cache must keep them apart.
    let tys: Vec<Datatype> = (4..9).map(|k| vector_cols(1 << k)).collect();
    let mut cluster = Cluster::new(spec_with(Scheme::MultiW));
    let span = tys.last().unwrap().true_ub() as u64 + 64;
    let sbuf = cluster.alloc(0, span, 4096);
    let rbuf = cluster.alloc(1, span, 4096);
    cluster.fill_pattern(0, sbuf, span, 3);
    let mut p0: Program = Vec::new();
    let mut p1: Program = Vec::new();
    // Two rounds over all types: round 2 must hit the layout cache.
    for _ in 0..2 {
        for ty in &tys {
            p0.push(AppOp::Isend {
                peer: 1,
                buf: sbuf,
                count: 1,
                ty: ty.clone(),
                tag: 0,
            });
            p0.push(AppOp::WaitAll);
            p1.push(AppOp::Irecv {
                peer: 0,
                buf: rbuf,
                count: 1,
                ty: ty.clone(),
                tag: 0,
            });
            p1.push(AppOp::WaitAll);
        }
    }
    cluster.run(vec![p0, p1]);
    // Final message was the largest type; verify it.
    let ty = tys.last().unwrap();
    let src = cluster.read_mem(0, sbuf, span);
    let dst = cluster.read_mem(1, rbuf, span);
    for (off, len) in ty.flat().repeat(1) {
        let o = off as usize;
        assert_eq!(&dst[o..o + len as usize], &src[o..o + len as usize]);
    }
}

#[test]
fn wildcard_receives_match_any_source_and_tag() {
    use ibdt_mpicore::rank::{ANY_SOURCE, ANY_TAG};
    // Three senders, one receiver with wildcard receives; both eager
    // (small) and rendezvous (large) messages.
    for cols in [1u64, 256] {
        let ty = vector_cols(cols);
        let n = 4u32;
        let mut spec = spec_with(Scheme::BcSpup);
        spec.nprocs = n;
        let mut cluster = Cluster::new(spec);
        let span = ty.true_ub() as u64 + 64;
        let mut sbufs = Vec::new();
        for r in 1..n {
            let sb = cluster.alloc(r, span, 4096);
            cluster.fill_pattern(r, sb, span, 700 + r as u64);
            sbufs.push(sb);
        }
        let mut rbufs = Vec::new();
        for _ in 1..n {
            rbufs.push(cluster.alloc(0, span, 4096));
        }
        let mut progs: Vec<Program> = Vec::new();
        let mut p0: Program = Vec::new();
        for rb in &rbufs {
            p0.push(AppOp::Irecv {
                peer: ANY_SOURCE,
                buf: *rb,
                count: 1,
                ty: ty.clone(),
                tag: ANY_TAG,
            });
        }
        p0.push(AppOp::WaitAll);
        progs.push(p0);
        for r in 1..n {
            progs.push(vec![
                AppOp::Isend {
                    peer: 0,
                    buf: sbufs[(r - 1) as usize],
                    count: 1,
                    ty: ty.clone(),
                    tag: 40 + r, // distinct tags, all matched by ANY_TAG
                },
                AppOp::WaitAll,
            ]);
        }
        cluster.run(progs);
        // Each receive buffer must hold exactly one sender's stream; the
        // set of received streams equals the set of sent streams.
        let gather = |mem: &[u8]| -> Vec<u8> {
            let mut out = Vec::new();
            for (off, len) in ty.flat().repeat(1) {
                out.extend_from_slice(&mem[off as usize..(off + len as i64) as usize]);
            }
            out
        };
        let mut sent: Vec<Vec<u8>> = (1..n)
            .map(|r| gather(&cluster.read_mem(r, sbufs[(r - 1) as usize], span)))
            .collect();
        let mut got: Vec<Vec<u8>> = rbufs
            .iter()
            .map(|rb| gather(&cluster.read_mem(0, *rb, span)))
            .collect();
        sent.sort();
        got.sort();
        assert_eq!(sent, got, "cols {cols}: wildcard delivery set mismatch");
    }
}
