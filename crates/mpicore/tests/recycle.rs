//! Cluster recycling: a recycled cluster must be *bit-identical* to a
//! fresh one.
//!
//! [`Cluster::recycle`] parks a finished cluster in a thread-local
//! pool; [`Cluster::new`] with an equal spec resets and reuses it.
//! The contract is exact — same virtual-time results, same receiver
//! memory, and the same `RunStats` down to cache and pool counters as
//! a fresh cluster built on a warm thread — so a sweep can recycle
//! freely without perturbing any published number. These tests drive
//! the whole `RunStats` through its `Debug` form, which covers every
//! field (including the pool deltas) without a curated allow-list.

use ibdt_datatype::Datatype;
use ibdt_mpicore::{
    AppOp, Cluster, ClusterSpec, Program, Scheme, ShmConfig, ShmCopyMode, TransportConfig,
};
use ibdt_testkit::CountingAlloc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn ib_spec(scheme: Scheme) -> ClusterSpec {
    let mut spec = ClusterSpec::default();
    spec.mpi.scheme = scheme;
    spec
}

fn shm_spec(mode: ShmCopyMode) -> ClusterSpec {
    let mut spec = ClusterSpec::default();
    spec.mpi.scheme = Scheme::Adaptive;
    spec.transport = TransportConfig::Shm(ShmConfig {
        copy_mode: mode,
        ..ShmConfig::default()
    });
    spec
}

/// The paper's vector type: `cols` columns of a 128 x 4096 int array.
fn vector_cols(cols: u64) -> Datatype {
    Datatype::vector(128, cols, 4096, &Datatype::int()).unwrap()
}

/// One ping-pong round per tag over `cols` columns: eager for small
/// column counts, rendezvous for large — both protocol tiers and the
/// echo direction exercise the reset send *and* receive state.
fn programs(ty: &Datatype, sbuf: u64, rbuf: u64) -> Vec<Program> {
    let mut p0: Program = vec![AppOp::MarkTime { slot: 0 }];
    let mut p1: Program = Vec::new();
    for tag in 0..3 {
        p0.push(AppOp::Isend {
            peer: 1,
            buf: sbuf,
            count: 1,
            ty: ty.clone(),
            tag,
        });
        p0.push(AppOp::WaitAll);
        p1.push(AppOp::Irecv {
            peer: 0,
            buf: rbuf,
            count: 1,
            ty: ty.clone(),
            tag,
        });
        p1.push(AppOp::WaitAll);
    }
    p1.push(AppOp::Isend {
        peer: 0,
        buf: rbuf,
        count: 1,
        ty: ty.clone(),
        tag: 9,
    });
    p1.push(AppOp::WaitAll);
    p0.push(AppOp::Irecv {
        peer: 1,
        buf: sbuf,
        count: 1,
        ty: ty.clone(),
        tag: 9,
    });
    p0.push(AppOp::WaitAll);
    p0.push(AppOp::MarkTime { slot: 1 });
    vec![p0, p1]
}

/// Builds a cluster for `spec` (transparently pool-hitting if one was
/// recycled), runs one ping-pong workload over `cols` columns, and
/// returns `(full Debug fingerprint of RunStats, receiver memory,
/// allocations in new+run)`. Recycles the cluster afterwards iff
/// `recycle`.
fn run_workload(spec: &ClusterSpec, cols: u64, recycle: bool) -> (String, Vec<u8>, u64) {
    let ty = vector_cols(cols);
    let a0 = CountingAlloc::allocations();
    let mut cluster = Cluster::new(spec.clone());
    let span = ty.true_ub() as u64 + 64;
    let sbuf = cluster.alloc(0, span, 4096);
    let rbuf = cluster.alloc(1, span, 4096);
    cluster.fill_pattern(0, sbuf, span, 42);
    let progs = programs(&ty, sbuf, rbuf);
    let stats = cluster.run(progs);
    let allocs = CountingAlloc::allocations() - a0;
    let mem = cluster.read_mem(1, rbuf, span);
    if recycle {
        cluster.recycle();
    }
    (format!("{stats:?}"), mem, allocs)
}

/// Same spec, same workload: the recycled run must reproduce the fresh
/// warm-thread run exactly, while constructing with strictly fewer
/// allocations.
fn assert_recycled_identical(spec: &ClusterSpec) {
    // Cold run: warms the thread-local engine/space/page pools the way
    // any sweep's first point does. Dropped, not recycled, so the next
    // build is a true fresh-on-warm-thread reference.
    let _ = run_workload(spec, 4, false);
    let (fresh_fp, fresh_mem, fresh_allocs) = run_workload(spec, 4, true);
    // The recycle above parked the cluster; this run must pool-hit.
    let (rec_fp, rec_mem, rec_allocs) = run_workload(spec, 4, false);
    assert_eq!(fresh_fp, rec_fp, "recycled RunStats diverged from fresh");
    assert_eq!(fresh_mem, rec_mem, "recycled receiver memory diverged");
    assert!(
        rec_allocs < fresh_allocs,
        "pool hit saved no allocations (fresh {fresh_allocs}, recycled {rec_allocs}) — \
         recycling is not engaging"
    );
}

#[test]
fn recycled_run_bit_identical_ib() {
    assert_recycled_identical(&ib_spec(Scheme::BcSpup));
}

#[test]
fn recycled_run_bit_identical_ib_adaptive() {
    assert_recycled_identical(&ib_spec(Scheme::Adaptive));
}

#[test]
fn recycled_run_bit_identical_shm_double() {
    assert_recycled_identical(&shm_spec(ShmCopyMode::Double));
}

#[test]
fn recycled_run_bit_identical_shm_single() {
    assert_recycled_identical(&shm_spec(ShmCopyMode::Single));
}

/// Removes the host-side pool-accounting deltas (`space_pool`,
/// `scratch_pool`, `payload_pool`) from a `RunStats` fingerprint.
///
/// The cross-state tests below compare runs under *different*
/// thread-local pool warmth: a parked cluster keeps its address-space
/// and scratch backing captive, so a fresh build that runs while
/// something else sits in the cluster pool legitimately draws fewer
/// spares (more allocs, fewer reuses) than one that runs with the
/// pools fully stocked. Those deltas are host-side bookkeeping, not
/// simulation results; everything else must still match exactly.
fn scrub_pool_stats(fp: &str) -> String {
    let mut out = fp.to_string();
    for (start, end) in [
        ("scratch_pool: [", "]"),
        ("payload_pool: (", ")"),
        ("space_pool: (", ")"),
    ] {
        let s = out.find(start).expect("field present in Debug output");
        let e = out[s..].find(end).expect("field terminator") + s + end.len();
        out.replace_range(s..e, "");
    }
    out
}

/// A recycled cluster must not leak its previous run into a
/// *different* workload: running Q on a cluster that previously ran P
/// must equal running Q on a fresh cluster.
#[test]
fn recycled_cluster_forgets_previous_run() {
    let spec = ib_spec(Scheme::BcSpup);
    let _ = run_workload(&spec, 4, false); // warm pools
    // Fresh reference for workload Q (64 columns -> rendezvous).
    let (q_fresh_fp, q_fresh_mem, _) = run_workload(&spec, 64, false);
    // Run workload P (4 columns -> eager) and recycle.
    let _ = run_workload(&spec, 4, true);
    // The pooled cluster (which ran P) now runs Q.
    let (q_rec_fp, q_rec_mem, _) = run_workload(&spec, 64, false);
    assert_eq!(
        scrub_pool_stats(&q_fresh_fp),
        scrub_pool_stats(&q_rec_fp),
        "recycled cluster carried state from its previous run"
    );
    assert_eq!(q_fresh_mem, q_rec_mem);
}

/// Pool keying is exact spec equality: a recycled cluster must not be
/// handed to a spec that differs (here: a different scheme).
#[test]
fn recycle_keyed_on_spec_equality() {
    let spec_a = ib_spec(Scheme::BcSpup);
    let spec_b = ib_spec(Scheme::MultiW);
    let _ = run_workload(&spec_b, 4, false); // warm pools
    let (b_fresh_fp, ..) = run_workload(&spec_b, 4, false);
    let _ = run_workload(&spec_a, 4, true); // parks a BcSpup cluster
    // MultiW build must NOT take the BcSpup cluster; results match the
    // fresh MultiW reference.
    let (b_fp, ..) = run_workload(&spec_b, 4, false);
    assert_eq!(scrub_pool_stats(&b_fresh_fp), scrub_pool_stats(&b_fp));
}
