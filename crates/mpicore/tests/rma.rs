//! One-sided (MPI-2 RMA) tests: Put/Get with derived datatypes,
//! fence synchronization, self-target operations.

use ibdt_datatype::Datatype;
use ibdt_mpicore::{AppOp, Cluster, ClusterSpec, Program};

fn vector_cols(cols: u64) -> Datatype {
    Datatype::vector(128, cols, 4096, &Datatype::int()).unwrap()
}

fn cluster(n: u32) -> Cluster {
    Cluster::new(ClusterSpec {
        nprocs: n,
        ..Default::default()
    })
}

#[test]
fn put_moves_noncontiguous_data_one_sided() {
    let ty = vector_cols(64); // 32 KiB in a 2 MiB span
    let span = ty.true_ub() as u64 + 64;
    let mut cluster = cluster(2);
    let obuf = cluster.alloc(0, span, 4096);
    let wbuf = cluster.alloc(1, span, 4096);
    cluster.fill_pattern(0, obuf, span, 31);

    let p0: Program = vec![
        AppOp::WinCreate {
            win: 1,
            addr: 0,
            len: 0,
        }, // no exposure needed on origin
        AppOp::Put {
            win: 1,
            target: 1,
            obuf,
            ocount: 1,
            oty: ty.clone(),
            toff: 0,
            tcount: 1,
            tty: ty.clone(),
        },
        AppOp::Fence,
    ];
    let p1: Program = vec![
        AppOp::WinCreate {
            win: 1,
            addr: wbuf,
            len: span,
        },
        AppOp::Fence,
    ];
    let stats = cluster.run(vec![p0, p1]);
    assert_eq!(stats.rnr_events, 0);
    // The target's CPU moved no data (the only "unpacks" are the
    // zero-byte barrier messages of WinCreate/Fence).
    assert_eq!(stats.counters[1].bytes_unpacked, 0);

    let src = cluster.read_mem(0, obuf, span);
    let dst = cluster.read_mem(1, wbuf, span);
    for (off, len) in ty.flat().repeat(1) {
        let o = off as usize;
        assert_eq!(&dst[o..o + len as usize], &src[o..o + len as usize]);
    }
}

#[test]
fn get_reads_remote_layout() {
    let ty = vector_cols(32);
    let span = ty.true_ub() as u64 + 64;
    let mut cluster = cluster(2);
    let obuf = cluster.alloc(0, span, 4096);
    let wbuf = cluster.alloc(1, span, 4096);
    cluster.fill_pattern(1, wbuf, span, 77);

    let p0: Program = vec![
        AppOp::WinCreate {
            win: 3,
            addr: 0,
            len: 0,
        },
        AppOp::Get {
            win: 3,
            target: 1,
            obuf,
            ocount: 1,
            oty: ty.clone(),
            toff: 0,
            tcount: 1,
            tty: ty.clone(),
        },
        AppOp::Fence,
    ];
    let p1: Program = vec![
        AppOp::WinCreate {
            win: 3,
            addr: wbuf,
            len: span,
        },
        AppOp::Fence,
    ];
    cluster.run(vec![p0, p1]);
    let src = cluster.read_mem(1, wbuf, span);
    let dst = cluster.read_mem(0, obuf, span);
    for (off, len) in ty.flat().repeat(1) {
        let o = off as usize;
        assert_eq!(&dst[o..o + len as usize], &src[o..o + len as usize]);
    }
}

#[test]
fn put_with_asymmetric_layouts() {
    // Origin contiguous, target vector — the origin-side target
    // datatype drives the placement, like MPI_Put's target_datatype.
    let oty = Datatype::contiguous(128 * 64, &Datatype::int()).unwrap();
    let tty = vector_cols(64);
    let ospan = oty.size() + 64;
    let tspan = tty.true_ub() as u64 + 64;
    let mut cluster = cluster(2);
    let obuf = cluster.alloc(0, ospan, 4096);
    let wbuf = cluster.alloc(1, tspan, 4096);
    cluster.fill_pattern(0, obuf, ospan, 3);
    let p0: Program = vec![
        AppOp::WinCreate {
            win: 0,
            addr: 0,
            len: 0,
        },
        AppOp::Put {
            win: 0,
            target: 1,
            obuf,
            ocount: 1,
            oty: oty.clone(),
            toff: 0,
            tcount: 1,
            tty: tty.clone(),
        },
        AppOp::Fence,
    ];
    let p1: Program = vec![
        AppOp::WinCreate {
            win: 0,
            addr: wbuf,
            len: tspan,
        },
        AppOp::Fence,
    ];
    cluster.run(vec![p0, p1]);
    // Stream equivalence.
    let src = cluster.read_mem(0, obuf, ospan);
    let dst = cluster.read_mem(1, wbuf, tspan);
    let mut s_stream = Vec::new();
    for (off, len) in oty.flat().repeat(1) {
        s_stream.extend_from_slice(&src[off as usize..(off + len as i64) as usize]);
    }
    let mut t_stream = Vec::new();
    for (off, len) in tty.flat().repeat(1) {
        t_stream.extend_from_slice(&dst[off as usize..(off + len as i64) as usize]);
    }
    assert_eq!(s_stream, t_stream);
}

#[test]
fn multiple_puts_complete_at_fence() {
    // Ring of 4 ranks, each putting a block into its right neighbour's
    // window; everyone fences; everyone then reads its own window.
    let n = 4u32;
    let block = 64 * 1024u64;
    let mut cluster = cluster(n);
    let ty = Datatype::contiguous(block, &Datatype::byte()).unwrap();
    let mut obufs = Vec::new();
    let mut wbufs = Vec::new();
    for r in 0..n {
        let ob = cluster.alloc(r, block, 4096);
        let wb = cluster.alloc(r, block, 4096);
        cluster.fill_pattern(r, ob, block, 400 + r as u64);
        obufs.push(ob);
        wbufs.push(wb);
    }
    let progs: Vec<Program> = (0..n)
        .map(|r| {
            vec![
                AppOp::WinCreate {
                    win: 9,
                    addr: wbufs[r as usize],
                    len: block,
                },
                AppOp::Put {
                    win: 9,
                    target: (r + 1) % n,
                    obuf: obufs[r as usize],
                    ocount: 1,
                    oty: ty.clone(),
                    toff: 0,
                    tcount: 1,
                    tty: ty.clone(),
                },
                AppOp::Fence,
            ]
        })
        .collect();
    cluster.run(progs);
    for r in 0..n {
        let left = (r + n - 1) % n;
        assert_eq!(
            cluster.read_mem(r, wbufs[r as usize], block),
            cluster.read_mem(left, obufs[left as usize], block),
            "rank {r} window should hold rank {left}'s data"
        );
    }
}

#[test]
fn self_put_and_get_are_local() {
    let ty = vector_cols(16);
    let span = ty.true_ub() as u64 + 64;
    let mut cluster = cluster(2);
    let a = cluster.alloc(0, span, 4096);
    let b = cluster.alloc(0, span, 4096);
    cluster.fill_pattern(0, a, span, 8);
    let p0: Program = vec![
        AppOp::WinCreate {
            win: 2,
            addr: b,
            len: span,
        },
        AppOp::Put {
            win: 2,
            target: 0,
            obuf: a,
            ocount: 1,
            oty: ty.clone(),
            toff: 0,
            tcount: 1,
            tty: ty.clone(),
        },
        AppOp::Fence,
    ];
    let p1: Program = vec![
        AppOp::WinCreate {
            win: 2,
            addr: 0,
            len: 0,
        },
        AppOp::Fence,
    ];
    let stats = cluster.run(vec![p0, p1]);
    // Self RMA posts no RDMA work requests (barrier control messages
    // are the only wire traffic).
    assert_eq!(stats.counters[0].data_wrs, 0, "self RMA stays off the wire");
    let src = cluster.read_mem(0, a, span);
    let dst = cluster.read_mem(0, b, span);
    for (off, len) in ty.flat().repeat(1) {
        let o = off as usize;
        assert_eq!(&dst[o..o + len as usize], &src[o..o + len as usize]);
    }
}

#[test]
fn fence_without_rma_is_a_barrier() {
    let mut cluster = cluster(3);
    let progs: Vec<Program> = (0..3)
        .map(|_| {
            vec![
                AppOp::WinCreate {
                    win: 5,
                    addr: 0,
                    len: 0,
                },
                AppOp::Fence,
            ]
        })
        .collect();
    cluster.run(progs); // must terminate without deadlock
}
