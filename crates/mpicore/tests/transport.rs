//! End-to-end tests of the shared-memory transport and the
//! per-transport adaptive scheme selection.
//!
//! Mirrors `schemes.rs` for the shm backend: every scheme must move
//! every noncontiguous byte correctly over both copy modes, the copy
//! counters must attribute work to the right mechanism (bounce slots
//! vs CMA calls), runs must be bit-deterministic, and the §6 adaptive
//! selector must pick *differently* on shm than on IB for at least one
//! (datatype, size) cell — the headline claim of figure x17.

use ibdt_datatype::Datatype;
use ibdt_mpicore::progress::adaptive_choose;
use ibdt_mpicore::{
    AppOp, Cluster, ClusterSpec, FaultPlan, MpiConfig, Program, RunStats, Scheme, ShmConfig,
    ShmCopyMode, TransportClass, TransportConfig,
};

fn shm_spec(scheme: Scheme, mode: ShmCopyMode) -> ClusterSpec {
    let mut spec = ClusterSpec::default();
    spec.mpi.scheme = scheme;
    spec.transport = TransportConfig::Shm(ShmConfig {
        copy_mode: mode,
        ..ShmConfig::default()
    });
    spec
}

/// The paper's vector type: `cols` columns of a 128 x 4096 int array.
fn vector_cols(cols: u64) -> Datatype {
    Datatype::vector(128, cols, 4096, &Datatype::int()).unwrap()
}

/// Sends `count` instances of `ty` rank 0 -> rank 1 over shm, verifies
/// every datatype byte, and returns the stats.
fn shm_transfer(scheme: Scheme, mode: ShmCopyMode, ty: &Datatype, count: u64) -> RunStats {
    let mut cluster = Cluster::new(shm_spec(scheme, mode));
    let span = (count.saturating_sub(1) as i64 * ty.extent() + ty.true_ub()) as u64 + 64;
    let sbuf = cluster.alloc(0, span, 4096);
    let rbuf = cluster.alloc(1, span, 4096);
    cluster.fill_pattern(0, sbuf, span, 42);
    cluster.fill_pattern(1, rbuf, span, 7);

    let p0: Program = vec![
        AppOp::Isend {
            peer: 1,
            buf: sbuf,
            count,
            ty: ty.clone(),
            tag: 5,
        },
        AppOp::WaitAll,
    ];
    let p1: Program = vec![
        AppOp::Irecv {
            peer: 0,
            buf: rbuf,
            count,
            ty: ty.clone(),
            tag: 5,
        },
        AppOp::WaitAll,
    ];
    let stats = cluster.run(vec![p0, p1]);
    assert_eq!(stats.total_errors(), 0, "{scheme:?}/{mode:?}: clean run");

    let src = cluster.read_mem(0, sbuf, span);
    let dst = cluster.read_mem(1, rbuf, span);
    for (off, len) in ty.flat().repeat(count) {
        let o = off as usize;
        assert_eq!(
            &dst[o..o + len as usize],
            &src[o..o + len as usize],
            "{scheme:?}/{mode:?}: block at offset {off} corrupt"
        );
    }
    stats
}

const ALL_SCHEMES: [Scheme; 7] = [
    Scheme::Generic,
    Scheme::BcSpup,
    Scheme::RwgUp,
    Scheme::PRrs,
    Scheme::MultiW,
    Scheme::Adaptive,
    Scheme::Hybrid,
];

#[test]
fn every_scheme_moves_data_over_shm_double_copy() {
    let ty = vector_cols(4);
    for scheme in ALL_SCHEMES {
        let stats = shm_transfer(scheme, ShmCopyMode::Double, &ty, 1);
        assert!(
            stats.shm_bounce_chunks > 0,
            "{scheme:?}: double copy must fill bounce slots"
        );
        assert_eq!(
            stats.shm_cma_ops, 0,
            "{scheme:?}: double copy must not issue CMA calls"
        );
    }
}

#[test]
fn every_scheme_moves_data_over_shm_single_copy() {
    let ty = vector_cols(4);
    for scheme in ALL_SCHEMES {
        let stats = shm_transfer(scheme, ShmCopyMode::Single, &ty, 1);
        assert!(
            stats.shm_cma_ops > 0,
            "{scheme:?}: single copy must issue CMA calls"
        );
        assert_eq!(
            stats.shm_bounce_chunks, 0,
            "{scheme:?}: single copy must not touch the bounce segment"
        );
    }
}

/// The deterministic fingerprint of one run: everything RunStats
/// reports that virtual time or the protocol could perturb.
fn fingerprint(s: &RunStats) -> (u64, Vec<u64>, Vec<u64>, u64, u64, u64, u64, u64, u64) {
    (
        s.finish_ns,
        s.rank_finish_ns.clone(),
        s.cpu_busy_ns.clone(),
        s.wqes,
        s.bytes_on_wire,
        s.bytes_copied,
        s.events_scheduled,
        s.shm_bounce_chunks,
        s.shm_cma_ops,
    )
}

#[test]
fn shm_runs_are_deterministic() {
    let ty = vector_cols(3);
    for mode in [ShmCopyMode::Double, ShmCopyMode::Single] {
        let a = shm_transfer(Scheme::Adaptive, mode, &ty, 2);
        let b = shm_transfer(Scheme::Adaptive, mode, &ty, 2);
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "{mode:?}: identical spec must reproduce identical stats"
        );
    }
}

#[test]
fn adaptive_selector_diverges_between_transports() {
    let cfg = MpiConfig::default();
    // A 256 KiB vector with 2 KiB blocks on both sides: on IB the
    // blocks clear the Multi-W threshold (512 B); on shm single-copy
    // they are far below the syscall-amortization threshold (8 KiB),
    // and on double-copy zero copy buys nothing — both fall back to
    // pack/unpack.
    let size = 256 * 1024;
    let blk = 2048;
    let ib = adaptive_choose(&cfg, TransportClass::Ib, size, blk, blk, blk, blk);
    let shm1 = adaptive_choose(&cfg, TransportClass::ShmSingle, size, blk, blk, blk, blk);
    let shm2 = adaptive_choose(&cfg, TransportClass::ShmDouble, size, blk, blk, blk, blk);
    assert_eq!(ib, Scheme::MultiW);
    assert_eq!(shm1, Scheme::BcSpup);
    assert_eq!(shm2, Scheme::BcSpup);
    assert_ne!(ib, shm1, "the selector must key on the transport");

    // Huge blocks amortize the CMA setup: single-copy rejoins Multi-W
    // while double-copy still refuses.
    let big = 16 * 1024;
    let shm1_big = adaptive_choose(
        &cfg,
        TransportClass::ShmSingle,
        size,
        big,
        big,
        big,
        big,
    );
    assert_eq!(shm1_big, Scheme::MultiW);
    assert_eq!(
        adaptive_choose(&cfg, TransportClass::ShmDouble, size, big, big, big, big),
        Scheme::BcSpup
    );
}

#[test]
#[should_panic(expected = "fault injection requires the IB transport")]
fn shm_rejects_fault_plans() {
    let mut spec = shm_spec(Scheme::BcSpup, ShmCopyMode::Double);
    spec.faults = FaultPlan::uniform(7, 0.1).unwrap();
    let _ = Cluster::new(spec);
}

#[test]
#[should_panic(expected = "invalid shm configuration")]
fn shm_rejects_invalid_config_at_cluster_build() {
    let spec = ClusterSpec {
        transport: TransportConfig::Shm(ShmConfig {
            slot_bytes: 0,
            ..ShmConfig::default()
        }),
        ..ClusterSpec::default()
    };
    let _ = Cluster::new(spec);
}
