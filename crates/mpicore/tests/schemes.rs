//! End-to-end tests of every datatype communication scheme.
//!
//! Each test runs a full simulated cluster and asserts *data
//! correctness* (the receiver's memory holds exactly the sender's
//! noncontiguous bytes) plus protocol invariants (no RNR events, no
//! leaked rendezvous state). Timing-shape assertions live at the end.

use ibdt_datatype::Datatype;
use ibdt_mpicore::{AppOp, Cluster, ClusterSpec, Program, Scheme};

fn spec_with(scheme: Scheme, nprocs: u32) -> ClusterSpec {
    let mut spec = ClusterSpec {
        nprocs,
        ..ClusterSpec::default()
    };
    spec.mpi.scheme = scheme;
    spec
}

const ALL_SCHEMES: [Scheme; 7] = [
    Scheme::Generic,
    Scheme::BcSpup,
    Scheme::RwgUp,
    Scheme::PRrs,
    Scheme::MultiW,
    Scheme::Adaptive,
    Scheme::Hybrid,
];

/// The paper's vector type: `cols` columns of a 128 x 4096 int array.
fn vector_cols(cols: u64) -> Datatype {
    Datatype::vector(128, cols, 4096, &Datatype::int()).unwrap()
}

/// Sends `count` instances of `ty` from rank 0 to rank 1 and verifies
/// every datatype byte arrived. Returns the run finish time.
fn transfer_and_verify(scheme: Scheme, ty: &Datatype, count: u64) -> u64 {
    let mut cluster = Cluster::new(spec_with(scheme, 2));
    let span = (count.saturating_sub(1) as i64 * ty.extent() + ty.true_ub()) as u64 + 64;
    let sbuf = cluster.alloc(0, span, 4096);
    let rbuf = cluster.alloc(1, span, 4096);
    cluster.fill_pattern(0, sbuf, span, 42);
    cluster.fill_pattern(1, rbuf, span, 7); // distinct garbage

    let p0: Program = vec![
        AppOp::Isend {
            peer: 1,
            buf: sbuf,
            count,
            ty: ty.clone(),
            tag: 5,
        },
        AppOp::WaitAll,
    ];
    let p1: Program = vec![
        AppOp::Irecv {
            peer: 0,
            buf: rbuf,
            count,
            ty: ty.clone(),
            tag: 5,
        },
        AppOp::WaitAll,
    ];
    let stats = cluster.run(vec![p0, p1]);
    assert_eq!(stats.rnr_events, 0, "flow control must avoid RNR");

    let src = cluster.read_mem(0, sbuf, span);
    let dst = cluster.read_mem(1, rbuf, span);
    let mut checked_bytes = 0u64;
    for (off, len) in ty.flat().repeat(count) {
        let o = off as usize;
        assert_eq!(
            &dst[o..o + len as usize],
            &src[o..o + len as usize],
            "scheme {scheme:?}: block at offset {off} corrupt"
        );
        checked_bytes += len;
    }
    assert_eq!(checked_bytes, count * ty.size());
    // Bytes outside the datatype must be untouched garbage.
    let mut touched = vec![false; span as usize];
    for (off, len) in ty.flat().repeat(count) {
        for i in off..off + len as i64 {
            touched[i as usize] = true;
        }
    }
    let mut fresh = Cluster::new(spec_with(scheme, 2));
    let rbuf2 = {
        let _ = fresh.alloc(1, 1, 1);
        rbuf
    };
    let _ = rbuf2;
    // (garbage pattern comparison): regenerate the original fill.
    let mut garbage = Cluster::new(spec_with(scheme, 2));
    let gbuf = garbage.alloc(1, span, 4096);
    garbage.fill_pattern(1, gbuf, span, 7);
    let orig = garbage.read_mem(1, gbuf, span);
    for (i, &t) in touched.iter().enumerate() {
        if !t {
            assert_eq!(dst[i], orig[i], "scheme {scheme:?}: gap byte {i} clobbered");
        }
    }
    stats.finish_ns
}

#[test]
fn eager_small_vector_all_schemes() {
    // 1 column = 512 B -> eager path.
    let ty = vector_cols(1);
    for s in ALL_SCHEMES {
        transfer_and_verify(s, &ty, 1);
    }
}

#[test]
fn rendezvous_medium_vector_all_schemes() {
    // 16 columns = 8 KiB message, 128 blocks of 64 B.
    let ty = vector_cols(16);
    for s in ALL_SCHEMES {
        transfer_and_verify(s, &ty, 1);
    }
}

#[test]
fn rendezvous_large_vector_all_schemes() {
    // 512 columns = 256 KiB message, blocks of 2 KiB; multiple segments.
    let ty = vector_cols(512);
    for s in ALL_SCHEMES {
        transfer_and_verify(s, &ty, 1);
    }
}

#[test]
fn contiguous_messages_all_schemes() {
    let ty = Datatype::contiguous(100_000, &Datatype::int()).unwrap();
    for s in ALL_SCHEMES {
        transfer_and_verify(s, &ty, 1);
    }
}

#[test]
fn struct_datatype_all_schemes() {
    // The Fig. 10 struct: exponentially growing blocks with gaps.
    let mut fields = Vec::new();
    let mut displ = 0i64;
    let mut ints = 1u64;
    for _ in 0..9 {
        fields.push((ints, displ, Datatype::int()));
        displ += 2 * ints as i64 * 4; // gap equal to the block
        ints *= 2;
    }
    let ty = Datatype::struct_(&fields).unwrap();
    assert!(ty.size() > 1024, "rendezvous sized");
    for s in ALL_SCHEMES {
        transfer_and_verify(s, &ty, 1);
    }
}

#[test]
fn indexed_with_ragged_blocks_all_schemes() {
    let blocks: Vec<(u64, i64)> = (0..60).map(|i| (1 + (i % 7), (i * 37) as i64)).collect();
    let base = Datatype::indexed(&blocks, &Datatype::double()).unwrap();
    let ty = Datatype::hvector(4, 1, 32 * 1024, &base).unwrap();
    for s in ALL_SCHEMES {
        transfer_and_verify(s, &ty, 2);
    }
}

#[test]
fn multiple_instances_merge_across_extent() {
    let ty = vector_cols(8);
    for s in ALL_SCHEMES {
        transfer_and_verify(s, &ty, 3);
    }
}

#[test]
fn asymmetric_types_same_signature() {
    // Sender: contiguous; receiver: vector of the same total size.
    let sty = Datatype::contiguous(128 * 16, &Datatype::int()).unwrap();
    let rty = vector_cols(16);
    for s in ALL_SCHEMES {
        let mut cluster = Cluster::new(spec_with(s, 2));
        let s_span = sty.size() + 64;
        let r_span = rty.true_ub() as u64 + 64;
        let sbuf = cluster.alloc(0, s_span, 4096);
        let rbuf = cluster.alloc(1, r_span, 4096);
        cluster.fill_pattern(0, sbuf, s_span, 3);
        let p0 = vec![
            AppOp::Isend {
                peer: 1,
                buf: sbuf,
                count: 1,
                ty: sty.clone(),
                tag: 1,
            },
            AppOp::WaitAll,
        ];
        let p1 = vec![
            AppOp::Irecv {
                peer: 0,
                buf: rbuf,
                count: 1,
                ty: rty.clone(),
                tag: 1,
            },
            AppOp::WaitAll,
        ];
        cluster.run(vec![p0, p1]);
        // Stream order equivalence: packed sender bytes == packed
        // receiver bytes.
        let src = cluster.read_mem(0, sbuf, s_span);
        let dst = cluster.read_mem(1, rbuf, r_span);
        let mut s_stream = Vec::new();
        for (off, len) in sty.flat().repeat(1) {
            s_stream.extend_from_slice(&src[off as usize..(off + len as i64) as usize]);
        }
        let mut r_stream = Vec::new();
        for (off, len) in rty.flat().repeat(1) {
            r_stream.extend_from_slice(&dst[off as usize..(off + len as i64) as usize]);
        }
        assert_eq!(s_stream, r_stream, "scheme {s:?}");
    }
}

#[test]
fn ping_pong_bidirectional() {
    let ty = vector_cols(64);
    for s in ALL_SCHEMES {
        let mut cluster = Cluster::new(spec_with(s, 2));
        let span = ty.true_ub() as u64 + 64;
        let b0 = cluster.alloc(0, span, 4096);
        let b1 = cluster.alloc(1, span, 4096);
        cluster.fill_pattern(0, b0, span, 11);
        let iters = 4;
        let mut p0: Program = vec![];
        let mut p1: Program = vec![];
        for _ in 0..iters {
            p0.push(AppOp::Isend {
                peer: 1,
                buf: b0,
                count: 1,
                ty: ty.clone(),
                tag: 0,
            });
            p0.push(AppOp::WaitAll);
            p0.push(AppOp::Irecv {
                peer: 1,
                buf: b0,
                count: 1,
                ty: ty.clone(),
                tag: 0,
            });
            p0.push(AppOp::WaitAll);
            p1.push(AppOp::Irecv {
                peer: 0,
                buf: b1,
                count: 1,
                ty: ty.clone(),
                tag: 0,
            });
            p1.push(AppOp::WaitAll);
            p1.push(AppOp::Isend {
                peer: 0,
                buf: b1,
                count: 1,
                ty: ty.clone(),
                tag: 0,
            });
            p1.push(AppOp::WaitAll);
        }
        let stats = cluster.run(vec![p0, p1]);
        assert_eq!(stats.rnr_events, 0);
        // Data echoed back intact.
        let src = cluster.read_mem(0, b0, span);
        let mut reference = Cluster::new(spec_with(s, 2));
        let rb = reference.alloc(0, span, 4096);
        reference.fill_pattern(0, rb, span, 11);
        let orig = reference.read_mem(0, rb, span);
        for (off, len) in ty.flat().repeat(1) {
            let o = off as usize;
            assert_eq!(&src[o..o + len as usize], &orig[o..o + len as usize]);
        }
    }
}

#[test]
fn unexpected_messages_match_later() {
    // Sender fires before the receiver posts: both eager and rendezvous
    // must queue as unexpected and complete when the recv arrives.
    for (cols, _label) in [(1u64, "eager"), (64, "rndv")] {
        let ty = vector_cols(cols);
        for s in [Scheme::Generic, Scheme::BcSpup, Scheme::MultiW] {
            let mut cluster = Cluster::new(spec_with(s, 2));
            let span = ty.true_ub() as u64 + 64;
            let sbuf = cluster.alloc(0, span, 4096);
            let rbuf = cluster.alloc(1, span, 4096);
            cluster.fill_pattern(0, sbuf, span, 9);
            let p0 = vec![
                AppOp::Isend {
                    peer: 1,
                    buf: sbuf,
                    count: 1,
                    ty: ty.clone(),
                    tag: 2,
                },
                AppOp::WaitAll,
            ];
            // The receiver computes for a long time before posting.
            let p1 = vec![
                AppOp::Compute { ns: 300_000 },
                AppOp::Irecv {
                    peer: 0,
                    buf: rbuf,
                    count: 1,
                    ty: ty.clone(),
                    tag: 2,
                },
                AppOp::WaitAll,
            ];
            cluster.run(vec![p0, p1]);
            let src = cluster.read_mem(0, sbuf, span);
            let dst = cluster.read_mem(1, rbuf, span);
            for (off, len) in ty.flat().repeat(1) {
                let o = off as usize;
                assert_eq!(&dst[o..o + len as usize], &src[o..o + len as usize]);
            }
        }
    }
}

#[test]
fn tag_matching_orders_messages() {
    // Two messages with different tags, received in swapped order.
    let ty = vector_cols(8);
    let mut cluster = Cluster::new(spec_with(Scheme::BcSpup, 2));
    let span = ty.true_ub() as u64 + 64;
    let s1 = cluster.alloc(0, span, 4096);
    let s2 = cluster.alloc(0, span, 4096);
    let r1 = cluster.alloc(1, span, 4096);
    let r2 = cluster.alloc(1, span, 4096);
    cluster.fill_pattern(0, s1, span, 100);
    cluster.fill_pattern(0, s2, span, 200);
    let p0 = vec![
        AppOp::Isend {
            peer: 1,
            buf: s1,
            count: 1,
            ty: ty.clone(),
            tag: 10,
        },
        AppOp::Isend {
            peer: 1,
            buf: s2,
            count: 1,
            ty: ty.clone(),
            tag: 20,
        },
        AppOp::WaitAll,
    ];
    let p1 = vec![
        AppOp::Irecv {
            peer: 0,
            buf: r2,
            count: 1,
            ty: ty.clone(),
            tag: 20,
        },
        AppOp::Irecv {
            peer: 0,
            buf: r1,
            count: 1,
            ty: ty.clone(),
            tag: 10,
        },
        AppOp::WaitAll,
    ];
    cluster.run(vec![p0, p1]);
    let src1 = cluster.read_mem(0, s1, span);
    let src2 = cluster.read_mem(0, s2, span);
    let dst1 = cluster.read_mem(1, r1, span);
    let dst2 = cluster.read_mem(1, r2, span);
    for (off, len) in ty.flat().repeat(1) {
        let o = off as usize;
        assert_eq!(&dst1[o..o + len as usize], &src1[o..o + len as usize]);
        assert_eq!(&dst2[o..o + len as usize], &src2[o..o + len as usize]);
    }
}

#[test]
fn multiw_layout_cache_reused_across_messages() {
    let ty = vector_cols(512);
    let mut cluster = Cluster::new(spec_with(Scheme::MultiW, 2));
    let span = ty.true_ub() as u64 + 64;
    let sbuf = cluster.alloc(0, span, 4096);
    let rbuf = cluster.alloc(1, span, 4096);
    cluster.fill_pattern(0, sbuf, span, 1);
    let mut p0 = vec![];
    let mut p1 = vec![];
    for _ in 0..3 {
        p0.push(AppOp::Isend {
            peer: 1,
            buf: sbuf,
            count: 1,
            ty: ty.clone(),
            tag: 0,
        });
        p0.push(AppOp::WaitAll);
        p1.push(AppOp::Irecv {
            peer: 0,
            buf: rbuf,
            count: 1,
            ty: ty.clone(),
            tag: 0,
        });
        p1.push(AppOp::WaitAll);
    }
    cluster.run(vec![p0, p1]);
    // The receiver ships the layout once; the sender's cache serves the
    // rest. (Hits counted on the sender = rank 0.)
    // 3 messages: 1 miss + 2 hits... lookup happens only when the reply
    // says "cached"; the first reply embeds the layout (no lookup).
    // So expect exactly 2 hits, 0 misses.
    // Cache stats are on the layout cache; expose via behaviour: run
    // must succeed with correct data (a stale-cache bug would corrupt).
    let src = cluster.read_mem(0, sbuf, span);
    let dst = cluster.read_mem(1, rbuf, span);
    for (off, len) in ty.flat().repeat(1) {
        let o = off as usize;
        assert_eq!(&dst[o..o + len as usize], &src[o..o + len as usize]);
    }
}

#[test]
fn alltoall_all_schemes_4_ranks() {
    // Small struct datatype alltoall across 4 ranks with data checks.
    let ty = Datatype::vector(32, 8, 64, &Datatype::int()).unwrap(); // 1 KiB data
    let n = 4u32;
    for s in [
        Scheme::Generic,
        Scheme::BcSpup,
        Scheme::RwgUp,
        Scheme::MultiW,
    ] {
        let mut cluster = Cluster::new(spec_with(s, n));
        let block_span = ty.extent() as u64;
        let span = block_span * n as u64 + 64;
        let mut sbufs = Vec::new();
        let mut rbufs = Vec::new();
        for r in 0..n {
            let sb = cluster.alloc(r, span, 4096);
            let rb = cluster.alloc(r, span, 4096);
            cluster.fill_pattern(r, sb, span, 1000 + r as u64);
            sbufs.push(sb);
            rbufs.push(rb);
        }
        let progs: Vec<Program> = (0..n)
            .map(|r| {
                vec![AppOp::Alltoall {
                    sbuf: sbufs[r as usize],
                    rbuf: rbufs[r as usize],
                    count: 1,
                    sty: ty.clone(),
                    rty: ty.clone(),
                }]
            })
            .collect();
        let stats = cluster.run(progs);
        assert_eq!(stats.rnr_events, 0);
        // Verify: rank j's block i == rank i's block j (sent data).
        for i in 0..n {
            for j in 0..n {
                let src =
                    cluster.read_mem(i, sbufs[i as usize] + j as u64 * block_span, block_span);
                let dst =
                    cluster.read_mem(j, rbufs[j as usize] + i as u64 * block_span, block_span);
                for (off, len) in ty.flat().repeat(1) {
                    let o = off as usize;
                    assert_eq!(
                        &dst[o..o + len as usize],
                        &src[o..o + len as usize],
                        "scheme {s:?}: alltoall block {i}->{j}"
                    );
                }
            }
        }
    }
}

#[test]
fn bcast_and_allgather_and_barrier() {
    let ty = Datatype::contiguous(2048, &Datatype::int()).unwrap(); // 8 KiB
    let n = 5u32;
    let mut cluster = Cluster::new(spec_with(Scheme::BcSpup, n));
    let span = ty.size() + 64;
    let ag_span = ty.size() * n as u64 + 64;
    let mut bufs = Vec::new();
    let mut agbufs = Vec::new();
    for r in 0..n {
        let b = cluster.alloc(r, span, 4096);
        let ag = cluster.alloc(r, ag_span, 4096);
        if r == 2 {
            cluster.fill_pattern(r, b, ty.size(), 555);
        }
        bufs.push(b);
        agbufs.push(ag);
    }
    let progs: Vec<Program> = (0..n)
        .map(|r| {
            vec![
                AppOp::Bcast {
                    root: 2,
                    buf: bufs[r as usize],
                    count: 1,
                    ty: ty.clone(),
                },
                AppOp::Barrier,
                AppOp::Allgather {
                    sbuf: bufs[r as usize],
                    rbuf: agbufs[r as usize],
                    count: 1,
                    ty: ty.clone(),
                },
            ]
        })
        .collect();
    cluster.run(progs);
    let root_data = cluster.read_mem(2, bufs[2], ty.size());
    for r in 0..n {
        assert_eq!(
            cluster.read_mem(r, bufs[r as usize], ty.size()),
            root_data,
            "bcast to rank {r}"
        );
        // Allgather: every block equals the root data (everyone
        // contributed the bcast result).
        for b in 0..n {
            assert_eq!(
                cluster.read_mem(r, agbufs[r as usize] + b as u64 * ty.size(), ty.size()),
                root_data,
                "allgather rank {r} block {b}"
            );
        }
    }
}

// --------------------------------------------------------------------
// Timing-shape assertions (the paper's headline relationships)
// --------------------------------------------------------------------

#[test]
fn schemes_beat_generic_on_large_columns() {
    // 1024 columns: blocks of 4 KiB, message 2 MiB. Multi-W should be
    // fastest (zero copy); BC-SPUP and RWG-UP beat Generic.
    let ty = vector_cols(1024);
    let generic = transfer_and_verify(Scheme::Generic, &ty, 1);
    let bcspup = transfer_and_verify(Scheme::BcSpup, &ty, 1);
    let rwgup = transfer_and_verify(Scheme::RwgUp, &ty, 1);
    let multiw = transfer_and_verify(Scheme::MultiW, &ty, 1);
    assert!(bcspup < generic, "BC-SPUP {bcspup} !< Generic {generic}");
    assert!(rwgup < generic, "RWG-UP {rwgup} !< Generic {generic}");
    assert!(multiw < rwgup, "Multi-W {multiw} !< RWG-UP {rwgup}");
}

#[test]
fn multiw_degrades_on_tiny_blocks() {
    // 4 columns: 16-byte blocks. Multi-W pays 128 descriptor posts for
    // 2 KiB of data... message is 2 KiB -> rendezvous threshold is
    // 1 KiB so it is a rendezvous message. Multi-W should lose to
    // BC-SPUP here (Fig. 8's crossover).
    let ty = vector_cols(4);
    let bcspup = transfer_and_verify(Scheme::BcSpup, &ty, 1);
    let multiw = transfer_and_verify(Scheme::MultiW, &ty, 1);
    assert!(
        multiw > bcspup,
        "Multi-W {multiw} should lose to BC-SPUP {bcspup} on 16-byte blocks"
    );
}

#[test]
fn bcspup_overlaps_pack_with_wire() {
    // A multi-segment BC-SPUP transfer must show real pack/wire overlap
    // on the sender (the Fig. 3 pipeline), where Generic shows none.
    let ty = vector_cols(1024); // 2 MiB
    let run = |scheme| {
        let mut cluster = Cluster::new(spec_with(scheme, 2));
        let span = ty.true_ub() as u64 + 64;
        let sbuf = cluster.alloc(0, span, 4096);
        let rbuf = cluster.alloc(1, span, 4096);
        cluster.fill_pattern(0, sbuf, span, 1);
        let p0 = vec![
            AppOp::Isend {
                peer: 1,
                buf: sbuf,
                count: 1,
                ty: ty.clone(),
                tag: 0,
            },
            AppOp::WaitAll,
        ];
        let p1 = vec![
            AppOp::Irecv {
                peer: 0,
                buf: rbuf,
                count: 1,
                ty: ty.clone(),
                tag: 0,
            },
            AppOp::WaitAll,
        ];
        cluster.run(vec![p0, p1]).pack_wire_overlap_ns[0]
    };
    let overlap_bcspup = run(Scheme::BcSpup);
    let overlap_generic = run(Scheme::Generic);
    assert!(
        overlap_bcspup > 100_000,
        "BC-SPUP pack/wire overlap too small: {overlap_bcspup}"
    );
    assert!(
        overlap_generic < overlap_bcspup / 4,
        "Generic should not pipeline: {overlap_generic} vs {overlap_bcspup}"
    );
}

#[test]
fn adaptive_picks_a_good_scheme() {
    // Adaptive should land within 15% of the best fixed scheme for
    // large blocks, and never be catastrophically bad for small ones.
    let big = vector_cols(1024);
    let t_adaptive = transfer_and_verify(Scheme::Adaptive, &big, 1);
    let t_multiw = transfer_and_verify(Scheme::MultiW, &big, 1);
    assert!(
        t_adaptive as f64 <= t_multiw as f64 * 1.15,
        "adaptive {t_adaptive} vs multiw {t_multiw}"
    );
    let small = vector_cols(4);
    let t_adaptive_s = transfer_and_verify(Scheme::Adaptive, &small, 1);
    let t_multiw_s = transfer_and_verify(Scheme::MultiW, &small, 1);
    assert!(
        t_adaptive_s < t_multiw_s,
        "adaptive {t_adaptive_s} should dodge Multi-W's small-block collapse {t_multiw_s}"
    );
}

#[test]
fn worst_case_registration_hurts_copy_reduced_small() {
    // Fig. 14: with the pin-down cache off, RWG-UP/Multi-W register the
    // whole user array every iteration; at small column counts they
    // lose to BC-SPUP.
    let ty = vector_cols(16); // 8 KiB data in a 2 MiB array
    let run = |scheme| {
        let mut spec = spec_with(scheme, 2);
        spec.mpi.pindown_cache = false;
        spec.mpi.reuse_internal_bufs = false;
        let mut cluster = Cluster::new(spec);
        let span = ty.true_ub() as u64 + 64;
        let sbuf = cluster.alloc(0, span, 4096);
        let rbuf = cluster.alloc(1, span, 4096);
        cluster.fill_pattern(0, sbuf, span, 1);
        let p0 = vec![
            AppOp::Isend {
                peer: 1,
                buf: sbuf,
                count: 1,
                ty: ty.clone(),
                tag: 0,
            },
            AppOp::WaitAll,
        ];
        let p1 = vec![
            AppOp::Irecv {
                peer: 0,
                buf: rbuf,
                count: 1,
                ty: ty.clone(),
                tag: 0,
            },
            AppOp::WaitAll,
        ];
        cluster.run(vec![p0, p1]).finish_ns
    };
    let bcspup = run(Scheme::BcSpup);
    let multiw = run(Scheme::MultiW);
    assert!(
        multiw > bcspup,
        "worst case: Multi-W {multiw} should lose to BC-SPUP {bcspup} at 16 columns"
    );
}

/// A mixed datatype: alternating large (8 KiB) and tiny (32 B) blocks.
fn mixed_ty() -> Datatype {
    let mut fields = Vec::new();
    let mut displ = 0i64;
    for i in 0..64 {
        let len = if i % 2 == 0 { 8192u64 } else { 32 };
        fields.push((
            len,
            displ,
            Datatype::primitive(ibdt_datatype::Primitive::Byte),
        ));
        displ += len as i64 + 512;
    }
    Datatype::struct_(&fields).unwrap()
}

#[test]
fn hybrid_correct_on_mixed_blocks() {
    let ty = mixed_ty();
    transfer_and_verify(Scheme::Hybrid, &ty, 1);
    transfer_and_verify(Scheme::Hybrid, &ty, 2);
}

#[test]
fn hybrid_beats_pure_schemes_on_mixed_blocks() {
    // §10 future work: per-part selection. On a datatype that is half
    // huge blocks (where packing wastes copies) and half tiny blocks
    // (where per-block writes waste descriptors), Hybrid should beat
    // both pure strategies.
    let ty = mixed_ty();
    let bcspup = transfer_and_verify(Scheme::BcSpup, &ty, 1);
    let multiw = transfer_and_verify(Scheme::MultiW, &ty, 1);
    let hybrid = transfer_and_verify(Scheme::Hybrid, &ty, 1);
    assert!(hybrid < bcspup, "hybrid {hybrid} !< bcspup {bcspup}");
    assert!(hybrid < multiw, "hybrid {hybrid} !< multiw {multiw}");
}

#[test]
fn hybrid_degenerates_gracefully() {
    // All-large blocks: hybrid ~ Multi-W. All-small: hybrid ~ BC-SPUP
    // (plus the layout exchange). Both must stay correct and within a
    // modest factor of the specialist scheme.
    let large = vector_cols(2048); // 8 KiB blocks
    let h = transfer_and_verify(Scheme::Hybrid, &large, 1);
    let m = transfer_and_verify(Scheme::MultiW, &large, 1);
    assert!((h as f64) < m as f64 * 1.10, "hybrid {h} vs multiw {m}");

    let small = vector_cols(16); // 64 B blocks
    let h = transfer_and_verify(Scheme::Hybrid, &small, 1);
    let b = transfer_and_verify(Scheme::BcSpup, &small, 1);
    assert!((h as f64) < b as f64 * 1.5, "hybrid {h} vs bcspup {b}");
}

#[test]
fn determinism_identical_runs_identical_times() {
    let ty = vector_cols(256);
    let a = transfer_and_verify(Scheme::RwgUp, &ty, 1);
    let b = transfer_and_verify(Scheme::RwgUp, &ty, 1);
    assert_eq!(a, b, "simulation must be deterministic");
}
