//! Functional tests for the collective operations, including the
//! reduction family.

use ibdt_datatype::Datatype;
use ibdt_mpicore::{AppOp, Cluster, ClusterSpec, Program, ReduceOp, Scheme};

fn spec(scheme: Scheme, nprocs: u32) -> ClusterSpec {
    let mut s = ClusterSpec {
        nprocs,
        ..Default::default()
    };
    s.mpi.scheme = scheme;
    s
}

fn ints_to_bytes(v: &[i32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn bytes_to_ints(b: &[u8]) -> Vec<i32> {
    b.chunks_exact(4)
        .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

#[test]
fn gather_collects_blocks_at_root() {
    let n = 5u32;
    let count = 1000u64;
    let ty = Datatype::int();
    for root in [0u32, 3] {
        let mut cluster = Cluster::new(spec(Scheme::BcSpup, n));
        let bytes = count * 4;
        let mut sbufs = Vec::new();
        for r in 0..n {
            let sb = cluster.alloc(r, bytes, 4096);
            let vals: Vec<i32> = (0..count as i32).map(|i| i + 10_000 * r as i32).collect();
            cluster.write_mem(r, sb, &ints_to_bytes(&vals));
            sbufs.push(sb);
        }
        let rbuf = cluster.alloc(root, bytes * n as u64, 4096);
        let progs: Vec<Program> = (0..n)
            .map(|r| {
                vec![AppOp::Gather {
                    root,
                    sbuf: sbufs[r as usize],
                    rbuf: if r == root { rbuf } else { 0 },
                    count,
                    ty: ty.clone(),
                }]
            })
            .collect();
        cluster.run(progs);
        let got = bytes_to_ints(&cluster.read_mem(root, rbuf, bytes * n as u64));
        for r in 0..n {
            for i in 0..count as usize {
                assert_eq!(
                    got[r as usize * count as usize + i],
                    i as i32 + 10_000 * r as i32,
                    "root {root}, block {r}, element {i}"
                );
            }
        }
    }
}

#[test]
fn scatter_distributes_blocks() {
    let n = 4u32;
    let count = 512u64;
    let ty = Datatype::int();
    let mut cluster = Cluster::new(spec(Scheme::BcSpup, n));
    let bytes = count * 4;
    let sbuf = cluster.alloc(0, bytes * n as u64, 4096);
    let all: Vec<i32> = (0..(count * n as u64) as i32).collect();
    cluster.write_mem(0, sbuf, &ints_to_bytes(&all));
    let mut rbufs = Vec::new();
    for r in 0..n {
        rbufs.push(cluster.alloc(r, bytes, 4096));
    }
    let progs: Vec<Program> = (0..n)
        .map(|r| {
            vec![AppOp::Scatter {
                root: 0,
                sbuf: if r == 0 { sbuf } else { 0 },
                rbuf: rbufs[r as usize],
                count,
                ty: ty.clone(),
            }]
        })
        .collect();
    cluster.run(progs);
    for r in 0..n {
        let got = bytes_to_ints(&cluster.read_mem(r, rbufs[r as usize], bytes));
        let want: Vec<i32> = (0..count as i32)
            .map(|i| i + (r as i32 * count as i32))
            .collect();
        assert_eq!(got, want, "rank {r} block");
    }
}

#[test]
fn reduce_sums_across_ranks() {
    let n = 6u32;
    let count = 2048u64; // 8 KiB -> rendezvous path carries partials
    let ty = Datatype::int();
    for root in [0u32, 4] {
        let mut cluster = Cluster::new(spec(Scheme::BcSpup, n));
        let bytes = count * 4;
        let mut sbufs = Vec::new();
        let mut scratches = Vec::new();
        for r in 0..n {
            let sb = cluster.alloc(r, bytes, 4096);
            let vals: Vec<i32> = (0..count as i32).map(|i| i * (r as i32 + 1)).collect();
            cluster.write_mem(r, sb, &ints_to_bytes(&vals));
            sbufs.push(sb);
            scratches.push(cluster.alloc(r, bytes, 4096));
        }
        let rbuf = cluster.alloc(root, bytes, 4096);
        let progs: Vec<Program> = (0..n)
            .map(|r| {
                vec![AppOp::Reduce {
                    root,
                    sbuf: sbufs[r as usize],
                    rbuf: if r == root { rbuf } else { 0 },
                    scratch: scratches[r as usize],
                    count,
                    ty: ty.clone(),
                    op: ReduceOp::Sum,
                }]
            })
            .collect();
        cluster.run(progs);
        let got = bytes_to_ints(&cluster.read_mem(root, rbuf, bytes));
        // sum over r of i*(r+1) = i * n(n+1)/2.
        let factor = (n * (n + 1) / 2) as i32;
        for (i, &v) in got.iter().enumerate() {
            assert_eq!(v, i as i32 * factor, "element {i} at root {root}");
        }
    }
}

#[test]
fn reduce_max_doubles() {
    let n = 3u32;
    let count = 64u64;
    let ty = Datatype::double();
    let mut cluster = Cluster::new(spec(Scheme::BcSpup, n));
    let bytes = count * 8;
    let mut sbufs = Vec::new();
    let mut scratches = Vec::new();
    for r in 0..n {
        let sb = cluster.alloc(r, bytes, 4096);
        let vals: Vec<u8> = (0..count)
            .flat_map(|i| (((i as f64) - r as f64 * 10.0).sin()).to_le_bytes())
            .collect();
        cluster.write_mem(r, sb, &vals);
        sbufs.push(sb);
        scratches.push(cluster.alloc(r, bytes, 4096));
    }
    let rbuf = cluster.alloc(0, bytes, 4096);
    let progs: Vec<Program> = (0..n)
        .map(|r| {
            vec![AppOp::Reduce {
                root: 0,
                sbuf: sbufs[r as usize],
                rbuf: if r == 0 { rbuf } else { 0 },
                scratch: scratches[r as usize],
                count,
                ty: ty.clone(),
                op: ReduceOp::Max,
            }]
        })
        .collect();
    // Capture inputs before the run mutates accumulators.
    let inputs: Vec<Vec<f64>> = (0..n)
        .map(|r| {
            cluster
                .read_mem(r, sbufs[r as usize], bytes)
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect()
        })
        .collect();
    cluster.run(progs);
    let got: Vec<f64> = cluster
        .read_mem(0, rbuf, bytes)
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    for i in 0..count as usize {
        let want = (0..n as usize)
            .map(|r| inputs[r][i])
            .fold(f64::MIN, f64::max);
        assert_eq!(got[i], want, "element {i}");
    }
}

#[test]
fn allreduce_gives_everyone_the_sum() {
    let n = 4u32;
    let count = 1024u64;
    let ty = Datatype::int();
    let mut cluster = Cluster::new(spec(Scheme::MultiW, n));
    let bytes = count * 4;
    let mut sbufs = Vec::new();
    let mut rbufs = Vec::new();
    let mut scratches = Vec::new();
    for r in 0..n {
        let sb = cluster.alloc(r, bytes, 4096);
        let vals: Vec<i32> = (0..count as i32).map(|i| i + r as i32).collect();
        cluster.write_mem(r, sb, &ints_to_bytes(&vals));
        sbufs.push(sb);
        rbufs.push(cluster.alloc(r, bytes, 4096));
        scratches.push(cluster.alloc(r, bytes, 4096));
    }
    let progs: Vec<Program> = (0..n)
        .map(|r| {
            vec![AppOp::Allreduce {
                sbuf: sbufs[r as usize],
                rbuf: rbufs[r as usize],
                scratch: scratches[r as usize],
                count,
                ty: ty.clone(),
                op: ReduceOp::Sum,
            }]
        })
        .collect();
    cluster.run(progs);
    for r in 0..n {
        let got = bytes_to_ints(&cluster.read_mem(r, rbufs[r as usize], bytes));
        for (i, &v) in got.iter().enumerate() {
            // sum over r of (i + r) = n*i + n(n-1)/2.
            let want = n as i32 * i as i32 + (n * (n - 1) / 2) as i32;
            assert_eq!(v, want, "rank {r} element {i}");
        }
    }
}

#[test]
fn gather_with_derived_datatype() {
    // Gather where each contribution is a noncontiguous vector; the
    // root's receive blocks are spaced by the type extent.
    let n = 3u32;
    let ty = Datatype::vector(16, 2, 8, &Datatype::int()).unwrap();
    let span = ty.extent() as u64;
    let mut cluster = Cluster::new(spec(Scheme::BcSpup, n));
    let mut sbufs = Vec::new();
    for r in 0..n {
        let sb = cluster.alloc(r, span + 64, 4096);
        cluster.fill_pattern(r, sb, span, 50 + r as u64);
        sbufs.push(sb);
    }
    let rbuf = cluster.alloc(0, span * n as u64 + 64, 4096);
    let progs: Vec<Program> = (0..n)
        .map(|r| {
            vec![AppOp::Gather {
                root: 0,
                sbuf: sbufs[r as usize],
                rbuf: if r == 0 { rbuf } else { 0 },
                count: 1,
                ty: ty.clone(),
            }]
        })
        .collect();
    cluster.run(progs);
    for r in 0..n {
        let src = cluster.read_mem(r, sbufs[r as usize], span);
        let dst = cluster.read_mem(0, rbuf + r as u64 * span, span);
        for (off, len) in ty.flat().repeat(1) {
            let o = off as usize;
            assert_eq!(
                &dst[o..o + len as usize],
                &src[o..o + len as usize],
                "rank {r}"
            );
        }
    }
}

#[test]
fn alltoallv_ragged_counts() {
    use ibdt_mpicore::coll;
    // Rank i sends (i + j + 1) ints to rank j; verify with direct ops.
    let n = 4u32;
    let ty = Datatype::int();
    let mut cluster = Cluster::new(spec(Scheme::BcSpup, n));
    let scount = |i: u32, j: u32| (i + j + 1) as u64 * 200;
    let mut sbufs = Vec::new();
    let mut rbufs = Vec::new();
    let mut sdispls_all = Vec::new();
    let mut rdispls_all = Vec::new();
    let mut scounts_all = Vec::new();
    let mut rcounts_all = Vec::new();
    for i in 0..n {
        let scounts: Vec<u64> = (0..n).map(|j| scount(i, j)).collect();
        let rcounts: Vec<u64> = (0..n).map(|j| scount(j, i)).collect();
        let mut sdispls = Vec::new();
        let mut rdispls = Vec::new();
        let mut acc = 0i64;
        for &c in &scounts {
            sdispls.push(acc);
            acc += c as i64 * 4;
        }
        let stotal = acc as u64;
        acc = 0;
        for &c in &rcounts {
            rdispls.push(acc);
            acc += c as i64 * 4;
        }
        let rtotal = acc as u64;
        let sb = cluster.alloc(i, stotal + 64, 4096);
        let rb = cluster.alloc(i, rtotal + 64, 4096);
        cluster.fill_pattern(i, sb, stotal, 900 + i as u64);
        sbufs.push(sb);
        rbufs.push(rb);
        sdispls_all.push(sdispls);
        rdispls_all.push(rdispls);
        scounts_all.push(scounts);
        rcounts_all.push(rcounts);
    }
    let progs: Vec<Program> = (0..n)
        .map(|i| {
            coll::alltoallv(
                i,
                n,
                sbufs[i as usize],
                &sdispls_all[i as usize],
                &scounts_all[i as usize],
                &ty,
                rbufs[i as usize],
                &rdispls_all[i as usize],
                &rcounts_all[i as usize],
                &ty,
            )
        })
        .collect();
    cluster.run(progs);
    for i in 0..n {
        for j in 0..n {
            let len = scount(i, j) * 4;
            let sent = cluster.read_mem(
                i,
                (sbufs[i as usize] as i64 + sdispls_all[i as usize][j as usize]) as u64,
                len,
            );
            let got = cluster.read_mem(
                j,
                (rbufs[j as usize] as i64 + rdispls_all[j as usize][i as usize]) as u64,
                len,
            );
            assert_eq!(got, sent, "block {i} -> {j}");
        }
    }
}

#[test]
fn gatherv_variable_contributions() {
    use ibdt_mpicore::coll;
    let n = 5u32;
    let ty = Datatype::int();
    let mut cluster = Cluster::new(spec(Scheme::BcSpup, n));
    let counts: Vec<u64> = (0..n).map(|r| (r as u64 + 1) * 300).collect();
    let mut displs = Vec::new();
    let mut acc = 0i64;
    for &c in &counts {
        displs.push(acc);
        acc += c as i64 * 4;
    }
    let total = acc as u64;
    let mut sbufs = Vec::new();
    for r in 0..n {
        let sb = cluster.alloc(r, counts[r as usize] * 4 + 64, 4096);
        cluster.fill_pattern(r, sb, counts[r as usize] * 4, 40 + r as u64);
        sbufs.push(sb);
    }
    let rbuf = cluster.alloc(2, total + 64, 4096);
    let progs: Vec<Program> = (0..n)
        .map(|r| {
            coll::gatherv(
                r,
                n,
                2,
                sbufs[r as usize],
                counts[r as usize],
                if r == 2 { rbuf } else { 0 },
                &displs,
                &counts,
                &ty,
            )
        })
        .collect();
    cluster.run(progs);
    for r in 0..n {
        let sent = cluster.read_mem(r, sbufs[r as usize], counts[r as usize] * 4);
        let got = cluster.read_mem(
            2,
            (rbuf as i64 + displs[r as usize]) as u64,
            counts[r as usize] * 4,
        );
        assert_eq!(got, sent, "contribution from rank {r}");
    }
}
