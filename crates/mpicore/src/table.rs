//! Paged, allocation-free lookup tables for in-flight message records.
//!
//! The progress engine used to key active rendezvous messages in
//! `HashMap<(peer, seq), _>`, paying a SipHash round per protocol step
//! and a node allocation per message. Both key spaces are small and
//! structured: peers are dense rank ids fixed at cluster construction,
//! and sequence numbers are per-peer monotonic, so the set of in-flight
//! seqs per peer is a small sorted window. [`MsgTable`] exploits that:
//! records live in a generational [`Slab`] (slot reuse, stable
//! handles), and a per-peer sorted `(seq, handle)` index — a `Vec`
//! whose capacity is retained across messages — maps keys to slots
//! with a binary search instead of a hash. The per-peer structures sit
//! in [`PagedTable`]s, so a rank that talks to a handful of peers out
//! of thousands holds per-peer state only for the pages it touches.
//!
//! The method names mirror `HashMap`'s (`insert` / `remove` / `get` /
//! `get_mut` / `contains_key`), so the protocol code reads unchanged.
//!
//! [`ImmMap`] is the same idea for the immediate-data demux
//! (`(peer, seq16)` → full seq): a per-peer scan of the tiny in-flight
//! window, no hashing, no steady-state allocation.

use ibdt_simcore::paged::PagedTable;
use ibdt_simcore::slab::{Handle, Slab};

/// A `(peer, seq)`-keyed table of in-flight message records. See the
/// module docs.
#[derive(Debug)]
pub struct MsgTable<T> {
    slab: Slab<T>,
    /// Per-peer sorted `(seq, handle)` windows. Seqs are per-peer
    /// monotonic, so insertion is almost always a push at the tail;
    /// the vectors keep their capacity as messages retire. Paged: a
    /// peer's window exists only once a message for it is inserted, so
    /// the table's footprint follows the active peer set, not nprocs.
    index: PagedTable<Vec<(u64, Handle)>>,
}

impl<T> MsgTable<T> {
    /// An empty table for `nprocs` peers.
    pub fn new(nprocs: usize) -> Self {
        MsgTable {
            slab: Slab::new(),
            index: PagedTable::new(nprocs),
        }
    }

    fn window(&self, peer: u32) -> &[(u64, Handle)] {
        self.index.get(peer as usize)
    }

    /// Empties the table, keeping the slab's and the per-peer windows'
    /// capacity (world recycling).
    pub fn reset(&mut self) {
        self.slab.clear();
        self.index.reset_entries(|w| w.clear());
    }

    /// Inserts a record, returning the previous one under the same key
    /// (the remove-mutate-reinsert pattern the protocol uses).
    pub fn insert(&mut self, key: (u32, u64), value: T) -> Option<T> {
        let (peer, seq) = key;
        match self.window(peer).binary_search_by_key(&seq, |e| e.0) {
            Ok(pos) => {
                let h = self.index[peer as usize][pos].1;
                let old = self.slab.remove(h);
                let nh = self.slab.insert(value);
                self.index[peer as usize][pos].1 = nh;
                old
            }
            Err(pos) => {
                let h = self.slab.insert(value);
                self.index[peer as usize].insert(pos, (seq, h));
                None
            }
        }
    }

    /// Removes and returns the record under `key`.
    pub fn remove(&mut self, key: &(u32, u64)) -> Option<T> {
        let (peer, seq) = *key;
        let pos = self.window(peer).binary_search_by_key(&seq, |e| e.0).ok()?;
        let (_, h) = self.index[peer as usize].remove(pos);
        self.slab.remove(h)
    }

    /// Shared access to the record under `key`.
    pub fn get(&self, key: &(u32, u64)) -> Option<&T> {
        let (peer, seq) = *key;
        let pos = self.window(peer).binary_search_by_key(&seq, |e| e.0).ok()?;
        self.slab.get(self.index[peer as usize][pos].1)
    }

    /// Mutable access to the record under `key`.
    pub fn get_mut(&mut self, key: &(u32, u64)) -> Option<&mut T> {
        let (peer, seq) = *key;
        let pos = self.window(peer).binary_search_by_key(&seq, |e| e.0).ok()?;
        let h = self.index[peer as usize][pos].1;
        self.slab.get_mut(h)
    }

    /// True when a record exists under `key`.
    pub fn contains_key(&self, key: &(u32, u64)) -> bool {
        let (peer, seq) = *key;
        self.window(peer)
            .binary_search_by_key(&seq, |e| e.0)
            .is_ok()
    }

    /// True when no records are live.
    pub fn is_empty(&self) -> bool {
        self.slab.is_empty()
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.slab.len()
    }
}

/// Immediate-data demux: `(peer, seq16)` → full sequence number. The
/// in-flight window per peer is tiny, so lookups are a linear scan of
/// a capacity-retaining `Vec` — no hashing, no steady-state
/// allocation. Never iterated, so removal order is free to be
/// `swap_remove`.
#[derive(Debug)]
pub struct ImmMap {
    slots: PagedTable<Vec<(u16, u64)>>,
}

impl ImmMap {
    /// An empty demux table for `nprocs` peers.
    pub fn new(nprocs: usize) -> Self {
        ImmMap {
            slots: PagedTable::new(nprocs),
        }
    }

    /// Empties the demux table, keeping window capacity (world
    /// recycling).
    pub fn reset(&mut self) {
        self.slots.reset_entries(|w| w.clear());
    }

    /// Registers `seq16 → seq` for `peer`.
    pub fn insert(&mut self, key: (u32, u16), seq: u64) {
        let (peer, seq16) = key;
        let w = &mut self.slots[peer as usize];
        if let Some(e) = w.iter_mut().find(|e| e.0 == seq16) {
            e.1 = seq;
        } else {
            w.push((seq16, seq));
        }
    }

    /// Resolves `seq16` for `peer`.
    pub fn get(&self, key: &(u32, u16)) -> Option<&u64> {
        let (peer, seq16) = *key;
        self.slots[peer as usize]
            .iter()
            .find(|e| e.0 == seq16)
            .map(|e| &e.1)
    }

    /// Drops the mapping for `(peer, seq16)`.
    pub fn remove(&mut self, key: &(u32, u16)) -> Option<u64> {
        let (peer, seq16) = *key;
        let w = &mut self.slots[peer as usize];
        let pos = w.iter().position(|e| e.0 == seq16)?;
        Some(w.swap_remove(pos).1)
    }
}

/// Per-peer optional state: a rank-indexed paged table of `Option<T>`
/// standing in for a `HashMap<u32, T>` whose key space is the fixed
/// peer set. Lookups are a couple of indexed loads; no hashing
/// anywhere, and slots materialize (in pages) only for peers actually
/// inserted.
#[derive(Debug)]
pub struct PeerMap<T> {
    slots: PagedTable<Option<T>>,
}

impl<T> PeerMap<T> {
    /// An empty map for `nprocs` peers.
    pub fn new(nprocs: usize) -> Self {
        PeerMap {
            slots: PagedTable::new(nprocs),
        }
    }

    /// Empties the map, keeping page storage (world recycling).
    pub fn reset(&mut self) {
        self.slots.reset_entries(|o| *o = None);
    }

    /// Shared access to `peer`'s entry.
    pub fn get(&self, peer: &u32) -> Option<&T> {
        self.slots.get(*peer as usize).as_ref()
    }

    /// Mutable access to `peer`'s entry.
    pub fn get_mut(&mut self, peer: &u32) -> Option<&mut T> {
        self.slots
            .get_mut_touched(*peer as usize)
            .and_then(|o| o.as_mut())
    }

    /// Sets `peer`'s entry, returning the previous one.
    pub fn insert(&mut self, peer: u32, value: T) -> Option<T> {
        self.slots[peer as usize].replace(value)
    }

    /// Clears and returns `peer`'s entry.
    pub fn remove(&mut self, peer: &u32) -> Option<T> {
        self.slots
            .get_mut_touched(*peer as usize)
            .and_then(|o| o.take())
    }

    /// Mutable access to `peer`'s entry, default-constructing it first
    /// when absent (the `entry(peer).or_default()` idiom).
    pub fn get_or_default(&mut self, peer: u32) -> &mut T
    where
        T: Default,
    {
        self.slots[peer as usize].get_or_insert_with(T::default)
    }
}

/// Completed-sequence tracking per peer: a watermark plus a small
/// sorted window of out-of-order completions above it.
///
/// The former `HashSet<(peer, seq)>` grew without bound (entries were
/// never removed) and hashed on every probe. Sequence numbers are
/// per-peer monotonic and complete almost in order, so nearly every
/// insert just advances the watermark; the window vector handles
/// stragglers and keeps its capacity, making steady-state inserts and
/// probes allocation- and hash-free.
#[derive(Debug)]
pub struct DoneSet {
    peers: PagedTable<DonePeer>,
}

#[derive(Debug, Default)]
struct DonePeer {
    /// Every seq `< watermark` is done.
    watermark: u64,
    /// Done seqs `>= watermark`, sorted ascending.
    above: Vec<u64>,
}

impl DoneSet {
    /// An empty set for `nprocs` peers.
    pub fn new(nprocs: usize) -> Self {
        DoneSet {
            peers: PagedTable::new(nprocs),
        }
    }

    /// Empties the set, keeping window capacity (world recycling).
    pub fn reset(&mut self) {
        self.peers.reset_entries(|p| {
            p.watermark = 0;
            p.above.clear();
        });
    }

    /// Records `(peer, seq)` as done.
    pub fn insert(&mut self, key: (u32, u64)) {
        let (peer, seq) = key;
        let p = &mut self.peers[peer as usize];
        if seq < p.watermark {
            return;
        }
        if seq == p.watermark {
            p.watermark += 1;
            // Absorb any stragglers now contiguous with the watermark.
            let mut k = 0;
            while k < p.above.len() && p.above[k] == p.watermark {
                p.watermark += 1;
                k += 1;
            }
            p.above.drain(..k);
            return;
        }
        if let Err(pos) = p.above.binary_search(&seq) {
            p.above.insert(pos, seq);
        }
    }

    /// True when `(peer, seq)` was recorded as done.
    pub fn contains(&self, key: &(u32, u64)) -> bool {
        let (peer, seq) = *key;
        let p = self.peers.get(peer as usize);
        seq < p.watermark || p.above.binary_search(&seq).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_table_mirrors_hashmap_semantics() {
        let mut t: MsgTable<String> = MsgTable::new(3);
        assert!(t.is_empty());
        assert_eq!(t.insert((1, 10), "a".into()), None);
        assert_eq!(t.insert((1, 11), "b".into()), None);
        assert_eq!(t.insert((2, 10), "c".into()), None);
        assert_eq!(t.len(), 3);
        assert!(t.contains_key(&(1, 10)));
        assert!(!t.contains_key(&(0, 10)));
        assert_eq!(t.get(&(1, 11)).map(String::as_str), Some("b"));
        t.get_mut(&(1, 11)).unwrap().push('!');
        assert_eq!(t.remove(&(1, 11)).as_deref(), Some("b!"));
        assert_eq!(t.remove(&(1, 11)), None);
        // Replacement returns the old value.
        assert_eq!(t.insert((2, 10), "d".into()).as_deref(), Some("c"));
        assert_eq!(t.get(&(2, 10)).map(String::as_str), Some("d"));
    }

    #[test]
    fn msg_table_out_of_order_insert() {
        // Recovery re-drives can reinsert an older seq after newer ones.
        let mut t: MsgTable<u32> = MsgTable::new(2);
        t.insert((0, 5), 50);
        t.insert((0, 7), 70);
        t.insert((0, 6), 60);
        assert_eq!(t.get(&(0, 5)), Some(&50));
        assert_eq!(t.get(&(0, 6)), Some(&60));
        assert_eq!(t.get(&(0, 7)), Some(&70));
    }

    #[test]
    fn msg_table_steady_state_reuses_capacity() {
        let mut t: MsgTable<u64> = MsgTable::new(1);
        for seq in 0..4u64 {
            t.insert((0, seq), seq);
        }
        for seq in 0..4u64 {
            t.remove(&(0, seq));
        }
        let cap = t.index[0].capacity();
        for round in 4..200u64 {
            t.insert((0, round), round);
            assert_eq!(t.remove(&(0, round)), Some(round));
        }
        assert_eq!(t.index[0].capacity(), cap, "steady churn must not grow");
        assert!(t.is_empty());
    }

    #[test]
    fn peer_map_roundtrip() {
        let mut m: PeerMap<Vec<u32>> = PeerMap::new(3);
        assert!(m.get(&1).is_none());
        m.get_or_default(1).push(7);
        assert_eq!(m.get(&1), Some(&vec![7]));
        assert_eq!(m.insert(1, vec![9]), Some(vec![7]));
        m.get_mut(&1).unwrap().push(10);
        assert_eq!(m.remove(&1), Some(vec![9, 10]));
        assert!(m.get(&1).is_none());
    }

    #[test]
    fn done_set_watermark_and_stragglers() {
        let mut d = DoneSet::new(2);
        assert!(!d.contains(&(0, 0)));
        d.insert((0, 0));
        d.insert((0, 1));
        assert!(d.contains(&(0, 0)) && d.contains(&(0, 1)));
        assert!(!d.contains(&(0, 2)));
        // Out-of-order completions park above the watermark...
        d.insert((0, 3));
        d.insert((0, 5));
        assert!(d.contains(&(0, 3)) && d.contains(&(0, 5)));
        assert!(!d.contains(&(0, 2)) && !d.contains(&(0, 4)));
        // ...and are absorbed when the gap fills.
        d.insert((0, 2));
        assert!(d.contains(&(0, 2)));
        assert_eq!(d.peers[0].watermark, 4);
        assert_eq!(d.peers[0].above, vec![5]);
        // Duplicate inserts are idempotent; peers are independent.
        d.insert((0, 3));
        assert!(!d.contains(&(1, 0)));
    }

    #[test]
    fn imm_map_roundtrip() {
        let mut m = ImmMap::new(2);
        m.insert((0, 7), 0x10007);
        m.insert((1, 7), 0x20007);
        assert_eq!(m.get(&(0, 7)), Some(&0x10007));
        assert_eq!(m.get(&(1, 7)), Some(&0x20007));
        assert_eq!(m.remove(&(0, 7)), Some(0x10007));
        assert_eq!(m.get(&(0, 7)), None);
        // Re-registering a wrapped seq16 overwrites.
        m.insert((1, 7), 0x30007);
        assert_eq!(m.get(&(1, 7)), Some(&0x30007));
    }
}
