#![warn(missing_docs)]
//! MPI runtime over simulated InfiniBand, implementing the paper's
//! datatype communication schemes.
//!
//! The runtime mirrors MVAPICH's structure (§3.1): an **eager** protocol
//! for small messages (with the direct pack-into-eager-buffer
//! optimization of §7.1) and a **rendezvous** protocol for large ones,
//! where the datatype path is one of:
//!
//! * [`Scheme::Generic`] — the MPICH-derived pack/whole-transfer/unpack
//!   baseline of Fig. 1, with dynamically allocated pack/unpack buffers,
//! * [`Scheme::BcSpup`] — Buffer-Centric Segment Pack/Unpack (§4.2):
//!   pre-registered segment pools and pipelined pack ∥ wire ∥ unpack,
//! * [`Scheme::RwgUp`] — RDMA Write Gather with Unpack (§5.1): gather
//!   writes straight out of the user buffer, segment unpack on the
//!   receiver,
//! * [`Scheme::PRrs`] — Pack with RDMA Read Scatter (§5.2):
//!   receiver-driven reads scattered into the user buffer,
//! * [`Scheme::MultiW`] — Multiple RDMA Writes (§5.3): zero-copy, one
//!   write per contiguous block pair, with the receiver's layout shipped
//!   through the versioned datatype cache (§5.4.2),
//! * [`Scheme::Adaptive`] — the dynamic choice of §6.
//!
//! Applications are per-rank programs of [`AppOp`]s interpreted inside
//! the simulation; [`Cluster::run`] drives everything to quiescence and
//! returns timing + counter statistics. All data movement is real:
//! after a run, the receiver's simulated memory holds the transferred
//! bytes.

pub mod cluster;
pub mod coll;
pub mod config;
pub mod error;
pub mod msg;
pub mod plan;
pub mod pool;
pub mod progress;
pub mod rank;
pub mod rma;
pub mod stats;
pub mod table;

pub use cluster::{AppOp, Cluster, ClusterSpec, Program, ReduceOp};
pub use config::{MpiConfig, Scheme};
pub use error::MpiError;
pub use ibdt_ibsim::{
    FabricStats, FaultPlan, FaultRateError, LinkFault, NodeFault, ShmConfig, ShmConfigError,
    ShmCopyMode, TransportClass, TransportConfig,
};
pub use stats::RunStats;
