//! Pre-registered segment buffer pools (§4.2, §7.2).
//!
//! One large buffer is allocated page-aligned and registered once at MPI
//! initialization, then carved into fixed-size segment buffers handed
//! out LIFO (so recently used — cache-warm — buffers are reused first).
//! Exhaustion is counted; the protocol layer falls back to dynamic
//! allocation + on-the-fly registration, the second solution of §4.3.3.

use ibdt_memreg::{AddressSpace, MemError, RegTable, Va};

/// A pool of equally sized, pre-registered segment buffers.
#[derive(Debug)]
pub struct SegmentPool {
    seg_size: u64,
    base: Va,
    lkey: u32,
    rkey: u32,
    free: Vec<Va>,
    total: usize,
    exhaustions: u64,
    acquires: u64,
}

impl SegmentPool {
    /// Allocates and registers a pool of `total_size` bytes divided into
    /// `seg_size`-byte buffers.
    pub fn new(
        space: &mut AddressSpace,
        regs: &mut RegTable,
        total_size: u64,
        seg_size: u64,
    ) -> Result<Self, MemError> {
        assert!(seg_size > 0, "segment size must be positive");
        let count = total_size / seg_size;
        let base = space.alloc_page_aligned(count * seg_size)?;
        let reg = regs.register(base, count * seg_size);
        // LIFO with the lowest addresses on top.
        let free = (0..count).rev().map(|i| base + i * seg_size).collect();
        Ok(Self {
            seg_size,
            base,
            lkey: reg.lkey,
            rkey: reg.rkey,
            free,
            total: count as usize,
            exhaustions: 0,
            acquires: 0,
        })
    }

    /// Segment size in bytes.
    pub fn seg_size(&self) -> u64 {
        self.seg_size
    }

    /// Local key of the pool registration.
    pub fn lkey(&self) -> u32 {
        self.lkey
    }

    /// Remote key of the pool registration.
    pub fn rkey(&self) -> u32 {
        self.rkey
    }

    /// Takes one segment buffer, or `None` when exhausted.
    pub fn acquire(&mut self) -> Option<Va> {
        match self.free.pop() {
            Some(va) => {
                self.acquires += 1;
                Some(va)
            }
            None => {
                self.exhaustions += 1;
                None
            }
        }
    }

    /// Takes up to `n` segment buffers (fewer when the pool runs dry).
    pub fn acquire_up_to(&mut self, n: usize) -> Vec<Va> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            match self.acquire() {
                Some(va) => out.push(va),
                None => break,
            }
        }
        out
    }

    /// Returns a segment buffer to the pool.
    pub fn release(&mut self, va: Va) {
        debug_assert!(
            va >= self.base
                && va < self.base + (self.total as u64) * self.seg_size
                && (va - self.base).is_multiple_of(self.seg_size),
            "released address is not a pool segment"
        );
        debug_assert!(!self.free.contains(&va), "double release of pool segment");
        self.free.push(va);
    }

    /// Buffers currently available.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Total buffers in the pool.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Times [`Self::acquire`] found the pool empty.
    pub fn exhaustions(&self) -> u64 {
        self.exhaustions
    }

    /// Total successful acquires.
    pub fn acquires(&self) -> u64 {
        self.acquires
    }
}

/// Reusable host-side scratch buffers for the zero-allocation hot
/// path: packed-byte staging (`Vec<u8>`), block/SGE lists
/// (`Vec<(Va, u64)>`), and block-length lists (`Vec<u64>`). Buffers
/// are taken, used, and returned; their capacity survives, so
/// steady-state sends stop allocating after the first few messages.
/// Purely host-side — no modelled cost, no effect on the virtual
/// clock.
#[derive(Debug, Default)]
pub struct ScratchPool {
    bytes: Vec<Vec<u8>>,
    blocks: Vec<Vec<(Va, u64)>>,
    lens: Vec<Vec<u64>>,
    reuses: u64,
    allocs: u64,
}

impl ScratchPool {
    /// Creates an empty scratch pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a zeroed byte buffer of exactly `len` bytes, reusing a
    /// returned buffer's capacity when one is available.
    pub fn take_bytes(&mut self, len: usize) -> Vec<u8> {
        match self.bytes.pop() {
            Some(mut v) => {
                self.reuses += 1;
                v.clear();
                v.resize(len, 0);
                v
            }
            None => {
                self.allocs += 1;
                vec![0u8; len]
            }
        }
    }

    /// Returns a byte buffer to the pool.
    pub fn put_bytes(&mut self, v: Vec<u8>) {
        if v.capacity() > 0 {
            self.bytes.push(v);
        }
    }

    /// Takes an empty block/SGE list, reusing returned capacity.
    pub fn take_blocks(&mut self) -> Vec<(Va, u64)> {
        match self.blocks.pop() {
            Some(mut v) => {
                self.reuses += 1;
                v.clear();
                v
            }
            None => {
                self.allocs += 1;
                Vec::new()
            }
        }
    }

    /// Returns a block/SGE list to the pool.
    pub fn put_blocks(&mut self, v: Vec<(Va, u64)>) {
        if v.capacity() > 0 {
            self.blocks.push(v);
        }
    }

    /// Takes an empty block-length list, reusing returned capacity.
    pub fn take_lens(&mut self) -> Vec<u64> {
        match self.lens.pop() {
            Some(mut v) => {
                self.reuses += 1;
                v.clear();
                v
            }
            None => {
                self.allocs += 1;
                Vec::new()
            }
        }
    }

    /// Returns a block-length list to the pool.
    pub fn put_lens(&mut self, v: Vec<u64>) {
        if v.capacity() > 0 {
            self.lens.push(v);
        }
    }

    /// Times a take was served from a returned buffer.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Times a take had to allocate fresh.
    pub fn allocs(&self) -> u64 {
        self.allocs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(total: u64, seg: u64) -> (AddressSpace, RegTable, SegmentPool) {
        let mut space = AddressSpace::new(1 << 24);
        let mut regs = RegTable::new();
        let pool = SegmentPool::new(&mut space, &mut regs, total, seg).unwrap();
        (space, regs, pool)
    }

    #[test]
    fn pool_carves_expected_count() {
        let (_, _, pool) = fixture(1 << 20, 128 * 1024);
        assert_eq!(pool.total(), 8);
        assert_eq!(pool.available(), 8);
    }

    #[test]
    fn acquire_release_cycle() {
        let (_, _, mut pool) = fixture(4 * 4096, 4096);
        let a = pool.acquire().unwrap();
        let b = pool.acquire().unwrap();
        assert_ne!(a, b);
        assert_eq!(pool.available(), 2);
        pool.release(a);
        assert_eq!(pool.available(), 3);
        // LIFO: the released buffer comes back first.
        assert_eq!(pool.acquire().unwrap(), a);
    }

    #[test]
    fn exhaustion_counted() {
        let (_, _, mut pool) = fixture(2 * 4096, 4096);
        assert!(pool.acquire().is_some());
        assert!(pool.acquire().is_some());
        assert!(pool.acquire().is_none());
        assert!(pool.acquire().is_none());
        assert_eq!(pool.exhaustions(), 2);
        assert_eq!(pool.acquires(), 2);
    }

    #[test]
    fn acquire_up_to_partial() {
        let (_, _, mut pool) = fixture(3 * 4096, 4096);
        let got = pool.acquire_up_to(5);
        assert_eq!(got.len(), 3);
        assert_eq!(pool.exhaustions(), 1);
    }

    #[test]
    fn segments_are_disjoint_and_registered() {
        let (_, regs, mut pool) = fixture(8 * 4096, 4096);
        let mut seen = std::collections::HashSet::new();
        while let Some(va) = pool.acquire() {
            assert!(seen.insert(va), "duplicate segment");
            regs.check(pool.lkey(), va, 4096).unwrap();
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "not a pool segment")]
    fn release_of_foreign_address_panics_in_debug() {
        let (_, _, mut pool) = fixture(2 * 4096, 4096);
        pool.release(0xDEAD_BEEF);
    }
}

#[cfg(test)]
mod scratch_tests {
    use super::ScratchPool;

    #[test]
    fn bytes_round_trip_reuses_capacity() {
        let mut p = ScratchPool::new();
        let a = p.take_bytes(64);
        assert_eq!(a.len(), 64);
        assert_eq!((p.reuses(), p.allocs()), (0, 1));
        p.put_bytes(a);
        let b = p.take_bytes(32);
        assert_eq!(b.len(), 32);
        assert!(b.iter().all(|&x| x == 0), "reused buffer is zeroed");
        assert_eq!((p.reuses(), p.allocs()), (1, 1));
    }

    #[test]
    fn blocks_round_trip() {
        let mut p = ScratchPool::new();
        let mut v = p.take_blocks();
        v.push((0x1000, 8));
        p.put_blocks(v);
        let w = p.take_blocks();
        assert!(w.is_empty(), "reused list comes back cleared");
        assert!(w.capacity() >= 1, "capacity survives the round trip");
        assert_eq!((p.reuses(), p.allocs()), (1, 1));
    }

    #[test]
    fn lens_round_trip() {
        let mut p = ScratchPool::new();
        let mut v = p.take_lens();
        v.push(512);
        p.put_lens(v);
        let w = p.take_lens();
        assert!(w.is_empty(), "reused list comes back cleared");
        assert!(w.capacity() >= 1, "capacity survives the round trip");
        assert_eq!((p.reuses(), p.allocs()), (1, 1));
    }

    #[test]
    fn empty_buffers_are_not_pooled() {
        let mut p = ScratchPool::new();
        p.put_bytes(Vec::new());
        p.put_blocks(Vec::new());
        p.put_lens(Vec::new());
        let _ = p.take_bytes(1);
        assert_eq!((p.reuses(), p.allocs()), (0, 1));
    }
}
