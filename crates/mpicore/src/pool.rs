//! Pre-registered segment buffer pools (§4.2, §7.2).
//!
//! One large buffer is allocated page-aligned and registered once at MPI
//! initialization, then carved into fixed-size segment buffers handed
//! out LIFO (so recently used — cache-warm — buffers are reused first).
//! Exhaustion is counted; the protocol layer falls back to dynamic
//! allocation + on-the-fly registration, the second solution of §4.3.3.

use ibdt_memreg::{AddressSpace, MemError, RegTable, Va};
use std::collections::HashSet;

/// A pack/unpack staging buffer (pool segment or dynamic fallback).
#[derive(Debug, Clone, Copy)]
pub(crate) struct StageBuf {
    pub va: Va,
    pub len: u64,
    pub lkey: u32,
    pub rkey: u32,
    /// True when allocated dynamically (fallback path, §4.3.3).
    pub dynamic: bool,
}

/// A pool of equally sized, pre-registered segment buffers.
#[derive(Debug)]
pub struct SegmentPool {
    seg_size: u64,
    base: Va,
    lkey: u32,
    rkey: u32,
    free: Vec<Va>,
    total: usize,
    exhaustions: u64,
    acquires: u64,
}

impl SegmentPool {
    /// Allocates and registers a pool of `total_size` bytes divided into
    /// `seg_size`-byte buffers.
    pub fn new(
        space: &mut AddressSpace,
        regs: &mut RegTable,
        total_size: u64,
        seg_size: u64,
    ) -> Result<Self, MemError> {
        assert!(seg_size > 0, "segment size must be positive");
        let count = total_size / seg_size;
        let base = space.alloc_page_aligned(count * seg_size)?;
        let reg = regs.register(base, count * seg_size);
        // LIFO with the lowest addresses on top. The list itself is
        // recycled through the thread-local spare so sweeps that build
        // one cluster per point stop paying for it after the first.
        let mut free: Vec<Va> = SPARE
            .try_with(|s| s.borrow_mut().vas.pop())
            .ok()
            .flatten()
            .unwrap_or_default();
        free.clear();
        free.extend((0..count).rev().map(|i| base + i * seg_size));
        Ok(Self {
            seg_size,
            base,
            lkey: reg.lkey,
            rkey: reg.rkey,
            free,
            total: count as usize,
            exhaustions: 0,
            acquires: 0,
        })
    }

    /// Rebuilds the pool against a *reset* address space and
    /// registration table (world recycling): re-allocates the backing
    /// region, re-registers it, and refills the free list in place.
    /// Deterministic allocation makes the base, keys, and free-list
    /// order bit-identical to a freshly built pool's; reusing the free
    /// list's capacity is exactly what `new` does when it draws a
    /// retired list from the thread-local spare.
    pub fn reset(&mut self, space: &mut AddressSpace, regs: &mut RegTable) {
        let count = self.total as u64;
        let base = space
            .alloc_page_aligned(count * self.seg_size)
            .expect("reset address space fits the original pool");
        let reg = regs.register(base, count * self.seg_size);
        self.base = base;
        self.lkey = reg.lkey;
        self.rkey = reg.rkey;
        self.free.clear();
        self.free
            .extend((0..count).rev().map(|i| base + i * self.seg_size));
        self.exhaustions = 0;
        self.acquires = 0;
    }

    /// Segment size in bytes.
    pub fn seg_size(&self) -> u64 {
        self.seg_size
    }

    /// Local key of the pool registration.
    pub fn lkey(&self) -> u32 {
        self.lkey
    }

    /// Remote key of the pool registration.
    pub fn rkey(&self) -> u32 {
        self.rkey
    }

    /// Takes one segment buffer, or `None` when exhausted.
    pub fn acquire(&mut self) -> Option<Va> {
        match self.free.pop() {
            Some(va) => {
                self.acquires += 1;
                Some(va)
            }
            None => {
                self.exhaustions += 1;
                None
            }
        }
    }

    /// Takes up to `n` segment buffers (fewer when the pool runs dry).
    pub fn acquire_up_to(&mut self, n: usize) -> Vec<Va> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            match self.acquire() {
                Some(va) => out.push(va),
                None => break,
            }
        }
        out
    }

    /// Returns a segment buffer to the pool.
    pub fn release(&mut self, va: Va) {
        debug_assert!(
            va >= self.base
                && va < self.base + (self.total as u64) * self.seg_size
                && (va - self.base).is_multiple_of(self.seg_size),
            "released address is not a pool segment"
        );
        debug_assert!(!self.free.contains(&va), "double release of pool segment");
        self.free.push(va);
    }

    /// Buffers currently available.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Total buffers in the pool.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Times [`Self::acquire`] found the pool empty.
    pub fn exhaustions(&self) -> u64 {
        self.exhaustions
    }

    /// Total successful acquires.
    pub fn acquires(&self) -> u64 {
        self.acquires
    }
}

impl Drop for SegmentPool {
    fn drop(&mut self) {
        let _ = SPARE.try_with(|s| {
            let mut s = s.borrow_mut();
            if s.vas.len() < SPARE_CAP {
                let mut v = std::mem::take(&mut self.free);
                v.clear();
                if v.capacity() > 0 {
                    s.vas.push(v);
                }
            }
        });
    }
}

/// Reusable host-side scratch buffers for the zero-allocation hot
/// path: packed-byte staging (`Vec<u8>`), block/SGE lists
/// (`Vec<(Va, u64)>`), and block-length lists (`Vec<u64>`). Buffers
/// are taken, used, and returned; their capacity survives, so
/// steady-state sends stop allocating after the first few messages.
/// Purely host-side — no modelled cost, no effect on the virtual
/// clock.
///
/// When a pool is dropped its buffers spill to a bounded thread-local
/// free-list, and a fresh pool's first takes refill from it — the same
/// recycling the payload slabs use. A parameter sweep that builds one
/// short-lived cluster per point therefore stops paying scratch
/// warm-up allocations after its first iteration.
#[derive(Debug, Default)]
pub struct ScratchPool {
    bytes: Vec<Vec<u8>>,
    blocks: Vec<Vec<(Va, u64)>>,
    lens: Vec<Vec<u64>>,
    stage: Vec<Vec<StageBuf>>,
    sets: Vec<HashSet<u32>>,
    reuses: u64,
    allocs: u64,
}

thread_local! {
    static SPARE: std::cell::RefCell<ScratchSpare> = const {
        std::cell::RefCell::new(ScratchSpare {
            bytes: Vec::new(),
            blocks: Vec::new(),
            lens: Vec::new(),
            stage: Vec::new(),
            vas: Vec::new(),
            sets: Vec::new(),
        })
    };
}

struct ScratchSpare {
    bytes: Vec<Vec<u8>>,
    blocks: Vec<Vec<(Va, u64)>>,
    lens: Vec<Vec<u64>>,
    stage: Vec<Vec<StageBuf>>,
    vas: Vec<Vec<Va>>,
    sets: Vec<HashSet<u32>>,
}

/// Per-kind cap on the thread-local spare list.
const SPARE_CAP: usize = 64;
/// Minimum capacity of a pooled byte buffer (covers every control
/// message wire size).
const MIN_BYTES_CAP: usize = 64;

impl Drop for ScratchPool {
    fn drop(&mut self) {
        // try_with: thread teardown may have destroyed the spare list.
        let _ = SPARE.try_with(|s| {
            let mut s = s.borrow_mut();
            while s.bytes.len() < SPARE_CAP {
                match self.bytes.pop() {
                    Some(v) => s.bytes.push(v),
                    None => break,
                }
            }
            while s.blocks.len() < SPARE_CAP {
                match self.blocks.pop() {
                    Some(v) => s.blocks.push(v),
                    None => break,
                }
            }
            while s.lens.len() < SPARE_CAP {
                match self.lens.pop() {
                    Some(v) => s.lens.push(v),
                    None => break,
                }
            }
            while s.stage.len() < SPARE_CAP {
                match self.stage.pop() {
                    Some(v) => s.stage.push(v),
                    None => break,
                }
            }
            while s.sets.len() < SPARE_CAP {
                match self.sets.pop() {
                    Some(v) => s.sets.push(v),
                    None => break,
                }
            }
        });
    }
}

impl ScratchPool {
    /// Creates an empty scratch pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Zeroes the reuse/alloc counters, keeping pooled buffers (world
    /// recycling). Keeping them is observationally identical to the
    /// drop→spare→take round trip a fresh pool on a warm thread
    /// performs: either way the next take finds a recycled buffer and
    /// counts a reuse.
    pub fn reset_counters(&mut self) {
        self.reuses = 0;
        self.allocs = 0;
    }

    /// Takes a zeroed byte buffer of exactly `len` bytes, reusing a
    /// returned buffer's capacity when one is available.
    pub fn take_bytes(&mut self, len: usize) -> Vec<u8> {
        let spare = |p: &mut Self| {
            p.bytes.extend(
                SPARE
                    .try_with(|s| s.borrow_mut().bytes.pop())
                    .ok()
                    .flatten(),
            )
        };
        if self.bytes.is_empty() {
            spare(self);
        }
        match self.bytes.pop() {
            Some(mut v) => {
                self.reuses += 1;
                v.clear();
                if v.capacity() < len {
                    // Round small buffers up so a 27-byte control
                    // encode and a 36-byte control receive can share
                    // one recycled buffer without regrowing it.
                    v.reserve(len.max(MIN_BYTES_CAP));
                }
                v.resize(len, 0);
                v
            }
            None => {
                self.allocs += 1;
                let mut v = Vec::with_capacity(len.max(MIN_BYTES_CAP));
                v.resize(len, 0);
                v
            }
        }
    }

    /// Returns a byte buffer to the pool.
    pub fn put_bytes(&mut self, v: Vec<u8>) {
        if v.capacity() > 0 {
            self.bytes.push(v);
        }
    }

    /// Takes an empty block/SGE list, reusing returned capacity.
    pub fn take_blocks(&mut self) -> Vec<(Va, u64)> {
        if self.blocks.is_empty() {
            self.blocks.extend(
                SPARE
                    .try_with(|s| s.borrow_mut().blocks.pop())
                    .ok()
                    .flatten(),
            );
        }
        match self.blocks.pop() {
            Some(mut v) => {
                self.reuses += 1;
                v.clear();
                v
            }
            None => {
                self.allocs += 1;
                Vec::new()
            }
        }
    }

    /// Returns a block/SGE list to the pool.
    pub fn put_blocks(&mut self, v: Vec<(Va, u64)>) {
        if v.capacity() > 0 {
            self.blocks.push(v);
        }
    }

    /// Takes an empty block-length list, reusing returned capacity.
    pub fn take_lens(&mut self) -> Vec<u64> {
        if self.lens.is_empty() {
            self.lens
                .extend(SPARE.try_with(|s| s.borrow_mut().lens.pop()).ok().flatten());
        }
        match self.lens.pop() {
            Some(mut v) => {
                self.reuses += 1;
                v.clear();
                v
            }
            None => {
                self.allocs += 1;
                Vec::new()
            }
        }
    }

    /// Returns a block-length list to the pool.
    pub fn put_lens(&mut self, v: Vec<u64>) {
        if v.capacity() > 0 {
            self.lens.push(v);
        }
    }

    /// Takes an empty stage-buffer list, reusing returned capacity.
    pub(crate) fn take_stage(&mut self) -> Vec<StageBuf> {
        if self.stage.is_empty() {
            self.stage.extend(
                SPARE
                    .try_with(|s| s.borrow_mut().stage.pop())
                    .ok()
                    .flatten(),
            );
        }
        match self.stage.pop() {
            Some(mut v) => {
                self.reuses += 1;
                v.clear();
                v
            }
            None => {
                self.allocs += 1;
                Vec::new()
            }
        }
    }

    /// Returns a stage-buffer list for reuse.
    pub(crate) fn put_stage(&mut self, v: Vec<StageBuf>) {
        if v.capacity() > 0 {
            self.stage.push(v);
        }
    }

    /// Takes an empty index set, reusing a returned set's table.
    pub(crate) fn take_set(&mut self) -> HashSet<u32> {
        if self.sets.is_empty() {
            self.sets
                .extend(SPARE.try_with(|s| s.borrow_mut().sets.pop()).ok().flatten());
        }
        match self.sets.pop() {
            Some(mut v) => {
                self.reuses += 1;
                v.clear();
                v
            }
            None => {
                self.allocs += 1;
                HashSet::new()
            }
        }
    }

    /// Returns an index set for reuse.
    pub(crate) fn put_set(&mut self, v: HashSet<u32>) {
        if v.capacity() > 0 {
            self.sets.push(v);
        }
    }

    /// Times a take was served from a returned buffer.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Times a take had to allocate fresh.
    pub fn allocs(&self) -> u64 {
        self.allocs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(total: u64, seg: u64) -> (AddressSpace, RegTable, SegmentPool) {
        let mut space = AddressSpace::new(1 << 24);
        let mut regs = RegTable::new();
        let pool = SegmentPool::new(&mut space, &mut regs, total, seg).unwrap();
        (space, regs, pool)
    }

    #[test]
    fn pool_carves_expected_count() {
        let (_, _, pool) = fixture(1 << 20, 128 * 1024);
        assert_eq!(pool.total(), 8);
        assert_eq!(pool.available(), 8);
    }

    #[test]
    fn acquire_release_cycle() {
        let (_, _, mut pool) = fixture(4 * 4096, 4096);
        let a = pool.acquire().unwrap();
        let b = pool.acquire().unwrap();
        assert_ne!(a, b);
        assert_eq!(pool.available(), 2);
        pool.release(a);
        assert_eq!(pool.available(), 3);
        // LIFO: the released buffer comes back first.
        assert_eq!(pool.acquire().unwrap(), a);
    }

    #[test]
    fn exhaustion_counted() {
        let (_, _, mut pool) = fixture(2 * 4096, 4096);
        assert!(pool.acquire().is_some());
        assert!(pool.acquire().is_some());
        assert!(pool.acquire().is_none());
        assert!(pool.acquire().is_none());
        assert_eq!(pool.exhaustions(), 2);
        assert_eq!(pool.acquires(), 2);
    }

    #[test]
    fn acquire_up_to_partial() {
        let (_, _, mut pool) = fixture(3 * 4096, 4096);
        let got = pool.acquire_up_to(5);
        assert_eq!(got.len(), 3);
        assert_eq!(pool.exhaustions(), 1);
    }

    #[test]
    fn segments_are_disjoint_and_registered() {
        let (_, regs, mut pool) = fixture(8 * 4096, 4096);
        let mut seen = std::collections::HashSet::new();
        while let Some(va) = pool.acquire() {
            assert!(seen.insert(va), "duplicate segment");
            regs.check(pool.lkey(), va, 4096).unwrap();
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "not a pool segment")]
    fn release_of_foreign_address_panics_in_debug() {
        let (_, _, mut pool) = fixture(2 * 4096, 4096);
        pool.release(0xDEAD_BEEF);
    }
}

#[cfg(test)]
mod scratch_tests {
    use super::ScratchPool;

    #[test]
    fn bytes_round_trip_reuses_capacity() {
        let mut p = ScratchPool::new();
        let a = p.take_bytes(64);
        assert_eq!(a.len(), 64);
        assert_eq!((p.reuses(), p.allocs()), (0, 1));
        p.put_bytes(a);
        let b = p.take_bytes(32);
        assert_eq!(b.len(), 32);
        assert!(b.iter().all(|&x| x == 0), "reused buffer is zeroed");
        assert_eq!((p.reuses(), p.allocs()), (1, 1));
    }

    #[test]
    fn blocks_round_trip() {
        let mut p = ScratchPool::new();
        let mut v = p.take_blocks();
        v.push((0x1000, 8));
        p.put_blocks(v);
        let w = p.take_blocks();
        assert!(w.is_empty(), "reused list comes back cleared");
        assert!(w.capacity() >= 1, "capacity survives the round trip");
        assert_eq!((p.reuses(), p.allocs()), (1, 1));
    }

    #[test]
    fn lens_round_trip() {
        let mut p = ScratchPool::new();
        let mut v = p.take_lens();
        v.push(512);
        p.put_lens(v);
        let w = p.take_lens();
        assert!(w.is_empty(), "reused list comes back cleared");
        assert!(w.capacity() >= 1, "capacity survives the round trip");
        assert_eq!((p.reuses(), p.allocs()), (1, 1));
    }

    #[test]
    fn empty_buffers_are_not_pooled() {
        let mut p = ScratchPool::new();
        p.put_bytes(Vec::new());
        p.put_blocks(Vec::new());
        p.put_lens(Vec::new());
        let _ = p.take_bytes(1);
        assert_eq!((p.reuses(), p.allocs()), (0, 1));
    }
}
