//! Typed protocol errors.
//!
//! When fault injection pushes a queue pair into the error state (or a
//! post fails outright), the progress engine does not panic: the
//! affected request is failed with one of these errors, resources are
//! released, and the error is reported per rank through
//! [`RunStats::errors`](crate::stats::RunStats::errors). Faults the RC
//! transport recovers from (retransmits, RNR backoff) never surface
//! here — only unrecoverable ones do.

use ibdt_ibsim::{CqeStatus, PostError};
use std::fmt;

/// An unrecoverable protocol error attributed to one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpiError {
    /// The transport retry budget ran out (persistent loss/corruption);
    /// the queue pair to `peer` is dead.
    RetryExceeded {
        /// Peer of the failed queue pair.
        peer: u32,
        /// Transmission attempts made.
        attempts: u32,
    },
    /// The RNR retry budget ran out (receiver never posted a buffer).
    RnrRetryExceeded {
        /// Peer of the failed queue pair.
        peer: u32,
        /// Delivery attempts made.
        attempts: u32,
    },
    /// A work request was flushed after its queue pair errored.
    Flushed {
        /// Peer of the errored queue pair.
        peer: u32,
    },
    /// The responder rejected a remote access (bad rkey / bounds).
    RemoteAccess {
        /// Responder rank.
        peer: u32,
    },
    /// A local protection or length check failed on a completion.
    LengthError {
        /// Peer of the queue pair.
        peer: u32,
    },
    /// Posting a work request failed synchronously.
    Post {
        /// Intended destination.
        peer: u32,
        /// The verbs-level reason.
        err: PostError,
    },
    /// The rendezvous reply never arrived within the configured timeout
    /// and re-request budget.
    ReplyTimeout {
        /// The unresponsive receiver.
        peer: u32,
        /// Message sequence number.
        seq: u64,
    },
    /// A control message failed to decode (corrupted past the ICRC, or
    /// a protocol bug).
    MalformedCtrl {
        /// Sender of the bad message.
        peer: u32,
    },
    /// A control message or segment referenced a message this rank does
    /// not know (stale duplicate after a failure).
    UnknownMessage {
        /// Sender of the message.
        peer: u32,
        /// Referenced sequence number (or 16-bit imm tag).
        seq: u64,
    },
    /// The peer's node suffered a crash-stop failure: transport
    /// failures to it escalated through the connection manager while
    /// the membership view reports the node dead with no restart
    /// pending. Distinct from the transient [`MpiError::ConnectionLost`]
    /// — a `PeerFailed` connection is never coming back, so callers
    /// should drain (fail dependent work typed) rather than retry.
    PeerFailed {
        /// The crashed rank.
        peer: u32,
    },
    /// The connection manager exhausted its re-establishment budget:
    /// the queue pair to `peer` kept dying faster than it could be
    /// recovered.
    ConnectionLost {
        /// Peer of the unrecoverable connection.
        peer: u32,
        /// Re-establishment attempts made.
        attempts: u32,
    },
    /// A registration the protocol relied on was missing or evicted
    /// (pin-down cache race, §5.4.2) and no fallback path applied.
    Registration {
        /// Peer of the affected transfer.
        peer: u32,
    },
    /// The peer's completion queue overflowed (`cq_depth` exceeded
    /// under overload); the queue pair errored and the transfer must be
    /// re-driven.
    CqOverflow {
        /// Rank whose completion queue overflowed.
        peer: u32,
    },
    /// A protocol buffer was shorter than the fixed-width value being
    /// decoded from it (reduction operand, header field).
    Truncated {
        /// Bytes the decode needed.
        expected: u32,
        /// Bytes actually available.
        got: u32,
    },
    /// A reduction was requested for an (operator, primitive)
    /// combination the runtime does not implement.
    UnsupportedReduction,
    /// The rank's program could not finish after an earlier error left
    /// a transfer permanently incomplete.
    Incomplete,
}

impl MpiError {
    /// Maps a failed completion from `peer` to the matching error.
    pub fn from_cqe(peer: u32, status: CqeStatus) -> MpiError {
        match status {
            CqeStatus::RetryExceeded { attempts } => MpiError::RetryExceeded { peer, attempts },
            CqeStatus::RnrRetryExceeded { attempts } => {
                MpiError::RnrRetryExceeded { peer, attempts }
            }
            CqeStatus::FlushErr => MpiError::Flushed { peer },
            CqeStatus::CqOverflow => MpiError::CqOverflow { peer },
            CqeStatus::RemoteAccess(_) => MpiError::RemoteAccess { peer },
            CqeStatus::LocalProtection(_) | CqeStatus::LocalLengthError { .. } => {
                MpiError::LengthError { peer }
            }
            CqeStatus::Success => unreachable!("Success is not an error"),
        }
    }
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::RetryExceeded { peer, attempts } => {
                write!(
                    f,
                    "transport retry budget exhausted to rank {peer} after {attempts} attempts"
                )
            }
            MpiError::RnrRetryExceeded { peer, attempts } => {
                write!(
                    f,
                    "RNR retry budget exhausted to rank {peer} after {attempts} attempts"
                )
            }
            MpiError::Flushed { peer } => {
                write!(
                    f,
                    "work request flushed on errored queue pair to rank {peer}"
                )
            }
            MpiError::RemoteAccess { peer } => {
                write!(f, "remote access rejected by rank {peer}")
            }
            MpiError::LengthError { peer } => {
                write!(
                    f,
                    "local protection/length error on queue pair to rank {peer}"
                )
            }
            MpiError::Post { peer, err } => {
                write!(f, "post to rank {peer} failed: {err}")
            }
            MpiError::ReplyTimeout { peer, seq } => {
                write!(f, "rendezvous reply from rank {peer} timed out (seq {seq})")
            }
            MpiError::MalformedCtrl { peer } => {
                write!(f, "malformed control message from rank {peer}")
            }
            MpiError::UnknownMessage { peer, seq } => {
                write!(
                    f,
                    "message from rank {peer} references unknown transfer {seq}"
                )
            }
            MpiError::PeerFailed { peer } => {
                write!(f, "peer rank {peer} failed (crash-stop, no restart pending)")
            }
            MpiError::ConnectionLost { peer, attempts } => {
                write!(
                    f,
                    "connection to rank {peer} lost after {attempts} re-establishment attempts"
                )
            }
            MpiError::Registration { peer } => {
                write!(
                    f,
                    "required registration missing/evicted on transfer with rank {peer}"
                )
            }
            MpiError::CqOverflow { peer } => {
                write!(f, "completion queue of rank {peer} overflowed")
            }
            MpiError::Truncated { expected, got } => {
                write!(f, "buffer truncated: needed {expected} bytes, had {got}")
            }
            MpiError::UnsupportedReduction => {
                write!(f, "unsupported reduction operator/primitive combination")
            }
            MpiError::Incomplete => {
                write!(
                    f,
                    "program could not finish after an earlier transfer error"
                )
            }
        }
    }
}

impl std::error::Error for MpiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cqe_mapping() {
        assert_eq!(
            MpiError::from_cqe(3, CqeStatus::RetryExceeded { attempts: 8 }),
            MpiError::RetryExceeded {
                peer: 3,
                attempts: 8
            }
        );
        assert_eq!(
            MpiError::from_cqe(1, CqeStatus::FlushErr),
            MpiError::Flushed { peer: 1 }
        );
        assert_eq!(
            MpiError::from_cqe(
                2,
                CqeStatus::LocalLengthError {
                    sent: 9,
                    capacity: 4
                }
            ),
            MpiError::LengthError { peer: 2 }
        );
    }

    #[test]
    fn display_is_informative() {
        let e = MpiError::ReplyTimeout { peer: 1, seq: 42 };
        let s = format!("{e}");
        assert!(s.contains("rank 1") && s.contains("42"), "{s}");
    }
}
