//! MPI-2 one-sided communication (RMA) with derived datatypes.
//!
//! §1 lists remote memory access among the consumers of derived
//! datatypes, and the versioned datatype cache of §5.4.2 originates in
//! Träff et al.'s one-sided implementation (ref [14]). This module
//! provides the fence-synchronized core of MPI-2 RMA:
//!
//! * a **window** exposes a registered region of each rank's memory;
//!   window information (base, length, rkey) is exchanged at creation,
//! * **Put** writes `origin_count` instances of an origin datatype into
//!   a target datatype layout inside the target's window — implemented
//!   exactly like Multi-W (§5.3): one RDMA write per target-contiguous
//!   block with an origin gather list, list-posted,
//! * **Get** mirrors it with RDMA reads: one read per target-contiguous
//!   block scattered into the origin layout (the Read-Scatter feature
//!   of §2),
//! * **Fence** completes all outstanding RMA of the epoch, then
//!   barriers.
//!
//! Both transfers are genuinely one-sided: the target's CPU does no
//! work — only its HCA places or serves data.

use crate::error::MpiError;
use crate::plan::plan_multi_w;
use crate::progress::{Ctx, WR_RMA};
use crate::rank::RankState;
use ibdt_datatype::{Datatype, Segment};
use ibdt_ibsim::{Opcode, SendWr, Sge};
use ibdt_memreg::{ogr, Va};

/// Window metadata as seen by every rank: one entry per rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WinEntry {
    /// Base address of the exposed region in the owner's memory.
    pub base: Va,
    /// Length of the exposed region.
    pub len: u64,
    /// rkey granting remote access.
    pub rkey: u32,
}

/// Absolute blocks of `count` instances of `ty` at `buf`.
fn abs_blocks(ty: &Datatype, count: u64, buf: Va) -> Vec<(Va, u64)> {
    ty.flat()
        .repeat(count)
        .into_iter()
        .map(|(o, l)| ((buf as i64 + o) as u64, l))
        .collect()
}

/// Registers the origin buffer blocks (pin-down cached); the
/// registrations are parked on `rs.rma_regs` until the next fence.
fn register_origin(rs: &mut RankState, ctx: &mut Ctx<'_, '_>, blocks: &[(Va, u64)]) {
    let plan = ogr::plan(blocks, &ctx.host.reg);
    let mut cost = 0;
    for &(a, l) in &plan.regions {
        let acq = rs
            .pindown
            .acquire(&mut ctx.mems[rs.rank as usize].regs, &ctx.host.reg, a, l);
        cost += acq.cost_ns;
        rs.rma_regs.push(acq.reg);
    }
    rs.cpu.reserve_labeled(ctx.now(), cost, "reg");
}

fn lkey_for(rs: &RankState, addr: Va, len: u64) -> u32 {
    rs.rma_regs
        .iter()
        .find(|r| r.covers(addr, len))
        .expect("origin blocks registered before posting")
        .lkey
}

/// `MPI_Put`: one-sided write of origin data into the target window at
/// byte offset `target_off`, laid out as `target_count` instances of
/// `target_ty`.
#[allow(clippy::too_many_arguments)]
pub fn put(
    rs: &mut RankState,
    ctx: &mut Ctx<'_, '_>,
    target: u32,
    win: WinEntry,
    origin_buf: Va,
    origin_count: u64,
    origin_ty: &Datatype,
    target_off: u64,
    target_count: u64,
    target_ty: &Datatype,
) {
    assert_eq!(
        origin_count * origin_ty.size(),
        target_count * target_ty.size(),
        "put size mismatch"
    );
    if origin_ty.size() * origin_count == 0 {
        return;
    }
    let origin_blocks = abs_blocks(origin_ty, origin_count, origin_buf);
    let target_blocks = abs_blocks(target_ty, target_count, win.base + target_off);
    for &(a, l) in &target_blocks {
        assert!(
            a >= win.base && a + l <= win.base + win.len,
            "put outside the target window"
        );
    }
    if target == rs.rank {
        local_copy(rs, ctx, &origin_blocks, &target_blocks);
        return;
    }
    register_origin(rs, ctx, &origin_blocks);
    let wrs: Vec<SendWr> = plan_multi_w(&origin_blocks, &target_blocks, ctx.net.max_sge)
        .into_iter()
        .map(|p| SendWr {
            wr_id: WR_RMA,
            opcode: Opcode::RdmaWrite,
            sges: p
                .sges
                .iter()
                .map(|&(a, l)| Sge {
                    addr: a,
                    len: l,
                    lkey: lkey_for(rs, a, l),
                })
                .collect(),
            remote: Some((p.dst, win.rkey)),
            signaled: false,
        })
        .collect();
    post_rma(rs, ctx, target, wrs);
}

/// `MPI_Get`: one-sided read of target-window data into the origin
/// layout.
#[allow(clippy::too_many_arguments)]
pub fn get(
    rs: &mut RankState,
    ctx: &mut Ctx<'_, '_>,
    target: u32,
    win: WinEntry,
    origin_buf: Va,
    origin_count: u64,
    origin_ty: &Datatype,
    target_off: u64,
    target_count: u64,
    target_ty: &Datatype,
) {
    assert_eq!(
        origin_count * origin_ty.size(),
        target_count * target_ty.size(),
        "get size mismatch"
    );
    if origin_ty.size() * origin_count == 0 {
        return;
    }
    let origin_blocks = abs_blocks(origin_ty, origin_count, origin_buf);
    let target_blocks = abs_blocks(target_ty, target_count, win.base + target_off);
    for &(a, l) in &target_blocks {
        assert!(
            a >= win.base && a + l <= win.base + win.len,
            "get outside the target window"
        );
    }
    if target == rs.rank {
        local_copy(rs, ctx, &target_blocks, &origin_blocks);
        return;
    }
    register_origin(rs, ctx, &origin_blocks);
    // One read per target-contiguous range, scattering into origin
    // pieces; plan_multi_w's "receiver" is the remote contiguous side.
    let wrs: Vec<SendWr> = plan_multi_w(&origin_blocks, &target_blocks, ctx.net.max_sge)
        .into_iter()
        .map(|p| SendWr {
            wr_id: WR_RMA,
            opcode: Opcode::RdmaRead,
            sges: p
                .sges
                .iter()
                .map(|&(a, l)| Sge {
                    addr: a,
                    len: l,
                    lkey: lkey_for(rs, a, l),
                })
                .collect(),
            remote: Some((p.dst, win.rkey)),
            signaled: false,
        })
        .collect();
    post_rma(rs, ctx, target, wrs);
}

/// Posts an RMA descriptor list with one signaled sentinel at the end.
fn post_rma(rs: &mut RankState, ctx: &mut Ctx<'_, '_>, target: u32, mut wrs: Vec<SendWr>) {
    let n = wrs.len();
    if n == 0 {
        return;
    }
    if let Some(last) = wrs.last_mut() {
        last.signaled = true;
    }
    rs.rma_outstanding += 1;
    rs.counters.data_wrs += n as u64;
    let res = if ctx.cfg.list_post {
        let ready = rs
            .cpu
            .reserve_labeled(ctx.now(), ctx.net.post_list_ns(n), "post");
        ctx.post_send_list(ready, rs.rank, target, wrs)
    } else {
        let mut res = Ok(());
        for wr in wrs {
            let ready = rs
                .cpu
                .reserve_labeled(ctx.now(), ctx.net.post_single_ns, "post");
            res = ctx.post_send(ready, rs.rank, target, wr);
            if res.is_err() {
                break;
            }
        }
        res
    };
    if let Err(e) = res {
        // Undo the epoch charge so the next fence does not hang waiting
        // for a sentinel completion that will never arrive.
        rs.counters.post_errors += 1;
        rs.errors.push(MpiError::Post {
            peer: target,
            err: e,
        });
        rs.rma_outstanding -= 1;
        rs.rma_event = true;
    }
}

/// Local (self-target) RMA: a datatype-to-datatype memory copy.
fn local_copy(
    rs: &mut RankState,
    ctx: &mut Ctx<'_, '_>,
    src_blocks: &[(Va, u64)],
    dst_blocks: &[(Va, u64)],
) {
    let total: u64 = src_blocks.iter().map(|&(_, l)| l).sum();
    // Gather source bytes, scatter to destination, block by block.
    let mut data = Vec::with_capacity(total as usize);
    {
        let space = &ctx.mems[rs.rank as usize].space;
        for &(a, l) in src_blocks {
            data.extend_from_slice(space.slice(a, l).expect("src in bounds"));
        }
    }
    let space = &mut ctx.mems[rs.rank as usize].space;
    let mut off = 0usize;
    for &(a, l) in dst_blocks {
        space
            .write(a, &data[off..off + l as usize])
            .expect("dst in bounds");
        off += l as usize;
    }
    let blocks = src_blocks.len() + dst_blocks.len();
    let cost = ctx.host.copy_ns(blocks.max(1), total);
    rs.cpu.reserve_labeled(ctx.now(), cost, "pack");
}

/// Segment-based size helper shared with tests.
pub fn message_size(ty: &Datatype, count: u64) -> u64 {
    Segment::new(ty, count).total_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn win_entry_is_plain_data() {
        let w = WinEntry {
            base: 0x1000,
            len: 4096,
            rkey: 7,
        };
        assert_eq!(w, w);
    }

    #[test]
    fn message_size_matches_segment() {
        let ty = Datatype::vector(4, 2, 8, &Datatype::int()).unwrap();
        assert_eq!(message_size(&ty, 3), 3 * ty.size());
    }
}
