//! The MPI progress engine: eager and rendezvous protocol state
//! machines for every datatype communication scheme.
//!
//! Structure: [`isend`]/[`irecv`] start operations; [`on_cqe`] reacts to
//! fabric completions (control arrivals, segment immediates, local data
//! completions); [`on_cpu`] reacts to host-work completions (a segment
//! packed/unpacked, registration finished). All host work is charged on
//! the rank's FIFO CPU resource, so pack ∥ wire ∥ unpack overlap — the
//! paper's central mechanism — emerges from the schedule rather than
//! being asserted.
//!
//! Functional-now, complete-later: memory effects (packing bytes,
//! placing data) happen at event-processing time; *completion events*
//! fire when the modelled cost has elapsed. MPI's buffer-ownership rules
//! make this safe: a correct program never touches a buffer while an
//! operation that uses it is in flight.

use crate::config::{MpiConfig, Scheme};
use crate::error::MpiError;
use crate::msg::{CtrlMsg, ReplyBody};
use crate::plan::{
    chunk_gather, hybrid_partition, imm_of, imm_parse, plan_multi_w, substream_to_stream,
};
use crate::rank::{PostedRecv, RankState, ReqId, ReqKind, Unexpected};
use crate::table::{ImmMap, MsgTable};
use ibdt_datatype::{Datatype, FlatLayout, TransferPlan};
use ibdt_ibsim::{
    Cqe, HostConfig, NetConfig, NicEvent, NodeMem, Opcode, PostError, RecvWr, SendWr, Sge,
    SgeList, Transport, TransportClass,
};
use ibdt_memreg::{ogr, Registration, Va};
use ibdt_simcore::engine::Scheduler;
use ibdt_simcore::pipeline::{two_stage_finish_ns, MAX_PIPELINE_BUFS};
use ibdt_simcore::time::Time;
use std::collections::HashSet;
use std::sync::Arc;

/// Top-level simulation event for the MPI world.
#[derive(Debug)]
pub enum Ev {
    /// A fabric event (arrivals, local completions, RNR retries).
    Nic(NicEvent),
    /// Host work finished on `rank`.
    Cpu {
        /// The rank whose CPU finished.
        rank: u32,
        /// What finished.
        act: CpuAct,
    },
    /// Re-run the program interpreter of `rank`.
    Resume {
        /// The rank to resume.
        rank: u32,
    },
    /// The rank's CPU finished draining `n` entries from its completion
    /// queue — returns that many slots to the bounded CQ. Scheduled only
    /// when `cq_depth` is finite, so default runs see no new events.
    CqAck {
        /// The rank whose completion queue drained.
        rank: u32,
        /// Completion entries consumed.
        n: u32,
    },
}

/// Host-work completions that drive protocol state forward.
#[derive(Debug, Clone, Copy)]
pub enum CpuAct {
    /// Sender packed segment `k` of message `(peer, seq)`.
    PackSeg {
        /// Destination rank of the send.
        peer: u32,
        /// Message sequence number.
        seq: u64,
        /// Segment index.
        k: u32,
    },
    /// Receiver unpacked segment `k`.
    UnpackSeg {
        /// Source rank.
        peer: u32,
        /// Sequence number.
        seq: u64,
        /// Segment index.
        k: u32,
    },
    /// Receiver unpacked the whole message (Generic / no-segment-unpack
    /// RWG mode).
    UnpackAll {
        /// Source rank.
        peer: u32,
        /// Sequence number.
        seq: u64,
    },
    /// Sender finished registering its user buffer (RWG-UP / Multi-W).
    SenderRegDone {
        /// Destination rank.
        peer: u32,
        /// Sequence number.
        seq: u64,
    },
    /// Receiver finished its rendezvous preparation; the stored reply
    /// can be sent.
    ReceiverReady {
        /// Source rank.
        peer: u32,
        /// Sequence number.
        seq: u64,
    },
    /// An eager-path send finished packing (request complete).
    SendDone {
        /// The completed request.
        req: ReqId,
    },
    /// An eager-path receive finished unpacking (request complete).
    RecvDone {
        /// The completed request.
        req: ReqId,
    },
    /// The rendezvous-reply timeout fired for message `(peer, seq)`
    /// (scheduled only when `rndv_reply_timeout_ns > 0`).
    ReplyTimeout {
        /// Destination rank of the stalled send.
        peer: u32,
        /// Message sequence number.
        seq: u64,
    },
    /// The connection-manager handshake to `peer` finished: the queue
    /// pair is re-established and suspended traffic can be re-driven.
    Reconnect {
        /// The reconnected peer.
        peer: u32,
    },
}

/// Shared mutable context threaded through the protocol functions.
pub struct Ctx<'a, 'b> {
    /// The transport backend (IB fabric or shared-memory channel),
    /// driven through the [`Transport`] trait.
    pub fabric: &'a mut dyn Transport,
    /// All ranks' memories.
    pub mems: &'a mut Vec<NodeMem>,
    /// Network cost model.
    pub net: &'a NetConfig,
    /// Host cost model.
    pub host: &'a HostConfig,
    /// MPI configuration.
    pub cfg: &'a MpiConfig,
    /// Event scheduler.
    pub sched: &'a mut Scheduler<'b, Ev>,
}

impl Ctx<'_, '_> {
    pub(crate) fn now(&self) -> Time {
        self.sched.now()
    }

    pub(crate) fn post_send(
        &mut self,
        ready_at: Time,
        node: u32,
        peer: u32,
        wr: SendWr,
    ) -> Result<(), PostError> {
        let Self {
            fabric,
            mems,
            sched,
            ..
        } = self;
        fabric.post_send(ready_at, node, peer, wr, mems, &mut |t, e| {
            sched.at(t, Ev::Nic(e))
        })
    }

    pub(crate) fn post_send_list(
        &mut self,
        ready_at: Time,
        node: u32,
        peer: u32,
        wrs: Vec<SendWr>,
    ) -> Result<(), PostError> {
        let Self {
            fabric,
            mems,
            sched,
            ..
        } = self;
        fabric.post_send_list(ready_at, node, peer, wrs, mems, &mut |t, e| {
            sched.at(t, Ev::Nic(e))
        })
    }

    fn post_recv(&mut self, now: Time, node: u32, peer: u32, wr: RecvWr) {
        let Self {
            fabric,
            mems,
            sched,
            ..
        } = self;
        fabric
            .post_recv(now, node, peer, wr, mems, &mut |t, e| {
                sched.at(t, Ev::Nic(e))
            })
            .expect("protocol posted an invalid receive");
    }

    fn cpu_event(&mut self, at: Time, rank: u32, act: CpuAct) {
        self.sched.at(at, Ev::Cpu { rank, act });
    }
}

/// Work-request id namespaces (low bits carry a value, high byte the
/// kind).
const WR_KIND_SHIFT: u32 = 56;
const WR_EAGER: u64 = 1 << WR_KIND_SHIFT; // low bits: send ring buffer va
const WR_DATA: u64 = 2 << WR_KIND_SHIFT; // low bits: seq
const WR_READ: u64 = 3 << WR_KIND_SHIFT; // low bits: seq
/// One-sided RMA work requests (completion tracked per fence epoch).
pub(crate) const WR_RMA: u64 = 4 << WR_KIND_SHIFT;
const WR_LOW_MASK: u64 = (1 << WR_KIND_SHIFT) - 1;

/// Immediate segment index reserved for the Hybrid completion marker.
const MARKER_K: u32 = 0xFFFF;

/// Where the sender aims its data, per the rendezvous reply.
#[derive(Debug)]
enum SendTargets {
    /// Generic: one unpack buffer.
    Buffer { addr: Va, rkey: u32 },
    /// BC-SPUP / RWG-UP: per-segment unpack buffers.
    Segments(crate::msg::SegList),
    /// Multi-W: receiver block list and covering regions.
    MultiW {
        rcv_blocks: Vec<(Va, u64)>,
        regions: Vec<(Va, u64, u32)>,
    },
    /// P-RRS: receiver will read; sender announces packed segments.
    ReadGo,
    /// Hybrid: details live in [`SendMsg::hybrid`].
    HybridReady,
}

pub(crate) use crate::pool::StageBuf;

/// Sender-side Hybrid state (§10 future work): the partition of the
/// stream into direct-write and packed parts, derived from the
/// receiver's layout.
#[derive(Debug)]
struct HybridSend {
    /// Stream intervals travelling packed, in order.
    packed_intervals: Vec<(u64, u64)>,
    /// `(stream lo, stream hi, destination va)` per direct interval.
    direct: Vec<(u64, u64, Va)>,
    /// Receiver unpack segment buffers for the packed part.
    segs: Vec<(u64, u32)>,
    /// Receiver regions covering the direct destinations.
    regions: Vec<(Va, u64, u32)>,
    direct_posted: bool,
    marker_posted: bool,
}

/// Sender-side state of one rendezvous message.
#[derive(Debug)]
struct SendMsg {
    req: ReqId,
    peer: u32,
    seq: u64,
    /// Match tag, kept so a §5.4.2 renegotiation can re-send the
    /// rendezvous start verbatim.
    tag: u32,
    buf: Va,
    count: u64,
    ty: Datatype,
    size: u64,
    scheme: Scheme,
    nsegs: u32,
    seg_size: u64,
    pack_bufs: Vec<StageBuf>,
    packed: u32,
    posted_segs: u32,
    pack_chain_running: bool,
    /// Single-block sender (contiguous data): zero-copy paths apply.
    contig: bool,
    hybrid: Option<HybridSend>,
    targets: Option<SendTargets>,
    reg_done: bool,
    user_regs: Vec<Registration>,
    /// P-RRS: completion arrives via Fin instead of a local data CQE.
    completed: bool,
    /// Set when a data post failed; the caller of [`try_post_ready`]
    /// aborts the message.
    failed: Option<MpiError>,
    /// Rendezvous-reply probes sent so far (§reply timeout).
    rerequests: u32,
    /// Multi-W degraded mode: the pinning budget barred registering the
    /// user buffer, so data is staged through a copy buffer and written
    /// into the receiver's blocks from there.
    mw_stage: bool,
    /// User-buffer bytes this message charged against
    /// `reg_budget_bytes`.
    pinned_bytes: u64,
    /// Set after a protection-fault fallback (§5.4.2): the message was
    /// renegotiated once as BC-SPUP; a second remote-access error is
    /// fatal.
    renegotiated: bool,
    /// Stale pack completions to discard after a renegotiation reset
    /// the pack pipeline.
    drop_packs: u32,
}

/// Receiver-side state of one rendezvous message.
#[derive(Debug)]
struct RecvMsg {
    req: ReqId,
    peer: u32,
    seq: u64,
    buf: Va,
    count: u64,
    ty: Datatype,
    size: u64,
    scheme: Scheme,
    nsegs: u32,
    seg_size: u64,
    unpack_bufs: Vec<StageBuf>,
    segs_arrived: u32,
    segs_unpacked: u32,
    user_regs: Vec<Registration>,
    pending_reply: Option<Vec<u8>>,
    /// P-RRS: outstanding RDMA reads and announced segments.
    reads_outstanding: u32,
    segs_announced: u32,
    /// Hybrid: stream intervals of the packed part, and whether the
    /// completion marker arrived.
    packed_intervals: Vec<(u64, u64)>,
    marker_seen: bool,
    completed: bool,
    /// User-buffer bytes this message charged against
    /// `reg_budget_bytes`.
    pinned_bytes: u64,
    /// Copy of the sent reply, kept for probe-triggered resends.
    reply_copy: Option<Vec<u8>>,
    /// Segment indices already written (dedup across recovery
    /// re-drives: a resumed sender may repeat delivered segments).
    segs_seen: HashSet<u32>,
    /// Stale unpack completions to discard after a renegotiation reset
    /// the unpack pipeline.
    drop_unpacks: u32,
}

/// Active rendezvous messages of one rank. Records live in slab-backed
/// dense tables ([`MsgTable`]) keyed `(peer, seq)` — message lifecycle
/// is index arithmetic, not hash insert/remove per message.
#[derive(Debug)]
pub struct ActiveMsgs {
    sends: MsgTable<SendMsg>,
    recvs: MsgTable<RecvMsg>,
    /// Immediate-data demux: `(peer, seq16)` → full sequence number.
    imm_map: ImmMap,
}

impl ActiveMsgs {
    /// Empty tables for a rank with `nprocs` peers.
    pub fn new(nprocs: usize) -> Self {
        ActiveMsgs {
            sends: MsgTable::new(nprocs),
            recvs: MsgTable::new(nprocs),
            imm_map: ImmMap::new(nprocs),
        }
    }

    /// True when no rendezvous transfers are in flight.
    pub fn is_idle(&self) -> bool {
        self.sends.is_empty() && self.recvs.is_empty()
    }

    /// Empties all tables, keeping their capacity (world recycling).
    pub fn reset(&mut self) {
        self.sends.reset();
        self.recvs.reset();
        self.imm_map.reset();
    }
}

// ---------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------

/// Starts a nonblocking send.
#[allow(clippy::too_many_arguments)]
pub fn isend(
    rs: &mut RankState,
    am: &mut ActiveMsgs,
    ctx: &mut Ctx<'_, '_>,
    peer: u32,
    buf: Va,
    count: u64,
    ty: &Datatype,
    tag: u32,
) -> ReqId {
    assert!(
        peer != crate::rank::ANY_SOURCE && tag != crate::rank::ANY_TAG,
        "wildcards are receive-side only"
    );
    let req = rs.new_req(ReqKind::Send);
    let size = count * ty.size();
    rs.cpu
        .reserve_labeled(ctx.now(), ctx.cfg.call_overhead_ns, "call");

    if peer == rs.rank {
        self_send(rs, ctx, req, buf, count, ty, tag);
        return req;
    }
    if size <= ctx.cfg.eager_threshold {
        // Credit-based flow control (MVAPICH RDMA channel, cs/0310059):
        // an eager data message needs a credit and a slot under the
        // pending-queue bound. Without either, degrade the message to
        // rendezvous — eager data and RndvStart share the same in-order
        // control stream (ring + pending FIFO), so per-(peer, tag)
        // matching order is preserved across the spill. Zero-size
        // messages carry no payload worth bounding and stay eager.
        if !ctx.cfg.flow_control || size == 0 {
            eager_send(rs, ctx, req, peer, buf, count, ty, tag, size);
            return req;
        }
        if ctx.cfg.pending_cap > 0 && rs.eager_pending.len() >= ctx.cfg.pending_cap {
            // Rung 2 of the degradation ladder: throttled eager.
            rs.counters.pending_spills += 1;
        } else if rs.fc[peer as usize].credits == 0 {
            // Rung 3: the peer's receive resources are exhausted.
            rs.counters.credit_spills += 1;
        } else {
            rs.fc[peer as usize].credits -= 1;
            rs.fc[peer as usize].sent += 1;
            eager_send(rs, ctx, req, peer, buf, count, ty, tag, size);
            return req;
        }
    }

    rs.counters.rndv_sends += 1;
    let seq = rs.take_seq(peer);
    let scheme = ctx.cfg.scheme;
    // Generic transfers the whole packed message in one piece (Fig. 1);
    // the segmented schemes use the §7.2 rule.
    let (seg_size, nsegs) = if scheme == Scheme::Generic {
        (size, 1)
    } else {
        (ctx.cfg.segment_size(size), ctx.cfg.segment_count(size))
    };
    let tplan = rs.plan_for(ty, count);
    let stats = tplan.stats();

    let start = CtrlMsg::RndvStart {
        tag,
        seq,
        size,
        scheme: scheme.to_wire(),
        nsegs,
        seg_size,
        blk_min: stats.min,
        blk_median: stats.median,
    };
    send_ctrl_msg(rs, ctx, peer, &start, 0);

    let mut msg = SendMsg {
        req,
        peer,
        seq,
        tag,
        buf,
        count,
        ty: ty.clone(),
        size,
        scheme,
        nsegs,
        seg_size,
        pack_bufs: rs.scratch.take_stage(),
        packed: 0,
        posted_segs: 0,
        pack_chain_running: false,
        contig: stats.min >= size,
        hybrid: None,
        targets: None,
        reg_done: false,
        user_regs: Vec::new(),
        completed: false,
        failed: None,
        rerequests: 0,
        mw_stage: false,
        pinned_bytes: 0,
        renegotiated: false,
        drop_packs: 0,
    };
    if ctx.cfg.rndv_reply_timeout_ns > 0 {
        let at = ctx.now() + ctx.cfg.rndv_reply_timeout_ns;
        ctx.cpu_event(at, rs.rank, CpuAct::ReplyTimeout { peer, seq });
    }

    // Early work that overlaps the handshake (§4.3.1, §7.3, §7.4).
    // A single-block (contiguous) send never packs: MVAPICH's standard
    // rendezvous is zero-copy for contiguous messages (§3.1), so the
    // sender registers the user buffer and waits for the receiver's
    // choice.
    if stats.min >= size {
        // Budget failure is deferred: the reply handler retries and
        // degrades per-scheme if pinning is still impossible.
        let _ = sender_register(rs, ctx, &mut msg);
        am.sends.insert((peer, seq), msg);
        return req;
    }
    match scheme {
        Scheme::Generic => {
            // Dynamic whole-message pack buffer (the original path).
            let sb = acquire_stage(rs, ctx, size);
            msg.pack_bufs.push(sb);
            start_pack_chain(rs, ctx, &mut msg);
        }
        Scheme::BcSpup | Scheme::PRrs => {
            assign_pack_bufs(rs, ctx, &mut msg);
            start_pack_chain(rs, ctx, &mut msg);
        }
        Scheme::RwgUp | Scheme::MultiW => {
            let _ = sender_register(rs, ctx, &mut msg);
        }
        Scheme::Hybrid => {
            // Predict the direct part from the sender's own layout
            // (symmetric types are the common case) and register those
            // blocks during the handshake; the reply-time registration
            // tops up any coverage the receiver's partition adds.
            let mut own = rs.scratch.take_blocks();
            abs_blocks_into(&tplan, buf, &mut own);
            own.retain(|&(_, l)| l >= ctx.cfg.hybrid_block_threshold);
            if !own.is_empty() {
                let plan = ogr::plan(&own, &ctx.host.reg);
                let mut cost = 0;
                for &(a, l) in &plan.regions {
                    let acq = rs.pindown.acquire(
                        &mut ctx.mems[rs.rank as usize].regs,
                        &ctx.host.reg,
                        a,
                        l,
                    );
                    cost += acq.cost_ns;
                    msg.user_regs.push(acq.reg);
                }
                let done = rs.cpu.reserve_labeled(ctx.now(), cost, "reg");
                ctx.cpu_event(done, rs.rank, CpuAct::SenderRegDone { peer, seq });
            }
            rs.scratch.put_blocks(own);
        }
        Scheme::Adaptive => {
            // The receiver decides, but the sender predicts from its own
            // block statistics (§6's MPI_Info-style hint) so the early
            // work overlaps the handshake. A wrong guess costs only a
            // cached registration or an unused pool pack.
            let predicted = adaptive_choose(
                ctx.cfg,
                ctx.fabric.class(),
                size,
                stats.min,
                stats.median,
                stats.min,
                stats.median,
            );
            match predicted {
                Scheme::RwgUp | Scheme::MultiW | Scheme::PRrs => {
                    if !sender_register(rs, ctx, &mut msg) {
                        // Pinning budget exhausted: pre-pack instead,
                        // which every fallback path can consume.
                        assign_pack_bufs(rs, ctx, &mut msg);
                        start_pack_chain(rs, ctx, &mut msg);
                    }
                }
                _ => {
                    assign_pack_bufs(rs, ctx, &mut msg);
                    start_pack_chain(rs, ctx, &mut msg);
                }
            }
        }
    }
    am.sends.insert((peer, seq), msg);
    req
}

/// Starts a nonblocking receive.
#[allow(clippy::too_many_arguments)]
pub fn irecv(
    rs: &mut RankState,
    am: &mut ActiveMsgs,
    ctx: &mut Ctx<'_, '_>,
    peer: u32,
    buf: Va,
    count: u64,
    ty: &Datatype,
    tag: u32,
) -> ReqId {
    let req = rs.new_req(ReqKind::Recv);
    rs.cpu
        .reserve_labeled(ctx.now(), ctx.cfg.call_overhead_ns, "call");

    match rs.match_unexpected(peer, tag) {
        Some(Unexpected::Eager {
            peer: src, data, ..
        }) => {
            if !data.is_empty() {
                fc_unexpected_removed(rs, ctx);
            }
            fc_on_eager_matched(rs, ctx, src, data.len() as u64);
            eager_deliver(rs, ctx, req, buf, count, ty, &data);
        }
        Some(Unexpected::Rndv {
            peer,
            seq,
            size,
            scheme,
            nsegs,
            seg_size,
            blk_min,
            blk_median,
            ..
        }) => {
            let posted = PostedRecv {
                req,
                peer,
                tag,
                buf,
                count,
                ty: ty.clone(),
            };
            receiver_start(
                rs, am, ctx, posted, seq, size, scheme, nsegs, seg_size, blk_min, blk_median,
            );
        }
        None => {
            rs.posted.push_back(PostedRecv {
                req,
                peer,
                tag,
                buf,
                count,
                ty: ty.clone(),
            });
        }
    }
    req
}

/// Handles a completion queue entry for `rank`.
pub fn on_cqe(rs: &mut RankState, am: &mut ActiveMsgs, ctx: &mut Ctx<'_, '_>, cqe: Cqe) {
    if !cqe.status.is_ok() {
        on_cqe_error(rs, am, ctx, cqe);
        return;
    }
    if cqe.is_recv {
        // Charge CQE handling.
        rs.cpu.reserve_labeled(ctx.now(), ctx.net.cqe_ns, "cqe");
        match cqe.imm {
            None => {
                // Copy the eager bytes out through a recycled scratch
                // buffer (the ring slot is reposted before dispatch, so
                // the bytes cannot be borrowed in place).
                let va = cqe.wr_id;
                let mut bytes = rs.scratch.take_bytes(cqe.byte_len as usize);
                bytes.copy_from_slice(
                    ctx.mems[rs.rank as usize]
                        .space
                        .slice(va, cqe.byte_len)
                        .expect("eager buffer readable"),
                );
                repost_eager_recv(rs, ctx, cqe.peer, va);
                on_ctrl(rs, am, ctx, cqe.peer, &bytes);
                rs.scratch.put_bytes(bytes);
            }
            Some(imm) => {
                // Segment arrival notification; the consumed descriptor
                // is replaced.
                let va = cqe.wr_id;
                repost_eager_recv(rs, ctx, cqe.peer, va);
                on_segment_arrival(rs, am, ctx, cqe.peer, imm, cqe.byte_len);
            }
        }
    } else {
        match cqe.wr_id & !WR_LOW_MASK {
            WR_EAGER => {
                let va = cqe.wr_id & WR_LOW_MASK;
                rs.eager_send_free.push(va);
                drain_pending_eager(rs, ctx);
            }
            WR_DATA => {
                let seq = cqe.wr_id & WR_LOW_MASK;
                sender_data_done(rs, am, ctx, cqe.peer, seq);
            }
            WR_READ => {
                let seq = cqe.wr_id & WR_LOW_MASK;
                receiver_read_done(rs, am, ctx, cqe.peer, seq);
            }
            WR_RMA => {
                debug_assert!(rs.rma_outstanding > 0);
                rs.rma_outstanding -= 1;
                rs.rma_event = true;
            }
            other => {
                // A WR id outside every known namespace is a protocol
                // bug; surface it as a typed error instead of tearing
                // the whole simulation down.
                debug_assert!(false, "unknown WR id namespace {other:#x}");
                rs.errors.push(MpiError::UnknownMessage {
                    peer: cqe.peer,
                    seq: cqe.wr_id & WR_LOW_MASK,
                });
            }
        }
    }
}

/// Handles a failed completion: recover the resources the dead work
/// request held and fail the owning request with a typed error.
/// Duplicate flush CQEs (many data WRs share one `wr_id`) find the
/// message already gone and fall through silently.
fn on_cqe_error(rs: &mut RankState, am: &mut ActiveMsgs, ctx: &mut Ctx<'_, '_>, cqe: Cqe) {
    rs.counters.cqe_errors += 1;
    let mut err = MpiError::from_cqe(cqe.peer, cqe.status);
    if cqe.is_recv {
        // A failed receive completion (bad eager length): the
        // descriptor is consumed — record the rank-level error.
        rs.errors.push(err);
        return;
    }
    let peer = cqe.peer;
    let kind = cqe.wr_id & !WR_LOW_MASK;
    let low = cqe.wr_id & WR_LOW_MASK;
    // Transport-class failures (flush, retry exhaustion) hand the
    // affected traffic to the connection manager instead of failing
    // the owning requests; the reconnect event re-drives it.
    if ctx.cfg.recovery && recoverable(&err) && matches!(kind, WR_EAGER | WR_DATA | WR_READ) {
        if ensure_reconnect(rs, ctx, peer) {
            let r = rs.reconn.get_mut(&peer).expect("entry ensured above");
            match kind {
                WR_EAGER => r.eager_slots.push(low),
                WR_DATA => {
                    if am.sends.contains_key(&(peer, low)) {
                        r.sends.insert(low);
                    }
                }
                _ => {
                    if am.recvs.contains_key(&(peer, low)) {
                        r.recvs.insert(low);
                    }
                }
            }
            return;
        }
        err = give_up_error(rs, ctx, peer);
        drain_suspended(rs, am, ctx, peer, err);
    }
    match kind {
        WR_EAGER => {
            rs.eager_send_free.push(low);
            rs.errors.push(err);
            drain_pending_eager(rs, ctx);
        }
        WR_DATA => {
            // §5.4.2: a remote-access error on a zero-copy write means
            // the receiver's registration was evicted under the
            // transfer. Renegotiate the message as BC-SPUP once
            // instead of failing it.
            if matches!(err, MpiError::RemoteAccess { .. }) {
                match am.sends.get(&(peer, low)) {
                    Some(m)
                        if ctx.cfg.recovery
                            && !m.renegotiated
                            && matches!(m.scheme, Scheme::MultiW | Scheme::Hybrid) =>
                    {
                        renegotiate_send(rs, am, ctx, peer, low);
                        return;
                    }
                    Some(m) if m.renegotiated => {
                        err = MpiError::Registration { peer };
                    }
                    _ => {}
                }
            }
            if let Some(msg) = am.sends.remove(&(peer, low)) {
                abort_send(rs, ctx, msg, err);
            }
        }
        WR_READ => {
            abort_recv(rs, am, ctx, peer, low, err);
        }
        WR_RMA => {
            rs.rma_outstanding = rs.rma_outstanding.saturating_sub(1);
            rs.rma_event = true;
            rs.errors.push(err);
        }
        _ => rs.errors.push(err),
    }
}

/// Fails a send whose data can no longer be delivered: releases staging
/// buffers and registrations and completes the request with `err`.
fn abort_send(rs: &mut RankState, ctx: &mut Ctx<'_, '_>, mut msg: SendMsg, err: MpiError) {
    if msg.completed {
        return;
    }
    msg.completed = true;
    sender_release(rs, ctx, &mut msg);
    rs.fail_req(msg.req, err);
}

/// Fails a receive: releases unpack buffers and registrations, drops
/// the immediate-data mapping, and completes the request with `err`.
/// Silently returns when the message is already gone (duplicate flush).
fn abort_recv(
    rs: &mut RankState,
    am: &mut ActiveMsgs,
    ctx: &mut Ctx<'_, '_>,
    peer: u32,
    seq: u64,
    err: MpiError,
) {
    let Some(mut msg) = am.recvs.remove(&(peer, seq)) else {
        return;
    };
    msg.completed = true;
    am.imm_map.remove(&(peer, (seq & 0xFFFF) as u16));
    receiver_release(rs, ctx, &mut msg);
    rs.fail_req(msg.req, err);
}

/// Handles a host-work completion for `rank`.
pub fn on_cpu(rs: &mut RankState, am: &mut ActiveMsgs, ctx: &mut Ctx<'_, '_>, act: CpuAct) {
    match act {
        CpuAct::SendDone { req } => rs.complete_req(req),
        CpuAct::RecvDone { req } => rs.complete_req(req),
        CpuAct::PackSeg { peer, seq, k } => {
            let Some(mut msg) = am.sends.remove(&(peer, seq)) else {
                return;
            };
            if msg.drop_packs > 0 {
                // Stale completion from a pack pipeline a renegotiation
                // tore down; the new pipeline runs its own chain.
                msg.drop_packs -= 1;
                am.sends.insert((peer, seq), msg);
                return;
            }
            debug_assert_eq!(msg.packed, k, "pack completions out of order");
            msg.packed = k + 1;
            msg.pack_chain_running = false;
            rs.counters.packs += 1;
            rs.counters.bytes_packed += if msg.scheme == Scheme::Hybrid {
                let packed_bytes: u64 = msg
                    .hybrid
                    .as_ref()
                    .map(|h| h.packed_intervals.iter().map(|&(a, b)| b - a).sum())
                    .unwrap_or(0);
                let lo = k as u64 * msg.seg_size;
                ((lo + msg.seg_size).min(packed_bytes)).saturating_sub(lo)
            } else {
                seg_len(&msg, k)
            };
            try_post_ready(rs, ctx, &mut msg);
            if let Some(err) = msg.failed.take() {
                resolve_send_failure(rs, am, ctx, msg, err);
                return;
            }
            start_pack_chain(rs, ctx, &mut msg);
            am.sends.insert((peer, seq), msg);
        }
        CpuAct::SenderRegDone { peer, seq } => {
            let Some(mut msg) = am.sends.remove(&(peer, seq)) else {
                return;
            };
            msg.reg_done = true;
            try_post_ready(rs, ctx, &mut msg);
            if let Some(err) = msg.failed.take() {
                resolve_send_failure(rs, am, ctx, msg, err);
                return;
            }
            am.sends.insert((peer, seq), msg);
        }
        CpuAct::ReceiverReady { peer, seq } => {
            let Some(msg) = am.recvs.get_mut(&(peer, seq)) else {
                return;
            };
            if let Some(reply) = msg.pending_reply.take() {
                let mut copy = take_ctrl_buf(rs);
                copy.extend_from_slice(&reply);
                msg.reply_copy = Some(copy);
                send_ctrl(rs, ctx, peer, reply, 0);
            }
        }
        CpuAct::ReplyTimeout { peer, seq } => {
            let Some(mut msg) = am.sends.remove(&(peer, seq)) else {
                return;
            };
            if msg.targets.is_some() || msg.completed {
                // The reply arrived in the meantime.
                am.sends.insert((peer, seq), msg);
                return;
            }
            if msg.rerequests >= ctx.cfg.rndv_max_rerequests {
                abort_send(rs, ctx, msg, MpiError::ReplyTimeout { peer, seq });
                return;
            }
            msg.rerequests += 1;
            rs.counters.rndv_rerequests += 1;
            send_ctrl_msg(rs, ctx, peer, &CtrlMsg::RndvProbe { seq }, 0);
            let at = ctx.now() + ctx.cfg.rndv_reply_timeout_ns;
            ctx.cpu_event(at, rs.rank, CpuAct::ReplyTimeout { peer, seq });
            am.sends.insert((peer, seq), msg);
        }
        CpuAct::UnpackSeg { peer, seq, k } => {
            let Some(msg) = am.recvs.get_mut(&(peer, seq)) else {
                return;
            };
            let _ = k;
            if msg.drop_unpacks > 0 {
                // Stale completion from before a renegotiation reset
                // the unpack pipeline.
                msg.drop_unpacks -= 1;
                return;
            }
            msg.segs_unpacked += 1;
            rs.counters.unpacks += 1;
            let hybrid_gate = msg.scheme == Scheme::Hybrid && !msg.marker_seen;
            if msg.segs_unpacked == msg.nsegs && !hybrid_gate {
                receiver_complete(rs, am, ctx, peer, seq);
            }
        }
        CpuAct::UnpackAll { peer, seq } => {
            let Some(msg) = am.recvs.get_mut(&(peer, seq)) else {
                return;
            };
            if msg.drop_unpacks > 0 {
                msg.drop_unpacks -= 1;
                return;
            }
            rs.counters.unpacks += 1;
            msg.segs_unpacked = msg.nsegs;
            receiver_complete(rs, am, ctx, peer, seq);
        }
        CpuAct::Reconnect { peer } => do_reconnect(rs, am, ctx, peer),
    }
}

// ---------------------------------------------------------------------
// Credit-based eager flow control (MVAPICH RDMA channel, cs/0310059)
// ---------------------------------------------------------------------

/// True while the receiver withholds credit grants: the payload-bearing
/// unexpected backlog reached half of `unexpected_cap`, so senders must
/// starve and degrade to rendezvous (whose unexpected entries are
/// header-only) instead of growing the queue further.
fn fc_grants_blocked(rs: &RankState, cfg: &MpiConfig) -> bool {
    cfg.unexpected_cap > 0 && rs.unexpected_eager * 2 >= cfg.unexpected_cap
}

/// Takes an encode buffer, prepending any credits owed to `peer` so
/// they ride piggybacked in front of the message about to be encoded —
/// zero extra wire traffic whenever there is reverse traffic to carry
/// them.
fn take_ctrl_buf_credits(rs: &mut RankState, cfg: &MpiConfig, peer: u32) -> Vec<u8> {
    let mut bytes = take_ctrl_buf(rs);
    if cfg.flow_control && peer != rs.rank && !fc_grants_blocked(rs, cfg) {
        let owed = rs.fc[peer as usize].owed;
        if owed > 0 {
            CtrlMsg::CreditUpdate { credits: owed }.encode_into(&mut bytes);
            rs.fc[peer as usize].owed = 0;
            rs.fc[peer as usize].granted += owed as u64;
            rs.counters.credits_piggybacked += owed as u64;
        }
    }
    bytes
}

/// Accounts a matched eager payload from `peer`. The credit is returned
/// at *match* time (not arrival): piggybacked on the next outgoing
/// message to `peer`, or — when half the peer's credit pool is owed and
/// no reverse traffic has carried it back — via an explicit
/// `CreditUpdate`, so a starved sender is always unblocked eventually.
fn fc_on_eager_matched(rs: &mut RankState, ctx: &mut Ctx<'_, '_>, peer: u32, size: u64) {
    if !ctx.cfg.flow_control || size == 0 || peer == rs.rank {
        return;
    }
    rs.fc[peer as usize].matched += 1;
    rs.fc[peer as usize].owed += 1;
    if fc_grants_blocked(rs, ctx.cfg) {
        rs.counters.grants_deferred += 1;
        return;
    }
    if rs.fc[peer as usize].owed >= (ctx.cfg.eager_credits / 2).max(1) {
        fc_send_credits(rs, ctx, peer);
    }
}

/// Sends an explicit `CreditUpdate` carrying everything owed to `peer`.
fn fc_send_credits(rs: &mut RankState, ctx: &mut Ctx<'_, '_>, peer: u32) {
    let owed = rs.fc[peer as usize].owed;
    if owed == 0 {
        return;
    }
    rs.fc[peer as usize].owed = 0;
    rs.fc[peer as usize].granted += owed as u64;
    rs.counters.credit_msgs += 1;
    send_ctrl_msg(rs, ctx, peer, &CtrlMsg::CreditUpdate { credits: owed }, 0);
}

/// A payload-bearing unexpected entry was matched out of the queue:
/// update occupancy, and when the backlog just dropped below the
/// grant-withholding threshold, flush deferred grants to every peer so
/// starved senders resume (degradation is graceful both ways).
fn fc_unexpected_removed(rs: &mut RankState, ctx: &mut Ctx<'_, '_>) {
    let was_blocked = fc_grants_blocked(rs, ctx.cfg);
    debug_assert!(rs.unexpected_eager > 0, "occupancy tracking out of sync");
    rs.unexpected_eager -= 1;
    if was_blocked && !fc_grants_blocked(rs, ctx.cfg) {
        for peer in 0..rs.nprocs {
            if rs.fc[peer as usize].owed > 0 {
                fc_send_credits(rs, ctx, peer);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Device tier: staged bounce-buffer pipeline (DESIGN §16, TEMPI)
// ---------------------------------------------------------------------

/// True when the user buffer at `buf` is device-resident on `rank`.
/// The enabled-flag and empty-map checks keep this a two-branch
/// predicate on the default (all-host) configuration, which is the
/// bit-identity guarantee for the pre-device-tier cost model.
fn buf_on_device(ctx: &Ctx<'_, '_>, rank: u32, buf: Va) -> bool {
    if !ctx.host.device.enabled {
        return false;
    }
    let tiers = &ctx.mems[rank as usize].tiers;
    !tiers.is_empty() && tiers.is_device(buf)
}

/// Extra synchronous DMA charge for an unsegmented path (eager, self,
/// batched unpack) touching a device-resident buffer. The whole packed
/// image crosses the bus in one gather/scatter DMA — cost is modelled
/// on packed bytes, not extent. Returns 0 for host buffers, so adding
/// it is free on the classic paths.
fn device_direct_ns(ctx: &Ctx<'_, '_>, rank: u32, buf: Va, bytes: u64, to_device: bool) -> Time {
    if bytes == 0 || !buf_on_device(ctx, rank, buf) {
        0
    } else {
        ctx.host.dma_ns(bytes, to_device)
    }
}

/// Registration surcharge for pinning device-resident memory (the
/// driver must translate and pin device pages for RDMA; one extra
/// fixed-cost ioctl per registration batch).
fn device_reg_extra(ctx: &Ctx<'_, '_>, rank: u32, buf: Va) -> Time {
    if buf_on_device(ctx, rank, buf) {
        ctx.host.device.reg_extra_ns
    } else {
        0
    }
}

/// Picks the bounce-chunk size for a staged device transfer. An
/// explicit [`MpiConfig::staging_chunk`] wins; otherwise the adaptive
/// model (the §6 selector extended to the host↔device axis) evaluates
/// the closed-form two-stage pipeline over power-of-two chunks from
/// 4 KiB to 4 MiB and takes the argmin, ties to the smaller chunk.
fn staging_chunk_for(
    cfg: &MpiConfig,
    host: &HostConfig,
    bytes: u64,
    blocks: usize,
    to_device: bool,
) -> u64 {
    if cfg.staging_chunk != 0 {
        return cfg.staging_chunk;
    }
    let bufs = cfg.staging_bufs.clamp(1, MAX_PIPELINE_BUFS);
    let mut best_c = 4096u64;
    let mut best_t = Time::MAX;
    let mut c = 4096u64;
    loop {
        let n = bytes.div_ceil(c).max(1);
        let chunk_bytes = |k: u64| (k * c + c).min(bytes) - k * c;
        let cpu = |k: u64| {
            let cb = chunk_bytes(k);
            let cblocks = ((blocks as u64 * cb).div_ceil(bytes)).max(1) as usize;
            host.copy_ns(cblocks, cb)
        };
        let dma = |k: u64| host.dma_ns(chunk_bytes(k), to_device);
        // Unpack stages CPU-scatter before DMA-out; pack DMAs in before
        // CPU-gather. The finish time is symmetric, but keep the order
        // honest for when the stages' costs diverge.
        let t = if to_device {
            two_stage_finish_ns(n, bufs, cpu, dma)
        } else {
            two_stage_finish_ns(n, bufs, dma, cpu)
        };
        if t < best_t {
            best_t = t;
            best_c = c;
        }
        if c >= bytes || c >= (4 << 20) {
            break;
        }
        c <<= 1;
    }
    best_c
}

/// Charges the modelled cost of one pack/unpack of `bytes` packed bytes
/// (spanning `blocks` layout blocks) against the user buffer at `buf`,
/// returning the finish time.
///
/// Host-resident buffers charge the classic element-wise copy on the
/// rank's CPU — bit-identical to the pre-device-tier model. Device
/// buffers stream through a bounded ring of bounce buffers: the CPU
/// packs/unpacks chunk `k` while the DMA engine moves chunk `k-1`
/// (TEMPI's staged pipeline, arXiv:2012.14363). Both stages reserve
/// real serial resources, so the overlap is visible in the trace.
fn charge_copy(
    rs: &mut RankState,
    ctx: &mut Ctx<'_, '_>,
    buf: Va,
    blocks: usize,
    bytes: u64,
    to_device: bool,
    label: &'static str,
) -> Time {
    if bytes == 0 || !buf_on_device(ctx, rs.rank, buf) {
        let cost = ctx.host.copy_ns(blocks.max(1), bytes);
        return rs.cpu.reserve_labeled(ctx.now(), cost, label);
    }
    let chunk = staging_chunk_for(ctx.cfg, ctx.host, bytes, blocks, to_device);
    let bufs = ctx.cfg.staging_bufs.clamp(1, MAX_PIPELINE_BUFS);
    let n = bytes.div_ceil(chunk);
    let now = ctx.now();
    // Ring of bounce-buffer release times: chunk k may not start until
    // chunk k-bufs has fully drained its slot.
    let mut ring = [now; MAX_PIPELINE_BUFS];
    let mut finish = now;
    for k in 0..n {
        let lo = k * chunk;
        let cbytes = (lo + chunk).min(bytes) - lo;
        let cblocks = ((blocks as u64 * cbytes).div_ceil(bytes)).max(1) as usize;
        let cpu_cost = ctx.host.copy_ns(cblocks, cbytes);
        let dma_cost = ctx.host.dma_ns(cbytes, to_device);
        let slot = (k % bufs as u64) as usize;
        let gate = ring[slot];
        finish = if to_device {
            // Unpack: CPU scatters the chunk into a bounce image, DMA
            // pushes it to the device.
            let cpu_done = rs.cpu.reserve_labeled(gate, cpu_cost, label);
            rs.dma.reserve_labeled(cpu_done, dma_cost, "dma")
        } else {
            // Pack: DMA pulls the chunk down, CPU gathers it onward.
            let dma_done = rs.dma.reserve_labeled(gate, dma_cost, "dma");
            rs.cpu.reserve_labeled(dma_done, cpu_cost, label)
        };
        ring[slot] = finish;
    }
    rs.counters.staging_chunks += n;
    finish
}

// ---------------------------------------------------------------------
// Eager path (§7.1)
// ---------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn eager_send(
    rs: &mut RankState,
    ctx: &mut Ctx<'_, '_>,
    req: ReqId,
    peer: u32,
    buf: Va,
    count: u64,
    ty: &Datatype,
    tag: u32,
    size: u64,
) {
    rs.counters.eager_sends += 1;
    let seq = rs.take_seq(peer);
    let plan = rs.plan_for(ty, count);
    let mut payload = rs.scratch.take_bytes(size as usize);
    pack_range(ctx, rs.rank, &plan, buf, 0, size, &mut payload);
    let (blocks, _) = plan.block_count_in(0, size).expect("range valid");
    let mut cost = ctx.host.copy_ns(blocks.max(1), size);
    if ctx.cfg.scheme == Scheme::Generic {
        // Original path (Fig. 1): pack into a temporary buffer, then
        // copy into the eager buffer.
        cost += ctx.host.malloc_ns + ctx.host.memcpy_ns(size) + ctx.host.free_ns;
    }
    // Device-resident source: one synchronous gather-DMA down to the
    // host before the pack (eager messages are too small to stage).
    cost += device_direct_ns(ctx, rs.rank, buf, size, false);
    rs.counters.packs += 1;
    rs.counters.bytes_packed += size;

    let mut bytes = take_ctrl_buf_credits(rs, ctx.cfg, peer);
    CtrlMsg::EagerData { tag, seq, size }.encode_into(&mut bytes);
    bytes.extend_from_slice(&payload);
    rs.scratch.put_bytes(payload);
    send_ctrl(rs, ctx, peer, bytes, cost);

    // The send request completes when packing is done (the user buffer
    // is then reusable).
    let done = rs.cpu.available_at();
    ctx.cpu_event(done, rs.rank, CpuAct::SendDone { req });
}

/// Unpacks an eager payload into the user buffer and schedules request
/// completion.
fn eager_deliver(
    rs: &mut RankState,
    ctx: &mut Ctx<'_, '_>,
    req: ReqId,
    buf: Va,
    count: u64,
    ty: &Datatype,
    data: &[u8],
) {
    let plan = rs.plan_for(ty, count);
    let size = plan.total_bytes();
    assert_eq!(data.len() as u64, size, "eager size mismatch");
    unpack_from_slice(ctx, rs.rank, &plan, buf, 0, size, data);
    let (blocks, _) = plan.block_count_in(0, size).expect("range valid");
    let mut cost = ctx.host.copy_ns(blocks.max(1), size);
    if ctx.cfg.scheme == Scheme::Generic {
        cost += ctx.host.malloc_ns + ctx.host.memcpy_ns(size) + ctx.host.free_ns;
    }
    // Device-resident destination: one synchronous scatter-DMA up.
    cost += device_direct_ns(ctx, rs.rank, buf, size, true);
    rs.counters.unpacks += 1;
    rs.counters.bytes_unpacked += size;
    let done = rs.cpu.reserve_labeled(ctx.now(), cost, "unpack");
    ctx.cpu_event(done, rs.rank, CpuAct::RecvDone { req });
}

fn self_send(
    rs: &mut RankState,
    ctx: &mut Ctx<'_, '_>,
    req: ReqId,
    buf: Va,
    count: u64,
    ty: &Datatype,
    tag: u32,
) {
    let plan = rs.plan_for(ty, count);
    let size = plan.total_bytes();
    // `data` escapes into the unexpected queue, so it cannot come from
    // the scratch pool.
    let data = pack_to_vec(ctx, rs.rank, &plan, buf, 0, size);
    let (blocks, _) = plan.block_count_in(0, size).expect("range valid");
    let cost = ctx.host.copy_ns(blocks.max(1), size)
        + device_direct_ns(ctx, rs.rank, buf, size, false);
    let done = rs.cpu.reserve_labeled(ctx.now(), cost, "pack");
    ctx.cpu_event(done, rs.rank, CpuAct::SendDone { req });

    let seq = rs.take_seq(rs.rank);
    if let Some(p) = rs.match_posted(rs.rank, tag) {
        eager_deliver(rs, ctx, p.req, p.buf, p.count, &p.ty, &data);
    } else {
        let payload_bearing = !data.is_empty();
        rs.unexpected.push_back(Unexpected::Eager {
            peer: rs.rank,
            tag,
            seq,
            data,
        });
        if payload_bearing {
            rs.unexpected_eager += 1;
            rs.counters.peak_unexpected =
                rs.counters.peak_unexpected.max(rs.unexpected_eager as u64);
        }
    }
}

/// Sends a control/eager message, taking a ring buffer or queueing.
/// `extra_cpu_ns` is work (e.g. packing) that precedes the post.
/// Encodes `msg` into a recycled per-rank buffer (no allocation in
/// steady state) and sends it as a control message.
fn send_ctrl_msg(
    rs: &mut RankState,
    ctx: &mut Ctx<'_, '_>,
    peer: u32,
    msg: &CtrlMsg,
    extra_cpu_ns: Time,
) {
    let mut bytes = take_ctrl_buf_credits(rs, ctx.cfg, peer);
    msg.encode_into(&mut bytes);
    send_ctrl(rs, ctx, peer, bytes, extra_cpu_ns);
}

/// Pops a cleared encode buffer from the rank's free-list.
fn take_ctrl_buf(rs: &mut RankState) -> Vec<u8> {
    // Served from the scratch pool so encode buffers inherit its
    // thread-local spill: a fresh cluster's first control messages
    // reuse capacity retired by the previous one.
    let mut v = rs.scratch.take_bytes(0);
    v.clear();
    v
}

/// Returns an encode buffer whose bytes have been copied out (into a
/// ring slot) for reuse.
fn recycle_ctrl_buf(rs: &mut RankState, buf: Vec<u8>) {
    rs.scratch.put_bytes(buf);
}

fn send_ctrl(
    rs: &mut RankState,
    ctx: &mut Ctx<'_, '_>,
    peer: u32,
    bytes: Vec<u8>,
    extra_cpu_ns: Time,
) {
    assert!(
        bytes.len() as u64 <= ctx.cfg.eager_buf_size,
        "control message ({} B) exceeds eager buffer",
        bytes.len()
    );
    rs.counters.ctrl_msgs += 1;
    let label = if extra_cpu_ns > 0 { "pack" } else { "ctrl" };
    let cost = extra_cpu_ns + ctx.cfg.ctrl_overhead_ns + ctx.net.post_single_ns;
    let ready = rs.cpu.reserve_labeled(ctx.now(), cost, label);
    match rs.eager_send_free.pop() {
        Some(va) => {
            ctx.mems[rs.rank as usize]
                .space
                .write(va, &bytes)
                .expect("eager ring buffer writable");
            write_slot_terminator(rs, ctx, va, bytes.len());
            let wr = SendWr {
                wr_id: WR_EAGER | va,
                opcode: Opcode::Send,
                sges: SgeList::of(Sge {
                    addr: va,
                    len: bytes.len() as u64,
                    lkey: rs.eager_lkey,
                }),
                remote: None,
                signaled: true,
            };
            if let Err(e) = ctx.post_send(ready, rs.rank, peer, wr) {
                rs.eager_send_free.push(va);
                // A dead QP suspends the message with the connection
                // manager; it is re-sent after re-establishment.
                if ctx.cfg.recovery
                    && matches!(e, PostError::QpError { .. } | PostError::QpNotReady { .. })
                    && ensure_reconnect(rs, ctx, peer)
                {
                    rs.reconn
                        .get_mut(&peer)
                        .expect("entry ensured above")
                        .pending_ctrl
                        .push(bytes);
                    return;
                }
                rs.counters.post_errors += 1;
                rs.errors.push(MpiError::Post { peer, err: e });
            }
            recycle_ctrl_buf(rs, bytes);
        }
        None => {
            rs.eager_pending
                .push_back(crate::rank::PendingEager { peer, bytes });
            rs.counters.peak_pending = rs.counters.peak_pending.max(rs.eager_pending.len() as u64);
        }
    }
}

/// Writes one zero byte — an invalid message kind — after the encoded
/// message in a send-ring slot. Slots are reused without clearing, so a
/// recovery re-post must re-derive the wire length by decoding; with
/// piggybacked credit prefixes the terminator is what makes the end of
/// a slot (in particular a standalone `CreditUpdate`) unambiguous
/// against stale bytes from the slot's previous occupant.
fn write_slot_terminator(rs: &mut RankState, ctx: &mut Ctx<'_, '_>, va: Va, len: usize) {
    if (len as u64) < ctx.cfg.eager_buf_size {
        ctx.mems[rs.rank as usize]
            .space
            .write(va + len as u64, &[0])
            .expect("eager ring buffer writable");
    }
}

fn drain_pending_eager(rs: &mut RankState, ctx: &mut Ctx<'_, '_>) {
    while !rs.eager_pending.is_empty() && !rs.eager_send_free.is_empty() {
        let p = rs.eager_pending.pop_front().expect("checked non-empty");
        let va = rs.eager_send_free.pop().expect("checked non-empty");
        ctx.mems[rs.rank as usize]
            .space
            .write(va, &p.bytes)
            .expect("eager ring buffer writable");
        write_slot_terminator(rs, ctx, va, p.bytes.len());
        let ready = rs.cpu.reserve_labeled(
            ctx.now(),
            ctx.cfg.ctrl_overhead_ns + ctx.net.post_single_ns,
            "ctrl",
        );
        let wr = SendWr {
            wr_id: WR_EAGER | va,
            opcode: Opcode::Send,
            sges: SgeList::of(Sge {
                addr: va,
                len: p.bytes.len() as u64,
                lkey: rs.eager_lkey,
            }),
            remote: None,
            signaled: true,
        };
        if let Err(e) = ctx.post_send(ready, rs.rank, p.peer, wr) {
            rs.eager_send_free.push(va);
            if ctx.cfg.recovery
                && matches!(e, PostError::QpError { .. } | PostError::QpNotReady { .. })
                && ensure_reconnect(rs, ctx, p.peer)
            {
                rs.reconn
                    .get_mut(&p.peer)
                    .expect("entry ensured above")
                    .pending_ctrl
                    .push(p.bytes);
                continue;
            }
            rs.counters.post_errors += 1;
            rs.errors.push(MpiError::Post {
                peer: p.peer,
                err: e,
            });
        }
        recycle_ctrl_buf(rs, p.bytes);
    }
}

fn repost_eager_recv(rs: &mut RankState, ctx: &mut Ctx<'_, '_>, peer: u32, va: Va) {
    rs.cpu
        .reserve_labeled(ctx.now(), ctx.net.post_recv_ns, "post-recv");
    let wr = RecvWr {
        wr_id: va,
        sges: SgeList::of(Sge {
            addr: va,
            len: ctx.cfg.eager_buf_size,
            lkey: rs.eager_lkey,
        }),
    };
    let now = ctx.now();
    ctx.post_recv(now, rs.rank, peer, wr);
    // SRQ-limit-style reaction: the receive ring for this peer dipped to
    // its low watermark before the repost — the receiver is falling
    // behind. Flush any owed credits immediately so the peer learns the
    // true resource state instead of stalling on a piggyback that may
    // never come.
    if ctx.cfg.flow_control
        && ctx.net.recv_low_watermark > 0
        && !fc_grants_blocked(rs, ctx.cfg)
        && ctx.fabric.recvq_len(rs.rank, peer) <= ctx.net.recv_low_watermark
    {
        fc_send_credits(rs, ctx, peer);
    }
}

// ---------------------------------------------------------------------
// Control message dispatch
// ---------------------------------------------------------------------

fn on_ctrl(
    rs: &mut RankState,
    am: &mut ActiveMsgs,
    ctx: &mut Ctx<'_, '_>,
    peer: u32,
    bytes: &[u8],
) {
    rs.cpu
        .reserve_labeled(ctx.now(), ctx.cfg.ctrl_overhead_ns, "ctrl");
    // Piggybacked `CreditUpdate`s precede the carried message in the
    // same buffer; consume that prefix, then dispatch the message.
    let mut off = 0usize;
    loop {
        let Some((msg, hdr_len)) = CtrlMsg::decode(&bytes[off..]) else {
            rs.errors.push(MpiError::MalformedCtrl { peer });
            return;
        };
        off += hdr_len;
        if let CtrlMsg::CreditUpdate { credits } = msg {
            rs.fc[peer as usize].credits += credits;
            rs.fc[peer as usize].received += u64::from(credits);
            if off >= bytes.len() {
                return; // standalone credit message
            }
            continue;
        }
        match msg {
            CtrlMsg::EagerData { tag, seq, size } => {
                let payload = &bytes[off..off + size as usize];
                match rs.match_posted(peer, tag) {
                    Some(p) => {
                        fc_on_eager_matched(rs, ctx, peer, size);
                        eager_deliver(rs, ctx, p.req, p.buf, p.count, &p.ty, payload);
                    }
                    None => {
                        // Copy to a dynamic buffer (charged) and queue.
                        rs.cpu.reserve_labeled(
                            ctx.now(),
                            ctx.host.malloc_ns + ctx.host.memcpy_ns(size),
                            "unexpected",
                        );
                        rs.unexpected.push_back(Unexpected::Eager {
                            peer,
                            tag,
                            seq,
                            data: payload.to_vec(),
                        });
                        if size > 0 {
                            rs.unexpected_eager += 1;
                            rs.counters.peak_unexpected =
                                rs.counters.peak_unexpected.max(rs.unexpected_eager as u64);
                        }
                    }
                }
            }
            CtrlMsg::RndvStart {
                tag,
                seq,
                size,
                scheme,
                nsegs,
                seg_size,
                blk_min,
                blk_median,
            } => {
                if am.recvs.contains_key(&(peer, seq)) {
                    // A duplicate start for a live transfer: a flushed
                    // original was never delivered (flush precludes
                    // delivery), so this is exclusively the sender's
                    // §5.4.2 protection-fault renegotiation.
                    receiver_renegotiate(rs, am, ctx, peer, seq, size, nsegs, seg_size);
                    return;
                }
                match rs.match_posted(peer, tag) {
                    Some(mut p) => {
                        // The posted receive may carry wildcards; the protocol
                        // needs the concrete source.
                        p.peer = peer;
                        p.tag = tag;
                        receiver_start(
                            rs, am, ctx, p, seq, size, scheme, nsegs, seg_size, blk_min, blk_median,
                        );
                    }
                    None => rs.unexpected.push_back(Unexpected::Rndv {
                        peer,
                        tag,
                        seq,
                        size,
                        scheme,
                        nsegs,
                        seg_size,
                        blk_min,
                        blk_median,
                    }),
                }
            }
            CtrlMsg::RndvReply { seq, scheme, body } => {
                sender_on_reply(rs, am, ctx, peer, seq, scheme, body);
            }
            CtrlMsg::SegReady {
                seq,
                k,
                addr,
                rkey,
                len,
            } => {
                receiver_on_seg_ready(rs, am, ctx, peer, seq, k, addr, rkey, len);
            }
            CtrlMsg::Fin { seq } => {
                sender_on_fin(rs, am, ctx, peer, seq);
            }
            CtrlMsg::RndvProbe { seq } => {
                // The sender suspects its RndvStart or our reply was lost.
                // Resend the reply if it already went out; otherwise it is
                // still pending and will go out on its own.
                let resend = am.recvs.get(&(peer, seq)).and_then(|m| {
                    if m.pending_reply.is_none() {
                        m.reply_copy.clone()
                    } else {
                        None
                    }
                });
                if let Some(r) = resend {
                    send_ctrl(rs, ctx, peer, r, 0);
                }
            }
            CtrlMsg::RndvResume { seq } => {
                on_resume_request(rs, am, ctx, peer, seq);
            }
            CtrlMsg::RndvResumeAck { seq, from_k, done } => {
                on_resume_ack(rs, am, ctx, peer, seq, from_k, done);
            }
            CtrlMsg::CreditUpdate { .. } => unreachable!("consumed by the prefix loop"),
        }
        return;
    }
}

/// A recovering peer asks where to restart transfer `seq`. Answered
/// from the receiver's acknowledged-prefix state; for P-RRS the local
/// *sender* re-announces its packed segments instead.
fn on_resume_request(
    rs: &mut RankState,
    am: &mut ActiveMsgs,
    ctx: &mut Ctx<'_, '_>,
    peer: u32,
    seq: u64,
) {
    if let Some(msg) = am.recvs.get(&(peer, seq)) {
        // Per-QP FIFO delivery plus flush-kills-the-suffix means the
        // arrived count is exactly the delivered contiguous prefix for
        // the segment-ordered schemes; Multi-W/Hybrid restart from the
        // beginning (their writes are idempotent and the completion
        // marker is posted last).
        let from_k = match msg.scheme {
            Scheme::BcSpup | Scheme::RwgUp => msg.segs_arrived,
            _ => 0,
        };
        let ack = CtrlMsg::RndvResumeAck {
            seq,
            from_k,
            done: false,
        };
        send_ctrl_msg(rs, ctx, peer, &ack, 0);
        return;
    }
    if rs.done_seqs.contains(&(peer, seq)) {
        let ack = CtrlMsg::RndvResumeAck {
            seq,
            from_k: 0,
            done: true,
        };
        send_ctrl_msg(rs, ctx, peer, &ack, 0);
        return;
    }
    if am.sends.contains_key(&(peer, seq)) {
        // P-RRS: the recovering receiver drives the reads; re-announce
        // every packed segment (re-reads are idempotent).
        let Some(mut msg) = am.sends.remove(&(peer, seq)) else {
            return;
        };
        msg.posted_segs = 0;
        try_post_ready(rs, ctx, &mut msg);
        if let Some(err) = msg.failed.take() {
            resolve_send_failure(rs, am, ctx, msg, err);
            return;
        }
        am.sends.insert((peer, seq), msg);
        return;
    }
    if !ctx.fabric.faults_active() {
        rs.errors.push(MpiError::UnknownMessage { peer, seq });
    }
}

/// The peer answered our resume request: skip the acknowledged prefix
/// and re-drive the rest (or finish outright when the transfer had
/// already completed remotely).
fn on_resume_ack(
    rs: &mut RankState,
    am: &mut ActiveMsgs,
    ctx: &mut Ctx<'_, '_>,
    peer: u32,
    seq: u64,
    from_k: u32,
    done: bool,
) {
    let Some(mut msg) = am.sends.remove(&(peer, seq)) else {
        return;
    };
    if done {
        // Everything (including the receiver-side completion) landed
        // before the failure; only our completion CQE was lost.
        msg.completed = true;
        sender_release(rs, ctx, &mut msg);
        rs.complete_req(msg.req);
        return;
    }
    rs.counters.resumed_chunks += from_k as u64;
    msg.posted_segs = from_k.min(msg.nsegs);
    if msg.posted_segs >= msg.nsegs && matches!(msg.scheme, Scheme::BcSpup | Scheme::RwgUp) {
        // Every segment already reached the receiver; only the final
        // (signaled) completion was lost to the flush. The sender's
        // data duty is done.
        msg.completed = true;
        sender_release(rs, ctx, &mut msg);
        rs.complete_req(msg.req);
        return;
    }
    if let Some(hy) = msg.hybrid.as_mut() {
        // Hybrid restarts whole phases: direct writes and the marker
        // are idempotent.
        hy.direct_posted = false;
        hy.marker_posted = false;
    }
    try_post_ready(rs, ctx, &mut msg);
    if let Some(err) = msg.failed.take() {
        resolve_send_failure(rs, am, ctx, msg, err);
        return;
    }
    // Restart staging only for schemes that stage: RWG-UP (and the
    // contiguous P-RRS sender) gathers straight from the pinned user
    // buffer and owns no pack buffers.
    if !msg.pack_bufs.is_empty() || msg.hybrid.is_some() {
        start_pack_chain(rs, ctx, &mut msg);
    }
    am.sends.insert((peer, seq), msg);
}

// ---------------------------------------------------------------------
// Receiver side
// ---------------------------------------------------------------------

/// Adaptive scheme choice (§6), run on the receiver where both sides'
/// block statistics are known.
pub fn adaptive_choose(
    cfg: &MpiConfig,
    transport: TransportClass,
    size: u64,
    snd_min: u64,
    snd_median: u64,
    rcv_min: u64,
    rcv_median: u64,
) -> Scheme {
    let _ = (snd_min, rcv_min);
    match transport {
        TransportClass::Ib => {
            if size < cfg.adaptive_copy_reduced_min {
                return Scheme::BcSpup;
            }
            if snd_median >= cfg.adaptive_multiw_block && rcv_median >= cfg.adaptive_multiw_block {
                return Scheme::MultiW;
            }
            // Asymmetric cases (§5.2): a contiguous sender favours
            // receiver-driven reads; a contiguous receiver favours
            // gather writes.
            if snd_median >= size {
                return Scheme::PRrs;
            }
            if rcv_median >= size {
                return Scheme::RwgUp;
            }
            if rcv_median >= cfg.adaptive_multiw_block {
                // Large receiver blocks: unpack is cheap, gather write
                // wins.
                return Scheme::RwgUp;
            }
            Scheme::BcSpup
        }
        TransportClass::ShmDouble => {
            // Every byte bounces through the shared segment twice no
            // matter the scheme: the zero-copy schemes' registration
            // avoidance buys nothing, while BC-SPUP's packed pipeline
            // feeds the segment slots perfectly.
            Scheme::BcSpup
        }
        TransportClass::ShmSingle => {
            // Direct cross-process copies exist, but every work
            // request pays a syscall setup — per-block schemes need
            // much larger blocks than on IB to amortize it.
            if size < cfg.adaptive_copy_reduced_min {
                return Scheme::BcSpup;
            }
            let blk = cfg.adaptive_shm_multiw_block;
            if snd_median >= blk && rcv_median >= blk {
                return Scheme::MultiW;
            }
            if snd_median >= size {
                return Scheme::PRrs;
            }
            if rcv_median >= size {
                return Scheme::RwgUp;
            }
            Scheme::BcSpup
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn receiver_start(
    rs: &mut RankState,
    am: &mut ActiveMsgs,
    ctx: &mut Ctx<'_, '_>,
    p: PostedRecv,
    seq: u64,
    size: u64,
    scheme_wire: u8,
    nsegs: u32,
    seg_size: u64,
    blk_min: u64,
    blk_median: u64,
) {
    let Some(proposal) = Scheme::from_wire(scheme_wire) else {
        rs.fail_req(p.req, MpiError::MalformedCtrl { peer: p.peer });
        return;
    };
    let rstats = rs.plan_for(&p.ty, p.count).stats();
    // Contiguous on both sides: the standard zero-copy rendezvous
    // (§3.1) — one RDMA write from user buffer to user buffer,
    // regardless of the configured datatype scheme. Multi-W with a
    // single block is exactly that path.
    let both_contiguous = size > 0 && blk_min >= size && rstats.min >= size;
    let mut scheme = if both_contiguous {
        Scheme::MultiW
    } else {
        match proposal {
            Scheme::Adaptive => adaptive_choose(
                ctx.cfg,
                ctx.fabric.class(),
                size,
                blk_min,
                blk_median,
                rstats.min,
                rstats.median,
            ),
            s => s,
        }
    };
    assert_eq!(
        p.count * p.ty.size(),
        size,
        "type signature mismatch between send and receive"
    );

    let mut msg = RecvMsg {
        req: p.req,
        peer: p.peer,
        seq,
        buf: p.buf,
        count: p.count,
        ty: p.ty,
        size,
        scheme,
        nsegs,
        seg_size,
        unpack_bufs: rs.scratch.take_stage(),
        segs_arrived: 0,
        segs_unpacked: 0,
        user_regs: Vec::new(),
        pending_reply: None,
        reads_outstanding: 0,
        segs_announced: 0,
        packed_intervals: Vec::new(),
        marker_seen: false,
        completed: false,
        pinned_bytes: 0,
        reply_copy: None,
        segs_seen: rs.scratch.take_set(),
        drop_unpacks: 0,
    };
    am.imm_map.insert((p.peer, (seq & 0xFFFF) as u16), seq);

    // Multi-W and Hybrid may not fit their reply into an eager buffer
    // (a "complicated datatype" per §5.3); fall back to BC-SPUP.
    if scheme == Scheme::MultiW {
        let reply = build_multiw_reply(rs, ctx, &mut msg);
        match reply {
            Some(r) => {
                // Guaranteed by build_multiw_reply's 2× budget check.
                let cost = receiver_reg_cost(rs, ctx, &mut msg).unwrap_or(0);
                maybe_evict_reply_reg(rs, ctx, &msg);
                msg.pending_reply = Some(r);
                let done = rs.cpu.reserve_labeled(ctx.now(), cost, "reg");
                ctx.cpu_event(
                    done,
                    rs.rank,
                    CpuAct::ReceiverReady {
                        peer: msg.peer,
                        seq,
                    },
                );
                am.recvs.insert((msg.peer, seq), msg);
                return;
            }
            None => {
                rs.counters.scheme_fallbacks += 1;
                scheme = Scheme::BcSpup;
                msg.scheme = scheme;
            }
        }
    }
    if scheme == Scheme::Hybrid {
        match build_hybrid_reply(rs, ctx, &mut msg) {
            Some(r) => {
                maybe_evict_reply_reg(rs, ctx, &msg);
                msg.pending_reply = Some(r);
                let done = rs
                    .cpu
                    .reserve_labeled(ctx.now(), ctx.cfg.ctrl_overhead_ns, "ctrl");
                ctx.cpu_event(
                    done,
                    rs.rank,
                    CpuAct::ReceiverReady {
                        peer: msg.peer,
                        seq,
                    },
                );
                am.recvs.insert((msg.peer, seq), msg);
                return;
            }
            None => {
                rs.counters.scheme_fallbacks += 1;
                scheme = Scheme::BcSpup;
                msg.scheme = scheme;
            }
        }
    }
    if scheme == Scheme::PRrs {
        // Register the user buffer for scattered reads — unless the
        // pinning budget is exhausted, in which case degrade to the
        // copy-based BC-SPUP path (§4.3.3 graceful fallback).
        match receiver_reg_cost(rs, ctx, &mut msg) {
            Some(cost) => {
                let reply = CtrlMsg::RndvReply {
                    seq,
                    scheme: scheme.to_wire(),
                    body: ReplyBody::ReadGo,
                };
                msg.pending_reply = Some({
                    let mut buf = take_ctrl_buf(rs);
                    reply.encode_into(&mut buf);
                    buf
                });
                let done = rs.cpu.reserve_labeled(ctx.now(), cost, "reg");
                ctx.cpu_event(
                    done,
                    rs.rank,
                    CpuAct::ReceiverReady {
                        peer: msg.peer,
                        seq,
                    },
                );
                am.recvs.insert((msg.peer, seq), msg);
                return;
            }
            None => {
                rs.counters.scheme_fallbacks += 1;
                scheme = Scheme::BcSpup;
                msg.scheme = scheme;
            }
        }
    }

    match scheme {
        Scheme::Generic => {
            // One dynamic unpack buffer for the whole message.
            let sb = acquire_stage(rs, ctx, size);
            let reply = CtrlMsg::RndvReply {
                seq,
                scheme: scheme.to_wire(),
                body: ReplyBody::Buffer {
                    addr: sb.va,
                    rkey: sb.rkey,
                },
            };
            msg.unpack_bufs.push(sb);
            msg.pending_reply = Some({
                let mut buf = take_ctrl_buf(rs);
                reply.encode_into(&mut buf);
                buf
            });
            let done = rs
                .cpu
                .reserve_labeled(ctx.now(), ctx.cfg.ctrl_overhead_ns, "ctrl");
            ctx.cpu_event(
                done,
                rs.rank,
                CpuAct::ReceiverReady {
                    peer: msg.peer,
                    seq,
                },
            );
        }
        Scheme::BcSpup | Scheme::RwgUp => {
            let mut segs = crate::msg::SegList::new();
            for _ in 0..nsegs {
                let sb = acquire_unpack_seg(rs, ctx);
                segs.push((sb.va, sb.rkey));
                msg.unpack_bufs.push(sb);
            }
            let reply = CtrlMsg::RndvReply {
                seq,
                scheme: scheme.to_wire(),
                body: ReplyBody::Segments { segs },
            };
            msg.pending_reply = Some({
                let mut buf = take_ctrl_buf(rs);
                reply.encode_into(&mut buf);
                buf
            });
            let done = rs
                .cpu
                .reserve_labeled(ctx.now(), ctx.cfg.ctrl_overhead_ns, "ctrl");
            ctx.cpu_event(
                done,
                rs.rank,
                CpuAct::ReceiverReady {
                    peer: msg.peer,
                    seq,
                },
            );
        }
        Scheme::MultiW | Scheme::Hybrid | Scheme::PRrs | Scheme::Adaptive => {
            unreachable!("resolved above")
        }
    }
    am.recvs.insert((msg.peer, seq), msg);
}

/// Acquires pin-down registrations covering `blocks`, charging their
/// bytes against `reg_budget_bytes`. Returns the host cost, or `None`
/// when the budget would be exceeded — in which case nothing is
/// acquired and the caller falls back to a copy-based scheme.
fn try_acquire_user_regs(
    rs: &mut RankState,
    ctx: &mut Ctx<'_, '_>,
    blocks: &[(Va, u64)],
    regs_out: &mut Vec<Registration>,
    pinned_out: &mut u64,
) -> Option<Time> {
    let plan = ogr::plan(blocks, &ctx.host.reg);
    let need: u64 = plan.regions.iter().map(|&(_, l)| l).sum();
    if rs.pinned_user_bytes.saturating_add(need) > ctx.cfg.reg_budget_bytes {
        return None;
    }
    rs.pinned_user_bytes += need;
    *pinned_out += need;
    let mut cost = 0;
    for &(a, l) in &plan.regions {
        let acq = rs
            .pindown
            .acquire(&mut ctx.mems[rs.rank as usize].regs, &ctx.host.reg, a, l);
        cost += acq.cost_ns;
        regs_out.push(acq.reg);
    }
    Some(cost)
}

/// Registers the receiver's user buffer via OGR + pin-down cache;
/// returns the host cost, or `None` when the pinning budget is
/// exhausted.
fn receiver_reg_cost(rs: &mut RankState, ctx: &mut Ctx<'_, '_>, msg: &mut RecvMsg) -> Option<Time> {
    let plan = rs.plan_for(&msg.ty, msg.count);
    let mut blocks = rs.scratch.take_blocks();
    abs_blocks_into(&plan, msg.buf, &mut blocks);
    let cost = try_acquire_user_regs(rs, ctx, &blocks, &mut msg.user_regs, &mut msg.pinned_bytes);
    rs.scratch.put_blocks(blocks);
    cost.map(|c| c + device_reg_extra(ctx, rs.rank, msg.buf))
}

/// Builds the Multi-W reply, or `None` when it cannot fit an eager
/// buffer.
fn build_multiw_reply(
    rs: &mut RankState,
    ctx: &mut Ctx<'_, '_>,
    msg: &mut RecvMsg,
) -> Option<Vec<u8>> {
    let tag = rs.registry.register(&msg.ty);
    let key = (msg.peer, tag.index, tag.version);
    let layout = if rs.sent_layouts.contains(&key) {
        None
    } else {
        Some(msg.ty.flat().as_ref().clone())
    };
    // Probe size before committing registrations.
    let tplan = rs.plan_for(&msg.ty, msg.count);
    let mut blocks = rs.scratch.take_blocks();
    abs_blocks_into(&tplan, msg.buf, &mut blocks);
    let plan = ogr::plan(&blocks, &ctx.host.reg);
    rs.scratch.put_blocks(blocks);
    // Both this commit and the caller's receiver_reg_cost charge the
    // pinning budget (the pin-down cache refcounts the duplicate
    // acquire), so require headroom for twice the footprint.
    let need: u64 = plan.regions.iter().map(|&(_, l)| l).sum();
    if rs.pinned_user_bytes.saturating_add(need.saturating_mul(2)) > ctx.cfg.reg_budget_bytes {
        return None;
    }
    let probe = CtrlMsg::RndvReply {
        seq: msg.seq,
        scheme: Scheme::MultiW.to_wire(),
        body: ReplyBody::MultiW {
            base: msg.buf,
            tag,
            count: msg.count,
            layout: layout.clone(),
            regions: plan.regions.iter().map(|&(a, l)| (a, l, 0)).collect(),
        },
    }
    .encode();
    if probe.len() as u64 > ctx.cfg.eager_buf_size {
        return None;
    }
    if layout.is_some() {
        rs.sent_layouts.insert(key);
    }
    // Commit: register and fill in real rkeys.
    rs.pinned_user_bytes += need;
    msg.pinned_bytes += need;
    let mut regions = Vec::with_capacity(plan.regions.len());
    let mut cost = 0;
    for &(a, l) in &plan.regions {
        let acq = rs
            .pindown
            .acquire(&mut ctx.mems[rs.rank as usize].regs, &ctx.host.reg, a, l);
        cost += acq.cost_ns;
        msg.user_regs.push(acq.reg);
        regions.push((a, l, acq.reg.rkey));
    }
    // The registration cost is charged by the caller through
    // receiver_reg_cost's path; charge it here directly instead.
    rs.cpu.reserve_labeled(ctx.now(), cost, "reg");
    Some(
        CtrlMsg::RndvReply {
            seq: msg.seq,
            scheme: Scheme::MultiW.to_wire(),
            body: ReplyBody::MultiW {
                base: msg.buf,
                tag,
                count: msg.count,
                layout,
                regions,
            },
        }
        .encode(),
    )
}

/// Builds the Hybrid reply: registers the direct blocks, assigns
/// unpack segments for the packed part, and records the partition on
/// the receive message. Returns `None` when the reply cannot fit an
/// eager buffer (fall back to BC-SPUP).
fn build_hybrid_reply(
    rs: &mut RankState,
    ctx: &mut Ctx<'_, '_>,
    msg: &mut RecvMsg,
) -> Option<Vec<u8>> {
    let threshold = ctx.cfg.hybrid_block_threshold;
    let tplan = rs.plan_for(&msg.ty, msg.count);
    let mut blocks = rs.scratch.take_blocks();
    abs_blocks_into(&tplan, msg.buf, &mut blocks);
    let mut lens = rs.scratch.take_lens();
    lens.extend(blocks.iter().map(|&(_, l)| l));
    let part = hybrid_partition(&lens, threshold);
    rs.scratch.put_lens(lens);
    let (nsegs_p, seg_size_p) = if part.packed_bytes == 0 {
        (0u32, 1u64)
    } else {
        let ss = ctx
            .cfg
            .segment_size(part.packed_bytes)
            .min(ctx.cfg.max_seg_size);
        (part.packed_bytes.div_ceil(ss) as u32, ss)
    };

    let tag = rs.registry.register(&msg.ty);
    let key = (msg.peer, tag.index, tag.version);
    let layout = if rs.sent_layouts.contains(&key) {
        None
    } else {
        Some(msg.ty.flat().as_ref().clone())
    };
    // Probe the reply size with placeholder keys before committing.
    // The full block list is no longer needed, so narrow it to the
    // direct part in place and hand the scratch vector back.
    blocks.retain(|&(_, l)| l >= threshold);
    let plan = ogr::plan(&blocks, &ctx.host.reg);
    rs.scratch.put_blocks(blocks);
    let probe = CtrlMsg::RndvReply {
        seq: msg.seq,
        scheme: Scheme::Hybrid.to_wire(),
        body: ReplyBody::Hybrid {
            base: msg.buf,
            tag,
            count: msg.count,
            layout: layout.clone(),
            regions: plan.regions.iter().map(|&(a, l)| (a, l, 0)).collect(),
            segs: vec![(0, 0); nsegs_p as usize],
            threshold,
        },
    }
    .encode();
    if probe.len() as u64 > ctx.cfg.eager_buf_size {
        return None;
    }
    if layout.is_some() {
        rs.sent_layouts.insert(key);
    }
    // Commit: register direct regions, acquire unpack segments.
    let mut regions = Vec::with_capacity(plan.regions.len());
    let mut cost = 0;
    for &(a, l) in &plan.regions {
        let acq = rs
            .pindown
            .acquire(&mut ctx.mems[rs.rank as usize].regs, &ctx.host.reg, a, l);
        cost += acq.cost_ns;
        msg.user_regs.push(acq.reg);
        regions.push((a, l, acq.reg.rkey));
    }
    rs.cpu.reserve_labeled(ctx.now(), cost, "reg");
    let mut segs = Vec::with_capacity(nsegs_p as usize);
    for _ in 0..nsegs_p {
        let sb = acquire_unpack_seg(rs, ctx);
        segs.push((sb.va, sb.rkey));
        msg.unpack_bufs.push(sb);
    }
    msg.nsegs = nsegs_p;
    msg.seg_size = seg_size_p;
    msg.packed_intervals = part.packed;
    Some(
        CtrlMsg::RndvReply {
            seq: msg.seq,
            scheme: Scheme::Hybrid.to_wire(),
            body: ReplyBody::Hybrid {
                base: msg.buf,
                tag,
                count: msg.count,
                layout,
                regions,
                segs,
                threshold,
            },
        }
        .encode(),
    )
}

/// A data segment (or whole message) arrived, announced by immediate
/// data.
fn on_segment_arrival(
    rs: &mut RankState,
    am: &mut ActiveMsgs,
    ctx: &mut Ctx<'_, '_>,
    peer: u32,
    imm: u32,
    _byte_len: u64,
) {
    let (seq16, k) = imm_parse(imm);
    let Some(&seq) = am.imm_map.get(&(peer, seq16)) else {
        // Stale duplicate after the message was aborted or completed.
        // Under fault injection a recovery re-drive can legitimately
        // repeat traffic; only protocol-clean runs treat it as an error.
        if !ctx.fabric.faults_active() {
            rs.errors.push(MpiError::UnknownMessage {
                peer,
                seq: seq16 as u64,
            });
        }
        return;
    };
    let Some(msg) = am.recvs.get_mut(&(peer, seq)) else {
        if !ctx.fabric.faults_active() {
            rs.errors.push(MpiError::UnknownMessage { peer, seq });
        }
        return;
    };
    if k != MARKER_K && !msg.segs_seen.insert(k) {
        // A resumed sender repeated a segment that already landed
        // (idempotent RDMA write): count it once.
        return;
    }
    msg.segs_arrived += 1;
    match msg.scheme {
        Scheme::Generic => {
            // Whole message in unpack_bufs[0]: unpack it all.
            let plan = rs.plan_for(&msg.ty, msg.count);
            let mut data = rs.scratch.take_bytes(msg.size as usize);
            data.copy_from_slice(
                ctx.mems[rs.rank as usize]
                    .space
                    .slice(msg.unpack_bufs[0].va, msg.size)
                    .expect("unpack buffer readable"),
            );
            unpack_from_slice(ctx, rs.rank, &plan, msg.buf, 0, msg.size, &data);
            rs.scratch.put_bytes(data);
            let (blocks, _) = plan.block_count_in(0, msg.size).expect("range valid");
            rs.counters.bytes_unpacked += msg.size;
            let buf = msg.buf;
            let size = msg.size;
            let done = charge_copy(rs, ctx, buf, blocks, size, true, "unpack");
            ctx.cpu_event(done, rs.rank, CpuAct::UnpackAll { peer, seq });
        }
        Scheme::BcSpup | Scheme::RwgUp => {
            if ctx.cfg.segment_unpack || msg.scheme == Scheme::BcSpup {
                unpack_segment(rs, ctx, msg, k);
            } else if msg.segs_arrived == msg.nsegs {
                // Fig. 12 ablation: unpack everything only after the
                // last segment arrived. Costs stay a per-segment
                // `copy_ns` sum — ceil rounding makes that differ from
                // one whole-message charge, and the figure measures it.
                let mut total_cost = 0;
                for kk in 0..msg.nsegs {
                    let (blocks, len) = unpack_segment_do(rs, ctx, msg, kk);
                    total_cost += ctx.host.copy_ns(blocks.max(1), len);
                }
                // Device destination: the batched image crosses in one
                // scatter-DMA (nothing left to overlap with).
                total_cost += device_direct_ns(ctx, rs.rank, msg.buf, msg.size, true);
                rs.counters.bytes_unpacked += msg.size;
                let done = rs.cpu.reserve_labeled(ctx.now(), total_cost, "unpack");
                ctx.cpu_event(done, rs.rank, CpuAct::UnpackAll { peer, seq });
            }
        }
        Scheme::MultiW => {
            // Zero-copy: data is already in place; the immediate on the
            // last write is the completion notification.
            receiver_complete(rs, am, ctx, peer, seq);
        }
        Scheme::Hybrid => {
            if k == MARKER_K {
                msg.marker_seen = true;
                if msg.segs_unpacked == msg.nsegs {
                    receiver_complete(rs, am, ctx, peer, seq);
                }
            } else {
                hybrid_unpack_segment(rs, ctx, msg, k);
            }
        }
        Scheme::PRrs | Scheme::Adaptive => {
            // No write-path segments exist for these schemes; a stray
            // arrival is a stale duplicate or protocol corruption.
            rs.errors.push(MpiError::UnknownMessage { peer, seq });
        }
    }
}

/// Unpacks segment `k` (functional now) and schedules the completion.
fn unpack_segment(rs: &mut RankState, ctx: &mut Ctx<'_, '_>, msg: &mut RecvMsg, k: u32) {
    let (blocks, len) = unpack_segment_do(rs, ctx, msg, k);
    rs.counters.bytes_unpacked += len;
    let buf = msg.buf;
    let done = charge_copy(rs, ctx, buf, blocks, len, true, "unpack");
    ctx.cpu_event(
        done,
        rs.rank,
        CpuAct::UnpackSeg {
            peer: msg.peer,
            seq: msg.seq,
            k,
        },
    );
}

/// Performs the functional unpack of segment `k`, returning the block
/// and byte counts the caller charges costs on (segment-at-a-time paths
/// route through [`charge_copy`]; the Fig. 12 batch ablation sums
/// per-segment `copy_ns` itself so its ceil-rounded total is unchanged).
fn unpack_segment_do(
    rs: &mut RankState,
    ctx: &mut Ctx<'_, '_>,
    msg: &mut RecvMsg,
    k: u32,
) -> (usize, u64) {
    let rank = rs.rank;
    let plan = rs.plan_for(&msg.ty, msg.count);
    let lo = k as u64 * msg.seg_size;
    let hi = (lo + msg.seg_size).min(msg.size);
    let mut data = rs.scratch.take_bytes((hi - lo) as usize);
    data.copy_from_slice(
        ctx.mems[rank as usize]
            .space
            .slice(msg.unpack_bufs[k as usize].va, hi - lo)
            .expect("unpack buffer readable"),
    );
    unpack_from_slice(ctx, rank, &plan, msg.buf, lo, hi, &data);
    rs.scratch.put_bytes(data);
    let (blocks, _) = plan.block_count_in(lo, hi).expect("range valid");
    (blocks, hi - lo)
}

/// Unpacks Hybrid packed segment `k` from its pool buffer into the
/// small-block stream intervals it covers.
fn hybrid_unpack_segment(rs: &mut RankState, ctx: &mut Ctx<'_, '_>, msg: &mut RecvMsg, k: u32) {
    let packed_bytes: u64 = msg.packed_intervals.iter().map(|&(a, b)| b - a).sum();
    let lo = k as u64 * msg.seg_size;
    let hi = (lo + msg.seg_size).min(packed_bytes);
    let mut data = rs.scratch.take_bytes((hi - lo) as usize);
    data.copy_from_slice(
        ctx.mems[rs.rank as usize]
            .space
            .slice(msg.unpack_bufs[k as usize].va, hi - lo)
            .expect("unpack buffer readable"),
    );
    let stream_ivs = substream_to_stream(&msg.packed_intervals, lo, hi);
    let plan = rs.plan_for(&msg.ty, msg.count);
    let mut cursor = 0usize;
    let mut blocks = 0usize;
    for &(a, b) in &stream_ivs {
        let n = (b - a) as usize;
        unpack_from_slice(
            ctx,
            rs.rank,
            &plan,
            msg.buf,
            a,
            b,
            &data[cursor..cursor + n],
        );
        cursor += n;
        let (nb, _) = plan.block_count_in(a, b).expect("range valid");
        blocks += nb;
    }
    rs.scratch.put_bytes(data);
    rs.counters.bytes_unpacked += hi - lo;
    let buf = msg.buf;
    let done = charge_copy(rs, ctx, buf, blocks, hi - lo, true, "unpack");
    ctx.cpu_event(
        done,
        rs.rank,
        CpuAct::UnpackSeg {
            peer: msg.peer,
            seq: msg.seq,
            k,
        },
    );
}

fn receiver_complete(
    rs: &mut RankState,
    am: &mut ActiveMsgs,
    ctx: &mut Ctx<'_, '_>,
    peer: u32,
    seq: u64,
) {
    let Some(mut msg) = am.recvs.remove(&(peer, seq)) else {
        return;
    };
    if msg.completed {
        return;
    }
    msg.completed = true;
    am.imm_map.remove(&(peer, (seq & 0xFFFF) as u16));
    // Remember completion so a recovering sender's resume request can
    // be answered with `done` instead of a renegotiation.
    rs.done_seqs.insert((peer, seq));
    receiver_release(rs, ctx, &mut msg);
    if msg.scheme == Scheme::PRrs {
        // Tell the sender its pack buffers are free.
        send_ctrl_msg(rs, ctx, peer, &CtrlMsg::Fin { seq }, 0);
    }
    rs.complete_req(msg.req);
}

/// Releases a receive message's staging buffers, user registrations,
/// and budget charge (shared by completion and abort).
fn receiver_release(rs: &mut RankState, ctx: &mut Ctx<'_, '_>, msg: &mut RecvMsg) {
    release_stage_bufs(rs, ctx, &msg.unpack_bufs, true);
    let mut bufs = std::mem::take(&mut msg.unpack_bufs);
    bufs.clear();
    rs.scratch.put_stage(bufs);
    if let Some(v) = msg.pending_reply.take() {
        rs.scratch.put_bytes(v);
    }
    if let Some(v) = msg.reply_copy.take() {
        rs.scratch.put_bytes(v);
    }
    rs.scratch.put_set(std::mem::take(&mut msg.segs_seen));
    let mut cost = 0;
    for r in &msg.user_regs {
        // `BadKey` = force-evicted under the transfer (§5.4.2).
        if let Ok(c) =
            rs.pindown
                .release(&mut ctx.mems[rs.rank as usize].regs, &ctx.host.reg, r.lkey)
        {
            cost += c;
        }
    }
    msg.user_regs.clear();
    if cost > 0 {
        rs.cpu.reserve_labeled(ctx.now(), cost, "dereg");
    }
    rs.pinned_user_bytes = rs.pinned_user_bytes.saturating_sub(msg.pinned_bytes);
    msg.pinned_bytes = 0;
}

/// P-RRS: a packed segment is available on the sender; issue reads.
#[allow(clippy::too_many_arguments)]
fn receiver_on_seg_ready(
    rs: &mut RankState,
    am: &mut ActiveMsgs,
    ctx: &mut Ctx<'_, '_>,
    peer: u32,
    seq: u64,
    k: u32,
    addr: Va,
    rkey: u32,
    len: u64,
) {
    let Some(msg) = am.recvs.get_mut(&(peer, seq)) else {
        if !ctx.fabric.faults_active() {
            rs.errors.push(MpiError::UnknownMessage { peer, seq });
        }
        return;
    };
    if !msg.segs_seen.insert(k) {
        // Duplicate announcement from a recovery re-drive (the reset
        // below re-counts distinct segments only).
        return;
    }
    msg.segs_announced += 1;
    let lo = k as u64 * msg.seg_size;
    let hi = lo + len;
    let plan = rs.plan_for(&msg.ty, msg.count);
    let mbuf = msg.buf;
    let mut blocks = rs.scratch.take_blocks();
    plan.for_each_block(lo, hi, |off, l| {
        blocks.push(((mbuf as i64 + off) as u64, l));
    })
    .expect("range valid");
    let chunks = chunk_gather(&blocks, ctx.net.max_sge);
    rs.scratch.put_blocks(blocks);
    let mut src_off = 0u64;
    let n = chunks.len();
    let mut wrs = Vec::with_capacity(n);
    for (sges, clen) in chunks {
        let sges = sges
            .into_iter()
            .map(|(a, l)| Sge {
                addr: a,
                len: l,
                lkey: lkey_for(&msg.user_regs, a, l),
            })
            .collect();
        wrs.push(SendWr {
            wr_id: WR_READ | seq,
            opcode: Opcode::RdmaRead,
            sges,
            remote: Some((addr + src_off, rkey)),
            signaled: true,
        });
        src_off += clen;
    }
    msg.reads_outstanding += n as u32;
    rs.counters.data_wrs += n as u64;
    let mut post_err = None;
    for wr in wrs {
        let ready = rs
            .cpu
            .reserve_labeled(ctx.now(), ctx.net.post_single_ns, "post");
        if let Err(e) = ctx.post_send(ready, rs.rank, peer, wr) {
            post_err = Some(e);
            break;
        }
    }
    if let Some(e) = post_err {
        // A dead QP hands the read-driven transfer to the connection
        // manager instead of failing the receive.
        if ctx.cfg.recovery
            && matches!(e, PostError::QpError { .. } | PostError::QpNotReady { .. })
            && ensure_reconnect(rs, ctx, peer)
        {
            rs.reconn
                .get_mut(&peer)
                .expect("entry ensured above")
                .recvs
                .insert(seq);
            return;
        }
        rs.counters.post_errors += 1;
        abort_recv(rs, am, ctx, peer, seq, MpiError::Post { peer, err: e });
    }
}

fn receiver_read_done(
    rs: &mut RankState,
    am: &mut ActiveMsgs,
    ctx: &mut Ctx<'_, '_>,
    peer: u32,
    seq: u64,
) {
    let Some(msg) = am.recvs.get_mut(&(peer, seq)) else {
        return;
    };
    // Saturating: a recovery reset may have zeroed the counter while a
    // straggling completion was already in flight.
    msg.reads_outstanding = msg.reads_outstanding.saturating_sub(1);
    if msg.reads_outstanding == 0 && msg.segs_announced == msg.nsegs {
        receiver_complete(rs, am, ctx, peer, seq);
    }
}

// ---------------------------------------------------------------------
// Sender side
// ---------------------------------------------------------------------

fn sender_on_reply(
    rs: &mut RankState,
    am: &mut ActiveMsgs,
    ctx: &mut Ctx<'_, '_>,
    peer: u32,
    seq: u64,
    scheme_wire: u8,
    body: ReplyBody,
) {
    let Some(mut msg) = am.sends.remove(&(peer, seq)) else {
        // The send was aborted earlier (flush/timeout) or already
        // completed; the reply is a stale straggler.
        if !ctx.fabric.faults_active() {
            rs.errors.push(MpiError::UnknownMessage { peer, seq });
        }
        return;
    };
    if msg.targets.is_some() {
        // Duplicate reply: a probe-triggered resend raced the original.
        am.sends.insert((peer, seq), msg);
        return;
    }
    let Some(reply_scheme) = Scheme::from_wire(scheme_wire) else {
        rs.errors.push(MpiError::MalformedCtrl { peer });
        am.sends.insert((peer, seq), msg);
        return;
    };
    let proposed = msg.scheme;
    msg.scheme = reply_scheme;

    let targets = match body {
        ReplyBody::Buffer { addr, rkey } => SendTargets::Buffer { addr, rkey },
        ReplyBody::Segments { segs } => SendTargets::Segments(segs),
        ReplyBody::ReadGo => SendTargets::ReadGo,
        ReplyBody::MultiW {
            base,
            tag,
            count,
            layout,
            regions,
        } => {
            let layout: Arc<FlatLayout> = match layout {
                Some(l) => {
                    let l = Arc::new(l);
                    rs.layout_cache.insert(peer, tag, l.clone());
                    l
                }
                None => match rs.layout_cache.lookup(peer, tag) {
                    Some(l) => l,
                    None => {
                        // The promised cached layout is gone — the
                        // reply cannot be acted on.
                        rs.errors.push(MpiError::MalformedCtrl { peer });
                        msg.scheme = proposed;
                        am.sends.insert((peer, seq), msg);
                        return;
                    }
                },
            };
            let rcv_blocks = layout
                .repeat(count)
                .into_iter()
                .map(|(o, l)| ((base as i64 + o) as u64, l))
                .collect();
            SendTargets::MultiW {
                rcv_blocks,
                regions,
            }
        }
        ReplyBody::Hybrid {
            base,
            tag,
            count,
            layout,
            regions,
            segs,
            threshold,
        } => {
            let layout: Arc<FlatLayout> = match layout {
                Some(l) => {
                    let l = Arc::new(l);
                    rs.layout_cache.insert(peer, tag, l.clone());
                    l
                }
                None => match rs.layout_cache.lookup(peer, tag) {
                    Some(l) => l,
                    None => {
                        rs.errors.push(MpiError::MalformedCtrl { peer });
                        msg.scheme = proposed;
                        am.sends.insert((peer, seq), msg);
                        return;
                    }
                },
            };
            let rcv_blocks: Vec<(Va, u64)> = layout
                .repeat(count)
                .into_iter()
                .map(|(o, l)| ((base as i64 + o) as u64, l))
                .collect();
            let mut lens = rs.scratch.take_lens();
            lens.extend(rcv_blocks.iter().map(|&(_, l)| l));
            let part = hybrid_partition(&lens, threshold);
            rs.scratch.put_lens(lens);
            // Each direct interval corresponds to one receiver block;
            // pair them up by walking the blocks again.
            let mut direct = Vec::with_capacity(part.direct.len());
            let mut pos = 0u64;
            for &(a, l) in &rcv_blocks {
                if l >= threshold {
                    direct.push((pos, pos + l, a));
                }
                pos += l;
            }
            debug_assert_eq!(direct.len(), part.direct.len());
            let seg_size_p = if part.packed_bytes == 0 {
                1
            } else {
                ctx.cfg
                    .segment_size(part.packed_bytes)
                    .min(ctx.cfg.max_seg_size)
            };
            msg.nsegs = segs.len() as u32;
            msg.seg_size = seg_size_p;
            msg.hybrid = Some(HybridSend {
                packed_intervals: part.packed,
                direct,
                segs,
                regions,
                direct_posted: false,
                marker_posted: false,
            });
            SendTargets::HybridReady
        }
    };
    msg.targets = Some(targets);

    let _ = proposed;
    // Ensure the early work matching the *reply's* scheme is running —
    // the receiver may have picked differently (adaptive decision,
    // Multi-W fallback, or the zero-copy contiguous path). Where the
    // reply wants the user buffer pinned and the budget refuses,
    // degrade to a copy path on this side only (§4.3.3).
    match msg.scheme {
        Scheme::Generic => {
            if msg.pack_bufs.is_empty() {
                let sb = acquire_stage(rs, ctx, msg.size);
                msg.pack_bufs.push(sb);
                msg.nsegs = 1;
                msg.seg_size = msg.size;
                start_pack_chain(rs, ctx, &mut msg);
            }
        }
        Scheme::PRrs if msg.contig => {
            // Contiguous sender: no packing at all — the receiver reads
            // straight out of the registered user buffer (§5.2's
            // asymmetric case, where P-RRS shines).
            if !msg.reg_done && msg.user_regs.is_empty() && !sender_register(rs, ctx, &mut msg) {
                // Cannot pin the user buffer: announce packed pool
                // segments instead, like a non-contiguous sender.
                rs.counters.scheme_fallbacks += 1;
                msg.contig = false;
                assign_pack_bufs(rs, ctx, &mut msg);
                start_pack_chain(rs, ctx, &mut msg);
            }
        }
        Scheme::BcSpup | Scheme::PRrs => {
            if msg.pack_bufs.is_empty() {
                // Segmentation is unchanged — nsegs/seg_size were in
                // the start message and the receiver echoes them.
                assign_pack_bufs(rs, ctx, &mut msg);
                start_pack_chain(rs, ctx, &mut msg);
            }
        }
        Scheme::RwgUp => {
            if !msg.reg_done && msg.user_regs.is_empty() && !sender_register(rs, ctx, &mut msg) {
                // Gather writes need the pinned user buffer; fall back
                // to packed writes into the same segment targets.
                rs.counters.scheme_fallbacks += 1;
                msg.scheme = Scheme::BcSpup;
                if msg.pack_bufs.is_empty() {
                    assign_pack_bufs(rs, ctx, &mut msg);
                    start_pack_chain(rs, ctx, &mut msg);
                }
            }
        }
        Scheme::MultiW => {
            if !msg.reg_done && msg.user_regs.is_empty() && !sender_register(rs, ctx, &mut msg) {
                // The receiver's blocks are already pinned on its side;
                // stage the whole message through a copy buffer and
                // stream it into those blocks.
                rs.counters.scheme_fallbacks += 1;
                msg.mw_stage = true;
                msg.reg_done = true;
                if msg.pack_bufs.is_empty() {
                    msg.nsegs = 1;
                    msg.seg_size = msg.size.max(1);
                    let sb = acquire_stage(rs, ctx, msg.size);
                    msg.pack_bufs.push(sb);
                }
                start_pack_chain(rs, ctx, &mut msg);
            }
        }
        Scheme::Hybrid => {
            // hybrid_register runs when the reply body is decoded.
        }
        Scheme::Adaptive => unreachable!("reply always carries a concrete scheme"),
    }

    if msg.scheme == Scheme::Hybrid {
        hybrid_register(rs, ctx, &mut msg);
    }
    try_post_ready(rs, ctx, &mut msg);
    if let Some(err) = msg.failed.take() {
        resolve_send_failure(rs, am, ctx, msg, err);
        return;
    }
    am.sends.insert((peer, seq), msg);
}

/// Registers exactly the sender blocks that feed Hybrid direct writes
/// (the packed part travels through pool buffers and needs no user
/// registration). Sets `reg_done` synchronously when nothing needs
/// pinning.
fn hybrid_register(rs: &mut RankState, ctx: &mut Ctx<'_, '_>, msg: &mut SendMsg) {
    let Some(hy) = msg.hybrid.as_ref() else {
        return;
    };
    let tplan = rs.plan_for(&msg.ty, msg.count);
    let mbuf = msg.buf;
    let mut blocks = rs.scratch.take_blocks();
    for &(lo, hi, _) in &hy.direct {
        tplan
            .for_each_block(lo, hi, |off, l| {
                blocks.push(((mbuf as i64 + off) as u64, l));
            })
            .expect("range valid");
    }
    // Drop blocks already covered by registrations acquired earlier
    // (e.g. the contiguous-sender fast path).
    blocks.retain(|&(a, l)| !msg.user_regs.iter().any(|r| r.covers(a, l)));
    if blocks.is_empty() {
        // Prediction covered everything (or no direct part): posting
        // may proceed as soon as any in-flight registration completes.
        rs.scratch.put_blocks(blocks);
        if msg.user_regs.is_empty() {
            msg.reg_done = true;
        }
        return;
    }
    // The receiver's partition needs more coverage than predicted.
    msg.reg_done = false;
    let plan = ogr::plan(&blocks, &ctx.host.reg);
    rs.scratch.put_blocks(blocks);
    let mut cost = 0;
    for &(a, l) in &plan.regions {
        let acq = rs
            .pindown
            .acquire(&mut ctx.mems[rs.rank as usize].regs, &ctx.host.reg, a, l);
        cost += acq.cost_ns;
        msg.user_regs.push(acq.reg);
    }
    let done = rs.cpu.reserve_labeled(ctx.now(), cost, "reg");
    ctx.cpu_event(
        done,
        rs.rank,
        CpuAct::SenderRegDone {
            peer: msg.peer,
            seq: msg.seq,
        },
    );
}

/// Registers the sender's user buffer via OGR (RWG-UP / Multi-W).
/// Returns `false` — acquiring nothing and scheduling nothing — when
/// the pinning budget would be exceeded.
fn sender_register(rs: &mut RankState, ctx: &mut Ctx<'_, '_>, msg: &mut SendMsg) -> bool {
    let plan = rs.plan_for(&msg.ty, msg.count);
    let mut blocks = rs.scratch.take_blocks();
    abs_blocks_into(&plan, msg.buf, &mut blocks);
    let acquired =
        try_acquire_user_regs(rs, ctx, &blocks, &mut msg.user_regs, &mut msg.pinned_bytes);
    rs.scratch.put_blocks(blocks);
    let Some(mut cost) = acquired else {
        return false;
    };
    cost += device_reg_extra(ctx, rs.rank, msg.buf);
    let done = rs.cpu.reserve_labeled(ctx.now(), cost, "reg");
    ctx.cpu_event(
        done,
        rs.rank,
        CpuAct::SenderRegDone {
            peer: msg.peer,
            seq: msg.seq,
        },
    );
    true
}

/// Assigns pack staging buffers for all segments.
fn assign_pack_bufs(rs: &mut RankState, ctx: &mut Ctx<'_, '_>, msg: &mut SendMsg) {
    for _ in 0..msg.nsegs {
        let sb = acquire_pack_seg(rs, ctx);
        msg.pack_bufs.push(sb);
    }
}

/// Starts (or continues) the sender's pack chain: one segment at a time
/// on the CPU, so posting interleaves with packing (§4.3.1 pipelining).
fn start_pack_chain(rs: &mut RankState, ctx: &mut Ctx<'_, '_>, msg: &mut SendMsg) {
    if msg.pack_chain_running || msg.packed >= msg.nsegs {
        return;
    }
    if msg.scheme == Scheme::Hybrid {
        hybrid_pack_next(rs, ctx, msg);
        return;
    }
    let k = msg.packed;
    let plan = rs.plan_for(&msg.ty, msg.count);
    let lo = k as u64 * msg.seg_size;
    let hi = (lo + msg.seg_size).min(msg.size);
    let mut data = rs.scratch.take_bytes((hi - lo) as usize);
    pack_range(ctx, rs.rank, &plan, msg.buf, lo, hi, &mut data);
    ctx.mems[rs.rank as usize]
        .space
        .write(msg.pack_bufs[k as usize].va, &data)
        .expect("pack buffer writable");
    rs.scratch.put_bytes(data);
    let (blocks, _) = plan.block_count_in(lo, hi).expect("range valid");
    let buf = msg.buf;
    let done = charge_copy(rs, ctx, buf, blocks, hi - lo, false, "pack");
    msg.pack_chain_running = true;
    ctx.cpu_event(
        done,
        rs.rank,
        CpuAct::PackSeg {
            peer: msg.peer,
            seq: msg.seq,
            k,
        },
    );
}

/// Packs the next segment of the Hybrid packed substream: gathers the
/// small-block stream intervals covering `[k*S, (k+1)*S)` of the
/// substream into a pool buffer.
fn hybrid_pack_next(rs: &mut RankState, ctx: &mut Ctx<'_, '_>, msg: &mut SendMsg) {
    let Some(hy) = msg.hybrid.as_ref() else {
        return; // partition unknown until the reply arrives
    };
    if msg.pack_bufs.is_empty() {
        return; // buffers assigned when direct writes go out
    }
    let k = msg.packed;
    let packed_bytes: u64 = hy.packed_intervals.iter().map(|&(a, b)| b - a).sum();
    let lo = k as u64 * msg.seg_size;
    let hi = (lo + msg.seg_size).min(packed_bytes);
    let stream_ivs = substream_to_stream(&hy.packed_intervals, lo, hi);
    let plan = rs.plan_for(&msg.ty, msg.count);
    let mut data = rs.scratch.take_bytes((hi - lo) as usize);
    let mut cursor = 0usize;
    let mut blocks = 0usize;
    for &(a, b) in &stream_ivs {
        let n = (b - a) as usize;
        pack_range(
            ctx,
            rs.rank,
            &plan,
            msg.buf,
            a,
            b,
            &mut data[cursor..cursor + n],
        );
        cursor += n;
        let (nb, _) = plan.block_count_in(a, b).expect("range valid");
        blocks += nb;
    }
    debug_assert_eq!(cursor as u64, hi - lo);
    ctx.mems[rs.rank as usize]
        .space
        .write(msg.pack_bufs[k as usize].va, &data)
        .expect("pack buffer writable");
    rs.scratch.put_bytes(data);
    let buf = msg.buf;
    let done = charge_copy(rs, ctx, buf, blocks, hi - lo, false, "pack");
    msg.pack_chain_running = true;
    ctx.cpu_event(
        done,
        rs.rank,
        CpuAct::PackSeg {
            peer: msg.peer,
            seq: msg.seq,
            k,
        },
    );
}

fn seg_len(msg: &SendMsg, k: u32) -> u64 {
    let lo = k as u64 * msg.seg_size;
    ((lo + msg.seg_size).min(msg.size)) - lo
}

/// Posts whatever data the current state allows.
fn try_post_ready(rs: &mut RankState, ctx: &mut Ctx<'_, '_>, msg: &mut SendMsg) {
    // Reads one `(addr, rkey)` segment target by value; avoids cloning
    // the whole target list per call just to appease the borrow checker.
    fn seg_target(msg: &SendMsg, k: u32) -> (Va, u32) {
        match &msg.targets {
            Some(SendTargets::Segments(s)) => s[k as usize],
            _ => unreachable!("segment schemes carry segment targets"),
        }
    }
    match (&msg.targets, msg.scheme) {
        (None, _) => {}
        (Some(SendTargets::Buffer { addr, rkey }), Scheme::Generic) => {
            if msg.packed == msg.nsegs && msg.posted_segs == 0 {
                // Whole message packed into pack_bufs (one buffer per
                // segment — Generic uses a single whole-size buffer).
                debug_assert_eq!(msg.nsegs, 1, "Generic packs whole messages");
                let sb = msg.pack_bufs[0];
                let ready = rs
                    .cpu
                    .reserve_labeled(ctx.now(), ctx.net.post_single_ns, "post");
                let wr = SendWr {
                    wr_id: WR_DATA | msg.seq,
                    opcode: Opcode::RdmaWriteImm(imm_of(msg.seq, 0)),
                    sges: SgeList::of(Sge {
                        addr: sb.va,
                        len: msg.size,
                        lkey: sb.lkey,
                    }),
                    remote: Some((*addr, *rkey)),
                    signaled: true,
                };
                rs.counters.data_wrs += 1;
                if let Err(e) = ctx.post_send(ready, rs.rank, msg.peer, wr) {
                    rs.counters.post_errors += 1;
                    msg.failed = Some(MpiError::Post {
                        peer: msg.peer,
                        err: e,
                    });
                    return;
                }
                msg.posted_segs = 1;
            }
        }
        (Some(SendTargets::Segments(_)), Scheme::BcSpup) => {
            while msg.posted_segs < msg.packed {
                let k = msg.posted_segs;
                let (dst, dst_rkey) = seg_target(msg, k);
                let sb = msg.pack_bufs[k as usize];
                let len = seg_len(msg, k);
                let ready = rs
                    .cpu
                    .reserve_labeled(ctx.now(), ctx.net.post_single_ns, "post");
                let wr = SendWr {
                    wr_id: WR_DATA | msg.seq,
                    opcode: Opcode::RdmaWriteImm(imm_of(msg.seq, k)),
                    sges: SgeList::of(Sge {
                        addr: sb.va,
                        len,
                        lkey: sb.lkey,
                    }),
                    remote: Some((dst, dst_rkey)),
                    signaled: k == msg.nsegs - 1,
                };
                rs.counters.data_wrs += 1;
                if let Err(e) = ctx.post_send(ready, rs.rank, msg.peer, wr) {
                    rs.counters.post_errors += 1;
                    msg.failed = Some(MpiError::Post {
                        peer: msg.peer,
                        err: e,
                    });
                    return;
                }
                msg.posted_segs += 1;
            }
        }
        (Some(SendTargets::Segments(_)), Scheme::RwgUp) => {
            // Resume-aware: after a connection recovery `posted_segs`
            // holds the receiver-acknowledged prefix, and the gather
            // writes restart from that segment boundary.
            if !msg.reg_done || msg.posted_segs >= msg.nsegs {
                return;
            }
            let plan = rs.plan_for(&msg.ty, msg.count);
            let mbuf = msg.buf;
            let mut blocks = rs.scratch.take_blocks();
            for k in msg.posted_segs..msg.nsegs {
                let (seg_dst, seg_rkey) = seg_target(msg, k);
                let lo = k as u64 * msg.seg_size;
                let hi = (lo + msg.seg_size).min(msg.size);
                blocks.clear();
                plan.for_each_block(lo, hi, |off, l| {
                    blocks.push(((mbuf as i64 + off) as u64, l));
                })
                .expect("range valid");
                let chunks = chunk_gather(&blocks, ctx.net.max_sge);
                let nchunks = chunks.len();
                let mut dst_off = 0u64;
                for (ci, (raw_sges, clen)) in chunks.into_iter().enumerate() {
                    let sges = raw_sges
                        .into_iter()
                        .map(|(a, l)| Sge {
                            addr: a,
                            len: l,
                            lkey: lkey_for(&msg.user_regs, a, l),
                        })
                        .collect();
                    let last_chunk = ci == nchunks - 1;
                    let wr = SendWr {
                        wr_id: WR_DATA | msg.seq,
                        opcode: if last_chunk {
                            Opcode::RdmaWriteImm(imm_of(msg.seq, k))
                        } else {
                            Opcode::RdmaWrite
                        },
                        sges,
                        remote: Some((seg_dst + dst_off, seg_rkey)),
                        signaled: last_chunk && k == msg.nsegs - 1,
                    };
                    dst_off += clen;
                    rs.counters.data_wrs += 1;
                    let ready = rs
                        .cpu
                        .reserve_labeled(ctx.now(), ctx.net.post_single_ns, "post");
                    if let Err(e) = ctx.post_send(ready, rs.rank, msg.peer, wr) {
                        rs.counters.post_errors += 1;
                        msg.failed = Some(MpiError::Post {
                            peer: msg.peer,
                            err: e,
                        });
                        return;
                    }
                }
            }
            rs.scratch.put_blocks(blocks);
            msg.posted_segs = msg.nsegs;
        }
        (Some(SendTargets::ReadGo), Scheme::PRrs) if msg.contig => {
            // Announce segments pointing directly into the registered
            // user buffer; nothing was packed.
            if !msg.reg_done || msg.posted_segs > 0 {
                return;
            }
            let base = msg.buf as i64 + msg.ty.true_lb();
            for k in 0..msg.nsegs {
                let addr = (base + (k as u64 * msg.seg_size) as i64) as Va;
                let len = seg_len(msg, k);
                let rkey = msg
                    .user_regs
                    .iter()
                    .find(|r| r.covers(addr, len))
                    .expect("registration covers the contiguous buffer")
                    .rkey;
                let ready = CtrlMsg::SegReady {
                    seq: msg.seq,
                    k,
                    addr,
                    rkey,
                    len,
                };
                send_ctrl_msg(rs, ctx, msg.peer, &ready, 0);
            }
            msg.posted_segs = msg.nsegs;
        }
        (Some(SendTargets::ReadGo), Scheme::PRrs) => {
            while msg.posted_segs < msg.packed {
                let k = msg.posted_segs;
                let sb = msg.pack_bufs[k as usize];
                let ready = CtrlMsg::SegReady {
                    seq: msg.seq,
                    k,
                    addr: sb.va,
                    rkey: sb.rkey,
                    len: seg_len(msg, k),
                };
                send_ctrl_msg(rs, ctx, msg.peer, &ready, 0);
                msg.posted_segs += 1;
            }
        }
        (
            Some(SendTargets::MultiW {
                rcv_blocks,
                regions,
            }),
            Scheme::MultiW,
        ) if msg.mw_stage => {
            // Degraded Multi-W: the packed stream sits in pack_bufs;
            // write it into the receiver's (stream-ordered) blocks.
            if msg.packed < msg.nsegs || msg.posted_segs > 0 {
                return;
            }
            let mut wrs: Vec<SendWr> = Vec::new();
            let mut pos = 0u64;
            for &(dst, l) in rcv_blocks {
                let mut off = 0u64;
                while off < l {
                    let k = ((pos + off) / msg.seg_size) as usize;
                    let sb = msg.pack_bufs[k];
                    let in_seg = (pos + off) - k as u64 * msg.seg_size;
                    let n = (l - off).min(msg.seg_size - in_seg);
                    let rkey = region_key(regions, dst + off, n);
                    wrs.push(SendWr {
                        wr_id: WR_DATA | msg.seq,
                        opcode: Opcode::RdmaWrite,
                        sges: SgeList::of(Sge {
                            addr: sb.va + in_seg,
                            len: n,
                            lkey: sb.lkey,
                        }),
                        remote: Some((dst + off, rkey)),
                        signaled: false,
                    });
                    off += n;
                }
                pos += l;
            }
            if let Some(last) = wrs.last_mut() {
                last.opcode = Opcode::RdmaWriteImm(imm_of(msg.seq, 0));
                last.signaled = true;
            }
            let n = wrs.len();
            assert!(n > 0, "rendezvous messages are never empty");
            rs.counters.data_wrs += n as u64;
            if ctx.cfg.list_post {
                let ready = rs
                    .cpu
                    .reserve_labeled(ctx.now(), ctx.net.post_list_ns(n), "post");
                if let Err(e) = ctx.post_send_list(ready, rs.rank, msg.peer, wrs) {
                    rs.counters.post_errors += 1;
                    msg.failed = Some(MpiError::Post {
                        peer: msg.peer,
                        err: e,
                    });
                    return;
                }
            } else {
                for wr in wrs {
                    let ready = rs
                        .cpu
                        .reserve_labeled(ctx.now(), ctx.net.post_single_ns, "post");
                    if let Err(e) = ctx.post_send(ready, rs.rank, msg.peer, wr) {
                        rs.counters.post_errors += 1;
                        msg.failed = Some(MpiError::Post {
                            peer: msg.peer,
                            err: e,
                        });
                        return;
                    }
                }
            }
            msg.posted_segs = msg.nsegs;
        }
        (
            Some(SendTargets::MultiW {
                rcv_blocks,
                regions,
            }),
            Scheme::MultiW,
        ) => {
            if !msg.reg_done || msg.posted_segs > 0 {
                return;
            }
            let tplan = rs.plan_for(&msg.ty, msg.count);
            let mut snd_blocks = rs.scratch.take_blocks();
            abs_blocks_into(&tplan, msg.buf, &mut snd_blocks);
            let plan = plan_multi_w(&snd_blocks, rcv_blocks, ctx.net.max_sge);
            rs.scratch.put_blocks(snd_blocks);
            let n = plan.len();
            assert!(n > 0, "rendezvous messages are never empty");
            let wrs: Vec<SendWr> = plan
                .into_iter()
                .enumerate()
                .map(|(i, p)| {
                    let sges = p
                        .sges
                        .iter()
                        .map(|&(a, l)| Sge {
                            addr: a,
                            len: l,
                            lkey: lkey_for(&msg.user_regs, a, l),
                        })
                        .collect();
                    let rkey = region_key(regions, p.dst, p.len);
                    let last = i == n - 1;
                    SendWr {
                        wr_id: WR_DATA | msg.seq,
                        opcode: if last {
                            Opcode::RdmaWriteImm(imm_of(msg.seq, 0))
                        } else {
                            Opcode::RdmaWrite
                        },
                        sges,
                        remote: Some((p.dst, rkey)),
                        signaled: last,
                    }
                })
                .collect();
            rs.counters.data_wrs += n as u64;
            if ctx.cfg.list_post {
                let ready = rs
                    .cpu
                    .reserve_labeled(ctx.now(), ctx.net.post_list_ns(n), "post");
                if let Err(e) = ctx.post_send_list(ready, rs.rank, msg.peer, wrs) {
                    rs.counters.post_errors += 1;
                    msg.failed = Some(MpiError::Post {
                        peer: msg.peer,
                        err: e,
                    });
                    return;
                }
            } else {
                for wr in wrs {
                    let ready = rs
                        .cpu
                        .reserve_labeled(ctx.now(), ctx.net.post_single_ns, "post");
                    if let Err(e) = ctx.post_send(ready, rs.rank, msg.peer, wr) {
                        rs.counters.post_errors += 1;
                        msg.failed = Some(MpiError::Post {
                            peer: msg.peer,
                            err: e,
                        });
                        return;
                    }
                }
            }
            msg.posted_segs = msg.nsegs;
        }
        (Some(SendTargets::HybridReady), Scheme::Hybrid) => {
            hybrid_try_post(rs, ctx, msg);
        }
        (Some(t), s) => {
            debug_assert!(false, "targets {t:?} inconsistent with scheme {s:?}");
            msg.failed = Some(MpiError::UnknownMessage {
                peer: msg.peer,
                seq: msg.seq,
            });
        }
    }
}

/// Hybrid posting: direct gather writes once registration is done, then
/// packed segments as they become ready, then the completion marker.
fn hybrid_try_post(rs: &mut RankState, ctx: &mut Ctx<'_, '_>, msg: &mut SendMsg) {
    if !msg.reg_done {
        return;
    }
    let Some(mut hy) = msg.hybrid.take() else {
        return;
    };
    if !hy.direct_posted {
        hy.direct_posted = true;
        let plan = rs.plan_for(&msg.ty, msg.count);
        let mbuf = msg.buf;
        let mut wrs: Vec<SendWr> = Vec::new();
        let mut blocks = rs.scratch.take_blocks();
        for &(lo, hi, dst) in &hy.direct {
            blocks.clear();
            plan.for_each_block(lo, hi, |off, l| {
                blocks.push(((mbuf as i64 + off) as u64, l));
            })
            .expect("range valid");
            let chunks = chunk_gather(&blocks, ctx.net.max_sge);
            let mut dst_off = 0u64;
            for (raw_sges, clen) in chunks {
                let sges = raw_sges
                    .into_iter()
                    .map(|(a, l)| Sge {
                        addr: a,
                        len: l,
                        lkey: lkey_for(&msg.user_regs, a, l),
                    })
                    .collect();
                let rkey = region_key(&hy.regions, dst + dst_off, clen);
                wrs.push(SendWr {
                    wr_id: WR_DATA | msg.seq,
                    opcode: Opcode::RdmaWrite,
                    sges,
                    remote: Some((dst + dst_off, rkey)),
                    signaled: false,
                });
                dst_off += clen;
            }
        }
        rs.scratch.put_blocks(blocks);
        rs.counters.data_wrs += wrs.len() as u64;
        if ctx.cfg.list_post {
            let n = wrs.len();
            if n > 0 {
                let ready = rs
                    .cpu
                    .reserve_labeled(ctx.now(), ctx.net.post_list_ns(n), "post");
                if let Err(e) = ctx.post_send_list(ready, rs.rank, msg.peer, wrs) {
                    rs.counters.post_errors += 1;
                    msg.failed = Some(MpiError::Post {
                        peer: msg.peer,
                        err: e,
                    });
                    msg.hybrid = Some(hy);
                    return;
                }
            }
        } else {
            for wr in wrs {
                let ready = rs
                    .cpu
                    .reserve_labeled(ctx.now(), ctx.net.post_single_ns, "post");
                if let Err(e) = ctx.post_send(ready, rs.rank, msg.peer, wr) {
                    rs.counters.post_errors += 1;
                    msg.failed = Some(MpiError::Post {
                        peer: msg.peer,
                        err: e,
                    });
                    msg.hybrid = Some(hy);
                    return;
                }
            }
        }
        // Kick off packing of the small-block substream (if any).
        if msg.nsegs > 0 && msg.pack_bufs.is_empty() {
            for _ in 0..msg.nsegs {
                let sb = acquire_pack_seg(rs, ctx);
                msg.pack_bufs.push(sb);
            }
        }
    }
    // Post packed segments that are ready, in order.
    let packed_bytes: u64 = hy.packed_intervals.iter().map(|&(a, b)| b - a).sum();
    while msg.posted_segs < msg.packed {
        let k = msg.posted_segs;
        let lo = k as u64 * msg.seg_size;
        let hi = (lo + msg.seg_size).min(packed_bytes);
        let sb = msg.pack_bufs[k as usize];
        let ready = rs
            .cpu
            .reserve_labeled(ctx.now(), ctx.net.post_single_ns, "post");
        let wr = SendWr {
            wr_id: WR_DATA | msg.seq,
            opcode: Opcode::RdmaWriteImm(imm_of(msg.seq, k)),
            sges: SgeList::of(Sge {
                addr: sb.va,
                len: hi - lo,
                lkey: sb.lkey,
            }),
            remote: Some((hy.segs[k as usize].0, hy.segs[k as usize].1)),
            signaled: false,
        };
        rs.counters.data_wrs += 1;
        if let Err(e) = ctx.post_send(ready, rs.rank, msg.peer, wr) {
            rs.counters.post_errors += 1;
            msg.failed = Some(MpiError::Post {
                peer: msg.peer,
                err: e,
            });
            msg.hybrid = Some(hy);
            return;
        }
        msg.posted_segs += 1;
    }
    // Everything out: send the completion marker (ordered last on the
    // QP, so its arrival implies all data landed).
    if !hy.marker_posted && msg.posted_segs == msg.nsegs {
        hy.marker_posted = true;
        let (maddr, mrkey) = if let Some(&(a, k)) = hy.segs.first() {
            (a, k)
        } else if let Some(&(a, _, k)) = hy.regions.first() {
            (a, k)
        } else {
            // A rendezvous message always has a target; fail typed
            // rather than panicking on the protocol violation.
            debug_assert!(false, "non-empty message has no hybrid target");
            msg.failed = Some(MpiError::UnknownMessage {
                peer: msg.peer,
                seq: msg.seq,
            });
            msg.hybrid = Some(hy);
            return;
        };
        let ready = rs
            .cpu
            .reserve_labeled(ctx.now(), ctx.net.post_single_ns, "post");
        let wr = SendWr {
            wr_id: WR_DATA | msg.seq,
            opcode: Opcode::RdmaWriteImm(imm_of(msg.seq, MARKER_K)),
            sges: SgeList::new(),
            remote: Some((maddr, mrkey)),
            signaled: true,
        };
        rs.counters.data_wrs += 1;
        if let Err(e) = ctx.post_send(ready, rs.rank, msg.peer, wr) {
            rs.counters.post_errors += 1;
            msg.failed = Some(MpiError::Post {
                peer: msg.peer,
                err: e,
            });
            msg.hybrid = Some(hy);
            return;
        }
    }
    msg.hybrid = Some(hy);
    // Keep the packed-substream pack chain moving (it posts each
    // segment back through here as it completes).
    start_pack_chain(rs, ctx, msg);
}

/// Local completion of the (last) data WR of a rendezvous send.
fn sender_data_done(
    rs: &mut RankState,
    am: &mut ActiveMsgs,
    ctx: &mut Ctx<'_, '_>,
    peer: u32,
    seq: u64,
) {
    let Some(mut msg) = am.sends.remove(&(peer, seq)) else {
        return;
    };
    debug_assert!(!msg.completed);
    msg.completed = true;
    sender_release(rs, ctx, &mut msg);
    rs.complete_req(msg.req);
}

/// P-RRS completion: the receiver has read everything.
fn sender_on_fin(
    rs: &mut RankState,
    am: &mut ActiveMsgs,
    ctx: &mut Ctx<'_, '_>,
    peer: u32,
    seq: u64,
) {
    let Some(mut msg) = am.sends.remove(&(peer, seq)) else {
        // The send was already aborted; the Fin is a stale straggler.
        if !ctx.fabric.faults_active() {
            rs.errors.push(MpiError::UnknownMessage { peer, seq });
        }
        return;
    };
    debug_assert!(!msg.completed);
    msg.completed = true;
    sender_release(rs, ctx, &mut msg);
    rs.complete_req(msg.req);
}

fn sender_release(rs: &mut RankState, ctx: &mut Ctx<'_, '_>, msg: &mut SendMsg) {
    release_stage_bufs(rs, ctx, &msg.pack_bufs, false);
    let mut bufs = std::mem::take(&mut msg.pack_bufs);
    bufs.clear();
    rs.scratch.put_stage(bufs);
    let mut cost = 0;
    for r in &msg.user_regs {
        // A `BadKey` means the pin-down cache force-evicted the region
        // under the transfer (§5.4.2) — already deregistered.
        if let Ok(c) =
            rs.pindown
                .release(&mut ctx.mems[rs.rank as usize].regs, &ctx.host.reg, r.lkey)
        {
            cost += c;
        }
    }
    msg.user_regs.clear();
    if cost > 0 {
        rs.cpu.reserve_labeled(ctx.now(), cost, "dereg");
    }
    rs.pinned_user_bytes = rs.pinned_user_bytes.saturating_sub(msg.pinned_bytes);
    msg.pinned_bytes = 0;
}

// ---------------------------------------------------------------------
// Staging buffers (pool with dynamic fallback, §4.3.3)
// ---------------------------------------------------------------------

fn acquire_pack_seg(rs: &mut RankState, ctx: &mut Ctx<'_, '_>) -> StageBuf {
    match rs.pack_pool.acquire() {
        Some(va) => StageBuf {
            va,
            len: rs.pack_pool.seg_size(),
            lkey: rs.pack_pool.lkey(),
            rkey: rs.pack_pool.rkey(),
            dynamic: false,
        },
        None => {
            rs.counters.pool_fallbacks += 1;
            acquire_stage(rs, ctx, ctx.cfg.max_seg_size)
        }
    }
}

fn acquire_unpack_seg(rs: &mut RankState, ctx: &mut Ctx<'_, '_>) -> StageBuf {
    match rs.unpack_pool.acquire() {
        Some(va) => StageBuf {
            va,
            len: rs.unpack_pool.seg_size(),
            lkey: rs.unpack_pool.lkey(),
            rkey: rs.unpack_pool.rkey(),
            dynamic: false,
        },
        None => {
            rs.counters.pool_fallbacks += 1;
            acquire_stage(rs, ctx, ctx.cfg.max_seg_size)
        }
    }
}

/// Dynamically allocates and registers a staging buffer of `size`
/// bytes (the Generic scheme's per-operation buffers, and the pool
/// fallback). Memory is recycled through a freelist, but malloc/free
/// costs are charged every time — matching dynamically allocated
/// buffers in the original implementation. Registration goes through
/// the pin-down cache when `reuse_internal_bufs` is set ("Datatype" in
/// Fig. 2 amortizes registration; "DT+reg" registers every operation).
fn acquire_stage(rs: &mut RankState, ctx: &mut Ctx<'_, '_>, size: u64) -> StageBuf {
    rs.counters.dynamic_allocs += 1;
    let va = match rs.internal.free.get_mut(&size).and_then(Vec::pop) {
        Some(va) => va,
        None => ctx.mems[rs.rank as usize]
            .space
            .alloc_page_aligned(size)
            .expect("address space exhausted (raise capacity)"),
    };
    let mut cost = ctx.host.malloc_ns;
    let acq = if ctx.cfg.reuse_internal_bufs {
        rs.pindown.acquire(
            &mut ctx.mems[rs.rank as usize].regs,
            &ctx.host.reg,
            va,
            size,
        )
    } else {
        // "DT+reg": force a fresh registration every operation.
        let reg = ctx.mems[rs.rank as usize].regs.register(va, size);
        cost += ctx.host.reg.reg_cost(va, size);
        ibdt_memreg::cache::Acquire {
            reg,
            cost_ns: 0,
            hit: false,
        }
    };
    cost += acq.cost_ns;
    rs.cpu.reserve_labeled(ctx.now(), cost, "malloc+reg");
    StageBuf {
        va,
        len: size,
        lkey: acq.reg.lkey,
        rkey: acq.reg.rkey,
        dynamic: true,
    }
}

fn release_stage_bufs(rs: &mut RankState, ctx: &mut Ctx<'_, '_>, bufs: &[StageBuf], unpack: bool) {
    let mut cost = 0;
    for sb in bufs {
        if sb.dynamic {
            cost += ctx.host.free_ns;
            if ctx.cfg.reuse_internal_bufs {
                // `BadKey` = already evicted under the transfer; the
                // deregistration was paid by the evictor.
                if let Ok(c) =
                    rs.pindown
                        .release(&mut ctx.mems[rs.rank as usize].regs, &ctx.host.reg, sb.lkey)
                {
                    cost += c;
                }
            } else if let Ok(reg) = ctx.mems[rs.rank as usize]
                .regs
                .deregister(ibdt_memreg::MrHandle(sb.lkey))
            {
                cost += ctx.host.reg.dereg_cost(reg.addr, reg.len);
            }
            rs.internal.free.entry(sb.len).or_default().push(sb.va);
        } else if unpack {
            rs.unpack_pool.release(sb.va);
        } else {
            rs.pack_pool.release(sb.va);
        }
    }
    if cost > 0 {
        rs.cpu.reserve_labeled(ctx.now(), cost, "free");
    }
}

// ---------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------

/// Fills `out` with the absolute-address contiguous blocks of the
/// plan's message at `buf`. `out` is cleared first so callers can pass
/// a [`ScratchPool`](crate::pool::ScratchPool) vector and keep the
/// steady-state path allocation-free.
fn abs_blocks_into(plan: &TransferPlan, buf: Va, out: &mut Vec<(Va, u64)>) {
    out.clear();
    out.extend(
        plan.blocks()
            .iter()
            .map(|&(o, l)| ((buf as i64 + o) as u64, l)),
    );
}

/// Local key covering the range. A missing covering registration is a
/// protocol bug; the sentinel key makes the fabric reject the post with
/// a typed [`PostError`] instead of panicking here.
fn lkey_for(regs: &[Registration], addr: Va, len: u64) -> u32 {
    regs.iter()
        .find(|r| r.covers(addr, len))
        .map_or(u32::MAX, |r| r.lkey)
}

/// Remote key covering the range; the sentinel key fails the
/// responder's rkey check with a typed remote-access completion.
fn region_key(regions: &[(Va, u64, u32)], addr: Va, len: u64) -> u32 {
    regions
        .iter()
        .find(|&&(a, l, _)| addr >= a && addr + len <= a + l)
        .map_or(u32::MAX, |r| r.2)
}

/// Functional pack of a stream range into a caller-provided buffer of
/// exactly `hi - lo` bytes (typically scratch-pool storage).
fn pack_range(
    ctx: &mut Ctx<'_, '_>,
    rank: u32,
    plan: &TransferPlan,
    buf: Va,
    lo: u64,
    hi: u64,
    out: &mut [u8],
) {
    let space = &ctx.mems[rank as usize].space;
    let mem = space.slice(0, space.capacity()).expect("whole space view");
    plan.pack(lo, hi, mem, buf as usize, out)
        .expect("user buffer covers the datatype");
}

/// Functional pack of a stream range into a fresh vector (used when the
/// packed bytes must outlive the call, e.g. self-sends).
fn pack_to_vec(
    ctx: &mut Ctx<'_, '_>,
    rank: u32,
    plan: &TransferPlan,
    buf: Va,
    lo: u64,
    hi: u64,
) -> Vec<u8> {
    let mut out = vec![0u8; (hi - lo) as usize];
    pack_range(ctx, rank, plan, buf, lo, hi, &mut out);
    out
}

/// Functional unpack of a stream range from a slice into the user
/// buffer.
///
/// The mutable view is narrowed to the plan's block envelope so the
/// address space's dirty tracking (backing-store recycling) covers
/// only the user buffer, not the whole memory.
fn unpack_from_slice(
    ctx: &mut Ctx<'_, '_>,
    rank: u32,
    plan: &TransferPlan,
    buf: Va,
    lo: u64,
    hi: u64,
    data: &[u8],
) {
    let space = &mut ctx.mems[rank as usize].space;
    let cap = space.capacity();
    let (env_lo, env_hi) = plan.envelope();
    let vstart = ((buf as i128 + env_lo).clamp(0, cap as i128) as u64).min(buf.min(cap));
    let vend = ((buf as i128 + env_hi).clamp(vstart as i128, cap as i128)) as u64;
    let mem = space
        .slice_mut(vstart, vend - vstart)
        .expect("envelope view in range");
    plan.unpack(lo, hi, data, mem, (buf - vstart) as usize)
        .expect("user buffer covers the datatype");
}

// ---------------------------------------------------------------------
// Connection manager: QP-death detection, re-establishment, re-drive
// ---------------------------------------------------------------------

/// True for transport-class failures the connection manager can recover
/// from by re-establishing the queue pair (as opposed to protocol
/// errors, which no reconnect can fix).
fn recoverable(err: &MpiError) -> bool {
    matches!(
        err,
        MpiError::Flushed { .. }
            | MpiError::RetryExceeded { .. }
            | MpiError::RnrRetryExceeded { .. }
            | MpiError::CqOverflow { .. }
            | MpiError::Post {
                err: PostError::QpError { .. } | PostError::QpNotReady { .. },
                ..
            }
    )
}

/// True when the membership view has declared `peer` dead for good:
/// its node suffered a crash-stop failure and no restart is pending.
/// Mirrors the out-of-band health service (subnet manager) a real
/// connection manager consults — a node that will restart is merely
/// *suspected* and stays worth reconnect attempts; one that will not
/// is *failed* and every retry toward it is wasted work.
fn peer_failed(ctx: &Ctx<'_, '_>, peer: u32) -> bool {
    ctx.fabric.node_down(peer) && !ctx.fabric.node_will_restart(peer)
}

/// The terminal error once the connection manager gives up on `peer`:
/// the crash-stop diagnosis [`MpiError::PeerFailed`] when the
/// membership view reports the node dead, the transient
/// [`MpiError::ConnectionLost`] otherwise.
fn give_up_error(rs: &RankState, ctx: &Ctx<'_, '_>, peer: u32) -> MpiError {
    if peer_failed(ctx, peer) {
        MpiError::PeerFailed { peer }
    } else {
        let attempts = rs.reconn.get(&peer).map_or(0, |r| r.attempts);
        MpiError::ConnectionLost { peer, attempts }
    }
}

/// Drains everything the connection manager had suspended toward
/// `peer`: eager ring slots return to the free list (re-driving sends
/// queued behind them), suspended rendezvous sends and receives fail
/// with `err`. Called at give-up time so no request stays parked on a
/// connection that is never coming back — the "complete what is
/// completable, fail the rest typed, never hang" half of the failure
/// contract.
fn drain_suspended(
    rs: &mut RankState,
    am: &mut ActiveMsgs,
    ctx: &mut Ctx<'_, '_>,
    peer: u32,
    err: MpiError,
) {
    let Some(r) = rs.reconn.get_mut(&peer) else {
        return;
    };
    r.active = false;
    let eager_slots = std::mem::take(&mut r.eager_slots);
    let sends: Vec<u64> = r.sends.iter().copied().collect();
    let recvs: Vec<u64> = r.recvs.iter().copied().collect();
    r.sends.clear();
    r.recvs.clear();
    r.pending_ctrl.clear();
    for va in eager_slots {
        rs.eager_send_free.push(va);
        rs.errors.push(err);
    }
    drain_pending_eager(rs, ctx);
    for seq in sends {
        if let Some(msg) = am.sends.remove(&(peer, seq)) {
            abort_send(rs, ctx, msg, err);
        }
    }
    for seq in recvs {
        abort_recv(rs, am, ctx, peer, seq, err);
    }
}

/// Ensures a reconnect handshake to `peer` is scheduled, modelling the
/// connection manager's out-of-band exchange with `reconnect_ns`
/// latency. Returns `false` when the re-establishment budget is
/// exhausted or the peer is diagnosed as failed — the caller then
/// fails the traffic with [`give_up_error`].
fn ensure_reconnect(rs: &mut RankState, ctx: &mut Ctx<'_, '_>, peer: u32) -> bool {
    if peer_failed(ctx, peer) {
        return false;
    }
    let rank = rs.rank;
    let at = ctx.now() + ctx.cfg.reconnect_ns;
    let r = rs.reconn.get_or_default(peer);
    if r.attempts >= ctx.cfg.max_reconnects {
        return false;
    }
    if !r.active {
        r.active = true;
        ctx.cpu_event(at, rank, CpuAct::Reconnect { peer });
    }
    true
}

/// Routes a failed send either into the connection manager (suspended,
/// re-driven after reconnect) or into a typed abort.
fn resolve_send_failure(
    rs: &mut RankState,
    am: &mut ActiveMsgs,
    ctx: &mut Ctx<'_, '_>,
    msg: SendMsg,
    err: MpiError,
) {
    let peer = msg.peer;
    if ctx.cfg.recovery && recoverable(&err) {
        if ensure_reconnect(rs, ctx, peer) {
            rs.reconn
                .get_mut(&peer)
                .expect("entry ensured above")
                .sends
                .insert(msg.seq);
            am.sends.insert((peer, msg.seq), msg);
            return;
        }
        let err = give_up_error(rs, ctx, peer);
        drain_suspended(rs, am, ctx, peer, err);
        abort_send(rs, ctx, msg, err);
        return;
    }
    abort_send(rs, ctx, msg, err);
}

/// The reconnect handshake to `peer` finished: re-establish the errored
/// QP directions and re-drive everything the failure suspended, in
/// deterministic order (ring slots, queued control, sends, receives).
fn do_reconnect(rs: &mut RankState, am: &mut ActiveMsgs, ctx: &mut Ctx<'_, '_>, peer: u32) {
    if peer_failed(ctx, peer) {
        // The handshake raced a crash-stop diagnosis: the peer is dead
        // for good, so re-establishing its QPs would only feed more
        // traffic into a black hole. Drain instead.
        let err = MpiError::PeerFailed { peer };
        drain_suspended(rs, am, ctx, peer, err);
        return;
    }
    let Some(mut r) = rs.reconn.remove(&peer) else {
        return;
    };
    r.active = false;
    r.attempts += 1;
    for (a, b) in [(rs.rank, peer), (peer, rs.rank)] {
        if ctx.fabric.qp_errored(a, b) {
            ctx.fabric.reestablish_qp(a, b);
        }
    }
    rs.counters.qp_reestablished += 1;
    let eager_slots = std::mem::take(&mut r.eager_slots);
    let pending_ctrl = std::mem::take(&mut r.pending_ctrl);
    let sends: Vec<u64> = r.sends.iter().copied().collect();
    let recvs: Vec<u64> = r.recvs.iter().copied().collect();
    r.sends.clear();
    r.recvs.clear();
    // The entry (with its attempt count) stays: a connection that keeps
    // dying must eventually fail typed instead of looping forever.
    rs.reconn.insert(peer, r);
    for va in eager_slots {
        resend_eager_slot(rs, ctx, peer, va);
    }
    for bytes in pending_ctrl {
        send_ctrl(rs, ctx, peer, bytes, 0);
    }
    for seq in sends {
        resume_send(rs, am, ctx, peer, seq);
    }
    for seq in recvs {
        resume_recv(rs, am, ctx, peer, seq);
    }
}

/// Re-posts a flushed eager/control send from its ring slot. The slot
/// still holds the encoded bytes, and a flushed WQE was never delivered
/// (flush precludes delivery), so the re-post cannot duplicate a
/// message the peer already consumed. The wire length is recovered from
/// the encoded header.
fn resend_eager_slot(rs: &mut RankState, ctx: &mut Ctx<'_, '_>, peer: u32, va: Va) {
    let bytes = ctx.mems[rs.rank as usize]
        .space
        .read(va, ctx.cfg.eager_buf_size)
        .expect("eager ring buffer readable");
    // The slot may open with piggybacked `CreditUpdate`s; the wire
    // length covers the whole prefix plus the carried message. The zero
    // terminator each slot write appends decodes to `None`, marking the
    // end of a slot that carries only credits.
    let mut off = 0usize;
    let len = loop {
        match CtrlMsg::decode(&bytes[off..]) {
            None if off > 0 => break off as u64,
            None => {
                // Nothing decodable at all (protocol bug): return the
                // slot to the ring rather than resending garbage.
                rs.eager_send_free.push(va);
                drain_pending_eager(rs, ctx);
                return;
            }
            Some((m, hdr_len)) => {
                off += hdr_len;
                match m {
                    CtrlMsg::CreditUpdate { .. } => continue,
                    CtrlMsg::EagerData { size, .. } => break off as u64 + size,
                    _ => break off as u64,
                }
            }
        }
    };
    let ready = rs.cpu.reserve_labeled(
        ctx.now(),
        ctx.cfg.ctrl_overhead_ns + ctx.net.post_single_ns,
        "ctrl",
    );
    let wr = SendWr {
        wr_id: WR_EAGER | va,
        opcode: Opcode::Send,
        sges: SgeList::of(Sge {
            addr: va,
            len,
            lkey: rs.eager_lkey,
        }),
        remote: None,
        signaled: true,
    };
    if let Err(e) = ctx.post_send(ready, rs.rank, peer, wr) {
        if ctx.cfg.recovery
            && matches!(e, PostError::QpError { .. } | PostError::QpNotReady { .. })
            && ensure_reconnect(rs, ctx, peer)
        {
            rs.reconn
                .get_mut(&peer)
                .expect("entry ensured above")
                .eager_slots
                .push(va);
            return;
        }
        rs.eager_send_free.push(va);
        rs.counters.post_errors += 1;
        rs.errors.push(MpiError::Post { peer, err: e });
    }
}

/// Re-drives a suspended rendezvous send after re-establishment.
fn resume_send(
    rs: &mut RankState,
    am: &mut ActiveMsgs,
    ctx: &mut Ctx<'_, '_>,
    peer: u32,
    seq: u64,
) {
    let Some(msg) = am.sends.get(&(peer, seq)) else {
        return;
    };
    if msg.completed {
        return;
    }
    match &msg.targets {
        None => {
            // No reply yet. The start itself may have been flushed (it
            // was re-posted from its ring slot just before this call);
            // probe so the receiver resends a reply that crossed the
            // failure.
            send_ctrl_msg(rs, ctx, peer, &CtrlMsg::RndvProbe { seq }, 0);
        }
        Some(SendTargets::ReadGo) => {
            // P-RRS: re-announce every packed segment; the recovering
            // receiver deduplicates and re-reads idempotently.
            let Some(mut msg) = am.sends.remove(&(peer, seq)) else {
                return;
            };
            msg.posted_segs = 0;
            try_post_ready(rs, ctx, &mut msg);
            if let Some(err) = msg.failed.take() {
                resolve_send_failure(rs, am, ctx, msg, err);
                return;
            }
            am.sends.insert((peer, seq), msg);
        }
        Some(_) => {
            // Data-bearing schemes restart from the receiver's
            // acknowledged chunk boundary — ask where that is.
            send_ctrl_msg(rs, ctx, peer, &CtrlMsg::RndvResume { seq }, 0);
        }
    }
}

/// Re-drives a suspended read-driven (P-RRS) receive: reset the
/// announcement bookkeeping and ask the sender to re-announce. Repeated
/// reads are idempotent, so restarting from zero is always safe.
fn resume_recv(
    rs: &mut RankState,
    am: &mut ActiveMsgs,
    ctx: &mut Ctx<'_, '_>,
    peer: u32,
    seq: u64,
) {
    let Some(msg) = am.recvs.get_mut(&(peer, seq)) else {
        return;
    };
    if msg.completed {
        return;
    }
    msg.reads_outstanding = 0;
    msg.segs_announced = 0;
    msg.segs_seen.clear();
    send_ctrl_msg(rs, ctx, peer, &CtrlMsg::RndvResume { seq }, 0);
}

/// §5.4.2 protection fault: the receiver's pinned region vanished under
/// a zero-copy transfer (remote-access NAK on our write). Fall back to
/// the copy-based BC-SPUP path by renegotiating the message once.
fn renegotiate_send(
    rs: &mut RankState,
    am: &mut ActiveMsgs,
    ctx: &mut Ctx<'_, '_>,
    peer: u32,
    seq: u64,
) {
    let Some(mut msg) = am.sends.remove(&(peer, seq)) else {
        return;
    };
    rs.counters.protection_fallbacks += 1;
    msg.renegotiated = true;
    // Tear down the zero-copy generation: registrations, staging, and
    // any pack pipeline still in flight.
    sender_release(rs, ctx, &mut msg);
    msg.pack_bufs.clear();
    if msg.pack_chain_running {
        msg.drop_packs += 1;
        msg.pack_chain_running = false;
    }
    msg.reg_done = false;
    msg.hybrid = None;
    msg.mw_stage = false;
    msg.targets = None;
    msg.posted_segs = 0;
    msg.packed = 0;
    msg.scheme = Scheme::BcSpup;
    msg.seg_size = ctx.cfg.segment_size(msg.size);
    msg.nsegs = ctx.cfg.segment_count(msg.size);
    // A duplicate start for a live transfer is the renegotiation signal
    // (a flushed original was never delivered, so no ambiguity).
    let stats = rs.plan_for(&msg.ty, msg.count).stats();
    let start = CtrlMsg::RndvStart {
        tag: msg.tag,
        seq,
        size: msg.size,
        scheme: Scheme::BcSpup.to_wire(),
        nsegs: msg.nsegs,
        seg_size: msg.seg_size,
        blk_min: stats.min,
        blk_median: stats.median,
    };
    send_ctrl_msg(rs, ctx, peer, &start, 0);
    assign_pack_bufs(rs, ctx, &mut msg);
    start_pack_chain(rs, ctx, &mut msg);
    am.sends.insert((peer, seq), msg);
}

/// Receiver side of the §5.4.2 fallback: rebuild a live receive as
/// BC-SPUP after the sender renegotiated (its geometry arrives with the
/// duplicate start).
#[allow(clippy::too_many_arguments)]
fn receiver_renegotiate(
    rs: &mut RankState,
    am: &mut ActiveMsgs,
    ctx: &mut Ctx<'_, '_>,
    peer: u32,
    seq: u64,
    size: u64,
    nsegs: u32,
    seg_size: u64,
) {
    let Some(mut msg) = am.recvs.remove(&(peer, seq)) else {
        return;
    };
    debug_assert_eq!(msg.size, size, "renegotiated size changed");
    // Unpack completions still in flight belong to the torn-down
    // generation (arrived-but-not-unpacked packed segments).
    msg.drop_unpacks += msg.segs_arrived.saturating_sub(msg.segs_unpacked);
    receiver_release(rs, ctx, &mut msg);
    msg.unpack_bufs.clear();
    msg.scheme = Scheme::BcSpup;
    msg.nsegs = nsegs;
    msg.seg_size = seg_size;
    msg.segs_arrived = 0;
    msg.segs_unpacked = 0;
    msg.segs_seen.clear();
    msg.packed_intervals.clear();
    msg.marker_seen = false;
    msg.reads_outstanding = 0;
    msg.segs_announced = 0;
    msg.reply_copy = None;
    let mut segs = crate::msg::SegList::new();
    for _ in 0..nsegs {
        let sb = acquire_unpack_seg(rs, ctx);
        segs.push((sb.va, sb.rkey));
        msg.unpack_bufs.push(sb);
    }
    let reply = CtrlMsg::RndvReply {
        seq,
        scheme: Scheme::BcSpup.to_wire(),
        body: ReplyBody::Segments { segs },
    };
    msg.pending_reply = Some({
        let mut buf = take_ctrl_buf(rs);
        reply.encode_into(&mut buf);
        buf
    });
    let done = rs
        .cpu
        .reserve_labeled(ctx.now(), ctx.cfg.ctrl_overhead_ns, "ctrl");
    ctx.cpu_event(done, rs.rank, CpuAct::ReceiverReady { peer, seq });
    am.recvs.insert((peer, seq), msg);
}

/// Deterministic §5.4.2 eviction injection: with `evict_rate` set in
/// the fault plan, force-evict the first user registration backing a
/// zero-copy reply right after it is pinned. The draw hashes the plan
/// seed with the transfer identity, so it reproduces across runs and is
/// independent of event interleaving (the fabric's own decision stream
/// is untouched).
fn maybe_evict_reply_reg(rs: &mut RankState, ctx: &mut Ctx<'_, '_>, msg: &RecvMsg) {
    let (rate, seed) = match ctx.fabric.fault_plan() {
        Some(p) => (p.evict_rate, p.seed),
        None => return,
    };
    if rate <= 0.0 || msg.user_regs.is_empty() {
        return;
    }
    let ident = ((rs.rank as u64) << 40) ^ ((msg.peer as u64) << 20) ^ msg.seq;
    let mut h = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(ident | 1));
    // SplitMix64 finalizer: decorrelate the identity hash.
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
    if rate >= 1.0 || u < rate {
        let _ = rs
            .pindown
            .force_evict(&mut ctx.mems[rs.rank as usize].regs, msg.user_regs[0].lkey);
    }
}
