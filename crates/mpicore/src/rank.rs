//! Per-rank MPI library state.
//!
//! Each rank owns a CPU resource (the progress engine's host time), the
//! eager send ring and pre-posted receive buffers, the pre-registered
//! pack/unpack segment pools, tag-matching queues, active message
//! tables, and the registration machinery (pin-down cache, type
//! registry, layout cache).

use crate::config::MpiConfig;
use crate::error::MpiError;
use crate::plan::PlanCache;
use crate::pool::{ScratchPool, SegmentPool};

/// Wildcard source for receives (`MPI_ANY_SOURCE`).
pub const ANY_SOURCE: u32 = u32::MAX;
/// Wildcard tag for receives (`MPI_ANY_TAG`).
pub const ANY_TAG: u32 = u32::MAX;
use ibdt_datatype::{Datatype, LayoutCache, TransferPlan, TypeRegistry};
use ibdt_ibsim::NodeMem;
use ibdt_memreg::{PindownCache, Va};
use ibdt_simcore::paged::PagedTable;
use ibdt_simcore::resource::SerialResource;
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// A request handle (per-rank, in issue order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReqId(pub u32);

/// Kind of request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// An `Isend`.
    Send,
    /// An `Irecv`.
    Recv,
}

/// Bookkeeping for one issued request.
#[derive(Debug)]
pub struct ReqState {
    /// What the request is.
    pub kind: ReqKind,
    /// Set when the operation completes.
    pub done: bool,
    /// Set instead of clean completion when the operation failed with a
    /// typed error (fault injection, budget exhaustion).
    pub error: Option<MpiError>,
}

/// A posted (not yet matched) receive.
#[derive(Debug)]
pub struct PostedRecv {
    /// Request handle.
    pub req: ReqId,
    /// Source rank.
    pub peer: u32,
    /// Tag to match.
    pub tag: u32,
    /// User buffer address (datatype offset 0).
    pub buf: Va,
    /// Instance count.
    pub count: u64,
    /// Receive datatype.
    pub ty: Datatype,
}

/// A message that arrived before its receive was posted.
#[derive(Debug)]
pub enum Unexpected {
    /// An eager message; the payload was copied out of the eager buffer
    /// (the dynamic-allocation copy MVAPICH also performs).
    Eager {
        /// Source rank.
        peer: u32,
        /// Tag.
        tag: u32,
        /// Sequence number.
        seq: u64,
        /// Packed payload.
        data: Vec<u8>,
    },
    /// A rendezvous start waiting for a matching receive.
    Rndv {
        /// Source rank.
        peer: u32,
        /// Tag.
        tag: u32,
        /// Sequence number.
        seq: u64,
        /// Packed message size.
        size: u64,
        /// Sender's proposed scheme (wire code).
        scheme: u8,
        /// Sender's segment count.
        nsegs: u32,
        /// Sender's segment size.
        seg_size: u64,
        /// Sender-side minimum contiguous block, bytes.
        blk_min: u64,
        /// Sender-side median contiguous block, bytes.
        blk_median: u64,
    },
}

/// An eager-path transmission waiting for a send ring buffer.
#[derive(Debug)]
pub struct PendingEager {
    /// Destination rank.
    pub peer: u32,
    /// Fully encoded header + payload.
    pub bytes: Vec<u8>,
}

/// Connection-manager bookkeeping for one peer whose queue pair died.
///
/// Populated between failure detection (flushed completions, transport
/// retry exhaustion, `QpError` at post) and the re-establishment event;
/// drained when the connection comes back up and suspended traffic is
/// re-driven.
#[derive(Debug, Default)]
pub struct ReconnState {
    /// True while a reconnect event is scheduled for this peer.
    pub active: bool,
    /// Re-establishment attempts made so far.
    pub attempts: u32,
    /// Eager ring slots whose sends were flushed; the payload bytes are
    /// still in the ring, so the slots are re-posted verbatim.
    pub eager_slots: Vec<Va>,
    /// Encoded control messages that hit a dead QP at post time and
    /// must be re-sent after re-establishment.
    pub pending_ctrl: Vec<Vec<u8>>,
    /// Sequence numbers of suspended outgoing rendezvous sends
    /// (ordered so re-drive order is deterministic).
    pub sends: BTreeSet<u64>,
    /// Sequence numbers of suspended incoming transfers this rank
    /// drives (P-RRS reads), ordered for deterministic re-drive.
    pub recvs: BTreeSet<u64>,
}

/// Dynamically allocated internal buffer freelist entry.
#[derive(Debug, Default)]
pub struct InternalBufs {
    /// Free buffers by exact size.
    pub free: HashMap<u64, Vec<Va>>,
}

/// Per-peer eager flow-control state and audit counters, stored as one
/// paged-table entry per peer (see [`RankState::fc`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FcPeer {
    /// Credits available for eager sends to this peer.
    pub credits: u32,
    /// Credits owed back to this peer (their eager messages matched
    /// here but the grant not yet transmitted).
    pub owed: u32,
    /// Auditor: eager sends that consumed a credit (monotone).
    pub sent: u64,
    /// Auditor: this peer's eager payloads matched here (monotone).
    pub matched: u64,
    /// Auditor: credits granted back to this peer (monotone;
    /// `matched - granted == owed`).
    pub granted: u64,
    /// Auditor: credit grants received from this peer (monotone; lags
    /// the peer's `granted` by grants still in flight).
    pub received: u64,
}

/// Counters the benchmarks report per rank.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RankCounters {
    /// Eager messages sent.
    pub eager_sends: u64,
    /// Rendezvous messages sent.
    pub rndv_sends: u64,
    /// Packs performed (segments).
    pub packs: u64,
    /// Unpacks performed (segments).
    pub unpacks: u64,
    /// Bytes packed.
    pub bytes_packed: u64,
    /// Bytes unpacked.
    pub bytes_unpacked: u64,
    /// Dynamic internal-buffer allocations.
    pub dynamic_allocs: u64,
    /// Times a pool was exhausted and the dynamic fallback ran.
    pub pool_fallbacks: u64,
    /// RDMA data work requests posted.
    pub data_wrs: u64,
    /// Control messages sent.
    pub ctrl_msgs: u64,
    /// Messages downgraded per-message to a copy-based scheme
    /// (registration budget or reply-size pressure).
    pub scheme_fallbacks: u64,
    /// Rendezvous-reply probes sent after a reply timeout.
    pub rndv_rerequests: u64,
    /// Completions that carried an error status.
    pub cqe_errors: u64,
    /// Work-request posts that failed synchronously.
    pub post_errors: u64,
    /// Queue pairs re-established by the connection manager.
    pub qp_reestablished: u64,
    /// Rendezvous chunks skipped on resume because the receiver had
    /// already unpacked them before the connection died.
    pub resumed_chunks: u64,
    /// Zero-copy transfers renegotiated down to BC-SPUP after a remote
    /// protection fault (pin-down cache eviction race, §5.4.2).
    pub protection_fallbacks: u64,
    /// Degradation-ladder rung 3: eager-sized messages forced down to
    /// rendezvous because the per-peer credit pool ran dry.
    pub credit_spills: u64,
    /// Degradation-ladder rung 2: eager-sized messages forced down to
    /// rendezvous because the pending-eager queue hit `pending_cap`
    /// (throttled eager).
    pub pending_spills: u64,
    /// Explicit `CreditUpdate` control messages sent (starved-sender
    /// unblocking; piggybacked grants are counted separately).
    pub credit_msgs: u64,
    /// Credits returned piggybacked in front of outgoing eager/ctrl
    /// messages.
    pub credits_piggybacked: u64,
    /// Credit grants withheld because the unexpected queue was above
    /// its pressure threshold (`unexpected_cap / 2`).
    pub grants_deferred: u64,
    /// High-water payload-bearing unexpected-queue occupancy.
    pub peak_unexpected: u64,
    /// High-water pending-eager queue occupancy.
    pub peak_pending: u64,
    /// Bounce-buffer chunks pushed through the staged device pipeline
    /// (0 when no buffer is device-resident).
    pub staging_chunks: u64,
}

/// All state of one rank's MPI library instance.
#[derive(Debug)]
pub struct RankState {
    /// This rank's id.
    pub rank: u32,
    /// World size.
    pub nprocs: u32,
    /// Host CPU executing the progress engine, pack/unpack, posts.
    pub cpu: SerialResource,
    /// DMA engine moving bytes between host bounce buffers and device
    /// memory. A separate serial resource so staged-pipeline overlap
    /// (pack of chunk k against DMA of chunk k-1) is provable from the
    /// trace, exactly like pack/wire overlap.
    pub dma: SerialResource,
    /// Base address of the eager region (send ring + recv buffers).
    pub eager_region: Va,
    /// Eager/control send ring buffers (shared across peers).
    pub eager_send_free: Vec<Va>,
    /// Sends waiting for a ring buffer.
    pub eager_pending: VecDeque<PendingEager>,
    /// lkey covering the eager region (send + recv buffers).
    pub eager_lkey: u32,
    /// Pre-registered pack segment pool.
    pub pack_pool: SegmentPool,
    /// Pre-registered unpack segment pool.
    pub unpack_pool: SegmentPool,
    /// Posted receives, in post order (matched FIFO).
    pub posted: VecDeque<PostedRecv>,
    /// Unexpected messages, in arrival order.
    pub unexpected: VecDeque<Unexpected>,
    /// Next send sequence number per peer (paged; untouched peers
    /// read 0).
    pub next_seq: PagedTable<u64>,
    /// Request table.
    pub reqs: Vec<ReqState>,
    /// Requests completed since the interpreter last ran.
    pub newly_completed: Vec<ReqId>,
    /// Pin-down registration cache (user + internal buffers).
    pub pindown: PindownCache,
    /// Receiver-side datatype registry (type indices, §5.4.2).
    pub registry: TypeRegistry,
    /// Sender-side cache of peers' layouts.
    pub layout_cache: LayoutCache,
    /// Compiled transfer plans keyed by the registry's versioned tags.
    pub plans: PlanCache,
    /// Reusable host-side scratch buffers (pack staging, SGE lists).
    pub scratch: ScratchPool,
    /// `(peer, index, version)` layouts this rank has already shipped.
    pub sent_layouts: HashSet<(u32, u32, u32)>,
    /// Internal dynamic buffer freelist (Generic scheme).
    pub internal: InternalBufs,
    /// One-sided operations posted but not yet locally complete (fence
    /// epoch accounting).
    pub rma_outstanding: u64,
    /// Origin-buffer registrations held until the next fence.
    pub rma_regs: Vec<ibdt_memreg::Registration>,
    /// Set when an RMA completion arrived (drained by the interpreter
    /// to re-check a blocked fence).
    pub rma_event: bool,
    /// User-buffer bytes currently pinned by budget-tracked zero-copy
    /// registrations (RWG-UP / Multi-W / P-RRS).
    pub pinned_user_bytes: u64,
    /// Connection-manager state per peer with a dead/rebuilding QP.
    pub reconn: crate::table::PeerMap<ReconnState>,
    /// `(peer, seq)` of rendezvous receives already fully delivered —
    /// consulted when a resumed sender asks about a transfer whose FIN
    /// was lost to the failure.
    pub done_seqs: crate::table::DoneSet,
    /// Rank-level errors not attributable to a single request (flushed
    /// control traffic, malformed messages, failed RMA).
    pub errors: Vec<MpiError>,
    /// Counters.
    pub counters: RankCounters,
    /// Flow-control state per peer, one paged entry each. The table's
    /// fill value carries a full `eager_credits` budget and zeroed
    /// counters, so a peer never sent to reads its full budget without
    /// materializing storage — and a rank talking to k of n peers
    /// touches O(k) pages, not six O(n) tables.
    pub fc: PagedTable<FcPeer>,
    /// Payload-bearing (`Unexpected::Eager`) entries currently in the
    /// unexpected queue — the occupancy the credit bound caps.
    pub unexpected_eager: usize,
}

impl RankState {
    /// Builds the rank state, allocating eager buffers and pools inside
    /// `mem` and pre-registering everything. Receive descriptors are
    /// *not* posted here — the cluster does that (it needs the fabric).
    pub fn new(rank: u32, nprocs: u32, cfg: &MpiConfig, mem: &mut NodeMem) -> Self {
        // One region holds the send ring and all per-peer recv buffers.
        let send_bytes = cfg.eager_send_bufs as u64 * cfg.eager_buf_size;
        let recv_bytes = (nprocs as u64 - 1) * cfg.eager_bufs_per_peer as u64 * cfg.eager_buf_size;
        let region = mem
            .space
            .alloc_page_aligned(send_bytes + recv_bytes)
            .expect("address space too small for eager buffers");
        let reg = mem.regs.register(region, send_bytes + recv_bytes);

        let eager_send_free = (0..cfg.eager_send_bufs as u64)
            .rev()
            .map(|i| region + i * cfg.eager_buf_size)
            .collect();

        let pack_pool = SegmentPool::new(
            &mut mem.space,
            &mut mem.regs,
            cfg.pack_pool_size,
            cfg.max_seg_size,
        )
        .expect("address space too small for pack pool");
        let unpack_pool = SegmentPool::new(
            &mut mem.space,
            &mut mem.regs,
            cfg.unpack_pool_size,
            cfg.max_seg_size,
        )
        .expect("address space too small for unpack pool");

        Self {
            rank,
            nprocs,
            cpu: SerialResource::new("cpu").with_trace(),
            dma: SerialResource::new("dma").with_trace(),
            eager_region: region,
            eager_send_free,
            eager_pending: VecDeque::new(),
            eager_lkey: reg.lkey,
            pack_pool,
            unpack_pool,
            posted: VecDeque::new(),
            unexpected: VecDeque::new(),
            next_seq: PagedTable::new(nprocs as usize),
            reqs: Vec::new(),
            newly_completed: Vec::new(),
            pindown: if cfg.pindown_cache {
                PindownCache::new(cfg.pindown_capacity)
            } else {
                PindownCache::disabled()
            },
            registry: TypeRegistry::new(),
            layout_cache: LayoutCache::new(),
            plans: PlanCache::new(cfg.plan_cache, cfg.plan_cache_entries)
                .with_canonicalization(cfg.canonicalize),
            scratch: ScratchPool::new(),
            sent_layouts: HashSet::new(),
            internal: InternalBufs::default(),
            rma_outstanding: 0,
            rma_regs: Vec::new(),
            rma_event: false,
            pinned_user_bytes: 0,
            reconn: crate::table::PeerMap::new(nprocs as usize),
            done_seqs: crate::table::DoneSet::new(nprocs as usize),
            errors: Vec::new(),
            counters: RankCounters::default(),
            fc: PagedTable::with_fill(
                nprocs as usize,
                FcPeer {
                    credits: cfg.eager_credits,
                    ..FcPeer::default()
                },
            ),
            unexpected_eager: 0,
        }
    }

    /// Returns the rank state to its just-constructed state against a
    /// *reset* `mem` (world recycling): the eager region and segment
    /// pools are re-allocated and re-registered — deterministic
    /// allocation reproduces the original addresses and keys — and
    /// every queue, cache, table, and counter is emptied in place with
    /// its heap capacity retained. Behaviour afterwards is
    /// bit-identical to [`RankState::new`] with the same `cfg`.
    pub fn reset(&mut self, cfg: &MpiConfig, mem: &mut NodeMem) {
        let send_bytes = cfg.eager_send_bufs as u64 * cfg.eager_buf_size;
        let recv_bytes =
            (self.nprocs as u64 - 1) * cfg.eager_bufs_per_peer as u64 * cfg.eager_buf_size;
        let region = mem
            .space
            .alloc_page_aligned(send_bytes + recv_bytes)
            .expect("reset address space fits the eager region");
        let reg = mem.regs.register(region, send_bytes + recv_bytes);
        debug_assert_eq!(region, self.eager_region, "deterministic layout");
        self.cpu.reset();
        self.dma.reset();
        self.eager_region = region;
        self.eager_send_free.clear();
        self.eager_send_free.extend(
            (0..cfg.eager_send_bufs as u64)
                .rev()
                .map(|i| region + i * cfg.eager_buf_size),
        );
        self.eager_pending.clear();
        self.eager_lkey = reg.lkey;
        self.pack_pool.reset(&mut mem.space, &mut mem.regs);
        self.unpack_pool.reset(&mut mem.space, &mut mem.regs);
        self.posted.clear();
        self.unexpected.clear();
        self.next_seq.reset_entries(|s| *s = 0);
        self.reqs.clear();
        self.newly_completed.clear();
        self.pindown.reset();
        self.registry.reset();
        self.layout_cache.reset();
        self.plans.reset();
        self.scratch.reset_counters();
        self.sent_layouts.clear();
        self.internal.free.clear();
        self.rma_outstanding = 0;
        self.rma_regs.clear();
        self.rma_event = false;
        self.pinned_user_bytes = 0;
        self.reconn.reset();
        self.done_seqs.reset();
        self.errors.clear();
        self.counters = RankCounters::default();
        self.fc.reset_entries(|p| {
            *p = FcPeer {
                credits: cfg.eager_credits,
                ..FcPeer::default()
            }
        });
        self.unexpected_eager = 0;
    }

    /// Start address of the `i`-th receive buffer for `peer`.
    ///
    /// Layout: send ring first, then blocks of `eager_bufs_per_peer`
    /// buffers per peer in increasing peer order (own rank skipped).
    pub fn recv_buf_addr(&self, cfg: &MpiConfig, region_base: Va, peer: u32, i: usize) -> Va {
        let send_bytes = cfg.eager_send_bufs as u64 * cfg.eager_buf_size;
        let peer_slot = if peer < self.rank { peer } else { peer - 1 } as u64;
        region_base
            + send_bytes
            + (peer_slot * cfg.eager_bufs_per_peer as u64 + i as u64) * cfg.eager_buf_size
    }

    /// Returns the compiled transfer plan for `count` instances of
    /// `ty`, consulting the per-rank plan cache (keyed by the §5.4.2
    /// datatype-cache version). Every hot-path chunk, descriptor build,
    /// and pack/unpack goes through here.
    pub fn plan_for(&mut self, ty: &Datatype, count: u64) -> std::sync::Arc<TransferPlan> {
        self.plans.lookup(&mut self.registry, ty, count)
    }

    /// Allocates a new request handle.
    pub fn new_req(&mut self, kind: ReqKind) -> ReqId {
        let id = ReqId(self.reqs.len() as u32);
        self.reqs.push(ReqState {
            kind,
            done: false,
            error: None,
        });
        id
    }

    /// Marks a request complete and queues the interpreter notification.
    pub fn complete_req(&mut self, req: ReqId) {
        let st = &mut self.reqs[req.0 as usize];
        debug_assert!(!st.done, "request completed twice");
        st.done = true;
        self.newly_completed.push(req);
    }

    /// Marks a request failed with `err`. The request still counts as
    /// done — the program can make progress past it — but carries the
    /// error. Idempotent: duplicate flush completions sharing one wr_id
    /// may fail the same request more than once.
    pub fn fail_req(&mut self, req: ReqId, err: MpiError) {
        let st = &mut self.reqs[req.0 as usize];
        if st.done {
            return;
        }
        st.done = true;
        st.error = Some(err);
        self.newly_completed.push(req);
    }

    /// Whether all requests issued so far are done.
    pub fn all_reqs_done(&self) -> bool {
        self.reqs.iter().all(|r| r.done)
    }

    /// Next sequence number for messages to `peer`.
    pub fn take_seq(&mut self, peer: u32) -> u64 {
        let s = self.next_seq[peer as usize];
        self.next_seq[peer as usize] += 1;
        s
    }

    /// Finds the first posted receive matching `(peer, tag)` and removes
    /// it. Posted receives may use [`ANY_SOURCE`] / [`ANY_TAG`]
    /// wildcards; incoming messages always carry concrete values.
    pub fn match_posted(&mut self, peer: u32, tag: u32) -> Option<PostedRecv> {
        let idx = self.posted.iter().position(|p| {
            (p.peer == peer || p.peer == ANY_SOURCE) && (p.tag == tag || p.tag == ANY_TAG)
        })?;
        self.posted.remove(idx)
    }

    /// Finds the first unexpected message matching `(peer, tag)` and
    /// removes it. `peer`/`tag` here come from the *receive call* and
    /// may be wildcards.
    pub fn match_unexpected(&mut self, peer: u32, tag: u32) -> Option<Unexpected> {
        let matches =
            |p: u32, t: u32| (peer == ANY_SOURCE || p == peer) && (tag == ANY_TAG || t == tag);
        let idx = self.unexpected.iter().position(|u| match u {
            Unexpected::Eager {
                peer: p, tag: t, ..
            } => matches(*p, *t),
            Unexpected::Rndv {
                peer: p, tag: t, ..
            } => matches(*p, *t),
        })?;
        self.unexpected.remove(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibdt_ibsim::NodeMem;

    fn rank_fixture() -> (NodeMem, RankState, MpiConfig) {
        let cfg = MpiConfig::default();
        let mut mem = NodeMem::new(256 << 20);
        let rs = RankState::new(0, 4, &cfg, &mut mem);
        (mem, rs, cfg)
    }

    #[test]
    fn init_builds_pools_and_ring() {
        let (_, rs, cfg) = rank_fixture();
        assert_eq!(rs.eager_send_free.len(), cfg.eager_send_bufs);
        assert_eq!(
            rs.pack_pool.total() as u64,
            cfg.pack_pool_size / cfg.max_seg_size
        );
        assert_eq!(rs.next_seq.len(), 4);
    }

    #[test]
    fn recv_buf_addresses_disjoint() {
        let (_, rs, cfg) = rank_fixture();
        let base = 4096; // arbitrary region base for the address math
        let mut seen = std::collections::HashSet::new();
        for peer in [1u32, 2, 3] {
            for i in 0..cfg.eager_bufs_per_peer {
                let a = rs.recv_buf_addr(&cfg, base, peer, i);
                assert!(seen.insert(a), "duplicate recv buffer address");
            }
        }
    }

    #[test]
    fn request_lifecycle() {
        let (_, mut rs, _) = rank_fixture();
        let r0 = rs.new_req(ReqKind::Send);
        let r1 = rs.new_req(ReqKind::Recv);
        assert!(!rs.all_reqs_done());
        rs.complete_req(r0);
        rs.complete_req(r1);
        assert!(rs.all_reqs_done());
        assert_eq!(rs.newly_completed, vec![r0, r1]);
    }

    #[test]
    fn seq_numbers_are_per_peer() {
        let (_, mut rs, _) = rank_fixture();
        assert_eq!(rs.take_seq(1), 0);
        assert_eq!(rs.take_seq(1), 1);
        assert_eq!(rs.take_seq(2), 0);
    }

    #[test]
    fn matching_is_fifo_per_peer_tag() {
        let (_, mut rs, _) = rank_fixture();
        let t = Datatype::int();
        for (i, tag) in [(0u32, 5u32), (1, 7), (2, 5)] {
            let req = rs.new_req(ReqKind::Recv);
            rs.posted.push_back(PostedRecv {
                req,
                peer: 1,
                tag,
                buf: 1000 + i as u64,
                count: 1,
                ty: t.clone(),
            });
        }
        let m = rs.match_posted(1, 5).unwrap();
        assert_eq!(m.buf, 1000, "first posted wins");
        let m2 = rs.match_posted(1, 5).unwrap();
        assert_eq!(m2.buf, 1002);
        assert!(rs.match_posted(1, 5).is_none());
        assert!(rs.match_posted(2, 7).is_none(), "peer must match");
    }

    /// Property: under any interleaving of arrivals and matching calls,
    /// `match_unexpected` returns messages of one `(peer, tag)` class in
    /// exactly their arrival order — the FIFO guarantee the bounded
    /// unexpected queue and spill-to-rendezvous policy must preserve.
    #[test]
    fn unexpected_matching_is_fifo_per_class_under_interleaving() {
        ibdt_testkit::cases(0x5EED_F1F0, 32, |rng| {
            let (_, mut rs, _) = rank_fixture();
            // Arrival sequence number per (peer, tag) class, encoded in
            // the message payload/seq so matches can be checked.
            let mut arrived = std::collections::HashMap::new();
            let mut matched = std::collections::HashMap::new();
            for _ in 0..200 {
                let peer = rng.range_u64(1, 4) as u32;
                let tag = rng.range_u64(0, 3) as u32;
                if rng.chance(0.5) {
                    let n = arrived.entry((peer, tag)).or_insert(0u64);
                    if rng.chance(0.5) {
                        rs.unexpected.push_back(Unexpected::Eager {
                            peer,
                            tag,
                            seq: *n,
                            data: n.to_le_bytes().to_vec(),
                        });
                    } else {
                        rs.unexpected.push_back(Unexpected::Rndv {
                            peer,
                            tag,
                            seq: *n,
                            size: 1 << 20,
                            scheme: 1,
                            nsegs: 8,
                            seg_size: 128 * 1024,
                            blk_min: 64,
                            blk_median: 128,
                        });
                    }
                    *n += 1;
                } else {
                    // Mix wildcard and exact receives.
                    let (p, t) = match rng.range_u64(0, 3) {
                        0 => (peer, tag),
                        1 => (ANY_SOURCE, tag),
                        _ => (peer, ANY_TAG),
                    };
                    if let Some(u) = rs.match_unexpected(p, t) {
                        let (up, ut, useq) = match u {
                            Unexpected::Eager { peer, tag, seq, .. } => (peer, tag, seq),
                            Unexpected::Rndv { peer, tag, seq, .. } => (peer, tag, seq),
                        };
                        let next = matched.entry((up, ut)).or_insert(0u64);
                        assert_eq!(useq, *next, "class ({up},{ut}) matched out of order");
                        *next += 1;
                    }
                }
            }
            // Everything still queued must also be in order per class.
            while let Some(u) = rs.match_unexpected(ANY_SOURCE, ANY_TAG) {
                let (up, ut, useq) = match u {
                    Unexpected::Eager { peer, tag, seq, .. } => (peer, tag, seq),
                    Unexpected::Rndv { peer, tag, seq, .. } => (peer, tag, seq),
                };
                let next = matched.entry((up, ut)).or_insert(0u64);
                assert_eq!(useq, *next, "drain out of order");
                *next += 1;
            }
            assert_eq!(arrived, matched, "messages lost");
        });
    }

    #[test]
    fn unexpected_matching() {
        let (_, mut rs, _) = rank_fixture();
        rs.unexpected.push_back(Unexpected::Eager {
            peer: 2,
            tag: 9,
            seq: 0,
            data: vec![1, 2, 3],
        });
        assert!(rs.match_unexpected(2, 8).is_none());
        let u = rs.match_unexpected(2, 9).unwrap();
        assert!(matches!(u, Unexpected::Eager { .. }));
        assert!(rs.unexpected.is_empty());
    }
}
