//! MPI-layer configuration.

use ibdt_simcore::time::Time;

/// Which datatype communication scheme the rendezvous path uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// MPICH-derived baseline: pack whole message into a dynamic buffer,
    /// one RDMA write, unpack whole message (Fig. 1).
    Generic,
    /// Buffer-Centric Segment Pack/Unpack (§4.2).
    BcSpup,
    /// RDMA Write Gather with Unpack (§5.1).
    RwgUp,
    /// Pack with RDMA Read Scatter (§5.2).
    PRrs,
    /// Multiple RDMA Writes (§5.3).
    MultiW,
    /// Choose per message from datatype characteristics (§6).
    Adaptive,
    /// Per-block selection *within* one message (§10 future work):
    /// large receiver blocks get direct zero-copy RDMA writes, small
    /// ones are packed into pool segments and unpacked on arrival.
    Hybrid,
}

impl Scheme {
    /// Stable wire encoding for control messages.
    pub fn to_wire(self) -> u8 {
        match self {
            Scheme::Generic => 0,
            Scheme::BcSpup => 1,
            Scheme::RwgUp => 2,
            Scheme::PRrs => 3,
            Scheme::MultiW => 4,
            Scheme::Adaptive => 5,
            Scheme::Hybrid => 6,
        }
    }

    /// Inverse of [`Self::to_wire`].
    pub fn from_wire(v: u8) -> Option<Scheme> {
        Some(match v {
            0 => Scheme::Generic,
            1 => Scheme::BcSpup,
            2 => Scheme::RwgUp,
            3 => Scheme::PRrs,
            4 => Scheme::MultiW,
            5 => Scheme::Adaptive,
            6 => Scheme::Hybrid,
            _ => return None,
        })
    }
}

/// MPI runtime parameters. Defaults follow §7's proof-of-concept
/// implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MpiConfig {
    /// Messages up to this size (packed bytes) use the eager protocol.
    /// The paper's vector test sends 1–2 columns (512 B / 1 KiB)
    /// eagerly and 4+ columns (2 KiB+) via rendezvous.
    pub eager_threshold: u64,
    /// Size of one eager buffer (must hold the largest control
    /// message).
    pub eager_buf_size: u64,
    /// Receive descriptors pre-posted per peer.
    pub eager_bufs_per_peer: usize,
    /// Send-side eager ring size (shared across peers).
    pub eager_send_bufs: usize,
    /// Maximum supported segment size (§7.2: 128 KB).
    pub max_seg_size: u64,
    /// Messages at or above this size are split into at least two
    /// segments (§7.2: 16 KB).
    pub multi_seg_threshold: u64,
    /// Total size of the pre-registered pack pool (§7.2: 20 MB).
    pub pack_pool_size: u64,
    /// Total size of the pre-registered unpack pool (§7.2: 20 MB).
    pub unpack_pool_size: u64,
    /// The rendezvous datatype scheme.
    pub scheme: Scheme,
    /// Multi-W: post descriptor lists with the extended interface
    /// (§7.4) instead of one by one. Fig. 13 ablates this.
    pub list_post: bool,
    /// RWG-UP: drive unpacking per segment (§5.1). Fig. 12 ablates
    /// this; when false the receiver unpacks only once all segments
    /// arrived.
    pub segment_unpack: bool,
    /// Enable the pin-down registration cache. Fig. 14's worst case
    /// disables it, forcing on-the-fly registration everywhere.
    pub pindown_cache: bool,
    /// Pin-down cache capacity in idle pinned bytes.
    pub pindown_capacity: u64,
    /// Generic scheme: reuse the internal pack/unpack buffers across
    /// operations ("Datatype" in Fig. 2). When false, every operation
    /// allocates fresh internal buffers and registers them on the fly
    /// ("DT+reg").
    pub reuse_internal_bufs: bool,
    /// Adaptive: median contiguous-block size (bytes) at or above which
    /// Multi-W is chosen. §6 suggests "several KBytes" on the paper's
    /// hardware; under this crate's default cost model the measured
    /// Multi-W/BC-SPUP crossover sits at 512-byte blocks (Fig. 8
    /// reproduction), so that is the default.
    pub adaptive_multiw_block: u64,
    /// Adaptive: messages below this size with small blocks stay on the
    /// pack/unpack path.
    pub adaptive_copy_reduced_min: u64,
    /// Adaptive, shared-memory single-copy transport: median block size
    /// (bytes) at or above which Multi-W is chosen. Each work request
    /// pays a CMA syscall setup there, so the crossover sits far above
    /// the IB value of [`MpiConfig::adaptive_multiw_block`].
    pub adaptive_shm_multiw_block: u64,
    /// Hybrid: receiver blocks at or above this size (bytes) are
    /// written directly (zero copy); smaller ones travel packed.
    pub hybrid_block_threshold: u64,
    /// Fixed software overhead per MPI call (matching, bookkeeping), ns.
    pub call_overhead_ns: Time,
    /// Software cost to parse/build one control message, ns.
    pub ctrl_overhead_ns: Time,
    /// Budget for user-buffer (zero-copy) registrations, bytes per
    /// rank. When RWG-UP / Multi-W / P-RRS would pin user memory past
    /// this, the message degrades to a copy-based scheme instead of
    /// failing — the §4.3.3 graceful-fallback idea applied to
    /// registration, not just pool, exhaustion.
    pub reg_budget_bytes: u64,
    /// Rendezvous-reply timeout, ns: how long the sender waits for the
    /// receiver's reply before probing again. 0 disables the timer (the
    /// default — fault-free runs schedule no extra events).
    pub rndv_reply_timeout_ns: Time,
    /// Probes sent after reply timeouts before the send fails with
    /// [`MpiError::ReplyTimeout`](crate::error::MpiError::ReplyTimeout).
    pub rndv_max_rerequests: u32,
    /// Enable connection recovery: when a queue pair dies (transport
    /// retry exhaustion, link failure past APM, flush), the connection
    /// manager re-establishes it and re-drives in-flight transfers
    /// instead of failing the affected requests.
    pub recovery: bool,
    /// Simulated connection-manager handshake latency for one QP
    /// re-establishment (RESET→INIT→RTR→RTS plus rkey re-exchange), ns.
    pub reconnect_ns: Time,
    /// Re-establishment attempts per peer before suspended transfers
    /// fail with
    /// [`MpiError::ConnectionLost`](crate::error::MpiError::ConnectionLost).
    pub max_reconnects: u32,
    /// Enable the per-rank compiled transfer-plan cache. Off forces
    /// every chunk to recompile its plan — functionally identical and
    /// virtual-clock identical (plan compilation charges no modelled
    /// time), just slower in host time; the equivalence tests pin this.
    pub plan_cache: bool,
    /// Capacity of the transfer-plan cache in (datatype version, count)
    /// entries per rank; least-recently-used entries are evicted.
    pub plan_cache_entries: usize,
    /// Canonicalize datatypes before plan lookup/compilation
    /// ([`ibdt_datatype::typ::Datatype::canonical`]): equivalent
    /// constructor spellings resolve to one shared handle, so the plan
    /// cache compiles each *layout* once instead of each *spelling*.
    /// Off by default: canonical trees can regroup merged blocks, which
    /// shifts modelled pack costs — committed figure CSVs are measured
    /// with the classic per-spelling behaviour.
    pub canonicalize: bool,
    /// Staging chunk size (bytes) for device-resident non-contiguous
    /// transfers. 0 (the default) lets the §6 adaptive model pick the
    /// best chunk per message from the pipeline cost model.
    pub staging_chunk: u64,
    /// Bounce buffers in the device staging ring (clamped to
    /// `1..=`[`ibdt_simcore::pipeline::MAX_PIPELINE_BUFS`] at use). 1
    /// serializes pack and DMA; 2 is classic double-buffering.
    pub staging_bufs: usize,
    /// Enable per-peer credit-based eager flow control (the MVAPICH
    /// RDMA-channel design, cs/0310059): each eager data message
    /// consumes a credit; the receiver returns credits when messages
    /// are *matched*, piggybacked on outgoing eager/ctrl traffic or via
    /// an explicit `CreditUpdate` when a starved sender must be
    /// unblocked. A sender out of credits (or past
    /// [`pending_cap`](Self::pending_cap)) degrades the message to
    /// rendezvous instead of buffering unboundedly. Off (the default)
    /// reproduces the classic unthrottled behaviour bit-identically.
    pub flow_control: bool,
    /// Eager credits per peer direction when
    /// [`flow_control`](Self::flow_control) is on. Bounds the
    /// payload-bearing unexpected entries any one peer can park at a
    /// receiver.
    pub eager_credits: u32,
    /// Bound on the sender-side pending-eager queue (control messages
    /// waiting for a free send-ring slot) above which `isend`
    /// backpressures new eager traffic down to rendezvous. 0 =
    /// unbounded. Only enforced with flow control on.
    pub pending_cap: usize,
    /// Bound on payload-bearing unexpected-queue entries: at half this
    /// occupancy the receiver stops granting credits (senders starve
    /// and degrade to rendezvous, whose unexpected entries are
    /// header-only); grants resume when matching drains the queue.
    /// 0 = unbounded. Only enforced with flow control on.
    pub unexpected_cap: usize,
    /// Run the debug-mode invariant auditor: after events and at
    /// quiescence, assert the flow-control conservation laws (credits
    /// never negative, sent/matched/granted/received monotone and
    /// consistent, occupancies within caps, nothing lost across a
    /// degradation transition). Panics on violation — for test suites,
    /// not production runs.
    pub audit: bool,
}

impl Default for MpiConfig {
    fn default() -> Self {
        Self {
            eager_threshold: 1024,
            eager_buf_size: 16 * 1024,
            eager_bufs_per_peer: 128,
            eager_send_bufs: 256,
            max_seg_size: 128 * 1024,
            multi_seg_threshold: 16 * 1024,
            pack_pool_size: 20 * (1 << 20),
            unpack_pool_size: 20 * (1 << 20),
            scheme: Scheme::Generic,
            list_post: true,
            segment_unpack: true,
            pindown_cache: true,
            pindown_capacity: 256 * (1 << 20),
            reuse_internal_bufs: true,
            adaptive_multiw_block: 512,
            adaptive_copy_reduced_min: 16 * 1024,
            adaptive_shm_multiw_block: 8 * 1024,
            hybrid_block_threshold: 1024,
            call_overhead_ns: 150,
            ctrl_overhead_ns: 150,
            reg_budget_bytes: u64::MAX,
            rndv_reply_timeout_ns: 0,
            rndv_max_rerequests: 3,
            recovery: true,
            reconnect_ns: 100_000,
            max_reconnects: 3,
            plan_cache: true,
            plan_cache_entries: 64,
            canonicalize: false,
            staging_chunk: 0,
            staging_bufs: 2,
            flow_control: false,
            eager_credits: 32,
            pending_cap: 64,
            unexpected_cap: 0,
            audit: false,
        }
    }
}

impl MpiConfig {
    /// Segment size rule of §7.2: below [`Self::multi_seg_threshold`]
    /// one segment; above it at least two, capped at
    /// [`Self::max_seg_size`].
    pub fn segment_size(&self, msg_size: u64) -> u64 {
        if msg_size < self.multi_seg_threshold {
            msg_size.max(1)
        } else {
            self.max_seg_size.min(msg_size.div_ceil(2)).max(1)
        }
    }

    /// Number of segments for a message.
    pub fn segment_count(&self, msg_size: u64) -> u32 {
        if msg_size == 0 {
            1
        } else {
            msg_size.div_ceil(self.segment_size(msg_size)) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_wire_roundtrip() {
        for s in [
            Scheme::Generic,
            Scheme::BcSpup,
            Scheme::RwgUp,
            Scheme::PRrs,
            Scheme::MultiW,
            Scheme::Adaptive,
            Scheme::Hybrid,
        ] {
            assert_eq!(Scheme::from_wire(s.to_wire()), Some(s));
        }
        assert_eq!(Scheme::from_wire(99), None);
    }

    #[test]
    fn small_messages_are_single_segment() {
        let c = MpiConfig::default();
        assert_eq!(c.segment_count(1), 1);
        assert_eq!(c.segment_count(15 * 1024), 1);
        assert_eq!(c.segment_size(8 * 1024), 8 * 1024);
    }

    #[test]
    fn threshold_messages_get_two_segments() {
        let c = MpiConfig::default();
        assert_eq!(c.segment_count(16 * 1024), 2);
        assert_eq!(c.segment_size(16 * 1024), 8 * 1024);
        assert_eq!(c.segment_count(200 * 1024), 2);
    }

    #[test]
    fn large_messages_cap_at_max_segment() {
        let c = MpiConfig::default();
        assert_eq!(c.segment_size(1 << 20), 128 * 1024);
        assert_eq!(c.segment_count(1 << 20), 8);
    }

    #[test]
    fn zero_size_message() {
        let c = MpiConfig::default();
        assert_eq!(c.segment_count(0), 1);
    }
}
