//! Run statistics returned by [`Cluster::run`](crate::cluster::Cluster::run).

use crate::error::MpiError;
use crate::rank::RankCounters;
use ibdt_ibsim::FabricStats;
use ibdt_simcore::time::Time;

/// Aggregate statistics of one simulation run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Virtual time when the whole run reached quiescence.
    pub finish_ns: Time,
    /// Per-rank virtual time when that rank's program finished.
    pub rank_finish_ns: Vec<Time>,
    /// Per-rank protocol counters.
    pub counters: Vec<RankCounters>,
    /// Per-rank CPU busy time.
    pub cpu_busy_ns: Vec<Time>,
    /// Per-rank (register, deregister) operation counts.
    pub reg_ops: Vec<(u64, u64)>,
    /// Per-rank pin-down cache (hits, misses, evictions).
    pub pindown: Vec<(u64, u64, u64)>,
    /// Per-rank transfer-plan cache (hits, misses, evictions).
    pub plan_cache: Vec<(u64, u64, u64)>,
    /// Per-rank scratch-buffer pool (reuses, fresh allocations).
    pub scratch_pool: Vec<(u64, u64)>,
    /// Fabric: total work requests processed.
    pub wqes: u64,
    /// Fabric: payload bytes serialized on links.
    pub bytes_on_wire: u64,
    /// Fabric: receiver-not-ready events (should be 0 with sound flow
    /// control).
    pub rnr_events: u64,
    /// Per-rank timer marks recorded by `AppOp::MarkTime`.
    pub marks: Vec<Vec<(u32, Time)>>,
    /// Virtual time overlap between sender-side packing and its own
    /// NIC's wire activity, per rank (the §4.2 pipelining, measurable).
    pub pack_wire_overlap_ns: Vec<Time>,
    /// Fabric: wire transfers dropped by fault injection.
    pub drops_injected: u64,
    /// Fabric: wire transfers corrupted by fault injection.
    pub corruptions_injected: u64,
    /// Fabric: wire transfers delayed by fault injection.
    pub delays_injected: u64,
    /// Fabric: NIC engine stalls injected.
    pub stalls_injected: u64,
    /// Fabric: transport retransmissions (timeout or NAK recovery).
    pub retransmits: u64,
    /// Fabric: timed RNR retries (finite `rnr_retry` backoff path).
    pub rnr_backoff_retries: u64,
    /// Fabric: queue pairs that transitioned to the error state.
    pub qp_errors: u64,
    /// Fabric: work requests flushed with error on QP teardown.
    pub flushed_wqes: u64,
    /// Fabric: Automatic Path Migration failovers performed.
    pub migrations: u64,
    /// Fabric: completion-queue overflows (bounded `cq_depth` runs).
    pub cq_overflows: u64,
    /// Fabric: receive-queue low-watermark crossings (SRQ-limit-style
    /// events under a configured `recv_low_watermark`).
    pub recv_low_water: u64,
    /// Fabric: crash-stop node failures realized from the fault plan.
    pub node_crashes: u64,
    /// Per-rank high-water completion-queue occupancy (0 everywhere
    /// when `cq_depth` is unbounded).
    pub cq_peak: Vec<usize>,
    /// Per-rank fabric reliability counters (retransmits, RNR backoff
    /// retries, QP errors, flushed WQEs, migrations, injected fates),
    /// attributed to the requester/transmitter node.
    pub fabric_per_rank: Vec<FabricStats>,
    /// Per-rank typed protocol errors (request failures and rank-level
    /// errors). Empty vectors everywhere on a clean run.
    pub errors: Vec<Vec<MpiError>>,
    /// Total bytes moved by the pack/unpack copy kernels, all ranks.
    pub bytes_copied: u64,
    /// Payload slab pool activity over this cluster's lifetime:
    /// `(fresh allocations, reuses)` — reuses are allocations avoided.
    pub payload_pool: (u64, u64),
    /// Address-space backing-store pool activity over this cluster's
    /// lifetime: `(fresh allocations, reuses, bytes re-zeroed)`.
    pub space_pool: (u64, u64, u64),
    /// Total events scheduled on the simulation queue (seeded plus
    /// in-world).
    pub events_scheduled: u64,
    /// Plan-cache hits served because a *respelled* type canonicalized
    /// onto an already-compiled layout (all ranks; 0 with
    /// [`MpiConfig::canonicalize`](crate::config::MpiConfig::canonicalize)
    /// off).
    pub plan_cache_canonical_hits: u64,
    /// Lookups whose type was rewritten to a different canonical
    /// spelling before plan compilation (all ranks).
    pub canonicalized_types: u64,
    /// Bounce-buffer chunks pushed through the staged device pipeline
    /// (all ranks; 0 when no buffer is device-resident).
    pub staging_chunks: u64,
    /// Shared-memory transport: bounce-segment slots filled (0 on the
    /// IB transport and in single-copy mode).
    pub shm_bounce_chunks: u64,
    /// Shared-memory transport: CMA-style single-copy operations
    /// performed (0 on the IB transport and in double-copy mode).
    pub shm_cma_ops: u64,
}

impl RunStats {
    /// Interval between two marks on one rank, panicking when absent —
    /// benchmark harness convenience.
    pub fn mark_interval(&self, rank: usize, from_slot: u32, to_slot: u32) -> Time {
        let find = |slot| {
            self.marks[rank]
                .iter()
                .find(|(s, _)| *s == slot)
                .unwrap_or_else(|| panic!("mark {slot} missing on rank {rank}"))
                .1
        };
        let (a, b) = (find(from_slot), find(to_slot));
        assert!(b >= a, "marks out of order");
        b - a
    }

    /// Total typed errors across ranks (0 on a clean run).
    pub fn total_errors(&self) -> usize {
        self.errors.iter().map(Vec::len).sum()
    }

    /// Faults the transport injected and recovered from without any
    /// protocol-visible error: retransmissions plus timed RNR retries.
    pub fn faults_recovered(&self) -> u64 {
        self.retransmits + self.rnr_backoff_retries
    }
}
