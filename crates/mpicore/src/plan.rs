//! Pure planning helpers for the copy-reduced schemes.
//!
//! These functions turn block lists into RDMA work-request plans and are
//! kept free of protocol state so they can be unit-tested exhaustively:
//!
//! * [`chunk_gather`] — split a block list into gather lists of at most
//!   `max_sge` entries (RWG-UP, §5.1),
//! * [`plan_multi_w`] — pair the sender's and receiver's block lists
//!   stream-wise into one RDMA write per *receiver-contiguous* range
//!   with a sender gather list (Multi-W, §5.3/§5.4.2). The two sides may
//!   have completely different layouts; blocks are split at every
//!   boundary mismatch.

use ibdt_datatype::{Datatype, TransferPlan, TypeRegistry};
use ibdt_memreg::Va;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// One planned RDMA write: gather `sges` (absolute addresses) into the
/// contiguous destination `dst`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedWr {
    /// Source gather list: `(addr, len)` pairs.
    pub sges: Vec<(Va, u64)>,
    /// Destination address (contiguous).
    pub dst: Va,
    /// Total bytes (== sum of sge lens).
    pub len: u64,
}

/// Splits `blocks` into chunks of at most `max_sge` entries, returning
/// for each chunk its gather list and total length.
pub fn chunk_gather(blocks: &[(Va, u64)], max_sge: usize) -> Vec<(Vec<(Va, u64)>, u64)> {
    assert!(max_sge > 0);
    blocks
        .chunks(max_sge)
        .map(|c| (c.to_vec(), c.iter().map(|&(_, l)| l).sum()))
        .collect()
}

/// Plans the Multi-W write list.
///
/// `snd` and `rcv` are the two sides' contiguous block lists in stream
/// order (absolute addresses); their total lengths must match. Each
/// planned write targets one receiver-contiguous byte range and gathers
/// at most `max_sge` sender pieces; receiver blocks needing more gather
/// entries are split into multiple writes.
pub fn plan_multi_w(snd: &[(Va, u64)], rcv: &[(Va, u64)], max_sge: usize) -> Vec<PlannedWr> {
    assert!(max_sge > 0);
    debug_assert_eq!(
        snd.iter().map(|&(_, l)| l).sum::<u64>(),
        rcv.iter().map(|&(_, l)| l).sum::<u64>(),
        "sender and receiver type signatures must match in size"
    );
    let mut out = Vec::new();
    let mut si = 0usize; // sender block index
    let mut soff = 0u64; // offset within sender block

    for &(raddr, rlen) in rcv {
        let mut covered = 0u64;
        while covered < rlen {
            // Build one WR for as much of this receiver block as max_sge
            // sender pieces cover.
            let mut sges: Vec<(Va, u64)> = Vec::new();
            let mut wr_len = 0u64;
            while covered + wr_len < rlen && sges.len() < max_sge {
                let (sa, sl) = snd[si];
                let avail = sl - soff;
                let need = rlen - covered - wr_len;
                let take = avail.min(need);
                sges.push((sa + soff, take));
                wr_len += take;
                soff += take;
                if soff == sl {
                    si += 1;
                    soff = 0;
                }
            }
            out.push(PlannedWr {
                sges,
                dst: raddr + covered,
                len: wr_len,
            });
            covered += wr_len;
        }
    }
    debug_assert!(si == snd.len() || (si == snd.len() - 1 && soff == 0) || snd[si].1 == soff);
    out
}

/// Hybrid-scheme partition of a message's stream (§10 future work:
/// scheme selection "within different parts of a single datatype
/// message").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HybridPart {
    /// Stream intervals `[lo, hi)` whose receiver block is large
    /// enough for a direct zero-copy write. Each interval corresponds
    /// to exactly one receiver-contiguous block.
    pub direct: Vec<(u64, u64)>,
    /// Stream intervals that travel packed (small receiver blocks),
    /// in stream order.
    pub packed: Vec<(u64, u64)>,
    /// Total packed bytes (sum of packed interval lengths).
    pub packed_bytes: u64,
}

/// Partitions a message by receiver block size: blocks of at least
/// `threshold` bytes are written directly, the rest is packed. Both
/// sides compute the same partition from the receiver's block lengths
/// (shipped in the rendezvous reply), so no extra negotiation is
/// needed.
pub fn hybrid_partition(rcv_block_lens: &[u64], threshold: u64) -> HybridPart {
    let mut direct = Vec::new();
    let mut packed: Vec<(u64, u64)> = Vec::new();
    let mut packed_bytes = 0;
    let mut pos = 0u64;
    for &len in rcv_block_lens {
        let iv = (pos, pos + len);
        if len >= threshold {
            direct.push(iv);
        } else {
            // Merge stream-adjacent packed intervals.
            match packed.last_mut() {
                Some((_, hi)) if *hi == iv.0 => *hi = iv.1,
                _ => packed.push(iv),
            }
            packed_bytes += len;
        }
        pos += len;
    }
    HybridPart {
        direct,
        packed,
        packed_bytes,
    }
}

/// Maps a range `[lo, hi)` of the *substream* (the concatenation of
/// `intervals` in order) back to stream intervals.
pub fn substream_to_stream(intervals: &[(u64, u64)], lo: u64, hi: u64) -> Vec<(u64, u64)> {
    debug_assert!(lo <= hi);
    let mut out = Vec::new();
    let mut pos = 0u64; // substream position at the start of interval
    for &(a, b) in intervals {
        let len = b - a;
        let end = pos + len;
        if end > lo && pos < hi {
            let clip_lo = lo.saturating_sub(pos);
            let clip_hi = (hi - pos).min(len);
            if clip_hi > clip_lo {
                out.push((a + clip_lo, a + clip_hi));
            }
        }
        pos = end;
        if pos >= hi {
            break;
        }
    }
    out
}

/// Immediate-data encoding for rendezvous segments: 16 bits of sequence
/// number, 16 bits of segment index.
pub fn imm_of(seq: u64, k: u32) -> u32 {
    debug_assert!(k <= 0xFFFF, "segment index overflows immediate encoding");
    (((seq & 0xFFFF) as u32) << 16) | (k & 0xFFFF)
}

/// Inverse of [`imm_of`]: `(seq16, k)`.
pub fn imm_parse(imm: u32) -> (u16, u32) {
    ((imm >> 16) as u16, imm & 0xFFFF)
}

/// Process-wide pool of compiled plans, shared across ranks and
/// cluster instances the way payload slabs and address-space backing
/// stores are pooled: a parameter sweep builds a fresh cluster per
/// point but keeps sending the *same* datatype, and recompiling the
/// plan per cluster was the last fixed per-iteration allocation burst.
/// Keyed by `(Datatype::id(), count)` — ids come from a process-global
/// counter and are never reused, and a type's structure is immutable
/// after construction, so a pooled plan can never go stale. Bounded;
/// on overflow the pool is cleared (plans are cheap to recompile).
type SharedPlanMap = HashMap<(u64, u64), Arc<TransferPlan>>;
static SHARED_PLANS: Mutex<Option<SharedPlanMap>> = Mutex::new(None);
const SHARED_PLAN_CAP: usize = 256;

fn shared_plan_lookup(id: u64, count: u64) -> Option<Arc<TransferPlan>> {
    let guard = SHARED_PLANS.lock().ok()?;
    guard.as_ref()?.get(&(id, count)).cloned()
}

fn shared_plan_publish(id: u64, count: u64, plan: &Arc<TransferPlan>) {
    if let Ok(mut guard) = SHARED_PLANS.lock() {
        let map = guard.get_or_insert_with(HashMap::new);
        if map.len() >= SHARED_PLAN_CAP {
            map.clear();
        }
        map.insert((id, count), plan.clone());
    }
}

/// Per-rank LRU cache of compiled [`TransferPlan`]s, keyed by the
/// §5.4.2 datatype-cache version: `(type index, type version, count)`.
/// The registry assigns the index/version, so a freed-and-reused type
/// index can never alias a stale plan — the bumped version changes the
/// key, exactly as it invalidates the wire-level layout cache.
///
/// Compilation charges no modelled (virtual-clock) time — plans only
/// amortize *host* work — so enabling or disabling the cache cannot
/// perturb simulated results.
#[derive(Debug)]
pub struct PlanCache {
    enabled: bool,
    cap: usize,
    map: HashMap<(u32, u32, u64), (Arc<TransferPlan>, u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    /// Canonicalize lookups (TEMPI dedup): off by default so identical
    /// spellings keep their classic per-spelling slots.
    canon: bool,
    canonical_hits: u64,
    canonicalized: u64,
}

impl PlanCache {
    /// Creates a cache holding at most `cap` plans. A disabled cache
    /// compiles on every lookup (the equivalence-test baseline).
    pub fn new(enabled: bool, cap: usize) -> Self {
        Self {
            enabled,
            cap,
            map: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            canon: false,
            canonical_hits: 0,
            canonicalized: 0,
        }
    }

    /// Empties the cache and zeroes every counter, keeping map
    /// capacity and configuration (enabled/capacity/canonicalization).
    /// Lookups after a reset behave bit-identically to a fresh
    /// cache's — world recycling relies on this.
    pub fn reset(&mut self) {
        self.map.clear();
        self.tick = 0;
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
        self.canonical_hits = 0;
        self.canonicalized = 0;
    }

    /// Canonicalizes every lookup first (see
    /// [`MpiConfig::canonicalize`](crate::config::MpiConfig::canonicalize)):
    /// equivalently-spelled types share one cache slot and one
    /// compiled plan.
    pub fn with_canonicalization(mut self, on: bool) -> Self {
        self.canon = on;
        self
    }

    /// Returns the plan for `count` instances of `ty`, compiling and
    /// caching on miss. `registry` supplies the versioned tag the key
    /// is derived from.
    pub fn lookup(
        &mut self,
        registry: &mut TypeRegistry,
        ty: &Datatype,
        count: u64,
    ) -> Arc<TransferPlan> {
        // Canonicalize before both the enabled and disabled branches:
        // the compiled plan must be the same object either way, which
        // is what keeps cache-on/off observationally equivalent with
        // canonicalization enabled.
        let canon_ty;
        let mut respelled = false;
        let ty = if self.canon {
            canon_ty = ty.canonical();
            if canon_ty.id() != ty.id() {
                self.canonicalized += 1;
                respelled = true;
            }
            &canon_ty
        } else {
            ty
        };
        if !self.enabled || self.cap == 0 {
            self.misses += 1;
            return Arc::new(TransferPlan::compile(ty, count));
        }
        let tag = registry.register(ty);
        let key = (tag.index, tag.version, count);
        self.tick += 1;
        let tick = self.tick;
        if let Some((plan, last)) = self.map.get_mut(&key) {
            self.hits += 1;
            if respelled {
                self.canonical_hits += 1;
            }
            *last = tick;
            return plan.clone();
        }
        self.misses += 1;
        let plan = shared_plan_lookup(ty.id(), count).unwrap_or_else(|| {
            let p = Arc::new(TransferPlan::compile(ty, count));
            shared_plan_publish(ty.id(), count, &p);
            p
        });
        if self.map.len() >= self.cap {
            // Evict the least recently used entry. The cap is small, so
            // a linear scan beats maintaining an ordered structure.
            if let Some(&victim) = self
                .map
                .iter()
                .min_by_key(|(_, (_, last))| *last)
                .map(|(k, _)| k)
            {
                self.map.remove(&victim);
                self.evictions += 1;
            }
        }
        self.map.insert(key, (plan.clone(), tick));
        plan
    }

    /// `(hits, misses, evictions)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    /// `(canonical hits, types canonicalized)`: hits served because a
    /// *respelled* type resolved to an already-cached canonical
    /// layout, and lookups whose type was rewritten at all.
    pub fn canon_stats(&self) -> (u64, u64) {
        (self.canonical_hits, self.canonicalized)
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_gather_splits_at_limit() {
        let blocks: Vec<(Va, u64)> = (0..10).map(|i| (i * 100, 8)).collect();
        let chunks = chunk_gather(&blocks, 4);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].0.len(), 4);
        assert_eq!(chunks[2].0.len(), 2);
        assert_eq!(chunks.iter().map(|(_, l)| l).sum::<u64>(), 80);
    }

    #[test]
    fn chunk_gather_empty() {
        assert!(chunk_gather(&[], 4).is_empty());
    }

    #[test]
    fn multiw_identical_layouts_one_wr_per_block() {
        let blocks: Vec<(Va, u64)> = vec![(0, 16), (100, 16), (200, 16)];
        let rcv: Vec<(Va, u64)> = vec![(1000, 16), (1100, 16), (1200, 16)];
        let plan = plan_multi_w(&blocks, &rcv, 64);
        assert_eq!(plan.len(), 3);
        for (i, wr) in plan.iter().enumerate() {
            assert_eq!(wr.sges, vec![(i as u64 * 100, 16)]);
            assert_eq!(wr.dst, 1000 + i as u64 * 100);
            assert_eq!(wr.len, 16);
        }
    }

    #[test]
    fn multiw_sender_finer_than_receiver_gathers() {
        // Sender: 4 blocks of 8; receiver: 1 block of 32.
        let snd: Vec<(Va, u64)> = (0..4).map(|i| (i * 50, 8)).collect();
        let rcv = vec![(9000, 32)];
        let plan = plan_multi_w(&snd, &rcv, 64);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].sges.len(), 4);
        assert_eq!(plan[0].dst, 9000);
        assert_eq!(plan[0].len, 32);
    }

    #[test]
    fn multiw_receiver_finer_than_sender_splits() {
        // Sender: 1 block of 32; receiver: 4 blocks of 8.
        let snd = vec![(500u64, 32u64)];
        let rcv: Vec<(Va, u64)> = (0..4).map(|i| (7000 + i * 100, 8)).collect();
        let plan = plan_multi_w(&snd, &rcv, 64);
        assert_eq!(plan.len(), 4);
        for (i, wr) in plan.iter().enumerate() {
            assert_eq!(wr.sges, vec![(500 + i as u64 * 8, 8)]);
            assert_eq!(wr.dst, 7000 + i as u64 * 100);
        }
    }

    #[test]
    fn multiw_misaligned_boundaries() {
        // Sender blocks 12+20; receiver blocks 8+24. Splits at 8, 12.
        let snd = vec![(0u64, 12u64), (100, 20)];
        let rcv = vec![(1000u64, 8u64), (2000, 24)];
        let plan = plan_multi_w(&snd, &rcv, 64);
        // WR1: rcv[0] = snd[0][0..8]. WR2: rcv[1] = snd[0][8..12] +
        // snd[1][0..20].
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0].sges, vec![(0, 8)]);
        assert_eq!(plan[0].dst, 1000);
        assert_eq!(plan[1].sges, vec![(8, 4), (100, 20)]);
        assert_eq!(plan[1].dst, 2000);
        assert_eq!(plan[1].len, 24);
    }

    #[test]
    fn multiw_respects_max_sge() {
        // Receiver one 64-byte block; sender 8 blocks of 8; max_sge 3.
        let snd: Vec<(Va, u64)> = (0..8).map(|i| (i * 10, 8)).collect();
        let rcv = vec![(5000u64, 64u64)];
        let plan = plan_multi_w(&snd, &rcv, 3);
        assert_eq!(plan.len(), 3); // 3 + 3 + 2 sges
        assert_eq!(plan[0].sges.len(), 3);
        assert_eq!(plan[0].dst, 5000);
        assert_eq!(plan[1].dst, 5000 + 24);
        assert_eq!(plan[2].sges.len(), 2);
        let total: u64 = plan.iter().map(|w| w.len).sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn multiw_total_preserved_random_shapes() {
        // Deterministic pseudo-random split of 1 KiB into blocks.
        let mut s = Vec::new();
        let mut r = Vec::new();
        let (mut sa, mut ra) = (0u64, 1 << 20);
        let mut rem_s = 1024u64;
        let mut x = 7u64;
        while rem_s > 0 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let l = (x % 96 + 1).min(rem_s);
            s.push((sa, l));
            sa += l + x % 33;
            rem_s -= l;
        }
        let mut rem_r = 1024u64;
        while rem_r > 0 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let l = (x % 80 + 1).min(rem_r);
            r.push((ra, l));
            ra += l + x % 17;
            rem_r -= l;
        }
        let plan = plan_multi_w(&s, &r, 5);
        let total: u64 = plan.iter().map(|w| w.len).sum();
        assert_eq!(total, 1024);
        for wr in &plan {
            assert!(wr.sges.len() <= 5);
            assert_eq!(wr.len, wr.sges.iter().map(|&(_, l)| l).sum::<u64>());
        }
        // Destination ranges are disjoint and cover the receiver blocks.
        let mut dsts: Vec<(u64, u64)> = plan.iter().map(|w| (w.dst, w.len)).collect();
        dsts.sort_unstable();
        for w in dsts.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0);
        }
    }

    #[test]
    fn hybrid_partition_splits_by_threshold() {
        // Blocks: 100, 4000, 50, 50, 8000 with threshold 1024.
        let p = hybrid_partition(&[100, 4000, 50, 50, 8000], 1024);
        assert_eq!(p.direct, vec![(100, 4100), (4200, 12200)]);
        // The two 50-byte blocks are stream-adjacent and merge.
        assert_eq!(p.packed, vec![(0, 100), (4100, 4200)]);
        assert_eq!(p.packed_bytes, 200);
    }

    #[test]
    fn hybrid_partition_all_large() {
        let p = hybrid_partition(&[2048, 2048], 1024);
        assert_eq!(p.direct.len(), 2);
        assert!(p.packed.is_empty());
        assert_eq!(p.packed_bytes, 0);
    }

    #[test]
    fn hybrid_partition_all_small() {
        let p = hybrid_partition(&[16, 16, 16], 1024);
        assert!(p.direct.is_empty());
        assert_eq!(p.packed, vec![(0, 48)]);
        assert_eq!(p.packed_bytes, 48);
    }

    #[test]
    fn hybrid_partition_empty() {
        let p = hybrid_partition(&[], 1024);
        assert!(p.direct.is_empty() && p.packed.is_empty());
    }

    #[test]
    fn substream_mapping_whole() {
        let ivs = [(10u64, 20u64), (50, 55), (100, 130)];
        // Substream is 10 + 5 + 30 = 45 bytes.
        assert_eq!(substream_to_stream(&ivs, 0, 45), ivs.to_vec());
    }

    #[test]
    fn substream_mapping_partial() {
        let ivs = [(10u64, 20u64), (50, 55), (100, 130)];
        // [8, 17) of the substream: last 2 bytes of iv0, all of iv1,
        // first 2 bytes of iv2.
        assert_eq!(
            substream_to_stream(&ivs, 8, 17),
            vec![(18, 20), (50, 55), (100, 102)]
        );
        // Entirely inside one interval: substream [16,18) falls in the
        // third interval (iv0 covers [0,10), iv1 [10,15), iv2 [15,45)).
        assert_eq!(substream_to_stream(&ivs, 16, 18), vec![(101, 103)]);
        assert_eq!(substream_to_stream(&ivs, 11, 13), vec![(51, 53)]);
        // Empty range.
        assert!(substream_to_stream(&ivs, 7, 7).is_empty());
    }

    #[test]
    fn substream_lengths_preserved() {
        let ivs = [(0u64, 7u64), (100, 103), (200, 250)];
        let total = 7 + 3 + 50;
        for lo in 0..total {
            for hi in lo..=total {
                let mapped = substream_to_stream(&ivs, lo, hi);
                let n: u64 = mapped.iter().map(|(a, b)| b - a).sum();
                assert_eq!(n, hi - lo, "lo={lo} hi={hi}");
            }
        }
    }

    #[test]
    fn imm_roundtrip() {
        let imm = imm_of(0x1_F00D, 7);
        let (seq16, k) = imm_parse(imm);
        assert_eq!(seq16, 0xF00D);
        assert_eq!(k, 7);
    }

    fn vec_ty(stride: i64) -> Datatype {
        Datatype::vector(4, 8, stride, &Datatype::int()).expect("valid vector")
    }

    #[test]
    fn plan_cache_hits_on_repeat_lookup() {
        let mut reg = TypeRegistry::new();
        let mut pc = PlanCache::new(true, 8);
        let ty = vec_ty(64);
        let a = pc.lookup(&mut reg, &ty, 3);
        let b = pc.lookup(&mut reg, &ty, 3);
        assert!(Arc::ptr_eq(&a, &b), "second lookup returns the cached Arc");
        assert_eq!(pc.stats(), (1, 1, 0));
        // A different count is a different plan.
        let c = pc.lookup(&mut reg, &ty, 4);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(pc.stats(), (1, 2, 0));
    }

    #[test]
    fn plan_cache_disabled_always_misses() {
        let mut reg = TypeRegistry::new();
        let mut pc = PlanCache::new(false, 8);
        let ty = vec_ty(64);
        let a = pc.lookup(&mut reg, &ty, 3);
        let b = pc.lookup(&mut reg, &ty, 3);
        assert!(!Arc::ptr_eq(&a, &b), "disabled cache recompiles every time");
        assert_eq!(pc.stats(), (0, 2, 0));
        assert!(pc.is_empty());
        // Identical output either way.
        assert_eq!(a.blocks(), b.blocks());
        assert_eq!(a.total_bytes(), b.total_bytes());
    }

    #[test]
    fn plan_cache_evicts_least_recently_used() {
        let mut reg = TypeRegistry::new();
        let mut pc = PlanCache::new(true, 2);
        let t1 = vec_ty(64);
        let t2 = vec_ty(72);
        let t3 = vec_ty(80);
        pc.lookup(&mut reg, &t1, 1);
        pc.lookup(&mut reg, &t2, 1);
        // Touch t1 so t2 is the LRU entry, then force an eviction.
        pc.lookup(&mut reg, &t1, 1);
        pc.lookup(&mut reg, &t3, 1);
        assert_eq!(pc.len(), 2);
        let (_, _, evictions) = pc.stats();
        assert_eq!(evictions, 1);
        // t1 survived the eviction (t2 was least recently used).
        let before = pc.stats().0;
        pc.lookup(&mut reg, &t1, 1);
        assert_eq!(pc.stats().0, before + 1, "t1 still hits");
        pc.lookup(&mut reg, &t2, 1);
        assert_eq!(pc.stats().1, 4, "t2 was evicted and misses");
    }

    #[test]
    fn plan_cache_keyed_by_registry_version() {
        // Two structurally identical but distinct Datatype values get
        // distinct registry tags, so they occupy distinct cache slots.
        let mut reg = TypeRegistry::new();
        let mut pc = PlanCache::new(true, 8);
        let t1 = vec_ty(64);
        let t2 = vec_ty(64);
        pc.lookup(&mut reg, &t1, 2);
        pc.lookup(&mut reg, &t2, 2);
        assert_eq!(pc.stats(), (0, 2, 0), "distinct identities never collide");
        assert_eq!(pc.len(), 2);
    }

    #[test]
    fn plan_cache_zero_capacity_never_stores() {
        let mut reg = TypeRegistry::new();
        let mut pc = PlanCache::new(true, 0);
        let ty = vec_ty(64);
        pc.lookup(&mut reg, &ty, 1);
        pc.lookup(&mut reg, &ty, 1);
        assert!(pc.is_empty());
        assert_eq!(pc.stats(), (0, 2, 0));
    }
}
