//! Collective operations as point-to-point op expansions.
//!
//! §8.3 notes that collectives implemented over point-to-point datatype
//! communication inherit the schemes' improvements (while e.g. MPICH's
//! Bcast does explicit pack/unpack). These generators produce the
//! point-to-point programs:
//!
//! * [`alltoall`] — post all receives, then all sends, then wait (the
//!   MPICH "basic" algorithm for large messages),
//! * [`bcast`] — binomial tree,
//! * [`allgather`] — ring,
//! * [`barrier`] — dissemination with zero-byte messages.

use crate::cluster::{AppOp, ReduceOp};
use ibdt_datatype::Datatype;
use ibdt_memreg::Va;

/// Tag space reserved for collective traffic.
pub const COLL_TAG: u32 = 0xC011_0000;

/// Displacement of rank `i`'s block in an alltoall/allgather buffer.
fn block_disp(ty: &Datatype, count: u64, i: u32) -> i64 {
    ty.extent() * count as i64 * i as i64
}

/// `MPI_Alltoall`: every rank sends `count` instances of `sty` to each
/// rank and receives `count` instances of `rty` from each.
pub fn alltoall(
    rank: u32,
    nprocs: u32,
    sbuf: Va,
    rbuf: Va,
    count: u64,
    sty: &Datatype,
    rty: &Datatype,
) -> Vec<AppOp> {
    let mut ops = Vec::with_capacity(2 * nprocs as usize + 1);
    // Post receives first (self included — the self path copies
    // locally), staggered so that not everyone hammers rank 0 first.
    for i in 0..nprocs {
        let src = (rank + i) % nprocs;
        ops.push(AppOp::Irecv {
            peer: src,
            buf: (rbuf as i64 + block_disp(rty, count, src)) as Va,
            count,
            ty: rty.clone(),
            tag: COLL_TAG,
        });
    }
    for i in 0..nprocs {
        let dst = (rank + i) % nprocs;
        ops.push(AppOp::Isend {
            peer: dst,
            buf: (sbuf as i64 + block_disp(sty, count, dst)) as Va,
            count,
            ty: sty.clone(),
            tag: COLL_TAG,
        });
    }
    ops.push(AppOp::WaitAll);
    ops
}

/// `MPI_Bcast`: binomial tree rooted at `root`.
pub fn bcast(rank: u32, nprocs: u32, root: u32, buf: Va, count: u64, ty: &Datatype) -> Vec<AppOp> {
    let mut ops = Vec::new();
    // Work in a rotated space where the root is 0.
    let vrank = (rank + nprocs - root) % nprocs;
    let mut mask = 1u32;
    // Receive phase: find the bit that delivers to us.
    while mask < nprocs {
        if vrank & mask != 0 {
            let src = ((vrank - mask) + root) % nprocs;
            ops.push(AppOp::Irecv {
                peer: src,
                buf,
                count,
                ty: ty.clone(),
                tag: COLL_TAG + 1,
            });
            ops.push(AppOp::WaitAll);
            break;
        }
        mask <<= 1;
    }
    // Send phase: forward to higher bits.
    let mut mask = mask >> 1;
    if mask == 0 && vrank == 0 {
        // Root starts with the highest bit below nprocs.
        let mut m = 1u32;
        while m < nprocs {
            m <<= 1;
        }
        mask = m >> 1;
    }
    while mask > 0 {
        if vrank + mask < nprocs {
            let dst = (vrank + mask + root) % nprocs;
            ops.push(AppOp::Isend {
                peer: dst,
                buf,
                count,
                ty: ty.clone(),
                tag: COLL_TAG + 1,
            });
        }
        mask >>= 1;
    }
    ops.push(AppOp::WaitAll);
    ops
}

/// `MPI_Allgather`: ring algorithm; rank `i`'s contribution ends up at
/// block `i` of every rank's `rbuf`.
pub fn allgather(
    rank: u32,
    nprocs: u32,
    sbuf: Va,
    rbuf: Va,
    count: u64,
    ty: &Datatype,
) -> Vec<AppOp> {
    let mut ops = Vec::new();
    // Local copy of own contribution (self-send).
    ops.push(AppOp::Irecv {
        peer: rank,
        buf: (rbuf as i64 + block_disp(ty, count, rank)) as Va,
        count,
        ty: ty.clone(),
        tag: COLL_TAG + 2,
    });
    ops.push(AppOp::Isend {
        peer: rank,
        buf: sbuf,
        count,
        ty: ty.clone(),
        tag: COLL_TAG + 2,
    });
    ops.push(AppOp::WaitAll);
    let right = (rank + 1) % nprocs;
    let left = (rank + nprocs - 1) % nprocs;
    // In step s, forward the block that originated at rank - s.
    for s in 0..nprocs - 1 {
        let send_block = (rank + nprocs - s) % nprocs;
        let recv_block = (rank + nprocs - s - 1) % nprocs;
        ops.push(AppOp::Irecv {
            peer: left,
            buf: (rbuf as i64 + block_disp(ty, count, recv_block)) as Va,
            count,
            ty: ty.clone(),
            tag: COLL_TAG + 2,
        });
        ops.push(AppOp::Isend {
            peer: right,
            buf: (rbuf as i64 + block_disp(ty, count, send_block)) as Va,
            count,
            ty: ty.clone(),
            tag: COLL_TAG + 2,
        });
        ops.push(AppOp::WaitAll);
    }
    ops
}

/// `MPI_Alltoallv`: like [`alltoall`] but with per-destination counts
/// and byte displacements. `scounts[j]`/`sdispls[j]` describe what this
/// rank sends to rank `j`; `rcounts[j]`/`rdispls[j]` what it receives
/// from rank `j`.
#[allow(clippy::too_many_arguments)]
pub fn alltoallv(
    rank: u32,
    nprocs: u32,
    sbuf: Va,
    sdispls: &[i64],
    scounts: &[u64],
    sty: &Datatype,
    rbuf: Va,
    rdispls: &[i64],
    rcounts: &[u64],
    rty: &Datatype,
) -> Vec<AppOp> {
    assert_eq!(scounts.len(), nprocs as usize);
    assert_eq!(rcounts.len(), nprocs as usize);
    assert_eq!(sdispls.len(), nprocs as usize);
    assert_eq!(rdispls.len(), nprocs as usize);
    let mut ops = Vec::with_capacity(2 * nprocs as usize + 1);
    for i in 0..nprocs {
        let src = (rank + i) % nprocs;
        if rcounts[src as usize] > 0 {
            ops.push(AppOp::Irecv {
                peer: src,
                buf: (rbuf as i64 + rdispls[src as usize]) as Va,
                count: rcounts[src as usize],
                ty: rty.clone(),
                tag: COLL_TAG + 4,
            });
        }
    }
    for i in 0..nprocs {
        let dst = (rank + i) % nprocs;
        if scounts[dst as usize] > 0 {
            ops.push(AppOp::Isend {
                peer: dst,
                buf: (sbuf as i64 + sdispls[dst as usize]) as Va,
                count: scounts[dst as usize],
                ty: sty.clone(),
                tag: COLL_TAG + 4,
            });
        }
    }
    ops.push(AppOp::WaitAll);
    ops
}

/// `MPI_Gatherv` to `root`: per-rank counts and root-side byte
/// displacements.
#[allow(clippy::too_many_arguments)]
pub fn gatherv(
    rank: u32,
    nprocs: u32,
    root: u32,
    sbuf: Va,
    scount: u64,
    rbuf: Va,
    rdispls: &[i64],
    rcounts: &[u64],
    ty: &Datatype,
) -> Vec<AppOp> {
    let mut ops = Vec::new();
    if rank == root {
        assert_eq!(rcounts.len(), nprocs as usize);
        assert_eq!(rdispls.len(), nprocs as usize);
        for src in 0..nprocs {
            if rcounts[src as usize] > 0 {
                ops.push(AppOp::Irecv {
                    peer: src,
                    buf: (rbuf as i64 + rdispls[src as usize]) as Va,
                    count: rcounts[src as usize],
                    ty: ty.clone(),
                    tag: COLL_TAG + 5,
                });
            }
        }
    }
    if scount > 0 {
        ops.push(AppOp::Isend {
            peer: root,
            buf: sbuf,
            count: scount,
            ty: ty.clone(),
            tag: COLL_TAG + 5,
        });
    }
    ops.push(AppOp::WaitAll);
    ops
}

/// `MPI_Gather` to `root` (flat algorithm: every non-root rank sends
/// its block; the root receives into per-rank displacements).
pub fn gather(
    rank: u32,
    nprocs: u32,
    root: u32,
    sbuf: Va,
    rbuf: Va,
    count: u64,
    ty: &Datatype,
) -> Vec<AppOp> {
    let mut ops = Vec::new();
    if rank == root {
        for src in 0..nprocs {
            ops.push(AppOp::Irecv {
                peer: src,
                buf: (rbuf as i64 + block_disp(ty, count, src)) as Va,
                count,
                ty: ty.clone(),
                tag: COLL_TAG + 16,
            });
        }
        ops.push(AppOp::Isend {
            peer: root,
            buf: sbuf,
            count,
            ty: ty.clone(),
            tag: COLL_TAG + 16,
        });
    } else {
        ops.push(AppOp::Isend {
            peer: root,
            buf: sbuf,
            count,
            ty: ty.clone(),
            tag: COLL_TAG + 16,
        });
    }
    ops.push(AppOp::WaitAll);
    ops
}

/// `MPI_Scatter` from `root` (flat algorithm).
pub fn scatter(
    rank: u32,
    nprocs: u32,
    root: u32,
    sbuf: Va,
    rbuf: Va,
    count: u64,
    ty: &Datatype,
) -> Vec<AppOp> {
    let mut ops = Vec::new();
    if rank == root {
        for dst in 0..nprocs {
            ops.push(AppOp::Isend {
                peer: dst,
                buf: (sbuf as i64 + block_disp(ty, count, dst)) as Va,
                count,
                ty: ty.clone(),
                tag: COLL_TAG + 17,
            });
        }
    }
    ops.push(AppOp::Irecv {
        peer: root,
        buf: rbuf,
        count,
        ty: ty.clone(),
        tag: COLL_TAG + 17,
    });
    ops.push(AppOp::WaitAll);
    ops
}

/// `MPI_Reduce` to `root` (binomial tree): combines `count` instances
/// of `ty` (a primitive-element type) into the root's `rbuf` with `op`.
/// `scratch` must hold one message (`count * extent` bytes) and be
/// distinct from both buffers. The caller's `sbuf` is consumed as the
/// running accumulator on non-leaf ranks, matching MPI's permission to
/// use the send buffer of intermediate ranks.
#[allow(clippy::too_many_arguments)]
pub fn reduce(
    rank: u32,
    nprocs: u32,
    root: u32,
    sbuf: Va,
    rbuf: Va,
    scratch: Va,
    count: u64,
    ty: &Datatype,
    op: ReduceOp,
) -> Vec<AppOp> {
    let mut ops = Vec::new();
    let vrank = (rank + nprocs - root) % nprocs;
    // Accumulate into the root's rbuf directly; others use sbuf.
    let acc = if rank == root {
        ops.push(AppOp::CombineBuffers {
            dst: rbuf,
            src: sbuf,
            count,
            ty: ty.clone(),
            op: ReduceOp::Replace,
        });
        rbuf
    } else {
        sbuf
    };
    let mut mask = 1u32;
    while mask < nprocs {
        if vrank & mask != 0 {
            // Send the accumulator up the tree and stop.
            let dst = ((vrank & !mask) + root) % nprocs;
            ops.push(AppOp::Isend {
                peer: dst,
                buf: acc,
                count,
                ty: ty.clone(),
                tag: COLL_TAG + 18,
            });
            ops.push(AppOp::WaitAll);
            return ops;
        }
        if vrank + mask < nprocs {
            let src = ((vrank + mask) + root) % nprocs;
            ops.push(AppOp::Irecv {
                peer: src,
                buf: scratch,
                count,
                ty: ty.clone(),
                tag: COLL_TAG + 18,
            });
            ops.push(AppOp::WaitAll);
            ops.push(AppOp::CombineBuffers {
                dst: acc,
                src: scratch,
                count,
                ty: ty.clone(),
                op,
            });
        }
        mask <<= 1;
    }
    ops
}

/// `MPI_Allreduce` = reduce to rank 0 + bcast.
#[allow(clippy::too_many_arguments)]
pub fn allreduce(
    rank: u32,
    nprocs: u32,
    sbuf: Va,
    rbuf: Va,
    scratch: Va,
    count: u64,
    ty: &Datatype,
    op: ReduceOp,
) -> Vec<AppOp> {
    let mut ops = reduce(rank, nprocs, 0, sbuf, rbuf, scratch, count, ty, op);
    // Non-root ranks receive the result into rbuf.
    ops.extend(bcast(rank, nprocs, 0, rbuf, count, ty));
    ops
}

/// `MPI_Barrier`: dissemination algorithm with zero-byte messages.
pub fn barrier(rank: u32, nprocs: u32) -> Vec<AppOp> {
    let mut ops = Vec::new();
    let ty = Datatype::byte();
    let mut step = 1u32;
    while step < nprocs {
        let dst = (rank + step) % nprocs;
        let src = (rank + nprocs - step) % nprocs;
        ops.push(AppOp::Irecv {
            peer: src,
            buf: 0,
            count: 0,
            ty: ty.clone(),
            tag: COLL_TAG + 3 + step,
        });
        ops.push(AppOp::Isend {
            peer: dst,
            buf: 0,
            count: 0,
            ty: ty.clone(),
            tag: COLL_TAG + 3 + step,
        });
        ops.push(AppOp::WaitAll);
        step <<= 1;
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sends_to(ops: &[AppOp]) -> Vec<u32> {
        ops.iter()
            .filter_map(|o| match o {
                AppOp::Isend { peer, .. } => Some(*peer),
                _ => None,
            })
            .collect()
    }

    fn recvs_from(ops: &[AppOp]) -> Vec<u32> {
        ops.iter()
            .filter_map(|o| match o {
                AppOp::Irecv { peer, .. } => Some(*peer),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn alltoall_touches_every_rank_once() {
        let ty = Datatype::int();
        for rank in 0..8 {
            let ops = alltoall(rank, 8, 1 << 20, 2 << 20, 4, &ty, &ty);
            let mut s = sends_to(&ops);
            let mut r = recvs_from(&ops);
            s.sort_unstable();
            r.sort_unstable();
            assert_eq!(s, (0..8).collect::<Vec<_>>());
            assert_eq!(r, (0..8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn alltoall_block_displacements() {
        let ty = Datatype::int();
        let ops = alltoall(0, 4, 1000, 2000, 3, &ty, &ty);
        // Receive for src=2 lands at rbuf + 2*3*4.
        let found = ops
            .iter()
            .any(|o| matches!(o, AppOp::Irecv { peer: 2, buf, .. } if *buf == 2000 + 24));
        assert!(found);
    }

    #[test]
    fn bcast_tree_edges_match() {
        // Collect (sender, receiver) edges over all ranks; they must
        // form a tree covering all non-root ranks exactly once.
        for nprocs in [2u32, 3, 4, 7, 8] {
            for root in [0u32, 1] {
                if root >= nprocs {
                    continue;
                }
                let mut recv_count = vec![0u32; nprocs as usize];
                let mut send_edges: Vec<(u32, u32)> = Vec::new();
                for rank in 0..nprocs {
                    let ops = bcast(rank, nprocs, root, 0, 1, &Datatype::int());
                    for p in recvs_from(&ops) {
                        recv_count[rank as usize] += 1;
                        let _ = p;
                    }
                    for p in sends_to(&ops) {
                        send_edges.push((rank, p));
                    }
                }
                assert_eq!(recv_count[root as usize], 0, "root receives nothing");
                for r in 0..nprocs {
                    if r != root {
                        assert_eq!(recv_count[r as usize], 1, "rank {r} gets exactly one copy");
                    }
                }
                // Every send edge must pair with the receiver's recv.
                assert_eq!(
                    send_edges.len() as u32,
                    nprocs - 1,
                    "nprocs={nprocs} root={root}"
                );
            }
        }
    }

    #[test]
    fn bcast_send_matches_recv_peer() {
        for nprocs in [4u32, 8] {
            let mut sends: Vec<(u32, u32)> = Vec::new();
            let mut recvs: Vec<(u32, u32)> = Vec::new();
            for rank in 0..nprocs {
                let ops = bcast(rank, nprocs, 0, 0, 1, &Datatype::int());
                for p in sends_to(&ops) {
                    sends.push((rank, p));
                }
                for p in recvs_from(&ops) {
                    recvs.push((p, rank));
                }
            }
            sends.sort_unstable();
            recvs.sort_unstable();
            assert_eq!(sends, recvs);
        }
    }

    #[test]
    fn allgather_ring_passes_every_block() {
        let ty = Datatype::int();
        for nprocs in [2u32, 5, 8] {
            for rank in 0..nprocs {
                let ops = allgather(rank, nprocs, 0, 0, 1, &ty);
                // nprocs-1 ring exchanges + 1 self copy.
                assert_eq!(sends_to(&ops).len() as u32, nprocs);
                assert_eq!(recvs_from(&ops).len() as u32, nprocs);
            }
        }
    }

    #[test]
    fn barrier_rounds_are_logarithmic() {
        for (nprocs, rounds) in [(2u32, 1usize), (4, 2), (8, 3), (5, 3)] {
            let ops = barrier(0, nprocs);
            assert_eq!(sends_to(&ops).len(), rounds);
        }
    }

    #[test]
    fn single_rank_collectives_are_local() {
        assert!(sends_to(&barrier(0, 1)).is_empty());
        let ops = bcast(0, 1, 0, 0, 1, &Datatype::int());
        assert!(sends_to(&ops).is_empty());
    }
}
