//! Control message wire formats.
//!
//! All protocol control traffic (eager headers, rendezvous start/reply,
//! P-RRS segment-ready, fin) travels as channel-semantics sends into the
//! pre-posted eager buffers, so these messages are genuinely serialized
//! into simulated memory and parsed back on arrival — a malformed
//! encoder shows up as a test failure, not a silent mismatch.

use ibdt_datatype::cache::TypeTag;
use ibdt_datatype::FlatLayout;
use ibdt_simcore::InlineVec;

/// Per-segment `(addr, rkey)` reply targets. Inline up to 4 entries:
/// steady-state rendezvous replies carry a handful of segments, so the
/// common decode allocates nothing; wide replies spill to the heap.
pub type SegList = InlineVec<(u64, u32), 4>;

/// A control message.
#[derive(Debug, Clone, PartialEq)]
pub enum CtrlMsg {
    /// Small-message data; the packed payload follows the header in the
    /// same eager buffer.
    EagerData {
        /// MPI tag.
        tag: u32,
        /// Per-(src,dst) message sequence number.
        seq: u64,
        /// Packed payload bytes.
        size: u64,
    },
    /// Rendezvous start (sender → receiver).
    RndvStart {
        /// MPI tag.
        tag: u32,
        /// Message sequence number.
        seq: u64,
        /// Total packed size of the message.
        size: u64,
        /// Scheme the sender proposes (wire code).
        scheme: u8,
        /// Number of segments the sender will use.
        nsegs: u32,
        /// Segment size in bytes.
        seg_size: u64,
        /// Minimum contiguous block size on the sender side (bytes),
        /// input to adaptive selection (§6).
        blk_min: u64,
        /// Median contiguous block size on the sender side (bytes).
        blk_median: u64,
    },
    /// Rendezvous reply (receiver → sender).
    RndvReply {
        /// Sequence number echoed from the start message.
        seq: u64,
        /// Scheme the receiver selected (wire code).
        scheme: u8,
        /// Scheme-specific body.
        body: ReplyBody,
    },
    /// P-RRS: a packed segment is ready to be read (sender → receiver).
    SegReady {
        /// Sequence number.
        seq: u64,
        /// Segment index.
        k: u32,
        /// Address of the packed segment in the sender's memory.
        addr: u64,
        /// rkey covering the segment.
        rkey: u32,
        /// Segment length.
        len: u64,
    },
    /// Transfer finished (direction depends on scheme: P-RRS receiver →
    /// sender; zero-size rendezvous sender → receiver).
    Fin {
        /// Sequence number.
        seq: u64,
    },
    /// Sender's reply-timeout probe: "resend your rendezvous reply for
    /// `seq` if it already went out" (it may have been lost with an
    /// errored queue pair). Receivers still preparing simply ignore it.
    RndvProbe {
        /// Sequence number of the stalled rendezvous.
        seq: u64,
    },
    /// Connection-recovery resume request, sent after a queue pair is
    /// re-established. Sender → receiver: "report how far `seq` got and
    /// resend your reply". Receiver → sender (P-RRS): "re-announce your
    /// packed segments for `seq`".
    RndvResume {
        /// Sequence number of the interrupted rendezvous.
        seq: u64,
    },
    /// Receiver's answer to [`CtrlMsg::RndvResume`]: the contiguous
    /// chunk prefix that already arrived (the sender restarts from this
    /// boundary), or `done` when the transfer had already completed.
    RndvResumeAck {
        /// Sequence number.
        seq: u64,
        /// Segments `0..from_k` arrived and are safe to skip.
        from_k: u32,
        /// True when the receiver completed the transfer before the
        /// connection died; the sender can complete immediately.
        done: bool,
    },
    /// Eager flow-control credit grant (receiver → sender): the
    /// receiver matched this many eager messages from the destination
    /// peer, freeing their credits. Usually piggybacked in front of
    /// another control message in the same eager buffer; travels alone
    /// when a starved sender must be unblocked.
    CreditUpdate {
        /// Credits returned.
        credits: u32,
    },
}

/// Scheme-specific rendezvous reply payload.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplyBody {
    /// Generic: one dynamically allocated unpack buffer.
    Buffer {
        /// Buffer address on the receiver.
        addr: u64,
        /// rkey covering it.
        rkey: u32,
    },
    /// BC-SPUP / RWG-UP: one unpack pool buffer per segment.
    Segments {
        /// `(addr, rkey)` per segment, in segment order.
        segs: SegList,
    },
    /// Multi-W: receiver buffer origin, datatype tag (with layout on
    /// cache miss), instance count, and the registered regions.
    MultiW {
        /// Receiver user-buffer address (datatype offset 0).
        base: u64,
        /// Receiver datatype tag (index + version).
        tag: TypeTag,
        /// Instance count on the receiver.
        count: u64,
        /// Flattened layout; `None` when the receiver knows this peer
        /// already caches `(tag.index, tag.version)`.
        layout: Option<FlatLayout>,
        /// Registered regions `(addr, len, rkey)` covering the buffer.
        regions: Vec<(u64, u64, u32)>,
    },
    /// P-RRS: receiver accepts; sender should announce packed segments.
    ReadGo,
    /// Hybrid (§10 future work): Multi-W-style layout information for
    /// the direct part plus unpack segment buffers for the packed part.
    Hybrid {
        /// Receiver user-buffer address (datatype offset 0).
        base: u64,
        /// Receiver datatype tag.
        tag: TypeTag,
        /// Instance count on the receiver.
        count: u64,
        /// Flattened layout; `None` when cached by this sender.
        layout: Option<FlatLayout>,
        /// Registered regions `(addr, len, rkey)`.
        regions: Vec<(u64, u64, u32)>,
        /// Unpack segment buffers `(addr, rkey)` for the packed part.
        segs: Vec<(u64, u32)>,
        /// Block-size threshold the receiver used to partition.
        threshold: u64,
    },
}

const K_EAGER: u8 = 1;
const K_START: u8 = 2;
const K_REPLY: u8 = 3;
const K_SEGREADY: u8 = 4;
const K_FIN: u8 = 5;
const K_PROBE: u8 = 6;
const K_RESUME: u8 = 7;
const K_RESUME_ACK: u8 = 8;
const K_CREDIT: u8 = 9;

const B_BUFFER: u8 = 1;
const B_SEGMENTS: u8 = 2;
const B_MULTIW: u8 = 3;
const B_READGO: u8 = 4;
const B_HYBRID: u8 = 5;

struct W<'a>(&'a mut Vec<u8>);
impl W<'_> {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.0.extend_from_slice(b);
    }
}

struct R<'a>(&'a [u8], usize);
impl<'a> R<'a> {
    fn u8(&mut self) -> Option<u8> {
        let v = *self.0.get(self.1)?;
        self.1 += 1;
        Some(v)
    }
    fn u32(&mut self) -> Option<u32> {
        let s = self.0.get(self.1..self.1 + 4)?;
        self.1 += 4;
        Some(u32::from_le_bytes(s.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        let s = self.0.get(self.1..self.1 + 8)?;
        self.1 += 8;
        Some(u64::from_le_bytes(s.try_into().ok()?))
    }
    fn bytes(&mut self) -> Option<&'a [u8]> {
        let n = self.u64()? as usize;
        let s = self.0.get(self.1..self.1 + n)?;
        self.1 += n;
        Some(s)
    }
}

impl CtrlMsg {
    /// Serializes the header. For [`CtrlMsg::EagerData`], append the
    /// packed payload to the returned vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        self.encode_into(&mut out);
        out
    }

    /// Serializes the header by *appending* to `out` — the
    /// allocation-free twin of [`Self::encode`] for callers that keep
    /// a reusable per-rank encode buffer.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = W(out);
        match self {
            CtrlMsg::EagerData { tag, seq, size } => {
                w.u8(K_EAGER);
                w.u32(*tag);
                w.u64(*seq);
                w.u64(*size);
            }
            CtrlMsg::RndvStart {
                tag,
                seq,
                size,
                scheme,
                nsegs,
                seg_size,
                blk_min,
                blk_median,
            } => {
                w.u8(K_START);
                w.u32(*tag);
                w.u64(*seq);
                w.u64(*size);
                w.u8(*scheme);
                w.u32(*nsegs);
                w.u64(*seg_size);
                w.u64(*blk_min);
                w.u64(*blk_median);
            }
            CtrlMsg::RndvReply { seq, scheme, body } => {
                w.u8(K_REPLY);
                w.u64(*seq);
                w.u8(*scheme);
                match body {
                    ReplyBody::Buffer { addr, rkey } => {
                        w.u8(B_BUFFER);
                        w.u64(*addr);
                        w.u32(*rkey);
                    }
                    ReplyBody::Segments { segs } => {
                        w.u8(B_SEGMENTS);
                        w.u32(segs.len() as u32);
                        for (a, k) in segs {
                            w.u64(*a);
                            w.u32(*k);
                        }
                    }
                    ReplyBody::MultiW {
                        base,
                        tag,
                        count,
                        layout,
                        regions,
                    } => {
                        w.u8(B_MULTIW);
                        w.u64(*base);
                        w.u32(tag.index);
                        w.u32(tag.version);
                        w.u64(*count);
                        match layout {
                            Some(l) => w.bytes(&l.encode()),
                            None => w.u64(u64::MAX),
                        }
                        w.u32(regions.len() as u32);
                        for (a, l, k) in regions {
                            w.u64(*a);
                            w.u64(*l);
                            w.u32(*k);
                        }
                    }
                    ReplyBody::ReadGo => w.u8(B_READGO),
                    ReplyBody::Hybrid {
                        base,
                        tag,
                        count,
                        layout,
                        regions,
                        segs,
                        threshold,
                    } => {
                        w.u8(B_HYBRID);
                        w.u64(*base);
                        w.u32(tag.index);
                        w.u32(tag.version);
                        w.u64(*count);
                        match layout {
                            Some(l) => w.bytes(&l.encode()),
                            None => w.u64(u64::MAX),
                        }
                        w.u32(regions.len() as u32);
                        for (a, l, k) in regions {
                            w.u64(*a);
                            w.u64(*l);
                            w.u32(*k);
                        }
                        w.u32(segs.len() as u32);
                        for (a, k) in segs {
                            w.u64(*a);
                            w.u32(*k);
                        }
                        w.u64(*threshold);
                    }
                }
            }
            CtrlMsg::SegReady {
                seq,
                k,
                addr,
                rkey,
                len,
            } => {
                w.u8(K_SEGREADY);
                w.u64(*seq);
                w.u32(*k);
                w.u64(*addr);
                w.u32(*rkey);
                w.u64(*len);
            }
            CtrlMsg::Fin { seq } => {
                w.u8(K_FIN);
                w.u64(*seq);
            }
            CtrlMsg::RndvProbe { seq } => {
                w.u8(K_PROBE);
                w.u64(*seq);
            }
            CtrlMsg::RndvResume { seq } => {
                w.u8(K_RESUME);
                w.u64(*seq);
            }
            CtrlMsg::RndvResumeAck { seq, from_k, done } => {
                w.u8(K_RESUME_ACK);
                w.u64(*seq);
                w.u32(*from_k);
                w.u8(u8::from(*done));
            }
            CtrlMsg::CreditUpdate { credits } => {
                w.u8(K_CREDIT);
                w.u32(*credits);
            }
        }
    }

    /// Parses a header, returning the message and the header length
    /// (payload, if any, starts there).
    pub fn decode(buf: &[u8]) -> Option<(CtrlMsg, usize)> {
        let mut r = R(buf, 0);
        let msg = match r.u8()? {
            K_EAGER => CtrlMsg::EagerData {
                tag: r.u32()?,
                seq: r.u64()?,
                size: r.u64()?,
            },
            K_START => CtrlMsg::RndvStart {
                tag: r.u32()?,
                seq: r.u64()?,
                size: r.u64()?,
                scheme: r.u8()?,
                nsegs: r.u32()?,
                seg_size: r.u64()?,
                blk_min: r.u64()?,
                blk_median: r.u64()?,
            },
            K_REPLY => {
                let seq = r.u64()?;
                let scheme = r.u8()?;
                let body = match r.u8()? {
                    B_BUFFER => ReplyBody::Buffer {
                        addr: r.u64()?,
                        rkey: r.u32()?,
                    },
                    B_SEGMENTS => {
                        let n = r.u32()? as usize;
                        let mut segs = SegList::new();
                        for _ in 0..n {
                            segs.push((r.u64()?, r.u32()?));
                        }
                        ReplyBody::Segments { segs }
                    }
                    B_MULTIW => {
                        let base = r.u64()?;
                        let tag = TypeTag {
                            index: r.u32()?,
                            version: r.u32()?,
                        };
                        let count = r.u64()?;
                        // Peek the length: u64::MAX means "no layout".
                        let mark = R(r.0, r.1).u64()?;
                        let layout = if mark == u64::MAX {
                            r.u64()?;
                            None
                        } else {
                            Some(FlatLayout::decode(r.bytes()?)?)
                        };
                        let n = r.u32()? as usize;
                        let mut regions = Vec::with_capacity(n);
                        for _ in 0..n {
                            regions.push((r.u64()?, r.u64()?, r.u32()?));
                        }
                        ReplyBody::MultiW {
                            base,
                            tag,
                            count,
                            layout,
                            regions,
                        }
                    }
                    B_READGO => ReplyBody::ReadGo,
                    B_HYBRID => {
                        let base = r.u64()?;
                        let tag = TypeTag {
                            index: r.u32()?,
                            version: r.u32()?,
                        };
                        let count = r.u64()?;
                        let mark = R(r.0, r.1).u64()?;
                        let layout = if mark == u64::MAX {
                            r.u64()?;
                            None
                        } else {
                            Some(FlatLayout::decode(r.bytes()?)?)
                        };
                        let n = r.u32()? as usize;
                        let mut regions = Vec::with_capacity(n);
                        for _ in 0..n {
                            regions.push((r.u64()?, r.u64()?, r.u32()?));
                        }
                        let m = r.u32()? as usize;
                        let mut segs = Vec::with_capacity(m);
                        for _ in 0..m {
                            segs.push((r.u64()?, r.u32()?));
                        }
                        let threshold = r.u64()?;
                        ReplyBody::Hybrid {
                            base,
                            tag,
                            count,
                            layout,
                            regions,
                            segs,
                            threshold,
                        }
                    }
                    _ => return None,
                };
                CtrlMsg::RndvReply { seq, scheme, body }
            }
            K_SEGREADY => CtrlMsg::SegReady {
                seq: r.u64()?,
                k: r.u32()?,
                addr: r.u64()?,
                rkey: r.u32()?,
                len: r.u64()?,
            },
            K_FIN => CtrlMsg::Fin { seq: r.u64()? },
            K_PROBE => CtrlMsg::RndvProbe { seq: r.u64()? },
            K_RESUME => CtrlMsg::RndvResume { seq: r.u64()? },
            K_RESUME_ACK => CtrlMsg::RndvResumeAck {
                seq: r.u64()?,
                from_k: r.u32()?,
                done: r.u8()? != 0,
            },
            K_CREDIT => CtrlMsg::CreditUpdate { credits: r.u32()? },
            _ => return None,
        };
        Some((msg, r.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibdt_datatype::Datatype;

    fn roundtrip(m: CtrlMsg) {
        let enc = m.encode();
        let (dec, used) = CtrlMsg::decode(&enc).unwrap();
        assert_eq!(dec, m);
        assert_eq!(used, enc.len());
    }

    #[test]
    fn eager_roundtrip() {
        roundtrip(CtrlMsg::EagerData {
            tag: 7,
            seq: 123,
            size: 512,
        });
    }

    #[test]
    fn eager_payload_offset() {
        let m = CtrlMsg::EagerData {
            tag: 1,
            seq: 2,
            size: 3,
        };
        let mut enc = m.encode();
        let hdr = enc.len();
        enc.extend_from_slice(&[9, 9, 9]);
        let (_, used) = CtrlMsg::decode(&enc).unwrap();
        assert_eq!(used, hdr);
        assert_eq!(&enc[used..], &[9, 9, 9]);
    }

    #[test]
    fn start_roundtrip() {
        roundtrip(CtrlMsg::RndvStart {
            tag: 99,
            seq: 1,
            size: 1 << 20,
            scheme: 2,
            nsegs: 8,
            seg_size: 128 * 1024,
            blk_min: 16,
            blk_median: 2048,
        });
    }

    #[test]
    fn reply_buffer_roundtrip() {
        roundtrip(CtrlMsg::RndvReply {
            seq: 5,
            scheme: 0,
            body: ReplyBody::Buffer {
                addr: 0xABCD,
                rkey: 42,
            },
        });
    }

    #[test]
    fn reply_segments_roundtrip() {
        roundtrip(CtrlMsg::RndvReply {
            seq: 6,
            scheme: 1,
            body: ReplyBody::Segments {
                segs: vec![(0x1000, 1), (0x2000, 2), (0x3000, 3)].into(),
            },
        });
    }

    #[test]
    fn reply_multiw_with_layout() {
        let t = Datatype::vector(4, 2, 8, &Datatype::int()).unwrap();
        roundtrip(CtrlMsg::RndvReply {
            seq: 9,
            scheme: 4,
            body: ReplyBody::MultiW {
                base: 0x40000,
                tag: TypeTag {
                    index: 3,
                    version: 2,
                },
                count: 5,
                layout: Some(t.flat().as_ref().clone()),
                regions: vec![(0x40000, 4096, 77)],
            },
        });
    }

    #[test]
    fn reply_multiw_cached_layout() {
        roundtrip(CtrlMsg::RndvReply {
            seq: 9,
            scheme: 4,
            body: ReplyBody::MultiW {
                base: 0x40000,
                tag: TypeTag {
                    index: 3,
                    version: 2,
                },
                count: 1,
                layout: None,
                regions: vec![(0x40000, 4096, 77), (0x80000, 64, 78)],
            },
        });
    }

    #[test]
    fn readgo_and_segready_and_fin() {
        roundtrip(CtrlMsg::RndvReply {
            seq: 1,
            scheme: 3,
            body: ReplyBody::ReadGo,
        });
        roundtrip(CtrlMsg::SegReady {
            seq: 2,
            k: 4,
            addr: 0x99,
            rkey: 1,
            len: 65536,
        });
        roundtrip(CtrlMsg::Fin { seq: 3 });
        roundtrip(CtrlMsg::RndvProbe { seq: 77 });
        roundtrip(CtrlMsg::RndvResume { seq: 78 });
        roundtrip(CtrlMsg::RndvResumeAck {
            seq: 79,
            from_k: 3,
            done: false,
        });
        roundtrip(CtrlMsg::RndvResumeAck {
            seq: 80,
            from_k: 0,
            done: true,
        });
    }

    #[test]
    fn reply_hybrid_roundtrip() {
        let t = Datatype::vector(4, 2, 8, &Datatype::int()).unwrap();
        roundtrip(CtrlMsg::RndvReply {
            seq: 11,
            scheme: 6,
            body: ReplyBody::Hybrid {
                base: 0x9000,
                tag: TypeTag {
                    index: 1,
                    version: 3,
                },
                count: 2,
                layout: Some(t.flat().as_ref().clone()),
                regions: vec![(0x9000, 8192, 5)],
                segs: vec![(0x20000, 9), (0x40000, 9)],
                threshold: 1024,
            },
        });
        roundtrip(CtrlMsg::RndvReply {
            seq: 12,
            scheme: 6,
            body: ReplyBody::Hybrid {
                base: 0x9000,
                tag: TypeTag {
                    index: 1,
                    version: 3,
                },
                count: 2,
                layout: None,
                regions: vec![],
                segs: vec![],
                threshold: 512,
            },
        });
    }

    #[test]
    fn credit_update_roundtrip() {
        roundtrip(CtrlMsg::CreditUpdate { credits: 17 });
    }

    #[test]
    fn credit_update_piggybacks_before_eager() {
        // The flow-control path prepends a grant in front of the real
        // message inside one eager buffer; both decode in sequence.
        let mut buf = CtrlMsg::CreditUpdate { credits: 3 }.encode();
        let eager = CtrlMsg::EagerData {
            tag: 1,
            seq: 2,
            size: 2,
        };
        eager.encode_into(&mut buf);
        buf.extend_from_slice(&[7, 7]);
        let (first, used) = CtrlMsg::decode(&buf).unwrap();
        assert_eq!(first, CtrlMsg::CreditUpdate { credits: 3 });
        let (second, used2) = CtrlMsg::decode(&buf[used..]).unwrap();
        assert_eq!(second, eager);
        assert_eq!(&buf[used + used2..], &[7, 7]);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(CtrlMsg::decode(&[]).is_none());
        assert!(CtrlMsg::decode(&[0xFF, 1, 2]).is_none());
        let enc = CtrlMsg::Fin { seq: 1 }.encode();
        assert!(CtrlMsg::decode(&enc[..enc.len() - 1]).is_none());
    }
}
