//! The simulated cluster: world driver, program interpreter, public API.
//!
//! A [`Cluster`] owns the fabric, every rank's memory and MPI state, and
//! interprets one [`Program`] per rank. [`Cluster::run`] drives the
//! discrete-event engine to quiescence and returns [`RunStats`].

use crate::coll;
use crate::config::MpiConfig;
use crate::error::MpiError;
use crate::progress::{self, ActiveMsgs, Ctx, Ev};
use crate::rank::RankState;
use crate::stats::RunStats;
use ibdt_datatype::Datatype;
use ibdt_ibsim::{
    Cqe, Fabric, FaultPlan, HostConfig, NetConfig, NodeMem, Payload, RecvWr, Sge, SgeList,
    ShmChannel, Transport, TransportConfig,
};
use ibdt_memreg::{AddressSpace, Va};
use ibdt_simcore::engine::{Engine, Scheduler, World};
use ibdt_simcore::time::Time;
use std::collections::VecDeque;

/// Element-wise reduction operators for [`AppOp::CombineBuffers`] and
/// the reduction collectives. Elements are interpreted per the
/// datatype's uniform primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// `dst = src` (internal: seeds an accumulator).
    Replace,
    /// `dst = dst + src` (wrapping for integers).
    Sum,
    /// `dst = max(dst, src)`.
    Max,
}

/// One operation of a rank program.
#[derive(Debug, Clone)]
pub enum AppOp {
    /// Nonblocking send of `count` instances of `ty` at `buf`.
    Isend {
        /// Destination rank.
        peer: u32,
        /// User buffer address (datatype offset 0).
        buf: Va,
        /// Instance count.
        count: u64,
        /// Datatype.
        ty: Datatype,
        /// Tag.
        tag: u32,
    },
    /// Nonblocking receive.
    Irecv {
        /// Source rank.
        peer: u32,
        /// User buffer address.
        buf: Va,
        /// Instance count.
        count: u64,
        /// Datatype.
        ty: Datatype,
        /// Tag.
        tag: u32,
    },
    /// Block until every request issued so far on this rank completed.
    WaitAll,
    /// Spin the CPU for `ns` virtual nanoseconds (models application
    /// compute, or manual pack/unpack in the Fig. 2 `Manual` scheme).
    Compute {
        /// Busy time.
        ns: Time,
    },
    /// Record the current virtual time under `slot` (benchmark timers).
    MarkTime {
        /// Timer slot id.
        slot: u32,
    },
    /// `MPI_Alltoall` with datatypes (expanded to point-to-point ops).
    Alltoall {
        /// Send buffer base (block for rank 0).
        sbuf: Va,
        /// Receive buffer base.
        rbuf: Va,
        /// Instances of `sty` sent to each rank.
        count: u64,
        /// Send datatype.
        sty: Datatype,
        /// Receive datatype.
        rty: Datatype,
    },
    /// `MPI_Bcast` from `root` (binomial tree).
    Bcast {
        /// Root rank.
        root: u32,
        /// Buffer.
        buf: Va,
        /// Instance count.
        count: u64,
        /// Datatype.
        ty: Datatype,
    },
    /// `MPI_Allgather` (ring).
    Allgather {
        /// Send buffer (this rank's contribution).
        sbuf: Va,
        /// Receive buffer (all contributions, by rank).
        rbuf: Va,
        /// Instances per rank.
        count: u64,
        /// Datatype (same both sides).
        ty: Datatype,
    },
    /// `MPI_Barrier` (dissemination).
    Barrier,
    /// §6's `MPI_Info` analogue: tell the library this buffer will be
    /// used for many operations, so it is registered (and cached) ahead
    /// of the first communication.
    HintReusedBuffer {
        /// Buffer start.
        addr: Va,
        /// Buffer length.
        len: u64,
    },
    /// `MPI_Gather` to `root` (flat algorithm).
    Gather {
        /// Root rank.
        root: u32,
        /// This rank's contribution.
        sbuf: Va,
        /// Root's receive buffer (ignored elsewhere).
        rbuf: Va,
        /// Instances per rank.
        count: u64,
        /// Datatype.
        ty: Datatype,
    },
    /// `MPI_Scatter` from `root`.
    Scatter {
        /// Root rank.
        root: u32,
        /// Root's send buffer (ignored elsewhere).
        sbuf: Va,
        /// This rank's receive buffer.
        rbuf: Va,
        /// Instances per rank.
        count: u64,
        /// Datatype.
        ty: Datatype,
    },
    /// `MPI_Reduce` to `root` (binomial tree). `scratch` must hold one
    /// message and be distinct from `sbuf`/`rbuf`; `sbuf` is clobbered
    /// on intermediate ranks.
    Reduce {
        /// Root rank.
        root: u32,
        /// Contribution (accumulator on non-root ranks).
        sbuf: Va,
        /// Result buffer on the root.
        rbuf: Va,
        /// Scratch buffer for incoming partial results.
        scratch: Va,
        /// Instance count.
        count: u64,
        /// Datatype (uniform primitive).
        ty: Datatype,
        /// Reduction operator.
        op: ReduceOp,
    },
    /// `MPI_Allreduce` (reduce to 0 + bcast).
    Allreduce {
        /// Contribution.
        sbuf: Va,
        /// Result buffer (valid on every rank afterwards).
        rbuf: Va,
        /// Scratch buffer.
        scratch: Va,
        /// Instance count.
        count: u64,
        /// Datatype (uniform primitive).
        ty: Datatype,
        /// Reduction operator.
        op: ReduceOp,
    },
    /// Element-wise combine of two local buffers (the reduction
    /// building block): `dst[i] = op(dst[i], src[i])` over the
    /// datatype's elements.
    CombineBuffers {
        /// Accumulator buffer.
        dst: Va,
        /// Incoming buffer.
        src: Va,
        /// Instance count.
        count: u64,
        /// Datatype (uniform primitive).
        ty: Datatype,
        /// Operator.
        op: ReduceOp,
    },
    /// `MPI_Win_create` (collective): exposes `[addr, addr+len)` for
    /// one-sided access under window id `win`. Registers the region and
    /// barriers, after which window information is globally visible.
    WinCreate {
        /// Window id (caller-chosen, same on all ranks).
        win: u32,
        /// Exposed region start.
        addr: Va,
        /// Exposed region length.
        len: u64,
    },
    /// `MPI_Put` with derived datatypes on both sides (one-sided
    /// Multi-W; completed by the next fence).
    Put {
        /// Window id.
        win: u32,
        /// Target rank.
        target: u32,
        /// Origin buffer.
        obuf: Va,
        /// Origin instance count.
        ocount: u64,
        /// Origin datatype.
        oty: Datatype,
        /// Byte offset of the target layout inside the window.
        toff: u64,
        /// Target instance count.
        tcount: u64,
        /// Target datatype (an origin-side handle, as in MPI).
        tty: Datatype,
    },
    /// `MPI_Get` (one-sided reads; completed by the next fence).
    Get {
        /// Window id.
        win: u32,
        /// Target rank.
        target: u32,
        /// Origin buffer.
        obuf: Va,
        /// Origin instance count.
        ocount: u64,
        /// Origin datatype.
        oty: Datatype,
        /// Byte offset of the target layout inside the window.
        toff: u64,
        /// Target instance count.
        tcount: u64,
        /// Target datatype.
        tty: Datatype,
    },
    /// `MPI_Win_fence`: completes this rank's outstanding RMA, releases
    /// origin registrations, then barriers.
    Fence,
}

/// A rank's program.
pub type Program = Vec<AppOp>;

/// Cluster construction parameters.
///
/// `PartialEq` keys the retired-cluster pool: [`Cluster::new`] reuses
/// a [recycled](Cluster::recycle) cluster only when its spec equals
/// the requested one field for field.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Number of ranks.
    pub nprocs: u32,
    /// Network cost model.
    pub net: NetConfig,
    /// Host cost model.
    pub host: HostConfig,
    /// MPI configuration.
    pub mpi: MpiConfig,
    /// Per-rank address space capacity in bytes.
    pub mem_capacity: u64,
    /// Seeded fault-injection plan for the fabric (inert by default).
    pub faults: FaultPlan,
    /// Which transport backend moves the bytes (IB fabric by default;
    /// selecting the shared-memory channel leaves every committed IB
    /// result untouched).
    pub transport: TransportConfig,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        Self {
            nprocs: 2,
            net: NetConfig::default(),
            host: HostConfig::default(),
            mpi: MpiConfig::default(),
            mem_capacity: 256 << 20,
            faults: FaultPlan::none(),
            transport: TransportConfig::Ib,
        }
    }
}

/// The cluster's byte-moving backend. An enum rather than a boxed
/// trait object so the backend lives inline in the `Cluster` (no
/// allocation, pooling-friendly) while every caller still drives it
/// through `&mut dyn Transport`.
#[derive(Debug)]
// The size skew between the variants is the point: boxing the fabric
// would reintroduce the allocation this enum exists to avoid.
#[allow(clippy::large_enum_variant)]
enum Backend {
    /// The InfiniBand fabric.
    Ib(Fabric),
    /// The shared-memory channel.
    Shm(ShmChannel),
}

impl Backend {
    fn t(&self) -> &dyn Transport {
        match self {
            Backend::Ib(f) => f,
            Backend::Shm(c) => c,
        }
    }

    fn t_mut(&mut self) -> &mut dyn Transport {
        match self {
            Backend::Ib(f) => f,
            Backend::Shm(c) => c,
        }
    }
}

thread_local! {
    /// Recycled simulation engines: [`Cluster::run`] returns its
    /// engine here (reset, capacity retained) and the next run takes
    /// it back, so a parameter sweep stops re-growing the event-wheel
    /// arena after its first point. A reset engine is bit-identical in
    /// behaviour to a fresh one (see [`Engine::reset`]).
    static ENGINE_SPARE: std::cell::RefCell<Vec<Engine<Cluster>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Engine spare-list bound (an idle engine holds a few tens of KiB of
/// arena capacity).
const ENGINE_SPARE_CAP: usize = 8;

fn take_engine() -> Engine<Cluster> {
    ENGINE_SPARE
        .try_with(|s| s.borrow_mut().pop())
        .ok()
        .flatten()
        .unwrap_or_default()
}

fn recycle_engine(mut e: Engine<Cluster>) {
    e.reset();
    let _ = ENGINE_SPARE.try_with(|s| {
        let mut s = s.borrow_mut();
        if s.len() < ENGINE_SPARE_CAP {
            s.push(e);
        }
    });
}

#[derive(Debug)]
enum Blocked {
    No,
    WaitAll,
    Compute {
        until: Time,
    },
    /// Waiting for outstanding one-sided operations to complete.
    Fence,
}

#[derive(Debug)]
struct Interp {
    prog: VecDeque<AppOp>,
    blocked: Blocked,
    finished_at: Option<Time>,
}

/// The simulated MPI cluster.
pub struct Cluster {
    spec: ClusterSpec,
    fabric: Backend,
    mems: Vec<NodeMem>,
    ranks: Vec<RankState>,
    active: Vec<ActiveMsgs>,
    interp: Vec<Interp>,
    marks: Vec<Vec<(u32, Time)>>,
    /// One-sided windows: `(win id, rank)` -> entry.
    windows: std::collections::HashMap<(u32, u32), crate::rma::WinEntry>,
    ran: bool,
    /// Events handled, counted only in audit mode to decimate the
    /// invariant checks.
    events_handled: u64,
    /// Reused completion buffer handed to [`Fabric::handle`] each NIC
    /// event, so steady-state event handling allocates nothing.
    cqe_buf: Vec<(u32, Cqe)>,
    /// Thread-local pool counter baselines captured at construction,
    /// so [`RunStats`] reports this cluster's pool activity as deltas.
    payload_pool_base: (u64, u64),
    space_pool_base: (u64, u64, u64),
}

thread_local! {
    /// Retired clusters waiting for an identical spec to come around
    /// again. A parameter sweep varies message geometry but rebuilds
    /// the same cluster shape per point; recycling the whole `Cluster`
    /// (fabric queues, address spaces, rank state, caches) removes the
    /// per-point construction allocations that remain after the
    /// engine/page/payload pools. A reset cluster is bit-identical in
    /// behaviour to a fresh one built on a warm thread (see
    /// [`Cluster::reset`]).
    static CLUSTER_SPARE: std::cell::RefCell<Vec<Cluster>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Cluster spare-list bound. Sweeps alternate between at most a couple
/// of shapes (e.g. cache-on/cache-off), so a small pool suffices; an
/// idle cluster pins its address-space backing (MiBs), so the cap stays
/// deliberately low.
const CLUSTER_SPARE_CAP: usize = 4;

impl Cluster {
    /// Builds a cluster: memories, MPI state, eager receive rings.
    ///
    /// If a [recycled](Cluster::recycle) cluster with an equal spec is
    /// available on this thread it is reset and returned instead,
    /// skipping construction entirely.
    pub fn new(spec: ClusterSpec) -> Self {
        if let Some(mut c) = CLUSTER_SPARE
            .try_with(|s| {
                let mut s = s.borrow_mut();
                s.iter()
                    .position(|c| c.spec == spec)
                    .map(|i| s.swap_remove(i))
            })
            .ok()
            .flatten()
        {
            c.reset();
            return c;
        }
        // Captured before the address spaces are built so the spaces'
        // own pool hits/misses are attributed to this cluster.
        let payload_pool_base = Payload::pool_stats();
        let space_pool_base = AddressSpace::pool_stats();
        if let Err(e) = spec.host.validate() {
            panic!("invalid host configuration: {e}");
        }
        let n = spec.nprocs as usize;
        let mut fabric = match &spec.transport {
            TransportConfig::Ib => {
                let mut f = Fabric::new(n, spec.net.clone());
                f.set_fault_plan(spec.faults.clone());
                Backend::Ib(f)
            }
            TransportConfig::Shm(c) => {
                if let Err(e) = c.validate() {
                    panic!("invalid shm configuration: {e}");
                }
                assert!(
                    spec.faults.is_inert(),
                    "fault injection requires the IB transport"
                );
                Backend::Shm(ShmChannel::new(n, *c))
            }
        };
        let mut mems: Vec<NodeMem> = (0..n).map(|_| NodeMem::new(spec.mem_capacity)).collect();
        let mut ranks = Vec::with_capacity(n);
        for r in 0..n as u32 {
            ranks.push(RankState::new(
                r,
                spec.nprocs,
                &spec.mpi,
                &mut mems[r as usize],
            ));
        }
        // Pre-post the eager receive rings (§3.1's pre-posted internal
        // buffers).
        let mut noop = |_t: Time, _e: ibdt_ibsim::NicEvent| {};
        for r in 0..n as u32 {
            for peer in 0..spec.nprocs {
                if peer == r {
                    continue;
                }
                for i in 0..spec.mpi.eager_bufs_per_peer {
                    let va = ranks[r as usize].recv_buf_addr(
                        &spec.mpi,
                        ranks[r as usize].eager_region,
                        peer,
                        i,
                    );
                    let lkey = ranks[r as usize].eager_lkey;
                    fabric
                        .t_mut()
                        .post_recv(
                            0,
                            r,
                            peer,
                            RecvWr {
                                wr_id: va,
                                sges: SgeList::of(Sge {
                                    addr: va,
                                    len: spec.mpi.eager_buf_size,
                                    lkey,
                                }),
                            },
                            &mems,
                            &mut noop,
                        )
                        .expect("initial eager ring post");
                }
            }
        }
        Self {
            active: (0..n).map(|_| ActiveMsgs::new(n)).collect(),
            interp: Vec::new(),
            marks: vec![Vec::new(); n],
            spec,
            fabric,
            mems,
            ranks,
            windows: std::collections::HashMap::new(),
            ran: false,
            events_handled: 0,
            cqe_buf: Vec::new(),
            payload_pool_base,
            space_pool_base,
        }
    }

    /// Number of ranks.
    pub fn nprocs(&self) -> u32 {
        self.spec.nprocs
    }

    /// Allocates `len` bytes in `rank`'s address space.
    pub fn alloc(&mut self, rank: u32, len: u64, align: u64) -> Va {
        self.mems[rank as usize]
            .space
            .alloc(len, align)
            .expect("address space exhausted")
    }

    /// Allocates `len` bytes of *device-resident* memory in `rank`'s
    /// address space: the range is marked in the rank's
    /// [`TierMap`](ibdt_memreg::TierMap), so pack/unpack touching it
    /// routes through the DMA cost model (staged bounce pipeline for
    /// segmented schemes, one synchronous gather/scatter DMA for eager
    /// paths). Bytes still live in the same flat space — correctness
    /// checking is tier-blind.
    pub fn alloc_device(&mut self, rank: u32, len: u64, align: u64) -> Va {
        // Allocating device memory implies the tier exists; flipping the
        // flag here (rather than requiring callers to pre-enable it)
        // means a cluster with no device allocations models exactly the
        // host-only cost model regardless of configuration.
        self.spec.host.device.enabled = true;
        if let Err(e) = self.spec.host.validate() {
            panic!("invalid host configuration: {e}");
        }
        let va = self.alloc(rank, len, align);
        self.mems[rank as usize].tiers.mark_device(va, len);
        va
    }

    /// Writes bytes into a rank's memory (test/bench setup).
    pub fn write_mem(&mut self, rank: u32, addr: Va, data: &[u8]) {
        self.mems[rank as usize]
            .space
            .write(addr, data)
            .expect("write within capacity");
    }

    /// Reads bytes from a rank's memory (verification).
    pub fn read_mem(&self, rank: u32, addr: Va, len: u64) -> Vec<u8> {
        self.mems[rank as usize]
            .space
            .read(addr, len)
            .expect("read within capacity")
    }

    /// Fills a range with a deterministic byte pattern keyed by `seed`.
    pub fn fill_pattern(&mut self, rank: u32, addr: Va, len: u64, seed: u64) {
        let data: Vec<u8> = (0..len)
            .map(|i| {
                ((i.wrapping_mul(2654435761)
                    .wrapping_add(seed.wrapping_mul(977)))
                    >> 3) as u8
            })
            .collect();
        self.write_mem(rank, addr, &data);
    }

    /// Runs one program per rank to quiescence; returns statistics.
    ///
    /// A `Cluster` is single-shot: the virtual clock, resource schedules
    /// and counters all start at zero, so reuse would conflate runs.
    pub fn run(&mut self, programs: Vec<Program>) -> RunStats {
        assert!(
            !self.ran,
            "Cluster::run is single-shot; build a new cluster"
        );
        assert_eq!(
            programs.len(),
            self.spec.nprocs as usize,
            "one program per rank"
        );
        self.ran = true;
        // Extend into the (possibly reset-and-retained) interp vector
        // rather than reassigning, so a recycled cluster's run keeps
        // its capacity.
        self.interp.clear();
        self.interp.extend(programs.into_iter().map(|p| Interp {
            prog: p.into(),
            blocked: Blocked::No,
            finished_at: None,
        }));
        let mut engine: Engine<Cluster> = take_engine();
        for r in 0..self.spec.nprocs {
            engine.seed(0, Ev::Resume { rank: r });
        }
        // Realize the fault plan's scheduled link failures as engine
        // events (port down / port up at their virtual instants).
        for (t, e) in self.fabric.t().fault_events() {
            engine.seed(t, Ev::Nic(e));
        }
        // Budget: generous runaway guard proportional to work. With
        // fault injection active the guard doubles as a watchdog — an
        // exhausted budget becomes a typed `Incomplete` error on every
        // unfinished rank instead of a panic, so a chaos plan that
        // wedges the protocol still terminates with a diagnosis.
        let faulty = self.fabric.t().faults_active();
        let (finish, exhausted) = engine.run_bounded(self, 200_000_000);
        assert!(
            !exhausted || faulty,
            "simulation exceeded its event budget at t={finish} without fault \
             injection — protocol livelock"
        );
        // Sanity: every program must have finished (a hang here is a
        // protocol deadlock) — unless an injected fault surfaced as a
        // typed error or tripped the watchdog, in which case an
        // incomplete program is the expected degraded outcome and is
        // recorded as such.
        // A node still down at quiescence crash-stopped for good: its
        // own program cannot have finished, and peers that never
        // exchanged traffic with it after the crash may have observed
        // nothing — the crash itself is the error condition.
        let crashed = (0..self.spec.nprocs).any(|r| self.fabric.t().node_down(r));
        let had_errors = exhausted
            || crashed
            || (0..self.spec.nprocs as usize).any(|r| {
                !self.ranks[r].errors.is_empty()
                    || self.ranks[r].reqs.iter().any(|q| q.error.is_some())
            });
        for r in 0..self.spec.nprocs as usize {
            let it = &self.interp[r];
            let unfinished = !it.prog.is_empty() || it.finished_at.is_none();
            if had_errors {
                if unfinished || !self.active[r].is_idle() {
                    self.ranks[r].errors.push(MpiError::Incomplete);
                }
                continue;
            }
            assert!(
                !unfinished,
                "rank {r} deadlocked with {} ops left (blocked: {:?})",
                it.prog.len(),
                it.blocked
            );
            assert!(
                self.active[r].is_idle(),
                "rank {r} finished with in-flight rendezvous state"
            );
        }
        if self.spec.mpi.audit {
            // Strict (quiescent) laws need a clean run with nothing
            // unmatched; the base conservation laws hold regardless.
            let clean = !had_errors
                && (0..self.spec.nprocs as usize).all(|r| self.ranks[r].unexpected.is_empty());
            self.audit_invariants(clean);
        }
        let events_scheduled = engine.events_scheduled();
        recycle_engine(engine);
        self.collect_stats(finish, events_scheduled)
    }

    /// Returns a finished cluster to the thread-local spare pool so a
    /// later [`Cluster::new`] with an equal spec can reuse it instead
    /// of rebuilding. Clusters with an active fault plan are dropped
    /// instead: fault-injection state (the chaos RNG mid-stream) is
    /// not recycled, so chaos runs stay single-shot.
    pub fn recycle(self) {
        if !self.spec.faults.is_inert() {
            return;
        }
        let _ = CLUSTER_SPARE.try_with(|s| {
            let mut s = s.borrow_mut();
            // Evict the oldest entry rather than refusing when full: a
            // sweep interleaved with other workloads must still find
            // *its* cluster on the next point, so the most recent
            // retiree always lands in the pool.
            if s.len() >= CLUSTER_SPARE_CAP {
                s.remove(0);
            }
            s.push(self);
        });
    }

    /// Restores a retired cluster to its just-constructed state, in
    /// place. The contract is exact: a reset cluster must behave
    /// bit-identically to a fresh `Cluster::new` on a warm thread —
    /// same virtual-time results *and* same `RunStats` down to cache
    /// and pool counters. Every sub-reset below therefore mirrors the
    /// corresponding construction step (eager ring layout, segment
    /// pool carving, pool-counter baselines) rather than merely
    /// clearing state.
    fn reset(&mut self) {
        // Baselines first: construction captures them before the
        // address spaces are built, and `AddressSpace::reset` bumps the
        // same reuse/zeroed counters the drop→pool→new round trip
        // would.
        self.payload_pool_base = Payload::pool_stats();
        self.space_pool_base = AddressSpace::pool_stats();
        match &mut self.fabric {
            Backend::Ib(f) => {
                f.reset();
                f.set_fault_plan(self.spec.faults.clone());
            }
            Backend::Shm(c) => c.reset(),
        }
        for mem in &mut self.mems {
            mem.space.reset();
            mem.regs.reset();
            mem.tiers.clear();
        }
        for r in 0..self.ranks.len() {
            let (rs, mem) = (&mut self.ranks[r], &mut self.mems[r]);
            rs.reset(&self.spec.mpi, mem);
        }
        // Re-post the eager receive rings exactly as construction does;
        // the reset address spaces hand back the same deterministic
        // layout, so ring addresses and keys match a fresh cluster's.
        let mut noop = |_t: Time, _e: ibdt_ibsim::NicEvent| {};
        for r in 0..self.spec.nprocs {
            for peer in 0..self.spec.nprocs {
                if peer == r {
                    continue;
                }
                for i in 0..self.spec.mpi.eager_bufs_per_peer {
                    let va = self.ranks[r as usize].recv_buf_addr(
                        &self.spec.mpi,
                        self.ranks[r as usize].eager_region,
                        peer,
                        i,
                    );
                    let lkey = self.ranks[r as usize].eager_lkey;
                    self.fabric
                        .t_mut()
                        .post_recv(
                            0,
                            r,
                            peer,
                            RecvWr {
                                wr_id: va,
                                sges: SgeList::of(Sge {
                                    addr: va,
                                    len: self.spec.mpi.eager_buf_size,
                                    lkey,
                                }),
                            },
                            &self.mems,
                            &mut noop,
                        )
                        .expect("eager ring repost on reset");
                }
            }
        }
        for a in &mut self.active {
            a.reset();
        }
        for m in &mut self.marks {
            m.clear();
        }
        self.interp.clear();
        self.windows.clear();
        self.ran = false;
        self.events_handled = 0;
        self.cqe_buf.clear();
    }

    /// Debug-mode invariant auditor (`MpiConfig::audit`): asserts the
    /// flow-control conservation laws over every ordered rank pair.
    /// With sender `a` and receiver `b` (all counters per peer):
    ///
    /// - credits never negative and never exceed the configured pool:
    ///   `held(a→b) + sent(a→b) == eager_credits + received(a→b)`;
    /// - every matched message is granted back or still owed:
    ///   `granted(b←a) + owed(b←a) == matched(b←a)`;
    /// - the monotone chain `received(a→b) ≤ granted(b←a)` and
    ///   `matched(b←a) ≤ sent(a→b)` (grants/messages in flight);
    /// - the payload-bearing unexpected occupancy counter agrees with a
    ///   queue scan.
    ///
    /// At clean quiescence additionally `sent(a→b) == matched(b←a)` —
    /// no message was lost or duplicated across any degradation
    /// transition. Panics on violation; wired into the chaos and incast
    /// soak suites, not production runs.
    ///
    /// **Crash-stop failures.** When a peer dies, the quiescent law
    /// legitimately breaks: credits held by the dead rank never return
    /// and messages sent to it are never matched, so `sent > matched`
    /// is the *correct* end state — which is why the quiescent check
    /// is gated on a clean (error-free, crash-free) run. The base
    /// conservation laws above survive a crash untouched: each one
    /// reads either a single rank's own counters (which freeze at the
    /// instant its host halts) or a monotone cross-pair inequality
    /// (`received ≤ granted`, `matched ≤ sent`) that a frozen side can
    /// only leave slack in, never violate. The crash-stop chaos suite
    /// runs with the auditor on to hold exactly this line.
    fn audit_invariants(&self, quiescent: bool) {
        let n = self.spec.nprocs as usize;
        let pool = u64::from(self.spec.mpi.eager_credits);
        for a in 0..n {
            let ra = &self.ranks[a];
            let payload_entries = ra
                .unexpected
                .iter()
                .filter(|u| {
                    matches!(u, crate::rank::Unexpected::Eager { data, .. } if !data.is_empty())
                })
                .count();
            assert_eq!(
                ra.unexpected_eager, payload_entries,
                "rank {a}: unexpected-queue occupancy counter out of sync"
            );
            for b in 0..n {
                if a == b {
                    continue;
                }
                let rb = &self.ranks[b];
                assert_eq!(
                    u64::from(ra.fc[b].credits) + ra.fc[b].sent,
                    pool + ra.fc[b].received,
                    "rank {a}→{b}: credit conservation violated"
                );
                assert!(
                    u64::from(ra.fc[b].credits) <= pool,
                    "rank {a}→{b}: credits exceed the configured pool"
                );
                assert_eq!(
                    rb.fc[a].granted + u64::from(rb.fc[a].owed),
                    rb.fc[a].matched,
                    "rank {b}←{a}: matched messages neither granted nor owed"
                );
                assert!(
                    ra.fc[b].received <= rb.fc[a].granted,
                    "rank {a}→{b}: more credits received than ever granted"
                );
                assert!(
                    rb.fc[a].matched <= ra.fc[b].sent,
                    "rank {b}←{a}: more messages matched than credits consumed"
                );
                if quiescent {
                    assert_eq!(
                        ra.fc[b].sent, rb.fc[a].matched,
                        "rank {a}→{b}: eager message lost or duplicated \
                         (sent ≠ matched at clean quiescence)"
                    );
                }
            }
        }
    }

    fn collect_stats(&self, finish: Time, events_scheduled: u64) -> RunStats {
        let n = self.spec.nprocs as usize;
        let fstats = self.fabric.t().stats();
        let (pa, pr) = Payload::pool_stats();
        let (sa, sr, sz) = AddressSpace::pool_stats();
        RunStats {
            finish_ns: finish,
            rank_finish_ns: self
                .interp
                .iter()
                .map(|i| i.finished_at.unwrap_or(finish))
                .collect(),
            counters: self.ranks.iter().map(|r| r.counters).collect(),
            cpu_busy_ns: self.ranks.iter().map(|r| r.cpu.total_busy()).collect(),
            reg_ops: (0..n).map(|r| self.mems[r].regs.op_counts()).collect(),
            pindown: self.ranks.iter().map(|r| r.pindown.stats()).collect(),
            plan_cache: self.ranks.iter().map(|r| r.plans.stats()).collect(),
            scratch_pool: self
                .ranks
                .iter()
                .map(|r| (r.scratch.reuses(), r.scratch.allocs()))
                .collect(),
            wqes: fstats.wqes,
            bytes_on_wire: fstats.bytes_on_wire,
            rnr_events: fstats.rnr_events,
            drops_injected: fstats.drops_injected,
            corruptions_injected: fstats.corruptions_injected,
            delays_injected: fstats.delays_injected,
            stalls_injected: fstats.stalls_injected,
            retransmits: fstats.retransmits,
            rnr_backoff_retries: fstats.rnr_backoff_retries,
            qp_errors: fstats.qp_errors,
            flushed_wqes: fstats.flushed_wqes,
            migrations: fstats.migrations,
            cq_overflows: fstats.cq_overflows,
            recv_low_water: fstats.recv_low_water,
            node_crashes: fstats.node_crashes,
            cq_peak: (0..n).map(|r| self.fabric.t().cq_peak(r as u32)).collect(),
            fabric_per_rank: self.fabric.t().node_stats().to_vec(),
            errors: self
                .ranks
                .iter()
                .map(|rs| {
                    rs.errors
                        .iter()
                        .copied()
                        .chain(rs.reqs.iter().filter_map(|q| q.error))
                        .collect()
                })
                .collect(),
            marks: self.marks.clone(),
            pack_wire_overlap_ns: (0..n)
                .map(|r| {
                    let cpu_trace = self.ranks[r].cpu.trace().expect("cpu traced");
                    let tx_trace = self.fabric.t().tx_engine(r as u32).trace().expect("tx traced");
                    cpu_trace.overlap_with("pack", tx_trace, "wire")
                })
                .collect(),
            bytes_copied: self
                .ranks
                .iter()
                .map(|r| r.counters.bytes_packed + r.counters.bytes_unpacked)
                .sum(),
            payload_pool: (
                pa.saturating_sub(self.payload_pool_base.0),
                pr.saturating_sub(self.payload_pool_base.1),
            ),
            space_pool: (
                sa.saturating_sub(self.space_pool_base.0),
                sr.saturating_sub(self.space_pool_base.1),
                sz.saturating_sub(self.space_pool_base.2),
            ),
            events_scheduled,
            plan_cache_canonical_hits: self
                .ranks
                .iter()
                .map(|r| r.plans.canon_stats().0)
                .sum(),
            canonicalized_types: self.ranks.iter().map(|r| r.plans.canon_stats().1).sum(),
            staging_chunks: self.ranks.iter().map(|r| r.counters.staging_chunks).sum(),
            shm_bounce_chunks: fstats.shm_bounce_chunks,
            shm_cma_ops: fstats.shm_cma_ops,
        }
    }

    /// Post-run access to a rank's CPU span trace (pack/unpack/post/...
    /// intervals) for overlap analysis and timeline rendering.
    pub fn cpu_trace(&self, rank: u32) -> &ibdt_simcore::trace::Trace {
        self.ranks[rank as usize].cpu.trace().expect("cpu traced")
    }

    /// Post-run access to a rank's NIC transmit-engine span trace.
    pub fn tx_trace(&self, rank: u32) -> &ibdt_simcore::trace::Trace {
        self.fabric.t().tx_engine(rank).trace().expect("tx traced")
    }

    /// Post-run access to a rank's pack/unpack pool statistics:
    /// `(pack acquires, pack exhaustions, unpack acquires, unpack
    /// exhaustions)`.
    pub fn pool_stats(&self, rank: u32) -> (u64, u64, u64, u64) {
        let r = &self.ranks[rank as usize];
        (
            r.pack_pool.acquires(),
            r.pack_pool.exhaustions(),
            r.unpack_pool.acquires(),
            r.unpack_pool.exhaustions(),
        )
    }

    /// Element-wise reduction of two local buffers over a datatype's
    /// elements. Functional immediately; host time charged on the CPU.
    #[allow(clippy::too_many_arguments)]
    fn combine_buffers(
        &mut self,
        sched: &mut Scheduler<'_, Ev>,
        rank: u32,
        dst: Va,
        src: Va,
        count: u64,
        ty: &Datatype,
        op: ReduceOp,
    ) {
        use ibdt_datatype::Segment;
        let r = rank as usize;
        let prim = ty
            .uniform_primitive()
            .expect("reductions require a uniform-primitive datatype");
        let seg = Segment::new(ty, count);
        let n = seg.total_bytes();
        let space = &self.mems[r].space;
        let cap = space.capacity();
        let mem = space.slice(0, cap).expect("whole space view");
        let mut a = vec![0u8; n as usize];
        let mut b = vec![0u8; n as usize];
        seg.pack(0, n, mem, dst as usize, &mut a)
            .expect("dst covers the datatype");
        seg.pack(0, n, mem, src as usize, &mut b)
            .expect("src covers the datatype");
        let w = prim.size() as usize;
        let mut failed = None;
        for (da, db) in a.chunks_exact_mut(w).zip(b.chunks_exact(w)) {
            if let Err(e) = combine_element(da, db, op, prim) {
                failed = Some(e);
                break;
            }
        }
        if let Some(e) = failed {
            // A malformed operand or an unimplemented (operator,
            // primitive) combination fails the reduction typed instead
            // of tearing the simulation down; the accumulator is left
            // untouched.
            self.ranks[r].errors.push(e);
            return;
        }
        // Narrow the mutable view to the blocks' envelope so dirty
        // tracking (backing-store recycling) stays proportional to the
        // destination buffer, not the whole space.
        let (env_lo, env_hi) = seg
            .blocks()
            .iter()
            .fold((0i128, 0i128), |(lo, hi), &(o, l)| {
                (lo.min(o as i128), hi.max(o as i128 + l as i128))
            });
        let space = &mut self.mems[r].space;
        let vstart = ((dst as i128 + env_lo).clamp(0, cap as i128) as u64).min(dst.min(cap));
        let vend = (dst as i128 + env_hi).clamp(vstart as i128, cap as i128) as u64;
        let mem = space
            .slice_mut(vstart, vend - vstart)
            .expect("envelope view in range");
        seg.unpack(0, n, &a, mem, (dst - vstart) as usize)
            .expect("dst covers the datatype");
        // Cost: read both operands, write one, ~1 ns/element ALU.
        let cost =
            ibdt_simcore::time::transfer_ns(3 * n, self.spec.host.copy_bw_bps) + n / prim.size();
        self.ranks[r]
            .cpu
            .reserve_labeled(sched.now(), cost, "reduce");
    }

    /// Fence epilogue: release origin registrations and barrier.
    fn finish_fence(&mut self, sched: &mut Scheduler<'_, Ev>, rank: u32) {
        let r = rank as usize;
        let regs: Vec<_> = self.ranks[r].rma_regs.drain(..).collect();
        let mut cost = 0;
        for reg in regs {
            cost += self.ranks[r]
                .pindown
                .release(&mut self.mems[r].regs, &self.spec.host.reg, reg.lkey)
                .expect("fence releases acquired registrations");
        }
        if cost > 0 {
            self.ranks[r]
                .cpu
                .reserve_labeled(sched.now(), cost, "dereg");
        }
        let ops = coll::barrier(rank, self.spec.nprocs);
        splice_front(&mut self.interp[r].prog, ops);
    }

    fn interp_advance(&mut self, sched: &mut Scheduler<'_, Ev>, rank: u32) {
        let r = rank as usize;
        loop {
            match self.interp[r].blocked {
                Blocked::WaitAll => {
                    if !self.ranks[r].all_reqs_done() {
                        return;
                    }
                    self.interp[r].blocked = Blocked::No;
                }
                Blocked::Compute { until } => {
                    if sched.now() < until {
                        return;
                    }
                    self.interp[r].blocked = Blocked::No;
                }
                Blocked::Fence => {
                    if self.ranks[r].rma_outstanding > 0 {
                        return;
                    }
                    self.interp[r].blocked = Blocked::No;
                    self.finish_fence(sched, rank);
                }
                Blocked::No => {}
            }
            let Some(op) = self.interp[r].prog.pop_front() else {
                if self.ranks[r].all_reqs_done() && self.interp[r].finished_at.is_none() {
                    self.interp[r].finished_at = Some(sched.now());
                }
                return;
            };
            match op {
                AppOp::Isend {
                    peer,
                    buf,
                    count,
                    ty,
                    tag,
                } => {
                    let Cluster {
                        fabric,
                        mems,
                        ranks,
                        active,
                        spec,
                        ..
                    } = self;
                    let mut ctx = Ctx {
                        fabric: fabric.t_mut(),
                        mems,
                        net: &spec.net,
                        host: &spec.host,
                        cfg: &spec.mpi,
                        sched,
                    };
                    progress::isend(
                        &mut ranks[r],
                        &mut active[r],
                        &mut ctx,
                        peer,
                        buf,
                        count,
                        &ty,
                        tag,
                    );
                }
                AppOp::Irecv {
                    peer,
                    buf,
                    count,
                    ty,
                    tag,
                } => {
                    let Cluster {
                        fabric,
                        mems,
                        ranks,
                        active,
                        spec,
                        ..
                    } = self;
                    let mut ctx = Ctx {
                        fabric: fabric.t_mut(),
                        mems,
                        net: &spec.net,
                        host: &spec.host,
                        cfg: &spec.mpi,
                        sched,
                    };
                    progress::irecv(
                        &mut ranks[r],
                        &mut active[r],
                        &mut ctx,
                        peer,
                        buf,
                        count,
                        &ty,
                        tag,
                    );
                }
                AppOp::WaitAll => {
                    self.interp[r].blocked = Blocked::WaitAll;
                }
                AppOp::Compute { ns } => {
                    let done = self.ranks[r]
                        .cpu
                        .reserve_labeled(sched.now(), ns, "compute");
                    self.interp[r].blocked = Blocked::Compute { until: done };
                    sched.at(done, Ev::Resume { rank });
                }
                AppOp::MarkTime { slot } => {
                    self.marks[r].push((slot, sched.now()));
                }
                AppOp::Alltoall {
                    sbuf,
                    rbuf,
                    count,
                    sty,
                    rty,
                } => {
                    let ops = coll::alltoall(rank, self.spec.nprocs, sbuf, rbuf, count, &sty, &rty);
                    splice_front(&mut self.interp[r].prog, ops);
                }
                AppOp::Bcast {
                    root,
                    buf,
                    count,
                    ty,
                } => {
                    let ops = coll::bcast(rank, self.spec.nprocs, root, buf, count, &ty);
                    splice_front(&mut self.interp[r].prog, ops);
                }
                AppOp::Allgather {
                    sbuf,
                    rbuf,
                    count,
                    ty,
                } => {
                    let ops = coll::allgather(rank, self.spec.nprocs, sbuf, rbuf, count, &ty);
                    splice_front(&mut self.interp[r].prog, ops);
                }
                AppOp::Barrier => {
                    let ops = coll::barrier(rank, self.spec.nprocs);
                    splice_front(&mut self.interp[r].prog, ops);
                }
                AppOp::Gather {
                    root,
                    sbuf,
                    rbuf,
                    count,
                    ty,
                } => {
                    let ops = coll::gather(rank, self.spec.nprocs, root, sbuf, rbuf, count, &ty);
                    splice_front(&mut self.interp[r].prog, ops);
                }
                AppOp::Scatter {
                    root,
                    sbuf,
                    rbuf,
                    count,
                    ty,
                } => {
                    let ops = coll::scatter(rank, self.spec.nprocs, root, sbuf, rbuf, count, &ty);
                    splice_front(&mut self.interp[r].prog, ops);
                }
                AppOp::Reduce {
                    root,
                    sbuf,
                    rbuf,
                    scratch,
                    count,
                    ty,
                    op,
                } => {
                    let ops = coll::reduce(
                        rank,
                        self.spec.nprocs,
                        root,
                        sbuf,
                        rbuf,
                        scratch,
                        count,
                        &ty,
                        op,
                    );
                    splice_front(&mut self.interp[r].prog, ops);
                }
                AppOp::Allreduce {
                    sbuf,
                    rbuf,
                    scratch,
                    count,
                    ty,
                    op,
                } => {
                    let ops = coll::allreduce(
                        rank,
                        self.spec.nprocs,
                        sbuf,
                        rbuf,
                        scratch,
                        count,
                        &ty,
                        op,
                    );
                    splice_front(&mut self.interp[r].prog, ops);
                }
                AppOp::CombineBuffers {
                    dst,
                    src,
                    count,
                    ty,
                    op,
                } => {
                    self.combine_buffers(sched, rank, dst, src, count, &ty, op);
                }
                AppOp::WinCreate { win, addr, len } => {
                    let Cluster {
                        mems,
                        ranks,
                        spec,
                        windows,
                        ..
                    } = self;
                    let rs = &mut ranks[r];
                    let reg = mems[r].regs.register(addr, len);
                    rs.cpu
                        .reserve_labeled(sched.now(), spec.host.reg.reg_cost(addr, len), "reg");
                    windows.insert(
                        (win, rank),
                        crate::rma::WinEntry {
                            base: addr,
                            len,
                            rkey: reg.rkey,
                        },
                    );
                    // Collective: window info is usable after the
                    // barrier completes on all ranks.
                    let ops = coll::barrier(rank, self.spec.nprocs);
                    splice_front(&mut self.interp[r].prog, ops);
                }
                AppOp::Put {
                    win,
                    target,
                    obuf,
                    ocount,
                    oty,
                    toff,
                    tcount,
                    tty,
                } => {
                    let entry = *self
                        .windows
                        .get(&(win, target))
                        .expect("Put before the target created the window");
                    let Cluster {
                        fabric,
                        mems,
                        ranks,
                        spec,
                        ..
                    } = self;
                    let mut ctx = Ctx {
                        fabric: fabric.t_mut(),
                        mems,
                        net: &spec.net,
                        host: &spec.host,
                        cfg: &spec.mpi,
                        sched,
                    };
                    crate::rma::put(
                        &mut ranks[r],
                        &mut ctx,
                        target,
                        entry,
                        obuf,
                        ocount,
                        &oty,
                        toff,
                        tcount,
                        &tty,
                    );
                }
                AppOp::Get {
                    win,
                    target,
                    obuf,
                    ocount,
                    oty,
                    toff,
                    tcount,
                    tty,
                } => {
                    let entry = *self
                        .windows
                        .get(&(win, target))
                        .expect("Get before the target created the window");
                    let Cluster {
                        fabric,
                        mems,
                        ranks,
                        spec,
                        ..
                    } = self;
                    let mut ctx = Ctx {
                        fabric: fabric.t_mut(),
                        mems,
                        net: &spec.net,
                        host: &spec.host,
                        cfg: &spec.mpi,
                        sched,
                    };
                    crate::rma::get(
                        &mut ranks[r],
                        &mut ctx,
                        target,
                        entry,
                        obuf,
                        ocount,
                        &oty,
                        toff,
                        tcount,
                        &tty,
                    );
                }
                AppOp::Fence => {
                    if self.ranks[r].rma_outstanding > 0 {
                        self.interp[r].blocked = Blocked::Fence;
                        return;
                    }
                    self.finish_fence(sched, rank);
                }
                AppOp::HintReusedBuffer { addr, len } => {
                    // Register through the pin-down cache and release
                    // immediately: the cached entry makes the first
                    // communication on this buffer a registration hit.
                    let Cluster {
                        mems, ranks, spec, ..
                    } = self;
                    let rs = &mut ranks[r];
                    let acq = rs
                        .pindown
                        .acquire(&mut mems[r].regs, &spec.host.reg, addr, len);
                    let rel = rs
                        .pindown
                        .release(&mut mems[r].regs, &spec.host.reg, acq.reg.lkey)
                        .expect("hint registration releases");
                    rs.cpu
                        .reserve_labeled(sched.now(), acq.cost_ns + rel, "hint-reg");
                }
            }
        }
    }

    /// True when `rank`'s host has crash-stopped for good: its node is
    /// down ([`NicEvent::NodeDown`]) with no restart pending. A halted
    /// rank's CPU and completion events are discarded — the process is
    /// gone. A *restartable* down window deliberately leaves the
    /// program running against the dead fabric: its posts fail into
    /// the connection manager, which bridges the window and re-drives
    /// everything once the node returns (checkpoint-restore
    /// semantics; see DESIGN.md §15).
    fn rank_halted(&self, rank: u32) -> bool {
        self.fabric.t().node_down(rank) && !self.fabric.t().node_will_restart(rank)
    }

    /// Schedules interpreter resumption for ranks with fresh
    /// completions.
    fn drain_completions(&mut self, sched: &mut Scheduler<'_, Ev>, rank: u32) {
        let r = rank as usize;
        if !self.ranks[r].newly_completed.is_empty() || self.ranks[r].rma_event {
            self.ranks[r].newly_completed.clear();
            self.ranks[r].rma_event = false;
            sched.at(sched.now(), Ev::Resume { rank });
        }
    }
}

/// Decodes a fixed-width little-endian operand, failing typed
/// ([`MpiError::Truncated`]) instead of panicking when the slice is
/// short — a corrupted layout must not bring the whole simulation down.
fn le_operand<const N: usize>(b: &[u8]) -> Result<[u8; N], MpiError> {
    b.try_into().map_err(|_| MpiError::Truncated {
        expected: N as u32,
        got: b.len() as u32,
    })
}

/// One element of [`Cluster::combine_buffers`]: `da = op(da, db)` over
/// primitive `prim`, with typed errors for short operands and
/// unimplemented combinations.
fn combine_element(
    da: &mut [u8],
    db: &[u8],
    op: ReduceOp,
    prim: ibdt_datatype::Primitive,
) -> Result<(), MpiError> {
    use ibdt_datatype::Primitive;
    match (op, prim) {
        (ReduceOp::Replace, _) => da.copy_from_slice(db),
        (ReduceOp::Sum, Primitive::Int) => {
            let v = i32::from_le_bytes(le_operand(da)?)
                .wrapping_add(i32::from_le_bytes(le_operand(db)?));
            da.copy_from_slice(&v.to_le_bytes());
        }
        (ReduceOp::Max, Primitive::Int) => {
            let v = i32::from_le_bytes(le_operand(da)?).max(i32::from_le_bytes(le_operand(db)?));
            da.copy_from_slice(&v.to_le_bytes());
        }
        (ReduceOp::Sum, Primitive::Double) => {
            let v = f64::from_le_bytes(le_operand(da)?) + f64::from_le_bytes(le_operand(db)?);
            da.copy_from_slice(&v.to_le_bytes());
        }
        (ReduceOp::Max, Primitive::Double) => {
            let v = f64::from_le_bytes(le_operand(da)?).max(f64::from_le_bytes(le_operand(db)?));
            da.copy_from_slice(&v.to_le_bytes());
        }
        (_, _) => return Err(MpiError::UnsupportedReduction),
    }
    Ok(())
}

fn splice_front(prog: &mut VecDeque<AppOp>, ops: Vec<AppOp>) {
    for op in ops.into_iter().rev() {
        prog.push_front(op);
    }
}

impl World for Cluster {
    type Event = Ev;

    fn handle(&mut self, sched: &mut Scheduler<'_, Ev>, ev: Ev) {
        match ev {
            Ev::Nic(e) => {
                let mut completions = std::mem::take(&mut self.cqe_buf);
                completions.clear();
                {
                    let Cluster { fabric, mems, .. } = self;
                    fabric.t_mut().handle(
                        sched.now(),
                        e,
                        mems,
                        &mut |t, e| sched.at(t, Ev::Nic(e)),
                        &mut completions,
                    );
                }
                for &(node, cqe) in &completions {
                    if self.rank_halted(node) {
                        // The rank crash-stopped: its CPU never sees
                        // the completion. The CQ-consumer ack below
                        // still runs so the fabric's occupancy
                        // accounting stays balanced.
                        if self.spec.net.cq_depth != usize::MAX {
                            sched.at(sched.now(), Ev::CqAck { rank: node, n: 1 });
                        }
                        continue;
                    }
                    {
                        let Cluster {
                            fabric,
                            mems,
                            ranks,
                            active,
                            spec,
                            ..
                        } = self;
                        let mut ctx = Ctx {
                            fabric: fabric.t_mut(),
                            mems,
                            net: &spec.net,
                            host: &spec.host,
                            cfg: &spec.mpi,
                            sched,
                        };
                        progress::on_cqe(
                            &mut ranks[node as usize],
                            &mut active[node as usize],
                            &mut ctx,
                            cqe,
                        );
                    }
                    self.drain_completions(sched, node);
                    // Bounded-CQ consumer model: the slot is returned
                    // once the rank's CPU has drained the completion.
                    // Unbounded (default) runs schedule no extra events,
                    // keeping committed results bit-identical.
                    if self.spec.net.cq_depth != usize::MAX {
                        // The CPU may have been idle when the CQE landed,
                        // leaving `available_at` behind the clock.
                        let at = self.ranks[node as usize]
                            .cpu
                            .available_at()
                            .max(sched.now());
                        sched.at(at, Ev::CqAck { rank: node, n: 1 });
                    }
                }
                self.cqe_buf = completions;
            }
            Ev::Cpu { rank, act } => {
                if self.rank_halted(rank) {
                    return;
                }
                {
                    let Cluster {
                        fabric,
                        mems,
                        ranks,
                        active,
                        spec,
                        ..
                    } = self;
                    let mut ctx = Ctx {
                        fabric: fabric.t_mut(),
                        mems,
                        net: &spec.net,
                        host: &spec.host,
                        cfg: &spec.mpi,
                        sched,
                    };
                    progress::on_cpu(
                        &mut ranks[rank as usize],
                        &mut active[rank as usize],
                        &mut ctx,
                        act,
                    );
                }
                self.drain_completions(sched, rank);
            }
            Ev::Resume { rank } => {
                if self.rank_halted(rank) {
                    return;
                }
                self.interp_advance(sched, rank);
            }
            Ev::CqAck { rank, n } => {
                self.fabric.t_mut().cq_consume(rank, n as usize);
            }
        }
        if self.spec.mpi.audit {
            // Decimated: the full check is O(nprocs²), far too hot for
            // every event of a 65-rank incast soak.
            self.events_handled += 1;
            if self.events_handled.is_multiple_of(64) {
                self.audit_invariants(false);
            }
        }
    }
}
