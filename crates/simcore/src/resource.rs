//! FIFO serial resources.
//!
//! A [`SerialResource`] models a device that executes work items one at a
//! time in submission order — a host CPU core running the MPI progress
//! engine, a NIC work-queue processing engine, or a network link
//! serializing bytes. Work is expressed as "reserve `dur` nanoseconds no
//! earlier than `now`"; the resource returns the completion time and
//! keeps busy-time accounting so utilization and overlap can be measured.

use crate::time::Time;
use crate::trace::Trace;

/// A FIFO busy-until serial resource.
#[derive(Debug, Clone)]
pub struct SerialResource {
    name: &'static str,
    busy_until: Time,
    total_busy: Time,
    jobs: u64,
    trace: Option<Trace>,
}

impl SerialResource {
    /// Creates a resource. `name` labels trace spans and debug output.
    pub fn new(name: &'static str) -> Self {
        Self {
            name,
            busy_until: 0,
            total_busy: 0,
            jobs: 0,
            trace: None,
        }
    }

    /// Enables span tracing on this resource (records every reservation).
    pub fn with_trace(mut self) -> Self {
        self.trace = Some(Trace::new());
        self
    }

    /// Reserves `dur` nanoseconds of this resource, starting no earlier
    /// than `now` and no earlier than the end of previously reserved
    /// work. Returns the completion time. A label is recorded if tracing
    /// is enabled.
    pub fn reserve_labeled(&mut self, now: Time, dur: Time, label: &'static str) -> Time {
        let start = self.busy_until.max(now);
        let finish = start + dur;
        self.busy_until = finish;
        self.total_busy += dur;
        self.jobs += 1;
        if let Some(t) = &mut self.trace {
            t.record(start, finish, label);
        }
        finish
    }

    /// [`Self::reserve_labeled`] with the resource name as the label.
    pub fn reserve(&mut self, now: Time, dur: Time) -> Time {
        self.reserve_labeled(now, dur, self.name)
    }

    /// Returns the resource to its just-constructed state — idle at
    /// t=0, zero accounting, trace cleared (capacity retained). A reset
    /// resource schedules bit-identically to a fresh one.
    pub fn reset(&mut self) {
        self.busy_until = 0;
        self.total_busy = 0;
        self.jobs = 0;
        if let Some(t) = &mut self.trace {
            t.reset();
        }
    }

    /// Earliest time new work could start.
    pub fn available_at(&self) -> Time {
        self.busy_until
    }

    /// Total busy nanoseconds reserved so far.
    pub fn total_busy(&self) -> Time {
        self.total_busy
    }

    /// Number of work items executed.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Resource name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Recorded spans, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Utilization over `[0, horizon]`, as a fraction.
    pub fn utilization(&self, horizon: Time) -> f64 {
        if horizon == 0 {
            0.0
        } else {
            self.total_busy as f64 / horizon as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_starts_immediately() {
        let mut r = SerialResource::new("cpu");
        assert_eq!(r.reserve(100, 50), 150);
        assert_eq!(r.available_at(), 150);
    }

    #[test]
    fn busy_resource_queues_fifo() {
        let mut r = SerialResource::new("cpu");
        assert_eq!(r.reserve(0, 100), 100);
        // Requested at t=10 but the resource is busy until 100.
        assert_eq!(r.reserve(10, 5), 105);
        assert_eq!(r.jobs(), 2);
        assert_eq!(r.total_busy(), 105);
    }

    #[test]
    fn gap_between_jobs_counts_as_idle() {
        let mut r = SerialResource::new("nic");
        r.reserve(0, 10);
        r.reserve(100, 10); // idle 10..100
        assert_eq!(r.total_busy(), 20);
        assert_eq!(r.available_at(), 110);
        assert!((r.utilization(110) - 20.0 / 110.0).abs() < 1e-12);
    }

    #[test]
    fn zero_duration_reservation_is_legal() {
        let mut r = SerialResource::new("link");
        assert_eq!(r.reserve(5, 0), 5);
        assert_eq!(r.total_busy(), 0);
    }

    #[test]
    fn trace_records_spans() {
        let mut r = SerialResource::new("cpu").with_trace();
        r.reserve_labeled(0, 10, "pack");
        r.reserve_labeled(0, 10, "unpack");
        let spans = r.trace().unwrap().spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].label, "pack");
        assert_eq!((spans[1].start, spans[1].end), (10, 20));
    }

    #[test]
    fn utilization_zero_horizon() {
        let r = SerialResource::new("cpu");
        assert_eq!(r.utilization(0), 0.0);
    }
}
