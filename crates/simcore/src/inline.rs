//! Inline small-vector storage: fixed capacity with heap spill.
//!
//! Work-request gather lists are tiny in steady state — the eager and
//! data paths post one SGE per WR, and the HCA caps a list at
//! `max_sge` (64) — yet `Vec<Sge>` paid a heap allocation for every
//! posted descriptor. An [`InlineVec<T, N>`] stores up to `N` elements
//! inline in the struct and only touches the heap when a list
//! genuinely exceeds the inline capacity (wide zero-copy gathers),
//! so the common single-SGE post allocates nothing.
//!
//! The API is the small slice-shaped subset the simulator needs:
//! `push`, `Deref<Target = [T]>`, owned iteration, `FromIterator`,
//! and `From<Vec<T>>`. Once a list spills it stays spilled; clearing
//! releases the spill vector.

use std::fmt;
use std::mem::MaybeUninit;

/// A vector storing up to `N` elements inline; longer contents spill
/// to a heap `Vec`. See the module docs.
pub struct InlineVec<T, const N: usize> {
    /// Inline storage; the first `len` slots are initialized iff
    /// `spill` is `None`.
    inline: [MaybeUninit<T>; N],
    /// Number of initialized inline slots (0 when spilled).
    len: usize,
    /// Heap storage holding *all* elements once capacity is exceeded.
    spill: Option<Vec<T>>,
}

impl<T, const N: usize> InlineVec<T, N> {
    /// An empty list (no heap allocation).
    pub fn new() -> Self {
        InlineVec {
            // SAFETY: an array of MaybeUninit is trivially valid
            // uninitialized.
            inline: unsafe { MaybeUninit::uninit().assume_init() },
            len: 0,
            spill: None,
        }
    }

    /// A one-element list (the steady-state WR shape), inline.
    pub fn of(value: T) -> Self {
        let mut v = Self::new();
        v.push(value);
        v
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match &self.spill {
            Some(v) => v.len(),
            None => self.len,
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends an element, spilling to the heap past `N` elements.
    pub fn push(&mut self, value: T) {
        if let Some(v) = &mut self.spill {
            v.push(value);
            return;
        }
        if self.len < N {
            self.inline[self.len].write(value);
            self.len += 1;
            return;
        }
        let mut v = Vec::with_capacity(N * 2);
        for slot in &mut self.inline[..self.len] {
            // SAFETY: the first `len` inline slots are initialized and
            // are moved out exactly once here (len is reset below).
            v.push(unsafe { slot.assume_init_read() });
        }
        self.len = 0;
        v.push(value);
        self.spill = Some(v);
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        match &self.spill {
            Some(v) => v.as_slice(),
            // SAFETY: the first `len` inline slots are initialized.
            None => unsafe {
                std::slice::from_raw_parts(self.inline.as_ptr().cast::<T>(), self.len)
            },
        }
    }

    /// The elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        match &mut self.spill {
            Some(v) => v.as_mut_slice(),
            // SAFETY: the first `len` inline slots are initialized.
            None => unsafe {
                std::slice::from_raw_parts_mut(self.inline.as_mut_ptr().cast::<T>(), self.len)
            },
        }
    }

    /// Removes all elements (releasing any spill storage).
    pub fn clear(&mut self) {
        if self.spill.take().is_none() {
            let len = self.len;
            self.len = 0;
            for slot in &mut self.inline[..len] {
                // SAFETY: slots below the old len are initialized; len
                // was reset first so a panicking Drop can't double-run.
                unsafe { slot.assume_init_drop() };
            }
        }
    }

    /// True when the contents live inline (no heap allocation).
    pub fn is_inline(&self) -> bool {
        self.spill.is_none()
    }
}

impl<T, const N: usize> Drop for InlineVec<T, N> {
    fn drop(&mut self) {
        self.clear();
    }
}

impl<T, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, const N: usize> std::ops::Deref for InlineVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T, const N: usize> std::ops::DerefMut for InlineVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Clone, const N: usize> Clone for InlineVec<T, N> {
    fn clone(&self) -> Self {
        self.as_slice().iter().cloned().collect()
    }
}

impl<T: fmt::Debug, const N: usize> fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<T: PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = Self::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

impl<T, const N: usize> From<Vec<T>> for InlineVec<T, N> {
    fn from(v: Vec<T>) -> Self {
        // A vector that fits inline is copied in (freeing the heap
        // buffer); a longer one is adopted as the spill as-is.
        if v.len() <= N {
            v.into_iter().collect()
        } else {
            InlineVec {
                // SAFETY: as in `new`.
                inline: unsafe { MaybeUninit::uninit().assume_init() },
                len: 0,
                spill: Some(v),
            }
        }
    }
}

impl<'a, T, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Owned iterator over an [`InlineVec`].
pub struct IntoIter<T, const N: usize> {
    vec: InlineVec<T, N>,
    pos: usize,
}

impl<T, const N: usize> Iterator for IntoIter<T, N> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        if let Some(v) = &mut self.vec.spill {
            if self.pos < v.len() {
                let item = unsafe { v.as_ptr().add(self.pos).read() };
                self.pos += 1;
                if self.pos == v.len() {
                    // SAFETY: every element was moved out; forget them.
                    unsafe { v.set_len(0) };
                }
                return Some(item);
            }
            return None;
        }
        if self.pos < self.vec.len {
            // SAFETY: slots below len are initialized; each is read
            // exactly once (pos advances monotonically) and the Drop
            // impl skips already-consumed slots.
            let item = unsafe { self.vec.inline[self.pos].assume_init_read() };
            self.pos += 1;
            return Some(item);
        }
        None
    }
}

impl<T, const N: usize> Drop for IntoIter<T, N> {
    fn drop(&mut self) {
        if let Some(v) = &mut self.vec.spill {
            // Drop only the not-yet-consumed tail.
            let remaining = v.len().saturating_sub(self.pos);
            if remaining > 0 {
                let consumed = self.pos;
                // SAFETY: elements [consumed, len) are still live; move
                // them to the front so Vec's own Drop handles them.
                unsafe {
                    let p = v.as_mut_ptr();
                    std::ptr::copy(p.add(consumed), p, remaining);
                    v.set_len(remaining);
                }
            } else {
                unsafe { v.set_len(0) };
            }
            self.vec.spill = None;
        } else {
            let (start, end) = (self.pos, self.vec.len);
            self.vec.len = 0; // InlineVec::drop must not re-drop.
            for slot in &mut self.vec.inline[start..end] {
                // SAFETY: slots in [pos, len) were never consumed.
                unsafe { slot.assume_init_drop() };
            }
        }
    }
}

impl<T, const N: usize> IntoIterator for InlineVec<T, N> {
    type Item = T;
    type IntoIter = IntoIter<T, N>;
    fn into_iter(self) -> Self::IntoIter {
        IntoIter { vec: self, pos: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_within_capacity_stays_inline() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        for i in 0..4 {
            v.push(i);
        }
        assert!(v.is_inline());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
    }

    #[test]
    fn spill_past_capacity() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        for i in 0..5 {
            v.push(i);
        }
        assert!(!v.is_inline());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4]);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn of_and_deref() {
        let v: InlineVec<&str, 4> = InlineVec::of("x");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0], "x");
        assert_eq!(v.iter().count(), 1);
    }

    #[test]
    fn from_iterator_and_from_vec() {
        let v: InlineVec<u32, 4> = (0..3).collect();
        assert!(v.is_inline());
        assert_eq!(&v[..], &[0, 1, 2]);
        let w: InlineVec<u32, 4> = vec![9, 8, 7, 6, 5].into();
        assert!(!w.is_inline());
        assert_eq!(&w[..], &[9, 8, 7, 6, 5]);
        let x: InlineVec<u32, 4> = vec![1, 2].into();
        assert!(x.is_inline());
    }

    #[test]
    fn owned_iteration_inline_and_spilled() {
        let v: InlineVec<String, 2> = vec!["a".to_string(), "b".to_string()].into();
        let got: Vec<String> = v.into_iter().collect();
        assert_eq!(got, vec!["a", "b"]);
        let w: InlineVec<String, 2> = (0..5).map(|i| i.to_string()).collect();
        let got: Vec<String> = w.into_iter().collect();
        assert_eq!(got, vec!["0", "1", "2", "3", "4"]);
    }

    #[test]
    fn partial_owned_iteration_drops_rest() {
        // Drop correctness exercised under Miri-style scrutiny: consume
        // one element, drop the iterator with live remainder.
        let v: InlineVec<String, 4> = (0..3).map(|i| i.to_string()).collect();
        let mut it = v.into_iter();
        assert_eq!(it.next().as_deref(), Some("0"));
        drop(it);
        let w: InlineVec<String, 2> = (0..4).map(|i| i.to_string()).collect();
        let mut it = w.into_iter();
        assert_eq!(it.next().as_deref(), Some("0"));
        drop(it);
    }

    #[test]
    fn clone_and_eq() {
        let v: InlineVec<u32, 4> = (0..3).collect();
        let w = v.clone();
        assert_eq!(v, w);
        let u: InlineVec<u32, 4> = (0..4).collect();
        assert_ne!(v, u);
    }

    #[test]
    fn clear_releases_and_reuses() {
        let mut v: InlineVec<String, 2> = (0..4).map(|i| i.to_string()).collect();
        v.clear();
        assert!(v.is_empty());
        assert!(v.is_inline());
        v.push("z".to_string());
        assert_eq!(&v[0], "z");
    }
}
