//! Generational slab arena for in-flight records.
//!
//! The protocol and fabric engines used to key in-flight records
//! (retransmit tickets, rendezvous messages) in `HashMap`s, paying a
//! SipHash round plus occasional table growth per message. A [`Slab`]
//! replaces that with index arithmetic: insertion pops a free slot (or
//! appends once, after which the slot is reused forever), removal pushes
//! the slot back onto an intrusive free list, and lookups are a bounds
//! check plus a generation compare.
//!
//! Handles are *generational*: each slot carries a generation counter
//! bumped on removal, and a [`Handle`] embeds the generation it was
//! minted with. A stale handle — one whose record was removed (or whose
//! slot was re-used) — simply resolves to `None`, exactly the semantics
//! the former `HashMap::remove` gave to late timer events racing a
//! flush.
//!
//! Iteration ([`Slab::iter`]) visits occupied slots in **index order**,
//! which is a function of the insertion/removal history and therefore
//! deterministic — but *not* insertion order once slots recycle. Callers
//! that need a deterministic replay order (e.g. the fabric flushing
//! in-flight transfers oldest-first) must carry their own monotonic
//! stamp and sort on it; see `Fabric`'s `PendingRetry::order`.

/// A stable, generational reference to a slab slot.
///
/// Packed as `generation << 32 | index` so it can travel through `u64`
/// event payloads unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Handle(u64);

impl Handle {
    /// Rebuilds a handle from its `u64` wire form.
    pub fn from_bits(bits: u64) -> Self {
        Handle(bits)
    }

    /// The `u64` wire form (`generation << 32 | index`).
    pub fn bits(self) -> u64 {
        self.0
    }

    fn new(index: u32, generation: u32) -> Self {
        Handle((generation as u64) << 32 | index as u64)
    }

    fn index(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

#[derive(Debug)]
enum Slot<T> {
    /// Occupied slot and the generation its handle carries.
    Full { generation: u32, value: T },
    /// Free slot: next free index (intrusive list), `u32::MAX` = end.
    Free { generation: u32, next_free: u32 },
}

/// A generational slab arena. See the module docs.
#[derive(Debug)]
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    /// Head of the free list (`u32::MAX` = empty).
    free_head: u32,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

const NIL: u32 = u32::MAX;

impl<T> Slab<T> {
    /// An empty slab (no allocation until the first insert).
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free_head: NIL,
            len: 0,
        }
    }

    /// An empty slab with capacity for `cap` records.
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(cap),
            free_head: NIL,
            len: 0,
        }
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no records are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a record, returning its handle. Reuses a free slot when
    /// one exists; steady-state insert/remove cycles never allocate.
    pub fn insert(&mut self, value: T) -> Handle {
        self.len += 1;
        if self.free_head != NIL {
            let idx = self.free_head;
            let Slot::Free {
                generation,
                next_free,
            } = self.slots[idx as usize]
            else {
                unreachable!("free list points at an occupied slot");
            };
            self.free_head = next_free;
            self.slots[idx as usize] = Slot::Full { generation, value };
            Handle::new(idx, generation)
        } else {
            let idx = self.slots.len() as u32;
            assert!(idx != NIL, "slab exceeded 2^32 - 1 slots");
            self.slots.push(Slot::Full {
                generation: 0,
                value,
            });
            Handle::new(idx, 0)
        }
    }

    /// Removes the record behind `h`, or `None` when the handle is
    /// stale (already removed, possibly with its slot since reused).
    pub fn remove(&mut self, h: Handle) -> Option<T> {
        let idx = h.index();
        match self.slots.get(idx) {
            Some(Slot::Full { generation, .. }) if *generation == h.generation() => {}
            _ => return None,
        }
        let next_gen = h.generation().wrapping_add(1);
        let slot = std::mem::replace(
            &mut self.slots[idx],
            Slot::Free {
                generation: next_gen,
                next_free: self.free_head,
            },
        );
        self.free_head = idx as u32;
        self.len -= 1;
        match slot {
            Slot::Full { value, .. } => Some(value),
            Slot::Free { .. } => unreachable!("checked Full above"),
        }
    }

    /// Shared access to the record behind `h` (`None` when stale).
    pub fn get(&self, h: Handle) -> Option<&T> {
        match self.slots.get(h.index()) {
            Some(Slot::Full { generation, value }) if *generation == h.generation() => Some(value),
            _ => None,
        }
    }

    /// Mutable access to the record behind `h` (`None` when stale).
    pub fn get_mut(&mut self, h: Handle) -> Option<&mut T> {
        match self.slots.get_mut(h.index()) {
            Some(Slot::Full { generation, value }) if *generation == h.generation() => Some(value),
            _ => None,
        }
    }

    /// Iterates live records in slot-index order (deterministic, but
    /// not insertion order once slots recycle — see module docs).
    pub fn iter(&self) -> impl Iterator<Item = (Handle, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Slot::Full { generation, value } => Some((Handle::new(i as u32, *generation), value)),
            Slot::Free { .. } => None,
        })
    }

    /// Removes every record, keeping slot storage for reuse.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free_head = NIL;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.get(b), Some(&"b"));
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(a), None);
        assert_eq!(s.remove(a), None, "double remove is a stale miss");
        assert_eq!(s.remove(b), Some("b"));
        assert!(s.is_empty());
    }

    #[test]
    fn stale_handle_survives_slot_reuse() {
        let mut s = Slab::new();
        let a = s.insert(1u32);
        s.remove(a);
        let b = s.insert(2u32);
        // Same slot, new generation: the old handle stays dead.
        assert_eq!(b.index(), a.index());
        assert_ne!(a, b);
        assert_eq!(s.get(a), None);
        assert_eq!(s.remove(a), None);
        assert_eq!(s.get(b), Some(&2));
    }

    #[test]
    fn handle_round_trips_through_bits() {
        let mut s = Slab::new();
        let h = s.insert(42u64);
        let h2 = Handle::from_bits(h.bits());
        assert_eq!(s.get(h2), Some(&42));
    }

    #[test]
    fn steady_state_reuses_slots_without_growth() {
        let mut s = Slab::with_capacity(4);
        let cap_probe = |s: &Slab<u64>| s.slots.capacity();
        for i in 0..4 {
            s.insert(i);
        }
        let cap = cap_probe(&s);
        let handles: Vec<Handle> = s.iter().map(|(h, _)| h).collect();
        for h in handles {
            s.remove(h);
        }
        for round in 0..100u64 {
            let h1 = s.insert(round);
            let h2 = s.insert(round + 1);
            assert_eq!(s.remove(h1), Some(round));
            assert_eq!(s.remove(h2), Some(round + 1));
        }
        assert_eq!(cap_probe(&s), cap, "steady churn must not grow the slab");
    }

    #[test]
    fn iter_visits_occupied_in_index_order() {
        let mut s = Slab::new();
        let a = s.insert(10);
        let b = s.insert(20);
        let c = s.insert(30);
        s.remove(b);
        let got: Vec<(usize, i32)> = s.iter().map(|(h, &v)| (h.index(), v)).collect();
        assert_eq!(got, vec![(a.index(), 10), (c.index(), 30)]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = Slab::new();
        let a = s.insert(1);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.get(a), None);
        let _ = s.insert(2);
        assert_eq!(s.len(), 1);
    }
}
