//! Closed-form two-stage pipeline completion times.
//!
//! The staged device path overlaps pack-of-chunk-`k` against
//! DMA-of-chunk-`k-1` through a bounded ring of bounce buffers. Both
//! the progress engine (charging virtual time) and the §6 adaptive
//! chunk selector (comparing candidate chunk sizes *before* charging
//! anything) need the finish time of such a pipeline; this module
//! computes it without allocating, from per-chunk stage costs.

use crate::time::Time;

/// Upper bound on the bounce-buffer ring depth (fixed-size scratch so
/// the computation allocates nothing).
pub const MAX_PIPELINE_BUFS: usize = 8;

/// Finish time of an `n`-chunk two-stage pipeline started at 0, with
/// `bufs` bounce buffers. Chunk `k` runs stage A (duration `a_ns(k)`)
/// then stage B (duration `b_ns(k)`); each stage is a serial resource
/// (chunks pass through in order), and chunk `k` cannot *start* stage
/// A until chunk `k - bufs` has fully left stage B (its buffer is
/// free again). `bufs` is clamped to `1..=MAX_PIPELINE_BUFS`; with
/// `bufs == 1` the pipeline degenerates to strict serialization.
pub fn two_stage_finish_ns(
    n: u64,
    bufs: usize,
    mut a_ns: impl FnMut(u64) -> Time,
    mut b_ns: impl FnMut(u64) -> Time,
) -> Time {
    let bufs = bufs.clamp(1, MAX_PIPELINE_BUFS);
    // ring[k % bufs] = time chunk k-bufs freed its buffer.
    let mut ring = [0 as Time; MAX_PIPELINE_BUFS];
    let mut a_free: Time = 0;
    let mut b_free: Time = 0;
    for k in 0..n {
        let slot = (k % bufs as u64) as usize;
        let a_start = a_free.max(ring[slot]);
        let a_done = a_start + a_ns(k);
        let b_start = b_free.max(a_done);
        let b_done = b_start + b_ns(k);
        a_free = a_done;
        b_free = b_done;
        ring[slot] = b_done;
    }
    b_free
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_pipeline_finishes_immediately() {
        assert_eq!(two_stage_finish_ns(0, 4, |_| 10, |_| 10), 0);
    }

    #[test]
    fn single_buffer_serializes() {
        // With one buffer chunk k+1 waits for chunk k's B: total is
        // the plain sum of both stages.
        let t = two_stage_finish_ns(5, 1, |_| 30, |_| 70);
        assert_eq!(t, 5 * (30 + 70));
    }

    #[test]
    fn two_buffers_overlap_to_the_bottleneck() {
        // Equal stages, deep enough ring: steady state is bound by one
        // stage; finish = a(0) + n * b.
        let t = two_stage_finish_ns(10, 2, |_| 50, |_| 50);
        assert_eq!(t, 50 + 10 * 50);
        // Bottleneck B: fill once, then B back-to-back.
        let t = two_stage_finish_ns(10, 2, |_| 10, |_| 100);
        assert_eq!(t, 10 + 10 * 100);
        // Bottleneck A: drain once after the last A.
        let t = two_stage_finish_ns(10, 2, |_| 100, |_| 10);
        assert_eq!(t, 10 * 100 + 10);
    }

    #[test]
    fn more_buffers_never_slower() {
        let cost_a = |k: u64| 20 + (k % 3) * 15;
        let cost_b = |k: u64| 35 + (k % 5) * 9;
        let mut prev = Time::MAX;
        for bufs in 1..=MAX_PIPELINE_BUFS {
            let t = two_stage_finish_ns(40, bufs, cost_a, cost_b);
            assert!(t <= prev, "bufs {bufs}: {t} > {prev}");
            prev = t;
        }
        // And pipelining strictly beats serialization here.
        let serial = two_stage_finish_ns(40, 1, cost_a, cost_b);
        assert!(prev < serial);
    }

    #[test]
    fn oversized_bufs_clamp() {
        let a = two_stage_finish_ns(12, 64, |_| 7, |_| 11);
        let b = two_stage_finish_ns(12, MAX_PIPELINE_BUFS, |_| 7, |_| 11);
        assert_eq!(a, b);
    }
}
