#![warn(missing_docs)]
//! Deterministic discrete-event simulation core.
//!
//! This crate provides the virtual-time substrate that the InfiniBand
//! verbs simulator ([`ibdt-ibsim`]) and the MPI runtime
//! ([`ibdt-mpicore`]) are built on:
//!
//! * [`time`] — virtual nanoseconds and conversion helpers,
//! * [`queue`] — a total-ordered event queue (`(time, seq)` ordering, so
//!   identical inputs replay identically),
//! * [`resource`] — FIFO "busy-until" serial resources modelling a host
//!   CPU, a NIC processing engine, or a network link,
//! * [`trace`] — span recording for resources, used to *prove* overlap
//!   (e.g. that BC-SPUP really pipelines packing against the wire),
//! * [`engine`] — a small driver loop tying a user "world" to the queue,
//! * [`slab`] — a generational slab arena giving in-flight records
//!   stable handles without per-message hashing or allocation,
//! * [`inline`] — inline small-vector storage (fixed cap, heap spill)
//!   for the short gather lists the hot paths build per descriptor.
//!
//! The design goal is reproducibility: a simulation is a pure function of
//! its inputs. There is no wall-clock, no global state and no
//! nondeterministic iteration order anywhere in this crate.

pub mod engine;
pub mod inline;
pub mod queue;
pub mod resource;
pub mod slab;
pub mod time;
pub mod trace;

pub use engine::{Engine, World};
pub use inline::InlineVec;
pub use queue::{EventQueue, HeapQueue};
pub use resource::SerialResource;
pub use slab::{Handle, Slab};
pub use time::{Time, GIGA, KILO, MEGA};
pub use trace::{Span, Trace};
