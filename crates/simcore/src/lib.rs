#![warn(missing_docs)]
//! Deterministic discrete-event simulation core.
//!
//! This crate provides the virtual-time substrate that the InfiniBand
//! verbs simulator ([`ibdt-ibsim`]) and the MPI runtime
//! ([`ibdt-mpicore`]) are built on:
//!
//! * [`time`] — virtual nanoseconds and conversion helpers,
//! * [`queue`] — a total-ordered event queue (`(time, seq)` ordering, so
//!   identical inputs replay identically),
//! * [`resource`] — FIFO "busy-until" serial resources modelling a host
//!   CPU, a NIC processing engine, or a network link,
//! * [`trace`] — span recording for resources, used to *prove* overlap
//!   (e.g. that BC-SPUP really pipelines packing against the wire),
//! * [`engine`] — a small driver loop tying a user "world" to the queue,
//! * [`slab`] — a generational slab arena giving in-flight records
//!   stable handles without per-message hashing or allocation,
//! * [`inline`] — inline small-vector storage (fixed cap, heap spill)
//!   for the short gather lists the hot paths build per descriptor,
//! * [`paged`] — two-level paged sparse-dense tables so per-pair state
//!   costs memory proportional to *touched* pairs, not n²,
//! * [`shard`] — a conservative (lookahead-windowed) parallel driver
//!   that runs one large simulation across cores with results
//!   bit-identical to the sequential order.
//!
//! The design goal is reproducibility: a simulation is a pure function of
//! its inputs. There is no wall-clock, no global state and no
//! nondeterministic iteration order anywhere in this crate.

pub mod engine;
pub mod inline;
pub mod paged;
pub mod pipeline;
pub mod queue;
pub mod resource;
pub mod shard;
pub mod slab;
pub mod time;
pub mod trace;

pub use engine::{Engine, World};
pub use inline::InlineVec;
pub use paged::{PagedTable, PAGE};
pub use pipeline::{two_stage_finish_ns, MAX_PIPELINE_BUFS};
pub use queue::{EventQueue, HeapQueue};
pub use resource::SerialResource;
pub use shard::{run_indexed, ShardSim, ShardWorld};
pub use slab::{Handle, Slab};
pub use time::{Time, GIGA, KILO, MEGA};
pub use trace::{Span, Trace};
