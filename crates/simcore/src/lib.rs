#![warn(missing_docs)]
//! Deterministic discrete-event simulation core.
//!
//! This crate provides the virtual-time substrate that the InfiniBand
//! verbs simulator ([`ibdt-ibsim`]) and the MPI runtime
//! ([`ibdt-mpicore`]) are built on:
//!
//! * [`time`] — virtual nanoseconds and conversion helpers,
//! * [`queue`] — a total-ordered event queue (`(time, seq)` ordering, so
//!   identical inputs replay identically),
//! * [`resource`] — FIFO "busy-until" serial resources modelling a host
//!   CPU, a NIC processing engine, or a network link,
//! * [`trace`] — span recording for resources, used to *prove* overlap
//!   (e.g. that BC-SPUP really pipelines packing against the wire),
//! * [`engine`] — a small driver loop tying a user "world" to the queue.
//!
//! The design goal is reproducibility: a simulation is a pure function of
//! its inputs. There is no wall-clock, no global state and no
//! nondeterministic iteration order anywhere in this crate.

pub mod engine;
pub mod queue;
pub mod resource;
pub mod time;
pub mod trace;

pub use engine::{Engine, World};
pub use queue::{EventQueue, HeapQueue};
pub use resource::SerialResource;
pub use time::{Time, GIGA, KILO, MEGA};
pub use trace::{Span, Trace};
