//! The simulation driver loop.
//!
//! An [`Engine`] owns an [`EventQueue`] and a user-supplied *world*. The
//! world receives events one at a time, in deterministic `(time, seq)`
//! order, together with a [`Scheduler`] handle through which it schedules
//! follow-up events. The engine never runs time backwards: scheduling an
//! event before the current instant is a bug and panics in debug builds
//! (it is clamped to `now` in release builds so long sweeps fail soft).

use crate::queue::EventQueue;
use crate::time::Time;

/// Handle given to the world for scheduling new events.
pub struct Scheduler<'a, E> {
    queue: &'a mut EventQueue<E>,
    now: Time,
}

impl<'a, E> Scheduler<'a, E> {
    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedules `payload` at absolute time `at` (must be `>= now`).
    pub fn at(&mut self, at: Time, payload: E) {
        debug_assert!(at >= self.now, "cannot schedule into the past");
        self.queue.schedule(at.max(self.now), payload);
    }

    /// Schedules `payload` after a relative delay.
    pub fn after(&mut self, delay: Time, payload: E) {
        self.queue.schedule(self.now + delay, payload);
    }
}

/// A simulated world: owns all model state and reacts to events.
pub trait World {
    /// Event payload type delivered to [`World::handle`].
    type Event;

    /// Handles one event at virtual time `sched.now()`.
    fn handle(&mut self, sched: &mut Scheduler<'_, Self::Event>, event: Self::Event);
}

/// The simulation engine: event queue + clock + world driver.
pub struct Engine<W: World> {
    queue: EventQueue<W::Event>,
    now: Time,
    handled: u64,
}

impl<W: World> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W: World> Engine<W> {
    /// Creates an engine at virtual time 0 with an empty queue.
    pub fn new() -> Self {
        Self {
            queue: EventQueue::new(),
            now: 0,
            handled: 0,
        }
    }

    /// Current virtual time (time of the most recently handled event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events handled so far.
    pub fn handled(&self) -> u64 {
        self.handled
    }

    /// Total events ever scheduled on the queue (seeded + in-world).
    pub fn events_scheduled(&self) -> u64 {
        self.queue.total_scheduled()
    }

    /// Schedules an initial event from outside the world.
    pub fn seed(&mut self, at: Time, payload: W::Event) {
        debug_assert!(at >= self.now);
        self.queue.schedule(at, payload);
    }

    /// Delivers the next event to `world`. Returns `false` when the queue
    /// is empty (the simulation is quiescent).
    pub fn step(&mut self, world: &mut W) -> bool {
        let Some((time, payload)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(time >= self.now, "event queue went backwards");
        self.now = time;
        self.handled += 1;
        let mut sched = Scheduler {
            queue: &mut self.queue,
            now: time,
        };
        world.handle(&mut sched, payload);
        true
    }

    /// Runs until the queue is empty; returns the final virtual time.
    ///
    /// `max_events` is a runaway guard: a protocol bug that schedules
    /// events forever produces a panic with a diagnostic rather than a
    /// silent hang.
    pub fn run_to_quiescence(&mut self, world: &mut W, max_events: u64) -> Time {
        let (now, exhausted) = self.run_bounded(world, max_events);
        if exhausted {
            panic!(
                "simulation exceeded {max_events} events at t={now} — \
                 likely a protocol livelock"
            );
        }
        now
    }

    /// Like [`Engine::run_to_quiescence`], but hands the budget decision
    /// back to the embedder: returns `(final_time, exhausted)` where
    /// `exhausted` is true when `max_events` were delivered with the
    /// queue still non-empty. A fault-injecting embedder treats an
    /// exhausted budget as a watchdog trip (typed error on the
    /// unfinished work) rather than a panic.
    pub fn run_bounded(&mut self, world: &mut W, max_events: u64) -> (Time, bool) {
        while self.step(world) {
            if self.handled > max_events {
                return (self.now, true);
            }
        }
        (self.now, false)
    }

    /// True when no events are pending.
    pub fn is_quiescent(&self) -> bool {
        self.queue.is_empty()
    }

    /// Resets the engine to virtual time 0 with an empty queue,
    /// retaining the queue's internal capacity. A reset engine is
    /// indistinguishable from a fresh one, so embedders that run many
    /// short simulations (parameter sweeps) can recycle one engine
    /// instead of re-growing the event arena per run.
    pub fn reset(&mut self) {
        self.queue.reset();
        self.now = 0;
        self.handled = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A world that counts down: event `n` schedules event `n-1` after
    /// 10 ns, until 0.
    struct Countdown {
        seen: Vec<(Time, u32)>,
    }

    impl World for Countdown {
        type Event = u32;
        fn handle(&mut self, sched: &mut Scheduler<'_, u32>, ev: u32) {
            self.seen.push((sched.now(), ev));
            if ev > 0 {
                sched.after(10, ev - 1);
            }
        }
    }

    #[test]
    fn countdown_runs_to_quiescence() {
        let mut eng = Engine::new();
        let mut w = Countdown { seen: vec![] };
        eng.seed(5, 3);
        let end = eng.run_to_quiescence(&mut w, 1_000);
        assert_eq!(end, 35);
        assert_eq!(w.seen, vec![(5, 3), (15, 2), (25, 1), (35, 0)]);
        assert!(eng.is_quiescent());
        assert_eq!(eng.handled(), 4);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut eng = Engine::new();
            let mut w = Countdown { seen: vec![] };
            eng.seed(0, 10);
            eng.seed(3, 2);
            eng.run_to_quiescence(&mut w, 1_000);
            w.seen
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "livelock")]
    fn runaway_guard_trips() {
        struct Forever;
        impl World for Forever {
            type Event = ();
            fn handle(&mut self, sched: &mut Scheduler<'_, ()>, _: ()) {
                sched.after(1, ());
            }
        }
        let mut eng = Engine::new();
        eng.seed(0, ());
        eng.run_to_quiescence(&mut Forever, 100);
    }

    #[test]
    fn step_on_empty_queue_returns_false() {
        let mut eng: Engine<Countdown> = Engine::new();
        let mut w = Countdown { seen: vec![] };
        assert!(!eng.step(&mut w));
        assert_eq!(eng.now(), 0);
    }
}
