//! Two-level paged sparse-dense tables.
//!
//! The dense per-direction fabric tables of DESIGN.md §12 index state
//! by `src * n + dst`: one flat `Vec` entry per ordered node pair.
//! That is O(n²) memory in rank count whether or not a pair ever
//! communicates — an 8-node testbed does not notice, a 4096-rank
//! Alltoall cannot even be constructed. [`PagedTable`] keeps the dense
//! tables' two load-bearing properties — *one indexed load per lookup*
//! and *defaults encoding absent-entry semantics* — while making
//! memory proportional to **touched** entries:
//!
//! * the key space is split into fixed-size pages of [`PAGE`] entries;
//!   the spine is a `Vec<Option<Box<[T]>>>` with one pointer per page,
//! * a page materializes on **first mutable touch**, filled with the
//!   table's default value; reads of untouched keys return a shared
//!   default instance, exactly the behaviour a dense table of defaults
//!   exhibits,
//! * the steady state allocates nothing: after the first touch a page
//!   is warm and `get_mut` is two indexed loads (spine, then slot).
//!
//! With `src * n + dst` keys a page covers [`PAGE`] consecutive
//! destinations of one source, so a sparse communication pattern
//! (ring, halo, nearest-neighbour) touches O(active pairs / PAGE)
//! pages and an Alltoall degrades gracefully to the dense layout plus
//! one pointer indirection. [`PagedTable::heap_bytes`] reports the
//! materialized footprint so scaling figures can plot memory against
//! *active* pairs rather than n².

use std::alloc::Layout;
use std::cell::RefCell;
use std::fmt;
use std::ptr::NonNull;

/// Entries per page. 64 keeps a page of word-sized entries inside a
/// few cache lines and makes the slot index a single 6-bit mask.
pub const PAGE: usize = 64;

/// Per-thread spare list of dropped page allocations, keyed by layout.
///
/// A parameter sweep builds one short-lived world per point, and every
/// world re-materializes the same handful of pages on first touch —
/// the last fixed per-iteration allocation burst after the payload
/// slabs and scratch buffers were pooled. Pages hold *typed* entries,
/// so the spare stores raw memory only: entries are dropped before a
/// page is stashed and rewritten before it is reused, and two tables
/// with different entry types can swap allocations as long as the
/// layouts (size *and* alignment) match exactly.
struct SparePages(Vec<(Layout, NonNull<u8>)>);

impl Drop for SparePages {
    fn drop(&mut self) {
        for (layout, ptr) in self.0.drain(..) {
            // SAFETY: every stashed pointer was allocated by the
            // global allocator with exactly this layout (see
            // `stash_page`).
            unsafe { std::alloc::dealloc(ptr.as_ptr(), layout) };
        }
    }
}

thread_local! {
    static PAGE_SPARE: RefCell<SparePages> = const { RefCell::new(SparePages(Vec::new())) };
}

/// Spare-list bound: pages are a few KiB each, so this caps idle spare
/// memory per thread at a few hundred KiB.
const PAGE_SPARE_CAP: usize = 128;

/// The allocation layout of one page, or `None` for zero-sized entries
/// (which never hit the allocator and are not pooled).
fn page_layout<T>() -> Option<Layout> {
    if std::mem::size_of::<T>() == 0 {
        return None;
    }
    Layout::array::<T>(PAGE).ok()
}

/// Builds a default-filled page, reusing a recycled allocation of the
/// same layout when one is available.
fn make_page<T>(default: &T, make: fn(&T) -> T) -> Box<[T]> {
    if let Some(layout) = page_layout::<T>() {
        let spare = PAGE_SPARE
            .try_with(|s| {
                let mut s = s.borrow_mut();
                s.0.iter()
                    .position(|&(l, _)| l == layout)
                    .map(|i| s.0.swap_remove(i).1)
            })
            .ok()
            .flatten();
        if let Some(ptr) = spare {
            let ptr = ptr.as_ptr() as *mut T;
            // SAFETY: the allocation came from the global allocator
            // with exactly `layout == Layout::array::<T>(PAGE)` —
            // size and alignment both match — and every slot is
            // initialized before the box is assembled. A panicking
            // `make` leaks the allocation and the slots written so
            // far, which is safe, merely wasteful.
            unsafe {
                for i in 0..PAGE {
                    ptr.add(i).write(make(default));
                }
                return Box::from_raw(std::ptr::slice_from_raw_parts_mut(ptr, PAGE));
            }
        }
    }
    (0..PAGE).map(|_| make(default)).collect()
}

/// Drops a page's entries and stashes its allocation for reuse.
fn stash_page<T>(page: Box<[T]>) {
    let Some(layout) = page_layout::<T>() else {
        return;
    };
    debug_assert_eq!(page.len(), PAGE);
    let raw: *mut [T] = Box::into_raw(page);
    // SAFETY: the box is owned here; the entries are dropped exactly
    // once, after which the allocation is plain raw memory. A panic in
    // an entry's Drop leaks the allocation — safe, merely wasteful.
    unsafe { std::ptr::drop_in_place(raw) };
    let ptr = NonNull::new(raw as *mut u8).expect("box pointer is non-null");
    let kept = PAGE_SPARE
        .try_with(|s| {
            let mut s = s.borrow_mut();
            if s.0.len() < PAGE_SPARE_CAP {
                s.0.push((layout, ptr));
                true
            } else {
                false
            }
        })
        .unwrap_or(false);
    if !kept {
        // SAFETY: allocated by the global allocator with `layout`.
        unsafe { std::alloc::dealloc(ptr.as_ptr(), layout) };
    }
}

const PAGE_SHIFT: u32 = PAGE.trailing_zeros();
const PAGE_MASK: usize = PAGE - 1;

/// A sparse-dense table over a fixed key space `0..len`, paged in
/// blocks of [`PAGE`] entries allocated on first mutable touch. See
/// the module docs.
pub struct PagedTable<T> {
    /// One slot per page; `None` until the page is touched.
    pages: Vec<Option<Box<[T]>>>,
    /// Value untouched entries read as, and pages fill with.
    default: T,
    /// Factory producing one default entry (clones `default` for
    /// `with_fill` tables, calls `T::default` for `new` tables).
    make: fn(&T) -> T,
    /// Key-space size.
    len: usize,
    /// Materialized pages (monotone; pages are never released).
    live_pages: usize,
}

impl<T: fmt::Debug> fmt::Debug for PagedTable<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PagedTable")
            .field("len", &self.len)
            .field("pages", &self.live_pages)
            .field("of", &self.pages.len())
            .field("default", &self.default)
            .finish()
    }
}

impl<T: Default> PagedTable<T> {
    /// An empty table over keys `0..len` whose absent entries read as
    /// `T::default()`.
    pub fn new(len: usize) -> Self {
        Self {
            pages: Vec::new(),
            default: T::default(),
            make: |_| T::default(),
            len,
            live_pages: 0,
        }
    }
}

impl<T: Clone> PagedTable<T> {
    /// An empty table over keys `0..len` whose absent entries read as
    /// `fill` (the dense tables' "defaults encode absent-entry
    /// semantics", for defaults other than `T::default()` — e.g. a
    /// credit pool that starts full).
    pub fn with_fill(len: usize, fill: T) -> Self {
        Self {
            pages: Vec::new(),
            default: fill,
            make: |d| d.clone(),
            len,
            live_pages: 0,
        }
    }
}

impl<T> PagedTable<T> {
    /// Key-space size (the dense table's `len`).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for a zero-length key space.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Shared access to entry `i`. Untouched entries read as the
    /// table default — no page materializes.
    #[inline]
    pub fn get(&self, i: usize) -> &T {
        debug_assert!(i < self.len, "paged index {i} out of {}", self.len);
        match self.pages.get(i >> PAGE_SHIFT) {
            Some(Some(p)) => &p[i & PAGE_MASK],
            _ => &self.default,
        }
    }

    /// Mutable access to entry `i`, materializing its page (filled
    /// with defaults) on first touch. Warm pages allocate nothing.
    #[inline]
    pub fn get_mut(&mut self, i: usize) -> &mut T {
        debug_assert!(i < self.len, "paged index {i} out of {}", self.len);
        let pi = i >> PAGE_SHIFT;
        if self.pages.len() <= pi {
            self.pages.resize_with(pi + 1, || None);
        }
        let slot = &mut self.pages[pi];
        if slot.is_none() {
            *slot = Some(make_page(&self.default, self.make));
            self.live_pages += 1;
        }
        &mut self.pages[pi].as_mut().expect("materialized above")[i & PAGE_MASK]
    }

    /// Mutable access to entry `i` only if its page is already
    /// materialized — probe-without-fault for paths that only act on
    /// state that exists (e.g. draining a queue that was never pushed
    /// to).
    #[inline]
    pub fn get_mut_touched(&mut self, i: usize) -> Option<&mut T> {
        debug_assert!(i < self.len, "paged index {i} out of {}", self.len);
        match self.pages.get_mut(i >> PAGE_SHIFT) {
            Some(Some(p)) => Some(&mut p[i & PAGE_MASK]),
            _ => None,
        }
    }

    /// True when entry `i`'s page is materialized.
    #[inline]
    pub fn touched(&self, i: usize) -> bool {
        matches!(self.pages.get(i >> PAGE_SHIFT), Some(Some(_)))
    }

    /// Iterates `(index, &entry)` over materialized pages only —
    /// untouched entries (which read as defaults) are skipped, so a
    /// sweep over a sparse table is O(touched), not O(len).
    pub fn iter_touched(&self) -> impl Iterator<Item = (usize, &T)> {
        self.pages
            .iter()
            .enumerate()
            .filter_map(|(pi, p)| p.as_ref().map(|p| (pi, p)))
            .flat_map(|(pi, p)| {
                p.iter()
                    .enumerate()
                    .map(move |(s, e)| ((pi << PAGE_SHIFT) + s, e))
            })
    }

    /// Iterates `(index, &mut entry)` over materialized pages only.
    pub fn iter_touched_mut(&mut self) -> impl Iterator<Item = (usize, &mut T)> {
        self.pages
            .iter_mut()
            .enumerate()
            .filter_map(|(pi, p)| p.as_mut().map(|p| (pi, p)))
            .flat_map(|(pi, p)| {
                p.iter_mut()
                    .enumerate()
                    .map(move |(s, e)| ((pi << PAGE_SHIFT) + s, e))
            })
    }

    /// Applies `f` to every entry of every materialized page, leaving
    /// the pages in place. With `f` restoring entries to the table's
    /// default value (possibly keeping their heap capacity — e.g.
    /// clearing a queue rather than replacing it), the table afterwards
    /// *reads* exactly like a fresh one: untouched keys still return
    /// the shared default, and warm pages hand back default-valued
    /// entries without allocating. Used by world recycling.
    pub fn reset_entries(&mut self, mut f: impl FnMut(&mut T)) {
        for page in self.pages.iter_mut().flatten() {
            for e in page.iter_mut() {
                f(e);
            }
        }
    }

    /// Number of materialized pages.
    pub fn pages_touched(&self) -> usize {
        self.live_pages
    }

    /// Heap bytes held by materialized pages and the spine (entry
    /// payloads' own heap allocations are not included — this is the
    /// table's structural footprint, the term that used to be O(n²)).
    pub fn heap_bytes(&self) -> usize {
        self.pages.capacity() * std::mem::size_of::<Option<Box<[T]>>>()
            + self.live_pages * PAGE * std::mem::size_of::<T>()
    }
}

impl<T> Drop for PagedTable<T> {
    fn drop(&mut self) {
        for page in self.pages.drain(..).flatten() {
            stash_page(page);
        }
    }
}

impl<T> std::ops::Index<usize> for PagedTable<T> {
    type Output = T;
    #[inline]
    fn index(&self, i: usize) -> &T {
        self.get(i)
    }
}

impl<T> std::ops::IndexMut<usize> for PagedTable<T> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut T {
        self.get_mut(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_reads_are_defaults_and_allocate_no_pages() {
        let t: PagedTable<u64> = PagedTable::new(1 << 20);
        assert_eq!(t.len(), 1 << 20);
        assert_eq!(*t.get(0), 0);
        assert_eq!(*t.get((1 << 20) - 1), 0);
        assert_eq!(t.pages_touched(), 0);
        assert_eq!(t.heap_bytes(), 0);
    }

    #[test]
    fn first_touch_materializes_one_page() {
        let mut t: PagedTable<u64> = PagedTable::new(1 << 20);
        *t.get_mut(70) = 7;
        assert_eq!(t.pages_touched(), 1);
        assert_eq!(*t.get(70), 7);
        // Same page: no new materialization.
        *t.get_mut(64) = 9;
        assert_eq!(t.pages_touched(), 1);
        // Untouched neighbours on the same page read as default.
        assert_eq!(*t.get(65), 0);
        // A far key materializes its own page only.
        *t.get_mut(1 << 19) = 1;
        assert_eq!(t.pages_touched(), 2);
    }

    #[test]
    fn with_fill_reads_and_fills_with_custom_default() {
        let mut t: PagedTable<u32> = PagedTable::with_fill(256, 16);
        assert_eq!(*t.get(3), 16, "untouched probe reads the fill");
        *t.get_mut(3) -= 1;
        assert_eq!(*t.get(3), 15);
        assert_eq!(*t.get(4), 16, "page fill uses the custom default");
    }

    #[test]
    fn index_sugar_matches_get() {
        let mut t: PagedTable<u64> = PagedTable::new(128);
        t[5] += 3;
        t[5] += 4;
        assert_eq!(t[5], 7);
        assert_eq!(t[6], 0);
    }

    #[test]
    fn get_mut_touched_never_faults_pages() {
        let mut t: PagedTable<Vec<u32>> = PagedTable::new(1024);
        assert!(t.get_mut_touched(100).is_none());
        assert_eq!(t.pages_touched(), 0);
        t.get_mut(100).push(1);
        assert_eq!(t.get_mut_touched(100).unwrap().as_slice(), &[1]);
        assert!(t.get_mut_touched(700).is_none());
        assert_eq!(t.pages_touched(), 1);
    }

    #[test]
    fn iter_touched_skips_unmaterialized_pages() {
        let mut t: PagedTable<u64> = PagedTable::new(4096);
        *t.get_mut(1) = 10;
        *t.get_mut(130) = 20;
        let set: Vec<(usize, u64)> = t
            .iter_touched()
            .filter(|&(_, &v)| v != 0)
            .map(|(i, &v)| (i, v))
            .collect();
        assert_eq!(set, vec![(1, 10), (130, 20)]);
        // Two pages × PAGE entries visited, not 4096.
        assert_eq!(t.iter_touched().count(), 2 * PAGE);
    }

    #[test]
    fn matches_dense_vec_oracle_under_random_churn() {
        // Deterministic xorshift over a 2^14 key space: interleave
        // writes, reads, and full scans against a Vec oracle.
        let mut s: u64 = 0x1234_5678_9ABC_DEF0;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        const N: usize = 1 << 14;
        let mut paged: PagedTable<u64> = PagedTable::new(N);
        let mut dense = vec![0u64; N];
        for _ in 0..20_000 {
            let r = rng();
            let i = (r >> 8) as usize % N;
            match r % 3 {
                0 => {
                    let v = r >> 32;
                    *paged.get_mut(i) = v;
                    dense[i] = v;
                }
                1 => {
                    *paged.get_mut(i) += 1;
                    dense[i] += 1;
                }
                _ => assert_eq!(*paged.get(i), dense[i]),
            }
        }
        for (i, &v) in dense.iter().enumerate() {
            assert_eq!(*paged.get(i), v, "key {i}");
        }
        // Sparse access (≤ 20k touches of random keys) must not have
        // materialized anywhere near the full key space... but with
        // 2^14 keys and 2^8 pages it will have. Just bound sanity:
        assert!(paged.pages_touched() <= N / PAGE);
    }

    #[test]
    fn dropped_pages_are_recycled_across_tables() {
        // Warm the spare with one table's pages, then confirm a fresh
        // table of a *different* entry type with the same page layout
        // behaves identically (the spare hands out raw memory only).
        let mut a: PagedTable<u64> = PagedTable::new(1024);
        for i in 0..1024 {
            *a.get_mut(i) = i as u64 + 1;
        }
        drop(a);
        let mut b: PagedTable<i64> = PagedTable::new(1024);
        for i in 0..1024 {
            assert_eq!(*b.get(i), 0, "untouched entries read the default");
            *b.get_mut(i) = -(i as i64);
        }
        for i in 0..1024 {
            assert_eq!(*b.get(i), -(i as i64));
        }
        // Entry types with heap payloads round-trip too (drops run at
        // stash time, defaults are rebuilt at reuse time).
        drop(b);
        let mut c: PagedTable<Vec<u64>> = PagedTable::new(256);
        c.get_mut(7).push(9);
        assert_eq!(c.get(7).as_slice(), &[9]);
        assert!(c.get(8).is_empty());
    }

    #[test]
    fn sparse_pattern_memory_is_sublinear_in_key_space() {
        // A ring pattern over src*n+dst keys: n ranks each touching 2
        // neighbours. Memory must scale with active pairs, not n².
        let n = 1024usize;
        let mut t: PagedTable<u64> = PagedTable::new(n * n);
        for r in 0..n {
            for d in [(r + 1) % n, (r + n - 1) % n] {
                *t.get_mut(r * n + d) = 1;
            }
        }
        let dense_bytes = n * n * std::mem::size_of::<u64>();
        assert!(
            t.heap_bytes() < dense_bytes / 4,
            "paged {} vs dense {}",
            t.heap_bytes(),
            dense_bytes
        );
        assert!(t.pages_touched() <= 3 * n);
    }
}
