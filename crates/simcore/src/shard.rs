//! Deterministic sharded execution of one large simulation.
//!
//! The sweep machinery in `ibdt-workloads` fans *independent*
//! simulations across cores. This module parallelizes *inside* a
//! single simulation, which determinism normally rules out — unless
//! the partition is conservative:
//!
//! * ranks are partitioned into **shards**, each owning its ranks'
//!   event state;
//! * execution proceeds in **windows** `[B, B + L)` where `B` is the
//!   global minimum pending event time and `L` is the **lookahead**:
//!   a lower bound on the latency of any cross-rank interaction (link
//!   propagation + first byte on the wire — see DESIGN.md §14 for the
//!   proof sketch);
//! * within a window every shard runs its local events independently
//!   — safe because a message sent at `t ≥ B` cannot take effect
//!   before `t + L ≥ B + L`, i.e. outside the window;
//! * at the window barrier all cross-shard messages are exchanged,
//!   merged in fixed shard order, and the next window begins.
//!
//! Results are **bit-identical across shard and thread counts** under
//! two obligations the [`ShardWorld`] implementor carries:
//!
//! 1. events must be ordered by a partition-independent key —
//!    `(time, src_rank, per-source seq)` — never by a shard-local
//!    insertion counter, so the local order each shard computes is a
//!    restriction of one global total order;
//! 2. *every* cross-rank interaction is charged the lookahead, even
//!    when both ranks share a shard — shard-locality must not be
//!    observable.
//!
//! Thread count then only changes which worker advances which shard;
//! each shard's window is a pure function of its state and the merged
//! inbox, so the outcome is the sequential outcome.

use crate::time::Time;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

/// Runs `f(0..n)` across `threads` workers, returning results in index
/// order. Workers claim indices through an atomic cursor and write
/// each result through that index's own slot — the per-slot-lock
/// idiom of `workloads::run_sweep`, extracted so the shard driver and
/// the sweep share one implementation. A worker panic propagates to
/// the caller unchanged.
pub fn run_indexed<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    // A slot's lock is only taken by the worker that claimed its
    // index, never across a call to `f`: uncontended, cannot
    // cross-poison.
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let panic_payload = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(i);
                    *slots[i].lock().expect("slot lock never held across f") = Some(r);
                })
            })
            .collect();
        // Join explicitly, keeping the first panic payload so the
        // original panic (not a scope-generated one) reaches the
        // caller.
        let mut payload = None;
        for h in handles {
            if let Err(p) = h.join() {
                payload.get_or_insert(p);
            }
        }
        payload
    });
    if let Some(p) = panic_payload {
        std::panic::resume_unwind(p);
    }
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot lock unpoisoned")
                .expect("every slot filled")
        })
        .collect()
}

/// One shard of a partitioned simulation: owns the event state of its
/// ranks and exchanges cross-shard messages at window barriers.
pub trait ShardWorld: Send {
    /// Cross-shard message payload. Must carry enough key material
    /// (arrival time, source rank, per-source sequence) for the
    /// receiving shard to order it into its partition-independent
    /// total order.
    type Msg: Send;

    /// Earliest pending local event time, or `None` when the shard is
    /// quiescent (pending messages in flight at a barrier do not
    /// count — they are delivered before the next call).
    fn next_time(&self) -> Option<Time>;

    /// Runs every local event with `time < horizon`, in
    /// partition-independent key order. Cross-shard sends go through
    /// `send(dst_shard, msg)`; each such message's effect time must be
    /// `≥ event_time + lookahead` (the conservative contract).
    fn advance(&mut self, horizon: Time, send: &mut dyn FnMut(usize, Self::Msg));

    /// Accepts one message exchanged at a window barrier. Called only
    /// between `advance` windows; delivery order across sources is
    /// not specified — ordering is the receiver's job (obligation 1
    /// in the module docs).
    fn deliver(&mut self, msg: Self::Msg);
}

/// Drives a set of [`ShardWorld`]s to quiescence in conservative
/// lookahead windows, using `threads` persistent workers.
pub struct ShardSim<W: ShardWorld> {
    shards: Vec<W>,
    lookahead: Time,
    threads: usize,
    rounds: u64,
}

impl<W: ShardWorld> ShardSim<W> {
    /// `lookahead` is the minimum cross-rank latency in virtual ns
    /// (clamped to ≥ 1: a zero lookahead would make every window
    /// empty). `threads` is the worker count; 1 runs sequentially.
    pub fn new(shards: Vec<W>, lookahead: Time, threads: usize) -> Self {
        Self {
            shards,
            lookahead: lookahead.max(1),
            threads: threads.max(1),
            rounds: 0,
        }
    }

    /// Barrier rounds (windows) executed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Consumes the driver, returning the shards for result
    /// extraction.
    pub fn into_shards(self) -> Vec<W> {
        self.shards
    }

    /// Runs to global quiescence; returns the number of windows.
    pub fn run(&mut self) -> u64 {
        let n = self.shards.len();
        if n == 0 {
            return 0;
        }
        let threads = self.threads.min(n);
        if threads == 1 {
            self.run_sequential()
        } else {
            self.run_parallel(threads)
        }
    }

    /// The reference order: same windows, same merge, one thread.
    fn run_sequential(&mut self) -> u64 {
        let mut outbox: Vec<(usize, W::Msg)> = Vec::new();
        while let Some(base) = self.shards.iter().filter_map(|s| s.next_time()).min() {
            let horizon = base.saturating_add(self.lookahead);
            for shard in &mut self.shards {
                shard.advance(horizon, &mut |dst, msg| outbox.push((dst, msg)));
            }
            for (dst, msg) in outbox.drain(..) {
                self.shards[dst].deliver(msg);
            }
            self.rounds += 1;
        }
        self.rounds
    }

    /// Persistent-worker loop: the coordinator (this thread) computes
    /// each window and merges outboxes; workers claim shards through
    /// an atomic cursor between two barriers per round. Workers are
    /// spawned once, not per window — windows are short and numerous.
    fn run_parallel(&mut self, threads: usize) -> u64 {
        let n = self.shards.len();
        let lookahead = self.lookahead;
        // Coordinator + workers meet at each barrier.
        let barrier = Barrier::new(threads + 1);
        let cursor = AtomicUsize::new(0);
        let horizon = AtomicU64::new(0);
        // u64::MAX horizon = shutdown signal.
        const STOP: u64 = u64::MAX;
        let cells: Vec<Mutex<&mut W>> = self.shards.iter_mut().map(Mutex::new).collect();
        type Outbox<M> = Mutex<Vec<(usize, M)>>;
        let outboxes: Vec<Outbox<W::Msg>> = (0..n).map(|_| Mutex::new(Vec::new())).collect();
        let mut rounds = 0u64;
        let panic_payload = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| loop {
                        barrier.wait(); // window opens
                        let h = horizon.load(Ordering::Acquire);
                        if h == STOP {
                            break;
                        }
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            // Claimed exactly once per window:
                            // uncontended locks.
                            let mut shard = cells[i].lock().expect("shard lock");
                            let mut ob = outboxes[i].lock().expect("outbox lock");
                            shard.advance(h, &mut |dst, msg| ob.push((dst, msg)));
                        }
                        barrier.wait(); // window closes
                    })
                })
                .collect();
            loop {
                // Between barriers the coordinator is the only thread
                // touching shard state — locks are uncontended.
                let base = cells
                    .iter()
                    .filter_map(|c| c.lock().expect("shard lock").next_time())
                    .min();
                let Some(base) = base else {
                    horizon.store(STOP, Ordering::Release);
                    barrier.wait();
                    break;
                };
                // STOP is unreachable as a real horizon: it would
                // need a pending event at u64::MAX - lookahead + 1.
                let h = base.saturating_add(lookahead).min(STOP - 1);
                cursor.store(0, Ordering::Relaxed);
                horizon.store(h, Ordering::Release);
                barrier.wait(); // open window: workers advance shards
                barrier.wait(); // close window: outboxes complete
                                // Merge in fixed shard order. Receivers re-key, so
                                // only the *set* delivered before the next window
                                // matters, but a fixed order keeps this auditable.
                for ob in &outboxes {
                    let mut ob = ob.lock().expect("outbox lock");
                    for (dst, msg) in ob.drain(..) {
                        cells[dst].lock().expect("shard lock").deliver(msg);
                    }
                }
                rounds += 1;
            }
            let mut payload = None;
            for h in handles {
                if let Err(p) = h.join() {
                    payload.get_or_insert(p);
                }
            }
            payload
        });
        if let Some(p) = panic_payload {
            std::panic::resume_unwind(p);
        }
        self.rounds += rounds;
        self.rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn run_indexed_matches_serial_and_orders_results() {
        let f = |i: usize| -> u64 {
            let mut acc = i as u64;
            for _ in 0..500 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        };
        let serial: Vec<u64> = (0..64).map(f).collect();
        assert_eq!(run_indexed(64, 8, f), serial);
        assert_eq!(run_indexed(64, 1, f), serial);
        assert!(run_indexed(0, 8, |_| 0u8).is_empty());
    }

    #[test]
    fn run_indexed_propagates_worker_panic() {
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_indexed(32, 4, |i| {
                if i == 13 {
                    panic!("boom at 13");
                }
                i
            })
        }))
        .expect_err("panic must propagate");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .expect("payload is a string");
        assert!(msg.contains("boom at 13"), "got: {msg}");
    }

    /// A toy conservative world: each shard owns a set of ranks; each
    /// rank relays a token around the full rank ring `hops` times.
    /// Event key is (time, src_rank, seq) — partition-independent —
    /// and every cross-rank hop is charged `LOOKAHEAD`.
    const LOOKAHEAD: Time = 100;

    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    struct Ev {
        time: Time,
        src: u32,
        seq: u64,
        hops_left: u32,
    }

    struct RingShard {
        ranks: Vec<u32>,
        nranks: u32,
        nshards: usize,
        // Min-heap via Reverse on the full partition-independent key.
        pending: BinaryHeap<std::cmp::Reverse<Ev>>,
        log: Vec<(Time, u32, u64)>,
    }

    impl RingShard {
        fn owner(&self, rank: u32) -> usize {
            rank as usize % self.nshards
        }
    }

    impl ShardWorld for RingShard {
        type Msg = Ev;

        fn next_time(&self) -> Option<Time> {
            self.pending.peek().map(|e| e.0.time)
        }

        fn advance(&mut self, horizon: Time, send: &mut dyn FnMut(usize, Ev)) {
            while let Some(e) = self.pending.peek() {
                if e.0.time >= horizon {
                    break;
                }
                let Ev {
                    time,
                    src,
                    seq,
                    hops_left,
                } = self.pending.pop().unwrap().0;
                self.log.push((time, src, seq));
                if hops_left > 0 {
                    let next = (src + 1) % self.nranks;
                    let msg = Ev {
                        time: time + LOOKAHEAD,
                        src: next,
                        seq: seq + 1,
                        hops_left: hops_left - 1,
                    };
                    let dst = self.owner(next);
                    // Shard-locality must be unobservable: even a
                    // same-shard hop goes through the outbox with
                    // full lookahead when it leaves this window.
                    if dst == self.owner(src) && msg.time < horizon {
                        self.pending.push(std::cmp::Reverse(msg));
                    } else {
                        send(dst, msg);
                    }
                }
            }
        }

        fn deliver(&mut self, msg: Ev) {
            self.pending.push(std::cmp::Reverse(msg));
        }
    }

    fn run_ring(nranks: u32, nshards: usize, threads: usize) -> Vec<(Time, u32, u64)> {
        let mut shards: Vec<RingShard> = (0..nshards)
            .map(|s| RingShard {
                ranks: (0..nranks).filter(|r| *r as usize % nshards == s).collect(),
                nranks,
                nshards,
                pending: BinaryHeap::new(),
                log: Vec::new(),
            })
            .collect();
        // Every rank starts one token at t = rank (distinct times so
        // the merged log order is fully determined).
        for r in 0..nranks {
            let s = r as usize % nshards;
            shards[s].pending.push(std::cmp::Reverse(Ev {
                time: r as Time,
                src: r,
                seq: 0,
                hops_left: 12,
            }));
        }
        let mut sim = ShardSim::new(shards, LOOKAHEAD, threads);
        sim.run();
        // Merge per-shard logs into the global (time, src, seq) order.
        let mut all: Vec<(Time, u32, u64)> = sim
            .into_shards()
            .into_iter()
            .flat_map(|s| {
                assert_eq!(s.ranks.len(), s.log.len() / 13);
                s.log
            })
            .collect();
        all.sort_unstable();
        all
    }

    #[test]
    fn ring_identical_across_shard_and_thread_counts() {
        let reference = run_ring(16, 1, 1);
        assert_eq!(reference.len(), 16 * 13);
        for (shards, threads) in [(2, 1), (2, 2), (4, 2), (4, 8), (8, 8), (16, 3)] {
            assert_eq!(
                run_ring(16, shards, threads),
                reference,
                "shards={shards} threads={threads}"
            );
        }
    }

    #[test]
    fn empty_sim_quiesces_immediately() {
        let shards: Vec<RingShard> = Vec::new();
        let mut sim = ShardSim::new(shards, LOOKAHEAD, 8);
        assert_eq!(sim.run(), 0);
    }
}
