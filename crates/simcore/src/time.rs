//! Virtual time.
//!
//! All simulation time is expressed in **virtual nanoseconds** as a plain
//! `u64`. Integer time keeps event ordering exact (no floating-point
//! tie-break surprises) and gives the simulation a horizon of ~584 years,
//! which is comfortably beyond any benchmark run.

/// Virtual time in nanoseconds.
pub type Time = u64;

/// One thousand (`1e3`), handy for microsecond math.
pub const KILO: u64 = 1_000;
/// One million (`1e6`).
pub const MEGA: u64 = 1_000_000;
/// One billion (`1e9`).
pub const GIGA: u64 = 1_000_000_000;

/// Converts microseconds to virtual nanoseconds.
#[inline]
pub const fn us(v: u64) -> Time {
    v * KILO
}

/// Converts milliseconds to virtual nanoseconds.
#[inline]
pub const fn ms(v: u64) -> Time {
    v * MEGA
}

/// Converts seconds to virtual nanoseconds.
#[inline]
pub const fn secs(v: u64) -> Time {
    v * GIGA
}

/// Time to move `bytes` at `bytes_per_sec`, rounded up to a whole
/// nanosecond so that zero-cost transfers cannot be fabricated by
/// rounding.
///
/// Bandwidth figures in this codebase are *decimal* bytes per second
/// (the paper uses MB = 2^20 for message sizes but link rates are
/// conventionally decimal); callers pick the convention via the value
/// they pass.
#[inline]
pub fn transfer_ns(bytes: u64, bytes_per_sec: u64) -> Time {
    if bytes == 0 {
        return 0;
    }
    debug_assert!(bytes_per_sec > 0, "bandwidth must be positive");
    // ceil(bytes * 1e9 / bytes_per_sec) using u128 to avoid overflow.
    let num = bytes as u128 * GIGA as u128;
    let den = bytes_per_sec as u128;
    num.div_ceil(den) as Time
}

/// Formats a virtual time as a human-readable string (`12.345 us`,
/// `3.2 ms`, ...). Intended for reports and debug output.
pub fn fmt_time(t: Time) -> String {
    if t >= GIGA {
        format!("{:.3} s", t as f64 / GIGA as f64)
    } else if t >= MEGA {
        format!("{:.3} ms", t as f64 / MEGA as f64)
    } else if t >= KILO {
        format!("{:.3} us", t as f64 / KILO as f64)
    } else {
        format!("{t} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert_eq!(us(1), 1_000);
        assert_eq!(ms(2), 2_000_000);
        assert_eq!(secs(3), 3_000_000_000);
    }

    #[test]
    fn transfer_zero_bytes_is_free() {
        assert_eq!(transfer_ns(0, 1), 0);
    }

    #[test]
    fn transfer_rounds_up() {
        // 1 byte at 3 bytes/sec = 333,333,333.33.. ns -> rounds up.
        assert_eq!(transfer_ns(1, 3), 333_333_334);
    }

    #[test]
    fn transfer_exact_division() {
        // 1000 bytes at 1 GB/s = 1000 ns exactly.
        assert_eq!(transfer_ns(1_000, GIGA), 1_000);
    }

    #[test]
    fn transfer_large_values_do_not_overflow_internally() {
        // 16 GiB at 1 GB/s: the intermediate product exceeds u64 but the
        // u128 math inside transfer_ns must keep it exact.
        let bytes = 16u64 << 30;
        assert_eq!(transfer_ns(bytes, GIGA), bytes);
    }

    #[test]
    fn fmt_time_picks_scale() {
        assert_eq!(fmt_time(12), "12 ns");
        assert_eq!(fmt_time(12_340), "12.340 us");
        assert_eq!(fmt_time(12_340_000), "12.340 ms");
        assert_eq!(fmt_time(2_500_000_000), "2.500 s");
    }
}
