//! Span traces.
//!
//! A [`Trace`] records labelled `[start, end)` intervals on a resource.
//! The MPI-layer tests use traces to *prove* that the pipelined schemes
//! really overlap host work with network time (e.g. that during a
//! BC-SPUP transfer the sender CPU's `pack` spans intersect the link's
//! transmission spans), rather than trusting the aggregate numbers.

use crate::time::Time;

/// One labelled interval of resource occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Interval start (inclusive), virtual ns.
    pub start: Time,
    /// Interval end (exclusive), virtual ns.
    pub end: Time,
    /// Static label, e.g. `"pack"`, `"wire"`, `"unpack"`.
    pub label: &'static str,
}

impl Span {
    /// True when this span and `other` share at least one instant.
    /// Empty (zero-length) spans overlap nothing.
    pub fn overlaps(&self, other: &Span) -> bool {
        !self.is_empty() && !other.is_empty() && self.start < other.end && other.start < self.end
    }

    /// Span length in nanoseconds.
    pub fn len(&self) -> Time {
        self.end - self.start
    }

    /// True for an empty (zero-length) span.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// An append-only list of spans, recorded in chronological order of
/// reservation.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    spans: Vec<Span>,
}

thread_local! {
    /// Dropped traces spill their span buffers here and fresh traces'
    /// first record takes one back: every traced resource of a
    /// short-lived world (one per sweep point) otherwise pays one
    /// first-record allocation per world.
    static SPARE: std::cell::RefCell<Vec<Vec<Span>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Spare-list bound (a span buffer is ~1.5 KiB at first-record size).
const SPARE_CAP: usize = 64;

impl Drop for Trace {
    fn drop(&mut self) {
        if self.spans.capacity() == 0 {
            return;
        }
        // try_with: thread teardown may have destroyed the spare list.
        let _ = SPARE.try_with(|s| {
            let mut s = s.borrow_mut();
            if s.len() < SPARE_CAP {
                let mut v = std::mem::take(&mut self.spans);
                v.clear();
                s.push(v);
            }
        });
    }
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a span. The first record reserves a block of capacity
    /// up front: traces sit on simulation hot paths (every resource
    /// reservation lands here), so growth must not dribble out one
    /// doubling at a time. A recycled buffer from a dropped trace is
    /// preferred over a fresh allocation.
    pub fn record(&mut self, start: Time, end: Time, label: &'static str) {
        debug_assert!(start <= end, "span must not be inverted");
        if self.spans.capacity() == 0 {
            if let Some(v) = SPARE.try_with(|s| s.borrow_mut().pop()).ok().flatten() {
                self.spans = v;
            }
            if self.spans.capacity() == 0 {
                self.spans.reserve(64);
            }
        }
        self.spans.push(Span { start, end, label });
    }

    /// Clears recorded spans, keeping the buffer's capacity. A reset
    /// trace records exactly like a fresh one — used by world recycling
    /// (one cluster reused across sweep points) so re-tracing a run
    /// allocates nothing.
    pub fn reset(&mut self) {
        self.spans.clear();
    }

    /// All recorded spans.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Spans whose label equals `label`.
    pub fn with_label<'a>(&'a self, label: &'a str) -> impl Iterator<Item = &'a Span> + 'a {
        self.spans.iter().filter(move |s| s.label == label)
    }

    /// Total busy time carried by spans with the given label.
    pub fn busy_with_label(&self, label: &str) -> Time {
        self.with_label(label).map(|s| s.len()).sum()
    }

    /// Total virtual time during which a span from `self` with label `a`
    /// overlaps a span from `other` with label `b`. This is the measure
    /// of pipelining between two resources.
    pub fn overlap_with(&self, a: &str, other: &Trace, b: &str) -> Time {
        let mut total = 0;
        for sa in self.with_label(a) {
            for sb in other.with_label(b) {
                let lo = sa.start.max(sb.start);
                let hi = sa.end.min(sb.end);
                if lo < hi {
                    total += hi - lo;
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_overlap_rules() {
        let a = Span {
            start: 0,
            end: 10,
            label: "a",
        };
        let b = Span {
            start: 5,
            end: 15,
            label: "b",
        };
        let c = Span {
            start: 10,
            end: 20,
            label: "c",
        };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c)); // touching endpoints do not overlap
        assert!(b.overlaps(&c));
    }

    #[test]
    fn label_filter_and_busy() {
        let mut t = Trace::new();
        t.record(0, 10, "pack");
        t.record(10, 30, "wire");
        t.record(30, 35, "pack");
        assert_eq!(t.with_label("pack").count(), 2);
        assert_eq!(t.busy_with_label("pack"), 15);
        assert_eq!(t.busy_with_label("wire"), 20);
        assert_eq!(t.busy_with_label("unpack"), 0);
    }

    #[test]
    fn cross_trace_overlap() {
        let mut cpu = Trace::new();
        cpu.record(0, 10, "pack");
        cpu.record(20, 30, "pack");
        let mut link = Trace::new();
        link.record(5, 25, "wire");
        // pack[0..10] overlaps wire for 5, pack[20..30] overlaps for 5.
        assert_eq!(cpu.overlap_with("pack", &link, "wire"), 10);
    }

    #[test]
    fn no_overlap_for_disjoint_labels() {
        let mut a = Trace::new();
        a.record(0, 100, "x");
        let mut b = Trace::new();
        b.record(0, 100, "y");
        assert_eq!(a.overlap_with("nope", &b, "y"), 0);
        assert_eq!(a.overlap_with("x", &b, "nope"), 0);
    }

    #[test]
    fn zero_length_span() {
        let s = Span {
            start: 5,
            end: 5,
            label: "z",
        };
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        let other = Span {
            start: 0,
            end: 10,
            label: "w",
        };
        assert!(!s.overlaps(&other));
    }
}
