//! Total-ordered event queue: a hierarchical timing wheel.
//!
//! Events are ordered by `(time, seq)` where `seq` is a monotonically
//! increasing insertion counter. Two events scheduled for the same
//! virtual instant are therefore delivered in the order they were
//! scheduled, which makes the whole simulation deterministic without any
//! reliance on heap tie-breaking behaviour.
//!
//! # Structure
//!
//! [`EventQueue`] is a hierarchical timing wheel over the 64-bit virtual
//! clock: 11 levels of 64 slots, level `g` indexed by bit group
//! `time >> 6g & 63`. An event lands on the level of the *highest* 6-bit
//! group in which its time differs from the current clock, so:
//!
//! * level 0 slots each hold exactly one absolute timestamp within the
//!   current 64-tick window — a slot drain is a **batch pop** of every
//!   event at that instant;
//! * higher levels hold coarser future windows and are *cascaded* (their
//!   first slot redistributed to lower levels) only when the clock
//!   reaches them. Each event cascades at most 10 times over the full
//!   64-bit horizon, so schedule and pop are O(1) amortized with a
//!   64-bit occupancy bitmap per level making empty-slot skips a single
//!   `trailing_zeros`.
//!
//! # Tie-break invariant
//!
//! A level-0 slot is sorted by `seq` as it is drained. Sorting on drain
//! (rather than relying on push order) is load-bearing: an event can
//! reach a slot either directly or by cascading from a higher level, and
//! the two paths interleave arbitrarily — push order within a slot is
//! *not* seq order, but the drained batch must be. The heap reference
//! implementation ([`HeapQueue`]) pins this order; the equivalence tests
//! at the bottom of this file and in `tests/proptests.rs` compare the
//! two on random schedules.
//!
//! # Storage
//!
//! Events live in one node arena recycled through an intrusive free
//! list; a slot is the head index of a singly-linked node list. This
//! shape is what makes the queue allocation-free once warm: per-slot
//! `Vec` buckets were measured re-growing forever (capacity left a slot
//! whenever its bucket was drained, so ~3 allocations per churn op),
//! whereas the arena grows to the pending-event high-water once and
//! then every schedule is a free-list pop and every cascade is an O(1)
//! relink that never moves a payload.

use crate::time::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Bits per wheel level; a level spans 64 slots.
const GROUP_BITS: u32 = 6;
/// Levels needed to cover a 64-bit clock: ceil(64 / 6).
const LEVELS: usize = 11;
/// Slots per level.
const SLOTS: usize = 1 << GROUP_BITS;

/// Sentinel "no node" index for the intrusive lists.
const NIL: u32 = u32::MAX;

/// One arena node: an event linked into a wheel slot, or a member of
/// the free list (payload `None`, `next` chaining free nodes).
struct Node<E> {
    time: Time,
    seq: u64,
    next: u32,
    payload: Option<E>,
}

/// A deterministic event queue (hierarchical timing wheel).
///
/// `E` is the caller-defined event payload. The queue never inspects it.
/// Scheduling before the current clock (the time of the last popped
/// event) clamps to the clock, matching the engine's release-mode
/// behaviour.
pub struct EventQueue<E> {
    /// Node arena; freed nodes are recycled through `free`, so the
    /// arena only grows to the pending-event high-water mark.
    nodes: Vec<Node<E>>,
    /// Head of the intrusive free list (`NIL` when empty).
    free: u32,
    /// `LEVELS * SLOTS` list heads; head `g * SLOTS + s` is slot `s`
    /// of level `g`.
    heads: Vec<u32>,
    /// Per-level occupancy bitmap; bit `s` set iff slot `s` non-empty.
    occ: [u64; LEVELS],
    /// Current clock: time of the most recently popped event (or the
    /// base of the most recently cascaded window).
    cur: Time,
    /// Batch of same-timestamp events being drained, sorted by `seq`
    /// descending so `pop()` pops ascending from the back. Persistent
    /// scratch — its capacity converges to the largest batch.
    drain: Vec<(Time, u64, E)>,
    len: usize,
    next_seq: u64,
    scheduled: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            free: NIL,
            heads: vec![NIL; LEVELS * SLOTS],
            occ: [0; LEVELS],
            cur: 0,
            drain: Vec::new(),
            len: 0,
            next_seq: 0,
            scheduled: 0,
        }
    }

    /// Level of the highest 6-bit group in which `t` differs from the
    /// clock; 0 when equal.
    #[inline]
    fn level_of(&self, t: Time) -> usize {
        let d = t ^ self.cur;
        if d == 0 {
            0
        } else {
            ((63 - d.leading_zeros()) / GROUP_BITS) as usize
        }
    }

    #[inline]
    fn bucket(g: usize, t: Time) -> usize {
        g * SLOTS + ((t >> (GROUP_BITS * g as u32)) & (SLOTS as u64 - 1)) as usize
    }

    /// Schedules `payload` for delivery at absolute virtual time `time`.
    pub fn schedule(&mut self, time: Time, payload: E) {
        let t = time.max(self.cur);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.len += 1;
        let g = self.level_of(t);
        let b = Self::bucket(g, t);
        let head = self.heads[b];
        let idx = if self.free != NIL {
            let i = self.free;
            let n = &mut self.nodes[i as usize];
            self.free = n.next;
            n.time = t;
            n.seq = seq;
            n.next = head;
            n.payload = Some(payload);
            i
        } else {
            let i = self.nodes.len();
            assert!(i < NIL as usize, "event arena exceeds u32 indices");
            if self.nodes.capacity() == 0 {
                // One up-front arena block instead of doubling through
                // the first few schedules.
                self.nodes.reserve(64);
            }
            self.nodes.push(Node {
                time: t,
                seq,
                next: head,
                payload: Some(payload),
            });
            i as u32
        };
        self.heads[b] = idx;
        self.occ[g] |= 1 << (b - g * SLOTS);
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        if let Some((t, _, e)) = self.drain.pop() {
            self.len -= 1;
            return Some((t, e));
        }
        loop {
            let g = (0..LEVELS).find(|&g| self.occ[g] != 0)?;
            // Occupied slots never sit "behind" the clock's digit at
            // their level, so the lowest set bit is the earliest slot.
            let s = self.occ[g].trailing_zeros() as usize;
            self.occ[g] &= !(1u64 << s);
            let mut idx = std::mem::replace(&mut self.heads[g * SLOTS + s], NIL);
            if g == 0 {
                // Level-0 slot: every entry shares one absolute time —
                // this is the batch pop. Unlink each node into the
                // persistent drain buffer (returning it to the free
                // list), then sort by seq to restore FIFO across
                // direct-insert and cascade arrival paths.
                debug_assert!(self.drain.is_empty());
                if self.drain.capacity() == 0 {
                    self.drain.reserve(64);
                }
                while idx != NIL {
                    let n = &mut self.nodes[idx as usize];
                    let e = n.payload.take().expect("linked node has payload");
                    self.drain.push((n.time, n.seq, e));
                    let next = n.next;
                    n.next = self.free;
                    self.free = idx;
                    idx = next;
                }
                self.drain.sort_unstable_by_key(|e| std::cmp::Reverse(e.1));
                self.cur = self.drain[0].0;
                let (t, _, e) = self.drain.pop().expect("non-empty batch");
                self.len -= 1;
                return Some((t, e));
            }
            // Cascade: advance the clock to the window base (nothing
            // can exist before it) and redistribute to lower levels —
            // an O(1) relink per node, payloads never move.
            let shift = GROUP_BITS * g as u32;
            // u128 intermediate: shift + GROUP_BITS reaches 66 at the
            // top level, past u64.
            let prefix_mask = !(((1u128 << (shift + GROUP_BITS)) - 1) as u64);
            self.cur = (self.cur & prefix_mask) | ((s as u64) << shift);
            while idx != NIL {
                let t = self.nodes[idx as usize].time;
                let next = self.nodes[idx as usize].next;
                let ng = self.level_of(t);
                debug_assert!(ng < g, "cascade must strictly descend");
                let b = Self::bucket(ng, t);
                self.nodes[idx as usize].next = self.heads[b];
                self.heads[b] = idx;
                self.occ[ng] |= 1 << (b - ng * SLOTS);
                idx = next;
            }
        }
    }

    /// Virtual time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        if let Some(&(t, _, _)) = self.drain.last() {
            return Some(t);
        }
        let g = (0..LEVELS).find(|&g| self.occ[g] != 0)?;
        let s = self.occ[g].trailing_zeros() as usize;
        // Level 0: single timestamp. Higher levels: min over the list.
        let mut idx = self.heads[g * SLOTS + s];
        let mut min = None;
        while idx != NIL {
            let n = &self.nodes[idx as usize];
            min = Some(min.map_or(n.time, |m: Time| m.min(n.time)));
            idx = n.next;
        }
        min
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever scheduled (for statistics).
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Clears the queue back to its initial state — clock at 0, no
    /// pending events, counters zeroed — while retaining the node
    /// arena, slot-head table, and drain scratch capacity. A reset
    /// queue is indistinguishable from a fresh one, so short-lived
    /// simulations can recycle a warm queue without risking replay
    /// divergence.
    pub fn reset(&mut self) {
        self.nodes.clear();
        self.free = NIL;
        self.heads.fill(NIL);
        self.occ = [0; LEVELS];
        self.cur = 0;
        self.drain.clear();
        self.len = 0;
        self.next_seq = 0;
        self.scheduled = 0;
    }
}

/// An entry in the reference heap queue. Ordering is `(time, seq)`; the
/// payload does not participate in ordering.
struct Entry<E> {
    time: Time,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The pre-wheel binary-heap queue, kept as the *reference semantics*
/// for [`EventQueue`]: identical `(time, seq)` delivery order, O(log n)
/// operations. Equivalence tests and the queue microbench compare the
/// two implementations on identical schedules.
pub struct HeapQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
    scheduled: u64,
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            scheduled: 0,
        }
    }

    /// Schedules `payload` for delivery at absolute virtual time `time`.
    pub fn schedule(&mut self, time: Time, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.heap.push(Reverse(Entry { time, seq, payload }));
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.payload))
    }

    /// Virtual time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (for statistics).
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(42, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((42, i)));
        }
    }

    #[test]
    fn peek_time_tracks_minimum() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(7, ());
        q.schedule(3, ());
        assert_eq!(q.peek_time(), Some(3));
        q.pop();
        assert_eq!(q.peek_time(), Some(7));
    }

    #[test]
    fn len_and_counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1, ());
        q.schedule(2, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_scheduled(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.total_scheduled(), 2);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(5, 5);
        q.schedule(1, 1);
        assert_eq!(q.pop(), Some((1, 1)));
        q.schedule(3, 3);
        q.schedule(2, 2);
        assert_eq!(q.pop(), Some((2, 2)));
        assert_eq!(q.pop(), Some((3, 3)));
        assert_eq!(q.pop(), Some((5, 5)));
    }

    #[test]
    fn wide_time_jumps_cascade_correctly() {
        let mut q = EventQueue::new();
        // Spread across many wheel levels, including far horizons.
        let times = [
            u64::MAX - 1,
            1u64 << 40,
            (1 << 40) + 1,
            1 << 13,
            65,
            64,
            63,
            1,
            0,
        ];
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut sorted: Vec<u64> = times.to_vec();
        sorted.sort_unstable();
        for t in sorted {
            let (pt, _) = q.pop().unwrap();
            assert_eq!(pt, t);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn same_time_via_direct_and_cascade_paths_pops_in_seq_order() {
        let mut q = EventQueue::new();
        // Event 0 lands on a high level (far from clock 0); event 1 at
        // the same instant is scheduled after the clock advanced close
        // to it, landing on level 0 directly. Seq order must survive.
        q.schedule(1000, 0u32);
        q.schedule(990, 99);
        assert_eq!(q.pop(), Some((990, 99))); // clock now 990
        q.schedule(1000, 1);
        assert_eq!(q.pop(), Some((1000, 0)));
        assert_eq!(q.pop(), Some((1000, 1)));
    }

    #[test]
    fn schedule_before_clock_clamps_to_clock() {
        let mut q = EventQueue::new();
        q.schedule(100, "a");
        assert_eq!(q.pop(), Some((100, "a")));
        q.schedule(5, "late");
        assert_eq!(q.pop(), Some((100, "late")));
    }

    #[test]
    fn wheel_matches_heap_on_seeded_random_schedule() {
        // Deterministic xorshift; interleaves schedules and pops.
        let mut s: u64 = 0x9E3779B97F4A7C15;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut wheel = EventQueue::new();
        let mut heap = HeapQueue::new();
        let mut clock = 0u64;
        for i in 0..10_000u64 {
            let r = rng();
            if r % 4 == 0 {
                if let Some((tw, ew)) = wheel.pop() {
                    let (th, eh) = heap.pop().unwrap();
                    assert_eq!((tw, ew), (th, eh), "step {i}");
                    clock = tw;
                }
            } else {
                // Mix of near, same-instant, and far-future times.
                let dt = match r % 5 {
                    0 => 0,
                    1 => r % 64,
                    2 => r % 4096,
                    3 => r % (1 << 20),
                    _ => r % (1 << 36),
                };
                wheel.schedule(clock + dt, i);
                heap.schedule(clock + dt, i);
            }
            assert_eq!(wheel.len(), heap.len());
            assert_eq!(wheel.peek_time(), heap.peek_time());
        }
        loop {
            let a = wheel.pop();
            let b = heap.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
