//! Total-ordered event queue.
//!
//! Events are ordered by `(time, seq)` where `seq` is a monotonically
//! increasing insertion counter. Two events scheduled for the same
//! virtual instant are therefore delivered in the order they were
//! scheduled, which makes the whole simulation deterministic without any
//! reliance on heap tie-breaking behaviour.

use crate::time::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An entry in the queue. Ordering is `(time, seq)`; the payload does not
/// participate in ordering.
struct Entry<E> {
    time: Time,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A deterministic event queue.
///
/// `E` is the caller-defined event payload. The queue never inspects it.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
    scheduled: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            scheduled: 0,
        }
    }

    /// Schedules `payload` for delivery at absolute virtual time `time`.
    pub fn schedule(&mut self, time: Time, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.heap.push(Reverse(Entry { time, seq, payload }));
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.payload))
    }

    /// Virtual time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (for statistics).
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(42, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((42, i)));
        }
    }

    #[test]
    fn peek_time_tracks_minimum() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(7, ());
        q.schedule(3, ());
        assert_eq!(q.peek_time(), Some(3));
        q.pop();
        assert_eq!(q.peek_time(), Some(7));
    }

    #[test]
    fn len_and_counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1, ());
        q.schedule(2, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_scheduled(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.total_scheduled(), 2);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(5, 5);
        q.schedule(1, 1);
        assert_eq!(q.pop(), Some((1, 1)));
        q.schedule(3, 3);
        q.schedule(2, 2);
        assert_eq!(q.pop(), Some((2, 2)));
        assert_eq!(q.pop(), Some((3, 3)));
        assert_eq!(q.pop(), Some((5, 5)));
    }
}
