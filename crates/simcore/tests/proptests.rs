//! Randomized property tests of the simulation core, driven by the
//! in-repo deterministic [`ibdt_testkit::Rng`] (the workspace builds
//! offline, so no external property-testing framework is available).

use ibdt_simcore::queue::{EventQueue, HeapQueue};
use ibdt_simcore::resource::SerialResource;
use ibdt_testkit::{cases, Rng};

#[test]
fn queue_is_a_stable_priority_queue() {
    cases(0x51C0_0001, 512, |rng: &mut Rng| {
        // Popping must yield events sorted by time, and ties in the
        // order they were scheduled (stability).
        let n = rng.range_usize(0, 200);
        let times: Vec<u64> = (0..n).map(|_| rng.range_u64(0, 1000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut expect: Vec<(u64, usize)> = times.iter().copied().zip(0..).collect();
        expect.sort_by_key(|&(t, i)| (t, i));
        let mut got = Vec::new();
        while let Some((t, i)) = q.pop() {
            got.push((t, i));
        }
        assert_eq!(got, expect);
    });
}

#[test]
fn queue_interleaved_pops_never_go_backwards() {
    cases(0x51C0_0002, 512, |rng: &mut Rng| {
        let nops = rng.range_usize(1, 300);
        let mut q = EventQueue::new();
        let mut last_popped: Option<u64> = None;
        let mut min_pending: Option<u64> = None;
        for _ in 0..nops {
            let push = rng.chance(0.5);
            let t = rng.range_u64(0, 1000);
            if push {
                // Scheduling into the past relative to the last pop is
                // the caller's bug; keep inputs monotone enough.
                let t = t.max(last_popped.unwrap_or(0));
                q.schedule(t, ());
                min_pending = Some(min_pending.map_or(t, |m: u64| m.min(t)));
            } else if let Some((t, ())) = q.pop() {
                if let Some(lp) = last_popped {
                    assert!(t >= lp, "time went backwards: {t} < {lp}");
                }
                last_popped = Some(t);
                min_pending = q.peek_time();
            }
        }
        if let (Some(mp), Some(pk)) = (min_pending, q.peek_time()) {
            assert_eq!(mp, pk);
        }
    });
}

#[test]
fn timing_wheel_equals_heap_queue_on_random_churn() {
    cases(0x51C0_0004, 512, |rng: &mut Rng| {
        // The wheel replaced the binary heap; every seeded run must
        // stay bit-identical, so the two queues must agree on every
        // pop — time, payload, and FIFO order among ties — under a
        // simulator-shaped mix of schedules and pops, including
        // far-future timers that cross wheel levels and same-tick
        // bursts that stress the tie-break.
        let nops = rng.range_usize(1, 400);
        let mut wheel: EventQueue<u32> = EventQueue::new();
        let mut heap: HeapQueue<u32> = HeapQueue::new();
        let mut clock = 0u64;
        let mut seq = 0u32;
        for _ in 0..nops {
            if rng.chance(0.6) {
                let dt = match rng.range_u64(0, 3) {
                    0 => rng.range_u64(0, 8),          // same-tick burst
                    1 => rng.range_u64(0, 4_096),      // near future
                    _ => rng.range_u64(0, 40_000_000), // far timer
                };
                wheel.schedule(clock + dt, seq);
                heap.schedule(clock + dt, seq);
                seq += 1;
            } else {
                let w = wheel.pop();
                let h = heap.pop();
                assert_eq!(w, h, "queues diverged after {seq} schedules");
                if let Some((t, _)) = w {
                    clock = t;
                }
            }
            assert_eq!(wheel.len(), heap.len());
            assert_eq!(wheel.peek_time(), heap.peek_time());
        }
        // Drain: the full remaining order must match too.
        loop {
            let w = wheel.pop();
            let h = heap.pop();
            assert_eq!(w, h, "queues diverged during drain");
            if w.is_none() {
                break;
            }
        }
    });
}

#[test]
fn serial_resource_is_fifo_and_conserves_busy_time() {
    cases(0x51C0_0003, 512, |rng: &mut Rng| {
        let njobs = rng.range_usize(1, 100);
        let mut r = SerialResource::new("x").with_trace();
        let mut total = 0u64;
        let mut last_finish = 0u64;
        // Submission times must be non-decreasing (as in a DES).
        let mut now = 0u64;
        for _ in 0..njobs {
            let dt = rng.range_u64(0, 10_000);
            let dur = rng.range_u64(0, 500);
            now += dt;
            let fin = r.reserve(now, dur);
            assert!(fin >= now + dur);
            assert!(fin >= last_finish, "FIFO violated");
            assert!(
                fin >= last_finish + dur || last_finish <= now,
                "work overlapped on a serial resource"
            );
            last_finish = fin;
            total += dur;
        }
        assert_eq!(r.total_busy(), total);
        assert_eq!(r.available_at(), last_finish);
        // Trace spans are disjoint and sum to total busy.
        let spans = r.trace().unwrap().spans();
        let sum: u64 = spans.iter().map(|s| s.len()).sum();
        assert_eq!(sum, total);
        for w in spans.windows(2) {
            assert!(w[0].end <= w[1].start, "trace spans overlap");
        }
    });
}
