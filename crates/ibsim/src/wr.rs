//! Work requests, scatter/gather elements, and completions.

use ibdt_memreg::{MemError, Va};
use ibdt_simcore::inline::InlineVec;
use std::fmt;

/// One scatter/gather element: a registered local buffer range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sge {
    /// Local virtual address.
    pub addr: Va,
    /// Length in bytes.
    pub len: u64,
    /// Local protection key of a registration covering the range.
    pub lkey: u32,
}

/// A gather/scatter list. Steady-state posts carry one SGE (wide
/// zero-copy gathers are the exception), so up to four elements live
/// inline in the work request and only longer lists touch the heap;
/// the HCA's `max_sge` cap (checked at post) bounds the spill.
pub type SgeList = InlineVec<Sge, 4>;

/// Send-queue operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opcode {
    /// Channel-semantics send: consumes a receive descriptor at the
    /// destination.
    Send,
    /// One-sided RDMA write to `(remote_addr, rkey)`.
    RdmaWrite,
    /// RDMA write that also consumes a receive descriptor and delivers
    /// 32 bits of immediate data in the remote completion.
    RdmaWriteImm(u32),
    /// One-sided RDMA read from `(remote_addr, rkey)` into the local
    /// scatter list.
    RdmaRead,
}

/// A send work request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendWr {
    /// Caller-chosen identifier, returned in the completion.
    pub wr_id: u64,
    /// Operation.
    pub opcode: Opcode,
    /// Local gather list (source for Send/Write, destination for Read).
    pub sges: SgeList,
    /// Remote address and rkey for RDMA operations.
    pub remote: Option<(Va, u32)>,
    /// Whether a local completion is generated.
    pub signaled: bool,
}

impl SendWr {
    /// Total payload bytes across the gather list.
    pub fn total_len(&self) -> u64 {
        self.sges.iter().map(|s| s.len).sum()
    }
}

/// A receive work request (scatter list for incoming sends).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecvWr {
    /// Caller-chosen identifier, returned in the completion.
    pub wr_id: u64,
    /// Local scatter list.
    pub sges: SgeList,
}

impl RecvWr {
    /// Total capacity of the scatter list.
    pub fn capacity(&self) -> u64 {
        self.sges.iter().map(|s| s.len).sum()
    }
}

/// Completion status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CqeStatus {
    /// Operation completed successfully.
    Success,
    /// A local protection check failed.
    LocalProtection(MemError),
    /// The responder rejected the remote access (bad rkey / bounds).
    RemoteAccess(MemError),
    /// An incoming send overran the receive descriptor's capacity.
    LocalLengthError {
        /// Bytes the sender transmitted.
        sent: u64,
        /// Capacity of the consumed receive descriptor.
        capacity: u64,
    },
    /// The transport retry budget (`retry_cnt`) was exhausted without
    /// an ACK; the queue pair has transitioned to the error state.
    RetryExceeded {
        /// Transmission attempts made (initial + retries).
        attempts: u32,
    },
    /// The receiver kept answering RNR NAK past the `rnr_retry`
    /// budget; the queue pair has transitioned to the error state.
    RnrRetryExceeded {
        /// Delivery attempts made.
        attempts: u32,
    },
    /// The work request was flushed because its queue pair entered the
    /// error state before the request completed.
    FlushErr,
    /// The destination's completion queue was full
    /// ([`cq_depth`](crate::NetConfig::cq_depth)): the completion that
    /// this delivery would have produced could not be queued, so the
    /// queue pair transitioned to the error state (the verbs
    /// `IBV_EVENT_CQ_ERR` behaviour).
    CqOverflow,
}

impl CqeStatus {
    /// True for `Success`.
    pub fn is_ok(&self) -> bool {
        matches!(self, CqeStatus::Success)
    }
}

/// A completion queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cqe {
    /// The peer rank of the queue pair this completion belongs to.
    pub peer: u32,
    /// The `wr_id` of the completed work request.
    pub wr_id: u64,
    /// True for receive-queue completions (incoming send / write-imm).
    pub is_recv: bool,
    /// Bytes transferred (receive completions).
    pub byte_len: u64,
    /// Immediate data, when the completion came from `RdmaWriteImm`.
    pub imm: Option<u32>,
    /// Status.
    pub status: CqeStatus,
}

/// Errors detected synchronously at post time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostError {
    /// Gather/scatter list longer than the HCA supports.
    TooManySges {
        /// Number of SGEs in the request.
        got: usize,
        /// HCA limit.
        max: usize,
    },
    /// A local key failed validation.
    BadLocalKey(MemError),
    /// An RDMA opcode was posted without remote address info.
    MissingRemote,
    /// The destination node does not exist.
    NoSuchPeer {
        /// The requested peer id.
        peer: u32,
    },
    /// The queue pair's send queue is full.
    QueueFull {
        /// Configured depth.
        depth: usize,
    },
    /// The queue pair is in the error state (retry budget exhausted);
    /// no further work requests are accepted until it is torn down.
    QpError {
        /// Peer of the errored queue pair.
        peer: u32,
    },
    /// The queue pair exists but is not in RTS (mid-handshake or
    /// drained); send work requests are not accepted yet.
    QpNotReady {
        /// Peer of the not-yet-ready queue pair.
        peer: u32,
    },
}

impl fmt::Display for PostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PostError::TooManySges { got, max } => {
                write!(f, "{got} SGEs exceeds HCA limit of {max}")
            }
            PostError::BadLocalKey(e) => write!(f, "local key check failed: {e}"),
            PostError::MissingRemote => write!(f, "RDMA work request lacks remote address"),
            PostError::NoSuchPeer { peer } => write!(f, "no such peer {peer}"),
            PostError::QueueFull { depth } => {
                write!(f, "send queue full (depth {depth})")
            }
            PostError::QpError { peer } => {
                write!(f, "queue pair to peer {peer} is in the error state")
            }
            PostError::QpNotReady { peer } => {
                write!(f, "queue pair to peer {peer} is not in RTS")
            }
        }
    }
}

impl std::error::Error for PostError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wr_total_len_sums_sges() {
        let wr = SendWr {
            wr_id: 1,
            opcode: Opcode::Send,
            sges: vec![
                Sge {
                    addr: 0,
                    len: 10,
                    lkey: 1,
                },
                Sge {
                    addr: 100,
                    len: 22,
                    lkey: 1,
                },
            ]
            .into(),
            remote: None,
            signaled: true,
        };
        assert_eq!(wr.total_len(), 32);
    }

    #[test]
    fn recv_capacity() {
        let wr = RecvWr {
            wr_id: 2,
            sges: SgeList::of(Sge {
                addr: 0,
                len: 128,
                lkey: 3,
            }),
        };
        assert_eq!(wr.capacity(), 128);
    }

    #[test]
    fn status_is_ok() {
        assert!(CqeStatus::Success.is_ok());
        assert!(!CqeStatus::LocalLengthError {
            sent: 10,
            capacity: 5
        }
        .is_ok());
    }
}
