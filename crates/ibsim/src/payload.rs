//! Reference-counted payload slabs.
//!
//! Every in-flight [`Transfer`](crate::fabric::Transfer) used to carry a
//! fresh `Vec<u8>`, allocated at post time and freed at delivery — one
//! malloc/free round trip per work request, plus full copies anywhere a
//! payload had to be shared. A [`Payload`] replaces that with a slab
//! handle:
//!
//! * the backing buffer is **pooled**: the last handle returns the
//!   whole `Arc<Slab>` — buffer *and* refcount control block — to a
//!   thread-local free list, and the next gather reuses both, so
//!   steady-state traffic allocates nothing;
//! * the handle is **cheaply cloneable** (`Arc` inside) with byte-range
//!   *views* ([`Payload::view`]), so retransmit queues, NAK replay, and
//!   multi-hop forwarding share one allocation instead of cloning bytes;
//! * scatter reads straight from the slab into the destination
//!   [`AddressSpace`](ibdt_memreg::AddressSpace) — no intermediate
//!   buffer.
//!
//! The pool is deliberately thread-local and unsynchronized: the
//! simulator is single-threaded per world, and tests that run many
//! worlds in parallel each get their own pool. Pool occupancy is
//! bounded ([`MAX_POOLED`]) so pathological bursts don't pin memory.

use std::cell::{Cell, RefCell};
use std::sync::Arc;

/// Maximum number of idle slabs kept per thread.
const MAX_POOLED: usize = 64;

thread_local! {
    static POOL: RefCell<Vec<Arc<Slab>>> = const { RefCell::new(Vec::new()) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static REUSES: Cell<u64> = const { Cell::new(0) };
}

/// Takes a uniquely-owned slab with at least `cap` capacity from the
/// pool, or allocates one. Pooling the whole `Arc` (not just the inner
/// vector) means a steady-state build reuses the control block too —
/// zero heap traffic per payload once the pool is warm.
fn take_slab(cap: usize) -> Arc<Slab> {
    let pooled = POOL.try_with(|p| p.borrow_mut().pop()).ok().flatten();
    match pooled {
        Some(mut a) => {
            REUSES.with(|c| c.set(c.get() + 1));
            // Pooled slabs are only admitted with strong_count == 1
            // and no weak handles, so get_mut always succeeds.
            let s = Arc::get_mut(&mut a).expect("pooled slab is uniquely owned");
            s.0.clear();
            s.0.reserve(cap);
            a
        }
        None => {
            ALLOCS.with(|c| c.set(c.get() + 1));
            Arc::new(Slab(Vec::with_capacity(cap)))
        }
    }
}

/// Backing slab. The last [`Payload`] handle returns the whole
/// `Arc<Slab>` to the thread pool from `Payload::drop`; this `Drop`
/// only runs when the pool is full (or torn down) and the `Arc` truly
/// dies.
#[derive(Debug)]
struct Slab(Vec<u8>);

/// Recycles `a` if it is the sole owner and the pool has room;
/// otherwise lets it drop normally.
fn recycle(a: Arc<Slab>) {
    if Arc::strong_count(&a) == 1 && Arc::weak_count(&a) == 0 {
        // try_with: thread teardown may have destroyed the pool.
        let _ = POOL.try_with(|p| {
            let mut p = p.borrow_mut();
            if p.len() < MAX_POOLED {
                p.push(a);
            }
        });
    }
}

/// A reference-counted, pooled payload buffer with an offset/len view.
///
/// Cloning shares the backing slab; [`Payload::view`] narrows the
/// window without copying. The bytes are immutable once built — the
/// same discipline verbs imposes on a posted buffer.
#[derive(Debug)]
pub struct Payload {
    buf: std::mem::ManuallyDrop<Arc<Slab>>,
    off: usize,
    len: usize,
}

impl Clone for Payload {
    fn clone(&self) -> Self {
        Payload {
            buf: std::mem::ManuallyDrop::new(Arc::clone(&self.buf)),
            off: self.off,
            len: self.len,
        }
    }
}

impl Drop for Payload {
    fn drop(&mut self) {
        // SAFETY: `buf` is taken exactly once, here, and never touched
        // again. ManuallyDrop exists solely so the last handle can move
        // the whole Arc into the slab pool instead of freeing it.
        let a = unsafe { std::mem::ManuallyDrop::take(&mut self.buf) };
        recycle(a);
    }
}

impl Payload {
    fn wrap(a: Arc<Slab>, off: usize, len: usize) -> Payload {
        Payload {
            buf: std::mem::ManuallyDrop::new(a),
            off,
            len,
        }
    }

    /// Builds a payload by filling a pooled slab through `fill`, which
    /// appends exactly the payload bytes to the provided buffer.
    pub fn build<F: FnOnce(&mut Vec<u8>)>(cap: usize, fill: F) -> Payload {
        let mut a = take_slab(cap);
        let s = Arc::get_mut(&mut a).expect("fresh slab is uniquely owned");
        fill(&mut s.0);
        let len = s.0.len();
        Payload::wrap(a, 0, len)
    }

    /// Wraps an existing vector (no pooling on the way in; the buffer
    /// still returns to the pool when the last handle drops).
    pub fn from_vec(v: Vec<u8>) -> Payload {
        let len = v.len();
        Payload::wrap(Arc::new(Slab(v)), 0, len)
    }

    /// Copies a byte slice into a pooled slab.
    pub fn copy_from_slice(bytes: &[u8]) -> Payload {
        Payload::build(bytes.len(), |v| v.extend_from_slice(bytes))
    }

    /// A sub-range view sharing this payload's slab. `off + len` must
    /// be within `self.len()`.
    pub fn view(&self, off: usize, len: usize) -> Payload {
        assert!(
            off.checked_add(len).is_some_and(|end| end <= self.len),
            "payload view [{off}, {off}+{len}) out of range 0..{}",
            self.len
        );
        Payload::wrap(Arc::clone(&self.buf), self.off + off, len)
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf.0[self.off..self.off + self.len]
    }

    /// Bytes in the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `(allocations, pool reuses)` performed by this thread's slab
    /// pool since the last [`Payload::reset_pool_stats`].
    pub fn pool_stats() -> (u64, u64) {
        (ALLOCS.with(Cell::get), REUSES.with(Cell::get))
    }

    /// Zeroes this thread's slab pool counters (bench/test harness).
    pub fn reset_pool_stats() {
        ALLOCS.with(|c| c.set(0));
        REUSES.with(|c| c.set(0));
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Payload {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_read_back() {
        let p = Payload::build(16, |v| v.extend_from_slice(b"hello slab"));
        assert_eq!(p.as_slice(), b"hello slab");
        assert_eq!(p.len(), 10);
        assert!(!p.is_empty());
    }

    #[test]
    fn views_share_without_copying() {
        let p = Payload::copy_from_slice(b"0123456789");
        let v = p.view(2, 5);
        assert_eq!(v.as_slice(), b"23456");
        let vv = v.view(1, 3);
        assert_eq!(vv.as_slice(), b"345");
        // Clones and views point at the same slab.
        let c = p.clone();
        assert_eq!(c.as_slice().as_ptr(), p.as_slice().as_ptr());
        assert_eq!(v.as_slice().as_ptr(), unsafe {
            p.as_slice().as_ptr().add(2)
        });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_view_panics() {
        let p = Payload::copy_from_slice(b"abc");
        let _ = p.view(1, 3);
    }

    #[test]
    fn slabs_recycle_through_the_pool() {
        Payload::reset_pool_stats();
        for _ in 0..10 {
            let p = Payload::build(256, |v| v.extend_from_slice(&[7; 100]));
            drop(p);
        }
        let (allocs, reuses) = Payload::pool_stats();
        assert_eq!(allocs + reuses, 10);
        assert!(
            reuses >= 9,
            "expected near-total reuse, got allocs={allocs} reuses={reuses}"
        );
    }

    #[test]
    fn view_keeps_slab_alive_after_parent_drop() {
        let p = Payload::copy_from_slice(b"keepalive");
        let v = p.view(4, 5);
        drop(p);
        assert_eq!(v.as_slice(), b"alive");
    }
}
