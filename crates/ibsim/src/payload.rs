//! Reference-counted payload slabs.
//!
//! Every in-flight [`Transfer`](crate::fabric::Transfer) used to carry a
//! fresh `Vec<u8>`, allocated at post time and freed at delivery — one
//! malloc/free round trip per work request, plus full copies anywhere a
//! payload had to be shared. A [`Payload`] replaces that with a slab
//! handle:
//!
//! * the backing buffer is **pooled**: freed slabs return to a
//!   thread-local free list and are handed back to the next gather, so
//!   steady-state traffic allocates nothing;
//! * the handle is **cheaply cloneable** (`Arc` inside) with byte-range
//!   *views* ([`Payload::view`]), so retransmit queues, NAK replay, and
//!   multi-hop forwarding share one allocation instead of cloning bytes;
//! * scatter reads straight from the slab into the destination
//!   [`AddressSpace`](ibdt_memreg::AddressSpace) — no intermediate
//!   buffer.
//!
//! The pool is deliberately thread-local and unsynchronized: the
//! simulator is single-threaded per world, and tests that run many
//! worlds in parallel each get their own pool. Pool occupancy is
//! bounded ([`MAX_POOLED`]) so pathological bursts don't pin memory.

use std::cell::{Cell, RefCell};
use std::sync::Arc;

/// Maximum number of idle slabs kept per thread.
const MAX_POOLED: usize = 64;

thread_local! {
    static POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static REUSES: Cell<u64> = const { Cell::new(0) };
}

/// Takes a buffer with at least `cap` capacity from the pool, or
/// allocates one.
fn take_buf(cap: usize) -> Vec<u8> {
    let pooled = POOL
        .try_with(|p| p.borrow_mut().pop())
        .ok()
        .flatten();
    match pooled {
        Some(mut v) => {
            REUSES.with(|c| c.set(c.get() + 1));
            v.clear();
            v.reserve(cap);
            v
        }
        None => {
            ALLOCS.with(|c| c.set(c.get() + 1));
            Vec::with_capacity(cap)
        }
    }
}

/// Backing slab; returns its buffer to the thread pool when the last
/// [`Payload`] handle drops.
#[derive(Debug)]
struct Slab(Vec<u8>);

impl Drop for Slab {
    fn drop(&mut self) {
        let v = std::mem::take(&mut self.0);
        // try_with: thread teardown may have destroyed the pool.
        let _ = POOL.try_with(|p| {
            let mut p = p.borrow_mut();
            if p.len() < MAX_POOLED {
                p.push(v);
            }
        });
    }
}

/// A reference-counted, pooled payload buffer with an offset/len view.
///
/// Cloning shares the backing slab; [`Payload::view`] narrows the
/// window without copying. The bytes are immutable once built — the
/// same discipline verbs imposes on a posted buffer.
#[derive(Debug, Clone)]
pub struct Payload {
    buf: Arc<Slab>,
    off: usize,
    len: usize,
}

impl Payload {
    /// Builds a payload by filling a pooled slab through `fill`, which
    /// appends exactly the payload bytes to the provided buffer.
    pub fn build<F: FnOnce(&mut Vec<u8>)>(cap: usize, fill: F) -> Payload {
        let mut v = take_buf(cap);
        fill(&mut v);
        let len = v.len();
        Payload {
            buf: Arc::new(Slab(v)),
            off: 0,
            len,
        }
    }

    /// Wraps an existing vector (no pooling on the way in; the buffer
    /// still returns to the pool when the last handle drops).
    pub fn from_vec(v: Vec<u8>) -> Payload {
        let len = v.len();
        Payload {
            buf: Arc::new(Slab(v)),
            off: 0,
            len,
        }
    }

    /// Copies a byte slice into a pooled slab.
    pub fn copy_from_slice(bytes: &[u8]) -> Payload {
        Payload::build(bytes.len(), |v| v.extend_from_slice(bytes))
    }

    /// A sub-range view sharing this payload's slab. `off + len` must
    /// be within `self.len()`.
    pub fn view(&self, off: usize, len: usize) -> Payload {
        assert!(
            off.checked_add(len).is_some_and(|end| end <= self.len),
            "payload view [{off}, {off}+{len}) out of range 0..{}",
            self.len
        );
        Payload {
            buf: Arc::clone(&self.buf),
            off: self.off + off,
            len,
        }
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf.0[self.off..self.off + self.len]
    }

    /// Bytes in the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `(allocations, pool reuses)` performed by this thread's slab
    /// pool since the last [`Payload::reset_pool_stats`].
    pub fn pool_stats() -> (u64, u64) {
        (ALLOCS.with(Cell::get), REUSES.with(Cell::get))
    }

    /// Zeroes this thread's slab pool counters (bench/test harness).
    pub fn reset_pool_stats() {
        ALLOCS.with(|c| c.set(0));
        REUSES.with(|c| c.set(0));
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Payload {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_read_back() {
        let p = Payload::build(16, |v| v.extend_from_slice(b"hello slab"));
        assert_eq!(p.as_slice(), b"hello slab");
        assert_eq!(p.len(), 10);
        assert!(!p.is_empty());
    }

    #[test]
    fn views_share_without_copying() {
        let p = Payload::copy_from_slice(b"0123456789");
        let v = p.view(2, 5);
        assert_eq!(v.as_slice(), b"23456");
        let vv = v.view(1, 3);
        assert_eq!(vv.as_slice(), b"345");
        // Clones and views point at the same slab.
        let c = p.clone();
        assert_eq!(c.as_slice().as_ptr(), p.as_slice().as_ptr());
        assert_eq!(v.as_slice().as_ptr(), unsafe { p.as_slice().as_ptr().add(2) });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_view_panics() {
        let p = Payload::copy_from_slice(b"abc");
        let _ = p.view(1, 3);
    }

    #[test]
    fn slabs_recycle_through_the_pool() {
        Payload::reset_pool_stats();
        for _ in 0..10 {
            let p = Payload::build(256, |v| v.extend_from_slice(&[7; 100]));
            drop(p);
        }
        let (allocs, reuses) = Payload::pool_stats();
        assert_eq!(allocs + reuses, 10);
        assert!(
            reuses >= 9,
            "expected near-total reuse, got allocs={allocs} reuses={reuses}"
        );
    }

    #[test]
    fn view_keeps_slab_alive_after_parent_drop() {
        let p = Payload::copy_from_slice(b"keepalive");
        let v = p.view(4, 5);
        drop(p);
        assert_eq!(v.as_slice(), b"alive");
    }
}
