//! The backend-neutral transport abstraction.
//!
//! [`Fabric`]'s post/handle/poll surface was already channel-shaped;
//! this module names that shape as an object-safe trait so the MPI
//! layer (`mpicore::progress` / `mpicore::cluster`) can drive any
//! byte-moving backend — the InfiniBand fabric, the shared-memory
//! channel of [`crate::shm`], or future backends (e.g. a lossy
//! TCP-like transport) — through one `&mut dyn Transport`.
//!
//! Design constraints, in order:
//!
//! * **Bit identity of the IB path.** `impl Transport for Fabric`
//!   forwards every method to the existing inherent method; dynamic
//!   dispatch costs host time only, never virtual time, so every
//!   committed `results/*.csv` is unchanged by the refactor. The
//!   forwarding shims allocate nothing, preserving the persistent-eager
//!   0 allocs/op gate.
//! * **Object safety.** The inherent methods are generic over the
//!   event sink (`F: FnMut(Time, NicEvent)`); the trait narrows that
//!   to `&mut dyn FnMut(Time, NicEvent)`, which the call sites'
//!   closures coerce into for free.
//! * **Optional capabilities degrade, not panic.** Fault injection,
//!   QP lifecycle and crash-stop membership are IB-fabric features; a
//!   backend without them answers the queries with the inert values
//!   ("no faults, nothing errored, everyone alive") so the protocol
//!   layer needs no per-backend branches.

use crate::fabric::{Fabric, FabricStats, NicEvent, NodeMem};
use crate::fault::FaultPlan;
use crate::wr::{Cqe, PostError, RecvWr, SendWr};
use ibdt_simcore::resource::SerialResource;
use ibdt_simcore::time::Time;

/// Coarse transport family, the first key of the §6 adaptive scheme
/// selector's `(transport, datatype class, size)` decision (see
/// `mpicore::progress::adaptive_choose`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportClass {
    /// InfiniBand RC verbs: registration-gated zero copy pays off.
    Ib,
    /// Shared memory, double-copy bounce segment: every byte is copied
    /// twice regardless of scheme, so zero-copy schemes buy nothing.
    ShmDouble,
    /// Shared memory, CMA-style single copy: direct cross-process
    /// copies with a per-syscall setup cost.
    ShmSingle,
}

impl TransportClass {
    /// True for the shared-memory families.
    pub fn is_shm(self) -> bool {
        !matches!(self, TransportClass::Ib)
    }
}

/// Which backend an embedding cluster builds (the
/// `ClusterSpec.transport` knob).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum TransportConfig {
    /// The InfiniBand fabric (the paper's setting; the default).
    #[default]
    Ib,
    /// The shared-memory channel with the given cost model.
    Shm(crate::shm::ShmConfig),
}

/// The surface `mpicore` drives a backend through. Every method mirrors
/// the [`Fabric`] inherent method of the same name (see its docs for
/// semantics); `class` is the only addition.
pub trait Transport {
    /// Which transport family this backend belongs to (keys the
    /// adaptive scheme selection).
    fn class(&self) -> TransportClass;

    /// Posts one send work request on the channel `node -> peer`.
    fn post_send(
        &mut self,
        ready_at: Time,
        node: u32,
        peer: u32,
        wr: SendWr,
        mems: &[NodeMem],
        sink: &mut dyn FnMut(Time, NicEvent),
    ) -> Result<(), PostError>;

    /// Posts a list of send descriptors in one call.
    fn post_send_list(
        &mut self,
        ready_at: Time,
        node: u32,
        peer: u32,
        wrs: Vec<SendWr>,
        mems: &[NodeMem],
        sink: &mut dyn FnMut(Time, NicEvent),
    ) -> Result<(), PostError>;

    /// Posts a receive descriptor on the channel `node <- peer`.
    fn post_recv(
        &mut self,
        now: Time,
        node: u32,
        peer: u32,
        wr: RecvWr,
        mems: &[NodeMem],
        sink: &mut dyn FnMut(Time, NicEvent),
    ) -> Result<(), PostError>;

    /// Handles a transport event, appending now-visible completions to
    /// `out` (not cleared here).
    fn handle(
        &mut self,
        now: Time,
        ev: NicEvent,
        mems: &mut [NodeMem],
        sink: &mut dyn FnMut(Time, NicEvent),
        out: &mut Vec<(u32, Cqe)>,
    );

    /// Acknowledges `n` completions consumed from `node`'s CQ.
    fn cq_consume(&mut self, node: u32, n: usize);

    /// High-water mark of `node`'s CQ occupancy.
    fn cq_peak(&self, node: u32) -> usize;

    /// Receive descriptors currently posted on `node <- peer`.
    fn recvq_len(&self, node: u32, peer: u32) -> usize;

    /// Installs a fault plan. Backends without fault injection accept
    /// only the inert plan.
    fn set_fault_plan(&mut self, plan: FaultPlan);

    /// True when fault injection is active.
    fn faults_active(&self) -> bool;

    /// The installed fault plan, if any.
    fn fault_plan(&self) -> Option<&FaultPlan>;

    /// Pre-scheduled fault events (port/node down/up instants).
    fn fault_events(&self) -> Vec<(Time, NicEvent)>;

    /// True when the directional channel `node -> peer` errored.
    fn qp_errored(&self, node: u32, peer: u32) -> bool;

    /// Tears down and re-establishes the errored channel `node -> peer`.
    fn reestablish_qp(&mut self, node: u32, peer: u32);

    /// True when `node` is crash-stopped.
    fn node_down(&self, node: u32) -> bool;

    /// True when a crashed `node` will restart later.
    fn node_will_restart(&self, node: u32) -> bool;

    /// Aggregate transport counters.
    fn stats(&self) -> FabricStats;

    /// Per-node transport counters.
    fn node_stats(&self) -> &[FabricStats];

    /// The per-node transmit/copy engine (traced; feeds the
    /// pack/wire-overlap statistic).
    fn tx_engine(&self, node: u32) -> &SerialResource;
}

impl Transport for Fabric {
    fn class(&self) -> TransportClass {
        TransportClass::Ib
    }

    fn post_send(
        &mut self,
        ready_at: Time,
        node: u32,
        peer: u32,
        wr: SendWr,
        mems: &[NodeMem],
        sink: &mut dyn FnMut(Time, NicEvent),
    ) -> Result<(), PostError> {
        Fabric::post_send(self, ready_at, node, peer, wr, mems, &mut |t, e| sink(t, e))
    }

    fn post_send_list(
        &mut self,
        ready_at: Time,
        node: u32,
        peer: u32,
        wrs: Vec<SendWr>,
        mems: &[NodeMem],
        sink: &mut dyn FnMut(Time, NicEvent),
    ) -> Result<(), PostError> {
        Fabric::post_send_list(self, ready_at, node, peer, wrs, mems, &mut |t, e| sink(t, e))
    }

    fn post_recv(
        &mut self,
        now: Time,
        node: u32,
        peer: u32,
        wr: RecvWr,
        mems: &[NodeMem],
        sink: &mut dyn FnMut(Time, NicEvent),
    ) -> Result<(), PostError> {
        Fabric::post_recv(self, now, node, peer, wr, mems, &mut |t, e| sink(t, e))
    }

    fn handle(
        &mut self,
        now: Time,
        ev: NicEvent,
        mems: &mut [NodeMem],
        sink: &mut dyn FnMut(Time, NicEvent),
        out: &mut Vec<(u32, Cqe)>,
    ) {
        Fabric::handle(self, now, ev, mems, &mut |t, e| sink(t, e), out)
    }

    fn cq_consume(&mut self, node: u32, n: usize) {
        Fabric::cq_consume(self, node, n)
    }

    fn cq_peak(&self, node: u32) -> usize {
        Fabric::cq_peak(self, node)
    }

    fn recvq_len(&self, node: u32, peer: u32) -> usize {
        Fabric::recvq_len(self, node, peer)
    }

    fn set_fault_plan(&mut self, plan: FaultPlan) {
        Fabric::set_fault_plan(self, plan)
    }

    fn faults_active(&self) -> bool {
        Fabric::faults_active(self)
    }

    fn fault_plan(&self) -> Option<&FaultPlan> {
        Fabric::fault_plan(self)
    }

    fn fault_events(&self) -> Vec<(Time, NicEvent)> {
        Fabric::fault_events(self)
    }

    fn qp_errored(&self, node: u32, peer: u32) -> bool {
        Fabric::qp_errored(self, node, peer)
    }

    fn reestablish_qp(&mut self, node: u32, peer: u32) {
        Fabric::reestablish_qp(self, node, peer)
    }

    fn node_down(&self, node: u32) -> bool {
        Fabric::node_down(self, node)
    }

    fn node_will_restart(&self, node: u32) -> bool {
        Fabric::node_will_restart(self, node)
    }

    fn stats(&self) -> FabricStats {
        Fabric::stats(self)
    }

    fn node_stats(&self) -> &[FabricStats] {
        Fabric::node_stats(self)
    }

    fn tx_engine(&self, node: u32) -> &SerialResource {
        Fabric::tx_engine(self, node)
    }
}
