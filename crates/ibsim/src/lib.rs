#![warn(missing_docs)]
//! Functional + timed InfiniBand Verbs simulator.
//!
//! Models the verbs features the paper's schemes rely on (§2):
//!
//! * **channel semantics** — send/receive with pre-posted receive
//!   descriptors consumed in FIFO order,
//! * **memory semantics** — one-sided RDMA Write and RDMA Read with
//!   protection-key checks at the responder,
//! * **Write Gather / Read Scatter** — up to
//!   [`model::NetConfig::max_sge`] scatter/gather elements per work
//!   request (the Mellanox SDK limit of 64 cited in §5.1),
//! * **RDMA Write with Immediate data** — consumes a receive descriptor
//!   and generates a remote completion (the segment-arrival notification
//!   of §4.3.2),
//! * **list descriptor post** — the extended interface of §7.4 that
//!   posts a list of descriptors in one call.
//!
//! The simulator is *functional*: every operation really moves bytes
//! between [`memreg`](ibdt_memreg) address spaces, with lkey/rkey
//! validation against the owning rank's registration table. It is also
//! *timed*: each verb charges a calibrated cost ([`model::NetConfig`]) on
//! the sender's NIC engine and the link, so protocol schedules built on
//! top reproduce latency/bandwidth shapes.
//!
//! Timing fidelity notes (see DESIGN.md §5): the sender CPU cost of
//! posting is charged by the *caller* (the MPI progress engine owns the
//! CPU resource); the receive-side DMA placement cost is folded into the
//! per-WQE constants; RC ordering is preserved because each NIC transmit
//! engine is a FIFO resource.

pub mod fabric;
pub mod fault;
pub mod model;
pub mod payload;
pub mod shm;
pub mod transport;
pub mod wr;

pub use fabric::{Fabric, FabricStats, NicEvent, NodeMem, QpState, QpTransitionError};
pub use fault::{FaultPlan, FaultRateError, LinkFault, NodeFault};
pub use model::{DeviceConfig, HostConfig, HostConfigError, NetConfig, RNR_RETRY_INFINITE};
pub use payload::Payload;
pub use shm::{ShmChannel, ShmConfig, ShmConfigError, ShmCopyMode};
pub use transport::{Transport, TransportClass, TransportConfig};
pub use wr::{Cqe, CqeStatus, Opcode, PostError, RecvWr, SendWr, Sge, SgeList};
