//! Deterministic fault injection for the fabric.
//!
//! A [`FaultPlan`] describes *what can go wrong* on the wire: transfers
//! may be dropped (modelling packet loss the RC transport must recover
//! from), corrupted (detected by the responder's ICRC, answered with a
//! NAK and retransmitted), delayed (queueing jitter), and the NIC
//! transmit engine may stall (PCI-X contention, doorbell storms).
//!
//! Every decision comes from a private SplitMix64 stream seeded by
//! [`FaultPlan::seed`] and consumed in event order, so a given
//! (workload, plan) pair produces the *same* faults, the same
//! retransmissions, and the same virtual-time clock on every run —
//! the property the chaos suite asserts.
//!
//! The recovery machinery the plan exercises lives in
//! [`fabric`](crate::fabric): per-QP retransmit bounded by
//! [`NetConfig::retry_cnt`](crate::model::NetConfig::retry_cnt), RNR
//! NAK retry with exponential backoff bounded by
//! [`NetConfig::rnr_retry`](crate::model::NetConfig::rnr_retry), and
//! QP error transitions with flush-with-error completions.

use ibdt_simcore::time::Time;

/// A scheduled link failure: `port` of `node` goes down at `at_ns` and
/// comes back `down_ns` later.
///
/// Unlike the per-packet rates, link faults are *scheduled events*: the
/// embedder seeds [`PortDown`](crate::fabric::NicEvent::PortDown) /
/// [`PortUp`](crate::fabric::NicEvent::PortUp) events obtained from
/// [`Fabric::fault_events`](crate::fabric::Fabric::fault_events)
/// into its engine. When the port carrying a queue pair's current path
/// goes down, the QP either migrates to its alternate path (APM, if
/// [`NetConfig::apm_enabled`](crate::model::NetConfig::apm_enabled)) or
/// transitions to the error state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFault {
    /// Virtual time the port fails.
    pub at_ns: Time,
    /// Node whose port fails.
    pub node: u32,
    /// Which of the node's two ports fails (0 = primary, 1 = alternate).
    pub port: u8,
    /// How long the port stays down.
    pub down_ns: Time,
}

/// A scheduled crash-stop node failure: `node` dies at `at_ns` — both
/// of its ports go down, every queue pair touching it transitions to
/// the error state, and its in-flight traffic is flushed with error
/// completions.
///
/// With `restart_after_ns` set, the node comes back that much later
/// ([`NodeUp`](crate::fabric::NicEvent::NodeUp)): its ports recover,
/// but errored queue pairs stay dead until the embedder re-establishes
/// them (the MPI connection manager's job). Without it the failure is
/// permanent — the crash-stop model proper — and peers must eventually
/// diagnose the node as failed rather than retry forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeFault {
    /// Virtual time the node crashes.
    pub at_ns: Time,
    /// Node that crashes.
    pub node: u32,
    /// Restart delay after the crash, or `None` for a permanent
    /// crash-stop failure.
    pub restart_after_ns: Option<Time>,
}

/// A rejected fault-plan parameter: a probability outside `[0, 1]`.
///
/// Out-of-range rates used to be silently clamped by the decision
/// stream (negative acted as 0, >1 as certainty), which hides typos
/// like a rate given in percent. Constructors validate instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRateError {
    /// The offending value.
    pub rate: f64,
}

impl core::fmt::Display for FaultRateError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "fault rate {} is outside [0, 1]", self.rate)
    }
}

impl std::error::Error for FaultRateError {}

/// What can go wrong on the wire, with what probability.
///
/// All rates are probabilities in `[0, 1]` evaluated independently per
/// wire transfer (retransmissions included — a retried transfer can be
/// dropped again). The default plan is inert: no faults, and the
/// fabric skips the fault path entirely, keeping fault-free timing
/// byte-identical to a fabric without a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the private decision stream.
    pub seed: u64,
    /// Probability a transfer vanishes in flight (recovered by the
    /// sender's transport timeout + retransmit).
    pub drop_rate: f64,
    /// Probability a transfer arrives corrupted. The responder's ICRC
    /// check rejects it and NAKs; the sender retransmits after one
    /// round trip — cheaper than a drop, but it still burns a retry.
    pub corrupt_rate: f64,
    /// Probability a transfer is delayed by queueing jitter.
    pub delay_rate: f64,
    /// Maximum injected jitter, ns (uniform in `[1, max]`).
    pub max_delay_ns: Time,
    /// Probability the transmit engine stalls before serving a WQE.
    pub stall_rate: f64,
    /// Stall duration charged on the transmit engine, ns.
    pub stall_ns: Time,
    /// Scheduled port failures (link-down fault events).
    pub link_faults: Vec<LinkFault>,
    /// Scheduled crash-stop node failures.
    pub node_faults: Vec<NodeFault>,
    /// Probability that a freshly exchanged zero-copy registration is
    /// evicted before the remote writes land (the §5.4.2 pin-down-cache
    /// race). Consumed deterministically by the MPI layer, not by the
    /// fabric's decision stream.
    pub evict_rate: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        Self {
            seed: 0,
            drop_rate: 0.0,
            corrupt_rate: 0.0,
            delay_rate: 0.0,
            max_delay_ns: 0,
            stall_rate: 0.0,
            stall_ns: 0,
            link_faults: Vec::new(),
            node_faults: Vec::new(),
            evict_rate: 0.0,
        }
    }

    /// A plan dropping/corrupting/delaying each transfer with the same
    /// `rate`, with representative jitter and stall magnitudes.
    ///
    /// Fails typed when `rate` is not a probability (outside `[0, 1]`
    /// or NaN) — a rate given in percent would otherwise silently act
    /// as certainty.
    pub fn uniform(seed: u64, rate: f64) -> Result<Self, FaultRateError> {
        if !(0.0..=1.0).contains(&rate) {
            return Err(FaultRateError { rate });
        }
        Ok(Self {
            seed,
            drop_rate: rate,
            corrupt_rate: rate,
            delay_rate: rate,
            max_delay_ns: 50_000,
            stall_rate: rate,
            stall_ns: 20_000,
            link_faults: Vec::new(),
            node_faults: Vec::new(),
            evict_rate: 0.0,
        })
    }

    /// True when no fault can ever fire.
    pub fn is_inert(&self) -> bool {
        self.drop_rate <= 0.0
            && self.corrupt_rate <= 0.0
            && (self.delay_rate <= 0.0 || self.max_delay_ns == 0)
            && (self.stall_rate <= 0.0 || self.stall_ns == 0)
            && self.link_faults.is_empty()
            && self.node_faults.is_empty()
            && self.evict_rate <= 0.0
    }
}

/// The fate of one wire transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Fate {
    /// Arrives intact, `jitter_ns` later than scheduled.
    Deliver {
        /// Injected extra delay (0 when no delay fault fired).
        jitter_ns: Time,
    },
    /// Lost in flight; the sender's transport timer must notice.
    Drop,
    /// Arrives corrupted; the responder NAKs it.
    Corrupt,
}

/// Live fault-decision state: the plan plus its private RNG.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    rng: SplitMix64,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        let rng = SplitMix64::new(plan.seed);
        Self { plan, rng }
    }

    /// The plan driving this decision stream.
    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decides the fate of one wire crossing. Consumes a fixed number
    /// of RNG draws per call so decision streams stay aligned across
    /// runs regardless of outcome.
    pub(crate) fn fate(&mut self) -> Fate {
        let drop = self.rng.chance(self.plan.drop_rate);
        let corrupt = self.rng.chance(self.plan.corrupt_rate);
        let delay = self.rng.chance(self.plan.delay_rate);
        let jitter = self.rng.next_u64();
        if drop {
            return Fate::Drop;
        }
        if corrupt {
            return Fate::Corrupt;
        }
        if delay && self.plan.max_delay_ns > 0 {
            return Fate::Deliver {
                jitter_ns: 1 + jitter % self.plan.max_delay_ns,
            };
        }
        Fate::Deliver { jitter_ns: 0 }
    }

    /// Decides whether the transmit engine stalls before this WQE, and
    /// for how long.
    pub(crate) fn stall(&mut self) -> Option<Time> {
        if self.rng.chance(self.plan.stall_rate) && self.plan.stall_ns > 0 {
            Some(self.plan.stall_ns)
        } else {
            None
        }
    }
}

/// Minimal SplitMix64 — kept private to the fabric so the simulator
/// stays dependency-free (the test-only `ibdt-testkit` crate has its
/// own copy; fault injection is a product feature and must not depend
/// on dev-only crates).
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        let mut r = Self {
            state: seed ^ 0xA076_1D64_78BD_642F,
        };
        let _ = r.next_u64();
        r
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn chance(&mut self, p: f64) -> bool {
        // Draw unconditionally so the stream length is outcome-free.
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        p > 0.0 && (p >= 1.0 || u < p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_always_delivers() {
        let mut st = FaultState::new(FaultPlan::none());
        for _ in 0..1000 {
            assert_eq!(st.fate(), Fate::Deliver { jitter_ns: 0 });
            assert_eq!(st.stall(), None);
        }
        assert!(FaultPlan::none().is_inert());
        assert!(!FaultPlan::uniform(1, 0.1).unwrap().is_inert());
    }

    #[test]
    fn uniform_rejects_out_of_range_rates() {
        for rate in [-0.01, 1.01, 42.0, f64::NAN, f64::INFINITY] {
            let err = FaultPlan::uniform(9, rate).expect_err("rate must be rejected");
            if !rate.is_nan() {
                assert_eq!(err, FaultRateError { rate });
            }
            assert!(format!("{err}").contains("outside [0, 1]"));
        }
        for rate in [0.0, 0.5, 1.0] {
            assert!(FaultPlan::uniform(9, rate).is_ok(), "rate {rate} is legal");
        }
    }

    #[test]
    fn node_faults_make_a_plan_active() {
        let mut plan = FaultPlan::none();
        plan.node_faults.push(NodeFault {
            at_ns: 1_000,
            node: 2,
            restart_after_ns: None,
        });
        assert!(!plan.is_inert());
    }

    #[test]
    fn same_seed_same_decisions() {
        let plan = FaultPlan::uniform(0xFA17, 0.3).unwrap();
        let mut a = FaultState::new(plan.clone());
        let mut b = FaultState::new(plan);
        for _ in 0..1000 {
            assert_eq!(a.fate(), b.fate());
            assert_eq!(a.stall(), b.stall());
        }
    }

    #[test]
    fn rates_roughly_respected() {
        let mut st = FaultState::new(FaultPlan {
            seed: 7,
            drop_rate: 0.5,
            ..FaultPlan::none()
        });
        let drops = (0..10_000).filter(|_| st.fate() == Fate::Drop).count();
        assert!((4000..6000).contains(&drops), "drops {drops}");
    }

    #[test]
    fn certain_drop_always_drops() {
        let mut st = FaultState::new(FaultPlan {
            seed: 1,
            drop_rate: 1.0,
            ..FaultPlan::none()
        });
        for _ in 0..100 {
            assert_eq!(st.fate(), Fate::Drop);
        }
    }

    #[test]
    fn jitter_bounded() {
        let mut st = FaultState::new(FaultPlan {
            seed: 3,
            delay_rate: 1.0,
            max_delay_ns: 500,
            ..FaultPlan::none()
        });
        for _ in 0..1000 {
            match st.fate() {
                Fate::Deliver { jitter_ns } => assert!((1..=500).contains(&jitter_ns)),
                other => panic!("unexpected fate {other:?}"),
            }
        }
    }
}
