//! The simulated fabric: HCAs, queue pairs, and the switch.
//!
//! Topology: `n` nodes, fully connected through one switch, one
//! reliable-connection queue pair per ordered node pair (as MVAPICH sets
//! up). Each node has one NIC transmit engine modelled as a FIFO
//! [`SerialResource`]; serialization on this engine plus a fixed
//! propagation delay gives RC's per-QP in-order delivery for free.
//!
//! Functional behaviour:
//!
//! * data is **gathered at post time** from the sender's address space
//!   (protocols must not mutate a posted buffer before its completion —
//!   true of verbs as well) and **placed at arrival time**,
//! * rkey checks happen at the responder, like real IB; failures produce
//!   an error completion at the requester and move no data,
//! * a send (or write-with-immediate) arriving at a QP with an empty
//!   receive queue parks in an RNR queue and is delivered when a
//!   receive is posted; the RNR counter lets tests assert that the MPI
//!   layer's flow control avoids this path.
//!
//! Reliability behaviour (active when a [`FaultPlan`] is installed or
//! the retry budgets are finite):
//!
//! * each wire crossing consults the fault plan; a **dropped** transfer
//!   is retransmitted after [`NetConfig::transport_timeout_ns`], a
//!   **corrupted** one after the ICRC NAK round trip — both bounded by
//!   [`NetConfig::retry_cnt`] attempts, after which the requester gets a
//!   [`CqeStatus::RetryExceeded`] completion and the QP transitions to
//!   the error state (outstanding WQEs flush with
//!   [`CqeStatus::FlushErr`], later posts fail with
//!   [`PostError::QpError`]),
//! * RNR parking becomes a **timed NAK/backoff loop** when
//!   [`NetConfig::rnr_retry`] is finite: delivery retries back off
//!   exponentially and budget exhaustion errors the sender's QP with
//!   [`CqeStatus::RnrRetryExceeded`],
//! * because retransmission can reorder transfers, the receive side
//!   enforces per-QP sequence order (a reorder buffer standing in for
//!   RC's go-back-N) whenever fault injection is active, so RC's
//!   in-order guarantee survives injected loss.
//!
//! Connection lifecycle (see DESIGN.md §10):
//!
//! * every directional QP walks the verbs state machine
//!   RESET→INIT→RTR→RTS (plus SQD, SQE and ERR); fabrics start with all
//!   QPs implicitly in RTS, matching MVAPICH's connect-at-init,
//! * transport exhaustion or a dead port moves a QP to ERR, flushing
//!   outstanding WQEs with [`CqeStatus::FlushErr`]; the embedding MPI
//!   layer tears the QP down ([`Fabric::reestablish_qp`]) and re-drives,
//! * each node has two ports (0 = primary, 1 = alternate); a QP's path
//!   uses the same port number at both ends. When the port under a QP's
//!   current path dies and APM is enabled, the QP fails over to the
//!   alternate path after [`NetConfig::apm_migration_ns`]; otherwise it
//!   errors,
//! * each (re)incarnation of a QP carries an epoch; traffic from a
//!   previous incarnation that is still in flight when the QP is reset
//!   is discarded on arrival, so re-driven traffic can never be
//!   duplicated by a stale packet.

use crate::fault::{Fate, FaultPlan, FaultState};
use crate::model::NetConfig;
use crate::payload::Payload;
use crate::wr::{Cqe, CqeStatus, Opcode, PostError, RecvWr, SendWr, Sge, SgeList};
use ibdt_memreg::{AddressSpace, MemError, RegTable, TierMap};
use ibdt_simcore::paged::PagedTable;
use ibdt_simcore::resource::SerialResource;
use ibdt_simcore::slab::{Handle, Slab};
use ibdt_simcore::time::Time;
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::fmt;

/// One rank's memory: address space + registration table + tier map.
#[derive(Debug)]
pub struct NodeMem {
    /// Flat memory.
    pub space: AddressSpace,
    /// Live registrations (lkey/rkey namespace).
    pub regs: RegTable,
    /// Which ranges of the space are device-resident (all host by
    /// default; see [`ibdt_memreg::TierMap`]).
    pub tiers: TierMap,
}

impl NodeMem {
    /// Creates a node memory of `capacity` bytes, all host-tier.
    pub fn new(capacity: u64) -> Self {
        Self {
            space: AddressSpace::new(capacity),
            regs: RegTable::new(),
            tiers: TierMap::new(),
        }
    }
}

/// Events internal to the fabric. The embedding world forwards these to
/// [`Fabric::handle`] when they fire.
#[derive(Debug)]
pub enum NicEvent {
    /// A transfer arrives at `dst`'s HCA.
    Arrive {
        /// Destination node.
        dst: u32,
        /// The in-flight transfer.
        xfer: Transfer,
    },
    /// A locally generated completion becomes visible (post-ACK).
    LocalCqe {
        /// Node whose CQ receives the entry.
        node: u32,
        /// The entry.
        cqe: Cqe,
    },
    /// Re-examine the RNR park queue of `(node, peer)` after a receive
    /// was posted.
    RnrRetry {
        /// Node owning the receive queue.
        node: u32,
        /// Peer whose parked transfers should be retried.
        peer: u32,
    },
    /// The requester's transport timer fired for an unacknowledged
    /// transfer (dropped or NAKed): retransmit or give up.
    RetryTimeout {
        /// Generational slab handle ([`ibdt_simcore::slab::Handle`]
        /// bits) of the transfer awaiting retransmission. A stale
        /// handle (the transfer was flushed meanwhile) resolves to
        /// nothing, exactly as the former hash-map ticket miss did.
        xfer_id: u64,
    },
    /// A timed RNR backoff retry for a parked transfer.
    RnrTimedRetry {
        /// Node owning the receive queue.
        node: u32,
        /// Peer whose parked transfer is retried.
        peer: u32,
        /// Ticket of the parked transfer.
        park_id: u64,
    },
    /// A port fails (scheduled from [`FaultPlan::link_faults`]). QPs
    /// whose current path crosses it migrate (APM) or error.
    PortDown {
        /// Node whose port fails.
        node: u32,
        /// Failing port (0 = primary, 1 = alternate).
        port: u8,
    },
    /// A failed port comes back. Migrated QPs stay on their alternate
    /// path (as real APM does); errored QPs wait for re-establishment.
    PortUp {
        /// Node whose port recovers.
        node: u32,
        /// Recovering port.
        port: u8,
    },
    /// A node crashes ([`FaultPlan::node_faults`]): both of its ports
    /// go down, every queue pair touching it — in either direction —
    /// transitions to the error state, and in-flight traffic is flushed
    /// with error completions. No APM migration is possible: the
    /// alternate port died with the node.
    NodeDown {
        /// Node that crashes.
        node: u32,
    },
    /// A crashed node restarts: both ports recover, but every errored
    /// queue pair stays dead until the embedder re-establishes it
    /// ([`Fabric::reestablish_qp`]) — exactly the contract after a
    /// port-loss QP error.
    NodeUp {
        /// Node that restarts.
        node: u32,
    },
    /// A shared-memory transfer becomes visible at `dst`
    /// ([`crate::shm::ShmChannel`] events share this enum so the
    /// embedding world needs one event type per backend family).
    /// `id` indexes the channel's in-flight slab. The IB fabric never
    /// emits or receives one.
    ShmArrive {
        /// Destination rank.
        dst: u32,
        /// In-flight slab handle bits.
        id: u64,
    },
}

/// Queue-pair lifecycle states (IB spec §10.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QpState {
    /// Freshly created or torn down; accepts nothing.
    Reset,
    /// Initialized: receive descriptors may be posted.
    Init,
    /// Ready to receive.
    Rtr,
    /// Ready to send — the only state accepting send work requests.
    Rts,
    /// Send-queue drained (administrative quiesce).
    Sqd,
    /// Send-queue error (a non-flush completion error halted the SQ).
    Sqe,
    /// Error: outstanding WQEs flushed, posts rejected.
    Err,
}

/// A rejected queue-pair state transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QpTransitionError {
    /// State the QP was in.
    pub from: QpState,
    /// Requested target state.
    pub to: QpState,
}

impl fmt::Display for QpTransitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "illegal QP transition {:?} -> {:?}", self.from, self.to)
    }
}

impl std::error::Error for QpTransitionError {}

/// An in-flight transfer (one WR's payload).
#[derive(Debug)]
pub struct Transfer {
    src: u32,
    /// Per-QP-direction sequence number (RC ordering under faults).
    seq: u64,
    /// Transmission attempts so far (0 = first).
    attempt: u32,
    /// Connection incarnation of the QP that launched this transfer;
    /// a stale epoch at arrival means the QP was reset mid-flight and
    /// the transfer is discarded.
    epoch: u32,
    kind: TransferKind,
}

#[derive(Debug)]
enum TransferKind {
    /// Channel-semantics send payload.
    Send {
        wr_id: u64,
        data: Payload,
        signaled: bool,
    },
    /// RDMA write payload (optionally with immediate data).
    Write {
        wr_id: u64,
        addr: u64,
        rkey: u32,
        data: Payload,
        imm: Option<u32>,
        signaled: bool,
    },
    /// RDMA read request.
    ReadRequest {
        wr_id: u64,
        addr: u64,
        rkey: u32,
        len: u64,
        scatter: SgeList,
        signaled: bool,
    },
    /// RDMA read response carrying the data back.
    ReadResponse {
        wr_id: u64,
        data: Payload,
        scatter: SgeList,
        signaled: bool,
    },
}

impl TransferKind {
    fn wr_id(&self) -> u64 {
        match self {
            TransferKind::Send { wr_id, .. }
            | TransferKind::Write { wr_id, .. }
            | TransferKind::ReadRequest { wr_id, .. }
            | TransferKind::ReadResponse { wr_id, .. } => *wr_id,
        }
    }

    /// Payload bytes this transfer occupies on the wire.
    fn wire_bytes(&self) -> u64 {
        match self {
            TransferKind::Send { data, .. }
            | TransferKind::Write { data, .. }
            | TransferKind::ReadResponse { data, .. } => data.len() as u64,
            TransferKind::ReadRequest { .. } => 0,
        }
    }
}

/// A send-queue slot: the WQE occupies the queue until the NIC finishes
/// processing it at `done`; `wr_id` lets an error transition flush it.
#[derive(Debug, Clone, Copy)]
struct SqEntry {
    done: Time,
    wr_id: u64,
}

/// A transfer parked for RNR, with its backoff-retry bookkeeping.
#[derive(Debug)]
struct ParkedEntry {
    id: u64,
    attempt: u32,
    xfer: Transfer,
}

/// A transfer awaiting retransmission after a drop or NAK.
#[derive(Debug)]
struct PendingRetry {
    /// Monotonic admission stamp. Slab iteration visits slots in index
    /// order (which drifts from insertion order as slots recycle), so
    /// flush paths sort on this stamp to reproduce the oldest-first
    /// order the former sorted-ticket flush produced.
    order: u64,
    dst: u32,
    tx_dur: Time,
    extra_delay: Time,
    xfer: Transfer,
}

impl PendingRetry {
    /// `(requester, responder)` of the QP this WQE belongs to. A read
    /// response travels responder→requester, but the WQE lives at the
    /// requester.
    fn endpoints(&self) -> (u32, u32) {
        match self.xfer.kind {
            TransferKind::ReadResponse { .. } => (self.dst, self.xfer.src),
            _ => (self.xfer.src, self.dst),
        }
    }
}

#[derive(Debug)]
struct Node {
    tx: SerialResource,
    /// Receive queues, indexed by peer rank. Paged: a page of queues
    /// materializes the first time a peer actually posts, so a node in
    /// a large fabric that talks to few peers holds few pages. An
    /// untouched entry reads as an empty queue — exactly the dense
    /// table's initial state.
    recvq: PagedTable<VecDeque<RecvWr>>,
    /// Parked transfers awaiting a receive descriptor (RNR), by peer.
    parked: PagedTable<VecDeque<ParkedEntry>>,
    /// Posted-but-unprocessed send WQEs per peer QP (send-queue
    /// occupancy accounting + flush-with-error bookkeeping), by peer.
    sq_busy: PagedTable<VecDeque<SqEntry>>,
}

/// Fabric statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Work requests processed by transmit engines.
    pub wqes: u64,
    /// Payload bytes serialized onto links (retransmissions included).
    pub bytes_on_wire: u64,
    /// Times a send/write-imm found no receive descriptor posted.
    pub rnr_events: u64,
    /// Completions generated.
    pub cqes: u64,
    /// Transfers dropped by fault injection.
    pub drops_injected: u64,
    /// Transfers corrupted by fault injection (ICRC NAK path).
    pub corruptions_injected: u64,
    /// Transfers delayed by fault injection.
    pub delays_injected: u64,
    /// NIC transmit-engine stalls injected.
    pub stalls_injected: u64,
    /// Transport retransmissions performed.
    pub retransmits: u64,
    /// Timed RNR backoff retries performed.
    pub rnr_backoff_retries: u64,
    /// Queue pairs transitioned to the error state.
    pub qp_errors: u64,
    /// Work requests flushed with error by a QP transition.
    pub flushed_wqes: u64,
    /// Automatic Path Migration failovers performed.
    pub migrations: u64,
    /// Completion-queue overflows: deliveries rejected because the
    /// destination CQ held [`NetConfig::cq_depth`] unconsumed entries
    /// (each one errors the offending queue pair).
    pub cq_overflows: u64,
    /// Times consuming a receive descriptor crossed below
    /// [`NetConfig::recv_low_watermark`] (SRQ-limit-style event).
    pub recv_low_water: u64,
    /// Crash-stop node failures realized ([`NicEvent::NodeDown`]).
    pub node_crashes: u64,
    /// Bounce-segment slots traversed (shared-memory double copy;
    /// always zero on the IB fabric).
    pub shm_bounce_chunks: u64,
    /// CMA-style single-copy passes performed (shared-memory single
    /// copy; always zero on the IB fabric).
    pub shm_cma_ops: u64,
}

/// Per-direction QP state, indexed `src * n + dst` through a paged
/// sparse-dense table: memory scales with the directions actually
/// exercised, not n², while every lookup the per-message hot path
/// used to hash stays a couple of indexed loads. Defaults encode the
/// "absent entry" semantics: RTS state, epoch 0, path 0, sequence
/// counters at 0 — an untouched direction behaves exactly like a
/// freshly constructed one, so reads never materialize pages.
#[derive(Debug)]
struct DirState {
    /// Lifecycle state; fabrics start fully connected (RTS), matching
    /// MVAPICH's connect-at-init.
    state: QpState,
    /// True when the direction errored (retry budget exhausted / dead
    /// path); folded out of the old `qp_err` set.
    err: bool,
    /// Connection incarnation (bumped on reset).
    epoch: u32,
    /// Port carrying the current path.
    path: u8,
    /// Next sequence number to transmit.
    tx_seq: u64,
    /// Next expected sequence number (fault mode).
    rx_expected: u64,
    /// Reorder buffer (fault mode); empty maps hold no heap storage.
    rx_ooo: BTreeMap<u64, Transfer>,
    /// APM failover in progress: sends stall until this instant.
    migrating_until: Option<Time>,
}

impl Default for DirState {
    fn default() -> Self {
        DirState {
            state: QpState::Rts,
            err: false,
            epoch: 0,
            path: 0,
            tx_seq: 0,
            rx_expected: 0,
            rx_ooo: BTreeMap::new(),
            migrating_until: None,
        }
    }
}

thread_local! {
    /// Receive rings retired by dropped fabrics; a fresh fabric's first
    /// posts adopt them, so a sweep building one short-lived cluster
    /// per point pays the ring-growth allocations only once per thread.
    static RECVQ_SPARE: std::cell::RefCell<Vec<VecDeque<RecvWr>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Cap on the retired receive-ring list.
const RECVQ_SPARE_CAP: usize = 32;

impl Drop for Fabric {
    fn drop(&mut self) {
        // try_with: thread teardown may have destroyed the spare list.
        let _ = RECVQ_SPARE.try_with(|s| {
            let mut s = s.borrow_mut();
            for n in &mut self.nodes {
                for (_, q) in n.recvq.iter_touched_mut() {
                    if s.len() >= RECVQ_SPARE_CAP {
                        return;
                    }
                    if q.capacity() > 0 {
                        let mut q = std::mem::take(q);
                        q.clear();
                        s.push(q);
                    }
                }
            }
        });
    }
}

/// The simulated InfiniBand fabric.
#[derive(Debug)]
pub struct Fabric {
    cfg: NetConfig,
    nodes: Vec<Node>,
    stats: FabricStats,
    /// Fault-decision stream; `None` = lossless fabric, zero overhead.
    faults: Option<FaultState>,
    /// Ticket counter for park entries.
    next_id: u64,
    /// Monotonic admission counter for retransmit entries (flush-order
    /// stamp; see [`PendingRetry::order`]).
    next_order: u64,
    /// Transfers awaiting retransmission. Slab handles travel through
    /// [`NicEvent::RetryTimeout`] as `u64`s; stale handles (flushed
    /// transfers) resolve to `None` on removal.
    inflight: Slab<PendingRetry>,
    /// Paged per-direction QP state, indexed `src * n + dst`.
    dirs: PagedTable<DirState>,
    /// Number of directions currently mid-migration (fast-path gate
    /// standing in for the old map's `is_empty`).
    migrating: usize,
    /// Port liveness per node (`[primary, alternate]`).
    ports_down: Vec<[bool; 2]>,
    /// Number of `(node, port)` pairs currently down (fast-path gate).
    ports_down_count: usize,
    /// Crash-stop liveness per node ([`NicEvent::NodeDown`]). A down
    /// node holds both ports down; the flag additionally answers the
    /// membership query [`Fabric::node_down`] the MPI layer uses to
    /// distinguish a dead peer from a flaky link. Materialized lazily
    /// on the first crash so fault-free clusters never allocate it.
    nodes_down: Vec<bool>,
    /// Per-node reliability counters (retransmits, RNR backoff retries,
    /// QP errors, flushed WQEs, migrations, injected fates) attributed
    /// to the requester/transmitter.
    node_stats: Vec<FabricStats>,
    /// Completion-queue occupancy per node: entries produced but not
    /// yet acknowledged as consumed ([`Fabric::cq_consume`]). Only
    /// maintained when [`NetConfig::cq_depth`] is bounded, so the
    /// classic unbounded configuration pays nothing.
    cq_used: Vec<usize>,
    /// High-water mark of `cq_used` per node.
    cq_peak: Vec<usize>,
}

impl Fabric {
    /// Creates a fabric of `n` fully connected nodes.
    pub fn new(n: usize, cfg: NetConfig) -> Self {
        let nodes = (0..n)
            .map(|_| Node {
                tx: SerialResource::new("nic-tx").with_trace(),
                recvq: PagedTable::new(n),
                parked: PagedTable::new(n),
                sq_busy: PagedTable::new(n),
            })
            .collect();
        Self {
            cfg,
            nodes,
            stats: FabricStats::default(),
            faults: None,
            next_id: 0,
            next_order: 0,
            inflight: Slab::new(),
            dirs: PagedTable::new(n * n),
            migrating: 0,
            ports_down: vec![[false; 2]; n],
            ports_down_count: 0,
            nodes_down: Vec::new(),
            node_stats: vec![FabricStats::default(); n],
            cq_used: vec![0; n],
            cq_peak: vec![0; n],
        }
    }

    /// True when the completion queues are bounded.
    #[inline]
    fn cq_bounded(&self) -> bool {
        self.cfg.cq_depth != usize::MAX
    }

    /// Records one completion entering `node`'s CQ.
    #[inline]
    fn cq_admit(&mut self, node: u32) {
        if self.cq_bounded() {
            let used = &mut self.cq_used[node as usize];
            *used += 1;
            let peak = &mut self.cq_peak[node as usize];
            if *used > *peak {
                *peak = *used;
            }
        }
    }

    /// True when `node`'s CQ cannot accept another entry.
    #[inline]
    fn cq_full(&self, node: u32) -> bool {
        self.cq_bounded() && self.cq_used[node as usize] >= self.cfg.cq_depth
    }

    /// Acknowledges that `node`'s consumer polled `n` completions off
    /// its CQ, freeing their slots. The embedder calls this when the
    /// host CPU actually catches up with the queue (not at delivery
    /// time), so occupancy genuinely builds under incast.
    pub fn cq_consume(&mut self, node: u32, n: usize) {
        if self.cq_bounded() {
            let used = &mut self.cq_used[node as usize];
            *used = used.saturating_sub(n);
        }
    }

    /// Current completion-queue occupancy of `node` (0 when unbounded).
    pub fn cq_used(&self, node: u32) -> usize {
        self.cq_used[node as usize]
    }

    /// High-water completion-queue occupancy of `node`.
    pub fn cq_peak(&self, node: u32) -> usize {
        self.cq_peak[node as usize]
    }

    /// Receive descriptors currently posted on the QP `node <- peer`
    /// (the upper layer's low-watermark probe).
    pub fn recvq_len(&self, node: u32, peer: u32) -> usize {
        self.nodes[node as usize].recvq[peer as usize].len()
    }

    /// A delivery needed a CQ slot at `dst` and found none: the verbs
    /// `IBV_EVENT_CQ_ERR` path. The offending QP errors; the requester
    /// learns through a typed [`CqeStatus::CqOverflow`] completion
    /// (error completions bypass the bound — they are the recovery
    /// signal). The receive descriptor is left posted and the payload
    /// is discarded, so the re-driven transfer finds the ring intact.
    fn cq_overflow<F: FnMut(Time, NicEvent)>(
        &mut self,
        now: Time,
        dst: u32,
        src: u32,
        wr_id: u64,
        sink: &mut F,
    ) {
        self.stats.cq_overflows += 1;
        self.node_stats[dst as usize].cq_overflows += 1;
        self.sched_local(
            sink,
            src,
            Cqe {
                peer: dst,
                wr_id,
                is_recv: false,
                byte_len: 0,
                imm: None,
                status: CqeStatus::CqOverflow,
            },
            now,
        );
        self.fail_qp(now, src, dst, sink);
    }

    #[inline]
    fn dir(&self, src: u32, dst: u32) -> &DirState {
        &self.dirs[src as usize * self.nodes.len() + dst as usize]
    }

    #[inline]
    fn dir_mut(&mut self, src: u32, dst: u32) -> &mut DirState {
        &mut self.dirs[src as usize * self.nodes.len() + dst as usize]
    }

    /// Installs a fault plan. An inert plan (all rates zero) removes
    /// fault processing entirely, keeping the fabric's timing identical
    /// to one that never had a plan.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = if plan.is_inert() {
            None
        } else {
            Some(FaultState::new(plan))
        };
    }

    /// Returns the fabric to its just-constructed, fault-free state in
    /// place, keeping every heap container's capacity: transmit engines
    /// idle at t=0 with cleared traces, receive/park/send queues empty
    /// but warm, per-direction QP state back at RTS/epoch 0, stats and
    /// counters zeroed. A reset fabric behaves bit-identically to
    /// `Fabric::new` — world recycling relies on this. Re-arm fault
    /// injection afterwards with [`Fabric::set_fault_plan`] if needed.
    pub fn reset(&mut self) {
        for n in &mut self.nodes {
            n.tx.reset();
            n.recvq.reset_entries(|q| q.clear());
            n.parked.reset_entries(|q| q.clear());
            n.sq_busy.reset_entries(|q| q.clear());
        }
        self.stats = FabricStats::default();
        self.faults = None;
        self.next_id = 0;
        self.next_order = 0;
        self.inflight.clear();
        self.dirs.reset_entries(|d| *d = DirState::default());
        self.migrating = 0;
        for p in &mut self.ports_down {
            *p = [false; 2];
        }
        self.ports_down_count = 0;
        self.nodes_down.clear();
        for s in &mut self.node_stats {
            *s = FabricStats::default();
        }
        for u in &mut self.cq_used {
            *u = 0;
        }
        for p in &mut self.cq_peak {
            *p = 0;
        }
    }

    /// True when fault injection is active.
    pub fn faults_active(&self) -> bool {
        self.faults.is_some()
    }

    /// True when the directional QP `node -> peer` is in the error
    /// state (retry budget exhausted).
    pub fn qp_errored(&self, node: u32, peer: u32) -> bool {
        self.dir(node, peer).err
    }

    /// Lifecycle state of the directional QP `node -> peer`.
    pub fn qp_state(&self, node: u32, peer: u32) -> QpState {
        self.dir(node, peer).state
    }

    /// Connection incarnation of the directional QP `node -> peer`
    /// (bumped each time the QP is torn down to RESET).
    pub fn qp_epoch(&self, node: u32, peer: u32) -> u32 {
        self.epoch_of((node, peer))
    }

    /// True when `port` of `node` is currently down.
    pub fn port_down(&self, node: u32, port: u8) -> bool {
        self.ports_down[node as usize][port as usize]
    }

    /// True when `node` is currently crashed ([`NicEvent::NodeDown`]
    /// fired and no restart has happened yet). This is the membership
    /// view a subnet-manager-style health service would export; the
    /// MPI layer consults it to escalate a connection failure into a
    /// peer-death diagnosis.
    pub fn node_down(&self, node: u32) -> bool {
        self.nodes_down.get(node as usize).copied().unwrap_or(false)
    }

    /// True when any node is currently crashed.
    pub fn any_node_down(&self) -> bool {
        self.nodes_down.iter().any(|&d| d)
    }

    /// True when every scheduled crash of `node` carries a restart
    /// window — i.e. the installed plan never kills the node for good.
    /// Mirrors the out-of-band knowledge a membership service
    /// accumulates: a node with a pending restart is "suspected", one
    /// crashed with no restart is "failed".
    pub fn node_will_restart(&self, node: u32) -> bool {
        match &self.faults {
            None => true,
            Some(fs) => fs
                .plan()
                .node_faults
                .iter()
                .filter(|nf| nf.node == node)
                .all(|nf| nf.restart_after_ns.is_some()),
        }
    }

    /// Port carrying the current path of the directional QP
    /// `node -> peer` (0 = primary until a migration happens).
    pub fn qp_port(&self, node: u32, peer: u32) -> u8 {
        self.dir(node, peer).path
    }

    /// The installed fault plan, when fault injection is active.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|f| f.plan())
    }

    /// The `(time, event)` pairs the embedder must seed into its engine
    /// to realize the installed plan's scheduled faults: port failures
    /// from [`FaultPlan::link_faults`] and crash-stop node failures
    /// from [`FaultPlan::node_faults`].
    pub fn fault_events(&self) -> Vec<(Time, NicEvent)> {
        let Some(fs) = &self.faults else {
            return Vec::new();
        };
        let mut evs = Vec::new();
        for lf in &fs.plan().link_faults {
            evs.push((
                lf.at_ns,
                NicEvent::PortDown {
                    node: lf.node,
                    port: lf.port,
                },
            ));
            evs.push((
                lf.at_ns + lf.down_ns,
                NicEvent::PortUp {
                    node: lf.node,
                    port: lf.port,
                },
            ));
        }
        for nf in &fs.plan().node_faults {
            evs.push((nf.at_ns, NicEvent::NodeDown { node: nf.node }));
            if let Some(after) = nf.restart_after_ns {
                evs.push((nf.at_ns + after, NicEvent::NodeUp { node: nf.node }));
            }
        }
        evs
    }

    /// Requests a lifecycle transition on the directional QP
    /// `node -> peer` (the verbs `ibv_modify_qp`). Legal transitions
    /// are the spec's: RESET→INIT→RTR→RTS, RTS⇄SQD, SQE→RTS, any→ERR,
    /// any→RESET. Entering ERR flushes outstanding WQEs (error CQEs
    /// through `sink`); entering RESET silently releases everything and
    /// bumps the connection epoch.
    pub fn modify_qp<F: FnMut(Time, NicEvent)>(
        &mut self,
        now: Time,
        node: u32,
        peer: u32,
        target: QpState,
        sink: &mut F,
    ) -> Result<(), QpTransitionError> {
        let from = self.qp_state(node, peer);
        let legal = matches!(
            (from, target),
            (QpState::Reset, QpState::Init)
                | (QpState::Init, QpState::Rtr)
                | (QpState::Rtr, QpState::Rts)
                | (QpState::Rts, QpState::Sqd)
                | (QpState::Sqd, QpState::Rts)
                | (QpState::Sqe, QpState::Rts)
                | (_, QpState::Err)
                | (_, QpState::Reset)
        );
        if !legal {
            return Err(QpTransitionError { from, to: target });
        }
        match target {
            QpState::Err => self.fail_qp(now, node, peer, sink),
            QpState::Reset => self.reset_qp(node, peer),
            other => {
                self.dir_mut(node, peer).state = other;
            }
        }
        Ok(())
    }

    /// Tears the directional QP `node -> peer` down to RESET: drops all
    /// connection state (send-queue slots, retransmit timers, parked
    /// and reordered transfers, sequence numbers) without generating
    /// completions, clears the error flag, bumps the connection epoch
    /// so stale in-flight traffic is discarded on arrival, and
    /// re-selects a live port for the path. Posted receive descriptors
    /// survive (the re-established connection re-uses them, equivalent
    /// to the CM re-posting identical descriptors).
    pub fn reset_qp(&mut self, node: u32, peer: u32) {
        let dir = (node, peer);
        // Prefer a path whose port is up at both ends.
        let port = [0u8, 1]
            .into_iter()
            .find(|&p| !self.port_down(node, p) && !self.port_down(peer, p))
            .unwrap_or(0);
        let d = self.dir_mut(node, peer);
        d.err = false;
        d.state = QpState::Reset;
        d.epoch += 1;
        d.tx_seq = 0;
        d.rx_expected = 0;
        d.rx_ooo.clear();
        d.path = port;
        if d.migrating_until.take().is_some() {
            self.migrating -= 1;
        }
        if let Some(q) = self.nodes[node as usize]
            .sq_busy
            .get_mut_touched(peer as usize)
        {
            q.clear();
        }
        if let Some(q) = self.nodes[peer as usize]
            .parked
            .get_mut_touched(node as usize)
        {
            q.clear();
        }
        let handles: Vec<Handle> = self
            .inflight
            .iter()
            .filter(|(_, p)| p.endpoints() == dir)
            .map(|(h, _)| h)
            .collect();
        for h in handles {
            self.inflight.remove(h);
        }
    }

    /// Convenience for the MPI connection manager: the full
    /// RESET→INIT→RTR→RTS handshake on the directional QP
    /// `node -> peer`, compressed to one call (the caller charges the
    /// handshake latency on its own clock before invoking this).
    pub fn reestablish_qp(&mut self, node: u32, peer: u32) {
        self.reset_qp(node, peer);
        self.dir_mut(node, peer).state = QpState::Rts;
    }

    /// Per-node reliability counters, indexed by node id. Only the
    /// counters attributable to one side are maintained here
    /// (retransmits, RNR backoff retries, QP errors, flushed WQEs,
    /// migrations, injected drop/corrupt/delay/stall fates); the
    /// aggregate [`Fabric::stats`] remains authoritative for the rest.
    pub fn node_stats(&self) -> &[FabricStats] {
        &self.node_stats
    }

    fn epoch_of(&self, dir: (u32, u32)) -> u32 {
        self.dir(dir.0, dir.1).epoch
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for an empty fabric.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Cost model in use.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> FabricStats {
        self.stats
    }

    /// Heap bytes held by the paged connection-state tables: the
    /// per-direction QP table plus every node's receive/park/send-queue
    /// tables. Scales with the communication pairs actually touched,
    /// not n² — the quantity the rank-scaling experiment plots.
    pub fn table_bytes(&self) -> usize {
        self.dirs.heap_bytes()
            + self
                .nodes
                .iter()
                .map(|n| n.recvq.heap_bytes() + n.parked.heap_bytes() + n.sq_busy.heap_bytes())
                .sum::<usize>()
    }

    /// Pages materialized in the per-direction QP table (each covering
    /// [`ibdt_simcore::paged::PAGE`] ordered pairs).
    pub fn dir_pages_touched(&self) -> usize {
        self.dirs.pages_touched()
    }

    /// The transmit engine of `node` (utilization / trace inspection).
    pub fn tx_engine(&self, node: u32) -> &SerialResource {
        &self.nodes[node as usize].tx
    }

    fn validate_sges(&self, node: u32, sges: &[Sge], mem: &NodeMem) -> Result<(), PostError> {
        if sges.len() > self.cfg.max_sge {
            return Err(PostError::TooManySges {
                got: sges.len(),
                max: self.cfg.max_sge,
            });
        }
        debug_assert!((node as usize) < self.nodes.len());
        for s in sges {
            mem.regs
                .check(s.lkey, s.addr, s.len)
                .map_err(PostError::BadLocalKey)?;
        }
        Ok(())
    }

    /// Gathers an SGE list into a pooled payload slab — the single
    /// allocation (usually a pool reuse) that the transfer, its
    /// retransmissions, and its delivery all share.
    fn gather(sges: &[Sge], space: &AddressSpace) -> Payload {
        let total: usize = sges.iter().map(|s| s.len as usize).sum();
        Payload::build(total, |data| {
            for s in sges {
                data.extend_from_slice(
                    space
                        .slice(s.addr, s.len)
                        .expect("sge validated against a live registration"),
                );
            }
        })
    }

    fn alloc_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    /// Admits a transfer into the retransmit slab, returning the
    /// handle its timer event carries.
    fn admit_inflight(&mut self, dst: u32, tx_dur: Time, extra_delay: Time, xfer: Transfer) -> u64 {
        let order = self.next_order;
        self.next_order += 1;
        self.inflight
            .insert(PendingRetry {
                order,
                dst,
                tx_dur,
                extra_delay,
                xfer,
            })
            .bits()
    }

    fn alloc_seq(&mut self, src: u32, dst: u32) -> u64 {
        let s = &mut self.dir_mut(src, dst).tx_seq;
        let seq = *s;
        *s += 1;
        seq
    }

    /// Serializes one transfer onto the sender's transmit engine and
    /// decides its fate: delivery (possibly jittered), a drop recovered
    /// by the transport timer, or a corruption recovered by the NAK
    /// round trip. Returns the serialization finish time.
    #[allow(clippy::too_many_arguments)]
    fn launch<F: FnMut(Time, NicEvent)>(
        &mut self,
        ready_at: Time,
        dst: u32,
        xfer: Transfer,
        tx_dur: Time,
        extra_delay: Time,
        retransmit: bool,
        sink: &mut F,
    ) -> Time {
        let src = xfer.src;
        if retransmit {
            self.stats.retransmits += 1;
            self.node_stats[src as usize].retransmits += 1;
            self.stats.bytes_on_wire += xfer.kind.wire_bytes();
        }
        let mut start = ready_at;
        // An APM failover in progress stalls the direction's sends
        // until the alternate path is validated. The count gates the
        // per-direction read off the common (no-migration) path.
        if self.migrating > 0 {
            let d = self.dir_mut(src, dst);
            if let Some(until) = d.migrating_until {
                if until > start {
                    start = until;
                } else {
                    d.migrating_until = None;
                    self.migrating -= 1;
                }
            }
        }
        if let Some(fs) = &mut self.faults {
            if let Some(stall) = fs.stall() {
                self.stats.stalls_injected += 1;
                self.node_stats[src as usize].stalls_injected += 1;
                start = self.nodes[src as usize].tx.reserve_labeled(
                    ready_at.max(start),
                    stall,
                    "stall",
                );
            }
        }
        let ser_done = self.nodes[src as usize]
            .tx
            .reserve_labeled(start, tx_dur, "wire");
        let arrive_at = ser_done + self.cfg.prop_delay_ns + extra_delay;
        let fate = match &mut self.faults {
            Some(fs) => fs.fate(),
            None => Fate::Deliver { jitter_ns: 0 },
        };
        match fate {
            Fate::Deliver { jitter_ns } => {
                if jitter_ns > 0 {
                    self.stats.delays_injected += 1;
                    self.node_stats[src as usize].delays_injected += 1;
                }
                sink(arrive_at + jitter_ns, NicEvent::Arrive { dst, xfer });
            }
            Fate::Drop => {
                self.stats.drops_injected += 1;
                self.node_stats[src as usize].drops_injected += 1;
                let id = self.admit_inflight(dst, tx_dur, extra_delay, xfer);
                sink(
                    ser_done + self.cfg.transport_timeout_ns,
                    NicEvent::RetryTimeout { xfer_id: id },
                );
            }
            Fate::Corrupt => {
                self.stats.corruptions_injected += 1;
                self.node_stats[src as usize].corruptions_injected += 1;
                let id = self.admit_inflight(dst, tx_dur, extra_delay, xfer);
                // Bad ICRC: the payload crossed the wire and the
                // responder NAKs it; retransmission can start after the
                // NAK returns.
                sink(
                    arrive_at + self.cfg.prop_delay_ns + self.cfg.cqe_ns,
                    NicEvent::RetryTimeout { xfer_id: id },
                );
            }
        }
        ser_done
    }

    /// Posts one send work request on the QP `node -> peer`.
    ///
    /// `ready_at` is when the descriptor reaches the HCA (the caller has
    /// already charged the posting CPU time). Completions and arrivals
    /// are scheduled through `sink`.
    pub fn post_send<F: FnMut(Time, NicEvent)>(
        &mut self,
        ready_at: Time,
        node: u32,
        peer: u32,
        wr: SendWr,
        mems: &[NodeMem],
        sink: &mut F,
    ) -> Result<(), PostError> {
        self.post_send_inner(ready_at, node, peer, wr, mems, sink, false)
    }

    #[allow(clippy::too_many_arguments)]
    fn post_send_inner<F: FnMut(Time, NicEvent)>(
        &mut self,
        ready_at: Time,
        node: u32,
        peer: u32,
        wr: SendWr,
        mems: &[NodeMem],
        sink: &mut F,
        batched: bool,
    ) -> Result<(), PostError> {
        if peer as usize >= self.nodes.len() {
            return Err(PostError::NoSuchPeer { peer });
        }
        {
            let d = self.dir(node, peer);
            if d.err {
                return Err(PostError::QpError { peer });
            }
            // The dense default is RTS (connect-at-init), so this one
            // read covers both the former "any lifecycle entry exists"
            // gate and the state check.
            if !matches!(d.state, QpState::Rts) {
                return Err(PostError::QpNotReady { peer });
            }
        }
        if self.ports_down_count > 0 && !self.ensure_path(ready_at, node, peer) {
            // The current path's port is down and no alternate is
            // available: the send could only time out, so the QP errors
            // immediately (the transport retry budget would drain
            // against a dead link).
            self.fail_qp(ready_at, node, peer, sink);
            return Err(PostError::QpError { peer });
        }
        let mem = &mems[node as usize];
        self.validate_sges(node, &wr.sges, mem)?;
        if matches!(
            wr.opcode,
            Opcode::RdmaWrite | Opcode::RdmaWriteImm(_) | Opcode::RdmaRead
        ) && wr.remote.is_none()
        {
            return Err(PostError::MissingRemote);
        }

        let bytes = wr.total_len();
        let (tx_dur, extra_delay) = match wr.opcode {
            // A read request is small on the wire; its payload crosses
            // on the responder's transmit engine.
            Opcode::RdmaRead => (
                self.cfg.tx_ns_batched(wr.sges.len(), 0, batched),
                self.cfg.rdma_read_extra_ns,
            ),
            _ => (self.cfg.tx_ns_batched(wr.sges.len(), bytes, batched), 0),
        };
        // Send-queue depth: WQEs occupy the queue from post until the
        // NIC finishes processing them.
        {
            let q = &mut self.nodes[node as usize].sq_busy[peer as usize];
            while q.front().is_some_and(|e| e.done <= ready_at) {
                q.pop_front();
            }
            if q.len() >= self.cfg.sq_depth {
                return Err(PostError::QueueFull {
                    depth: self.cfg.sq_depth,
                });
            }
        }
        self.stats.wqes += 1;

        let kind = match wr.opcode {
            Opcode::Send => {
                self.stats.bytes_on_wire += bytes;
                TransferKind::Send {
                    wr_id: wr.wr_id,
                    data: Self::gather(&wr.sges, &mem.space),
                    signaled: wr.signaled,
                }
            }
            Opcode::RdmaWrite | Opcode::RdmaWriteImm(_) => {
                self.stats.bytes_on_wire += bytes;
                let (addr, rkey) = wr.remote.expect("checked above");
                let imm = match wr.opcode {
                    Opcode::RdmaWriteImm(v) => Some(v),
                    _ => None,
                };
                TransferKind::Write {
                    wr_id: wr.wr_id,
                    addr,
                    rkey,
                    data: Self::gather(&wr.sges, &mem.space),
                    imm,
                    signaled: wr.signaled,
                }
            }
            Opcode::RdmaRead => {
                let (addr, rkey) = wr.remote.expect("checked above");
                TransferKind::ReadRequest {
                    wr_id: wr.wr_id,
                    addr,
                    rkey,
                    len: bytes,
                    scatter: wr.sges,
                    signaled: wr.signaled,
                }
            }
        };
        let seq = self.alloc_seq(node, peer);
        let epoch = self.epoch_of((node, peer));
        let xfer = Transfer {
            src: node,
            seq,
            attempt: 0,
            epoch,
            kind,
        };
        let wr_id = wr.wr_id;
        let ser_done = self.launch(ready_at, peer, xfer, tx_dur, extra_delay, false, sink);
        self.nodes[node as usize].sq_busy[peer as usize].push_back(SqEntry {
            done: ser_done,
            wr_id,
        });
        Ok(())
    }

    /// Posts a list of descriptors in one call (the extended interface
    /// of §7.4). Functionally identical to posting one by one; the CPU
    /// saving is priced by the caller via
    /// [`NetConfig::post_list_ns`].
    pub fn post_send_list<F: FnMut(Time, NicEvent)>(
        &mut self,
        ready_at: Time,
        node: u32,
        peer: u32,
        wrs: Vec<SendWr>,
        mems: &[NodeMem],
        sink: &mut F,
    ) -> Result<(), PostError> {
        for wr in wrs {
            self.post_send_inner(ready_at, node, peer, wr, mems, sink, true)?;
        }
        Ok(())
    }

    /// Posts a receive descriptor on the QP `node <- peer`.
    pub fn post_recv<F: FnMut(Time, NicEvent)>(
        &mut self,
        now: Time,
        node: u32,
        peer: u32,
        wr: RecvWr,
        mems: &[NodeMem],
        sink: &mut F,
    ) -> Result<(), PostError> {
        if peer as usize >= self.nodes.len() {
            return Err(PostError::NoSuchPeer { peer });
        }
        self.validate_sges(node, &wr.sges, &mems[node as usize])?;
        let n = &mut self.nodes[node as usize];
        let q = &mut n.recvq[peer as usize];
        if q.capacity() == 0 {
            // First post on this direction: adopt a ring retired by a
            // previous fabric on this thread, or size one in a single
            // step instead of dribbling through doubling growth.
            match RECVQ_SPARE
                .try_with(|s| s.borrow_mut().pop())
                .ok()
                .flatten()
            {
                Some(spare) => *q = spare,
                None => q.reserve(16),
            }
        }
        q.push_back(wr);
        if !n.parked[peer as usize].is_empty() {
            sink(now, NicEvent::RnrRetry { node, peer });
        }
        Ok(())
    }

    /// Handles a fabric event, appending completions that become visible
    /// to the MPI progress engines **now** onto `out`. The caller owns
    /// (and typically reuses) the completion buffer, so steady-state
    /// event handling allocates nothing. `out` is not cleared here;
    /// entries are appended after whatever the caller left in it.
    pub fn handle<F: FnMut(Time, NicEvent)>(
        &mut self,
        now: Time,
        ev: NicEvent,
        mems: &mut [NodeMem],
        sink: &mut F,
        out: &mut Vec<(u32, Cqe)>,
    ) {
        match ev {
            NicEvent::LocalCqe { node, cqe } => {
                self.stats.cqes += 1;
                self.cq_admit(node);
                out.push((node, cqe));
            }
            NicEvent::Arrive { dst, xfer } => self.arrive(now, dst, xfer, mems, sink, out),
            NicEvent::RnrRetry { node, peer } => {
                self.drain_parked(now, node, peer, mems, sink, out)
            }
            NicEvent::RetryTimeout { xfer_id } => self.retry_timeout(now, xfer_id, sink),
            NicEvent::RnrTimedRetry {
                node,
                peer,
                park_id,
            } => self.rnr_timed_retry(now, node, peer, park_id, mems, sink, out),
            NicEvent::PortDown { node, port } => self.handle_port_down(now, node, port, sink),
            NicEvent::PortUp { node, port } => {
                let down = &mut self.ports_down[node as usize][port as usize];
                if *down {
                    *down = false;
                    self.ports_down_count -= 1;
                }
            }
            NicEvent::NodeDown { node } => self.handle_node_down(now, node, sink),
            NicEvent::ShmArrive { .. } => {
                unreachable!("shared-memory event delivered to the IB fabric")
            }
            NicEvent::NodeUp { node } => {
                if self.node_down(node) {
                    self.nodes_down[node as usize] = false;
                    for port in 0..2u8 {
                        let down = &mut self.ports_down[node as usize][port as usize];
                        if *down {
                            *down = false;
                            self.ports_down_count -= 1;
                        }
                    }
                }
            }
        }
    }

    /// A node crashed: both ports die at once, so no QP touching it can
    /// migrate — every live direction to or from the node transitions
    /// to the error state and flushes its in-flight traffic. The ports
    /// are marked down *before* the QP sweep so the APM check in any
    /// concurrently delivered event sees a node with no usable path.
    fn handle_node_down<F: FnMut(Time, NicEvent)>(&mut self, now: Time, node: u32, sink: &mut F) {
        if self.node_down(node) {
            return;
        }
        if self.nodes_down.is_empty() {
            self.nodes_down = vec![false; self.nodes.len()];
        }
        self.nodes_down[node as usize] = true;
        self.stats.node_crashes += 1;
        self.node_stats[node as usize].node_crashes += 1;
        for port in 0..2u8 {
            let down = &mut self.ports_down[node as usize][port as usize];
            if !*down {
                *down = true;
                self.ports_down_count += 1;
            }
        }
        let n = self.nodes.len() as u32;
        for other in 0..n {
            if other == node {
                continue;
            }
            for dir in [(node, other), (other, node)] {
                let d = self.dir(dir.0, dir.1);
                if d.err || matches!(d.state, QpState::Reset) {
                    continue;
                }
                self.fail_qp(now, dir.0, dir.1, sink);
            }
        }
    }

    /// A port died: every RTS queue pair whose current path crosses it
    /// either migrates to the alternate path (APM) or errors.
    fn handle_port_down<F: FnMut(Time, NicEvent)>(
        &mut self,
        now: Time,
        node: u32,
        port: u8,
        sink: &mut F,
    ) {
        {
            let down = &mut self.ports_down[node as usize][port as usize];
            if !*down {
                *down = true;
                self.ports_down_count += 1;
            }
        }
        let n = self.nodes.len() as u32;
        for other in 0..n {
            if other == node {
                continue;
            }
            for dir in [(node, other), (other, node)] {
                {
                    let d = self.dir(dir.0, dir.1);
                    if d.err || !matches!(d.state, QpState::Rts) || d.path != port {
                        continue;
                    }
                }
                let alt = 1 - port;
                if self.cfg.apm_enabled
                    && !self.port_down(dir.0, alt)
                    && !self.port_down(dir.1, alt)
                {
                    self.migrate(now, dir, alt);
                } else {
                    self.fail_qp(now, dir.0, dir.1, sink);
                }
            }
        }
    }

    /// True when the direction has a usable path, migrating to the
    /// alternate port on the fly if the current one is down (lazy APM:
    /// covers a QP re-established while its old port is still dark).
    fn ensure_path(&mut self, now: Time, node: u32, peer: u32) -> bool {
        let dir = (node, peer);
        let port = self.dir(node, peer).path;
        if !self.port_down(node, port) && !self.port_down(peer, port) {
            return true;
        }
        let alt = 1 - port;
        if self.cfg.apm_enabled && !self.port_down(node, alt) && !self.port_down(peer, alt) {
            self.migrate(now, dir, alt);
            return true;
        }
        false
    }

    fn migrate(&mut self, now: Time, dir: (u32, u32), alt: u8) {
        let until = now + self.cfg.apm_migration_ns;
        let d = self.dir_mut(dir.0, dir.1);
        d.path = alt;
        if d.migrating_until.replace(until).is_none() {
            self.migrating += 1;
        }
        self.stats.migrations += 1;
        self.node_stats[dir.0 as usize].migrations += 1;
    }

    /// Transport timer: retransmit the pending transfer, or exhaust the
    /// retry budget and error the QP.
    fn retry_timeout<F: FnMut(Time, NicEvent)>(&mut self, now: Time, xfer_id: u64, sink: &mut F) {
        let Some(mut p) = self.inflight.remove(Handle::from_bits(xfer_id)) else {
            // Flushed by a QP error transition in the meantime (the
            // stale generation makes the removal a miss).
            return;
        };
        let (requester, responder) = p.endpoints();
        p.xfer.attempt += 1;
        if p.xfer.attempt > self.cfg.retry_cnt {
            let status = CqeStatus::RetryExceeded {
                attempts: p.xfer.attempt,
            };
            sink(
                now + self.cfg.cqe_ns,
                NicEvent::LocalCqe {
                    node: requester,
                    cqe: Cqe {
                        peer: responder,
                        wr_id: p.xfer.kind.wr_id(),
                        is_recv: false,
                        byte_len: 0,
                        imm: None,
                        status,
                    },
                },
            );
            self.fail_qp(now, requester, responder, sink);
        } else {
            let dst = p.dst;
            self.launch(now, dst, p.xfer, p.tx_dur, p.extra_delay, true, sink);
        }
    }

    /// Timed RNR backoff: try delivery again; burn a retry if the
    /// receiver still has no descriptor; exhaust the budget and error
    /// the sender's QP when it runs out.
    #[allow(clippy::too_many_arguments)]
    fn rnr_timed_retry<F: FnMut(Time, NicEvent)>(
        &mut self,
        now: Time,
        node: u32,
        peer: u32,
        park_id: u64,
        mems: &mut [NodeMem],
        sink: &mut F,
        out: &mut Vec<(u32, Cqe)>,
    ) {
        self.drain_parked(now, node, peer, mems, sink, out);
        let Some(q) = self.nodes[node as usize]
            .parked
            .get_mut_touched(peer as usize)
        else {
            return;
        };
        let Some(pos) = q.iter().position(|p| p.id == park_id) else {
            // Delivered (or flushed) in the meantime.
            return;
        };
        self.stats.rnr_backoff_retries += 1;
        self.node_stats[peer as usize].rnr_backoff_retries += 1;
        let entry = &mut q[pos];
        entry.attempt += 1;
        if entry.attempt > self.cfg.rnr_retry {
            let entry = q.remove(pos).expect("position just found");
            let status = CqeStatus::RnrRetryExceeded {
                attempts: entry.attempt,
            };
            // The RNR NAK that exhausts the budget travels back to the
            // sender, whose QP then errors.
            self.sched_local(
                sink,
                peer,
                Cqe {
                    peer: node,
                    wr_id: entry.xfer.kind.wr_id(),
                    is_recv: false,
                    byte_len: 0,
                    imm: None,
                    status,
                },
                now,
            );
            self.fail_qp(now, peer, node, sink);
        } else {
            let key = ((node as u64) << 48) ^ ((peer as u64) << 32) ^ park_id;
            let at = now + self.cfg.rnr_backoff_jittered_ns(entry.attempt, key);
            sink(
                at,
                NicEvent::RnrTimedRetry {
                    node,
                    peer,
                    park_id,
                },
            );
        }
    }

    /// Transitions the directional QP `requester -> responder` to the
    /// error state: outstanding WQEs (send-queue slots, transfers
    /// awaiting retransmission, parked transfers, reorder-buffer
    /// residents) flush with [`CqeStatus::FlushErr`]; later posts fail
    /// with [`PostError::QpError`]; in-flight arrivals are discarded.
    fn fail_qp<F: FnMut(Time, NicEvent)>(
        &mut self,
        now: Time,
        requester: u32,
        responder: u32,
        sink: &mut F,
    ) {
        {
            let d = self.dir_mut(requester, responder);
            if d.err {
                return;
            }
            d.err = true;
            d.state = QpState::Err;
        }
        self.stats.qp_errors += 1;
        self.node_stats[requester as usize].qp_errors += 1;
        let mut flushed: HashSet<u64> = HashSet::new();
        let mut flush_wrs: Vec<u64> = Vec::new();

        // Send-queue slots whose NIC processing hasn't finished.
        if let Some(q) = self.nodes[requester as usize]
            .sq_busy
            .get_mut_touched(responder as usize)
        {
            for e in q.drain(..) {
                if e.done > now && flushed.insert(e.wr_id) {
                    flush_wrs.push(e.wr_id);
                }
            }
        }
        // Transfers awaiting retransmission on this QP, flushed in
        // admission order: the slab iterates slots in index order, so
        // sort on the monotonic admission stamp to reproduce the
        // oldest-first order the former sorted-ticket flush produced.
        let mut ids: Vec<(u64, Handle)> = self
            .inflight
            .iter()
            .filter(|(_, p)| p.endpoints() == (requester, responder))
            .map(|(h, p)| (p.order, h))
            .collect();
        ids.sort_unstable();
        for (_, h) in ids {
            let p = self.inflight.remove(h).expect("handle collected above");
            let wr = p.xfer.kind.wr_id();
            if flushed.insert(wr) {
                flush_wrs.push(wr);
            }
        }
        // Transfers parked for RNR at the responder.
        if let Some(q) = self.nodes[responder as usize]
            .parked
            .get_mut_touched(requester as usize)
        {
            for e in q.drain(..) {
                let wr = e.xfer.kind.wr_id();
                if flushed.insert(wr) {
                    flush_wrs.push(wr);
                }
            }
        }
        // Reorder-buffer residents that will never be released.
        {
            let d = self.dir_mut(requester, responder);
            for (_, x) in std::mem::take(&mut d.rx_ooo) {
                let wr = x.kind.wr_id();
                if flushed.insert(wr) {
                    flush_wrs.push(wr);
                }
            }
            d.rx_expected = 0;
        }

        self.stats.flushed_wqes += flush_wrs.len() as u64;
        self.node_stats[requester as usize].flushed_wqes += flush_wrs.len() as u64;
        for wr_id in flush_wrs {
            sink(
                now + self.cfg.cqe_ns,
                NicEvent::LocalCqe {
                    node: requester,
                    cqe: Cqe {
                        peer: responder,
                        wr_id,
                        is_recv: false,
                        byte_len: 0,
                        imm: None,
                        status: CqeStatus::FlushErr,
                    },
                },
            );
        }
    }

    /// Delivers parked transfers of `(node, peer)` while receive
    /// descriptors are available.
    fn drain_parked<F: FnMut(Time, NicEvent)>(
        &mut self,
        now: Time,
        node: u32,
        peer: u32,
        mems: &mut [NodeMem],
        sink: &mut F,
        out: &mut Vec<(u32, Cqe)>,
    ) {
        loop {
            let node_st = &mut self.nodes[node as usize];
            if node_st.recvq[peer as usize].is_empty() {
                break;
            }
            let Some(entry) = node_st
                .parked
                .get_mut_touched(peer as usize)
                .and_then(|q| q.pop_front())
            else {
                break;
            };
            self.deliver(now, node, entry.xfer, mems, sink, out);
        }
    }

    /// Entry point for transfers reaching `dst`: discards traffic on
    /// errored QPs and, when fault injection is active, enforces per-QP
    /// sequence order through the reorder buffer before delivery.
    fn arrive<F: FnMut(Time, NicEvent)>(
        &mut self,
        now: Time,
        dst: u32,
        xfer: Transfer,
        mems: &mut [NodeMem],
        sink: &mut F,
        out: &mut Vec<(u32, Cqe)>,
    ) {
        let dir = (xfer.src, dst);
        {
            let d = self.dir(dir.0, dir.1);
            if xfer.epoch != d.epoch {
                // Launched by a previous incarnation of this QP (reset
                // while the transfer was in flight): stale, discard.
                self.stats.flushed_wqes += 1;
                self.node_stats[xfer.src as usize].flushed_wqes += 1;
                return;
            }
            if d.err {
                // The QP died while this transfer was in flight: flush it.
                self.stats.flushed_wqes += 1;
                self.node_stats[xfer.src as usize].flushed_wqes += 1;
                return;
            }
        }
        if self.faults.is_none() {
            self.deliver(now, dst, xfer, mems, sink, out);
            return;
        }
        {
            let d = self.dir_mut(dir.0, dir.1);
            if xfer.seq > d.rx_expected {
                d.rx_ooo.insert(xfer.seq, xfer);
                return;
            }
            debug_assert_eq!(xfer.seq, d.rx_expected, "duplicate delivery on RC QP");
        }
        self.deliver(now, dst, xfer, mems, sink, out);
        // Release consecutive reorder-buffer residents.
        loop {
            let d = self.dir_mut(dir.0, dir.1);
            d.rx_expected += 1;
            let next = d.rx_expected;
            let Some(x) = d.rx_ooo.remove(&next) else {
                break;
            };
            self.deliver(now, dst, x, mems, sink, out);
        }
    }

    fn deliver<F: FnMut(Time, NicEvent)>(
        &mut self,
        now: Time,
        dst: u32,
        xfer: Transfer,
        mems: &mut [NodeMem],
        sink: &mut F,
        out: &mut Vec<(u32, Cqe)>,
    ) {
        let src = xfer.src;
        let seq = xfer.seq;
        let attempt = xfer.attempt;
        let epoch = xfer.epoch;
        match xfer.kind {
            TransferKind::Send {
                wr_id,
                data,
                signaled,
            } => {
                if self.cq_full(dst) {
                    self.cq_overflow(now, dst, src, wr_id, sink);
                    return;
                }
                match self.consume_recv(dst, src, data.len() as u64) {
                    ConsumeOutcome::NoDescriptor => {
                        self.stats.rnr_events += 1;
                        self.park(
                            now,
                            dst,
                            src,
                            Transfer {
                                src,
                                seq,
                                attempt,
                                epoch,
                                kind: TransferKind::Send {
                                    wr_id,
                                    data,
                                    signaled,
                                },
                            },
                            sink,
                        );
                    }
                    ConsumeOutcome::TooSmall(rwr) => {
                        self.cq_admit(dst);
                        out.push((
                            dst,
                            Cqe {
                                peer: src,
                                wr_id: rwr.wr_id,
                                is_recv: true,
                                byte_len: 0,
                                imm: None,
                                status: CqeStatus::LocalLengthError {
                                    sent: data.len() as u64,
                                    capacity: rwr.capacity(),
                                },
                            },
                        ));
                        self.sched_local(
                            sink,
                            src,
                            Cqe {
                                peer: dst,
                                wr_id,
                                is_recv: false,
                                byte_len: 0,
                                imm: None,
                                status: CqeStatus::RemoteAccess(MemError::OutOfBounds {
                                    addr: 0,
                                    len: data.len() as u64,
                                    capacity: rwr.capacity(),
                                }),
                            },
                            now,
                        );
                    }
                    ConsumeOutcome::Ok(rwr) => {
                        Self::scatter(&rwr.sges, data.as_slice(), &mut mems[dst as usize].space);
                        self.stats.cqes += 1;
                        self.cq_admit(dst);
                        out.push((
                            dst,
                            Cqe {
                                peer: src,
                                wr_id: rwr.wr_id,
                                is_recv: true,
                                byte_len: data.len() as u64,
                                imm: None,
                                status: CqeStatus::Success,
                            },
                        ));
                        if signaled {
                            self.sched_local(
                                sink,
                                src,
                                Cqe {
                                    peer: dst,
                                    wr_id,
                                    is_recv: false,
                                    byte_len: data.len() as u64,
                                    imm: None,
                                    status: CqeStatus::Success,
                                },
                                now,
                            );
                        }
                    }
                }
            }
            TransferKind::Write {
                wr_id,
                addr,
                rkey,
                data,
                imm,
                signaled,
            } => {
                // A write-with-immediate needs a CQ slot at the target
                // just like a send does.
                if imm.is_some() && self.cq_full(dst) {
                    self.cq_overflow(now, dst, src, wr_id, sink);
                    return;
                }
                // Write-with-immediate consumes a receive descriptor; if
                // none is posted the transfer parks (RNR), data unplaced.
                if imm.is_some() && self.nodes[dst as usize].recvq[src as usize].is_empty() {
                    self.stats.rnr_events += 1;
                    self.park(
                        now,
                        dst,
                        src,
                        Transfer {
                            src,
                            seq,
                            attempt,
                            epoch,
                            kind: TransferKind::Write {
                                wr_id,
                                addr,
                                rkey,
                                data,
                                imm,
                                signaled,
                            },
                        },
                        sink,
                    );
                    return;
                }
                let mem = &mut mems[dst as usize];
                match mem.regs.check(rkey, addr, data.len() as u64) {
                    Err(e) => {
                        self.sched_local(
                            sink,
                            src,
                            Cqe {
                                peer: dst,
                                wr_id,
                                is_recv: false,
                                byte_len: 0,
                                imm: None,
                                status: CqeStatus::RemoteAccess(e),
                            },
                            now,
                        );
                        // The responder NAKs the access; on RC that
                        // terminates the connection — later WQEs must
                        // not complete (they would let the requester
                        // believe partially-rejected data all landed).
                        self.fail_qp(now, src, dst, sink);
                    }
                    Ok(()) => {
                        mem.space
                            .write(addr, data.as_slice())
                            .expect("rkey check guarantees bounds");
                        if let Some(v) = imm {
                            let rwr = self.nodes[dst as usize].recvq[src as usize]
                                .pop_front()
                                .expect("checked non-empty above");
                            self.stats.cqes += 1;
                            self.cq_admit(dst);
                            out.push((
                                dst,
                                Cqe {
                                    peer: src,
                                    wr_id: rwr.wr_id,
                                    is_recv: true,
                                    byte_len: data.len() as u64,
                                    imm: Some(v),
                                    status: CqeStatus::Success,
                                },
                            ));
                        }
                        if signaled {
                            self.sched_local(
                                sink,
                                src,
                                Cqe {
                                    peer: dst,
                                    wr_id,
                                    is_recv: false,
                                    byte_len: data.len() as u64,
                                    imm: None,
                                    status: CqeStatus::Success,
                                },
                                now,
                            );
                        }
                    }
                }
            }
            TransferKind::ReadRequest {
                wr_id,
                addr,
                rkey,
                len,
                scatter,
                signaled,
            } => {
                let mem = &mems[dst as usize];
                match mem.regs.check(rkey, addr, len) {
                    Err(e) => {
                        self.sched_local(
                            sink,
                            src,
                            Cqe {
                                peer: dst,
                                wr_id,
                                is_recv: false,
                                byte_len: 0,
                                imm: None,
                                status: CqeStatus::RemoteAccess(e),
                            },
                            now,
                        );
                        // RC semantics: a remote-access NAK errors the
                        // requesting queue pair (see the Write arm).
                        self.fail_qp(now, src, dst, sink);
                    }
                    Ok(()) => {
                        let data = Payload::build(len as usize, |v| {
                            v.extend_from_slice(
                                mem.space
                                    .slice(addr, len)
                                    .expect("rkey check guarantees bounds"),
                            )
                        });
                        // The response occupies the responder's transmit
                        // engine for its serialization time (and is
                        // itself subject to fault injection).
                        let dur = self.cfg.tx_ns(1, len);
                        self.stats.wqes += 1;
                        self.stats.bytes_on_wire += len;
                        let rseq = self.alloc_seq(dst, src);
                        let repoch = self.epoch_of((dst, src));
                        let resp = Transfer {
                            src: dst,
                            seq: rseq,
                            attempt: 0,
                            epoch: repoch,
                            kind: TransferKind::ReadResponse {
                                wr_id,
                                data,
                                scatter,
                                signaled,
                            },
                        };
                        self.launch(now, src, resp, dur, 0, false, sink);
                    }
                }
            }
            TransferKind::ReadResponse {
                wr_id,
                data,
                scatter,
                signaled,
            } => {
                Self::scatter(&scatter, data.as_slice(), &mut mems[dst as usize].space);
                if signaled {
                    self.stats.cqes += 1;
                    self.cq_admit(dst);
                    out.push((
                        dst,
                        Cqe {
                            peer: src,
                            wr_id,
                            is_recv: false,
                            byte_len: data.len() as u64,
                            imm: None,
                            status: CqeStatus::Success,
                        },
                    ));
                }
            }
        }
    }

    fn sched_local<F: FnMut(Time, NicEvent)>(&self, sink: &mut F, node: u32, cqe: Cqe, now: Time) {
        // ACK travels back one propagation delay; then the CQE is
        // generated.
        sink(
            now + self.cfg.prop_delay_ns + self.cfg.cqe_ns,
            NicEvent::LocalCqe { node, cqe },
        );
    }

    /// Parks a transfer awaiting a receive descriptor. With a finite
    /// `rnr_retry` budget the RNR NAK starts a timed backoff loop;
    /// with the infinite budget (the IB value 7, our default) the
    /// transfer waits silently until a receive is posted.
    fn park<F: FnMut(Time, NicEvent)>(
        &mut self,
        now: Time,
        dst: u32,
        src: u32,
        xfer: Transfer,
        sink: &mut F,
    ) {
        let id = self.alloc_id();
        self.nodes[dst as usize].parked[src as usize].push_back(ParkedEntry {
            id,
            attempt: 0,
            xfer,
        });
        if !self.cfg.rnr_infinite() {
            // Jitter the backoff per parked transfer: an incast cohort
            // parked in the same instant must not retry in lockstep.
            let key = ((dst as u64) << 48) ^ ((src as u64) << 32) ^ id;
            sink(
                now + self.cfg.rnr_backoff_jittered_ns(0, key),
                NicEvent::RnrTimedRetry {
                    node: dst,
                    peer: src,
                    park_id: id,
                },
            );
        }
    }

    fn consume_recv(&mut self, dst: u32, src: u32, len: u64) -> ConsumeOutcome {
        let wm = self.cfg.recv_low_watermark;
        let Some(q) = self.nodes[dst as usize].recvq.get_mut_touched(src as usize) else {
            return ConsumeOutcome::NoDescriptor;
        };
        let outcome = match q.front() {
            None => return ConsumeOutcome::NoDescriptor,
            Some(r) if r.capacity() < len => {
                let rwr = q.pop_front().expect("front exists");
                ConsumeOutcome::TooSmall(rwr)
            }
            Some(_) => ConsumeOutcome::Ok(q.pop_front().expect("front exists")),
        };
        // SRQ-limit-style watermark: count the crossing (edge, not
        // level) so the embedder sees one event per dip and can grant
        // credits / repost before the queue empties into RNR.
        if wm > 0 && q.len() + 1 == wm {
            self.stats.recv_low_water += 1;
            self.node_stats[dst as usize].recv_low_water += 1;
        }
        outcome
    }

    fn scatter(sges: &[Sge], data: &[u8], space: &mut AddressSpace) {
        let mut off = 0usize;
        for s in sges {
            if off >= data.len() {
                break;
            }
            let take = (s.len as usize).min(data.len() - off);
            space
                .write(s.addr, &data[off..off + take])
                .expect("sge validated at post");
            off += take;
        }
        debug_assert_eq!(off, data.len(), "scatter capacity checked before");
    }
}

enum ConsumeOutcome {
    NoDescriptor,
    TooSmall(RecvWr),
    Ok(RecvWr),
}
