//! The simulated fabric: HCAs, queue pairs, and the switch.
//!
//! Topology: `n` nodes, fully connected through one switch, one
//! reliable-connection queue pair per ordered node pair (as MVAPICH sets
//! up). Each node has one NIC transmit engine modelled as a FIFO
//! [`SerialResource`]; serialization on this engine plus a fixed
//! propagation delay gives RC's per-QP in-order delivery for free.
//!
//! Functional behaviour:
//!
//! * data is **gathered at post time** from the sender's address space
//!   (protocols must not mutate a posted buffer before its completion —
//!   true of verbs as well) and **placed at arrival time**,
//! * rkey checks happen at the responder, like real IB; failures produce
//!   an error completion at the requester and move no data,
//! * a send (or write-with-immediate) arriving at a QP with an empty
//!   receive queue parks in an RNR queue and is delivered when a
//!   receive is posted; the RNR counter lets tests assert that the MPI
//!   layer's flow control avoids this path.

use crate::model::NetConfig;
use crate::wr::{Cqe, CqeStatus, Opcode, PostError, RecvWr, SendWr, Sge};
use ibdt_memreg::{AddressSpace, MemError, RegTable};
use ibdt_simcore::resource::SerialResource;
use ibdt_simcore::time::Time;
use std::collections::{HashMap, VecDeque};

/// One rank's memory: address space + registration table.
#[derive(Debug)]
pub struct NodeMem {
    /// Flat memory.
    pub space: AddressSpace,
    /// Live registrations (lkey/rkey namespace).
    pub regs: RegTable,
}

impl NodeMem {
    /// Creates a node memory of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self {
            space: AddressSpace::new(capacity),
            regs: RegTable::new(),
        }
    }
}

/// Events internal to the fabric. The embedding world forwards these to
/// [`Fabric::handle`] when they fire.
#[derive(Debug)]
pub enum NicEvent {
    /// A transfer arrives at `dst`'s HCA.
    Arrive {
        /// Destination node.
        dst: u32,
        /// The in-flight transfer.
        xfer: Transfer,
    },
    /// A locally generated completion becomes visible (post-ACK).
    LocalCqe {
        /// Node whose CQ receives the entry.
        node: u32,
        /// The entry.
        cqe: Cqe,
    },
    /// Re-examine the RNR park queue of `(node, peer)` after a receive
    /// was posted.
    RnrRetry {
        /// Node owning the receive queue.
        node: u32,
        /// Peer whose parked transfers should be retried.
        peer: u32,
    },
}

/// An in-flight transfer (one WR's payload).
#[derive(Debug)]
pub struct Transfer {
    src: u32,
    kind: TransferKind,
}

#[derive(Debug)]
enum TransferKind {
    /// Channel-semantics send payload.
    Send {
        wr_id: u64,
        data: Vec<u8>,
        signaled: bool,
    },
    /// RDMA write payload (optionally with immediate data).
    Write {
        wr_id: u64,
        addr: u64,
        rkey: u32,
        data: Vec<u8>,
        imm: Option<u32>,
        signaled: bool,
    },
    /// RDMA read request.
    ReadRequest {
        wr_id: u64,
        addr: u64,
        rkey: u32,
        len: u64,
        scatter: Vec<Sge>,
        signaled: bool,
    },
    /// RDMA read response carrying the data back.
    ReadResponse {
        wr_id: u64,
        data: Vec<u8>,
        scatter: Vec<Sge>,
        signaled: bool,
    },
}

#[derive(Debug)]
struct Node {
    tx: SerialResource,
    /// Receive queues, one per peer QP.
    recvq: HashMap<u32, VecDeque<RecvWr>>,
    /// Parked transfers awaiting a receive descriptor (RNR).
    parked: HashMap<u32, VecDeque<Transfer>>,
    /// NIC-processing finish times of posted-but-unprocessed send WQEs,
    /// per peer QP (send-queue occupancy accounting).
    sq_busy: HashMap<u32, VecDeque<Time>>,
}

/// Fabric statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Work requests processed by transmit engines.
    pub wqes: u64,
    /// Payload bytes serialized onto links.
    pub bytes_on_wire: u64,
    /// Times a send/write-imm found no receive descriptor posted.
    pub rnr_events: u64,
    /// Completions generated.
    pub cqes: u64,
}

/// The simulated InfiniBand fabric.
#[derive(Debug)]
pub struct Fabric {
    cfg: NetConfig,
    nodes: Vec<Node>,
    stats: FabricStats,
}

impl Fabric {
    /// Creates a fabric of `n` fully connected nodes.
    pub fn new(n: usize, cfg: NetConfig) -> Self {
        let nodes = (0..n)
            .map(|_| Node {
                tx: SerialResource::new("nic-tx").with_trace(),
                recvq: HashMap::new(),
                parked: HashMap::new(),
                sq_busy: HashMap::new(),
            })
            .collect();
        Self {
            cfg,
            nodes,
            stats: FabricStats::default(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for an empty fabric.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Cost model in use.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> FabricStats {
        self.stats
    }

    /// The transmit engine of `node` (utilization / trace inspection).
    pub fn tx_engine(&self, node: u32) -> &SerialResource {
        &self.nodes[node as usize].tx
    }

    fn validate_sges(
        &self,
        node: u32,
        sges: &[Sge],
        mem: &NodeMem,
    ) -> Result<(), PostError> {
        if sges.len() > self.cfg.max_sge {
            return Err(PostError::TooManySges {
                got: sges.len(),
                max: self.cfg.max_sge,
            });
        }
        debug_assert!((node as usize) < self.nodes.len());
        for s in sges {
            mem.regs
                .check(s.lkey, s.addr, s.len)
                .map_err(PostError::BadLocalKey)?;
        }
        Ok(())
    }

    fn gather(sges: &[Sge], space: &AddressSpace) -> Vec<u8> {
        let total: usize = sges.iter().map(|s| s.len as usize).sum();
        let mut data = Vec::with_capacity(total);
        for s in sges {
            data.extend_from_slice(
                space
                    .slice(s.addr, s.len)
                    .expect("sge validated against a live registration"),
            );
        }
        data
    }

    /// Posts one send work request on the QP `node -> peer`.
    ///
    /// `ready_at` is when the descriptor reaches the HCA (the caller has
    /// already charged the posting CPU time). Completions and arrivals
    /// are scheduled through `sink`.
    pub fn post_send<F: FnMut(Time, NicEvent)>(
        &mut self,
        ready_at: Time,
        node: u32,
        peer: u32,
        wr: SendWr,
        mems: &[NodeMem],
        sink: &mut F,
    ) -> Result<(), PostError> {
        self.post_send_inner(ready_at, node, peer, wr, mems, sink, false)
    }

    #[allow(clippy::too_many_arguments)]
    fn post_send_inner<F: FnMut(Time, NicEvent)>(
        &mut self,
        ready_at: Time,
        node: u32,
        peer: u32,
        wr: SendWr,
        mems: &[NodeMem],
        sink: &mut F,
        batched: bool,
    ) -> Result<(), PostError> {
        if peer as usize >= self.nodes.len() {
            return Err(PostError::NoSuchPeer { peer });
        }
        let mem = &mems[node as usize];
        self.validate_sges(node, &wr.sges, mem)?;
        if matches!(wr.opcode, Opcode::RdmaWrite | Opcode::RdmaWriteImm(_) | Opcode::RdmaRead)
            && wr.remote.is_none()
        {
            return Err(PostError::MissingRemote);
        }

        let bytes = wr.total_len();
        let (tx_dur, extra_delay) = match wr.opcode {
            // A read request is small on the wire; its payload crosses
            // on the responder's transmit engine.
            Opcode::RdmaRead => (
                self.cfg.tx_ns_batched(wr.sges.len(), 0, batched),
                self.cfg.rdma_read_extra_ns,
            ),
            _ => (self.cfg.tx_ns_batched(wr.sges.len(), bytes, batched), 0),
        };
        // Send-queue depth: WQEs occupy the queue from post until the
        // NIC finishes processing them.
        {
            let q = self.nodes[node as usize].sq_busy.entry(peer).or_default();
            while q.front().is_some_and(|&t| t <= ready_at) {
                q.pop_front();
            }
            if q.len() >= self.cfg.sq_depth {
                return Err(PostError::QueueFull {
                    depth: self.cfg.sq_depth,
                });
            }
        }
        let ser_done = self.nodes[node as usize]
            .tx
            .reserve_labeled(ready_at, tx_dur, "wire");
        self.nodes[node as usize]
            .sq_busy
            .entry(peer)
            .or_default()
            .push_back(ser_done);
        self.stats.wqes += 1;

        let kind = match wr.opcode {
            Opcode::Send => {
                self.stats.bytes_on_wire += bytes;
                TransferKind::Send {
                    wr_id: wr.wr_id,
                    data: Self::gather(&wr.sges, &mem.space),
                    signaled: wr.signaled,
                }
            }
            Opcode::RdmaWrite | Opcode::RdmaWriteImm(_) => {
                self.stats.bytes_on_wire += bytes;
                let (addr, rkey) = wr.remote.expect("checked above");
                let imm = match wr.opcode {
                    Opcode::RdmaWriteImm(v) => Some(v),
                    _ => None,
                };
                TransferKind::Write {
                    wr_id: wr.wr_id,
                    addr,
                    rkey,
                    data: Self::gather(&wr.sges, &mem.space),
                    imm,
                    signaled: wr.signaled,
                }
            }
            Opcode::RdmaRead => {
                let (addr, rkey) = wr.remote.expect("checked above");
                TransferKind::ReadRequest {
                    wr_id: wr.wr_id,
                    addr,
                    rkey,
                    len: bytes,
                    scatter: wr.sges,
                    signaled: wr.signaled,
                }
            }
        };
        sink(
            ser_done + self.cfg.prop_delay_ns + extra_delay,
            NicEvent::Arrive {
                dst: peer,
                xfer: Transfer { src: node, kind },
            },
        );
        Ok(())
    }

    /// Posts a list of descriptors in one call (the extended interface
    /// of §7.4). Functionally identical to posting one by one; the CPU
    /// saving is priced by the caller via
    /// [`NetConfig::post_list_ns`].
    pub fn post_send_list<F: FnMut(Time, NicEvent)>(
        &mut self,
        ready_at: Time,
        node: u32,
        peer: u32,
        wrs: Vec<SendWr>,
        mems: &[NodeMem],
        sink: &mut F,
    ) -> Result<(), PostError> {
        for wr in wrs {
            self.post_send_inner(ready_at, node, peer, wr, mems, sink, true)?;
        }
        Ok(())
    }

    /// Posts a receive descriptor on the QP `node <- peer`.
    pub fn post_recv<F: FnMut(Time, NicEvent)>(
        &mut self,
        now: Time,
        node: u32,
        peer: u32,
        wr: RecvWr,
        mems: &[NodeMem],
        sink: &mut F,
    ) -> Result<(), PostError> {
        if peer as usize >= self.nodes.len() {
            return Err(PostError::NoSuchPeer { peer });
        }
        self.validate_sges(node, &wr.sges, &mems[node as usize])?;
        let n = &mut self.nodes[node as usize];
        n.recvq.entry(peer).or_default().push_back(wr);
        if n.parked.get(&peer).is_some_and(|q| !q.is_empty()) {
            sink(now, NicEvent::RnrRetry { node, peer });
        }
        Ok(())
    }

    /// Handles a fabric event, returning completions that become visible
    /// to the MPI progress engines **now**.
    pub fn handle<F: FnMut(Time, NicEvent)>(
        &mut self,
        now: Time,
        ev: NicEvent,
        mems: &mut [NodeMem],
        sink: &mut F,
    ) -> Vec<(u32, Cqe)> {
        match ev {
            NicEvent::LocalCqe { node, cqe } => {
                self.stats.cqes += 1;
                vec![(node, cqe)]
            }
            NicEvent::Arrive { dst, xfer } => self.arrive(now, dst, xfer, mems, sink),
            NicEvent::RnrRetry { node, peer } => {
                let mut out = Vec::new();
                loop {
                    let node_st = &mut self.nodes[node as usize];
                    let has_recv = node_st.recvq.get(&peer).is_some_and(|q| !q.is_empty());
                    let Some(q) = node_st.parked.get_mut(&peer) else {
                        break;
                    };
                    if !has_recv || q.is_empty() {
                        break;
                    }
                    let xfer = q.pop_front().expect("checked non-empty");
                    out.extend(self.arrive(now, node, xfer, mems, sink));
                }
                out
            }
        }
    }

    fn arrive<F: FnMut(Time, NicEvent)>(
        &mut self,
        now: Time,
        dst: u32,
        xfer: Transfer,
        mems: &mut [NodeMem],
        sink: &mut F,
    ) -> Vec<(u32, Cqe)> {
        let src = xfer.src;
        let mut out = Vec::new();
        match xfer.kind {
            TransferKind::Send { wr_id, data, signaled } => {
                match self.consume_recv(dst, src, data.len() as u64) {
                    ConsumeOutcome::NoDescriptor => {
                        self.stats.rnr_events += 1;
                        self.park(dst, src, Transfer {
                            src,
                            kind: TransferKind::Send { wr_id, data, signaled },
                        });
                    }
                    ConsumeOutcome::TooSmall(rwr) => {
                        out.push((dst, Cqe {
                            peer: src,
                            wr_id: rwr.wr_id,
                            is_recv: true,
                            byte_len: 0,
                            imm: None,
                            status: CqeStatus::LocalLengthError {
                                sent: data.len() as u64,
                                capacity: rwr.capacity(),
                            },
                        }));
                        self.sched_local(sink, src, Cqe {
                            peer: dst,
                            wr_id,
                            is_recv: false,
                            byte_len: 0,
                            imm: None,
                            status: CqeStatus::RemoteAccess(MemError::OutOfBounds {
                                addr: 0,
                                len: data.len() as u64,
                                capacity: rwr.capacity(),
                            }),
                        }, now);
                    }
                    ConsumeOutcome::Ok(rwr) => {
                        Self::scatter(&rwr.sges, &data, &mut mems[dst as usize].space);
                        self.stats.cqes += 1;
                        out.push((dst, Cqe {
                            peer: src,
                            wr_id: rwr.wr_id,
                            is_recv: true,
                            byte_len: data.len() as u64,
                            imm: None,
                            status: CqeStatus::Success,
                        }));
                        if signaled {
                            self.sched_local(sink, src, Cqe {
                                peer: dst,
                                wr_id,
                                is_recv: false,
                                byte_len: data.len() as u64,
                                imm: None,
                                status: CqeStatus::Success,
                            }, now);
                        }
                    }
                }
            }
            TransferKind::Write { wr_id, addr, rkey, data, imm, signaled } => {
                // Write-with-immediate consumes a receive descriptor; if
                // none is posted the transfer parks (RNR), data unplaced.
                if imm.is_some()
                    && !self
                        .nodes[dst as usize]
                        .recvq
                        .get(&src)
                        .is_some_and(|q| !q.is_empty())
                {
                    self.stats.rnr_events += 1;
                    self.park(dst, src, Transfer {
                        src,
                        kind: TransferKind::Write { wr_id, addr, rkey, data, imm, signaled },
                    });
                    return out;
                }
                let mem = &mut mems[dst as usize];
                match mem.regs.check(rkey, addr, data.len() as u64) {
                    Err(e) => {
                        self.sched_local(sink, src, Cqe {
                            peer: dst,
                            wr_id,
                            is_recv: false,
                            byte_len: 0,
                            imm: None,
                            status: CqeStatus::RemoteAccess(e),
                        }, now);
                    }
                    Ok(()) => {
                        mem.space
                            .write(addr, &data)
                            .expect("rkey check guarantees bounds");
                        if let Some(v) = imm {
                            let rwr = self.nodes[dst as usize]
                                .recvq
                                .get_mut(&src)
                                .and_then(|q| q.pop_front())
                                .expect("checked non-empty above");
                            self.stats.cqes += 1;
                            out.push((dst, Cqe {
                                peer: src,
                                wr_id: rwr.wr_id,
                                is_recv: true,
                                byte_len: data.len() as u64,
                                imm: Some(v),
                                status: CqeStatus::Success,
                            }));
                        }
                        if signaled {
                            self.sched_local(sink, src, Cqe {
                                peer: dst,
                                wr_id,
                                is_recv: false,
                                byte_len: data.len() as u64,
                                imm: None,
                                status: CqeStatus::Success,
                            }, now);
                        }
                    }
                }
            }
            TransferKind::ReadRequest { wr_id, addr, rkey, len, scatter, signaled } => {
                let mem = &mems[dst as usize];
                match mem.regs.check(rkey, addr, len) {
                    Err(e) => {
                        self.sched_local(sink, src, Cqe {
                            peer: dst,
                            wr_id,
                            is_recv: false,
                            byte_len: 0,
                            imm: None,
                            status: CqeStatus::RemoteAccess(e),
                        }, now);
                    }
                    Ok(()) => {
                        let data = mem
                            .space
                            .read(addr, len)
                            .expect("rkey check guarantees bounds");
                        // The response occupies the responder's transmit
                        // engine for its serialization time.
                        let dur = self.cfg.tx_ns(1, len);
                        let done = self.nodes[dst as usize]
                            .tx
                            .reserve_labeled(now, dur, "wire");
                        self.stats.wqes += 1;
                        self.stats.bytes_on_wire += len;
                        sink(
                            done + self.cfg.prop_delay_ns,
                            NicEvent::Arrive {
                                dst: src,
                                xfer: Transfer {
                                    src: dst,
                                    kind: TransferKind::ReadResponse {
                                        wr_id,
                                        data,
                                        scatter,
                                        signaled,
                                    },
                                },
                            },
                        );
                    }
                }
            }
            TransferKind::ReadResponse { wr_id, data, scatter, signaled } => {
                Self::scatter(&scatter, &data, &mut mems[dst as usize].space);
                if signaled {
                    self.stats.cqes += 1;
                    out.push((dst, Cqe {
                        peer: src,
                        wr_id,
                        is_recv: false,
                        byte_len: data.len() as u64,
                        imm: None,
                        status: CqeStatus::Success,
                    }));
                }
            }
        }
        out
    }

    fn sched_local<F: FnMut(Time, NicEvent)>(
        &self,
        sink: &mut F,
        node: u32,
        cqe: Cqe,
        now: Time,
    ) {
        // ACK travels back one propagation delay; then the CQE is
        // generated.
        sink(
            now + self.cfg.prop_delay_ns + self.cfg.cqe_ns,
            NicEvent::LocalCqe { node, cqe },
        );
    }

    fn park(&mut self, dst: u32, src: u32, xfer: Transfer) {
        self.nodes[dst as usize]
            .parked
            .entry(src)
            .or_default()
            .push_back(xfer);
    }

    fn consume_recv(&mut self, dst: u32, src: u32, len: u64) -> ConsumeOutcome {
        let q = self.nodes[dst as usize].recvq.entry(src).or_default();
        match q.front() {
            None => ConsumeOutcome::NoDescriptor,
            Some(r) if r.capacity() < len => {
                let rwr = q.pop_front().expect("front exists");
                ConsumeOutcome::TooSmall(rwr)
            }
            Some(_) => ConsumeOutcome::Ok(q.pop_front().expect("front exists")),
        }
    }

    fn scatter(sges: &[Sge], data: &[u8], space: &mut AddressSpace) {
        let mut off = 0usize;
        for s in sges {
            if off >= data.len() {
                break;
            }
            let take = (s.len as usize).min(data.len() - off);
            space
                .write(s.addr, &data[off..off + take])
                .expect("sge validated at post");
            off += take;
        }
        debug_assert_eq!(off, data.len(), "scatter capacity checked before");
    }
}

enum ConsumeOutcome {
    NoDescriptor,
    TooSmall(RecvWr),
    Ok(RecvWr),
}
