//! Shared-memory transport backend.
//!
//! Models intra-node MPI communication the way Nemesis-style channels
//! implement it, with two selectable copy disciplines:
//!
//! * **Double copy** ([`ShmCopyMode::Double`]): the sender packs into a
//!   bounded shared bounce segment slot by slot and the receiver
//!   unpacks out of it — two copies per byte, pipelined across
//!   `seg_bytes / slot_bytes` slots (segment-slot flow control bounds
//!   the overlap exactly as [`two_stage_finish_ns`] describes).
//! * **Single copy** ([`ShmCopyMode::Single`]): a CMA-style
//!   cross-process copy (`process_vm_readv`-like) moves the bytes in
//!   one pass, paying a per-work-request syscall setup cost
//!   [`ShmConfig::cma_setup_ns`]. The per-WR setup is what makes
//!   many-small-WR schemes (Multi-W) lose on this transport while they
//!   win on IB.
//!
//! Copy **placement** is explicit and charged on the correct rank's
//! serial copy engine (the per-node [`SerialResource`] doubling as the
//! progress-engine CPU for transport copies):
//!
//! | opcode            | double copy                    | single copy           |
//! |-------------------|--------------------------------|-----------------------|
//! | `Send`            | in: sender, out: receiver      | receiver pulls        |
//! | `RdmaWrite[Imm]`  | in: sender, out: receiver      | sender pushes         |
//! | `RdmaRead`        | in: responder, out: requester  | requester pulls       |
//!
//! Functional behaviour mirrors [`Fabric`](crate::fabric::Fabric):
//! payloads are gathered at post time and placed at delivery time,
//! lkey/rkey checks run against the same registration tables (the MPI
//! layer registers identically on every transport), and a send or
//! write-with-immediate arriving with no receive descriptor parks in
//! an RNR queue drained on the next receive post. The backend has no
//! fault injection, QP lifecycle, or crash-stop membership: the
//! [`Transport`] queries answer with the inert values, and installing
//! a non-inert fault plan is rejected.
//!
//! The model is deterministic: no randomness, no host-time reads, so
//! the same seed and configuration produce an identical
//! `RunStats` fingerprint on every run.

use crate::fabric::{FabricStats, NicEvent, NodeMem};
use crate::fault::FaultPlan;
use crate::payload::Payload;
use crate::transport::{Transport, TransportClass};
use crate::wr::{Cqe, CqeStatus, Opcode, PostError, RecvWr, SendWr, Sge, SgeList};
use ibdt_memreg::AddressSpace;
use ibdt_simcore::pipeline::two_stage_finish_ns;
use ibdt_simcore::resource::SerialResource;
use ibdt_simcore::slab::{Handle, Slab};
use ibdt_simcore::time::{transfer_ns, Time};
use std::collections::VecDeque;
use std::fmt;

/// How many copies each byte pays crossing the shared-memory channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShmCopyMode {
    /// Bounce through a bounded shared segment: copy in, copy out.
    Double,
    /// CMA-style direct cross-process copy: one copy, one syscall
    /// setup per work request.
    Single,
}

/// Shared-memory channel cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShmConfig {
    /// Copy discipline.
    pub copy_mode: ShmCopyMode,
    /// Bounce segment capacity per in-flight transfer (double copy).
    pub seg_bytes: u64,
    /// Bounce slot granularity; `seg_bytes / slot_bytes` slots bound
    /// the copy-in/copy-out overlap.
    pub slot_bytes: u64,
    /// Memcpy bandwidth into/out of the shared segment.
    pub bounce_bw_bps: u64,
    /// Per-slot bookkeeping (head/tail publication) on the bounce path.
    pub slot_overhead_ns: Time,
    /// Per-work-request syscall setup on the single-copy path.
    pub cma_setup_ns: Time,
    /// Cross-process copy bandwidth on the single-copy path.
    pub cma_bw_bps: u64,
    /// Peer-notification latency (futex/doorbell wake).
    pub doorbell_ns: Time,
    /// Local completion visibility delay.
    pub cqe_ns: Time,
    /// Scatter/gather entries accepted per work request.
    pub max_sge: usize,
}

impl Default for ShmConfig {
    fn default() -> Self {
        // Calibrated against single-node runs of the arXiv:2511.13804
        // study: bounce memcpy ~6 GB/s (two crossings of the memory
        // bus), CMA ~9 GB/s with a ~700 ns process_vm_readv setup.
        ShmConfig {
            copy_mode: ShmCopyMode::Double,
            seg_bytes: 128 * 1024,
            slot_bytes: 16 * 1024,
            bounce_bw_bps: 6_000_000_000,
            slot_overhead_ns: 150,
            cma_setup_ns: 2_000,
            cma_bw_bps: 9_000_000_000,
            doorbell_ns: 120,
            cqe_ns: 60,
            max_sge: 64,
        }
    }
}

/// A rejected shared-memory configuration (see [`ShmConfig::validate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShmConfigError {
    /// `seg_bytes` is zero.
    ZeroSegment,
    /// `slot_bytes` is zero.
    ZeroSlot,
    /// A slot does not fit in the segment.
    SlotExceedsSegment {
        /// Offending slot size.
        slot: u64,
        /// Segment capacity.
        seg: u64,
    },
    /// The segment is not a whole number of slots.
    SegmentNotSlotMultiple {
        /// Offending slot size.
        slot: u64,
        /// Segment capacity.
        seg: u64,
    },
    /// `bounce_bw_bps` is zero.
    ZeroBounceBandwidth,
    /// `cma_bw_bps` is zero.
    ZeroCmaBandwidth,
    /// `max_sge` is zero.
    ZeroMaxSge,
}

impl fmt::Display for ShmConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShmConfigError::ZeroSegment => write!(f, "ShmConfig.seg_bytes must be positive"),
            ShmConfigError::ZeroSlot => write!(f, "ShmConfig.slot_bytes must be positive"),
            ShmConfigError::SlotExceedsSegment { slot, seg } => write!(
                f,
                "ShmConfig.slot_bytes ({slot}) exceeds seg_bytes ({seg})"
            ),
            ShmConfigError::SegmentNotSlotMultiple { slot, seg } => write!(
                f,
                "ShmConfig.seg_bytes ({seg}) is not a multiple of slot_bytes ({slot})"
            ),
            ShmConfigError::ZeroBounceBandwidth => {
                write!(f, "ShmConfig.bounce_bw_bps must be positive")
            }
            ShmConfigError::ZeroCmaBandwidth => {
                write!(f, "ShmConfig.cma_bw_bps must be positive")
            }
            ShmConfigError::ZeroMaxSge => write!(f, "ShmConfig.max_sge must be positive"),
        }
    }
}

impl std::error::Error for ShmConfigError {}

impl ShmConfig {
    /// Checks the configuration, rejecting parameter combinations the
    /// cost model cannot price (division by zero, empty pipelines)
    /// with a typed error instead of panicking or silently clamping.
    pub fn validate(&self) -> Result<(), ShmConfigError> {
        if self.seg_bytes == 0 {
            return Err(ShmConfigError::ZeroSegment);
        }
        if self.slot_bytes == 0 {
            return Err(ShmConfigError::ZeroSlot);
        }
        if self.slot_bytes > self.seg_bytes {
            return Err(ShmConfigError::SlotExceedsSegment {
                slot: self.slot_bytes,
                seg: self.seg_bytes,
            });
        }
        if !self.seg_bytes.is_multiple_of(self.slot_bytes) {
            return Err(ShmConfigError::SegmentNotSlotMultiple {
                slot: self.slot_bytes,
                seg: self.seg_bytes,
            });
        }
        if self.bounce_bw_bps == 0 {
            return Err(ShmConfigError::ZeroBounceBandwidth);
        }
        if self.cma_bw_bps == 0 {
            return Err(ShmConfigError::ZeroCmaBandwidth);
        }
        if self.max_sge == 0 {
            return Err(ShmConfigError::ZeroMaxSge);
        }
        Ok(())
    }

    /// Number of bounce slots available for overlap.
    fn slots(&self) -> usize {
        (self.seg_bytes / self.slot_bytes) as usize
    }

    /// Chunking of an `n`-byte bounce transfer: `(chunks, per-chunk
    /// copy time)`. Chunks are sized evenly (ceil) so the closed-form
    /// pipeline bound stays exact.
    fn bounce_chunks(&self, n: u64) -> (u64, Time) {
        let chunks = n.div_ceil(self.slot_bytes).max(1);
        let per = n.div_ceil(chunks);
        (
            chunks,
            self.slot_overhead_ns + transfer_ns(per, self.bounce_bw_bps),
        )
    }

    /// Single-copy cost of one `n`-byte work request.
    fn cma_ns(&self, n: u64) -> Time {
        self.cma_setup_ns + transfer_ns(n, self.cma_bw_bps)
    }
}

/// What a delivered shared-memory transfer does at the destination.
#[derive(Debug)]
enum ShmKind {
    /// Channel-semantics send payload.
    Send {
        wr_id: u64,
        data: Payload,
        signaled: bool,
        /// Double copy: completion floor from the slot-flow-control
        /// pipeline (the receiver cannot finish unpacking before it).
        pipe_floor: Time,
    },
    /// RDMA-write payload (optionally with immediate data). On the
    /// single-copy path the data was already pushed by the sender and
    /// `placed` is true; delivery only performs the rkey-checked write
    /// when the bounce path carries it.
    Write {
        wr_id: u64,
        addr: u64,
        rkey: u32,
        data: Payload,
        imm: Option<u32>,
        signaled: bool,
        pipe_floor: Time,
        placed: bool,
    },
    /// RDMA-read payload arriving back at the requester; the copy cost
    /// was charged at post time.
    ReadResponse {
        wr_id: u64,
        data: Payload,
        scatter: SgeList,
        signaled: bool,
    },
}

#[derive(Debug)]
struct ShmXfer {
    src: u32,
    kind: ShmKind,
}

#[derive(Debug)]
struct ShmNode {
    /// Per-rank transport copy engine (the progress-engine CPU doing
    /// bounce/CMA copies), traced for the pack/wire overlap statistic.
    engine: SerialResource,
    /// Receive descriptors per peer.
    recvq: Vec<VecDeque<RecvWr>>,
    /// RNR-parked transfers per peer.
    parked: Vec<VecDeque<ShmXfer>>,
}

/// The shared-memory channel: `n` ranks on one node, pairwise
/// segments/CMA permissions, no switch and no NIC.
#[derive(Debug)]
pub struct ShmChannel {
    cfg: ShmConfig,
    nodes: Vec<ShmNode>,
    inflight: Slab<ShmXfer>,
    stats: FabricStats,
    node_stats: Vec<FabricStats>,
}

impl ShmChannel {
    /// Creates a channel connecting `n` ranks. Panics on an invalid
    /// configuration — validate first with [`ShmConfig::validate`]
    /// (the embedding `Cluster` does).
    pub fn new(n: usize, cfg: ShmConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid shm configuration: {e}");
        }
        ShmChannel {
            cfg,
            nodes: (0..n)
                .map(|_| ShmNode {
                    engine: SerialResource::new("shm-copy").with_trace(),
                    recvq: (0..n).map(|_| VecDeque::new()).collect(),
                    parked: (0..n).map(|_| VecDeque::new()).collect(),
                })
                .collect(),
            inflight: Slab::new(),
            stats: FabricStats::default(),
            node_stats: vec![FabricStats::default(); n],
        }
    }

    /// Returns the channel to its just-constructed state in place,
    /// keeping queue and trace capacity: copy engines idle at t=0,
    /// receive/park queues empty but warm, stats zeroed. A reset
    /// channel behaves bit-identically to [`ShmChannel::new`] — world
    /// recycling relies on this.
    pub fn reset(&mut self) {
        for n in &mut self.nodes {
            n.engine.reset();
            for q in &mut n.recvq {
                q.clear();
            }
            for q in &mut n.parked {
                q.clear();
            }
        }
        self.inflight.clear();
        self.stats = FabricStats::default();
        for s in &mut self.node_stats {
            *s = FabricStats::default();
        }
    }

    /// The channel's configuration.
    pub fn config(&self) -> &ShmConfig {
        &self.cfg
    }

    /// Number of ranks on the channel.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the channel connects no ranks.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn validate_sges(&self, sges: &[Sge], mem: &NodeMem) -> Result<(), PostError> {
        if sges.len() > self.cfg.max_sge {
            return Err(PostError::TooManySges {
                got: sges.len(),
                max: self.cfg.max_sge,
            });
        }
        for s in sges {
            mem.regs
                .check(s.lkey, s.addr, s.len)
                .map_err(PostError::BadLocalKey)?;
        }
        Ok(())
    }

    fn gather(sges: &[Sge], space: &AddressSpace) -> Payload {
        let total: usize = sges.iter().map(|s| s.len as usize).sum();
        Payload::build(total, |data| {
            for s in sges {
                data.extend_from_slice(
                    space
                        .slice(s.addr, s.len)
                        .expect("sge validated against a live registration"),
                );
            }
        })
    }

    /// Charges the sender-side bounce copy-in and returns `(sender
    /// completion instant, first-chunk doorbell instant, pipeline
    /// completion floor)`.
    fn charge_bounce_in(&mut self, ready_at: Time, node: u32, bytes: u64) -> (Time, Time, Time) {
        let (chunks, per) = self.cfg.bounce_chunks(bytes);
        let in_total = per * chunks;
        let in_done =
            self.nodes[node as usize]
                .engine
                .reserve_labeled(ready_at, in_total, "wire");
        let in_start = in_done - in_total;
        let floor = in_start + two_stage_finish_ns(chunks, self.cfg.slots(), |_| per, |_| per);
        self.stats.shm_bounce_chunks += chunks;
        self.node_stats[node as usize].shm_bounce_chunks += chunks;
        (in_done, in_start + per + self.cfg.doorbell_ns, floor)
    }

    /// Charges the receiver-side bounce copy-out starting `now`,
    /// bounded below by the slot-flow-control `pipe_floor`.
    fn charge_bounce_out(&mut self, now: Time, node: u32, bytes: u64, pipe_floor: Time) -> Time {
        let (chunks, per) = self.cfg.bounce_chunks(bytes);
        let out_done = self.nodes[node as usize]
            .engine
            .reserve_labeled(now, per * chunks, "wire");
        out_done.max(pipe_floor)
    }

    /// Charges one single-copy CMA pass on `node`'s engine.
    fn charge_cma(&mut self, at: Time, node: u32, bytes: u64) -> Time {
        let done = self.nodes[node as usize]
            .engine
            .reserve_labeled(at, self.cfg.cma_ns(bytes), "wire");
        self.stats.shm_cma_ops += 1;
        self.node_stats[node as usize].shm_cma_ops += 1;
        done
    }

    fn sched_arrive(&mut self, at: Time, dst: u32, xfer: ShmXfer, sink: &mut dyn FnMut(Time, NicEvent)) {
        let id = self.inflight.insert(xfer).bits();
        sink(at, NicEvent::ShmArrive { dst, id });
    }

    fn sched_local(&self, sink: &mut dyn FnMut(Time, NicEvent), node: u32, cqe: Cqe, at: Time) {
        sink(at + self.cfg.cqe_ns, NicEvent::LocalCqe { node, cqe });
    }

    fn park(&mut self, dst: u32, src: u32, xfer: ShmXfer) {
        self.stats.rnr_events += 1;
        self.nodes[dst as usize].parked[src as usize].push_back(xfer);
    }

    fn drain_parked(
        &mut self,
        now: Time,
        node: u32,
        peer: u32,
        mems: &mut [NodeMem],
        sink: &mut dyn FnMut(Time, NicEvent),
        out: &mut Vec<(u32, Cqe)>,
    ) {
        loop {
            if self.nodes[node as usize].recvq[peer as usize].is_empty() {
                break;
            }
            let Some(xfer) = self.nodes[node as usize].parked[peer as usize].pop_front() else {
                break;
            };
            self.deliver(now, node, xfer, mems, sink, out);
        }
    }

    fn deliver(
        &mut self,
        now: Time,
        dst: u32,
        xfer: ShmXfer,
        mems: &mut [NodeMem],
        sink: &mut dyn FnMut(Time, NicEvent),
        out: &mut Vec<(u32, Cqe)>,
    ) {
        let src = xfer.src;
        match xfer.kind {
            ShmKind::Send {
                wr_id,
                data,
                signaled,
                pipe_floor,
            } => {
                let q = &mut self.nodes[dst as usize].recvq[src as usize];
                let Some(front) = q.front() else {
                    self.park(
                        dst,
                        src,
                        ShmXfer {
                            src,
                            kind: ShmKind::Send {
                                wr_id,
                                data,
                                signaled,
                                pipe_floor,
                            },
                        },
                    );
                    return;
                };
                if front.capacity() < data.len() as u64 {
                    let rwr = q.pop_front().expect("front exists");
                    self.stats.cqes += 1;
                    out.push((
                        dst,
                        Cqe {
                            peer: src,
                            wr_id: rwr.wr_id,
                            is_recv: true,
                            byte_len: 0,
                            imm: None,
                            status: CqeStatus::LocalLengthError {
                                sent: data.len() as u64,
                                capacity: rwr.capacity(),
                            },
                        },
                    ));
                    return;
                }
                let rwr = q.pop_front().expect("front exists");
                // Receiver-side copy: unpack out of the segment
                // (double) or pull across processes (single).
                let visible = match self.cfg.copy_mode {
                    ShmCopyMode::Double => {
                        self.charge_bounce_out(now, dst, data.len() as u64, pipe_floor)
                    }
                    ShmCopyMode::Single => self.charge_cma(now, dst, data.len() as u64),
                };
                Self::scatter(&rwr.sges, data.as_slice(), &mut mems[dst as usize].space);
                self.sched_local(
                    sink,
                    dst,
                    Cqe {
                        peer: src,
                        wr_id: rwr.wr_id,
                        is_recv: true,
                        byte_len: data.len() as u64,
                        imm: None,
                        status: CqeStatus::Success,
                    },
                    visible,
                );
                if signaled && matches!(self.cfg.copy_mode, ShmCopyMode::Single) {
                    // Single copy: the sender's buffer is only free
                    // once the receiver finished pulling from it.
                    self.sched_local(
                        sink,
                        src,
                        Cqe {
                            peer: dst,
                            wr_id,
                            is_recv: false,
                            byte_len: data.len() as u64,
                            imm: None,
                            status: CqeStatus::Success,
                        },
                        visible + self.cfg.doorbell_ns,
                    );
                }
            }
            ShmKind::Write {
                wr_id,
                addr,
                rkey,
                data,
                imm,
                signaled,
                pipe_floor,
                placed,
            } => {
                if imm.is_some() && self.nodes[dst as usize].recvq[src as usize].is_empty() {
                    self.park(
                        dst,
                        src,
                        ShmXfer {
                            src,
                            kind: ShmKind::Write {
                                wr_id,
                                addr,
                                rkey,
                                data,
                                imm,
                                signaled,
                                pipe_floor,
                                placed,
                            },
                        },
                    );
                    return;
                }
                let mem = &mut mems[dst as usize];
                if let Err(e) = mem.regs.check(rkey, addr, data.len() as u64) {
                    self.sched_local(
                        sink,
                        src,
                        Cqe {
                            peer: dst,
                            wr_id,
                            is_recv: false,
                            byte_len: 0,
                            imm: None,
                            status: CqeStatus::RemoteAccess(e),
                        },
                        now,
                    );
                    return;
                }
                let visible = if placed {
                    // Single copy: the sender already pushed the bytes
                    // and paid for them at post time.
                    now
                } else {
                    let v = match self.cfg.copy_mode {
                        ShmCopyMode::Double => {
                            self.charge_bounce_out(now, dst, data.len() as u64, pipe_floor)
                        }
                        ShmCopyMode::Single => self.charge_cma(now, dst, data.len() as u64),
                    };
                    mem.space
                        .write(addr, data.as_slice())
                        .expect("rkey check guarantees bounds");
                    v
                };
                if let Some(v) = imm {
                    let rwr = self.nodes[dst as usize].recvq[src as usize]
                        .pop_front()
                        .expect("checked non-empty above");
                    self.sched_local(
                        sink,
                        dst,
                        Cqe {
                            peer: src,
                            wr_id: rwr.wr_id,
                            is_recv: true,
                            byte_len: data.len() as u64,
                            imm: Some(v),
                            status: CqeStatus::Success,
                        },
                        visible,
                    );
                }
                if signaled && !placed && matches!(self.cfg.copy_mode, ShmCopyMode::Single) {
                    self.sched_local(
                        sink,
                        src,
                        Cqe {
                            peer: dst,
                            wr_id,
                            is_recv: false,
                            byte_len: data.len() as u64,
                            imm: None,
                            status: CqeStatus::Success,
                        },
                        visible + self.cfg.doorbell_ns,
                    );
                }
            }
            ShmKind::ReadResponse {
                wr_id,
                data,
                scatter,
                signaled,
            } => {
                Self::scatter(&scatter, data.as_slice(), &mut mems[dst as usize].space);
                if signaled {
                    self.stats.cqes += 1;
                    out.push((
                        dst,
                        Cqe {
                            peer: src,
                            wr_id,
                            is_recv: false,
                            byte_len: data.len() as u64,
                            imm: None,
                            status: CqeStatus::Success,
                        },
                    ));
                }
            }
        }
    }

    fn scatter(sges: &[Sge], data: &[u8], space: &mut AddressSpace) {
        let mut off = 0usize;
        for s in sges {
            if off >= data.len() {
                break;
            }
            let take = (s.len as usize).min(data.len() - off);
            space
                .write(s.addr, &data[off..off + take])
                .expect("sge validated at post");
            off += take;
        }
        debug_assert_eq!(off, data.len(), "scatter capacity checked before");
    }
}

impl Transport for ShmChannel {
    fn class(&self) -> TransportClass {
        match self.cfg.copy_mode {
            ShmCopyMode::Double => TransportClass::ShmDouble,
            ShmCopyMode::Single => TransportClass::ShmSingle,
        }
    }

    fn post_send(
        &mut self,
        ready_at: Time,
        node: u32,
        peer: u32,
        wr: SendWr,
        mems: &[NodeMem],
        sink: &mut dyn FnMut(Time, NicEvent),
    ) -> Result<(), PostError> {
        if peer as usize >= self.nodes.len() {
            return Err(PostError::NoSuchPeer { peer });
        }
        let mem = &mems[node as usize];
        self.validate_sges(&wr.sges, mem)?;
        if matches!(
            wr.opcode,
            Opcode::RdmaWrite | Opcode::RdmaWriteImm(_) | Opcode::RdmaRead
        ) && wr.remote.is_none()
        {
            return Err(PostError::MissingRemote);
        }
        let bytes = wr.total_len();
        self.stats.wqes += 1;
        self.node_stats[node as usize].wqes += 1;
        match wr.opcode {
            Opcode::Send => {
                self.stats.bytes_on_wire += bytes;
                let data = Self::gather(&wr.sges, &mem.space);
                match self.cfg.copy_mode {
                    ShmCopyMode::Double => {
                        let (in_done, doorbell, floor) =
                            self.charge_bounce_in(ready_at, node, bytes);
                        if wr.signaled {
                            // Bounce decouples the sender: its buffer
                            // is free once the copy-in finishes.
                            self.sched_local(
                                sink,
                                node,
                                Cqe {
                                    peer,
                                    wr_id: wr.wr_id,
                                    is_recv: false,
                                    byte_len: bytes,
                                    imm: None,
                                    status: CqeStatus::Success,
                                },
                                in_done,
                            );
                        }
                        self.sched_arrive(
                            doorbell,
                            peer,
                            ShmXfer {
                                src: node,
                                kind: ShmKind::Send {
                                    wr_id: wr.wr_id,
                                    data,
                                    signaled: false,
                                    pipe_floor: floor,
                                },
                            },
                            sink,
                        );
                    }
                    ShmCopyMode::Single => {
                        self.sched_arrive(
                            ready_at + self.cfg.doorbell_ns,
                            peer,
                            ShmXfer {
                                src: node,
                                kind: ShmKind::Send {
                                    wr_id: wr.wr_id,
                                    data,
                                    signaled: wr.signaled,
                                    pipe_floor: 0,
                                },
                            },
                            sink,
                        );
                    }
                }
            }
            Opcode::RdmaWrite | Opcode::RdmaWriteImm(_) => {
                self.stats.bytes_on_wire += bytes;
                let (addr, rkey) = wr.remote.expect("checked above");
                let imm = match wr.opcode {
                    Opcode::RdmaWriteImm(v) => Some(v),
                    _ => None,
                };
                let data = Self::gather(&wr.sges, &mem.space);
                match self.cfg.copy_mode {
                    ShmCopyMode::Double => {
                        let (in_done, doorbell, floor) =
                            self.charge_bounce_in(ready_at, node, bytes);
                        if wr.signaled {
                            self.sched_local(
                                sink,
                                node,
                                Cqe {
                                    peer,
                                    wr_id: wr.wr_id,
                                    is_recv: false,
                                    byte_len: bytes,
                                    imm: None,
                                    status: CqeStatus::Success,
                                },
                                in_done,
                            );
                        }
                        self.sched_arrive(
                            doorbell,
                            peer,
                            ShmXfer {
                                src: node,
                                kind: ShmKind::Write {
                                    wr_id: wr.wr_id,
                                    addr,
                                    rkey,
                                    data,
                                    imm,
                                    signaled: false,
                                    pipe_floor: floor,
                                    placed: false,
                                },
                            },
                            sink,
                        );
                    }
                    ShmCopyMode::Single => {
                        // The sender pushes directly into the peer's
                        // pages (process_vm_writev): pack-on-send
                        // placement, charged on the sender's engine.
                        let push_done = self.charge_cma(ready_at, node, bytes);
                        if wr.signaled {
                            self.sched_local(
                                sink,
                                node,
                                Cqe {
                                    peer,
                                    wr_id: wr.wr_id,
                                    is_recv: false,
                                    byte_len: bytes,
                                    imm: None,
                                    status: CqeStatus::Success,
                                },
                                push_done,
                            );
                        }
                        self.sched_arrive(
                            push_done + self.cfg.doorbell_ns,
                            peer,
                            ShmXfer {
                                src: node,
                                kind: ShmKind::Write {
                                    wr_id: wr.wr_id,
                                    addr,
                                    rkey,
                                    data,
                                    imm,
                                    signaled: false,
                                    pipe_floor: 0,
                                    placed: false,
                                },
                            },
                            sink,
                        );
                    }
                }
            }
            Opcode::RdmaRead => {
                let (addr, rkey) = wr.remote.expect("checked above");
                if let Err(e) = mems[peer as usize].regs.check(rkey, addr, bytes) {
                    self.sched_local(
                        sink,
                        node,
                        Cqe {
                            peer,
                            wr_id: wr.wr_id,
                            is_recv: false,
                            byte_len: 0,
                            imm: None,
                            status: CqeStatus::RemoteAccess(e),
                        },
                        ready_at,
                    );
                    return Ok(());
                }
                self.stats.bytes_on_wire += bytes;
                let data = Payload::build(bytes as usize, |v| {
                    v.extend_from_slice(
                        mems[peer as usize]
                            .space
                            .slice(addr, bytes)
                            .expect("rkey check guarantees bounds"),
                    )
                });
                let done = match self.cfg.copy_mode {
                    ShmCopyMode::Double => {
                        // The responder's progress engine packs into
                        // the segment after the doorbell; the
                        // requester unpacks out.
                        let (chunks, per) = self.cfg.bounce_chunks(bytes);
                        let in_done = self.nodes[peer as usize].engine.reserve_labeled(
                            ready_at + self.cfg.doorbell_ns,
                            per * chunks,
                            "wire",
                        );
                        let in_start = in_done - per * chunks;
                        let floor = in_start
                            + two_stage_finish_ns(chunks, self.cfg.slots(), |_| per, |_| per);
                        self.stats.shm_bounce_chunks += chunks;
                        self.node_stats[peer as usize].shm_bounce_chunks += chunks;
                        self.charge_bounce_out(in_start + per, node, bytes, floor)
                    }
                    ShmCopyMode::Single => self.charge_cma(ready_at, node, bytes),
                };
                self.sched_arrive(
                    done,
                    node,
                    ShmXfer {
                        src: peer,
                        kind: ShmKind::ReadResponse {
                            wr_id: wr.wr_id,
                            data,
                            scatter: wr.sges,
                            signaled: wr.signaled,
                        },
                    },
                    sink,
                );
            }
        }
        Ok(())
    }

    fn post_send_list(
        &mut self,
        ready_at: Time,
        node: u32,
        peer: u32,
        wrs: Vec<SendWr>,
        mems: &[NodeMem],
        sink: &mut dyn FnMut(Time, NicEvent),
    ) -> Result<(), PostError> {
        for wr in wrs {
            Transport::post_send(self, ready_at, node, peer, wr, mems, sink)?;
        }
        Ok(())
    }

    fn post_recv(
        &mut self,
        now: Time,
        node: u32,
        peer: u32,
        wr: RecvWr,
        mems: &[NodeMem],
        sink: &mut dyn FnMut(Time, NicEvent),
    ) -> Result<(), PostError> {
        if peer as usize >= self.nodes.len() {
            return Err(PostError::NoSuchPeer { peer });
        }
        self.validate_sges(&wr.sges, &mems[node as usize])?;
        let n = &mut self.nodes[node as usize];
        n.recvq[peer as usize].push_back(wr);
        if !n.parked[peer as usize].is_empty() {
            sink(now, NicEvent::RnrRetry { node, peer });
        }
        Ok(())
    }

    fn handle(
        &mut self,
        now: Time,
        ev: NicEvent,
        mems: &mut [NodeMem],
        sink: &mut dyn FnMut(Time, NicEvent),
        out: &mut Vec<(u32, Cqe)>,
    ) {
        match ev {
            NicEvent::ShmArrive { dst, id } => {
                let xfer = self
                    .inflight
                    .remove(Handle::from_bits(id))
                    .expect("shm transfers are never flushed");
                self.deliver(now, dst, xfer, mems, sink, out);
            }
            NicEvent::LocalCqe { node, cqe } => {
                self.stats.cqes += 1;
                out.push((node, cqe));
            }
            NicEvent::RnrRetry { node, peer } => {
                self.drain_parked(now, node, peer, mems, sink, out)
            }
            other => unreachable!("shm channel received fabric-only event {other:?}"),
        }
    }

    fn cq_consume(&mut self, _node: u32, _n: usize) {}

    fn cq_peak(&self, _node: u32) -> usize {
        0
    }

    fn recvq_len(&self, node: u32, peer: u32) -> usize {
        self.nodes[node as usize].recvq[peer as usize].len()
    }

    fn set_fault_plan(&mut self, plan: FaultPlan) {
        assert!(
            plan.is_inert(),
            "the shared-memory transport does not support fault injection"
        );
    }

    fn faults_active(&self) -> bool {
        false
    }

    fn fault_plan(&self) -> Option<&FaultPlan> {
        None
    }

    fn fault_events(&self) -> Vec<(Time, NicEvent)> {
        Vec::new()
    }

    fn qp_errored(&self, _node: u32, _peer: u32) -> bool {
        false
    }

    fn reestablish_qp(&mut self, _node: u32, _peer: u32) {}

    fn node_down(&self, _node: u32) -> bool {
        false
    }

    fn node_will_restart(&self, _node: u32) -> bool {
        // Vacuously true, matching the fabric's no-fault-plan answer:
        // nothing is permanently down on this backend.
        true
    }

    fn stats(&self) -> FabricStats {
        self.stats
    }

    fn node_stats(&self) -> &[FabricStats] {
        &self.node_stats
    }

    fn tx_engine(&self, node: u32) -> &SerialResource {
        &self.nodes[node as usize].engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ShmConfig {
        ShmConfig::default()
    }

    #[test]
    fn default_config_validates() {
        assert_eq!(cfg().validate(), Ok(()));
    }

    #[test]
    fn zero_segment_rejected() {
        let c = ShmConfig {
            seg_bytes: 0,
            ..cfg()
        };
        assert_eq!(c.validate(), Err(ShmConfigError::ZeroSegment));
    }

    #[test]
    fn zero_slot_rejected() {
        let c = ShmConfig {
            slot_bytes: 0,
            ..cfg()
        };
        assert_eq!(c.validate(), Err(ShmConfigError::ZeroSlot));
    }

    #[test]
    fn oversized_slot_rejected() {
        let c = ShmConfig {
            seg_bytes: 4096,
            slot_bytes: 8192,
            ..cfg()
        };
        assert_eq!(
            c.validate(),
            Err(ShmConfigError::SlotExceedsSegment {
                slot: 8192,
                seg: 4096
            })
        );
    }

    #[test]
    fn ragged_segment_rejected() {
        let c = ShmConfig {
            seg_bytes: 10_000,
            slot_bytes: 4096,
            ..cfg()
        };
        assert_eq!(
            c.validate(),
            Err(ShmConfigError::SegmentNotSlotMultiple {
                slot: 4096,
                seg: 10_000
            })
        );
    }

    #[test]
    fn zero_bandwidths_rejected() {
        let c = ShmConfig {
            bounce_bw_bps: 0,
            ..cfg()
        };
        assert_eq!(c.validate(), Err(ShmConfigError::ZeroBounceBandwidth));
        let c = ShmConfig {
            cma_bw_bps: 0,
            ..cfg()
        };
        assert_eq!(c.validate(), Err(ShmConfigError::ZeroCmaBandwidth));
        let c = ShmConfig { max_sge: 0, ..cfg() };
        assert_eq!(c.validate(), Err(ShmConfigError::ZeroMaxSge));
    }

    #[test]
    fn errors_display_mentions_field() {
        let msg = ShmConfigError::SlotExceedsSegment {
            slot: 8192,
            seg: 4096,
        }
        .to_string();
        assert!(msg.contains("slot_bytes"), "{msg}");
        assert!(msg.contains("8192"), "{msg}");
    }
}
