//! Cost model configuration.
//!
//! Defaults are calibrated to the paper's testbed (§8.1): dual 2.4 GHz
//! Xeon nodes, Mellanox InfiniHost MT23108 4x HCAs on 133 MHz PCI-X,
//! InfiniScale switch. Anchor points used for calibration:
//!
//! * small-message RDMA write latency ≈ 6 µs end to end,
//! * peak unidirectional bandwidth ≈ 870 MB/s (PCI-X bound),
//! * host memory copy ≈ 0.95 GB/s for large blocks — *comparable to the
//!   network*, which is the premise of the paper's overlap argument,
//! * registration ≈ 22 µs base (Fig. 2's `DT+reg` penalty),
//! * descriptor post ≈ 1 µs (each standard post rings a doorbell over
//!   PCI-X), amortized to ≈ 0.15 µs per descriptor with the extended
//!   list-post interface (Fig. 13 shows 1.2–2.0× bandwidth from this —
//!   "posting descriptor is costly and we expect InfiniBand vendors to
//!   further optimize it", §8.5).

use ibdt_memreg::RegCostModel;
use ibdt_simcore::time::{transfer_ns, Time};

/// Network / HCA timing parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetConfig {
    /// Link bandwidth, bytes per second (decimal).
    pub link_bw_bps: u64,
    /// One-way propagation + switch latency, ns.
    pub prop_delay_ns: Time,
    /// NIC processing per singly-posted work request (doorbell
    /// handling, WQE fetch over PCI-X, packet build, receive-side DMA
    /// setup folded in), ns.
    pub wqe_overhead_ns: Time,
    /// NIC processing per work request posted through the list
    /// interface — one doorbell covers the batch and WQE fetches
    /// pipeline, so the per-WQE cost is much lower (§8.5's motivation
    /// for the extension), ns.
    pub wqe_overhead_list_ns: Time,
    /// Additional NIC gather/scatter cost per SGE beyond the first, ns.
    pub sge_overhead_ns: Time,
    /// CPU cost of posting one descriptor with the standard interface, ns.
    pub post_single_ns: Time,
    /// CPU cost of the first descriptor in a list post, ns.
    pub post_list_first_ns: Time,
    /// CPU cost per additional descriptor in a list post, ns.
    pub post_list_per_ns: Time,
    /// CPU cost of posting a receive descriptor, ns.
    pub post_recv_ns: Time,
    /// Extra latency of an RDMA read versus a write (request round
    /// trip + responder scheduling), ns. §5.2: "RDMA Read performance is
    /// always lower than that of RDMA Write".
    pub rdma_read_extra_ns: Time,
    /// Cost to generate + poll one completion entry, ns.
    pub cqe_ns: Time,
    /// Maximum scatter/gather entries per work request.
    pub max_sge: usize,
    /// Send-queue depth per queue pair: work requests that have been
    /// posted but whose NIC processing has not finished. Posting beyond
    /// this fails like a real verbs `ENOMEM`.
    pub sq_depth: usize,
    /// Transport retry budget: retransmissions attempted after a
    /// transport timeout (lost transfer) or NAK (corrupted transfer)
    /// before the queue pair transitions to the error state, as the
    /// `retry_cnt` QP attribute.
    pub retry_cnt: u32,
    /// RNR retry budget, as the `rnr_retry` QP attribute. The IB value
    /// 7 ([`RNR_RETRY_INFINITE`]) means retry forever — the default, so
    /// a fault-free fabric keeps its classic park-until-posted
    /// behaviour with no timer traffic.
    pub rnr_retry: u32,
    /// Transport timeout: how long the requester waits for an ACK
    /// before retransmitting, ns (the `timeout` QP attribute; real HCAs
    /// use `4.096us * 2^timeout`).
    pub transport_timeout_ns: Time,
    /// First RNR backoff interval, ns; doubles per retry (bounded
    /// exponential backoff).
    pub rnr_backoff_base_ns: Time,
    /// Upper bound of the RNR backoff interval, ns.
    pub rnr_backoff_max_ns: Time,
    /// Automatic Path Migration: when the port carrying a QP's current
    /// path goes down, fail over to the alternate path instead of
    /// erroring the QP (IB spec §17.2.8).
    pub apm_enabled: bool,
    /// Latency of an APM failover: the QP's sends stall this long while
    /// the HCA revalidates the alternate path, ns.
    pub apm_migration_ns: Time,
    /// Completion-queue depth per node. A completion that would push
    /// the outstanding (produced but not yet consumed) entry count past
    /// this bound overflows the CQ: the queue pair transitions to error
    /// and the triggering work request completes with
    /// [`CqOverflow`](crate::CqeStatus::CqOverflow). `usize::MAX` (the
    /// default) means unbounded, reproducing the classic behaviour.
    pub cq_depth: usize,
    /// SRQ-limit-style low watermark on the per-peer receive queues:
    /// when consuming a receive descriptor leaves fewer than this many
    /// posted, the fabric counts a `recv_low_water` event so the upper
    /// layer can replenish credits/buffers before RNR stalls begin.
    /// `0` (the default) disables the watermark.
    pub recv_low_watermark: usize,
}

/// The `rnr_retry` value meaning "retry forever" (IB spec §9.7.5.2.8).
pub const RNR_RETRY_INFINITE: u32 = 7;

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            link_bw_bps: 870_000_000,
            prop_delay_ns: 1_300,
            wqe_overhead_ns: 1_500,
            wqe_overhead_list_ns: 300,
            sge_overhead_ns: 150,
            post_single_ns: 1_000,
            post_list_first_ns: 600,
            post_list_per_ns: 150,
            post_recv_ns: 200,
            rdma_read_extra_ns: 4_000,
            cqe_ns: 200,
            max_sge: 64,
            sq_depth: 4096,
            retry_cnt: 7,
            rnr_retry: RNR_RETRY_INFINITE,
            transport_timeout_ns: 500_000,
            rnr_backoff_base_ns: 20_000,
            rnr_backoff_max_ns: 640_000,
            apm_enabled: true,
            apm_migration_ns: 50_000,
            cq_depth: usize::MAX,
            recv_low_watermark: 0,
        }
    }
}

impl NetConfig {
    /// Wire serialization time for `bytes`.
    pub fn wire_ns(&self, bytes: u64) -> Time {
        transfer_ns(bytes, self.link_bw_bps)
    }

    /// NIC engine occupancy for a WR with `nsge` gather entries and
    /// `bytes` total payload. `batched` selects the list-post WQE cost.
    pub fn tx_ns_batched(&self, nsge: usize, bytes: u64, batched: bool) -> Time {
        let wqe = if batched {
            self.wqe_overhead_list_ns
        } else {
            self.wqe_overhead_ns
        };
        wqe + self.sge_overhead_ns * (nsge.saturating_sub(1)) as u64 + self.wire_ns(bytes)
    }

    /// NIC engine occupancy for a singly-posted WR.
    pub fn tx_ns(&self, nsge: usize, bytes: u64) -> Time {
        self.tx_ns_batched(nsge, bytes, false)
    }

    /// CPU cost of posting `n` descriptors one by one.
    pub fn post_n_single_ns(&self, n: usize) -> Time {
        self.post_single_ns * n as u64
    }

    /// CPU cost of posting `n` descriptors with the list interface.
    pub fn post_list_ns(&self, n: usize) -> Time {
        if n == 0 {
            0
        } else {
            self.post_list_first_ns + self.post_list_per_ns * (n as u64 - 1)
        }
    }

    /// RNR backoff before delivery attempt `attempt` (0-based):
    /// exponential from [`rnr_backoff_base_ns`](Self::rnr_backoff_base_ns),
    /// capped at [`rnr_backoff_max_ns`](Self::rnr_backoff_max_ns).
    pub fn rnr_backoff_ns(&self, attempt: u32) -> Time {
        let exp = self
            .rnr_backoff_base_ns
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX));
        exp.min(self.rnr_backoff_max_ns).max(1)
    }

    /// True when `rnr_retry` means "retry forever".
    pub fn rnr_infinite(&self) -> bool {
        self.rnr_retry >= RNR_RETRY_INFINITE
    }

    /// [`rnr_backoff_ns`](Self::rnr_backoff_ns) with deterministic
    /// seeded jitter: up to +50% of the undithered interval, derived
    /// from `key` (QP/park identity) and `attempt` through a SplitMix64
    /// finalizer. Without jitter every peer parked by the same incast
    /// doubles in lockstep and the retries return as synchronized
    /// storms; with it the retry times of distinct QPs de-correlate
    /// while identical (key, attempt) pairs — and therefore replayed
    /// runs — stay bit-identical.
    pub fn rnr_backoff_jittered_ns(&self, attempt: u32, key: u64) -> Time {
        let base = self.rnr_backoff_ns(attempt);
        let mut z = key
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(attempt as u64 + 1);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // Jitter in [0, base/2]: spreads a synchronized cohort across
        // half an interval without ever shortening the backoff.
        base + z % (base / 2 + 1)
    }
}

/// Device address-space timing parameters: the second memory tier of
/// the TEMPI extension (arXiv:2012.14363). A buffer marked
/// device-resident cannot be packed/unpacked element-wise by the CPU
/// at host speed; it moves through DMA transfers whose bandwidth and
/// launch overhead this struct models. Disabled (and absent from
/// every cost) by default, so classic host-only runs stay
/// bit-identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceConfig {
    /// Device tier participates in cost modelling. With this `false`
    /// the tier map may still mark ranges, but every transfer is
    /// charged at host rates (the classic paths).
    pub enabled: bool,
    /// Host→device DMA bandwidth, bytes per second.
    pub h2d_bw_bps: u64,
    /// Device→host DMA bandwidth, bytes per second.
    pub d2h_bw_bps: u64,
    /// Fixed cost per DMA launch (descriptor setup, doorbell,
    /// completion), ns. Amortizing this is what makes larger staging
    /// chunks faster until bandwidth saturates — TEMPI's curve shape.
    pub launch_ns: Time,
    /// Extra registration cost for device-resident memory (pinning
    /// through the device driver on top of the host MMU work), ns.
    pub reg_extra_ns: Time,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        // Paper-era PCI-ish DMA engine: faster than the host's 0.95
        // GB/s element-wise copy, slow enough that overlap matters.
        Self {
            enabled: false,
            h2d_bw_bps: 2_000_000_000,
            d2h_bw_bps: 1_900_000_000,
            launch_ns: 4_000,
            reg_extra_ns: 15_000,
        }
    }
}

/// Typed [`HostConfig`] validation failure: rejected at cluster
/// construction instead of surfacing as a division-by-zero (or an
/// infinite virtual transfer) deep in the cost model. Bandwidth
/// fields are `u64`, so negative rates are unrepresentable by
/// construction; zero is the degenerate case this guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostConfigError {
    /// `copy_bw_bps` is zero.
    ZeroCopyBandwidth,
    /// The device tier is enabled with a zero host→device bandwidth.
    ZeroH2dBandwidth,
    /// The device tier is enabled with a zero device→host bandwidth.
    ZeroD2hBandwidth,
}

impl std::fmt::Display for HostConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HostConfigError::ZeroCopyBandwidth => {
                write!(f, "HostConfig.copy_bw_bps must be positive")
            }
            HostConfigError::ZeroH2dBandwidth => write!(
                f,
                "HostConfig.device.h2d_bw_bps must be positive when the device tier is enabled"
            ),
            HostConfigError::ZeroD2hBandwidth => write!(
                f,
                "HostConfig.device.d2h_bw_bps must be positive when the device tier is enabled"
            ),
        }
    }
}

impl std::error::Error for HostConfigError {}

/// Host-side timing parameters (copies, datatype processing, malloc).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostConfig {
    /// Large-block memory copy bandwidth, bytes per second.
    pub copy_bw_bps: u64,
    /// Fixed cost per contiguous block copied (loop overhead, cache-line
    /// fill, datatype element dispatch), ns. This term is why packing a
    /// column of 4-byte elements is far slower than a dense memcpy
    /// (§3.2 observation 1).
    pub copy_block_overhead_ns: Time,
    /// Datatype processing cost per contiguous block (stack advance in
    /// the dataloop engine), ns.
    pub dt_proc_block_ns: Time,
    /// Cost of a dynamic buffer allocation (malloc + first-touch page
    /// faults, ref [7]), ns.
    pub malloc_ns: Time,
    /// Cost of freeing a dynamic buffer, ns.
    pub free_ns: Time,
    /// Registration cost model.
    pub reg: RegCostModel,
    /// Device address-space tier (off by default).
    pub device: DeviceConfig,
}

impl Default for HostConfig {
    fn default() -> Self {
        Self {
            copy_bw_bps: 950_000_000,
            copy_block_overhead_ns: 60,
            dt_proc_block_ns: 25,
            malloc_ns: 3_000,
            free_ns: 1_000,
            reg: RegCostModel::default(),
            device: DeviceConfig::default(),
        }
    }
}

impl HostConfig {
    /// CPU time to copy `bytes` spread over `blocks` contiguous blocks
    /// (a pack or unpack of that shape).
    pub fn copy_ns(&self, blocks: usize, bytes: u64) -> Time {
        (self.copy_block_overhead_ns + self.dt_proc_block_ns) * blocks as u64
            + transfer_ns(bytes, self.copy_bw_bps)
    }

    /// CPU time for a plain dense copy.
    pub fn memcpy_ns(&self, bytes: u64) -> Time {
        self.copy_ns(1, bytes)
    }

    /// One DMA transfer of `bytes` across the host↔device boundary
    /// (`to_device` selects the direction's bandwidth), launch
    /// overhead included. Only meaningful with the tier enabled and
    /// validated.
    pub fn dma_ns(&self, bytes: u64, to_device: bool) -> Time {
        let bw = if to_device {
            self.device.h2d_bw_bps
        } else {
            self.device.d2h_bw_bps
        };
        self.device.launch_ns + transfer_ns(bytes, bw)
    }

    /// Rejects configurations whose cost model would divide by zero.
    pub fn validate(&self) -> Result<(), HostConfigError> {
        if self.copy_bw_bps == 0 {
            return Err(HostConfigError::ZeroCopyBandwidth);
        }
        if self.device.enabled {
            if self.device.h2d_bw_bps == 0 {
                return Err(HostConfigError::ZeroH2dBandwidth);
            }
            if self.device.d2h_bw_bps == 0 {
                return Err(HostConfigError::ZeroD2hBandwidth);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_matches_bandwidth() {
        let c = NetConfig::default();
        // 870 KB at 870 MB/s = 1 ms.
        assert_eq!(c.wire_ns(870_000), 1_000_000);
        // 870 bytes at 870 MB/s = 1 µs.
        assert_eq!(c.wire_ns(870), 1_000);
    }

    #[test]
    fn tx_accounts_for_sges() {
        let c = NetConfig::default();
        let one = c.tx_ns(1, 0);
        let four = c.tx_ns(4, 0);
        assert_eq!(four - one, 3 * c.sge_overhead_ns);
    }

    #[test]
    fn list_post_cheaper_than_single() {
        let c = NetConfig::default();
        for n in [1usize, 2, 16, 128] {
            assert!(c.post_list_ns(n) <= c.post_n_single_ns(n));
        }
        assert_eq!(c.post_list_ns(0), 0);
        assert!(c.post_list_ns(1) <= c.post_single_ns);
    }

    #[test]
    fn batched_wqes_are_cheaper_on_the_nic() {
        let c = NetConfig::default();
        assert!(c.tx_ns_batched(1, 4096, true) < c.tx_ns_batched(1, 4096, false));
        assert_eq!(
            c.tx_ns_batched(1, 4096, false) - c.tx_ns_batched(1, 4096, true),
            c.wqe_overhead_ns - c.wqe_overhead_list_ns
        );
    }

    #[test]
    fn rnr_backoff_grows_and_caps() {
        let c = NetConfig::default();
        assert_eq!(c.rnr_backoff_ns(0), c.rnr_backoff_base_ns);
        assert_eq!(c.rnr_backoff_ns(1), 2 * c.rnr_backoff_base_ns);
        assert!(c.rnr_backoff_ns(3) > c.rnr_backoff_ns(2));
        assert_eq!(c.rnr_backoff_ns(30), c.rnr_backoff_max_ns);
        assert_eq!(c.rnr_backoff_ns(63), c.rnr_backoff_max_ns);
        // Shift overflow saturates instead of wrapping.
        assert_eq!(c.rnr_backoff_ns(200), c.rnr_backoff_max_ns);
        assert!(c.rnr_infinite());
        let mut f = c.clone();
        f.rnr_retry = 3;
        assert!(!f.rnr_infinite());
    }

    #[test]
    fn rnr_jitter_is_deterministic_bounded_and_decorrelated() {
        let c = NetConfig::default();
        for attempt in [0u32, 1, 3, 9] {
            let base = c.rnr_backoff_ns(attempt);
            for key in [1u64, 7, 0xABCD, u64::MAX] {
                let j = c.rnr_backoff_jittered_ns(attempt, key);
                // Deterministic per (key, attempt), never below the
                // undithered backoff, at most +50%.
                assert_eq!(j, c.rnr_backoff_jittered_ns(attempt, key));
                assert!(j >= base && j <= base + base / 2, "jitter {j} base {base}");
            }
        }
        // Distinct QPs parked at the same attempt must not retry in
        // lockstep: a cohort of 16 keys spreads over >1 distinct time.
        let spread: std::collections::BTreeSet<_> = (0..16u64)
            .map(|k| c.rnr_backoff_jittered_ns(0, k))
            .collect();
        assert!(spread.len() > 8, "cohort collapsed to {:?}", spread);
    }

    #[test]
    fn validate_accepts_defaults_and_rejects_zero_bandwidth() {
        assert_eq!(HostConfig::default().validate(), Ok(()));
        let h = HostConfig {
            copy_bw_bps: 0,
            ..HostConfig::default()
        };
        assert_eq!(h.validate(), Err(HostConfigError::ZeroCopyBandwidth));
        // Device bandwidths are only checked once the tier is enabled.
        let mut h = HostConfig::default();
        h.device.h2d_bw_bps = 0;
        assert_eq!(h.validate(), Ok(()));
        h.device.enabled = true;
        assert_eq!(h.validate(), Err(HostConfigError::ZeroH2dBandwidth));
        h.device.h2d_bw_bps = 1;
        h.device.d2h_bw_bps = 0;
        assert_eq!(h.validate(), Err(HostConfigError::ZeroD2hBandwidth));
        h.device.d2h_bw_bps = 1;
        assert_eq!(h.validate(), Ok(()));
    }

    #[test]
    fn dma_amortizes_launch_overhead_with_chunk_size() {
        let mut h = HostConfig::default();
        h.device.enabled = true;
        // ns-per-byte falls as chunks grow (launch amortization) and
        // approaches the bandwidth floor.
        let per_byte = |c: u64| h.dma_ns(c, true) as f64 / c as f64;
        assert!(per_byte(4096) > per_byte(65536));
        assert!(per_byte(65536) > per_byte(4 << 20));
        let floor = 1e9 / h.device.h2d_bw_bps as f64;
        assert!((per_byte(4 << 20) - floor) / floor < 0.02);
    }

    #[test]
    fn copy_cost_penalizes_small_blocks() {
        let h = HostConfig::default();
        let dense = h.copy_ns(1, 64 * 1024);
        let ragged = h.copy_ns(16 * 1024, 64 * 1024); // 4-byte blocks
        assert!(ragged > 5 * dense, "ragged {ragged} dense {dense}");
    }

    #[test]
    fn copy_vs_network_comparable() {
        // The paper's premise: memory copy bandwidth is comparable to
        // link bandwidth (within ~2x).
        let h = HostConfig::default();
        let n = NetConfig::default();
        let copy = h.memcpy_ns(1 << 20) as f64;
        let wire = n.wire_ns(1 << 20) as f64;
        let ratio = copy / wire;
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }
}
